// Package-level benchmarks: one testing.B benchmark per paper figure
// (Figures 8–13) and one per ablation, each regenerating its table/series
// through the internal/bench harness at small scale. `go test -bench=.`
// therefore re-derives every evaluation artifact of the paper; run
// `go run ./cmd/tez-bench -scale full` for the paper-sized variants.
package main

import (
	"testing"

	"tez/internal/bench"
)

func runFigure(b *testing.B, f func(bench.Scale) (*bench.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := f(bench.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkFigure8HiveTPCDS regenerates Figure 8: Hive TPC-DS derived
// workload, MR vs Tez.
func BenchmarkFigure8HiveTPCDS(b *testing.B) { runFigure(b, bench.HiveTPCDS) }

// BenchmarkFigure9HiveTPCH regenerates Figure 9: Hive TPC-H derived
// workload at larger cluster scale, MR vs Tez.
func BenchmarkFigure9HiveTPCH(b *testing.B) { runFigure(b, bench.HiveTPCH) }

// BenchmarkFigure10PigProduction regenerates Figure 10: the production
// ETL mix, MR vs Tez.
func BenchmarkFigure10PigProduction(b *testing.B) { runFigure(b, bench.PigProduction) }

// BenchmarkFigure11KMeans regenerates Figure 11: iterative K-means,
// per-iteration AMs vs one shared session.
func BenchmarkFigure11KMeans(b *testing.B) { runFigure(b, bench.KMeansIterations) }

// BenchmarkFigure12SparkTimelines regenerates Figure 12: per-user
// container timelines, service daemons vs Tez.
func BenchmarkFigure12SparkTimelines(b *testing.B) { runFigure(b, bench.SparkTimelines) }

// BenchmarkFigure13SparkLatency regenerates Figure 13: multi-tenant job
// latency vs scale, service daemons vs Tez.
func BenchmarkFigure13SparkLatency(b *testing.B) { runFigure(b, bench.SparkLatency) }

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationContainerReuse(b *testing.B)   { runFigure(b, bench.AblationContainerReuse) }
func BenchmarkAblationSession(b *testing.B)          { runFigure(b, bench.AblationSession) }
func BenchmarkAblationAutoParallelism(b *testing.B)  { runFigure(b, bench.AblationAutoParallelism) }
func BenchmarkAblationPartitionPruning(b *testing.B) { runFigure(b, bench.AblationPartitionPruning) }
func BenchmarkAblationLocality(b *testing.B)         { runFigure(b, bench.AblationLocality) }
func BenchmarkAblationSlowStart(b *testing.B)        { runFigure(b, bench.AblationSlowStart) }
func BenchmarkAblationParallelFetch(b *testing.B)    { runFigure(b, bench.AblationParallelFetch) }
func BenchmarkAblationObjectRegistry(b *testing.B)   { runFigure(b, bench.AblationObjectRegistry) }
func BenchmarkAblationSpeculation(b *testing.B)      { runFigure(b, bench.AblationSpeculation) }

// BenchmarkAblationShuffleSort regenerates the shuffle sort data-plane
// table: boxed pairs vs arena pointer sort vs spill-constrained vs flate
// (run `make bench-shuffle` to persist it as BENCH_shuffle.json).
func BenchmarkAblationShuffleSort(b *testing.B) { runFigure(b, bench.AblationShuffleSort) }

// BenchmarkAblationShuffleCodec regenerates the end-to-end wire codec
// table (wordcount/Hive/Pig under codec none vs flate).
func BenchmarkAblationShuffleCodec(b *testing.B) { runFigure(b, bench.AblationShuffleCodec) }

// BenchmarkChaosRobustness runs the seeded fault-injection table: the
// same workload under each chaos schedule, asserting identical results.
func BenchmarkChaosRobustness(b *testing.B) { runFigure(b, bench.ChaosRobustness) }
