// tez-service runs the multi-tenant DAG daemon (internal/service) against
// a simulated cluster and a synthetic open-loop workload: several named
// tenants submit small DAGs concurrently, the service sheds overload with
// typed rejections, the RM enforces per-tenant quotas and weighted fair
// share, and Ctrl-C (or -duration expiry) triggers a graceful drain
// before the per-tenant scorecard is printed.
//
//	go run ./cmd/tez-service
//	go run ./cmd/tez-service -tenants "prod:3:8192,batch:1:4096" -duration 5s
//	go run ./cmd/tez-service -journal service.jsonl   # then tez-timeline -in service.jsonl -tenant prod
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tez/internal/dag"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/service"
	"tez/internal/timeline"
)

func init() {
	runtime.RegisterProcessor("service.noop", func() runtime.Processor { return noop{} })
}

type noop struct{}

func (noop) Initialize(*runtime.Context) error                             { return nil }
func (noop) Run(map[string]runtime.Input, map[string]runtime.Output) error { return nil }
func (noop) Close() error                                                  { return nil }

func main() {
	tenantsF := flag.String("tenants", "prod:2:0,batch:1:0,adhoc:1:0",
		"comma-separated tenant specs name:weight:quotaMB")
	nodes := flag.Int("nodes", 16, "simulated cluster size")
	duration := flag.Duration("duration", 3*time.Second, "how long the synthetic load runs")
	tasks := flag.Int("tasks", 4, "tasks per submitted DAG")
	clients := flag.Int("clients", 4, "concurrent submitters per tenant")
	deadline := flag.Duration("deadline", 0, "per-submission deadline (0 = none)")
	maxInFlight := flag.Int("max-in-flight", 256, "global admitted-DAG cap")
	queueDepth := flag.Int("queue-depth", 32, "per-tenant admission queue bound")
	journalPath := flag.String("journal", "", "flush the tenant-tagged timeline journal here as JSONL on drain")
	flag.Parse()

	tenantCfgs, err := parseTenants(*tenantsF, *queueDepth, *deadline)
	if err != nil {
		log.Fatal(err)
	}

	plat := platform.New(platform.Fast(*nodes))
	defer plat.Stop()
	var journal *timeline.Journal
	if *journalPath != "" {
		journal = timeline.New()
	}
	svc := service.New(plat, service.Config{
		Tenants:     tenantCfgs,
		MaxInFlight: *maxInFlight,
		Journal:     journal,
		JournalPath: *journalPath,
	})

	// Synthetic open-loop load: each client submits as fast as admission
	// allows, counting typed rejections instead of blocking on them.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var submitted, rejected atomic.Int64
	for _, tc := range tenantCfgs {
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(tenant string, c int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					d := dag.New(fmt.Sprintf("job-%d-%d", c, i))
					d.AddVertex("work", plugin.Desc("service.noop", nil), *tasks)
					sub, err := svc.Submit(tenant, d)
					if err != nil {
						rejected.Add(1)
						if errors.Is(err, service.ErrDraining) {
							return
						}
						time.Sleep(time.Millisecond) // shed: back off briefly
						continue
					}
					submitted.Add(1)
					<-sub.Done()
				}
			}(tc.Name, c)
		}
	}

	// Run until the clock or Ctrl-C, then drain gracefully.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-time.After(*duration):
		fmt.Println("duration elapsed; draining (finish policy)...")
	case <-sig:
		fmt.Println("\ninterrupt; draining (finish policy)...")
	}
	close(stop)
	svc.Drain(service.DrainFinish)
	wg.Wait()
	defer svc.Close()

	stats := svc.Snapshot()
	fmt.Printf("\nsubmitted %d, rejected %d (draining rejections: %d)\n\n",
		submitted.Load(), rejected.Load(), stats.RejectedDraining)
	fmt.Printf("%-8s %8s %8s %8s %8s %10s %10s %10s %10s\n",
		"tenant", "admitted", "ok", "failed", "killed", "rej-queue", "rej-quota", "p50", "p99")
	for _, ts := range stats.Tenants {
		fmt.Printf("%-8s %8d %8d %8d %8d %10d %10d %10v %10v\n",
			ts.Tenant, ts.Admitted, ts.Succeeded, ts.Failed, ts.Killed,
			ts.RejectedQueueFull, ts.RejectedOverQuota,
			ts.Latency.P50.Round(time.Microsecond), ts.Latency.P99.Round(time.Microsecond))
	}
	if journal != nil {
		fmt.Printf("\nwrote journal: %s (%d events) — inspect with tez-timeline -in %s -tenant <name>\n",
			*journalPath, journal.Len(), *journalPath)
	}
}

// parseTenants turns "name:weight:quotaMB,..." into TenantConfigs.
func parseTenants(spec string, queueDepth int, deadline time.Duration) ([]service.TenantConfig, error) {
	var out []service.TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		tc := service.TenantConfig{Name: fields[0], QueueDepth: queueDepth, Deadline: deadline}
		if len(fields) > 1 {
			w, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad weight: %v", fields[0], err)
			}
			tc.Weight = w
		}
		if len(fields) > 2 {
			q, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad quota: %v", fields[0], err)
			}
			tc.QuotaMB = q
		}
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", spec)
	}
	return out, nil
}
