// tez-timeline demonstrates the timeline subsystem — the in-process
// analog of the YARN Application Timeline Server (§4.3, §5). It runs a
// wordcount DAG with a journal attached to both the AM and the platform
// substrates (or reads a previously saved journal with -in), prints the
// run's critical path, per-vertex attempt percentiles and container
// swimlanes, and can export the journal as JSONL and as a Chrome
// trace-event file loadable in Perfetto or chrome://tracing.
//
//	go run ./cmd/tez-timeline -trace trace.json -jsonl trace.jsonl
//	go run ./cmd/tez-timeline -chaos-seed 7
//	go run ./cmd/tez-timeline -in trace.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"tez/internal/am"
	"tez/internal/chaos"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/metrics"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/timeline"
)

func init() {
	library.RegisterMapFunc("timeline.tokenize", func(_, line []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(line)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("timeline.sum", func(k []byte, vs [][]byte, out runtime.KVWriter) error {
		return out.Write(k, []byte(strconv.Itoa(len(vs))))
	})
}

func main() {
	in := flag.String("in", "", "read a saved JSONL journal instead of running a DAG")
	tracePath := flag.String("trace", "", "write a Chrome trace-event file here (open in Perfetto)")
	jsonlPath := flag.String("jsonl", "", "write the raw journal here as JSONL")
	dagID := flag.String("dag", "", "run id to analyse (default: last finished run)")
	nodes := flag.Int("nodes", 4, "simulated cluster size when running")
	lines := flag.Int("lines", 400, "input lines for the wordcount run")
	chaosSeed := flag.Int64("chaos-seed", 0, "when non-zero, inject transient fetch faults with this seed")
	tenant := flag.String("tenant", "", "keep only events attributed to this tenant before analysis and export")
	pipelined := flag.Bool("pipelined", false, "run the wordcount with pipelined shuffle publication")
	flag.Parse()

	var events []timeline.Event
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		events, err = timeline.ReadJSONL(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("journal %s: %d events\n\n", *in, len(events))
	} else {
		events = runWordcount(*nodes, *lines, *chaosSeed, *pipelined)
	}

	if *tenant != "" {
		all := len(events)
		events = timeline.FilterTenant(events, *tenant)
		fmt.Printf("tenant %q: %d of %d events\n\n", *tenant, len(events), all)
	}

	analyse(events, *dagID)

	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := timeline.WriteJSONL(f, events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote journal: %s (%d events)\n", *jsonlPath, len(events))
	}
	if *tracePath != "" {
		buf, err := timeline.ChromeTrace(events)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*tracePath, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Chrome trace: %s (open in Perfetto or chrome://tracing)\n", *tracePath)
	}
}

// runWordcount executes a two-vertex wordcount with the journal attached
// to both the AM (control plane) and the platform (data plane) and
// returns the recorded events.
func runWordcount(nodes, lines int, chaosSeed int64, pipelined bool) []timeline.Event {
	j := timeline.New()
	pcfg := platform.Default(nodes)
	pcfg.Timeline = j
	var plane *chaos.Plane
	if chaosSeed != 0 {
		plane = chaos.New(chaosSeed, chaos.Spec{TransientFetchProb: 0.2})
		pcfg.Chaos = plane
	}
	plat := platform.New(pcfg)
	defer plat.Stop()

	w, err := library.CreateRecordFile(plat.FS, "/in/text", plat.FS.LiveNodes()[0])
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < lines; i++ {
		_ = w.Write(nil, []byte("alpha beta gamma delta alpha beta alpha"))
	}
	_ = w.Close()

	d := dag.New("wordcount")
	tok := d.AddVertex("tokenizer", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "timeline.tokenize"}), -1)
	tok.Sources = []dag.DataSource{{
		Name:        "text",
		Input:       plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: []string{"/in/text"}}),
	}}
	sum := d.AddVertex("summation", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "timeline.sum"}), 4)
	sum.Sinks = []dag.DataSink{{
		Name:      "counts",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/wc"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/wc"}),
	}}
	var edgeCfg any
	if pipelined {
		// A byte-scale budget (the MB knobs are too coarse for this demo's
		// input) so every map attempt publishes several spill increments.
		edgeCfg = library.OrderedPartitionedConfig{SortBytes: 16 << 10, Pipelined: true}
	}
	d.Connect(tok, sum, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, edgeCfg),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})

	amCfg := am.Config{Name: "tez-timeline", Timeline: j, Chaos: plane}
	sess := am.NewSession(plat, amCfg)
	defer sess.Close()
	res, err := sess.Run(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %s in %v, %d journal events\n", res.Status, res.Duration.Round(time.Millisecond), j.Len())
	for _, aw := range metrics.AllocWaitReport(res.Counters) {
		fmt.Printf("  alloc wait %-11s count=%-3d mean=%v\n", aw.Locality, aw.Count, aw.Mean.Round(time.Microsecond))
	}
	fmt.Println()
	return j.Events()
}

// analyse prints the critical path, attempt percentiles and container
// swimlanes for one run of the journal.
func analyse(events []timeline.Event, dagID string) {
	if dagID == "" {
		dagID = timeline.LastDAG(events)
	}
	path, err := timeline.CriticalPath(events, dagID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(path)
	wall, total := path.Wall(), path.Total()
	if wall > 0 {
		delta := 100 * float64(total-wall) / float64(wall)
		fmt.Printf("path sum vs wall-clock: %+.2f%%\n\n", delta)
	}

	fmt.Println("attempt percentiles:")
	for _, vs := range timeline.AttemptPercentiles(events, dagID) {
		fmt.Printf("  %s\n", vs)
	}
	fmt.Println("\ncontainer swimlanes:")
	for _, l := range timeline.ContainerLanes(events, dagID) {
		fmt.Printf("  %s\n", l)
	}

	if stats := timeline.EdgeFetchStats(events, dagID); len(stats) > 0 {
		fmt.Println("\nshuffle edges:")
		for _, ef := range stats {
			fmt.Printf("  %s->%s: %d fetches, %d bytes, %d increment(s) per source\n",
				ef.Vertex, ef.Edge, ef.Fetches, ef.Bytes, ef.Increments)
		}
	}
}
