// tez-hive runs a SQL query of the supported subset against generated
// TPC-H- and TPC-DS-shaped tables, on the Tez backend, the MapReduce
// backend, or both.
//
//	go run ./cmd/tez-hive -q "SELECT l_returnflag, count(*) AS n FROM lineitem GROUP BY l_returnflag"
//	go run ./cmd/tez-hive -backend both -q "..."
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/hive"
	"tez/internal/platform"
	"tez/internal/relop"
)

func main() {
	query := flag.String("q", "SELECT l_returnflag, count(*) AS n FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag", "SQL query")
	backend := flag.String("backend", "tez", "tez | mr | both")
	explain := flag.Bool("explain", false, "print the plan and compiled DAG instead of running")
	orders := flag.Int("orders", 1000, "TPC-H scale (orders)")
	sales := flag.Int("sales", 2000, "TPC-DS scale (fact rows)")
	nodes := flag.Int("nodes", 8, "simulated cluster nodes")
	flag.Parse()

	plat := platform.New(platform.Default(*nodes))
	defer plat.Stop()
	eng := hive.NewEngine()
	eng.Exec = relop.Config{DefaultPartitions: 8}

	tp, err := data.GenTPCH(plat.FS, *orders, 1)
	if err != nil {
		log.Fatal(err)
	}
	eng.Register(tp.Tables()...)
	td, err := data.GenTPCDS(plat.FS, *sales, 2)
	if err != nil {
		log.Fatal(err)
	}
	eng.Register(td.Tables()...)

	if *explain {
		text, err := eng.Explain(*query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
		return
	}

	show := func(label, out string, dur time.Duration, extra string) {
		rows, err := relop.ReadStored(plat.FS, out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %v %s\n", label, dur.Round(time.Millisecond), extra)
		for i, r := range rows {
			if i >= 25 {
				fmt.Printf("  … %d more rows\n", len(rows)-25)
				break
			}
			fmt.Print("  ")
			for _, v := range r {
				fmt.Printf("%v\t", v)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if *backend == "tez" || *backend == "both" {
		sess := am.NewSession(plat, am.Config{Name: "tez-hive", PrewarmContainers: 4})
		start := time.Now()
		if _, err := eng.RunTez(sess, "cli-tez", *query, "/results/cli-tez"); err != nil {
			log.Fatal(err)
		}
		show("Tez", "/results/cli-tez", time.Since(start), "(single DAG)")
		sess.Close()
	}
	if *backend == "mr" || *backend == "both" {
		start := time.Now()
		stats, err := eng.RunMR(plat, am.Config{Name: "mr-hive"}, "cli-mr", *query, "/results/cli-mr")
		if err != nil {
			log.Fatal(err)
		}
		show("MapReduce", "/results/cli-mr", time.Since(start), fmt.Sprintf("(%d jobs)", stats.Jobs))
	}
}
