// tez-pig runs a named ETL pipeline from the built-in set on the Tez or
// MapReduce backend against generated skewed inputs.
//
//	go run ./cmd/tez-pig -list
//	go run ./cmd/tez-pig -pipeline skew_join -backend both
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/pig"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

type pipeline struct {
	name  string
	about string
	build func(a, b *relop.Table, out string) *pig.Script
}

var pipelines = []pipeline{
	{"group_agg", "GROUP BY key with count+sum", func(a, _ *relop.Table, out string) *pig.Script {
		s := pig.NewScript("group_agg")
		d := s.Load(a)
		s.Store(d.GroupBy([]*relop.Expr{d.Col("k")}, []string{"k"},
			[]relop.AggDef{{Func: "count", Name: "n"}, {Func: "sum", Arg: d.Col("v"), Name: "s"}}), out)
		return s
	}},
	{"join_group", "JOIN then GROUP BY", func(a, b *relop.Table, out string) *pig.Script {
		s := pig.NewScript("join_group")
		da, db := s.Load(a), s.Load(b)
		j := da.Join(db, []*relop.Expr{da.Col("k")}, []*relop.Expr{db.Col("k")})
		s.Store(j.GroupBy([]*relop.Expr{relop.Col(0)}, []string{"k"},
			[]relop.AggDef{{Func: "count", Name: "pairs"}}), out)
		return s
	}},
	{"skew_join", "skew-mitigated join (sampled range partitioning)", func(a, b *relop.Table, out string) *pig.Script {
		s := pig.NewScript("skew_join")
		da, db := s.Load(a), s.Load(b)
		j := da.SkewJoin(db, []*relop.Expr{da.Col("k")}, []*relop.Expr{db.Col("k")}, 6)
		s.Store(j.GroupBy(nil, nil, []relop.AggDef{{Func: "count", Name: "n"}}), out)
		return s
	}},
	{"order_by", "global ORDER BY via sampled range partitioning", func(a, _ *relop.Table, out string) *pig.Script {
		s := pig.NewScript("order_by")
		d := s.Load(a)
		s.Store(d.OrderBy([]*relop.Expr{d.Col("v")}, []bool{true}, 30, 4), out)
		return s
	}},
	{"split_etl", "SPLIT into two stores from one shared scan", func(a, _ *relop.Table, out string) *pig.Script {
		s := pig.NewScript("split_etl")
		d := s.Load(a)
		br := d.Split(
			relop.Cmp("<", d.Col("k"), relop.LitInt(5)),
			relop.Cmp(">=", d.Col("k"), relop.LitInt(5)),
		)
		s.Store(br[0], out+"-head")
		s.Store(br[1], out+"-tail")
		return s
	}},
	{"union_distinct", "UNION of two inputs then DISTINCT", func(a, b *relop.Table, out string) *pig.Script {
		s := pig.NewScript("union_distinct")
		da := s.Load(a).ForEach([]*relop.Expr{relop.Col(0)}, []string{"k"}, []row.Kind{row.KindInt})
		db := s.Load(b).ForEach([]*relop.Expr{relop.Col(0)}, []string{"k"}, []row.Kind{row.KindInt})
		s.Store(da.Union(db).Distinct(), out)
		return s
	}},
}

const scriptHelp = `inline PigLatin-style script, e.g.:
  e = LOAD 'input_a'; g = GROUP e BY k GENERATE count(*) AS n; STORE g INTO '/out/s';
tables input_a (skewed) and input_b (unique keys) are pre-loaded`

func main() {
	name := flag.String("pipeline", "group_agg", "pipeline name")
	backend := flag.String("backend", "tez", "tez | mr | both")
	rows := flag.Int("rows", 5000, "input rows")
	list := flag.Bool("list", false, "list pipelines")
	explain := flag.Bool("explain", false, "print the compiled DAG and vectorization decisions instead of running")
	script := flag.String("script", "", scriptHelp)
	flag.Parse()

	if *list {
		for _, p := range pipelines {
			fmt.Printf("%-16s %s\n", p.name, p.about)
		}
		return
	}
	if *script != "" {
		runScript(*script, *backend, *rows, *explain)
		return
	}
	var chosen *pipeline
	for i := range pipelines {
		if pipelines[i].name == *name {
			chosen = &pipelines[i]
		}
	}
	if chosen == nil {
		log.Fatalf("unknown pipeline %q (use -list)", *name)
	}

	plat := platform.New(platform.Default(8))
	defer plat.Stop()
	a, err := data.GenZipfPairs(plat.FS, "input_a", *rows, 200, 1.3, 1)
	if err != nil {
		log.Fatal(err)
	}
	b, err := data.GenZipfPairs(plat.FS, "input_b", *rows/4+20, 200, 1.05, 2)
	if err != nil {
		log.Fatal(err)
	}

	if *explain {
		text, err := chosen.build(a, b, "/out/"+chosen.name+"-explain").Explain()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
		return
	}
	if *backend == "tez" || *backend == "both" {
		sess := am.NewSession(plat, am.Config{Name: "tez-pig", PrewarmContainers: 4})
		start := time.Now()
		res, err := chosen.build(a, b, "/out/"+chosen.name+"-tez").RunTez(sess)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Tez: %v  counters: %s\n", time.Since(start).Round(time.Millisecond), res.Counters)
		sess.Close()
	}
	if *backend == "mr" || *backend == "both" {
		start := time.Now()
		stats, err := chosen.build(a, b, "/out/"+chosen.name+"-mr").RunMR(plat, am.Config{Name: "mr-pig"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MapReduce: %v (%d jobs)\n", time.Since(start).Round(time.Millisecond), stats.Jobs)
	}
}

// runScript parses and executes an inline PigLatin-style script.
func runScript(src, backend string, rows int, explain bool) {
	plat := platform.New(platform.Default(8))
	defer plat.Stop()
	a, err := data.GenZipfPairs(plat.FS, "input_a", rows, 200, 1.3, 1)
	if err != nil {
		log.Fatal(err)
	}
	b, err := data.GenUniquePairs(plat.FS, "input_b", 200, 2)
	if err != nil {
		log.Fatal(err)
	}
	cat := pig.Catalog{"input_a": a, "input_b": b}
	s, err := pig.ParseScript("cli", src, cat)
	if err != nil {
		log.Fatal(err)
	}
	if explain {
		text, err := s.Explain()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
		return
	}
	if backend == "mr" {
		start := time.Now()
		stats, err := s.RunMR(plat, am.Config{Name: "cli-mr"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MapReduce: %v (%d jobs)\n", time.Since(start).Round(time.Millisecond), stats.Jobs)
		return
	}
	sess := am.NewSession(plat, am.Config{Name: "cli", PrewarmContainers: 4})
	defer sess.Close()
	start := time.Now()
	res, err := s.RunTez(sess)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tez: %v  counters: %s\n", time.Since(start).Round(time.Millisecond), res.Counters)
	for _, root := range s.Roots() {
		rowsOut, err := relop.ReadStored(plat.FS, root.StorePath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d rows):\n", root.StorePath, len(rowsOut))
		for i, r := range rowsOut {
			if i >= 20 {
				fmt.Printf("  … %d more\n", len(rowsOut)-20)
				break
			}
			fmt.Print("  ")
			for _, v := range r {
				fmt.Printf("%v\t", v)
			}
			fmt.Println()
		}
	}
}
