// tez-bench regenerates the paper's evaluation (Figures 8–13) and the
// ablation suite on the simulated cluster and prints the tables/series.
//
//	go run ./cmd/tez-bench                 # everything, small scale
//	go run ./cmd/tez-bench -scale full     # closer to paper parameters
//	go run ./cmd/tez-bench -exp f8,f11     # selected experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"tez/internal/bench"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small | full")
	expFlag := flag.String("exp", "all", "comma-separated experiments: f8,f9,f10,f11,f12,f13,chaos,ablations,shuffle-sort,shuffle-codec,shuffle-pipeline,relop,controlplane,controlplane-quick,service,graph")
	shuffleJSON := flag.String("shuffle-json", "", "write shuffle-sort/shuffle-codec results to this JSON file")
	relopJSON := flag.String("relop-json", "", "write the vectorization ablation to this JSON file")
	cpJSON := flag.String("controlplane-json", "", "write control-plane results to this JSON file")
	serviceJSON := flag.String("service-json", "", "write multi-tenant service results to this JSON file")
	graphJSON := flag.String("graph-json", "", "write BSP graph-engine results to this JSON file")
	flag.Parse()

	var sc bench.Scale
	switch *scaleFlag {
	case "small":
		sc = bench.Small
	case "full":
		sc = bench.Full
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	type experiment struct {
		key string
		run func(bench.Scale) (*bench.Report, error)
	}
	experiments := []experiment{
		{"f8", bench.HiveTPCDS},
		{"f9", bench.HiveTPCH},
		{"f10", bench.PigProduction},
		{"f11", bench.KMeansIterations},
		{"f12", bench.SparkTimelines},
		{"f13", bench.SparkLatency},
		{"chaos", bench.ChaosRobustness},
	}
	start := time.Now()
	for _, e := range experiments {
		if !all && !want[e.key] {
			continue
		}
		t0 := time.Now()
		rep, err := e.run(sc)
		if err != nil {
			log.Fatalf("%s: %v", e.key, err)
		}
		fmt.Println(rep)
		fmt.Printf("(%s took %v)\n\n", e.key, time.Since(t0).Round(time.Millisecond))
	}
	if all || want["ablations"] {
		reps, err := bench.Ablations(sc)
		if err != nil {
			log.Fatalf("ablations: %v", err)
		}
		for _, r := range reps {
			fmt.Println(r)
		}
	}

	// The shuffle data-plane ablations are computed as structured rows so
	// -shuffle-json can persist them (BENCH_shuffle.json) alongside the
	// printed tables.
	var shufflePayload struct {
		Scale    string                        `json:"scale"`
		Sort     []bench.ShuffleBenchResult    `json:"sort,omitempty"`
		Codec    []bench.ShuffleCodecResult    `json:"codec,omitempty"`
		Pipeline []bench.ShufflePipelineResult `json:"pipeline,omitempty"`
	}
	shufflePayload.Scale = sc.Name
	if all || want["shuffle-sort"] {
		rows, err := bench.ShuffleSortResults(sc)
		if err != nil {
			log.Fatalf("shuffle-sort: %v", err)
		}
		shufflePayload.Sort = rows
		fmt.Println(bench.ShuffleSortReport(rows))
	}
	if all || want["shuffle-codec"] {
		rows, err := bench.ShuffleCodecResults(sc)
		if err != nil {
			log.Fatalf("shuffle-codec: %v", err)
		}
		shufflePayload.Codec = rows
		fmt.Println(bench.ShuffleCodecReport(rows))
	}
	if all || want["shuffle-pipeline"] {
		rows, err := bench.ShufflePipelineResults(sc)
		if err != nil {
			log.Fatalf("shuffle-pipeline: %v", err)
		}
		shufflePayload.Pipeline = rows
		fmt.Println(bench.ShufflePipelineReport(rows))
	}
	// The vectorization ablation (ISSUE 9): relational kernels row vs
	// columnar, plus the Hive/Pig engines end to end under row, columnar
	// and columnar+flate. Opt-in like the other data-plane suites.
	if want["relop"] {
		micro, err := bench.RelopMicroResults(sc)
		if err != nil {
			log.Fatalf("relop micro: %v", err)
		}
		fmt.Println(bench.RelopMicroReport(micro))
		e2e, err := bench.RelopE2EResults(sc)
		if err != nil {
			log.Fatalf("relop e2e: %v", err)
		}
		fmt.Println(bench.RelopE2EReport(e2e))
		if *relopJSON != "" {
			var payload struct {
				Scale string                   `json:"scale"`
				Micro []bench.RelopMicroResult `json:"micro"`
				E2E   []bench.RelopE2EResult   `json:"e2e"`
			}
			payload.Scale = sc.Name
			payload.Micro = micro
			payload.E2E = e2e
			blob, err := json.MarshalIndent(payload, "", "  ")
			if err != nil {
				log.Fatalf("relop-json: %v", err)
			}
			if err := os.WriteFile(*relopJSON, append(blob, '\n'), 0o644); err != nil {
				log.Fatalf("relop-json: %v", err)
			}
			fmt.Printf("wrote %s\n", *relopJSON)
		}
	}

	// Control-plane throughput (ROADMAP item 2). Opt-in, not part of
	// "all": the flagship 10k-node / 100k-task DAG run takes minutes.
	if want["controlplane"] || want["controlplane-quick"] {
		rows, err := bench.ControlPlaneResults(want["controlplane"])
		if err != nil {
			log.Fatalf("controlplane: %v", err)
		}
		fmt.Println(bench.ControlPlaneReport(rows))
		if *cpJSON != "" {
			var payload struct {
				Baseline []bench.ControlPlaneResult `json:"baseline,omitempty"`
				Current  []bench.ControlPlaneResult `json:"current"`
				Speedups map[string]string          `json:"speedups,omitempty"`
			}
			payload.Baseline = bench.ControlPlaneBaseline
			payload.Current = rows
			payload.Speedups = map[string]string{}
			for _, r := range rows {
				if s := bench.ControlPlaneSpeedup(rows, r.Experiment); s > 0 {
					payload.Speedups[r.Experiment] = fmt.Sprintf("%.1fx", s)
				}
			}
			if len(payload.Speedups) == 0 {
				payload.Speedups = nil
			}
			blob, err := json.MarshalIndent(payload, "", "  ")
			if err != nil {
				log.Fatalf("controlplane-json: %v", err)
			}
			if err := os.WriteFile(*cpJSON, append(blob, '\n'), 0o644); err != nil {
				log.Fatalf("controlplane-json: %v", err)
			}
			fmt.Printf("wrote %s\n", *cpJSON)
		}
	}

	// Multi-tenant service throughput (ISSUE 7). Opt-in like controlplane:
	// the open-loop flood is load, not a paper figure.
	if want["service"] {
		rows, err := bench.ServiceResults()
		if err != nil {
			log.Fatalf("service: %v", err)
		}
		fmt.Println(bench.ServiceReport(rows))
		if *serviceJSON != "" {
			var payload struct {
				Current []bench.ServiceBenchResult `json:"current"`
			}
			payload.Current = rows
			blob, err := json.MarshalIndent(payload, "", "  ")
			if err != nil {
				log.Fatalf("service-json: %v", err)
			}
			if err := os.WriteFile(*serviceJSON, append(blob, '\n'), 0o644); err != nil {
				log.Fatalf("service-json: %v", err)
			}
			fmt.Printf("wrote %s\n", *serviceJSON)
		}
	}

	// BSP graph engine (ISSUE 8). Opt-in like controlplane/service: the
	// superstep loops and the cold-load ablation are load, not a figure.
	if want["graph"] {
		rows, err := bench.GraphResults()
		if err != nil {
			log.Fatalf("graph: %v", err)
		}
		fmt.Println(bench.GraphReport(rows))
		if *graphJSON != "" {
			var payload struct {
				Current []bench.GraphBenchResult `json:"current"`
			}
			payload.Current = rows
			blob, err := json.MarshalIndent(payload, "", "  ")
			if err != nil {
				log.Fatalf("graph-json: %v", err)
			}
			if err := os.WriteFile(*graphJSON, append(blob, '\n'), 0o644); err != nil {
				log.Fatalf("graph-json: %v", err)
			}
			fmt.Printf("wrote %s\n", *graphJSON)
		}
	}

	if *shuffleJSON != "" && (shufflePayload.Sort != nil || shufflePayload.Codec != nil || shufflePayload.Pipeline != nil) {
		blob, err := json.MarshalIndent(shufflePayload, "", "  ")
		if err != nil {
			log.Fatalf("shuffle-json: %v", err)
		}
		if err := os.WriteFile(*shuffleJSON, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("shuffle-json: %v", err)
		}
		fmt.Printf("wrote %s\n", *shuffleJSON)
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}
