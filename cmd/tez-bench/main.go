// tez-bench regenerates the paper's evaluation (Figures 8–13) and the
// ablation suite on the simulated cluster and prints the tables/series.
//
//	go run ./cmd/tez-bench                 # everything, small scale
//	go run ./cmd/tez-bench -scale full     # closer to paper parameters
//	go run ./cmd/tez-bench -exp f8,f11     # selected experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"tez/internal/bench"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small | full")
	expFlag := flag.String("exp", "all", "comma-separated experiments: f8,f9,f10,f11,f12,f13,chaos,ablations")
	flag.Parse()

	var sc bench.Scale
	switch *scaleFlag {
	case "small":
		sc = bench.Small
	case "full":
		sc = bench.Full
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	type experiment struct {
		key string
		run func(bench.Scale) (*bench.Report, error)
	}
	experiments := []experiment{
		{"f8", bench.HiveTPCDS},
		{"f9", bench.HiveTPCH},
		{"f10", bench.PigProduction},
		{"f11", bench.KMeansIterations},
		{"f12", bench.SparkTimelines},
		{"f13", bench.SparkLatency},
		{"chaos", bench.ChaosRobustness},
	}
	start := time.Now()
	for _, e := range experiments {
		if !all && !want[e.key] {
			continue
		}
		t0 := time.Now()
		rep, err := e.run(sc)
		if err != nil {
			log.Fatalf("%s: %v", e.key, err)
		}
		fmt.Println(rep)
		fmt.Printf("(%s took %v)\n\n", e.key, time.Since(t0).Round(time.Millisecond))
	}
	if all || want["ablations"] {
		reps, err := bench.Ablations(sc)
		if err != nil {
			log.Fatalf("ablations: %v", err)
		}
		for _, r := range reps {
			fmt.Println(r)
		}
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}
