// tez-fsm dumps the AM's declared control-plane transition tables — the
// DAG, vertex, task and attempt lifecycles of §3.3 — as Mermaid
// stateDiagram-v2 blocks or Graphviz DOT digraphs. The diagrams in
// DESIGN.md §8 are generated with it.
//
//	go run ./cmd/tez-fsm                          # all machines, Mermaid
//	go run ./cmd/tez-fsm -format dot              # Graphviz
//	go run ./cmd/tez-fsm -machine attempt         # one machine
//	go run ./cmd/tez-fsm -format mermaid -fence   # fenced ```mermaid blocks
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tez/internal/am"
)

func main() {
	format := flag.String("format", "mermaid", "output format: mermaid | dot")
	machine := flag.String("machine", "all", "machine to dump: dag | vertex | task | attempt | all")
	fence := flag.Bool("fence", false, "wrap Mermaid output in ```mermaid fences (markdown embedding)")
	flag.Parse()

	tables, err := am.LifecycleTables(*format)
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	for _, tb := range tables {
		if *machine != "all" && *machine != tb.Machine {
			continue
		}
		if printed > 0 {
			fmt.Println()
		}
		fmt.Printf("## %s lifecycle\n\n", tb.Machine)
		if *fence && *format == "mermaid" {
			fmt.Printf("```mermaid\n%s```\n", tb.Text)
		} else {
			fmt.Print(tb.Text)
		}
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "tez-fsm: unknown machine %q (want dag, vertex, task, attempt or all)\n", *machine)
		os.Exit(2)
	}
}
