// tez-dag builds a demo DAG (wordcount or a Hive query plan), prints its
// logical structure and physical expansion, runs it, and dumps the
// execution trace — a small debugging/teaching tool for the framework.
//
//	go run ./cmd/tez-dag
//	go run ./cmd/tez-dag -sql "SELECT o_custkey, count(*) AS n FROM orders GROUP BY o_custkey"
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/data"
	"tez/internal/hive"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/relop"
	"tez/internal/runtime"
)

func init() {
	library.RegisterMapFunc("dagdemo.tokenize", func(_, line []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(line)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("dagdemo.sum", func(k []byte, vs [][]byte, out runtime.KVWriter) error {
		return out.Write(k, []byte(strconv.Itoa(len(vs))))
	})
}

func main() {
	sql := flag.String("sql", "", "optional: print and run a Hive query plan instead of wordcount")
	flag.Parse()

	plat := platform.New(platform.Default(4))
	defer plat.Stop()

	var d *dag.DAG
	if *sql != "" {
		tp, err := data.GenTPCH(plat.FS, 400, 1)
		if err != nil {
			log.Fatal(err)
		}
		eng := hive.NewEngine()
		eng.Register(tp.Tables()...)
		roots, err := eng.Plan(*sql, "/out/dag-demo", false)
		if err != nil {
			log.Fatal(err)
		}
		d, err = relop.EmitDAGOnly(relop.Config{DefaultPartitions: 4}, "query", roots)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		w, err := library.CreateRecordFile(plat.FS, "/in/demo", plat.FS.LiveNodes()[0])
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			_ = w.Write(nil, []byte("alpha beta gamma alpha"))
		}
		_ = w.Close()
		d = dag.New("wordcount")
		tok := d.AddVertex("tokenizer", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "dagdemo.tokenize"}), -1)
		tok.Sources = []dag.DataSource{{
			Name:        "text",
			Input:       plugin.Desc(library.DFSSourceInputName, nil),
			Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: []string{"/in/demo"}}),
		}}
		sum := d.AddVertex("summation", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "dagdemo.sum"}), 4)
		sum.Sinks = []dag.DataSink{{
			Name:      "counts",
			Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/dag-demo"}),
			Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/dag-demo"}),
		}}
		d.Connect(tok, sum, dag.EdgeProperty{
			Movement: dag.ScatterGather,
			Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
			Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
		})
	}

	fmt.Printf("logical DAG %q:\n", d.Name)
	order, err := d.TopoOrder()
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range order {
		v := d.Vertex(name)
		par := "runtime-determined"
		if v.Parallelism > 0 {
			par = fmt.Sprintf("%d tasks", v.Parallelism)
		}
		fmt.Printf("  vertex %-24s processor=%-32s %s", v.Name, v.Processor.Name, par)
		if len(v.Sources) > 0 {
			fmt.Printf("  sources=%d", len(v.Sources))
		}
		if len(v.Sinks) > 0 {
			fmt.Printf("  sinks=%d", len(v.Sinks))
		}
		fmt.Println()
	}
	for _, e := range d.Edges {
		fmt.Printf("  edge   %-24s -> %-22s %s\n", e.From, e.To, e.Property.Movement)
	}

	sess := am.NewSession(plat, am.Config{Name: "tez-dag"})
	defer sess.Close()
	res, err := sess.Run(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution: %s in %v\n", res.Status, res.Duration.Round(time.Millisecond))
	fmt.Printf("counters: %s\n\nphysical execution trace:\n", res.Counters)

	recs := res.Trace.Records()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	for _, r := range recs {
		fmt.Printf("  %-24s task %02d attempt %d  %-11s on %-8s %-10s %6.2fms\n",
			r.Vertex, r.Task, r.Attempt, r.Locality, r.Node, r.Outcome,
			float64(r.End.Sub(r.Start).Microseconds())/1000)
	}
}
