package dag

import (
	"fmt"

	"tez/internal/plugin"
)

// EdgeContext carries the information an EdgeManager routes with. The AM
// rebuilds managers whenever a reconfiguration (e.g. the
// ShuffleVertexManager shrinking destination parallelism) changes any
// field.
type EdgeContext struct {
	SrcParallelism  int
	DestParallelism int
	// BasePartitions is the number of physical partitions each source task
	// produces on a scatter-gather edge. It normally equals the
	// destination parallelism the DAG was submitted with; after an
	// auto-parallelism reconfiguration the (smaller) destination task set
	// divides these partitions among themselves.
	BasePartitions int
	// Payload configures custom managers.
	Payload []byte
}

// EdgeManager is the pluggable routing table of an edge (§3.1): it decides
// physical input/output counts and routes a producer's physical output to
// consumer task inputs. Implementations must be deterministic.
type EdgeManager interface {
	Initialize(ctx EdgeContext) error
	// NumSourceTaskPhysicalOutputs is how many physical outputs each
	// source task produces.
	NumSourceTaskPhysicalOutputs(srcTask int) int
	// NumDestinationTaskPhysicalInputs is how many physical inputs the
	// destination task consumes.
	NumDestinationTaskPhysicalInputs(destTask int) int
	// Route maps (srcTask, srcOutputIndex) to destination tasks and the
	// physical input index at each destination.
	Route(srcTask, srcOutputIndex int) map[int]int
	// SourceTaskOfInput inverts Route for input-error handling: which
	// source task produced the data arriving at (destTask, inputIndex).
	SourceTaskOfInput(destTask, inputIndex int) int
}

// NewEdgeManager instantiates the manager for an edge property: a built-in
// for the three standard movements, or the named plugin for custom edges.
func NewEdgeManager(p EdgeProperty, ctx EdgeContext) (EdgeManager, error) {
	var m EdgeManager
	switch p.Movement {
	case OneToOne:
		m = &OneToOneEdgeManager{}
	case Broadcast:
		m = &BroadcastEdgeManager{}
	case ScatterGather:
		m = &ScatterGatherEdgeManager{}
	case CustomMovement:
		f, err := plugin.Lookup(plugin.KindEdgeManager, p.Manager.Name)
		if err != nil {
			return nil, err
		}
		factory, ok := f.(func() EdgeManager)
		if !ok {
			return nil, fmt.Errorf("dag: edge manager %q has factory type %T", p.Manager.Name, f)
		}
		m = factory()
		ctx.Payload = p.Manager.Payload
	default:
		return nil, fmt.Errorf("dag: unknown movement %v", p.Movement)
	}
	if err := m.Initialize(ctx); err != nil {
		return nil, err
	}
	return m, nil
}

// RegisterEdgeManager installs a custom edge manager factory.
func RegisterEdgeManager(name string, factory func() EdgeManager) {
	plugin.Register(plugin.KindEdgeManager, name, factory)
}

// OneToOneEdgeManager connects source task i to destination task i.
type OneToOneEdgeManager struct{ ctx EdgeContext }

// Initialize validates equal parallelism.
func (m *OneToOneEdgeManager) Initialize(ctx EdgeContext) error {
	if ctx.SrcParallelism != ctx.DestParallelism {
		return fmt.Errorf("dag: one-to-one edge with src=%d dest=%d tasks", ctx.SrcParallelism, ctx.DestParallelism)
	}
	m.ctx = ctx
	return nil
}

func (m *OneToOneEdgeManager) NumSourceTaskPhysicalOutputs(int) int     { return 1 }
func (m *OneToOneEdgeManager) NumDestinationTaskPhysicalInputs(int) int { return 1 }

// Route sends output 0 of task i to input 0 of task i.
func (m *OneToOneEdgeManager) Route(srcTask, srcOutputIndex int) map[int]int {
	return map[int]int{srcTask: 0}
}

// SourceTaskOfInput is the identity.
func (m *OneToOneEdgeManager) SourceTaskOfInput(destTask, _ int) int { return destTask }

// BroadcastEdgeManager sends each source task's single output to every
// destination task; destination input index i carries source task i.
type BroadcastEdgeManager struct{ ctx EdgeContext }

func (m *BroadcastEdgeManager) Initialize(ctx EdgeContext) error { m.ctx = ctx; return nil }

func (m *BroadcastEdgeManager) NumSourceTaskPhysicalOutputs(int) int { return 1 }

func (m *BroadcastEdgeManager) NumDestinationTaskPhysicalInputs(int) int {
	return m.ctx.SrcParallelism
}

// Route fans output 0 of srcTask out to all destinations at input srcTask.
func (m *BroadcastEdgeManager) Route(srcTask, srcOutputIndex int) map[int]int {
	out := make(map[int]int, m.ctx.DestParallelism)
	for d := 0; d < m.ctx.DestParallelism; d++ {
		out[d] = srcTask
	}
	return out
}

// SourceTaskOfInput: input index == source task.
func (m *BroadcastEdgeManager) SourceTaskOfInput(_, inputIndex int) int { return inputIndex }

// ScatterGatherEdgeManager implements the shuffle pattern. Every source
// task produces BasePartitions physical outputs (partitions). Destination
// tasks own contiguous partition ranges — one partition each in the normal
// case, several when the ShuffleVertexManager has shrunk the destination
// parallelism below the partition count (auto-reduce, Figure 6).
//
// Physical inputs at destination d are laid out partition-major:
// for the j-th partition owned by d and source task s, the input index is
// j*SrcParallelism + s.
type ScatterGatherEdgeManager struct {
	ctx   EdgeContext
	parts int // base partitions
}

// Initialize validates the geometry.
func (m *ScatterGatherEdgeManager) Initialize(ctx EdgeContext) error {
	m.parts = ctx.BasePartitions
	if m.parts <= 0 {
		m.parts = ctx.DestParallelism
	}
	if ctx.DestParallelism > m.parts {
		return fmt.Errorf("dag: scatter-gather with %d dest tasks > %d partitions", ctx.DestParallelism, m.parts)
	}
	if ctx.DestParallelism <= 0 {
		return fmt.Errorf("dag: scatter-gather with %d dest tasks", ctx.DestParallelism)
	}
	m.ctx = ctx
	return nil
}

// partitionRange returns [start, end) of partitions owned by dest task d:
// an even split with the first (parts % D) tasks taking one extra.
func (m *ScatterGatherEdgeManager) partitionRange(d int) (int, int) {
	D := m.ctx.DestParallelism
	k, rem := m.parts/D, m.parts%D
	var start int
	if d < rem {
		start = d * (k + 1)
		return start, start + k + 1
	}
	start = rem*(k+1) + (d-rem)*k
	return start, start + k
}

// destOfPartition inverts partitionRange.
func (m *ScatterGatherEdgeManager) destOfPartition(p int) int {
	D := m.ctx.DestParallelism
	k, rem := m.parts/D, m.parts%D
	boundary := rem * (k + 1)
	if p < boundary {
		return p / (k + 1)
	}
	if k == 0 {
		return D - 1 // unreachable when dest <= parts, defensive
	}
	return rem + (p-boundary)/k
}

func (m *ScatterGatherEdgeManager) NumSourceTaskPhysicalOutputs(int) int { return m.parts }

func (m *ScatterGatherEdgeManager) NumDestinationTaskPhysicalInputs(destTask int) int {
	s, e := m.partitionRange(destTask)
	return (e - s) * m.ctx.SrcParallelism
}

// Route sends partition p of srcTask to the destination owning p.
func (m *ScatterGatherEdgeManager) Route(srcTask, srcOutputIndex int) map[int]int {
	d := m.destOfPartition(srcOutputIndex)
	start, _ := m.partitionRange(d)
	j := srcOutputIndex - start
	return map[int]int{d: j*m.ctx.SrcParallelism + srcTask}
}

// SourceTaskOfInput inverts the partition-major layout.
func (m *ScatterGatherEdgeManager) SourceTaskOfInput(_, inputIndex int) int {
	return inputIndex % m.ctx.SrcParallelism
}
