package dag

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: random forward-edge DAGs always validate and their topological
// order respects every edge; adding any back edge makes validation fail.
func TestQuickRandomDAGTopo(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		d := New("rand")
		verts := make([]*Vertex, n)
		for i := 0; i < n; i++ {
			verts[i] = d.AddVertex(fmt.Sprintf("v%d", i), proc(), 1+rng.Intn(4))
		}
		// Forward edges only (i < j) — guaranteed acyclic; dedupe pairs.
		seen := map[[2]int]bool{}
		for k := 0; k < int(eRaw%12); k++ {
			i := rng.Intn(n - 1)
			j := i + 1 + rng.Intn(n-i-1)
			if seen[[2]int{i, j}] {
				continue
			}
			seen[[2]int{i, j}] = true
			d.Connect(verts[i], verts[j], kvEdge(ScatterGather))
		}
		if err := d.Validate(); err != nil {
			return false
		}
		order, err := d.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := map[string]int{}
		for i, name := range order {
			pos[name] = i
		}
		for _, e := range d.Edges {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		// A back edge (j -> i with i < j, both already connected forward or
		// not) must create a cycle whenever it closes a path; the simplest
		// guaranteed cycle is reversing an existing edge.
		if len(d.Edges) > 0 {
			e := d.Edges[rng.Intn(len(d.Edges))]
			d.Connect(d.Vertex(e.To), d.Vertex(e.From), kvEdge(Broadcast))
			if err := d.Validate(); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
