package dag

import (
	"strings"
	"testing"

	"tez/internal/plugin"
)

func proc() plugin.Descriptor { return plugin.Desc("test.proc", nil) }

func kvEdge(m MovementType) EdgeProperty {
	return EdgeProperty{
		Movement: m,
		Output:   plugin.Desc("test.out", nil),
		Input:    plugin.Desc("test.in", nil),
	}
}

func TestValidateHappyPath(t *testing.T) {
	d := New("wordcount")
	tok := d.AddVertex("tokenizer", proc(), 4)
	sum := d.AddVertex("summation", proc(), 2)
	d.Connect(tok, sum, kvEdge(ScatterGather))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "tokenizer" || order[1] != "summation" {
		t.Fatalf("order = %v", order)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	d := New("cyclic")
	a := d.AddVertex("a", proc(), 1)
	b := d.AddVertex("b", proc(), 1)
	c := d.AddVertex("c", proc(), 1)
	d.Connect(a, b, kvEdge(OneToOne))
	d.Connect(b, c, kvEdge(OneToOne))
	d.Connect(c, a, kvEdge(OneToOne))
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name  string
		build func() *DAG
		want  string
	}{
		{"empty name", func() *DAG { return New("") }, "empty name"},
		{"no vertices", func() *DAG { return New("d") }, "no vertices"},
		{"dup vertex", func() *DAG {
			d := New("d")
			d.AddVertex("v", proc(), 1)
			d.AddVertex("v", proc(), 1)
			return d
		}, "duplicate vertex"},
		{"no processor", func() *DAG {
			d := New("d")
			d.AddVertex("v", plugin.Descriptor{}, 1)
			return d
		}, "no processor"},
		{"bad parallelism", func() *DAG {
			d := New("d")
			d.AddVertex("v", proc(), 0)
			return d
		}, "invalid parallelism"},
		{"self edge", func() *DAG {
			d := New("d")
			v := d.AddVertex("v", proc(), 1)
			d.Connect(v, v, kvEdge(OneToOne))
			return d
		}, "self edge"},
		{"dup edge", func() *DAG {
			d := New("d")
			a := d.AddVertex("a", proc(), 1)
			b := d.AddVertex("b", proc(), 1)
			d.Connect(a, b, kvEdge(OneToOne))
			d.Connect(a, b, kvEdge(Broadcast))
			return d
		}, "duplicate edge"},
		{"missing transport", func() *DAG {
			d := New("d")
			a := d.AddVertex("a", proc(), 1)
			b := d.AddVertex("b", proc(), 1)
			d.Connect(a, b, EdgeProperty{Movement: OneToOne})
			return d
		}, "missing transport"},
		{"custom without manager", func() *DAG {
			d := New("d")
			a := d.AddVertex("a", proc(), 1)
			b := d.AddVertex("b", proc(), 1)
			d.Connect(a, b, kvEdge(CustomMovement))
			return d
		}, "no edge manager"},
		{"one-to-one mismatch", func() *DAG {
			d := New("d")
			a := d.AddVertex("a", proc(), 2)
			b := d.AddVertex("b", proc(), 3)
			d.Connect(a, b, kvEdge(OneToOne))
			return d
		}, "one-to-one"},
		{"source without input", func() *DAG {
			d := New("d")
			v := d.AddVertex("v", proc(), 1)
			v.Sources = append(v.Sources, DataSource{Name: "s"})
			return d
		}, "no input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	d := New("diamond")
	a := d.AddVertex("a", proc(), 1)
	b := d.AddVertex("b", proc(), 1)
	c := d.AddVertex("c", proc(), 1)
	e := d.AddVertex("e", proc(), 1)
	d.Connect(a, b, kvEdge(Broadcast))
	d.Connect(a, c, kvEdge(Broadcast))
	d.Connect(b, e, kvEdge(ScatterGather))
	d.Connect(c, e, kvEdge(ScatterGather))
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, edge := range d.Edges {
		if pos[edge.From] >= pos[edge.To] {
			t.Fatalf("topo order violates edge %s->%s: %v", edge.From, edge.To, order)
		}
	}
}

func TestInOutEdges(t *testing.T) {
	d := New("d")
	a := d.AddVertex("a", proc(), 1)
	b := d.AddVertex("b", proc(), 1)
	c := d.AddVertex("c", proc(), 1)
	d.Connect(a, c, kvEdge(Broadcast))
	d.Connect(b, c, kvEdge(Broadcast))
	if got := len(d.InEdges("c")); got != 2 {
		t.Fatalf("InEdges(c) = %d", got)
	}
	if got := len(d.OutEdges("a")); got != 1 {
		t.Fatalf("OutEdges(a) = %d", got)
	}
	if d.Vertex("b") == nil || d.Vertex("zz") != nil {
		t.Fatal("Vertex lookup wrong")
	}
}
