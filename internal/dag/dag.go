// Package dag implements the Tez DAG API (§3.1): vertices carrying a
// user-supplied processor, edges whose connection pattern (one-to-one,
// broadcast, scatter-gather, or a custom EdgeManager plugin) and transport
// (the input/output descriptor pair) are specified separately, plus
// first-class data sources (with initializers) and data sinks (with
// committers). The package also performs the logical→physical expansion
// bookkeeping of Figure 2 via the EdgeManager routing interfaces.
package dag

import (
	"fmt"

	"tez/internal/cluster"
	"tez/internal/plugin"
)

// MovementType is the logical connection pattern of an edge (Figure 3).
type MovementType int

const (
	// OneToOne connects source task i to destination task i.
	OneToOne MovementType = iota
	// Broadcast sends every source task's output to every destination task.
	Broadcast
	// ScatterGather partitions every source task's output and sends
	// partition p to the destination task(s) owning p (the shuffle).
	ScatterGather
	// CustomMovement delegates routing to the edge's EdgeManager plugin.
	CustomMovement
)

func (m MovementType) String() string {
	switch m {
	case OneToOne:
		return "ONE_TO_ONE"
	case Broadcast:
		return "BROADCAST"
	case ScatterGather:
		return "SCATTER_GATHER"
	default:
		return "CUSTOM"
	}
}

// SchedulingType says when destination tasks may be scheduled relative to
// their source tasks.
type SchedulingType int

const (
	// Sequential destinations start after sources complete (subject to
	// slow-start, which may schedule them early to overlap the fetch).
	Sequential SchedulingType = iota
	// Concurrent destinations may run at the same time as sources.
	Concurrent
)

// DataSourceType describes the resilience of edge data (§4.3): ephemeral
// data dies with its producing task's machine and triggers re-execution
// cascades; reliable data is a barrier to such cascades.
type DataSourceType int

const (
	// Ephemeral: intermediate data is lost if the producer's node dies.
	Ephemeral DataSourceType = iota
	// Reliable: data survives node loss (e.g. stored in the DFS).
	Reliable
)

// EdgeProperty bundles the logical (movement, scheduling, resilience) and
// physical (output/input descriptor pair) aspects of an edge.
type EdgeProperty struct {
	Movement   MovementType
	Scheduling SchedulingType
	Resilience DataSourceType
	// Output is the producer-side output class; Input is the consumer-side
	// input class. They must be a compatible pair (§3.1).
	Output plugin.Descriptor
	Input  plugin.Descriptor
	// Manager configures a custom EdgeManager (Movement == CustomMovement).
	Manager plugin.Descriptor
}

// Edge connects two vertices of the DAG.
type Edge struct {
	From     string
	To       string
	Property EdgeProperty
}

// DataSource is a first-class initial input of a vertex (§3.5). The
// optional Initializer runs in the AM before the vertex starts, decides
// the read pattern (splits) and may set the vertex parallelism.
type DataSource struct {
	Name        string
	Input       plugin.Descriptor
	Initializer plugin.Descriptor
}

// DataSink is a final output of a vertex. The optional Committer runs
// once, after vertex success, to make output visible (§3.1).
type DataSink struct {
	Name      string
	Output    plugin.Descriptor
	Committer plugin.Descriptor
}

// Vertex is a logical processing step.
type Vertex struct {
	Name string
	// Processor holds the application logic run by each task.
	Processor plugin.Descriptor
	// Parallelism is the number of tasks; -1 means decided at runtime by
	// an initializer or the vertex manager.
	Parallelism int
	// Resource per task. Zero means the AM default.
	Resource cluster.Resource
	// Manager optionally names the VertexManager controlling this vertex;
	// unset picks a built-in by vertex characteristics (§3.4).
	Manager plugin.Descriptor
	// LocationHints optionally pins task i near LocationHints[i].
	LocationHints [][]string

	Sources []DataSource
	Sinks   []DataSink
}

// DAG is a logical directed acyclic graph of vertices.
type DAG struct {
	Name     string
	Vertices []*Vertex
	Edges    []*Edge

	byName map[string]*Vertex
}

// New creates an empty DAG.
func New(name string) *DAG {
	return &DAG{Name: name, byName: map[string]*Vertex{}}
}

// AddVertex adds a vertex with the given processor and static parallelism
// (-1 for runtime-determined) and returns it for chaining.
func (d *DAG) AddVertex(name string, processor plugin.Descriptor, parallelism int) *Vertex {
	v := &Vertex{Name: name, Processor: processor, Parallelism: parallelism}
	d.Vertices = append(d.Vertices, v)
	d.byName[name] = v
	return v
}

// Vertex returns the named vertex, or nil.
func (d *DAG) Vertex(name string) *Vertex {
	if d.byName == nil {
		d.byName = map[string]*Vertex{}
		for _, v := range d.Vertices {
			d.byName[v.Name] = v
		}
	}
	return d.byName[name]
}

// Connect adds an edge from → to with the given property.
func (d *DAG) Connect(from, to *Vertex, p EdgeProperty) *Edge {
	e := &Edge{From: from.Name, To: to.Name, Property: p}
	d.Edges = append(d.Edges, e)
	return e
}

// InEdges returns edges whose destination is the named vertex.
func (d *DAG) InEdges(name string) []*Edge {
	var out []*Edge
	for _, e := range d.Edges {
		if e.To == name {
			out = append(out, e)
		}
	}
	return out
}

// OutEdges returns edges whose source is the named vertex.
func (d *DAG) OutEdges(name string) []*Edge {
	var out []*Edge
	for _, e := range d.Edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks structural soundness: non-empty, unique vertex names,
// processors set, edges referencing known vertices, no self or duplicate
// edges, complete transport descriptors, one-to-one parallelism agreement,
// custom movement having a manager, and acyclicity.
func (d *DAG) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("dag: empty name")
	}
	if len(d.Vertices) == 0 {
		return fmt.Errorf("dag %s: no vertices", d.Name)
	}
	seen := map[string]bool{}
	for _, v := range d.Vertices {
		if v.Name == "" {
			return fmt.Errorf("dag %s: vertex with empty name", d.Name)
		}
		if seen[v.Name] {
			return fmt.Errorf("dag %s: duplicate vertex %q", d.Name, v.Name)
		}
		seen[v.Name] = true
		if v.Processor.IsZero() {
			return fmt.Errorf("dag %s: vertex %q has no processor", d.Name, v.Name)
		}
		if v.Parallelism == 0 || v.Parallelism < -1 {
			return fmt.Errorf("dag %s: vertex %q has invalid parallelism %d", d.Name, v.Name, v.Parallelism)
		}
		srcNames := map[string]bool{}
		for _, s := range v.Sources {
			if s.Input.IsZero() {
				return fmt.Errorf("dag %s: data source %q of %q has no input", d.Name, s.Name, v.Name)
			}
			if srcNames[s.Name] {
				return fmt.Errorf("dag %s: duplicate data source %q on %q", d.Name, s.Name, v.Name)
			}
			srcNames[s.Name] = true
		}
		for _, s := range v.Sinks {
			if s.Output.IsZero() {
				return fmt.Errorf("dag %s: data sink %q of %q has no output", d.Name, s.Name, v.Name)
			}
		}
	}
	type pair struct{ from, to string }
	edges := map[pair]bool{}
	for _, e := range d.Edges {
		if !seen[e.From] || !seen[e.To] {
			return fmt.Errorf("dag %s: edge %s->%s references unknown vertex", d.Name, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("dag %s: self edge on %s", d.Name, e.From)
		}
		p := pair{e.From, e.To}
		if edges[p] {
			return fmt.Errorf("dag %s: duplicate edge %s->%s", d.Name, e.From, e.To)
		}
		edges[p] = true
		if e.Property.Output.IsZero() || e.Property.Input.IsZero() {
			return fmt.Errorf("dag %s: edge %s->%s missing transport descriptors", d.Name, e.From, e.To)
		}
		if e.Property.Movement == CustomMovement && e.Property.Manager.IsZero() {
			return fmt.Errorf("dag %s: custom edge %s->%s has no edge manager", d.Name, e.From, e.To)
		}
		if e.Property.Movement == OneToOne {
			f, t := d.Vertex(e.From), d.Vertex(e.To)
			if f.Parallelism > 0 && t.Parallelism > 0 && f.Parallelism != t.Parallelism {
				return fmt.Errorf("dag %s: one-to-one edge %s->%s with parallelism %d != %d",
					d.Name, e.From, e.To, f.Parallelism, t.Parallelism)
			}
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns vertex names in a topological order (stable with
// respect to declaration order among independent vertices) or an error if
// the graph has a cycle.
func (d *DAG) TopoOrder() ([]string, error) {
	indeg := map[string]int{}
	for _, v := range d.Vertices {
		indeg[v.Name] = 0
	}
	for _, e := range d.Edges {
		indeg[e.To]++
	}
	var order []string
	remaining := len(d.Vertices)
	done := map[string]bool{}
	for remaining > 0 {
		progressed := false
		for _, v := range d.Vertices {
			if done[v.Name] || indeg[v.Name] != 0 {
				continue
			}
			done[v.Name] = true
			order = append(order, v.Name)
			remaining--
			progressed = true
			for _, e := range d.OutEdges(v.Name) {
				indeg[e.To]--
			}
		}
		if !progressed {
			return nil, fmt.Errorf("dag %s: cycle detected", d.Name)
		}
	}
	return order, nil
}
