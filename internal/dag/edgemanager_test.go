package dag

import (
	"testing"
	"testing/quick"
)

// checkRoutingInvariants verifies, for any edge manager, that:
//  1. every (srcTask, srcOutput) routes to valid destinations and input
//     indices within the destination's physical input count;
//  2. the physical inputs of every destination task are covered exactly
//     once across all routed outputs (a bijection);
//  3. SourceTaskOfInput agrees with Route.
func checkRoutingInvariants(t *testing.T, m EdgeManager, srcN, destN int) {
	t.Helper()
	covered := make([]map[int]bool, destN)
	for d := 0; d < destN; d++ {
		covered[d] = map[int]bool{}
	}
	for s := 0; s < srcN; s++ {
		outs := m.NumSourceTaskPhysicalOutputs(s)
		for o := 0; o < outs; o++ {
			for d, idx := range m.Route(s, o) {
				if d < 0 || d >= destN {
					t.Fatalf("Route(%d,%d) → bad dest %d", s, o, d)
				}
				n := m.NumDestinationTaskPhysicalInputs(d)
				if idx < 0 || idx >= n {
					t.Fatalf("Route(%d,%d) → dest %d input %d out of %d", s, o, d, idx, n)
				}
				if covered[d][idx] {
					t.Fatalf("dest %d input %d covered twice", d, idx)
				}
				covered[d][idx] = true
				if got := m.SourceTaskOfInput(d, idx); got != s {
					t.Fatalf("SourceTaskOfInput(%d,%d) = %d, want %d", d, idx, got, s)
				}
			}
		}
	}
	for d := 0; d < destN; d++ {
		if len(covered[d]) != m.NumDestinationTaskPhysicalInputs(d) {
			t.Fatalf("dest %d covered %d of %d inputs", d, len(covered[d]),
				m.NumDestinationTaskPhysicalInputs(d))
		}
	}
}

func TestOneToOneRouting(t *testing.T) {
	m := &OneToOneEdgeManager{}
	if err := m.Initialize(EdgeContext{SrcParallelism: 5, DestParallelism: 5}); err != nil {
		t.Fatal(err)
	}
	checkRoutingInvariants(t, m, 5, 5)
	if err := (&OneToOneEdgeManager{}).Initialize(EdgeContext{SrcParallelism: 2, DestParallelism: 3}); err == nil {
		t.Fatal("mismatched one-to-one accepted")
	}
}

func TestBroadcastRouting(t *testing.T) {
	m := &BroadcastEdgeManager{}
	if err := m.Initialize(EdgeContext{SrcParallelism: 3, DestParallelism: 4}); err != nil {
		t.Fatal(err)
	}
	checkRoutingInvariants(t, m, 3, 4)
	r := m.Route(1, 0)
	if len(r) != 4 {
		t.Fatalf("broadcast reached %d dests", len(r))
	}
	for _, idx := range r {
		if idx != 1 {
			t.Fatalf("broadcast input index %d, want srcTask 1", idx)
		}
	}
}

func TestScatterGatherIdentity(t *testing.T) {
	// Normal case: partitions == dest tasks.
	m := &ScatterGatherEdgeManager{}
	if err := m.Initialize(EdgeContext{SrcParallelism: 4, DestParallelism: 3, BasePartitions: 3}); err != nil {
		t.Fatal(err)
	}
	checkRoutingInvariants(t, m, 4, 3)
	// Partition p of any src goes to dest p.
	for s := 0; s < 4; s++ {
		for p := 0; p < 3; p++ {
			r := m.Route(s, p)
			if len(r) != 1 {
				t.Fatalf("Route fan-out %d", len(r))
			}
			for d := range r {
				if d != p {
					t.Fatalf("partition %d routed to dest %d", p, d)
				}
			}
		}
	}
}

func TestScatterGatherAutoReduceGrouping(t *testing.T) {
	// Auto-reduced: 10 partitions consumed by 3 dest tasks.
	m := &ScatterGatherEdgeManager{}
	if err := m.Initialize(EdgeContext{SrcParallelism: 2, DestParallelism: 3, BasePartitions: 10}); err != nil {
		t.Fatal(err)
	}
	checkRoutingInvariants(t, m, 2, 3)
	// 10 partitions over 3 tasks → 4,3,3; inputs = parts*src.
	wantInputs := []int{8, 6, 6}
	for d, want := range wantInputs {
		if got := m.NumDestinationTaskPhysicalInputs(d); got != want {
			t.Fatalf("dest %d inputs = %d, want %d", d, got, want)
		}
	}
	// Every partition routed to exactly one dest, ranges contiguous.
	prev := -1
	for p := 0; p < 10; p++ {
		var dest int
		for d := range m.Route(0, p) {
			dest = d
		}
		if dest < prev {
			t.Fatalf("partition %d dest %d < previous %d (not contiguous)", p, dest, prev)
		}
		prev = dest
	}
}

func TestScatterGatherRejectsBadGeometry(t *testing.T) {
	m := &ScatterGatherEdgeManager{}
	if err := m.Initialize(EdgeContext{SrcParallelism: 2, DestParallelism: 5, BasePartitions: 3}); err == nil {
		t.Fatal("dest > partitions accepted")
	}
	if err := m.Initialize(EdgeContext{SrcParallelism: 2, DestParallelism: 0, BasePartitions: 3}); err == nil {
		t.Fatal("zero dest accepted")
	}
}

// Property: routing invariants hold for arbitrary scatter-gather geometry.
func TestQuickScatterGatherInvariants(t *testing.T) {
	f := func(srcRaw, destRaw, partsRaw uint8) bool {
		src := int(srcRaw%6) + 1
		parts := int(partsRaw%20) + 1
		dest := int(destRaw)%parts + 1
		m := &ScatterGatherEdgeManager{}
		if err := m.Initialize(EdgeContext{SrcParallelism: src, DestParallelism: dest, BasePartitions: parts}); err != nil {
			return false
		}
		// Reuse the testing invariant checker via a sub-test shim.
		ok := true
		func() {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			covered := map[[2]int]bool{}
			total := 0
			for s := 0; s < src; s++ {
				for o := 0; o < m.NumSourceTaskPhysicalOutputs(s); o++ {
					for d, idx := range m.Route(s, o) {
						if idx < 0 || idx >= m.NumDestinationTaskPhysicalInputs(d) {
							ok = false
							return
						}
						key := [2]int{d, idx}
						if covered[key] {
							ok = false
							return
						}
						covered[key] = true
						total++
						if m.SourceTaskOfInput(d, idx) != s {
							ok = false
							return
						}
					}
				}
			}
			wantTotal := 0
			for d := 0; d < dest; d++ {
				wantTotal += m.NumDestinationTaskPhysicalInputs(d)
			}
			if total != wantTotal {
				ok = false
			}
		}()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: broadcast invariants for arbitrary geometry.
func TestQuickBroadcastInvariants(t *testing.T) {
	f := func(srcRaw, destRaw uint8) bool {
		src := int(srcRaw%8) + 1
		dest := int(destRaw%8) + 1
		m := &BroadcastEdgeManager{}
		if err := m.Initialize(EdgeContext{SrcParallelism: src, DestParallelism: dest}); err != nil {
			return false
		}
		for d := 0; d < dest; d++ {
			if m.NumDestinationTaskPhysicalInputs(d) != src {
				return false
			}
		}
		for s := 0; s < src; s++ {
			r := m.Route(s, 0)
			if len(r) != dest {
				return false
			}
			for _, idx := range r {
				if idx != s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewEdgeManagerCustomRegistry(t *testing.T) {
	RegisterEdgeManager("test.custom", func() EdgeManager { return &BroadcastEdgeManager{} })
	p := EdgeProperty{Movement: CustomMovement}
	p.Manager.Name = "test.custom"
	m, err := NewEdgeManager(p, EdgeContext{SrcParallelism: 2, DestParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*BroadcastEdgeManager); !ok {
		t.Fatalf("got %T", m)
	}
	p.Manager.Name = "test.unknown"
	if _, err := NewEdgeManager(p, EdgeContext{}); err == nil {
		t.Fatal("unknown custom manager accepted")
	}
}
