package hive

import (
	"fmt"
	"strings"

	"tez/internal/relop"
	"tez/internal/row"
)

// resolver lowers AST expressions against a schema.
type resolver struct {
	schema row.Schema
}

func (rs *resolver) resolve(e *astExpr) (*relop.Expr, row.Kind, error) {
	switch e.Kind {
	case "int":
		return relop.LitInt(e.Int), row.KindInt, nil
	case "float":
		return relop.LitFloat(e.Float), row.KindFloat, nil
	case "str":
		return relop.LitString(e.Str), row.KindString, nil
	case "ident":
		idx := rs.schema.Index(e.Name)
		if idx < 0 {
			return nil, 0, fmt.Errorf("hive: unknown column %q (have %v)", e.Name, colNames(rs.schema))
		}
		return relop.Col(idx), rs.schema.Cols[idx].Kind, nil
	case "binop":
		l, lk, err := rs.resolve(e.Args[0])
		if err != nil {
			return nil, 0, err
		}
		r, rk, err := rs.resolve(e.Args[1])
		if err != nil {
			return nil, 0, err
		}
		switch e.Op {
		case "and":
			return relop.And(l, r), row.KindInt, nil
		case "or":
			return relop.Or(l, r), row.KindInt, nil
		case "=", "!=", "<", "<=", ">", ">=":
			return relop.Cmp(e.Op, l, r), row.KindInt, nil
		case "+", "-", "*", "/":
			k := row.KindFloat
			if lk == row.KindInt && rk == row.KindInt && e.Op != "/" {
				k = row.KindInt
			}
			return relop.Arith(e.Op, l, r), k, nil
		}
		return nil, 0, fmt.Errorf("hive: unknown operator %q", e.Op)
	case "not":
		a, _, err := rs.resolve(e.Args[0])
		if err != nil {
			return nil, 0, err
		}
		return relop.Not(a), row.KindInt, nil
	case "call":
		return nil, 0, fmt.Errorf("hive: aggregate %s not allowed here", e.Name)
	case "star":
		return nil, 0, fmt.Errorf("hive: * not allowed here")
	}
	return nil, 0, fmt.Errorf("hive: cannot resolve %v", e.Kind)
}

func colNames(s row.Schema) []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// identRefs collects the table aliases an expression references.
func identRefs(e *astExpr, out map[string]bool) {
	if e == nil {
		return
	}
	if e.Kind == "ident" {
		if i := strings.IndexByte(e.Name, '.'); i > 0 {
			out[e.Name[:i]] = true
		} else {
			out[""] = true // unqualified: unknown table
		}
	}
	for _, a := range e.Args {
		identRefs(a, out)
	}
}

// splitConjuncts flattens a predicate into ANDed conjuncts.
func splitConjuncts(e *astExpr) []*astExpr {
	if e == nil {
		return nil
	}
	if e.Kind == "binop" && e.Op == "and" {
		return append(splitConjuncts(e.Args[0]), splitConjuncts(e.Args[1])...)
	}
	return []*astExpr{e}
}

func joinAst(conjuncts []*astExpr) *astExpr {
	if len(conjuncts) == 0 {
		return nil
	}
	out := conjuncts[0]
	for _, c := range conjuncts[1:] {
		out = &astExpr{Kind: "binop", Op: "and", Args: []*astExpr{out, c}}
	}
	return out
}

// hasAgg reports whether the expression contains an aggregate call.
func hasAgg(e *astExpr) bool {
	if e == nil {
		return false
	}
	if e.Kind == "call" && aggFuncs[e.Name] {
		return true
	}
	for _, a := range e.Args {
		if hasAgg(a) {
			return true
		}
	}
	return false
}

// planContext tracks the state while lowering one statement.
type planContext struct {
	eng *Engine
	// forMR disables Tez-only physical choices.
	forMR bool
}

// plan lowers a parsed statement to a relop plan ending in a store.
func (pc *planContext) plan(st *selectStmt, outPath string) (*relop.Node, error) {
	eng := pc.eng

	// FROM: base scan plus left-deep joins.
	type scanInfo struct {
		node     *relop.Node // possibly filter-wrapped
		scanNode *relop.Node // the underlying scan (pruning target)
		alias    string
		table    *relop.Table
	}
	scans := map[string]*scanInfo{}
	mkScan := func(tr tableRef) (*scanInfo, error) {
		t, ok := eng.tables[tr.Name]
		if !ok {
			return nil, fmt.Errorf("hive: unknown table %q", tr.Name)
		}
		n := relop.Scan(t)
		n.OutSchema = t.Schema.Qualify(tr.Alias)
		si := &scanInfo{node: n, scanNode: n, alias: tr.Alias, table: t}
		if scans[tr.Alias] != nil {
			return nil, fmt.Errorf("hive: duplicate alias %q", tr.Alias)
		}
		scans[tr.Alias] = si
		return si, nil
	}
	base, err := mkScan(st.From)
	if err != nil {
		return nil, err
	}

	// WHERE: push single-table conjuncts into scans.
	aliasOf := func(e *astExpr) string {
		refs := map[string]bool{}
		identRefs(e, refs)
		if len(refs) == 1 {
			for a := range refs {
				return a
			}
		}
		return ""
	}
	var postJoin []*astExpr
	pushed := map[string][]*astExpr{}
	for _, c := range splitConjuncts(st.Where) {
		a := aliasOf(c)
		if a != "" && scans[a] == nil {
			// References an alias joined later; classify after scans exist
			// (we create all scans first below).
		}
		pushed[a] = append(pushed[a], c)
	}
	// Create join scans before classification completes.
	type joinInfo struct {
		si *scanInfo
		on *astExpr
	}
	var joins []joinInfo
	for _, jc := range st.Joins {
		si, err := mkScan(jc.Table)
		if err != nil {
			return nil, err
		}
		joins = append(joins, joinInfo{si: si, on: jc.On})
	}
	// Re-classify the unassigned conjuncts now that all aliases exist.
	for a, cs := range pushed {
		if a == "" || scans[a] == nil {
			postJoin = append(postJoin, cs...)
			continue
		}
		si := scans[a]
		rs := &resolver{schema: si.node.OutSchema}
		pred, _, err := rs.resolve(joinAst(cs))
		if err != nil {
			return nil, err
		}
		si.node = relop.FilterNode(si.node, pred)
	}

	// Left-deep joins.
	cur := base.node
	curFactWidth := base.table.Schema.Width()
	factScan := base
	for _, j := range joins {
		right := j.si
		// Split the ON condition into equality keys (left vs right) and
		// residual predicates.
		var lKeys, rKeys []*relop.Expr
		var residual []*astExpr
		for _, c := range splitConjuncts(j.on) {
			if c.Kind == "binop" && c.Op == "=" {
				lRes := &resolver{schema: cur.OutSchema}
				rRes := &resolver{schema: right.node.OutSchema}
				if le, _, err := lRes.resolve(c.Args[0]); err == nil {
					if re, _, err := rRes.resolve(c.Args[1]); err == nil {
						lKeys = append(lKeys, le)
						rKeys = append(rKeys, re)
						continue
					}
				}
				// Try swapped sides.
				if le, _, err := lRes.resolve(c.Args[1]); err == nil {
					if re, _, err := rRes.resolve(c.Args[0]); err == nil {
						lKeys = append(lKeys, le)
						rKeys = append(rKeys, re)
						continue
					}
				}
			}
			residual = append(residual, c)
		}
		if len(lKeys) == 0 {
			return nil, fmt.Errorf("hive: join with %s has no equality condition", right.alias)
		}
		broadcast := !pc.forMR && right.table.SizeBytes > 0 &&
			right.table.SizeBytes <= eng.BroadcastThreshold

		// Dynamic partition pruning: fact (leftmost, partitioned) joined
		// on its partition column with a filtered dimension.
		if !pc.forMR && eng.EnablePruning && factScan.table.PartitionVals != nil &&
			factScan.scanNode.Prune == nil && right.node.Op == "filter" {
			if colRef, ok := singleCol(lKeys[0]); ok && colRef < curFactWidth &&
				colRef == factScan.table.PartitionCol {
				factScan.scanNode.Prune = &relop.PruneSpec{
					SourceNode: right.node,
					KeyExpr:    rKeys[0],
				}
			}
		}

		cur = relop.JoinNode(cur, right.node, lKeys, rKeys, broadcast)
		for _, c := range residual {
			rs := &resolver{schema: cur.OutSchema}
			pred, _, err := rs.resolve(c)
			if err != nil {
				return nil, err
			}
			cur = relop.FilterNode(cur, pred)
		}
	}

	// Residual WHERE conjuncts.
	if len(postJoin) > 0 {
		rs := &resolver{schema: cur.OutSchema}
		pred, _, err := rs.resolve(joinAst(postJoin))
		if err != nil {
			return nil, err
		}
		cur = relop.FilterNode(cur, pred)
	}

	// SELECT / GROUP BY.
	anyAgg := len(st.GroupBy) > 0
	for _, it := range st.Select {
		if hasAgg(it.Expr) {
			anyAgg = true
		}
	}
	var outNames []string
	if anyAgg {
		cur, outNames, err = pc.planAggregate(st, cur)
		if err != nil {
			return nil, err
		}
		if st.Having != nil {
			// HAVING references select-output names (group keys, agg
			// aliases); resolve against the projected schema.
			rs := &resolver{schema: cur.OutSchema}
			pred, _, err := rs.resolve(st.Having)
			if err != nil {
				return nil, err
			}
			cur = relop.FilterNode(cur, pred)
		}
	} else {
		if st.Having != nil {
			return nil, fmt.Errorf("hive: HAVING without aggregation")
		}
		rs := &resolver{schema: cur.OutSchema}
		var exprs []*relop.Expr
		var kinds []row.Kind
		for i, it := range st.Select {
			if it.Expr.Kind == "star" {
				for c := 0; c < cur.OutSchema.Width(); c++ {
					exprs = append(exprs, relop.Col(c))
					outNames = append(outNames, cur.OutSchema.Cols[c].Name)
					kinds = append(kinds, cur.OutSchema.Cols[c].Kind)
				}
				continue
			}
			e, k, err := rs.resolve(it.Expr)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			outNames = append(outNames, selectName(it, i))
			kinds = append(kinds, k)
		}
		cur = relop.ProjectNode(cur, exprs, outNames, kinds)
	}

	// ORDER BY / LIMIT.
	if len(st.OrderBy) > 0 {
		var keys []*relop.Expr
		var desc []bool
		for _, oi := range st.OrderBy {
			idx, err := resolveOrderItem(oi.Expr, outNames, st.Select)
			if err != nil {
				return nil, err
			}
			keys = append(keys, relop.Col(idx))
			desc = append(desc, oi.Desc)
		}
		cur = relop.SortNode(cur, keys, desc, st.Limit)
	} else if st.Limit > 0 {
		cur = relop.SortNode(cur, []*relop.Expr{relop.LitInt(0)}, []bool{false}, st.Limit)
	}

	return relop.StoreNode(cur, outPath), nil
}

// planAggregate lowers GROUP BY + aggregate select lists.
func (pc *planContext) planAggregate(st *selectStmt, cur *relop.Node) (*relop.Node, []string, error) {
	rs := &resolver{schema: cur.OutSchema}
	// Group expressions (may also appear in the select list).
	var groupExprs []*relop.Expr
	var groupNames []string
	groupPos := map[string]int{} // rendered ast -> position
	for _, g := range st.GroupBy {
		e, _, err := rs.resolve(g)
		if err != nil {
			return nil, nil, err
		}
		groupPos[astKey(g)] = len(groupExprs)
		groupNames = append(groupNames, exprName(g))
		groupExprs = append(groupExprs, e)
	}
	// Aggregates from the select list.
	var aggs []relop.AggDef
	type outCol struct {
		fromGroup int // >=0: group column
		fromAgg   int // >=0: aggregate column
	}
	var outs []outCol
	var outNames []string
	for i, it := range st.Select {
		e := it.Expr
		if hasAgg(e) {
			if e.Kind != "call" {
				return nil, nil, fmt.Errorf("hive: composite aggregate expressions unsupported")
			}
			var arg *relop.Expr
			if e.Args[0].Kind != "star" {
				a, _, err := rs.resolve(e.Args[0])
				if err != nil {
					return nil, nil, err
				}
				arg = a
			}
			name := selectName(it, i)
			aggs = append(aggs, relop.AggDef{Func: e.Name, Arg: arg, Name: name})
			outs = append(outs, outCol{fromGroup: -1, fromAgg: len(aggs) - 1})
			outNames = append(outNames, name)
			continue
		}
		pos, ok := groupPos[astKey(e)]
		if !ok {
			return nil, nil, fmt.Errorf("hive: select item %d is neither grouped nor aggregated", i)
		}
		outs = append(outs, outCol{fromGroup: pos, fromAgg: -1})
		outNames = append(outNames, selectName(it, i))
	}
	agg := relop.AggNode(cur, groupExprs, groupNames, aggs)
	// Project to select order.
	gw := len(groupExprs)
	var exprs []*relop.Expr
	var kinds []row.Kind
	for _, oc := range outs {
		if oc.fromGroup >= 0 {
			exprs = append(exprs, relop.Col(oc.fromGroup))
			kinds = append(kinds, row.KindString)
		} else {
			exprs = append(exprs, relop.Col(gw+oc.fromAgg))
			kinds = append(kinds, row.KindFloat)
		}
	}
	return relop.ProjectNode(agg, exprs, outNames, kinds), outNames, nil
}

// resolveOrderItem finds the select-output column an ORDER BY item names.
func resolveOrderItem(e *astExpr, outNames []string, items []selectItem) (int, error) {
	if e.Kind == "ident" {
		for i, n := range outNames {
			if strings.EqualFold(n, e.Name) || strings.HasSuffix(n, "."+e.Name) {
				return i, nil
			}
		}
	}
	key := astKey(e)
	for i, it := range items {
		if astKey(it.Expr) == key {
			return i, nil
		}
	}
	return 0, fmt.Errorf("hive: ORDER BY item must name a select column")
}

func selectName(it selectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	return exprNameIdx(it.Expr, i)
}

func exprName(e *astExpr) string { return exprNameIdx(e, 0) }

func exprNameIdx(e *astExpr, i int) string {
	if e.Kind == "ident" {
		return e.Name
	}
	if e.Kind == "call" {
		return fmt.Sprintf("%s_%d", e.Name, i)
	}
	return fmt.Sprintf("expr_%d", i)
}

// astKey renders an AST expression canonically for equality checks.
func astKey(e *astExpr) string {
	if e == nil {
		return ""
	}
	s := e.Kind + ":" + e.Name + ":" + e.Op + ":" + e.Str +
		fmt.Sprintf(":%d:%g", e.Int, e.Float)
	for _, a := range e.Args {
		s += "(" + astKey(a) + ")"
	}
	return s
}

// singleCol unwraps a bare column reference.
func singleCol(e *relop.Expr) (int, bool) {
	if e.Kind == "col" {
		return e.Col, true
	}
	return 0, false
}
