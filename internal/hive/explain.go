package hive

import (
	"fmt"
	"strings"

	"tez/internal/relop"
)

// Explain renders the logical plan of a query and the Tez DAG it compiles
// to — the quickest way to see broadcast-join selection, predicate
// pushdown and dynamic-partition-pruning decisions.
func (e *Engine) Explain(sql string) (string, error) {
	roots, err := e.Plan(sql, "/explain/out", false)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("logical plan:\n")
	for _, r := range roots {
		explainNode(&b, r, 1)
	}
	d, err := relop.EmitDAGOnly(e.Exec, "explain", roots)
	if err != nil {
		return "", err
	}
	b.WriteString("tez dag:\n")
	order, err := d.TopoOrder()
	if err != nil {
		return "", err
	}
	for _, name := range order {
		v := d.Vertex(name)
		par := "runtime"
		if v.Parallelism > 0 {
			par = fmt.Sprintf("%d", v.Parallelism)
		}
		fmt.Fprintf(&b, "  vertex %-24s tasks=%s", name, par)
		if len(v.Sources) > 0 {
			fmt.Fprintf(&b, " sources=%d", len(v.Sources))
			for _, s := range v.Sources {
				if s.Initializer.Name == relop.PruneInitializerName {
					b.WriteString(" [dynamic partition pruning]")
				}
			}
		}
		if len(v.Sinks) > 0 {
			fmt.Fprintf(&b, " sinks=%d", len(v.Sinks))
		}
		b.WriteString("\n")
	}
	for _, ed := range d.Edges {
		fmt.Fprintf(&b, "  edge   %-24s -> %-20s %s\n", ed.From, ed.To, ed.Property.Movement)
	}
	if vs := relop.ExplainStages(d); vs != "" {
		b.WriteString("vectorization:\n")
		for _, line := range strings.Split(strings.TrimRight(vs, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	return b.String(), nil
}

func explainNode(b *strings.Builder, n *relop.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.Op {
	case "scan":
		fmt.Fprintf(b, "%sscan %s (%d files", indent, n.Table.Name, len(n.Table.Files))
		if n.Prune != nil {
			b.WriteString(", dynamically pruned")
		}
		b.WriteString(")")
	case "filter":
		fmt.Fprintf(b, "%sfilter %s", indent, n.Filter)
	case "project":
		fmt.Fprintf(b, "%sproject %v", indent, n.Names)
	case "join":
		kind := "shuffle join"
		if n.Broadcast {
			kind = "broadcast (map) join"
		}
		fmt.Fprintf(b, "%s%s on %d key(s)", indent, kind, len(n.JoinL))
	case "agg":
		names := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			names[i] = a.Func
		}
		fmt.Fprintf(b, "%saggregate group=%d aggs=%v", indent, len(n.GroupBy), names)
	case "sort":
		fmt.Fprintf(b, "%ssort keys=%d limit=%d", indent, len(n.SortKeys), n.Limit)
	case "store":
		fmt.Fprintf(b, "%sstore %s", indent, n.StorePath)
	default:
		fmt.Fprintf(b, "%s%s", indent, n.Op)
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		explainNode(b, c, depth+1)
	}
}
