package hive

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tez/internal/am"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

func TestParserShapes(t *testing.T) {
	st, err := Parse(`SELECT l_returnflag, sum(l_quantity) AS q, count(*) AS n
		FROM lineitem WHERE l_shipdate <= 19980902 AND l_discount BETWEEN 0.01 AND 0.05
		GROUP BY l_returnflag ORDER BY q DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Select) != 3 || st.Select[1].Alias != "q" {
		t.Fatalf("select = %+v", st.Select)
	}
	if st.From.Name != "lineitem" || len(st.GroupBy) != 1 {
		t.Fatal("from/group wrong")
	}
	if len(st.OrderBy) != 1 || !st.OrderBy[0].Desc || st.Limit != 5 {
		t.Fatal("order/limit wrong")
	}
	// BETWEEN desugars to AND of comparisons.
	conj := splitConjuncts(st.Where)
	if len(conj) != 3 {
		t.Fatalf("where conjuncts = %d", len(conj))
	}
}

func TestParserJoinsAndAliases(t *testing.T) {
	st, err := Parse(`SELECT c.c_name, o.o_totalprice FROM orders o
		JOIN customer c ON o.o_custkey = c.c_custkey
		WHERE c.c_mktsegment = 'BUILDING' AND o.o_orderdate < 19950315`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Joins) != 1 || st.Joins[0].Table.Alias != "c" || st.From.Alias != "o" {
		t.Fatalf("joins = %+v", st.Joins)
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t trailing garbage ,",
		"SELECT a FROM t WHERE 'unterminated",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("parsed invalid query %q", q)
		}
	}
}

func TestParserIn(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	// IN desugars to OR of equalities.
	if st.Where.Op != "or" {
		t.Fatalf("where = %+v", st.Where)
	}
}

// --- end-to-end: tiny warehouse with hand-checked answers ---

type hiveHarness struct {
	t    *testing.T
	plat *platform.Platform
	eng  *Engine
	sess *am.Session
}

func newHiveHarness(t *testing.T) *hiveHarness {
	plat := platform.New(platform.Fast(4))
	eng := NewEngine()
	// orders: (okey, custkey, price, date)
	orders := &relop.Table{Name: "orders", Schema: row.NewSchema(
		"o_orderkey:int", "o_custkey:int", "o_totalprice:float", "o_orderdate:int")}
	oRows := []row.Row{
		{row.Int(1), row.Int(10), row.Float(100), row.Int(19950101)},
		{row.Int(2), row.Int(10), row.Float(200), row.Int(19950601)},
		{row.Int(3), row.Int(20), row.Float(300), row.Int(19960101)},
		{row.Int(4), row.Int(30), row.Float(50), row.Int(19960301)},
	}
	if err := relop.WriteTable(plat.FS, orders, 2, oRows); err != nil {
		t.Fatal(err)
	}
	cust := &relop.Table{Name: "customer", Schema: row.NewSchema(
		"c_custkey:int", "c_name", "c_mktsegment")}
	cRows := []row.Row{
		{row.Int(10), row.String("alice"), row.String("BUILDING")},
		{row.Int(20), row.String("bob"), row.String("AUTOMOBILE")},
		{row.Int(30), row.String("carol"), row.String("BUILDING")},
	}
	if err := relop.WriteTable(plat.FS, cust, 1, cRows); err != nil {
		t.Fatal(err)
	}
	eng.Register(orders, cust)
	sess := am.NewSession(plat, am.Config{Name: "hive"})
	t.Cleanup(func() { sess.Close(); plat.Stop() })
	return &hiveHarness{t: t, plat: plat, eng: eng, sess: sess}
}

func (h *hiveHarness) query(name, sql string) []row.Row {
	h.t.Helper()
	rows, err := h.eng.Query(h.sess, h.plat, name, sql)
	if err != nil {
		h.t.Fatalf("query %s: %v", name, err)
	}
	return rows
}

// queryMR runs on the MR backend and reads the output.
func (h *hiveHarness) queryMR(name, sql string) []row.Row {
	h.t.Helper()
	out := "/results/" + name
	h.plat.FS.DeletePrefix(out + "/")
	if _, err := h.eng.RunMR(h.plat, am.Config{Name: name}, name, sql, out); err != nil {
		h.t.Fatalf("mr query %s: %v", name, err)
	}
	rows, err := relop.ReadStored(h.plat.FS, out)
	if err != nil {
		h.t.Fatal(err)
	}
	return rows
}

func renderRows(rows []row.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func sortedRender(rows []row.Row) []string {
	out := renderRows(rows)
	sort.Strings(out)
	return out
}

func expectRows(t *testing.T, got []row.Row, want []string, ordered bool) {
	t.Helper()
	g := renderRows(got)
	w := append([]string{}, want...)
	if !ordered {
		sort.Strings(g)
		sort.Strings(w)
	}
	if len(g) != len(w) {
		t.Fatalf("rows = %v, want %v", g, w)
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("row %d = %q, want %q\nall: %v", i, g[i], w[i], g)
		}
	}
}

func TestSelectFilterProject(t *testing.T) {
	h := newHiveHarness(t)
	got := h.query("q1", "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice >= 100 AND o_orderdate < 19960000")
	expectRows(t, got, []string{"1|100", "2|200"}, false)
}

func TestGroupByAggregates(t *testing.T) {
	h := newHiveHarness(t)
	got := h.query("q2", "SELECT o_custkey, sum(o_totalprice) AS s, count(*) AS n FROM orders GROUP BY o_custkey")
	expectRows(t, got, []string{"10|300|2", "20|300|1", "30|50|1"}, false)
}

func TestJoinWithWherePushdown(t *testing.T) {
	h := newHiveHarness(t)
	got := h.query("q3", `SELECT c.c_name, o.o_totalprice FROM orders o
		JOIN customer c ON o.o_custkey = c.c_custkey
		WHERE c.c_mktsegment = 'BUILDING'`)
	expectRows(t, got, []string{"alice|100", "alice|200", "carol|50"}, false)
}

func TestJoinGroupOrderLimit(t *testing.T) {
	h := newHiveHarness(t)
	got := h.query("q4", `SELECT c.c_name, sum(o.o_totalprice) AS rev
		FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey
		GROUP BY c.c_name ORDER BY rev DESC, c_name LIMIT 2`)
	expectRows(t, got, []string{"alice|300", "bob|300"}, true)
}

func TestOrderByAscending(t *testing.T) {
	h := newHiveHarness(t)
	got := h.query("q5", "SELECT o_orderkey FROM orders ORDER BY o_orderkey")
	expectRows(t, got, []string{"1", "2", "3", "4"}, true)
}

func TestArithmeticInSelect(t *testing.T) {
	h := newHiveHarness(t)
	got := h.query("q6", "SELECT o_orderkey, o_totalprice * 2 FROM orders WHERE o_orderkey = 1")
	expectRows(t, got, []string{"1|200"}, false)
}

func TestTezAndMRAgree(t *testing.T) {
	h := newHiveHarness(t)
	queries := []string{
		"SELECT o_custkey, count(*) AS n FROM orders GROUP BY o_custkey",
		`SELECT c.c_mktsegment, sum(o.o_totalprice) AS s FROM orders o
		 JOIN customer c ON o.o_custkey = c.c_custkey GROUP BY c.c_mktsegment`,
		"SELECT o_orderkey FROM orders WHERE o_totalprice > 60 ORDER BY o_orderkey DESC",
	}
	for i, q := range queries {
		tez := sortedRender(h.query(fmt.Sprintf("agree-tez-%d", i), q))
		mr := sortedRender(h.queryMR(fmt.Sprintf("agree-mr-%d", i), q))
		if len(tez) != len(mr) {
			t.Fatalf("query %d: tez %v vs mr %v", i, tez, mr)
		}
		for j := range tez {
			if tez[j] != mr[j] {
				t.Fatalf("query %d row %d: tez %q vs mr %q", i, j, tez[j], mr[j])
			}
		}
	}
}

func TestBroadcastJoinChosenForSmallTable(t *testing.T) {
	h := newHiveHarness(t)
	// customer is tiny -> broadcast join on Tez.
	roots, err := h.eng.Plan(`SELECT c.c_name FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey`, "/out/x", false)
	if err != nil {
		t.Fatal(err)
	}
	join := findOp(roots[0], "join")
	if join == nil || !join.Broadcast {
		t.Fatal("small-table join not planned as broadcast")
	}
	// The MR plan must not use broadcast.
	rootsMR, err := h.eng.Plan(`SELECT c.c_name FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey`, "/out/x", true)
	if err != nil {
		t.Fatal(err)
	}
	if j := findOp(rootsMR[0], "join"); j == nil || j.Broadcast {
		t.Fatal("MR plan used broadcast join")
	}
}

func findOp(n *relop.Node, op string) *relop.Node {
	if n == nil {
		return nil
	}
	if n.Op == op {
		return n
	}
	for _, c := range n.Children {
		if f := findOp(c, op); f != nil {
			return f
		}
	}
	return nil
}

func TestUnknownTableAndColumnErrors(t *testing.T) {
	h := newHiveHarness(t)
	if _, err := h.eng.Plan("SELECT x FROM missing", "/out/x", false); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := h.eng.Plan("SELECT nope FROM orders", "/out/x", false); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := h.eng.Plan("SELECT o_custkey, sum(o_totalprice) FROM orders", "/out/x", false); err == nil {
		t.Fatal("non-grouped select item with aggregate accepted")
	}
}

func TestHaving(t *testing.T) {
	h := newHiveHarness(t)
	got := h.query("qh", `SELECT o_custkey, count(*) AS n FROM orders
		GROUP BY o_custkey HAVING n >= 2 ORDER BY o_custkey`)
	expectRows(t, got, []string{"10|2"}, true)
	// HAVING without aggregation is rejected.
	if _, err := h.eng.Plan("SELECT o_custkey FROM orders HAVING o_custkey > 1", "/x", false); err == nil {
		t.Fatal("HAVING without aggregation accepted")
	}
}

func TestExplain(t *testing.T) {
	h := newHiveHarness(t)
	text, err := h.eng.Explain(`SELECT c.c_name, sum(o.o_totalprice) AS rev
		FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey
		GROUP BY c.c_name ORDER BY rev DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"broadcast (map) join", "aggregate", "sort keys=1 limit=1",
		"tez dag:", "SCATTER_GATHER", "BROADCAST",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain missing %q:\n%s", want, text)
		}
	}
	if _, err := h.eng.Explain("SELECT nope FROM orders"); err == nil {
		t.Fatal("explain of invalid query succeeded")
	}
}
