package hive

import (
	"fmt"
	"strings"

	"tez/internal/am"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

// Engine is the mini-Hive: a catalog plus planner configuration.
type Engine struct {
	// BroadcastThreshold is the maximum build-side size for a map join
	// (Tez backend only). Zero disables broadcast joins.
	BroadcastThreshold int64
	// EnablePruning turns on dynamic partition pruning (Tez backend only).
	EnablePruning bool
	// Exec tunes the relop compiler (partitions, split size, …).
	Exec relop.Config

	tables map[string]*relop.Table
}

// NewEngine creates an engine with an empty catalog.
func NewEngine() *Engine {
	return &Engine{
		BroadcastThreshold: 64 * 1024,
		EnablePruning:      true,
		tables:             map[string]*relop.Table{},
	}
}

// Register adds tables to the catalog.
func (e *Engine) Register(tables ...*relop.Table) {
	for _, t := range tables {
		e.tables[strings.ToLower(t.Name)] = t
	}
}

// Plan parses and lowers a query to a relop plan storing into outPath.
// forMR restricts physical choices to what the MapReduce backend supports.
func (e *Engine) Plan(sql, outPath string, forMR bool) ([]*relop.Node, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	pc := &planContext{eng: e, forMR: forMR}
	root, err := pc.plan(st, outPath)
	if err != nil {
		return nil, err
	}
	return []*relop.Node{root}, nil
}

// RunTez executes the query as one Tez DAG in the given session (the Hive
// 0.13+ execution model of §5.2).
func (e *Engine) RunTez(sess *am.Session, name, sql, outPath string) (am.DAGResult, error) {
	roots, err := e.Plan(sql, outPath, false)
	if err != nil {
		return am.DAGResult{}, err
	}
	return relop.RunTez(sess, e.Exec, name, roots)
}

// RunMR executes the query as a chain of MapReduce-shaped jobs (the
// pre-Tez Hive execution model).
func (e *Engine) RunMR(plat *platform.Platform, amCfg am.Config, name, sql, outPath string) (relop.MRStats, error) {
	roots, err := e.Plan(sql, outPath, true)
	if err != nil {
		return relop.MRStats{}, err
	}
	return relop.RunMR(plat, amCfg, e.Exec, name, roots)
}

// Query is a convenience that runs on Tez and reads the result back.
func (e *Engine) Query(sess *am.Session, plat *platform.Platform, name, sql string) ([]row.Row, error) {
	out := fmt.Sprintf("/results/%s", name)
	plat.FS.DeletePrefix(out + "/")
	if _, err := e.RunTez(sess, name, sql, out); err != nil {
		return nil, err
	}
	return relop.ReadStored(plat.FS, out)
}
