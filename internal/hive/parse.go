// Package hive is the SQL-on-Tez engine of §5.2 in miniature: a SQL-subset
// parser, a catalog, and a planner that lowers queries to relop plans.
// Like Hive 0.13+, it compiles to a single Tez DAG with broadcast (map)
// joins and dynamic partition pruning when allowed, or to a chain of
// MapReduce-shaped jobs (the pre-Tez Hive execution model) for the
// baseline measurements of Figures 8–9.
package hive

import (
	"fmt"
	"strconv"
	"strings"
)

// --- AST ---

type selectStmt struct {
	Select  []selectItem
	From    tableRef
	Joins   []joinClause
	Where   *astExpr
	GroupBy []*astExpr
	Having  *astExpr
	OrderBy []orderItem
	Limit   int // 0 = none
}

type selectItem struct {
	Expr  *astExpr
	Alias string
}

type tableRef struct {
	Name  string
	Alias string
}

type joinClause struct {
	Table tableRef
	On    *astExpr
}

type orderItem struct {
	Expr *astExpr
	Desc bool
}

// astExpr is an unresolved expression.
type astExpr struct {
	// Kind: ident, int, float, str, star, call, binop, not
	Kind  string
	Name  string // ident (possibly qualified), call func name
	Int   int64
	Float float64
	Str   string
	Op    string
	Args  []*astExpr
}

// --- Lexer ---

type token struct {
	kind string // ident, int, float, str, op, eof
	text string
}

type lexer struct {
	src []rune
	pos int
}

func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIdent(r rune) bool {
	return isIdentStart(r) || (r >= '0' && r <= '9') || r == '.'
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\n' || l.src[l.pos] == '\t' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: "eof"}, nil
	}
	r := l.src[l.pos]
	switch {
	case isIdentStart(r):
		start := l.pos
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: "ident", text: string(l.src[start:l.pos])}, nil
	case r >= '0' && r <= '9':
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) && ((l.src[l.pos] >= '0' && l.src[l.pos] <= '9') || l.src[l.pos] == '.') {
			if l.src[l.pos] == '.' {
				isFloat = true
			}
			l.pos++
		}
		kind := "int"
		if isFloat {
			kind = "float"
		}
		return token{kind: kind, text: string(l.src[start:l.pos])}, nil
	case r == '\'':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("hive: unterminated string literal")
		}
		text := string(l.src[start:l.pos])
		l.pos++
		return token{kind: "str", text: text}, nil
	default:
		two := ""
		if l.pos+1 < len(l.src) {
			two = string(l.src[l.pos : l.pos+2])
		}
		for _, op := range []string{"<=", ">=", "!=", "<>"} {
			if two == op {
				l.pos += 2
				if op == "<>" {
					op = "!="
				}
				return token{kind: "op", text: op}, nil
			}
		}
		l.pos++
		return token{kind: "op", text: string(r)}, nil
	}
}

// --- Parser ---

type parser struct {
	toks []token
	pos  int
}

// Parse parses one SELECT statement.
func Parse(sql string) (*selectStmt, error) {
	lx := &lexer{src: []rune(sql)}
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == "eof" {
			break
		}
	}
	p := &parser{toks: toks}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at("eof") {
		return nil, fmt.Errorf("hive: trailing input near %q", p.peek().text)
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) at(kind string) bool { return p.peek().kind == kind }

func (p *parser) kw(word string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("hive: expected %s near %q", word, p.peek().text)
	}
	return nil
}

func (p *parser) op(text string) bool {
	t := p.peek()
	if t.kind == "op" && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(text string) error {
	if !p.op(text) {
		return fmt.Errorf("hive: expected %q near %q", text, p.peek().text)
	}
	return nil
}

func (p *parser) parseSelect() (*selectStmt, error) {
	st := &selectStmt{}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Select = append(st.Select, item)
		if !p.op(",") {
			break
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st.From = tr
	for p.kw("join") {
		jt, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, joinClause{Table: jt, On: on})
	}
	if p.kw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.kw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.op(",") {
				break
			}
		}
	}
	if p.kw("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.kw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := orderItem{Expr: e}
			if p.kw("desc") {
				it.Desc = true
			} else {
				p.kw("asc")
			}
			st.OrderBy = append(st.OrderBy, it)
			if !p.op(",") {
				break
			}
		}
	}
	if p.kw("limit") {
		t := p.peek()
		if t.kind != "int" {
			return nil, fmt.Errorf("hive: LIMIT needs an integer")
		}
		n, _ := strconv.Atoi(t.text)
		st.Limit = n
		p.pos++
	}
	return st, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{Expr: e}
	if p.kw("as") {
		t := p.peek()
		if t.kind != "ident" {
			return item, fmt.Errorf("hive: expected alias near %q", t.text)
		}
		item.Alias = t.text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseTableRef() (tableRef, error) {
	t := p.peek()
	if t.kind != "ident" {
		return tableRef{}, fmt.Errorf("hive: expected table name near %q", t.text)
	}
	p.pos++
	tr := tableRef{Name: strings.ToLower(t.text), Alias: strings.ToLower(t.text)}
	nt := p.peek()
	if nt.kind == "ident" && !isKeyword(nt.text) {
		tr.Alias = strings.ToLower(nt.text)
		p.pos++
	}
	return tr, nil
}

var keywords = map[string]bool{
	"select": true, "from": true, "join": true, "on": true, "where": true,
	"group": true, "by": true, "order": true, "limit": true, "as": true,
	"and": true, "or": true, "not": true, "desc": true, "asc": true,
	"between": true, "in": true, "having": true,
}

func isKeyword(s string) bool { return keywords[strings.ToLower(s)] }

// Expression precedence: OR < AND < NOT < cmp/between/in < addsub < muldiv < unary.
func (p *parser) parseExpr() (*astExpr, error) { return p.parseOr() }

func (p *parser) parseOr() (*astExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &astExpr{Kind: "binop", Op: "or", Args: []*astExpr{left, right}}
	}
	return left, nil
}

func (p *parser) parseAnd() (*astExpr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.kw("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &astExpr{Kind: "binop", Op: "and", Args: []*astExpr{left, right}}
	}
	return left, nil
}

func (p *parser) parseNot() (*astExpr, error) {
	if p.kw("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &astExpr{Kind: "not", Args: []*astExpr{e}}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (*astExpr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.kw("between") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &astExpr{Kind: "binop", Op: "and", Args: []*astExpr{
			{Kind: "binop", Op: ">=", Args: []*astExpr{left, lo}},
			{Kind: "binop", Op: "<=", Args: []*astExpr{left, hi}},
		}}, nil
	}
	if p.kw("in") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var ors []*astExpr
		for {
			v, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			ors = append(ors, &astExpr{Kind: "binop", Op: "=", Args: []*astExpr{left, v}})
			if !p.op(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		out := ors[0]
		for _, o := range ors[1:] {
			out = &astExpr{Kind: "binop", Op: "or", Args: []*astExpr{out, o}}
		}
		return out, nil
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.op(op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &astExpr{Kind: "binop", Op: op, Args: []*astExpr{left, right}}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (*astExpr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.op("+"):
			op = "+"
		case p.op("-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &astExpr{Kind: "binop", Op: op, Args: []*astExpr{left, right}}
	}
}

func (p *parser) parseMul() (*astExpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.op("*"):
			op = "*"
		case p.op("/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &astExpr{Kind: "binop", Op: op, Args: []*astExpr{left, right}}
	}
}

var aggFuncs = map[string]bool{"sum": true, "count": true, "avg": true, "min": true, "max": true}

func (p *parser) parseUnary() (*astExpr, error) {
	t := p.peek()
	switch t.kind {
	case "int":
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return &astExpr{Kind: "int", Int: n}, nil
	case "float":
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, err
		}
		return &astExpr{Kind: "float", Float: f}, nil
	case "str":
		p.pos++
		return &astExpr{Kind: "str", Str: t.text}, nil
	case "ident":
		name := strings.ToLower(t.text)
		p.pos++
		if aggFuncs[name] && p.op("(") {
			if p.op("*") {
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &astExpr{Kind: "call", Name: name, Args: []*astExpr{{Kind: "star"}}}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &astExpr{Kind: "call", Name: name, Args: []*astExpr{arg}}, nil
		}
		return &astExpr{Kind: "ident", Name: name}, nil
	case "op":
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			p.pos++
			return &astExpr{Kind: "star"}, nil
		}
		if t.text == "-" {
			p.pos++
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &astExpr{Kind: "binop", Op: "-", Args: []*astExpr{{Kind: "int", Int: 0}, e}}, nil
		}
	}
	return nil, fmt.Errorf("hive: unexpected token %q", t.text)
}
