package am

import (
	"errors"
	"fmt"
	"time"

	"tez/internal/chaos"
	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/mailbox"
	"tez/internal/metrics"
	"tez/internal/runtime"
	"tez/internal/timeline"
)

// scheduleTasks is the vertex-manager entry point: move the given pending
// tasks to scheduled and create their first attempts.
func (r *dagRun) scheduleTasks(vs *vertexState, ids []int) {
	if r.finished || vs.state != vRunning {
		return
	}
	for _, id := range ids {
		if id < 0 || id >= len(vs.tasks) {
			continue
		}
		ts := vs.tasks[id]
		if ts.state != tPending {
			continue
		}
		ts.state = tScheduled
		r.tl().Record(timeline.Event{
			Type: timeline.TaskScheduled, DAG: r.id,
			Vertex: vs.v.Name, Task: id,
		})
		r.newAttempt(ts, false)
	}
}

// newAttempt creates an attempt and asks the scheduler for a container.
func (r *dagRun) newAttempt(ts *taskState, speculative bool) *attemptState {
	at := &attemptState{
		task:        ts,
		id:          len(ts.attempts),
		state:       aWaiting,
		speculative: speculative,
	}
	ts.attempts = append(ts.attempts, at)
	req := &taskRequest{
		priority: ts.vertex.priority,
		hosts:    r.taskHosts(ts),
		tag:      r,
		dag:      r.id,
		assign: func(pc *pooledContainer) {
			r.mb.Put(msgAssigned{at: at, pc: pc})
		},
	}
	at.req = req
	info := ""
	if speculative {
		info = "speculative"
	}
	r.tl().Record(timeline.Event{
		Type: timeline.AttemptRequested, DAG: r.id,
		Vertex: ts.vertex.v.Name, Task: ts.idx, Attempt: at.id, Info: info,
	})
	r.session.sched.submit(req)
	r.counters.Add("ATTEMPTS_LAUNCHED", 1)
	if speculative {
		r.counters.Add("SPECULATIVE_ATTEMPTS", 1)
	}
	return at
}

// taskHosts computes locality preferences: initializer hints for root
// tasks, the source attempt's node for 1-1 edges (§4.2).
func (r *dagRun) taskHosts(ts *taskState) []cluster.NodeID {
	vs := ts.vertex
	if ts.idx < len(vs.locationHints) {
		if hints := vs.locationHints[ts.idx]; len(hints) > 0 {
			out := make([]cluster.NodeID, 0, len(hints))
			for _, h := range hints {
				out = append(out, cluster.NodeID(h))
			}
			return out
		}
	}
	for _, es := range r.inEdges[vs.v.Name] {
		if es.e.Property.Movement != dag.OneToOne {
			continue
		}
		if ts.idx < len(es.from.tasks) {
			src := es.from.tasks[ts.idx]
			if w := src.winner; w != nil && w.node != "" {
				return []cluster.NodeID{cluster.NodeID(w.node)}
			}
			if src.restored && src.restoredNode != "" {
				return []cluster.NodeID{cluster.NodeID(src.restoredNode)}
			}
		}
	}
	return nil
}

// onAssigned launches the attempt in its container.
func (r *dagRun) onAssigned(at *attemptState, pc *pooledContainer) {
	if r.finished || at.state != aWaiting || at.task.state == tSucceeded {
		// Stale assignment: the container is healthy; recycle it.
		if at.state == aWaiting {
			at.state = aKilled
		}
		r.session.sched.release(pc, true)
		return
	}
	at.state = aRunning
	at.pc = pc
	at.node = string(pc.c.Node())
	at.locality = pc.c.Locality
	at.start = time.Now()
	at.mbox = mailbox.New[event.Event]()
	if at.task.state == tScheduled {
		at.task.state = tRunning
	}
	loc := pc.c.Locality.String()
	r.counters.Add("LOCALITY_"+loc, 1)
	// Close the request→allocate→launch span: how long this attempt waited
	// for its container, bucketed by the locality level achieved.
	wait := r.clock().Sub(at.req.created)
	if wait < 0 {
		wait = 0
	}
	r.counters.Add("SCHED_ALLOC_WAIT_NS_"+loc, int64(wait))
	r.counters.Add("SCHED_ALLOC_WAIT_COUNT_"+loc, 1)
	r.tl().Record(timeline.Event{
		Type: timeline.AttemptStarted, DAG: r.id,
		Vertex: at.task.vertex.v.Name, Task: at.task.idx, Attempt: at.id,
		Node: at.node, Container: int64(pc.c.ID), Info: loc, Val: int64(wait),
	})

	spec := r.buildTaskSpec(at)
	fetchPar := r.session.cfg.ShuffleFetchParallelism
	if r.session.cfg.DisableParallelFetch {
		fetchPar = 1
	}
	services := runtime.Services{
		FS:               r.session.plat.FS,
		Shuffle:          r.session.plat.Shuffle,
		Node:             at.node,
		Registry:         pc.registry,
		Counters:         r.counters,
		Token:            r.token,
		FetchParallelism: fetchPar,
	}
	r.replayEvents(at)
	go func() {
		runner := &runtime.TaskRunner{
			Spec:     spec,
			Services: services,
			Incoming: at.mbox,
			Emit: func(ev event.Event) {
				r.mb.Put(msgTaskEvent{at: at, ev: ev})
			},
		}
		err := pc.c.Exec(func(stop <-chan struct{}) error { return runner.Run(stop) })
		r.mb.Put(msgAttemptDone{at: at, err: err})
	}()
}

// buildTaskSpec assembles the runner spec from the current (possibly
// reconfigured) DAG geometry.
func (r *dagRun) buildTaskSpec(at *attemptState) runtime.TaskSpec {
	ts := at.task
	vs := ts.vertex
	spec := runtime.TaskSpec{
		Meta: runtime.Meta{
			DAG:               r.id,
			Vertex:            vs.v.Name,
			Task:              ts.idx,
			Attempt:           at.id,
			VertexParallelism: vs.parallelism,
		},
		Processor: vs.v.Processor,
	}
	for _, src := range vs.v.Sources {
		spec.Inputs = append(spec.Inputs, runtime.IOSpec{
			Name:          src.Name,
			Descriptor:    src.Input,
			PhysicalCount: 1,
		})
	}
	for _, es := range r.inEdges[vs.v.Name] {
		spec.Inputs = append(spec.Inputs, runtime.IOSpec{
			Name:          es.e.From,
			Descriptor:    es.e.Property.Input,
			PhysicalCount: es.mgr.NumDestinationTaskPhysicalInputs(ts.idx),
		})
	}
	for _, es := range r.outEdges[vs.v.Name] {
		// Broadcast/one-to-one producers may run before the consumer is
		// configured; their physical output count is always 1.
		phys := 1
		if es.mgr != nil {
			phys = es.mgr.NumSourceTaskPhysicalOutputs(ts.idx)
		}
		spec.Outputs = append(spec.Outputs, runtime.IOSpec{
			Name:          es.e.To,
			Descriptor:    es.e.Property.Output,
			PhysicalCount: phys,
		})
	}
	for _, sink := range vs.v.Sinks {
		spec.Outputs = append(spec.Outputs, runtime.IOSpec{
			Name:          sink.Name,
			Descriptor:    sink.Output,
			PhysicalCount: 1,
		})
	}
	return spec
}

// replayEvents delivers the task's root-input assignments and all stored
// upstream DataMovements to a newly started attempt.
func (r *dagRun) replayEvents(at *attemptState) {
	ts := at.task
	vs := ts.vertex
	for src, payloads := range vs.rootPayloads {
		if ts.idx < len(payloads) {
			at.mbox.Put(event.RootInputDataInformation{
				TargetVertex: vs.v.Name,
				TargetTask:   ts.idx,
				InputName:    src,
				Payload:      payloads[ts.idx],
			})
		}
	}
	for _, es := range r.inEdges[vs.v.Name] {
		for key, dm := range es.movements {
			srcTask, srcOut := key[0], key[1]
			for destTask, inputIdx := range es.mgr.Route(srcTask, srcOut) {
				if destTask != ts.idx {
					continue
				}
				routed := dm
				routed.TargetVertex = vs.v.Name
				routed.TargetTask = destTask
				routed.TargetInput = es.e.From
				routed.TargetInputIndex = inputIdx
				at.mbox.Put(routed)
			}
		}
	}
}

// onAttemptDone handles attempt termination.
func (r *dagRun) onAttemptDone(at *attemptState, err error) {
	ts := at.task
	vs := ts.vertex
	pc := at.pc

	// Containers killed by the platform are unusable; anything else can be
	// reused for the next waiting task.
	containerKilled := errors.Is(err, cluster.ErrContainerKilled)
	if pc != nil && !containerKilled {
		r.session.sched.release(pc, !r.finished)
	} else if pc != nil {
		r.session.sched.onContainerStopped(pc.c.ID)
	}
	if at.mbox != nil {
		at.mbox.Close()
	}
	if r.finished || at.state != aRunning {
		return
	}

	if err == nil {
		r.attemptSucceeded(at)
		return
	}

	outcome := "FAILED"
	switch {
	case containerKilled:
		at.state = aKilled
		outcome = "KILLED"
		r.counters.Add("ATTEMPTS_KILLED", 1)
	default:
		if _, isInput := runtime.AsInputReadError(err); isInput {
			// The producer is being re-executed (the InputReadError event
			// preceded this message); this attempt is a casualty, not a
			// failure.
			at.state = aKilled
			outcome = "KILLED"
			r.counters.Add("ATTEMPTS_KILLED_INPUT_ERROR", 1)
		} else if at.node != "" && r.deadNodes[at.node] {
			// The attempt's node is already known dead: its error message
			// raced the node-failure notification in the mailbox. Treat it
			// like a container kill — the machine's death, not the task's
			// fault, and no MaxTaskAttempts or node-health charge.
			at.state = aKilled
			outcome = "KILLED"
			r.counters.Add("ATTEMPTS_KILLED_NODE_LOST", 1)
		} else {
			at.state = aFailed
			ts.failures++
			r.counters.Add("ATTEMPTS_FAILED", 1)
			if r.session.health.taskFailed(at.node) {
				r.counters.Add("NODES_BLACKLISTED", 1)
			}
		}
	}
	r.recordAttempt(at, outcome)
	if ts.state == tSucceeded {
		return // a speculative twin already won
	}
	if ts.failures >= r.cfg.MaxTaskAttempts {
		ts.state = tFailed
		vs.state = vFailed
		r.fail(DAGFailed, fmt.Errorf("am: task %s/%d failed %d attempts, last: %w",
			vs.v.Name, ts.idx, ts.failures, err))
		return
	}
	if ts.runningAttempts() == 0 {
		r.newAttempt(ts, false)
	}
}

// attemptSucceeded commits an attempt's success into the task and vertex.
func (r *dagRun) attemptSucceeded(at *attemptState) {
	ts := at.task
	vs := ts.vertex
	if ts.state == tSucceeded {
		// Lost the speculative race.
		at.state = aKilled
		r.recordAttempt(at, "KILLED")
		return
	}
	at.state = aSucceeded
	ts.state = tSucceeded
	ts.winner = at
	vs.completed++
	vs.durations = append(vs.durations, time.Since(at.start))
	r.counters.Add("TASKS_SUCCEEDED", 1)
	r.recordAttempt(at, "SUCCEEDED")

	// Kill the losing twins.
	for _, other := range ts.attempts {
		if other == at {
			continue
		}
		switch other.state {
		case aWaiting:
			other.state = aKilled
			if other.req != nil {
				r.session.sched.cancel(other.req)
			}
		case aRunning:
			other.state = aKilled
			if other.pc != nil {
				r.session.sched.discard(other.pc)
			}
		}
	}

	// Tell downstream vertex managers.
	for _, es := range r.outEdges[vs.v.Name] {
		if es.to.managerStarted {
			es.to.manager.OnSourceTaskCompleted(vs.v.Name, ts.idx)
		}
	}
	if vs.completed == vs.parallelism {
		r.vertexSucceeded(vs)
	}
}

func (r *dagRun) recordAttempt(at *attemptState, outcome string) {
	end := time.Now()
	r.trace.Record(metrics.AttemptRecord{
		Vertex:      at.task.vertex.v.Name,
		Task:        at.task.idx,
		Attempt:     at.id,
		Node:        at.node,
		Locality:    at.locality.String(),
		Speculative: at.speculative,
		Start:       at.start,
		End:         end,
		Outcome:     outcome,
	})
	var cid int64
	if at.pc != nil {
		cid = int64(at.pc.c.ID)
	}
	var dur time.Duration
	if !at.start.IsZero() {
		dur = end.Sub(at.start)
	}
	r.tl().Record(timeline.Event{
		Type: timeline.AttemptFinished, DAG: r.id,
		Vertex: at.task.vertex.v.Name, Task: at.task.idx, Attempt: at.id,
		Node: at.node, Container: cid, Info: outcome, Dur: dur,
	})
}

// vertexSucceeded finalises a vertex: launch sink committers, checkpoint,
// and maybe finish the DAG.
func (r *dagRun) vertexSucceeded(vs *vertexState) {
	if vs.state == vSucceeded {
		return
	}
	vs.state = vSucceeded
	r.counters.Add("VERTICES_SUCCEEDED", 1)
	// Recorded before saveCheckpoint so the checkpointed journal stream
	// includes this vertex's completion (AM-crash recovery coherence).
	r.tl().Record(timeline.Event{Type: timeline.VertexSucceeded, DAG: r.id, Vertex: vs.v.Name})
	r.session.sched.sweepVertexRegistries(r.id, vs.v.Name)
	if len(vs.v.Sinks) > 0 && !vs.committed {
		vs.committed = true
		r.pendingCommits++
		vsCopy := vs
		go func() {
			err := r.commitSinks(vsCopy)
			r.mb.Put(msgCommitDone{vs: vsCopy, err: err})
		}()
	}
	if r.cfg.CheckpointPath != "" {
		r.saveCheckpoint()
	}
	if r.cfg.Chaos.OnVertexCompleted() {
		// Injected AM crash: the checkpoint above (if any) is on disk; a
		// fresh session can Recover this DAG from it.
		r.fail(DAGFailed, chaos.ErrAMCrash)
		return
	}
	r.maybeFinish()
}

// commitSinks runs each sink's committer exactly once (§3.1).
func (r *dagRun) commitSinks(vs *vertexState) error {
	success := make(map[int]int, len(vs.tasks))
	for _, ts := range vs.tasks {
		if ts.winner != nil {
			success[ts.idx] = ts.winner.id
		} else if ts.restored {
			success[ts.idx] = ts.restoredAttempt
		} else {
			return fmt.Errorf("am: commit %s: task %d has no successful attempt", vs.v.Name, ts.idx)
		}
	}
	for _, sink := range vs.v.Sinks {
		if sink.Committer.IsZero() {
			continue
		}
		c, err := runtime.NewCommitter(sink.Committer)
		if err != nil {
			return err
		}
		err = c.Commit(&runtime.CommitContext{
			DAG:               r.id,
			Vertex:            vs.v.Name,
			Sink:              sink.Name,
			Payload:           sink.Committer.Payload,
			FS:                r.session.plat.FS,
			Parallelism:       vs.parallelism,
			SuccessfulAttempt: success,
		})
		if err != nil {
			return fmt.Errorf("am: commit %s/%s: %w", vs.v.Name, sink.Name, err)
		}
	}
	return nil
}

func (r *dagRun) onCommitDone(vs *vertexState, err error) {
	r.pendingCommits--
	if err != nil {
		r.fail(DAGFailed, err)
		return
	}
	vs.commitComplete = true
	r.counters.Add("SINKS_COMMITTED", 1)
	if r.cfg.CheckpointPath != "" {
		r.saveCheckpoint()
	}
	r.maybeFinish()
}
