package am

import (
	"errors"
	"fmt"

	"tez/internal/chaos"
	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/mailbox"
	"tez/internal/runtime"
	"tez/internal/timeline"
)

// scheduleTasks is the vertex-manager entry point: move the given pending
// tasks to scheduled and create their first attempts. Idempotent —
// already-scheduled ids are expected repeats, not transition attempts.
func (r *dagRun) scheduleTasks(vs *vertexState, ids []int) {
	if r.isFinished() || !vs.lc.In(vRunning) {
		return
	}
	for _, id := range ids {
		if id < 0 || id >= len(vs.tasks) {
			continue
		}
		ts := vs.tasks[id]
		if !ts.lc.In(tPending) {
			continue
		}
		ts.lc.Fire(tEvSchedule)
		r.newAttempt(ts, false)
	}
}

// newAttempt creates an attempt and asks the scheduler for a container.
func (r *dagRun) newAttempt(ts *taskState, speculative bool) *attemptState {
	at := newAttemptState(r, ts, speculative)
	ts.attempts = append(ts.attempts, at)
	req := &taskRequest{
		priority: ts.vertex.priority,
		hosts:    r.taskHosts(ts),
		tag:      r,
		dag:      r.id,
		assign: func(pc *pooledContainer) {
			r.postAssigned(at, pc)
		},
	}
	at.req = req
	info := ""
	if speculative {
		info = "speculative"
	}
	r.tl().Record(timeline.Event{
		Type: timeline.AttemptRequested, DAG: r.id,
		Vertex: ts.vertex.v.Name, Task: ts.idx, Attempt: at.id, Info: info,
	})
	r.session.sched.submit(req)
	r.counters.Add("ATTEMPTS_LAUNCHED", 1)
	if speculative {
		r.counters.Add("SPECULATIVE_ATTEMPTS", 1)
	}
	return at
}

// taskHosts computes locality preferences: initializer hints for root
// tasks, the source attempt's node for 1-1 edges (§4.2).
func (r *dagRun) taskHosts(ts *taskState) []cluster.NodeID {
	vs := ts.vertex
	if ts.idx < len(vs.locationHints) {
		if hints := vs.locationHints[ts.idx]; len(hints) > 0 {
			out := make([]cluster.NodeID, 0, len(hints))
			for _, h := range hints {
				out = append(out, cluster.NodeID(h))
			}
			return out
		}
	}
	for _, es := range r.inEdges[vs.v.Name] {
		if es.e.Property.Movement != dag.OneToOne {
			continue
		}
		if ts.idx < len(es.from.tasks) {
			src := es.from.tasks[ts.idx]
			if w := src.winner; w != nil && w.node != "" {
				return []cluster.NodeID{cluster.NodeID(w.node)}
			}
			if src.restored && src.restoredNode != "" {
				return []cluster.NodeID{cluster.NodeID(src.restoredNode)}
			}
		}
	}
	return nil
}

// onAssigned launches the attempt in its container.
func (r *dagRun) onAssigned(at *attemptState, pc *pooledContainer) {
	if r.isFinished() || !at.lc.In(aWaiting) || at.task.lc.In(tSucceeded) {
		// Stale assignment: the container is healthy; recycle it.
		if at.lc.In(aWaiting) {
			at.lc.Fire(aEvKill)
		}
		r.session.sched.release(pc, true)
		return
	}
	// Populate the attempt before firing: the ATTEMPT_STARTED observer
	// reads node, container, locality and allocWait.
	at.pc = pc
	at.node = string(pc.c.Node())
	at.locality = pc.c.Locality
	at.start = r.clock()
	at.mbox = mailbox.New[event.Event]()
	loc := pc.c.Locality.String()
	r.counters.Add("LOCALITY_"+loc, 1)
	// Close the request→allocate→launch span: how long this attempt waited
	// for its container, bucketed by the locality level achieved.
	wait := r.clock().Sub(at.req.created)
	if wait < 0 {
		wait = 0
	}
	at.allocWait = wait
	r.counters.Add("SCHED_ALLOC_WAIT_NS_"+loc, int64(wait))
	r.counters.Add("SCHED_ALLOC_WAIT_COUNT_"+loc, 1)
	at.lc.Fire(aEvAssigned)
	// tScheduled → tRunning on the first launch; a self-loop for a
	// speculative twin joining an already-running task.
	at.task.lc.Fire(tEvLaunched)

	spec := r.buildTaskSpec(at)
	fetchPar := r.session.cfg.ShuffleFetchParallelism
	if r.session.cfg.DisableParallelFetch {
		fetchPar = 1
	}
	services := runtime.Services{
		FS:               r.session.plat.FS,
		Shuffle:          r.session.plat.Shuffle,
		Node:             at.node,
		Registry:         pc.registry,
		Counters:         r.counters,
		Token:            r.token,
		FetchParallelism: fetchPar,
		SortMB:           r.session.cfg.ShuffleSortMB,
		MergeFactor:      r.session.cfg.ShuffleMergeFactor,
		Codec:            r.session.cfg.ShuffleCodec,
		ShufflePipelined: r.session.cfg.ShufflePipelined,
		RelopBatchSize:   r.session.cfg.RelopBatchSize,
		Timeline:         r.tl(),
	}
	r.replayEvents(at)
	go func() {
		runner := &runtime.TaskRunner{
			Spec:     spec,
			Services: services,
			Incoming: at.mbox,
			Emit: func(ev event.Event) {
				r.postTaskEvent(at, ev)
			},
		}
		err := pc.c.Exec(func(stop <-chan struct{}) error { return runner.Run(stop) })
		r.postAttemptDone(at, err)
	}()
}

// buildTaskSpec assembles the runner spec from the current (possibly
// reconfigured) DAG geometry.
func (r *dagRun) buildTaskSpec(at *attemptState) runtime.TaskSpec {
	ts := at.task
	vs := ts.vertex
	spec := runtime.TaskSpec{
		Meta: runtime.Meta{
			DAG:               r.id,
			Vertex:            vs.v.Name,
			Task:              ts.idx,
			Attempt:           at.id,
			VertexParallelism: vs.parallelism,
		},
		Processor: vs.v.Processor,
	}
	for _, src := range vs.v.Sources {
		spec.Inputs = append(spec.Inputs, runtime.IOSpec{
			Name:          src.Name,
			Descriptor:    src.Input,
			PhysicalCount: 1,
		})
	}
	for _, es := range r.inEdges[vs.v.Name] {
		spec.Inputs = append(spec.Inputs, runtime.IOSpec{
			Name:          es.e.From,
			Descriptor:    es.e.Property.Input,
			PhysicalCount: es.mgr.NumDestinationTaskPhysicalInputs(ts.idx),
		})
	}
	for _, es := range r.outEdges[vs.v.Name] {
		// Broadcast/one-to-one producers may run before the consumer is
		// configured; their physical output count is always 1.
		phys := 1
		if es.mgr != nil {
			phys = es.mgr.NumSourceTaskPhysicalOutputs(ts.idx)
		}
		spec.Outputs = append(spec.Outputs, runtime.IOSpec{
			Name:          es.e.To,
			Descriptor:    es.e.Property.Output,
			PhysicalCount: phys,
		})
	}
	for _, sink := range vs.v.Sinks {
		spec.Outputs = append(spec.Outputs, runtime.IOSpec{
			Name:          sink.Name,
			Descriptor:    sink.Output,
			PhysicalCount: 1,
		})
	}
	return spec
}

// replayEvents delivers the task's root-input assignments and all stored
// upstream DataMovements to a newly started attempt.
func (r *dagRun) replayEvents(at *attemptState) {
	ts := at.task
	vs := ts.vertex
	// One PutAll: replay for a wide shuffle consumer delivers thousands of
	// stored movements; batching makes that one lock round-trip and one
	// consumer wakeup instead of one per event.
	var replay []event.Event
	for src, payloads := range vs.rootPayloads {
		if ts.idx < len(payloads) {
			replay = append(replay, event.RootInputDataInformation{
				TargetVertex: vs.v.Name,
				TargetTask:   ts.idx,
				InputName:    src,
				Payload:      payloads[ts.idx],
			})
		}
	}
	for _, es := range r.inEdges[vs.v.Name] {
		for srcTask, sm := range es.srcs {
			// Replay only the delivered attempt's stream, in emission order,
			// so a late-joining consumer sees the same increment sequence a
			// running one did.
			for _, dm := range sm.deliveredMovements() {
				for destTask, inputIdx := range es.mgr.Route(srcTask, dm.SrcOutputIndex) {
					if destTask != ts.idx {
						continue
					}
					routed := dm
					routed.TargetVertex = vs.v.Name
					routed.TargetTask = destTask
					routed.TargetInput = es.e.From
					routed.TargetInputIndex = inputIdx
					replay = append(replay, routed)
				}
			}
		}
	}
	at.mbox.PutAll(replay)
}

// onAttemptDone handles attempt termination: the A_DONE multi-arc
// transition classifies the outcome (classifyAttemptDone), the attempt
// observer closes the span, and only the post-classification consequences
// — counters, re-execution, MaxTaskAttempts — live here.
func (r *dagRun) onAttemptDone(at *attemptState, err error) {
	ts := at.task
	vs := ts.vertex
	pc := at.pc

	// Containers killed by the platform are unusable; anything else can be
	// reused for the next waiting task.
	containerKilled := errors.Is(err, cluster.ErrContainerKilled)
	if pc != nil && !containerKilled {
		r.session.sched.release(pc, !r.isFinished())
	} else if pc != nil {
		r.session.sched.onContainerStopped(pc.c.ID)
	}
	if at.mbox != nil {
		at.mbox.Close()
	}
	if r.isFinished() || !at.lc.In(aRunning) {
		return // zombie: already killed (teardown, speculation, preemption)
	}

	d := &attemptDone{
		failed:          err != nil,
		containerKilled: containerKilled,
		lostRace:        ts.lc.In(tSucceeded),
	}
	if err != nil {
		_, d.inputError = runtime.AsInputReadError(err)
		// A genuine error from a node already known dead raced the
		// node-failure notification in the mailbox: the machine's death,
		// not the task's fault.
		d.nodeDead = at.node != "" && r.deadNodes[at.node]
	}
	at.lc.FireWith(aEvDone, d)

	switch at.lc.State() {
	case aSucceeded:
		r.attemptSucceeded(at)
		return
	case aKilled:
		// A casualty — container kill, input-error cascade, node loss —
		// never counts toward MaxTaskAttempts or node health. A lost
		// speculative race charges nothing at all.
		if d.cause != "" {
			r.counters.Add(d.cause, 1)
		}
		r.retractAttemptMovements(at)
	case aFailed:
		ts.failures++
		r.counters.Add("ATTEMPTS_FAILED", 1)
		if r.session.health.taskFailed(at.node) {
			r.counters.Add("NODES_BLACKLISTED", 1)
		}
		r.retractAttemptMovements(at)
	}
	if ts.lc.In(tSucceeded) {
		return // a speculative twin already won
	}
	if ts.failures >= r.cfg.MaxTaskAttempts {
		ts.lc.Fire(tEvExhausted)
		vs.lc.Fire(vEvTaskFailed)
		r.fail(DAGFailed, fmt.Errorf("am: task %s/%d failed %d attempts, last: %w",
			vs.v.Name, ts.idx, ts.failures, err))
		return
	}
	if ts.runningAttempts() == 0 {
		r.newAttempt(ts, false)
	}
}

// attemptSucceeded commits a winning attempt's success into the task and
// vertex (the lost-race case was already classified aKilled by the A_DONE
// selector and never reaches here).
func (r *dagRun) attemptSucceeded(at *attemptState) {
	ts := at.task
	vs := ts.vertex
	ts.lc.Fire(tEvSucceeded)
	ts.winner = at
	vs.completed++
	vs.durations = append(vs.durations, r.clock().Sub(at.start))
	r.counters.Add("TASKS_SUCCEEDED", 1)

	// Kill the losing twins. A still-running loser's span is closed KILLED
	// by its observer; a waiting loser never started, so only its request
	// is withdrawn.
	for _, other := range ts.attempts {
		if other == at {
			continue
		}
		switch {
		case other.lc.In(aWaiting):
			other.lc.Fire(aEvKill)
			if other.req != nil {
				r.session.sched.cancel(other.req)
			}
		case other.lc.In(aRunning):
			other.lc.Fire(aEvKill)
			if other.pc != nil {
				r.session.sched.discard(other.pc)
			}
		}
	}

	// The winner's published movements become the delivered stream on
	// every out-edge; a losing twin's partially-delivered stream is
	// retracted and its buffers pruned.
	r.promoteWinnerMovements(at)

	// Tell downstream vertex managers.
	for _, es := range r.outEdges[vs.v.Name] {
		if es.to.managerStarted {
			es.to.manager.OnSourceTaskCompleted(vs.v.Name, ts.idx)
		}
	}
	if vs.completed == vs.parallelism {
		r.vertexSucceeded(vs)
	}
}

// vertexSucceeded finalises a vertex: launch sink committers, checkpoint,
// and maybe finish the DAG.
func (r *dagRun) vertexSucceeded(vs *vertexState) {
	if vs.lc.In(vSucceeded) {
		return
	}
	// The observer journals VERTEX_SUCCEEDED here — before saveCheckpoint,
	// so the checkpointed journal stream includes this vertex's completion
	// (AM-crash recovery coherence).
	vs.lc.Fire(vEvCompleted)
	r.counters.Add("VERTICES_SUCCEEDED", 1)
	r.session.sched.sweepVertexRegistries(r.id, vs.v.Name)
	if len(vs.v.Sinks) > 0 && !vs.committed {
		vs.committed = true
		r.pendingCommits++
		// Snapshot the winning attempts on the event loop, not inside the
		// commit goroutine: a node failure can roll a succeeded task back
		// (reexecuteTask, for ephemeral-edge consumers) while the commit is
		// in flight, nilling ts.winner under it. The attempts that were
		// winners at success time wrote their sink temp files to reliable
		// storage, so committing them stays correct regardless of later
		// re-execution for shuffle regeneration.
		success := make(map[int]int, len(vs.tasks))
		var missing error
		for _, ts := range vs.tasks {
			if ts.winner != nil {
				success[ts.idx] = ts.winner.id
			} else if ts.restored {
				success[ts.idx] = ts.restoredAttempt
			} else {
				missing = fmt.Errorf("am: commit %s: task %d has no successful attempt", vs.v.Name, ts.idx)
				break
			}
		}
		vsCopy := vs
		go func() {
			err := missing
			if err == nil {
				err = r.commitSinks(vsCopy, success)
			}
			r.mb.Put(msgCommitDone{vs: vsCopy, err: err})
		}()
	}
	if r.cfg.CheckpointPath != "" {
		r.saveCheckpoint()
	}
	if r.cfg.Chaos.OnVertexCompleted() {
		// Injected AM crash: the checkpoint above (if any) is on disk; a
		// fresh session can Recover this DAG from it.
		r.fail(DAGFailed, chaos.ErrAMCrash)
		return
	}
	r.maybeFinish()
}

// commitSinks runs each sink's committer exactly once (§3.1), with the
// success map captured when the vertex first succeeded.
func (r *dagRun) commitSinks(vs *vertexState, success map[int]int) error {
	for _, sink := range vs.v.Sinks {
		if sink.Committer.IsZero() {
			continue
		}
		c, err := runtime.NewCommitter(sink.Committer)
		if err != nil {
			return err
		}
		err = c.Commit(&runtime.CommitContext{
			DAG:               r.id,
			Vertex:            vs.v.Name,
			Sink:              sink.Name,
			Payload:           sink.Committer.Payload,
			FS:                r.session.plat.FS,
			Parallelism:       vs.parallelism,
			SuccessfulAttempt: success,
		})
		if err != nil {
			return fmt.Errorf("am: commit %s/%s: %w", vs.v.Name, sink.Name, err)
		}
	}
	return nil
}

func (r *dagRun) onCommitDone(vs *vertexState, err error) {
	r.pendingCommits--
	if err != nil {
		r.fail(DAGFailed, err)
		return
	}
	vs.commitComplete = true
	r.counters.Add("SINKS_COMMITTED", 1)
	if r.cfg.CheckpointPath != "" {
		r.saveCheckpoint()
	}
	r.maybeFinish()
}
