package am

import (
	"sync"
	"time"

	"tez/internal/cluster"
	"tez/internal/runtime"
	"tez/internal/timeline"
)

// taskRequest asks the scheduler for a container to run one task attempt.
type taskRequest struct {
	priority int // lower is more urgent (vertex topological depth)
	hosts    []cluster.NodeID
	racks    []string
	// assign is invoked (never under scheduler locks) with the container
	// to use. The callee owns the container until it calls release.
	assign func(*pooledContainer)
	// tag identifies the requesting DAG run (deadlock detection scope).
	tag any
	// dag is the requesting run's id, for timeline attribution ("" for
	// prewarm requests, which are session-scoped).
	dag string

	created   time.Time
	cancelled bool
	rmReq     *cluster.ContainerRequest

	// Pending-queue position (guarded by scheduler.mu): the bucket the
	// request sits in and its absolute slot index within it. bucket is nil
	// whenever the request is not queued, which makes removal idempotent.
	bucket *amBucket
	slot   int
}

// amBucket is one priority's pending FIFO. Entries are addressed by a
// stable absolute index (base + position), so a request records where it
// sits and removal is an O(1) nil-tombstone instead of the old O(R) scan
// — which ran once per allocation and made a 100k-task DAG O(R²). The
// head cursor pops over tombstones; compaction slides the live tail down
// (adjusting base so recorded slots stay valid) once the dead prefix
// dominates, bounding retained memory the same way mailbox does.
type amBucket struct {
	priority int
	reqs     []*taskRequest
	head     int // reqs[head:] may be live; reqs[:head] are dead slots
	base     int // absolute index of reqs[0]
	live     int // non-tombstone entries in reqs[head:]
}

// amBucketCompactThreshold matches the mailbox policy: compact when the
// dead prefix is both large and at least as big as the live tail.
const amBucketCompactThreshold = 32

func (b *amBucket) maybeCompact() {
	if b.head == len(b.reqs) {
		b.base += b.head
		b.reqs = b.reqs[:0]
		b.head = 0
		return
	}
	if b.head < amBucketCompactThreshold || b.head < len(b.reqs)-b.head {
		return
	}
	n := copy(b.reqs, b.reqs[b.head:])
	for i := n; i < len(b.reqs); i++ {
		b.reqs[i] = nil
	}
	b.base += b.head
	b.reqs = b.reqs[:n]
	b.head = 0
}

// pooledContainer couples a launched container with its per-container
// object registry (§4.2): the registry lives and dies with the container,
// so cached objects survive exactly as long as reuse does.
type pooledContainer struct {
	c        *cluster.Container
	registry *runtime.ObjectRegistry

	idleSince time.Time
	execs     int // assignments so far (reuse accounting; 0 = never ran a task)
}

// schedStats counts scheduler activity for tests and benchmarks.
type schedStats struct {
	Allocated int // fresh containers launched
	Reused    int // task assignments satisfied by an already-held container
}

// scheduler owns the session's container pool: it satisfies task requests
// from idle (reused) containers first, escalates the rest to the RM with
// the request's locality preferences, hands containers finishing a task to
// waiting requests (within and across DAGs — Figure 7), and releases
// containers idle for longer than the configured timeout.
type scheduler struct {
	cfg Config
	app *cluster.Application
	// health is the session's node blacklist; nil when blacklisting is
	// disabled. Blacklisted nodes are excluded from RM requests and from
	// idle-container reuse.
	health *nodeHealth
	now    timeline.Clock    // injectable (Config.Clock)
	tl     *timeline.Journal // nil-safe event sink

	mu   sync.Mutex
	idle []*pooledContainer
	// pending holds waiting requests in per-priority FIFO buckets; prios
	// keeps the bucket keys sorted ascending so takePendingLocked pops the
	// most urgent request without the old per-release stable sort.
	// livePending counts non-cancelled queued requests across all buckets.
	pending     map[int]*amBucket
	prios       []int
	livePending int
	held        map[cluster.ContainerID]*pooledContainer
	stats       schedStats
	lastAssign  time.Time
	closed      bool

	// testHookPreRequest, when set, runs after a request has been queued
	// as pending but before the RM request is issued — a deterministic
	// interleaving seam for submit/cancel race tests. Nil in production.
	testHookPreRequest func(*taskRequest)
	// testHookPreLaunch, when set, runs in onAllocated just before
	// Container.Launch — a seam for launch-failure tests.
	testHookPreLaunch func(*cluster.Container)
}

func newScheduler(cfg Config, app *cluster.Application, health *nodeHealth) *scheduler {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &scheduler{
		cfg: cfg, app: app, health: health, now: now, tl: cfg.Timeline,
		pending: make(map[int]*amBucket),
		held:    make(map[cluster.ContainerID]*pooledContainer),
	}
}

// submit requests a container for a task attempt.
func (s *scheduler) submit(req *taskRequest) {
	req.created = s.now()
	s.enqueue(req)
}

// enqueue places a request with the scheduler: satisfied from an idle
// container when possible, otherwise escalated to the RM. Also used by
// onAllocated to re-submit a request whose container failed to launch.
// Cancellation can race with this path, so the cancelled flag is checked
// under the lock before anything is issued and re-checked after the RM
// request goes out (cancel may have observed rmReq == nil and withdrawn
// nothing).
func (s *scheduler) enqueue(req *taskRequest) {
	s.mu.Lock()
	if s.closed || req.cancelled {
		s.mu.Unlock()
		return
	}
	if pc := s.takeIdleLocked(req); pc != nil {
		s.stats.Reused++
		s.lastAssign = s.now()
		prior := pc.execs
		pc.execs++
		s.mu.Unlock()
		s.tl.Record(timeline.Event{
			Type: timeline.ContainerReused, DAG: req.dag,
			Node: string(pc.c.Node()), Container: int64(pc.c.ID),
			Val: int64(prior),
		})
		req.assign(pc)
		return
	}
	s.pushPendingLocked(req)
	rmReq := &cluster.ContainerRequest{
		Priority:      req.priority,
		Resource:      s.cfg.ContainerResource,
		Nodes:         req.hosts,
		Racks:         req.racks,
		RelaxLocality: true,
		Exclude:       s.health.excludedIDs(),
		Cookie:        req,
	}
	req.rmReq = rmReq
	s.mu.Unlock()
	if s.testHookPreRequest != nil {
		s.testHookPreRequest(req)
	}
	s.app.Request(rmReq)
	s.mu.Lock()
	cancelled := req.cancelled
	s.mu.Unlock()
	if cancelled {
		// cancel ran between the unlock above and the RM request being
		// issued; withdraw it now (Application.Cancel is idempotent).
		s.app.Cancel(rmReq)
	}
}

// cancel withdraws a request (e.g. the task was satisfied by a speculative
// twin). Safe if the request was already assigned, and safe to race with
// submit: enqueue re-checks the flag around its RM request.
func (s *scheduler) cancel(req *taskRequest) {
	s.mu.Lock()
	req.cancelled = true
	if req.rmReq != nil {
		s.app.Cancel(req.rmReq)
	}
	s.removePendingLocked(req)
	s.mu.Unlock()
}

// takeIdleLocked matches an idle container: same host, then same rack,
// then any (container reuse relaxes locality rather than waiting).
func (s *scheduler) takeIdleLocked(req *taskRequest) *pooledContainer {
	if s.cfg.DisableContainerReuse || len(s.idle) == 0 {
		return nil
	}
	pick := -1
	bestClass := 3
	for i, pc := range s.idle {
		if s.health.isBlacklisted(string(pc.c.Node())) {
			continue
		}
		class := 2
		for _, h := range req.hosts {
			if pc.c.Node() == h {
				class = 0
				break
			}
		}
		if class != 0 {
			for _, r := range req.racks {
				if pc.c.Rack() == r {
					class = 1
					break
				}
			}
		}
		if class < bestClass {
			bestClass, pick = class, i
		}
	}
	if pick < 0 {
		return nil
	}
	pc := s.idle[pick]
	s.idle = append(s.idle[:pick], s.idle[pick+1:]...)
	return pc
}

// onAllocated handles a fresh container from the RM.
func (s *scheduler) onAllocated(c *cluster.Container, rmReq *cluster.ContainerRequest) {
	req, _ := rmReq.Cookie.(*taskRequest)
	pc := &pooledContainer{c: c, registry: runtime.NewObjectRegistry()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.app.Release(c)
		return
	}
	s.held[c.ID] = pc
	s.stats.Allocated++
	if req != nil {
		s.removePendingLocked(req)
		if req.cancelled {
			req = nil
		}
	}
	s.lastAssign = s.now()
	s.mu.Unlock()

	// Launch outside locks: this pays the container start overhead.
	if s.testHookPreLaunch != nil {
		s.testHookPreLaunch(c)
	}
	if err := c.Launch(); err != nil {
		// The container died between allocation and launch (node loss,
		// preemption). Its request was already removed from pending, so
		// discarding alone would strand the task attempt — assign would
		// never fire. Re-submit the request instead.
		s.discard(pc)
		if req != nil {
			s.enqueue(req)
		}
		return
	}
	if req != nil {
		s.mu.Lock()
		pc.execs++
		s.mu.Unlock()
		req.assign(pc)
		return
	}
	s.release(pc, true)
}

// release returns a container after a task: hand it to a waiting request
// (reuse), park it idle, or give it back to the RM.
func (s *scheduler) release(pc *pooledContainer, reusable bool) {
	if reusable && s.health.isBlacklisted(string(pc.c.Node())) {
		reusable = false
	}
	s.mu.Lock()
	if s.closed || !reusable || s.cfg.DisableContainerReuse {
		delete(s.held, pc.c.ID)
		s.mu.Unlock()
		s.app.Release(pc.c)
		return
	}
	if req := s.takePendingLocked(); req != nil {
		if req.rmReq != nil {
			s.app.Cancel(req.rmReq)
		}
		s.stats.Reused++
		s.lastAssign = s.now()
		prior := pc.execs
		pc.execs++
		s.mu.Unlock()
		s.tl.Record(timeline.Event{
			Type: timeline.ContainerReused, DAG: req.dag,
			Node: string(pc.c.Node()), Container: int64(pc.c.ID),
			Val: int64(prior),
		})
		req.assign(pc)
		return
	}
	pc.idleSince = s.now()
	s.idle = append(s.idle, pc)
	s.mu.Unlock()
}

// discard drops a container that can no longer run work (killed node etc.).
func (s *scheduler) discard(pc *pooledContainer) {
	s.mu.Lock()
	delete(s.held, pc.c.ID)
	for i, ic := range s.idle {
		if ic == pc {
			s.idle = append(s.idle[:i], s.idle[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.app.Release(pc.c)
}

// onContainerStopped reacts to involuntary container loss.
func (s *scheduler) onContainerStopped(id cluster.ContainerID) {
	s.mu.Lock()
	pc := s.held[id]
	delete(s.held, id)
	if pc != nil {
		for i, ic := range s.idle {
			if ic == pc {
				s.idle = append(s.idle[:i], s.idle[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
}

// pushPendingLocked appends a request to its priority's FIFO, recording
// its stable slot for O(1) removal.
func (s *scheduler) pushPendingLocked(req *taskRequest) {
	b := s.pending[req.priority]
	if b == nil {
		b = &amBucket{priority: req.priority}
		s.pending[req.priority] = b
		i := len(s.prios)
		for i > 0 && s.prios[i-1] > req.priority {
			i--
		}
		s.prios = append(s.prios, 0)
		copy(s.prios[i+1:], s.prios[i:])
		s.prios[i] = req.priority
	}
	req.bucket = b
	req.slot = b.base + len(b.reqs)
	b.reqs = append(b.reqs, req)
	b.live++
	s.livePending++
}

// takePendingLocked pops the most urgent live pending request: the first
// non-tombstone entry of the lowest-priority non-empty bucket. FIFO within
// a bucket preserves the old stable-sort arrival order.
func (s *scheduler) takePendingLocked() *taskRequest {
	if s.livePending == 0 {
		return nil
	}
	for _, p := range s.prios {
		b := s.pending[p]
		if b.live == 0 {
			continue
		}
		for b.head < len(b.reqs) {
			req := b.reqs[b.head]
			b.reqs[b.head] = nil
			b.head++
			if req != nil {
				req.bucket = nil
				b.live--
				s.livePending--
				b.maybeCompact()
				return req
			}
		}
	}
	return nil
}

// removePendingLocked tombstones a queued request in place. A request not
// currently queued (bucket == nil, or already popped) is a no-op.
func (s *scheduler) removePendingLocked(req *taskRequest) {
	b := req.bucket
	if b == nil {
		return
	}
	i := req.slot - b.base
	if i < b.head || i >= len(b.reqs) || b.reqs[i] != req {
		return
	}
	b.reqs[i] = nil
	req.bucket = nil
	b.live--
	s.livePending--
	if b.live == 0 {
		b.base += len(b.reqs)
		b.reqs = b.reqs[:0]
		b.head = 0
	}
}

// reapIdle releases containers idle beyond the configured timeout; called
// periodically by the session. Sessions keep prewarmed/idle capacity only
// this long, releasing resources to the cluster (§4.3 multi-tenancy).
func (s *scheduler) reapIdle() {
	var victims []*pooledContainer
	s.mu.Lock()
	now := s.now()
	kept := s.idle[:0]
	for _, pc := range s.idle {
		if now.Sub(pc.idleSince) > s.cfg.ContainerIdleRelease {
			victims = append(victims, pc)
			delete(s.held, pc.c.ID)
		} else {
			kept = append(kept, pc)
		}
	}
	s.idle = kept
	s.mu.Unlock()
	for _, pc := range victims {
		s.app.Release(pc.c)
	}
}

// prewarm launches n containers ahead of the first DAG (§4.2, Session).
func (s *scheduler) prewarm(n int) {
	for i := 0; i < n; i++ {
		req := &taskRequest{priority: 1 << 20}
		req.assign = func(pc *pooledContainer) {
			s.mu.Lock()
			pc.execs = 0 // prewarm isn't a task execution: a later hit is a warm hit
			s.mu.Unlock()
			s.tl.Record(timeline.Event{
				Type: timeline.ContainerPrewarmed,
				Node: string(pc.c.Node()), Container: int64(pc.c.ID),
			})
			s.release(pc, true)
		}
		s.submit(req)
	}
}

// pendingInfo reports starvation state for deadlock detection, scoped to
// one DAG run's requests: their number, the oldest request age, the most
// urgent starved priority, and how long ago the session last assigned any
// container (a session making steady progress is contended, not
// deadlocked).
func (s *scheduler) pendingInfo(tag any) (n int, oldest, sinceAssign time.Duration, minPriority int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	sinceAssign = time.Duration(1 << 60)
	if !s.lastAssign.IsZero() {
		sinceAssign = now.Sub(s.lastAssign)
	}
	minPriority = 1 << 30
	for _, p := range s.prios {
		b := s.pending[p]
		for _, r := range b.reqs[b.head:] {
			if r == nil || (tag != nil && r.tag != tag) {
				continue
			}
			n++
			if age := now.Sub(r.created); age > oldest {
				oldest = age
			}
			if r.priority < minPriority {
				minPriority = r.priority
			}
		}
	}
	return n, oldest, sinceAssign, minPriority
}

// sweepRegistries evicts a finished DAG's entries from every held
// container's object registry (framework-managed lifecycle, §4.2).
func (s *scheduler) sweepRegistries(dagID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pc := range s.held {
		pc.registry.SweepDAG(dagID)
	}
}

// sweepVertexRegistries evicts a finished vertex's entries.
func (s *scheduler) sweepVertexRegistries(dagID, vertex string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pc := range s.held {
		pc.registry.SweepVertex(dagID, vertex)
	}
}

// snapshot returns current counters.
func (s *scheduler) snapshot() schedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// close releases everything; pending assigns never fire afterwards.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	idle := s.idle
	s.idle = nil
	// Detach queued requests so a straggling cancel's removal is a no-op
	// against the dropped buckets, and collect their outstanding RM
	// requests: dropping the buckets alone would leave those requests
	// pending at the RM forever (Application.PendingRequests never
	// returning to zero after a mid-run Close).
	var withdraw []*cluster.ContainerRequest
	for _, b := range s.pending {
		for _, r := range b.reqs[b.head:] {
			if r != nil {
				r.bucket = nil
				if r.rmReq != nil && !r.cancelled {
					withdraw = append(withdraw, r.rmReq)
				}
			}
		}
	}
	s.pending = make(map[int]*amBucket)
	s.prios = nil
	s.livePending = 0
	s.mu.Unlock()
	for _, req := range withdraw {
		s.app.Cancel(req)
	}
	for _, pc := range idle {
		s.app.Release(pc.c)
	}
}
