package am

import (
	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/timeline"
)

// onTaskEvent routes a control event emitted by a task (§3.3): the
// framework inspects only the envelope and routes the opaque payload.
func (r *dagRun) onTaskEvent(at *attemptState, ev event.Event) {
	if r.isFinished() {
		return
	}
	// Zombie protection: only currently-running attempts may influence the
	// control plane.
	if !at.lc.In(aRunning) {
		return
	}
	switch e := ev.(type) {
	case event.DataMovement:
		r.routeDataMovement(e)
	case event.VertexManagerEvent:
		r.routeVMEvent(e)
	case event.InputInitializerEvent:
		r.routeInitializerEvent(e)
	case event.InputReadError:
		r.onInputReadError(e)
	}
}

// routeDataMovement buffers a movement under its attempt and delivers it
// to running consumer attempts per the edge manager's connection pattern
// (Figure 5) — but only when the emitting attempt owns the source task's
// delivered stream. The first attempt to publish claims delivery; a
// speculative twin's movements stay buffered until a retraction or winner
// switchover promotes them, so consumers never interleave two attempts'
// increment streams.
func (r *dagRun) routeDataMovement(dm event.DataMovement) {
	es := r.findEdge(dm.SrcVertex, dm.TargetVertex)
	if es == nil {
		return
	}
	// Always record the movement; if the consumer's routing table does not
	// exist yet (producer ran ahead of consumer configuration), the stored
	// movement is replayed when consumer attempts start.
	sm := es.srcs[dm.SrcTask]
	if sm == nil {
		sm = &srcMovements{delivered: -1, byAttempt: make(map[int][]event.DataMovement)}
		es.srcs[dm.SrcTask] = sm
	}
	sm.byAttempt[dm.SrcAttempt] = append(sm.byAttempt[dm.SrcAttempt], dm)
	if sm.delivered < 0 {
		sm.delivered = dm.SrcAttempt
	}
	if sm.delivered == dm.SrcAttempt && es.mgr != nil {
		r.deliverMovement(es, dm)
	}
}

func (r *dagRun) deliverMovement(es *edgeState, dm event.DataMovement) {
	for destTask, inputIdx := range es.mgr.Route(dm.SrcTask, dm.SrcOutputIndex) {
		if destTask >= len(es.to.tasks) {
			continue
		}
		routed := dm
		routed.TargetVertex = es.to.v.Name
		routed.TargetTask = destTask
		routed.TargetInput = es.e.From
		routed.TargetInputIndex = inputIdx
		for _, cat := range es.to.tasks[destTask].attempts {
			if cat.lc.In(aRunning) {
				cat.mbox.Put(routed)
			}
		}
	}
}

// sendRetractions tells running consumer attempts that every movement in
// moved (one attempt's published stream for srcTask) is obsolete. One
// InputFailed per routed (consumer task, input index) suffices: the
// consumer drops the whole increment stream for that input on attempt
// match. FIFO mailboxes and the single-threaded dispatcher guarantee the
// retraction is observed before any replacement movement sent afterwards.
func (r *dagRun) sendRetractions(es *edgeState, srcTask, attempt int, moved []event.DataMovement) {
	if es.mgr == nil {
		return
	}
	notified := make(map[[2]int]bool)
	for _, dm := range moved {
		for destTask, inputIdx := range es.mgr.Route(srcTask, dm.SrcOutputIndex) {
			if destTask >= len(es.to.tasks) || notified[[2]int{destTask, inputIdx}] {
				continue
			}
			notified[[2]int{destTask, inputIdx}] = true
			retract := event.InputFailed{
				TargetVertex:     es.to.v.Name,
				TargetTask:       destTask,
				TargetInput:      es.e.From,
				TargetInputIndex: inputIdx,
				SrcTask:          srcTask,
				SrcAttempt:       attempt,
			}
			for _, cat := range es.to.tasks[destTask].attempts {
				if cat.lc.In(aRunning) {
					cat.mbox.Put(retract)
				}
			}
		}
	}
}

// retractAttemptMovements discards a dead attempt's buffered movements on
// every out-edge. If the attempt owned the delivered stream, consumers
// are told to drop it and a surviving twin's buffered stream (the winner,
// or a still-running speculative attempt — later attempts preferred) is
// delivered in its place. Without this, a pipelined attempt killed
// mid-stream would leave consumers waiting forever for a final increment
// that is never coming.
func (r *dagRun) retractAttemptMovements(at *attemptState) {
	ts := at.task
	for _, es := range r.outEdges[ts.vertex.v.Name] {
		sm := es.srcs[ts.idx]
		if sm == nil {
			continue
		}
		moved := sm.byAttempt[at.id]
		delete(sm.byAttempt, at.id)
		if sm.delivered != at.id {
			if len(sm.byAttempt) == 0 && sm.delivered < 0 {
				delete(es.srcs, ts.idx)
			}
			continue
		}
		sm.delivered = -1
		r.sendRetractions(es, ts.idx, at.id, moved)
		// Promote a replacement stream: the winner's, else the newest
		// still-running attempt's.
		var cand *attemptState
		for _, other := range ts.attempts {
			if other == at || len(sm.byAttempt[other.id]) == 0 {
				continue
			}
			if other == ts.winner || other.lc.In(aRunning) {
				if cand == nil || other.id > cand.id {
					cand = other
				}
			}
		}
		if cand != nil {
			sm.delivered = cand.id
			if es.mgr != nil {
				for _, dm := range sm.byAttempt[cand.id] {
					r.deliverMovement(es, dm)
				}
			}
		} else if len(sm.byAttempt) == 0 {
			delete(es.srcs, ts.idx)
		}
	}
}

// promoteWinnerMovements makes the winning attempt's stream the delivered
// one on every out-edge, retracting a losing twin's stream if that one had
// been delivered first, and prunes the losers' buffers — after success
// only the winner's movements matter for replay and recovery.
func (r *dagRun) promoteWinnerMovements(at *attemptState) {
	ts := at.task
	for _, es := range r.outEdges[ts.vertex.v.Name] {
		sm := es.srcs[ts.idx]
		if sm == nil {
			continue
		}
		if sm.delivered != at.id {
			old := sm.delivered
			if old >= 0 {
				r.sendRetractions(es, ts.idx, old, sm.byAttempt[old])
			}
			sm.delivered = -1
			if len(sm.byAttempt[at.id]) > 0 {
				sm.delivered = at.id
				if es.mgr != nil {
					for _, dm := range sm.byAttempt[at.id] {
						r.deliverMovement(es, dm)
					}
				}
			}
		}
		for id := range sm.byAttempt {
			if id != at.id {
				delete(sm.byAttempt, id)
			}
		}
		if len(sm.byAttempt) == 0 {
			delete(es.srcs, ts.idx)
		}
	}
}

// routeVMEvent delivers statistics to the target vertex's manager,
// buffering if the manager does not exist yet.
func (r *dagRun) routeVMEvent(e event.VertexManagerEvent) {
	vs, ok := r.vertices[e.TargetVertex]
	if !ok {
		return
	}
	if vs.managerStarted {
		vs.manager.OnVertexManagerEvent(e)
		return
	}
	vs.pendingVM = append(vs.pendingVM, e)
}

// routeInitializerEvent feeds a data-source initializer (§3.5, dynamic
// partition pruning).
func (r *dagRun) routeInitializerEvent(e event.InputInitializerEvent) {
	vs, ok := r.vertices[e.TargetVertex]
	if !ok {
		return
	}
	if mbx, ok := vs.initEvents[e.TargetDataSource]; ok {
		mbx.Put(e)
	}
}

func (r *dagRun) findEdge(from, to string) *edgeState {
	for _, es := range r.outEdges[from] {
		if es.e.To == to {
			return es
		}
	}
	return nil
}

// onInputReadError re-executes the producer whose intermediate data was
// lost (§4.3). Cascades happen naturally: if the re-executed producer also
// cannot read its inputs, its own InputReadError walks one more step up
// the DAG, until a reliable edge (or a root input in the DFS) provides a
// barrier.
func (r *dagRun) onInputReadError(e event.InputReadError) {
	vs, ok := r.vertices[e.SrcVertex]
	if !ok || e.SrcTask < 0 || e.SrcTask >= len(vs.tasks) {
		return
	}
	ts := vs.tasks[e.SrcTask]
	current := -1
	if ts.winner != nil {
		current = ts.winner.id
	} else if ts.restored {
		current = ts.restoredAttempt
	}
	if !ts.lc.In(tSucceeded) || current != e.SrcAttempt {
		// Stale report: the producer is already being handled.
		return
	}
	r.counters.Add("INPUT_READ_ERRORS", 1)
	// Attribute the loss to the producer's node — unless that node is
	// already known dead (the loss is then the node failure's doing, not
	// evidence of a sick-but-alive machine).
	node := ""
	if ts.winner != nil {
		node = ts.winner.node
	} else if ts.restored {
		node = ts.restoredNode
	}
	r.tl().Record(timeline.Event{
		Type: timeline.InputReadError, DAG: r.id,
		Vertex: e.SrcVertex, Task: e.SrcTask, Attempt: e.SrcAttempt, Node: node,
	})
	if node != "" && !r.deadNodes[node] {
		if r.session.health.fetchFailed(node) {
			r.counters.Add("NODES_BLACKLISTED", 1)
		}
	}
	r.reexecuteTask(ts)
}

// reexecuteTask rolls a succeeded task back and schedules a fresh attempt,
// retracting its published data movements from running consumers.
func (r *dagRun) reexecuteTask(ts *taskState) {
	vs := ts.vertex
	oldAttempt := -1
	if ts.winner != nil {
		oldAttempt = ts.winner.id
	} else if ts.restored {
		oldAttempt = ts.restoredAttempt
	}
	ts.restored = false
	ts.winner = nil
	ts.lc.Fire(tEvRerun)
	vs.completed--
	if vs.lc.In(vSucceeded) {
		vs.lc.Fire(vEvRerun)
	}
	r.counters.Add("TASKS_REEXECUTED", 1)

	// Retract stored movements of this task and notify running consumers.
	// The rerun attempt republishes its whole stream from spill 0.
	for _, es := range r.outEdges[vs.v.Name] {
		sm := es.srcs[ts.idx]
		if sm == nil {
			continue
		}
		if sm.delivered >= 0 {
			r.sendRetractions(es, ts.idx, oldAttempt, sm.deliveredMovements())
		}
		delete(es.srcs, ts.idx)
	}
	r.newAttempt(ts, false)
}

// onNodeFailed proactively re-executes completed tasks whose (ephemeral)
// outputs lived on the lost machine, decreasing the chance that consumers
// hit InputReadErrors later (§4.3). Tasks whose outputs all cross reliable
// edges — or go only to DFS sinks — are spared: reliable storage is the
// barrier to cascading re-execution.
func (r *dagRun) onNodeFailed(node cluster.NodeID, planned bool) {
	if r.isFinished() {
		return
	}
	r.deadNodes[string(node)] = true
	if planned {
		// A drain is operator-initiated: re-execute what must be, but the
		// node did nothing wrong — it never touches health counters.
		r.counters.Add("NODE_DECOMMISSIONS_OBSERVED", 1)
	} else {
		r.counters.Add("NODE_FAILURES_OBSERVED", 1)
	}
	for _, name := range r.topo {
		vs := r.vertices[name]
		ephemeral := false
		for _, es := range r.outEdges[name] {
			if es.e.Property.Resilience == dag.Ephemeral {
				ephemeral = true
				break
			}
		}
		if !ephemeral {
			continue
		}
		for _, ts := range vs.tasks {
			if !ts.lc.In(tSucceeded) {
				continue
			}
			onNode := ts.restored && ts.restoredNode == string(node) ||
				(ts.winner != nil && ts.winner.node == string(node))
			if onNode {
				r.reexecuteTask(ts)
			}
		}
	}
}
