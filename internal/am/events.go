package am

import (
	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/timeline"
)

// onTaskEvent routes a control event emitted by a task (§3.3): the
// framework inspects only the envelope and routes the opaque payload.
func (r *dagRun) onTaskEvent(at *attemptState, ev event.Event) {
	if r.isFinished() {
		return
	}
	// Zombie protection: only currently-running attempts may influence the
	// control plane.
	if !at.lc.In(aRunning) {
		return
	}
	switch e := ev.(type) {
	case event.DataMovement:
		r.routeDataMovement(e)
	case event.VertexManagerEvent:
		r.routeVMEvent(e)
	case event.InputInitializerEvent:
		r.routeInitializerEvent(e)
	case event.InputReadError:
		r.onInputReadError(e)
	}
}

// routeDataMovement stores a movement and delivers it to running consumer
// attempts per the edge manager's connection pattern (Figure 5).
func (r *dagRun) routeDataMovement(dm event.DataMovement) {
	es := r.findEdge(dm.SrcVertex, dm.TargetVertex)
	if es == nil {
		return
	}
	// Always record the movement; if the consumer's routing table does not
	// exist yet (producer ran ahead of consumer configuration), the stored
	// movement is replayed when consumer attempts start.
	es.movements[[2]int{dm.SrcTask, dm.SrcOutputIndex}] = dm
	if es.mgr != nil {
		r.deliverMovement(es, dm)
	}
}

func (r *dagRun) deliverMovement(es *edgeState, dm event.DataMovement) {
	for destTask, inputIdx := range es.mgr.Route(dm.SrcTask, dm.SrcOutputIndex) {
		if destTask >= len(es.to.tasks) {
			continue
		}
		routed := dm
		routed.TargetVertex = es.to.v.Name
		routed.TargetTask = destTask
		routed.TargetInput = es.e.From
		routed.TargetInputIndex = inputIdx
		for _, cat := range es.to.tasks[destTask].attempts {
			if cat.lc.In(aRunning) {
				cat.mbox.Put(routed)
			}
		}
	}
}

// routeVMEvent delivers statistics to the target vertex's manager,
// buffering if the manager does not exist yet.
func (r *dagRun) routeVMEvent(e event.VertexManagerEvent) {
	vs, ok := r.vertices[e.TargetVertex]
	if !ok {
		return
	}
	if vs.managerStarted {
		vs.manager.OnVertexManagerEvent(e)
		return
	}
	vs.pendingVM = append(vs.pendingVM, e)
}

// routeInitializerEvent feeds a data-source initializer (§3.5, dynamic
// partition pruning).
func (r *dagRun) routeInitializerEvent(e event.InputInitializerEvent) {
	vs, ok := r.vertices[e.TargetVertex]
	if !ok {
		return
	}
	if mbx, ok := vs.initEvents[e.TargetDataSource]; ok {
		mbx.Put(e)
	}
}

func (r *dagRun) findEdge(from, to string) *edgeState {
	for _, es := range r.outEdges[from] {
		if es.e.To == to {
			return es
		}
	}
	return nil
}

// onInputReadError re-executes the producer whose intermediate data was
// lost (§4.3). Cascades happen naturally: if the re-executed producer also
// cannot read its inputs, its own InputReadError walks one more step up
// the DAG, until a reliable edge (or a root input in the DFS) provides a
// barrier.
func (r *dagRun) onInputReadError(e event.InputReadError) {
	vs, ok := r.vertices[e.SrcVertex]
	if !ok || e.SrcTask < 0 || e.SrcTask >= len(vs.tasks) {
		return
	}
	ts := vs.tasks[e.SrcTask]
	current := -1
	if ts.winner != nil {
		current = ts.winner.id
	} else if ts.restored {
		current = ts.restoredAttempt
	}
	if !ts.lc.In(tSucceeded) || current != e.SrcAttempt {
		// Stale report: the producer is already being handled.
		return
	}
	r.counters.Add("INPUT_READ_ERRORS", 1)
	// Attribute the loss to the producer's node — unless that node is
	// already known dead (the loss is then the node failure's doing, not
	// evidence of a sick-but-alive machine).
	node := ""
	if ts.winner != nil {
		node = ts.winner.node
	} else if ts.restored {
		node = ts.restoredNode
	}
	r.tl().Record(timeline.Event{
		Type: timeline.InputReadError, DAG: r.id,
		Vertex: e.SrcVertex, Task: e.SrcTask, Attempt: e.SrcAttempt, Node: node,
	})
	if node != "" && !r.deadNodes[node] {
		if r.session.health.fetchFailed(node) {
			r.counters.Add("NODES_BLACKLISTED", 1)
		}
	}
	r.reexecuteTask(ts)
}

// reexecuteTask rolls a succeeded task back and schedules a fresh attempt,
// retracting its published data movements from running consumers.
func (r *dagRun) reexecuteTask(ts *taskState) {
	vs := ts.vertex
	oldAttempt := -1
	if ts.winner != nil {
		oldAttempt = ts.winner.id
	} else if ts.restored {
		oldAttempt = ts.restoredAttempt
	}
	ts.restored = false
	ts.winner = nil
	ts.lc.Fire(tEvRerun)
	vs.completed--
	if vs.lc.In(vSucceeded) {
		vs.lc.Fire(vEvRerun)
	}
	r.counters.Add("TASKS_REEXECUTED", 1)

	// Retract stored movements of this task and notify running consumers.
	for _, es := range r.outEdges[vs.v.Name] {
		if es.mgr == nil {
			continue
		}
		for key := range es.movements {
			if key[0] != ts.idx {
				continue
			}
			delete(es.movements, key)
			for destTask, inputIdx := range es.mgr.Route(key[0], key[1]) {
				if destTask >= len(es.to.tasks) {
					continue
				}
				retract := event.InputFailed{
					TargetVertex:     es.to.v.Name,
					TargetTask:       destTask,
					TargetInput:      es.e.From,
					TargetInputIndex: inputIdx,
					SrcTask:          ts.idx,
					SrcAttempt:       oldAttempt,
				}
				for _, cat := range es.to.tasks[destTask].attempts {
					if cat.lc.In(aRunning) {
						cat.mbox.Put(retract)
					}
				}
			}
		}
	}
	r.newAttempt(ts, false)
}

// onNodeFailed proactively re-executes completed tasks whose (ephemeral)
// outputs lived on the lost machine, decreasing the chance that consumers
// hit InputReadErrors later (§4.3). Tasks whose outputs all cross reliable
// edges — or go only to DFS sinks — are spared: reliable storage is the
// barrier to cascading re-execution.
func (r *dagRun) onNodeFailed(node cluster.NodeID, planned bool) {
	if r.isFinished() {
		return
	}
	r.deadNodes[string(node)] = true
	if planned {
		// A drain is operator-initiated: re-execute what must be, but the
		// node did nothing wrong — it never touches health counters.
		r.counters.Add("NODE_DECOMMISSIONS_OBSERVED", 1)
	} else {
		r.counters.Add("NODE_FAILURES_OBSERVED", 1)
	}
	for _, name := range r.topo {
		vs := r.vertices[name]
		ephemeral := false
		for _, es := range r.outEdges[name] {
			if es.e.Property.Resilience == dag.Ephemeral {
				ephemeral = true
				break
			}
		}
		if !ephemeral {
			continue
		}
		for _, ts := range vs.tasks {
			if !ts.lc.In(tSucceeded) {
				continue
			}
			onNode := ts.restored && ts.restoredNode == string(node) ||
				(ts.winner != nil && ts.winner.node == string(node))
			if onNode {
				r.reexecuteTask(ts)
			}
		}
	}
}
