package am

import (
	"fmt"
	"math"

	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/plugin"
)

// VertexManagerContext is the window a VertexManager gets onto its vertex
// (§3.4). All methods are called — and all callbacks delivered — on the
// DAG's dispatcher goroutine, so implementations need no locking.
type VertexManagerContext interface {
	// VertexName returns the managed vertex.
	VertexName() string
	// Payload is the manager descriptor's opaque configuration.
	Payload() []byte
	// Parallelism is the vertex's current task count (-1 if undecided).
	Parallelism() int
	// SetParallelism changes the task count before any task is scheduled.
	// On vertices consuming scatter-gather edges it may only shrink the
	// count: consumers then read contiguous partition ranges (auto-reduce).
	SetParallelism(n int) error
	// SetParallelismWithEdges additionally swaps the edge manager
	// descriptors of the named in-edges (by source vertex) in the same
	// validated transaction — Tez's full setVertexParallelism.
	SetParallelismWithEdges(n int, edgeManagers map[string]plugin.Descriptor) error
	// ScheduleTasks asks the framework to run the given tasks, driving
	// each through its lifecycle table (PENDING → SCHEDULED, lifecycle.go)
	// and creating the first attempt. Already-scheduled ids are expected
	// repeats and are ignored, so managers may be idempotent.
	ScheduleTasks(tasks []int)
	// SourceVertices lists vertices with an edge into this vertex.
	SourceVertices() []string
	// SourceVertexParallelism returns a source's final task count, or -1
	// if it is not yet decided.
	SourceVertexParallelism(name string) int
	// SourceTasksCompleted returns how many of a source's tasks succeeded.
	SourceTasksCompleted(name string) int
	// SourceMovement returns the edge's connection pattern.
	SourceMovement(name string) dag.MovementType
	// SourceScheduling returns the edge's scheduling type.
	SourceScheduling(name string) dag.SchedulingType
	// SourceTaskCompleted reports whether a specific source task is done
	// (used for per-task 1-1 gating).
	SourceTaskCompleted(name string, task int) bool
	// SetOutEdgePayload replaces the producer-side output payload of the
	// out-edge to destVertex — the runtime IPO reconfiguration hook used
	// by e.g. sample-based range partitioning. It must be called before
	// this vertex's tasks are scheduled.
	SetOutEdgePayload(destVertex string, payload []byte) error
	// SessionConfig exposes the session tuning knobs.
	SessionConfig() Config
}

// VertexManager adapts a vertex's execution at runtime (§3.4): it decides
// when tasks are scheduled, can re-configure parallelism and IO payloads,
// and receives application statistics via VertexManagerEvents.
type VertexManager interface {
	Initialize(ctx VertexManagerContext) error
	// OnVertexStarted fires once the vertex is initialized (parallelism
	// known, initializers done) and the DAG is running.
	OnVertexStarted()
	// OnSourceTaskCompleted fires for every source-task success.
	OnSourceTaskCompleted(srcVertex string, task int)
	// OnVertexManagerEvent delivers application statistics events.
	OnVertexManagerEvent(ev event.VertexManagerEvent)
}

// VertexManagerFactory builds managers.
type VertexManagerFactory func() VertexManager

// RegisterVertexManager installs a custom manager under a name usable in
// vertex descriptors.
func RegisterVertexManager(name string, f VertexManagerFactory) {
	plugin.Register(plugin.KindVertexManager, name, f)
}

// Built-in manager names.
const (
	ShuffleVertexManagerName        = "tez.shuffle_vertex_manager"
	ImmediateStartVertexManagerName = "tez.immediate_start_vertex_manager"
)

func init() {
	RegisterVertexManager(ShuffleVertexManagerName, func() VertexManager { return &ShuffleVertexManager{} })
	RegisterVertexManager(ImmediateStartVertexManagerName, func() VertexManager { return &ImmediateStartVertexManager{} })
}

// newVertexManager instantiates the configured manager or picks the
// built-in default (§3.4: "If a VertexManager is not specified in the DAG,
// then Tez will pick one of these built-in implementations").
func newVertexManager(d plugin.Descriptor) (VertexManager, error) {
	if d.IsZero() {
		return &ShuffleVertexManager{}, nil
	}
	f, err := plugin.Lookup(plugin.KindVertexManager, d.Name)
	if err != nil {
		return nil, err
	}
	vf, ok := f.(VertexManagerFactory)
	if !ok {
		return nil, fmt.Errorf("am: vertex manager %q factory has type %T", d.Name, f)
	}
	return vf(), nil
}

// ShuffleVertexManager is the built-in manager of Figure 6. It handles any
// vertex (with or without shuffle inputs):
//
//   - Automatic partition-cardinality estimation: producers report
//     per-partition output sizes in VMStats events; once the slow-start
//     threshold of producers has reported, the manager extrapolates the
//     total shuffle volume and shrinks this vertex's parallelism so that
//     each task reads about DesiredBytesPerReducer (consumers then own
//     contiguous partition ranges).
//   - Slow-start scheduling: consumer tasks are scheduled gradually as the
//     source-complete fraction moves across [SlowStartMin, SlowStartMax],
//     overlapping the expensive shuffle fetch with remaining producers.
//   - Gating: one-to-one destinations are scheduled per-task as their
//     source task finishes; broadcast/custom sequential sources must
//     complete entirely; concurrent edges never gate.
type ShuffleVertexManager struct {
	ctx VertexManagerContext

	started     bool
	decided     bool // parallelism decision taken (or not needed)
	statsBytes  int64
	statsSender map[string]bool // src vertex/task dedup for stats
}

// Initialize stores the context.
func (m *ShuffleVertexManager) Initialize(ctx VertexManagerContext) error {
	m.ctx = ctx
	m.statsSender = map[string]bool{}
	return nil
}

// OnVertexStarted re-evaluates scheduling.
func (m *ShuffleVertexManager) OnVertexStarted() { m.started = true; m.reevaluate() }

// OnSourceTaskCompleted re-evaluates scheduling.
func (m *ShuffleVertexManager) OnSourceTaskCompleted(string, int) { m.reevaluate() }

// OnVertexManagerEvent accumulates producer output statistics.
func (m *ShuffleVertexManager) OnVertexManagerEvent(ev event.VertexManagerEvent) {
	key := fmt.Sprintf("%s/%d", ev.SrcVertex, ev.SrcTask)
	if m.statsSender[key] {
		return
	}
	m.statsSender[key] = true
	var stats struct{ PartitionSizes []int64 }
	if err := plugin.Decode(ev.Payload, &stats); err != nil {
		return
	}
	for _, s := range stats.PartitionSizes {
		m.statsBytes += s
	}
	m.reevaluate()
}

// sgSources returns the scatter-gather source vertices.
func (m *ShuffleVertexManager) sgSources() []string {
	var out []string
	for _, s := range m.ctx.SourceVertices() {
		if m.ctx.SourceMovement(s) == dag.ScatterGather {
			out = append(out, s)
		}
	}
	return out
}

// sgProgress returns total and completed scatter-gather source tasks.
// ok is false while any source parallelism is unknown.
func (m *ShuffleVertexManager) sgProgress() (total, done int, ok bool) {
	for _, s := range m.sgSources() {
		p := m.ctx.SourceVertexParallelism(s)
		if p < 0 {
			return 0, 0, false
		}
		total += p
		done += m.ctx.SourceTasksCompleted(s)
	}
	return total, done, true
}

// gatesOpen reports whether every sequential non-scatter-gather source is
// fully complete (1-1 handled per task elsewhere).
func (m *ShuffleVertexManager) gatesOpen() bool {
	for _, s := range m.ctx.SourceVertices() {
		if m.ctx.SourceScheduling(s) == dag.Concurrent {
			continue
		}
		switch m.ctx.SourceMovement(s) {
		case dag.ScatterGather, dag.OneToOne:
			continue
		default: // Broadcast, Custom: wait for full completion
			p := m.ctx.SourceVertexParallelism(s)
			if p < 0 || m.ctx.SourceTasksCompleted(s) < p {
				return false
			}
		}
	}
	return true
}

func (m *ShuffleVertexManager) reevaluate() {
	if !m.started {
		return
	}
	cfg := m.ctx.SessionConfig()
	sgTotal, sgDone, sgKnown := m.sgProgress()
	if !sgKnown || !m.gatesOpen() {
		return
	}

	frac := 1.0
	if sgTotal > 0 {
		frac = float64(sgDone) / float64(sgTotal)
	}
	minF, maxF := cfg.SlowStartMin, cfg.SlowStartMax
	if cfg.DisableSlowStart {
		minF, maxF = 1.0, 1.0
	}
	if sgTotal > 0 && frac < minF {
		return
	}

	// Parallelism decision point: first time we are allowed to schedule.
	if !m.decided {
		m.decided = true
		if sgTotal > 0 && !cfg.DisableAutoParallelism && sgDone > 0 {
			est := float64(m.statsBytes) / frac // extrapolated total bytes
			want := int(math.Ceil(est / float64(cfg.DesiredBytesPerReducer)))
			if want < cfg.MinReducers {
				want = cfg.MinReducers
			}
			if cur := m.ctx.Parallelism(); want < cur {
				// Shrinking fails on an impossible geometry, or when a
				// downstream consumer already scheduled tasks against the
				// current routing tables; the submitted parallelism stands
				// in either case.
				_ = m.ctx.SetParallelism(want)
			}
		}
	}

	p := m.ctx.Parallelism()
	if p <= 0 {
		return
	}

	// How many tasks may run now (slow start)?
	allowed := p
	if sgTotal > 0 && frac < 1.0 && maxF > minF && frac < maxF {
		allowed = int(math.Ceil(float64(p) * (frac - minF) / (maxF - minF)))
		if allowed < 1 {
			allowed = 1
		}
		if allowed > p {
			allowed = p
		}
	}

	// Per-task 1-1 gating: task i needs task i of every sequential 1-1
	// source. Other tasks are gated only by the vertex-level conditions.
	var oneToOne []string
	for _, s := range m.ctx.SourceVertices() {
		if m.ctx.SourceMovement(s) == dag.OneToOne && m.ctx.SourceScheduling(s) != dag.Concurrent {
			oneToOne = append(oneToOne, s)
		}
	}
	var ready []int
	for t := 0; t < p && len(ready) < allowed; t++ {
		ok := true
		for _, s := range oneToOne {
			if !m.ctx.SourceTaskCompleted(s, t) {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, t)
		}
	}
	if len(ready) > 0 {
		m.ctx.ScheduleTasks(ready)
	}
}

// ImmediateStartVertexManager schedules every task as soon as the vertex
// starts, regardless of source progress — the out-of-order scheduling mode
// whose deadlocks the framework resolves by preemption (§3.4).
type ImmediateStartVertexManager struct {
	ctx VertexManagerContext
}

// Initialize stores the context.
func (m *ImmediateStartVertexManager) Initialize(ctx VertexManagerContext) error {
	m.ctx = ctx
	return nil
}

// OnVertexStarted schedules everything.
func (m *ImmediateStartVertexManager) OnVertexStarted() {
	p := m.ctx.Parallelism()
	tasks := make([]int, p)
	for i := range tasks {
		tasks[i] = i
	}
	m.ctx.ScheduleTasks(tasks)
}

// OnSourceTaskCompleted is a no-op.
func (m *ImmediateStartVertexManager) OnSourceTaskCompleted(string, int) {}

// OnVertexManagerEvent is a no-op.
func (m *ImmediateStartVertexManager) OnVertexManagerEvent(event.VertexManagerEvent) {}
