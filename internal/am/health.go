package am

import (
	"sort"
	"sync"
	"time"

	"tez/internal/cluster"
	"tez/internal/metrics"
	"tez/internal/timeline"
)

// nodeHealth is the session's per-node failure tracker and blacklist — the
// AM-side node health policy of YARN AMs (§4.3). Genuine attempt failures
// (onAttemptDone — "genuine" is decided by the attempt lifecycle's A_DONE
// selector, classifyAttemptDone in lifecycle.go: container kills,
// input-error casualties and node-loss races are KILLED, never charged)
// and fetch-failure retractions (onInputReadError) are
// attributed to the node they ran on / the producer's node; once either
// counter reaches NodeMaxTaskFailures the node is blacklisted: the
// scheduler stops reusing idle containers there and excludes it from RM
// requests. Blacklisting decays after NodeBlacklistDecay (the node gets a
// clean slate), and at most MaxBlacklistFraction of the cluster may be
// blacklisted at once — at the cap further blacklisting is refused, so a
// cluster-wide problem degrades to normal retry behaviour instead of
// excluding every node.
type nodeHealth struct {
	maxFailures int
	decay       time.Duration
	capCount    int
	now         timeline.Clock    // injectable (Config.Clock)
	tl          *timeline.Journal // nil-safe event sink

	mu          sync.Mutex
	nodes       map[string]*nodeRecord
	blacklisted int
}

type nodeRecord struct {
	taskFailures  int
	fetchFailures int
	blacklisted   bool
	blacklistedAt time.Time
	enters, exits int
}

// newNodeHealth sizes the blacklist cap from the cluster's node count:
// max(1, floor(fraction × total)).
func newNodeHealth(cfg Config, totalNodes int) *nodeHealth {
	capCount := int(cfg.MaxBlacklistFraction * float64(totalNodes))
	if capCount < 1 {
		capCount = 1
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &nodeHealth{
		maxFailures: cfg.NodeMaxTaskFailures,
		decay:       cfg.NodeBlacklistDecay,
		capCount:    capCount,
		now:         now,
		tl:          cfg.Timeline,
		nodes:       make(map[string]*nodeRecord),
	}
}

// taskFailed attributes one genuine attempt failure to node and reports
// whether this newly blacklisted it. Nil-safe (blacklisting disabled).
func (h *nodeHealth) taskFailed(node string) bool {
	if h == nil || node == "" {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.decayLocked()
	r := h.recLocked(node)
	r.taskFailures++
	return h.maybeBlacklistLocked(node, r)
}

// fetchFailed attributes one fetch-failure retraction (a consumer reported
// the node's shuffle output unreadable) and reports new blacklisting.
func (h *nodeHealth) fetchFailed(node string) bool {
	if h == nil || node == "" {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.decayLocked()
	r := h.recLocked(node)
	r.fetchFailures++
	return h.maybeBlacklistLocked(node, r)
}

// isBlacklisted reports whether node is currently excluded.
func (h *nodeHealth) isBlacklisted(node string) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.decayLocked()
	r := h.nodes[node]
	return r != nil && r.blacklisted
}

// excludedIDs returns the current blacklist for RM requests, sorted.
func (h *nodeHealth) excludedIDs() []cluster.NodeID {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.decayLocked()
	var out []cluster.NodeID
	for id, r := range h.nodes {
		if r.blacklisted {
			out = append(out, cluster.NodeID(id))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// report snapshots every node with recorded history, sorted by node id.
func (h *nodeHealth) report() metrics.NodeHealthReport {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.decayLocked()
	out := make(metrics.NodeHealthReport, 0, len(h.nodes))
	for id, r := range h.nodes {
		out = append(out, metrics.NodeHealth{
			Node:            id,
			TaskFailures:    r.taskFailures,
			FetchFailures:   r.fetchFailures,
			Blacklisted:     r.blacklisted,
			BlacklistEnters: r.enters,
			BlacklistExits:  r.exits,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

func (h *nodeHealth) recLocked(node string) *nodeRecord {
	r := h.nodes[node]
	if r == nil {
		r = &nodeRecord{}
		h.nodes[node] = r
	}
	return r
}

// maybeBlacklistLocked applies the threshold and the cluster-fraction cap.
func (h *nodeHealth) maybeBlacklistLocked(node string, r *nodeRecord) bool {
	if r.blacklisted {
		return false
	}
	if r.taskFailures < h.maxFailures && r.fetchFailures < h.maxFailures {
		return false
	}
	if h.blacklisted >= h.capCount {
		return false // cap hit: relax rather than exclude more of the cluster
	}
	r.blacklisted = true
	r.blacklistedAt = h.now()
	r.enters++
	h.blacklisted++
	h.tl.Record(timeline.Event{
		Type: timeline.NodeBlacklisted, Node: node,
		Val: int64(r.taskFailures + r.fetchFailures),
	})
	return true
}

// decayLocked un-blacklists nodes whose sentence has elapsed, wiping their
// counters so they re-earn trust from zero.
func (h *nodeHealth) decayLocked() {
	if h.decay <= 0 {
		return
	}
	now := h.now()
	for node, r := range h.nodes {
		if r.blacklisted && now.Sub(r.blacklistedAt) >= h.decay {
			r.blacklisted = false
			r.exits++
			r.taskFailures = 0
			r.fetchFailures = 0
			h.blacklisted--
			h.tl.Record(timeline.Event{Type: timeline.NodeUnblacklisted, Node: node})
		}
	}
}
