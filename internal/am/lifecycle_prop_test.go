package am

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tez/internal/dag"
	"tez/internal/fsm"
	"tez/internal/metrics"
	"tez/internal/timeline"
)

// The lifecycle property test drives the four real AM transition tables
// with seeded, randomized legal-and-illegal event sequences and asserts
// the invariants the tables exist to enforce:
//
//   - an undeclared (state, event) pair never mutates state, never
//     panics, returns *fsm.InvalidTransitionError, and journals exactly
//     one TRANSITION_INVALID event;
//   - terminal states are absorbing (every event is rejected there);
//   - every declared state of every machine is reached by some seed.
//
// Run under -race via `make race` / CI.

const (
	propSeeds = 50
	propSteps = 80
)

// propRun builds the minimal dagRun harness the machine observers need:
// a journal, counters, a trace and the run-level machine.
func propRun() *dagRun {
	r := &dagRun{
		id:       "prop",
		counters: metrics.NewCounters(),
		trace:    metrics.NewTrace(),
		cfg:      Config{Timeline: timeline.New()},
	}
	r.lc = newDAGMachine(r)
	return r
}

// countInvalidJournal counts TRANSITION_INVALID events in the harness
// journal.
func countInvalidJournal(r *dagRun) int {
	n := 0
	for _, e := range r.cfg.Timeline.Events() {
		if e.Type == timeline.TransitionInvalid {
			n++
		}
	}
	return n
}

// driveMachine fires steps random events (legal and illegal mixed) at m,
// checking the no-mutation/error/journal invariants at every step and
// recording which states were visited.
func driveMachine[Op any, S comparable, E comparable](
	t *testing.T, rng *rand.Rand, r *dagRun,
	spec *fsm.Spec[Op, S, E], m *fsm.Machine[Op, S, E],
	payload func(E) any, visited map[S]bool, steps int,
) {
	t.Helper()
	events := spec.Events()
	visited[m.State()] = true
	for i := 0; i < steps; i++ {
		ev := events[rng.Intn(len(events))]
		before := m.State()
		wasTerminal := m.Terminal()
		legal := m.Can(ev)
		if wasTerminal && legal {
			t.Fatalf("%s: terminal state %v has a legal event %v", spec.Name, before, ev)
		}
		invBefore := r.counters.Get("TRANSITIONS_INVALID")
		err := m.FireWith(ev, payload(ev))
		switch {
		case legal:
			if err != nil {
				t.Fatalf("%s: legal %v from %v returned %v", spec.Name, ev, before, err)
			}
			visited[m.State()] = true
		default:
			var ite *fsm.InvalidTransitionError
			if !errors.As(err, &ite) {
				t.Fatalf("%s: illegal %v from %v returned %T (%v)", spec.Name, ev, before, err, err)
			}
			if m.State() != before {
				t.Fatalf("%s: illegal %v mutated state %v -> %v", spec.Name, ev, before, m.State())
			}
			if got := r.counters.Get("TRANSITIONS_INVALID"); got != invBefore+1 {
				t.Fatalf("%s: illegal %v from %v charged %d invalid transitions, want 1",
					spec.Name, ev, before, got-invBefore)
			}
		}
	}
}

func TestLifecyclePropertySeeds(t *testing.T) {
	visitedDAG := map[DAGStatus]bool{}
	visitedVertex := map[vState]bool{}
	visitedTask := map[tState]bool{}
	visitedAttempt := map[aState]bool{}

	for seed := int64(0); seed < propSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))

		r := propRun()
		driveMachine(t, rng, r, dagLifecycle, r.lc,
			func(dEvent) any { return nil }, visitedDAG, propSteps)

		r = propRun()
		vs := newVertexState(r, &dag.Vertex{Name: "pv", Parallelism: 1}, 0)
		driveMachine(t, rng, r, vertexLifecycle, vs.lc,
			func(vEvent) any { return nil }, visitedVertex, propSteps)

		r = propRun()
		vs = newVertexState(r, &dag.Vertex{Name: "pv", Parallelism: 1}, 0)
		ts := newTaskState(r, vs, 0)
		driveMachine(t, rng, r, taskLifecycle, ts.lc,
			func(tEvent) any { return nil }, visitedTask, propSteps)

		r = propRun()
		vs = newVertexState(r, &dag.Vertex{Name: "pv", Parallelism: 1}, 0)
		ts = newTaskState(r, vs, 0)
		at := newAttemptState(r, ts, rng.Intn(2) == 0)
		driveMachine(t, rng, r, attemptLifecycle, at.lc,
			func(e aEvent) any {
				// A_DONE's selector classifies a randomized outcome; the
				// other events carry no payload.
				if e != aEvDone {
					return nil
				}
				return &attemptDone{
					failed:          rng.Intn(2) == 0,
					containerKilled: rng.Intn(4) == 0,
					inputError:      rng.Intn(4) == 0,
					nodeDead:        rng.Intn(4) == 0,
					lostRace:        rng.Intn(4) == 0,
				}
			}, visitedAttempt, propSteps)

		// Every journaled TRANSITION_INVALID matches the counter (the last
		// harness only — each harness is checked step-by-step above).
		if got, want := countInvalidJournal(r), int(r.counters.Get("TRANSITIONS_INVALID")); got != want {
			t.Fatalf("seed %d: journal has %d TRANSITION_INVALID events, counter says %d", seed, got, want)
		}
	}

	// Reachability: the spec's own BFS plus empirical coverage — across
	// the seeds, every declared state of every machine was visited.
	checkCoverage := func(name string, declared, visited int) {
		t.Helper()
		if visited != declared {
			t.Fatalf("%s: seeds visited %d of %d declared states", name, visited, declared)
		}
	}
	if err := dagLifecycle.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := vertexLifecycle.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := taskLifecycle.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := attemptLifecycle.Validate(); err != nil {
		t.Fatal(err)
	}
	checkCoverage("dag", len(dagLifecycle.States()), len(visitedDAG))
	checkCoverage("vertex", len(vertexLifecycle.States()), len(visitedVertex))
	checkCoverage("task", len(taskLifecycle.States()), len(visitedTask))
	checkCoverage("attempt", len(attemptLifecycle.States()), len(visitedAttempt))
}

// TestLifecycleTableDumps pins the dump entry point cmd/tez-fsm uses and
// the String() names the diagrams are labelled with.
func TestLifecycleTableDumps(t *testing.T) {
	for _, format := range []string{"mermaid", "dot"} {
		tables, err := LifecycleTables(format)
		if err != nil {
			t.Fatal(err)
		}
		if len(tables) != 4 {
			t.Fatalf("%s: %d tables, want 4", format, len(tables))
		}
		order := []string{"dag", "vertex", "task", "attempt"}
		for i, tb := range tables {
			if tb.Machine != order[i] {
				t.Fatalf("%s: table %d is %q, want %q", format, i, tb.Machine, order[i])
			}
			if tb.Text == "" {
				t.Fatalf("%s: empty %s table", format, tb.Machine)
			}
		}
	}
	if _, err := LifecycleTables("svg"); err == nil {
		t.Fatal("unknown format accepted")
	}
	// The String() names used in diagrams, errors and journal Info.
	for _, pair := range []struct{ got, want string }{
		{vRunning.String(), "RUNNING"},
		{tScheduled.String(), "SCHEDULED"},
		{aKilled.String(), "KILLED"},
		{vState(99).String(), "vState(99)"},
		{fmt.Sprint(aEvDone), "A_DONE"},
	} {
		if pair.got != pair.want {
			t.Fatalf("String() = %q, want %q", pair.got, pair.want)
		}
	}
}
