package am

import (
	"fmt"
	"sync"
	"time"

	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/metrics"
	"tez/internal/platform"
)

// Session is a Tez AM in session mode (§4.2): one YARN application that
// runs a sequence of DAGs, re-using containers within and across DAGs
// (Figure 7), optionally pre-warming capacity before the first DAG.
type Session struct {
	cfg    Config
	plat   *platform.Platform
	app    *cluster.Application
	sched  *scheduler
	health *nodeHealth // nil when blacklisting is disabled

	mu     sync.Mutex
	seq    int
	active map[string]*dagRun
	closed bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewSession registers the application with the RM and starts the event
// drain and housekeeping loops.
func NewSession(plat *platform.Platform, cfg Config) *Session {
	cfg = cfg.withDefaults()
	s := &Session{
		cfg:    cfg,
		plat:   plat,
		active: make(map[string]*dagRun),
		stopCh: make(chan struct{}),
	}
	s.app = plat.RM.SubmitTenant(cfg.Name, cfg.Tenant)
	if !cfg.DisableBlacklisting {
		s.health = newNodeHealth(cfg, len(plat.RM.Nodes()))
	}
	s.sched = newScheduler(cfg, s.app, s.health)
	s.wg.Add(2)
	go s.drainClusterEvents()
	go s.housekeeping()
	if cfg.PrewarmContainers > 0 {
		s.sched.prewarm(cfg.PrewarmContainers)
	}
	return s
}

// drainClusterEvents forwards RM notifications to the scheduler and the
// active DAG runs.
func (s *Session) drainClusterEvents() {
	defer s.wg.Done()
	// Batch drain: the RM delivers a scheduling pass's grants as one
	// PutAll, so pick them all up with one lock round-trip too.
	var batch []cluster.Event
	for {
		var ok bool
		batch, ok = s.app.Events().GetAll(batch)
		if !ok {
			return
		}
		for i, ev := range batch {
			batch[i] = nil
			switch e := ev.(type) {
			case cluster.AllocatedEvent:
				s.sched.onAllocated(e.Container, e.Request)
			case cluster.ContainerStoppedEvent:
				s.sched.onContainerStopped(e.ContainerID)
			case cluster.NodeFailedEvent:
				s.mu.Lock()
				runs := make([]*dagRun, 0, len(s.active))
				for _, r := range s.active {
					runs = append(runs, r)
				}
				s.mu.Unlock()
				for _, r := range runs {
					r.mb.Put(msgNodeFailed{node: e.Node, planned: e.Decommissioned})
				}
			}
		}
	}
}

// housekeeping releases idle containers periodically.
func (s *Session) housekeeping() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ContainerIdleRelease / 2)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.sched.reapIdle()
		}
	}
}

// DAGRun is the client handle onto a submitted DAG.
type DAGRun struct {
	run *dagRun
}

// ID returns the unique run id (also the shuffle/checkpoint namespace).
func (h *DAGRun) ID() string { return h.run.id }

// Wait blocks until the DAG terminates.
func (h *DAGRun) Wait() DAGResult {
	<-h.run.done
	return h.run.result
}

// Kill aborts the DAG.
func (h *DAGRun) Kill(reason string) { h.run.mb.Put(msgKill{reason: reason}) }

// SubmitOption configures one Submit.
type SubmitOption func(*dagRun)

// WithDeadline bounds the run's wall-clock duration: a DAG still running
// after d is killed with a DAGKilled result whose Err satisfies
// errors.Is(err, ErrDeadlineExceeded). Zero or negative means no bound.
func WithDeadline(d time.Duration) SubmitOption {
	return func(r *dagRun) { r.deadline = d }
}

// Submit starts a DAG in this session and returns immediately.
func (s *Session) Submit(d *dag.DAG, opts ...SubmitOption) (*DAGRun, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("am: session closed")
	}
	s.seq++
	id := fmt.Sprintf("%s.%s.%d", s.cfg.Name, d.Name, s.seq)
	s.mu.Unlock()

	run, err := newDAGRun(s, d, id)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(run)
	}
	s.cfg.Timeline.TagStream(id, s.cfg.Tenant)
	s.mu.Lock()
	if s.closed {
		// Close ran between the admission check and here; the run has no
		// goroutines yet, so refusing is a clean unwind.
		s.mu.Unlock()
		return nil, fmt.Errorf("am: session closed")
	}
	s.active[id] = run
	s.mu.Unlock()
	run.start()
	return &DAGRun{run: run}, nil
}

// Run submits a DAG and waits for its result.
func (s *Session) Run(d *dag.DAG, opts ...SubmitOption) (DAGResult, error) {
	h, err := s.Submit(d, opts...)
	if err != nil {
		return DAGResult{}, err
	}
	res := h.Wait()
	return res, res.Err
}

func (s *Session) runFinished(r *dagRun) {
	s.mu.Lock()
	delete(s.active, r.id)
	s.mu.Unlock()
}

// SchedulerStats exposes allocation/reuse counters (tests, benchmarks).
func (s *Session) SchedulerStats() (allocated, reused int) {
	st := s.sched.snapshot()
	return st.Allocated, st.Reused
}

// NodeHealth returns the session's per-node failure and blacklist report
// (empty when blacklisting is disabled).
func (s *Session) NodeHealth() metrics.NodeHealthReport {
	return s.health.report()
}

// Close kills active DAGs, releases containers and unregisters the app.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	runs := make([]*dagRun, 0, len(s.active))
	for _, r := range s.active {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	for _, r := range runs {
		r.mb.Put(msgKill{reason: "session closed"})
		<-r.done
	}
	close(s.stopCh)
	s.sched.close()
	s.app.Unregister() // closes the event mailbox, ending the drain loop
	s.wg.Wait()
}

// RunDAG is the non-session convenience: a dedicated AM for one DAG, torn
// down afterwards (the Tez non-session mode).
func RunDAG(plat *platform.Platform, cfg Config, d *dag.DAG) (DAGResult, error) {
	s := NewSession(plat, cfg)
	defer s.Close()
	return s.Run(d)
}
