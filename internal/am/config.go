// Package am implements the Tez orchestration framework: the YARN
// Application Master of §4 that executes DAGs on the cluster. It contains
// the DAG/vertex/task/attempt state machines (declarative transition
// tables on internal/fsm; see lifecycle.go), the task scheduler with
// container reuse and sessions (§4.2), VertexManagers and
// DataSourceInitializers for runtime DAG evolution (§3.4–3.5), locality-
// aware scheduling with delay scheduling, speculative execution, fault
// tolerance through task re-execution with InputFailed retraction and
// cascading recovery bounded by reliable edges, out-of-order-scheduling
// deadlock preemption, the per-container shared object registry, and AM
// checkpoint/recovery (§4.3).
package am

import (
	"time"

	"tez/internal/chaos"
	"tez/internal/cluster"
	"tez/internal/timeline"
)

// Config tunes a session (and the DAGs it runs).
type Config struct {
	// Name identifies the session's YARN application.
	Name string
	// Tenant, when set, registers the application under that tenant's
	// scheduling group: its apps share the tenant's weighted fair share
	// and memory quota (cluster.SetTenant) instead of competing
	// individually. The session's timeline streams are tagged with the
	// tenant so per-tenant traces can be filtered from a shared journal.
	Tenant string
	// ContainerResource is the per-task container size.
	ContainerResource cluster.Resource
	// MaxTaskAttempts bounds re-execution of a failing task (default 4).
	MaxTaskAttempts int
	// DisableContainerReuse releases each container after a single task
	// (the MapReduce behaviour; ablation knob for §4.2).
	DisableContainerReuse bool
	// ContainerIdleRelease is how long an idle reusable container is held
	// before being returned to YARN (default 25ms at simulation scale).
	ContainerIdleRelease time.Duration
	// PrewarmContainers asks the session to launch this many containers
	// before the first DAG arrives (§4.2, Sessions).
	PrewarmContainers int

	// Speculation enables straggler mitigation (§4.2).
	Speculation bool
	// SpeculationInterval is the straggler check period (default 5ms).
	SpeculationInterval time.Duration
	// SpeculationFactor: an attempt running longer than factor × the mean
	// completed-task runtime of its vertex is a straggler (default 3).
	SpeculationFactor float64
	// SpeculationMinCompleted completed tasks are required in a vertex
	// before estimating stragglers (default 3).
	SpeculationMinCompleted int

	// SlowStartMin/Max control shuffle consumer scheduling: consumers are
	// scheduled proportionally as the source-complete fraction moves from
	// Min to Max (defaults 0.25 / 0.75; 0/0 schedules immediately).
	SlowStartMin float64
	SlowStartMax float64
	// DisableSlowStart makes shuffle consumers wait for all sources
	// (ablation knob).
	DisableSlowStart bool

	// DisableAutoParallelism turns off the ShuffleVertexManager's runtime
	// partition-cardinality estimation (Figure 6; ablation knob).
	DisableAutoParallelism bool
	// DesiredBytesPerReducer is the auto-parallelism heuristic target
	// (default 32 KiB at simulation scale).
	DesiredBytesPerReducer int64
	// MinReducers floors the auto-parallelism estimate (default 1).
	MinReducers int

	// ShuffleFetchParallelism sets the per-task shuffle fetcher-pool size
	// (parallel fetcher goroutines per consumer, the fetcher threads of
	// real Tez). Zero defers to shuffle.Config.FetchParallelism and then
	// the library default (4); 1 forces serial fetching.
	ShuffleFetchParallelism int
	// DisableParallelFetch forces serial shuffle fetching regardless of
	// ShuffleFetchParallelism (ablation knob for §3.4 overlap).
	DisableParallelFetch bool
	// ShuffleSortMB caps the map-side sort buffer of ordered shuffle
	// outputs (MiB): past the cap a sorted run is spilled and merged back
	// at close, the ExternalSorter discipline. Zero defers to
	// shuffle.Config.SortMB (default unbounded); negative forces
	// unbounded.
	ShuffleSortMB int
	// ShuffleMergeFactor bounds how many sorted runs a reduce-side input
	// merges at once; beyond it, runs that have already arrived are
	// pre-merged while stragglers are still fetching. Zero defers to
	// shuffle.Config.MergeFactor and then the library default (64);
	// negative disables intermediate merges.
	ShuffleMergeFactor int
	// ShuffleCodec names the wire block codec for shuffle partitions
	// ("none", "flate"). Empty defers to shuffle.Config.Codec and then
	// "none".
	ShuffleCodec string
	// ShufflePipelined turns on pipelined spill publication for the
	// session's ordered shuffle outputs: every sorted spill is registered
	// and announced to consumers as it is produced, so fetch/merge
	// overlaps map-side sorting instead of waiting for the producer
	// barrier. False defers to shuffle.Config.Pipelined; per-edge
	// library.OrderedPartitionedConfig.Pipelined takes precedence over
	// both.
	ShufflePipelined bool
	// RelopBatchSize tunes the relational stage processor's vectorized
	// execution per session: 0 uses the engine default (1024 rows per
	// batch), > 0 sets the flush threshold, negative forces row-at-a-time
	// execution (the runtime escape hatch; relop.Config.DisableVectorized
	// is the compile-time one).
	RelopBatchSize int

	// DeadlockCheckInterval / DeadlockWait configure detection of
	// scheduling deadlocks caused by out-of-order task scheduling: when
	// requests have been starved for DeadlockWait while a descendant of
	// the starved vertex occupies a container, the descendant attempt is
	// preempted (§3.4). Defaults 5ms / 50ms.
	DeadlockCheckInterval time.Duration
	DeadlockWait          time.Duration

	// CheckpointPath, when set, makes DAG runs checkpoint their state to
	// the DFS under this directory after every vertex completion so a new
	// AM can recover (§4.3).
	CheckpointPath string

	// NodeMaxTaskFailures blacklists a node once that many genuine attempt
	// failures — or that many fetch-failure retractions — have been
	// attributed to it (default 3). Casualties (container kills, input-
	// error kills, failures racing a node loss) never count.
	NodeMaxTaskFailures int
	// NodeBlacklistDecay un-blacklists a node after this long, wiping its
	// failure counters (default 10s — effectively "for the rest of the
	// run" at simulation timescales; lower it to model transient
	// sickness).
	NodeBlacklistDecay time.Duration
	// MaxBlacklistFraction caps how much of the cluster may be blacklisted
	// at once (default 0.33, minimum one node). At the cap, further
	// blacklisting is refused: placement relaxes back to the whole
	// cluster instead of excluding everything during a cluster-wide
	// problem.
	MaxBlacklistFraction float64
	// DisableBlacklisting turns node health tracking off entirely
	// (ablation knob; restores the pre-blacklist scheduler behaviour).
	DisableBlacklisting bool

	// Chaos, when set, lets the chaos plane crash the AM between vertex
	// completions (§4.3 AM recovery drill). Data-plane injection is wired
	// separately via platform.Config.Chaos — usually the same plane.
	Chaos *chaos.Plane

	// Timeline, when set, receives structured lifecycle events from the
	// AM: DAG/vertex/task-attempt transitions, scheduler allocation spans,
	// container reuse, blacklist actions. Nil records nothing (the
	// production default). Data-plane events (cluster allocation, shuffle
	// fetches) are wired separately via platform.Config.Timeline — usually
	// the same journal.
	Timeline *timeline.Journal
	// Clock supplies time to the AM's node-health decay and scheduler
	// wait accounting. Nil means time.Now; inject a fake for
	// deterministic tests (pair it with timeline.WithClock so journal
	// stamps agree).
	Clock timeline.Clock
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "tez-session"
	}
	if c.ContainerResource.IsZero() {
		c.ContainerResource = cluster.Resource{MemoryMB: 1024, VCores: 1}
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 4
	}
	if c.ContainerIdleRelease <= 0 {
		c.ContainerIdleRelease = 25 * time.Millisecond
	}
	if c.SpeculationInterval <= 0 {
		c.SpeculationInterval = 5 * time.Millisecond
	}
	if c.SpeculationFactor <= 1 {
		c.SpeculationFactor = 3
	}
	if c.SpeculationMinCompleted <= 0 {
		c.SpeculationMinCompleted = 3
	}
	if c.SlowStartMin <= 0 && c.SlowStartMax <= 0 {
		c.SlowStartMin, c.SlowStartMax = 0.25, 0.75
	}
	if c.SlowStartMax < c.SlowStartMin {
		c.SlowStartMax = c.SlowStartMin
	}
	if c.DesiredBytesPerReducer <= 0 {
		c.DesiredBytesPerReducer = 32 * 1024
	}
	if c.MinReducers <= 0 {
		c.MinReducers = 1
	}
	if c.DeadlockCheckInterval <= 0 {
		c.DeadlockCheckInterval = 5 * time.Millisecond
	}
	if c.DeadlockWait <= 0 {
		c.DeadlockWait = 50 * time.Millisecond
	}
	if c.NodeMaxTaskFailures <= 0 {
		c.NodeMaxTaskFailures = 3
	}
	if c.NodeBlacklistDecay <= 0 {
		c.NodeBlacklistDecay = 10 * time.Second
	}
	if c.MaxBlacklistFraction <= 0 || c.MaxBlacklistFraction > 1 {
		c.MaxBlacklistFraction = 0.33
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}
