package am

import (
	"encoding/binary"
	"fmt"
	"testing"

	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/library"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

// §5.5 (the Flink integration) argues that Tez "specifies no data format
// and in fact is not part of the data plane": an engine may move its own
// binary format through custom inputs/outputs. This test builds a little
// engine with a columnar-ish block format (two uint32 columns, stored
// column-major) and runs it through a one-to-one edge — no key-value
// anything involved. The framework only routes the DataMovement metadata.

// colBlock is the custom wire format.
type colBlock struct {
	a, b []uint32
}

func encodeBlock(blk colBlock) []byte {
	buf := make([]byte, 4+8*len(blk.a))
	binary.LittleEndian.PutUint32(buf, uint32(len(blk.a)))
	for i, v := range blk.a {
		binary.LittleEndian.PutUint32(buf[4+4*i:], v)
	}
	off := 4 + 4*len(blk.a)
	for i, v := range blk.b {
		binary.LittleEndian.PutUint32(buf[off+4*i:], v)
	}
	return buf
}

func decodeBlock(buf []byte) (colBlock, error) {
	if len(buf) < 4 {
		return colBlock{}, fmt.Errorf("short block")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != 4+8*n {
		return colBlock{}, fmt.Errorf("block size mismatch")
	}
	blk := colBlock{a: make([]uint32, n), b: make([]uint32, n)}
	for i := 0; i < n; i++ {
		blk.a[i] = binary.LittleEndian.Uint32(buf[4+4*i:])
		blk.b[i] = binary.LittleEndian.Uint32(buf[4+4*n+4*i:])
	}
	return blk, nil
}

// colOutput ships one block per task over the shuffle service.
type colOutput struct {
	ctx *runtime.Context
	blk colBlock
}

func (o *colOutput) Initialize(ctx *runtime.Context) error { o.ctx = ctx; return nil }
func (o *colOutput) Writer() (any, error)                  { return &o.blk, nil } // the custom writer IS the block
func (o *colOutput) Close() ([]event.Event, error) {
	id := shuffle.OutputID{
		DAG: o.ctx.Meta.DAG, Vertex: o.ctx.Meta.Vertex, Name: o.ctx.Name,
		Task: o.ctx.Meta.Task, Attempt: o.ctx.Meta.Attempt,
	}
	if err := o.ctx.Services.Shuffle.Register(o.ctx.Services.Node, id,
		[][]byte{encodeBlock(o.blk)}, o.ctx.Services.Token); err != nil {
		return nil, err
	}
	return []event.Event{event.DataMovement{
		SrcVertex: o.ctx.Meta.Vertex, SrcTask: o.ctx.Meta.Task,
		SrcAttempt: o.ctx.Meta.Attempt, TargetVertex: o.ctx.Name,
		Payload: plugin.MustEncode(id),
	}}, nil
}

// colInput fetches the single upstream block.
type colInput struct {
	ctx *runtime.Context
	ids chan shuffle.OutputID
}

func (in *colInput) Initialize(ctx *runtime.Context) error {
	in.ctx = ctx
	in.ids = make(chan shuffle.OutputID, 4)
	return nil
}
func (in *colInput) HandleEvent(ev event.Event) error {
	if dm, ok := ev.(event.DataMovement); ok {
		var id shuffle.OutputID
		if err := plugin.Decode(dm.Payload, &id); err != nil {
			return err
		}
		in.ids <- id
	}
	return nil
}
func (in *colInput) Start() error { return nil }
func (in *colInput) Reader() (any, error) {
	select {
	case id := <-in.ids:
		data, err := in.ctx.Services.Shuffle.Fetch(id, 0, in.ctx.Services.Node, in.ctx.Services.Token)
		if err != nil {
			return nil, err
		}
		blk, err := decodeBlock(data)
		if err != nil {
			return nil, err
		}
		return blk, nil
	case <-in.ctx.Stop:
		return nil, fmt.Errorf("killed")
	}
}
func (in *colInput) Close() error { return nil }

// colProduce fills a block; colSum reduces it column-wise and stores the
// result through the standard DFS sink (formats may mix freely per edge).
type colProduce struct{ ctx *runtime.Context }

func (p *colProduce) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *colProduce) Run(_ map[string]runtime.Input, out map[string]runtime.Output) error {
	w, err := out["sum"].Writer()
	if err != nil {
		return err
	}
	blk := w.(*colBlock)
	for i := uint32(0); i < 100; i++ {
		blk.a = append(blk.a, i)
		blk.b = append(blk.b, 2*i)
	}
	return nil
}
func (p *colProduce) Close() error { return nil }

type colSum struct{ ctx *runtime.Context }

func (p *colSum) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *colSum) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	rd, err := in["produce"].Reader()
	if err != nil {
		return err
	}
	blk := rd.(colBlock)
	var sa, sb uint64
	for i := range blk.a {
		sa += uint64(blk.a[i])
		sb += uint64(blk.b[i])
	}
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	return w.(runtime.KVWriter).Write([]byte("sums"), []byte(fmt.Sprintf("%d/%d", sa, sb)))
}
func (p *colSum) Close() error { return nil }

func TestCustomBinaryFormatThroughCustomIO(t *testing.T) {
	runtime.RegisterOutput("amtest.col_out", func() runtime.Output { return &colOutput{} })
	runtime.RegisterInput("amtest.col_in", func() runtime.Input { return &colInput{} })
	runtime.RegisterProcessor("amtest.col_produce", func() runtime.Processor { return &colProduce{} })
	runtime.RegisterProcessor("amtest.col_sum", func() runtime.Processor { return &colSum{} })

	plat := newTestPlatform(3)
	defer plat.Stop()
	plat.EnableSecurity() // custom IO authenticates like the built-ins

	d := dag.New("columnar")
	prod := d.AddVertex("produce", plugin.Desc("amtest.col_produce", nil), 2)
	sum := d.AddVertex("sum", plugin.Desc("amtest.col_sum", nil), 2)
	sum.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/col"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/col"}),
	}}
	d.Connect(prod, sum, dag.EdgeProperty{
		Movement: dag.OneToOne,
		Output:   plugin.Desc("amtest.col_out", nil),
		Input:    plugin.Desc("amtest.col_in", nil),
	})
	res, err := RunDAG(plat, Config{Name: "col"}, d)
	if err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	// Both sum tasks saw the full 100-row block: sum(0..99)=4950, doubled
	// column = 9900.
	for _, f := range plat.FS.List("/out/col/part-") {
		data, err := plat.FS.ReadFile(f, "")
		if err != nil {
			t.Fatal(err)
		}
		r := library.NewPaddedReader(data)
		if !r.Next() || string(r.Value()) != "4950/9900" {
			t.Fatalf("file %s value %q", f, r.Value())
		}
	}
	if got := len(plat.FS.List("/out/col/part-")); got != 2 {
		t.Fatalf("parts = %d", got)
	}
}
