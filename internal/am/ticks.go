package am

import (
	"time"
)

// onTick runs the periodic checks: straggler speculation (§4.2) and
// out-of-order scheduling deadlock preemption (§3.4).
func (r *dagRun) onTick() {
	if r.finished {
		return
	}
	if r.cfg.Speculation {
		r.checkSpeculation()
	}
	r.checkDeadlock()
}

// checkSpeculation launches a speculative twin for attempts running far
// longer than the vertex's mean completed-task runtime: the clone races
// the original to completion (§4.2, Speculation).
func (r *dagRun) checkSpeculation() {
	now := time.Now()
	for _, vs := range r.vertices {
		if vs.state != vRunning || len(vs.durations) < r.cfg.SpeculationMinCompleted {
			continue
		}
		var total time.Duration
		for _, d := range vs.durations {
			total += d
		}
		mean := total / time.Duration(len(vs.durations))
		threshold := time.Duration(float64(mean) * r.cfg.SpeculationFactor)
		if threshold <= 0 {
			continue
		}
		for _, ts := range vs.tasks {
			if ts.state != tRunning || len(ts.attempts) == 0 {
				continue
			}
			// One speculative attempt per task, only when exactly one
			// original is running.
			running := 0
			speculated := false
			var oldest *attemptState
			for _, at := range ts.attempts {
				if at.speculative {
					speculated = true
				}
				if at.state == aRunning {
					running++
					if oldest == nil || at.start.Before(oldest.start) {
						oldest = at
					}
				}
			}
			if speculated || running != 1 || oldest == nil {
				continue
			}
			if now.Sub(oldest.start) > threshold {
				r.newAttempt(ts, true)
			}
		}
	}
}

// checkDeadlock detects the scheduling deadlock of §3.4: an out-of-order
// scheduled descendant holds a container while an ancestor task starves.
// The DAG dependency identifies the descendant, which is preempted.
func (r *dagRun) checkDeadlock() {
	n, oldest, sinceAssign, minPrio := r.session.sched.pendingInfo(r)
	if n == 0 || oldest < r.cfg.DeadlockWait || sinceAssign < r.cfg.DeadlockWait {
		return
	}
	// Preempt the most-downstream, youngest running attempt of a vertex
	// strictly below the starved priority.
	var victim *attemptState
	for _, vs := range r.vertices {
		if vs.priority <= minPrio {
			continue
		}
		for _, ts := range vs.tasks {
			for _, at := range ts.attempts {
				if at.state != aRunning || at.pc == nil {
					continue
				}
				if victim == nil ||
					at.task.vertex.priority > victim.task.vertex.priority ||
					(at.task.vertex.priority == victim.task.vertex.priority && at.start.After(victim.start)) {
					victim = at
				}
			}
		}
	}
	if victim == nil {
		return
	}
	r.counters.Add("DEADLOCK_PREEMPTIONS", 1)
	// Releasing the container kills the attempt (ErrContainerKilled),
	// which reschedules the task via the normal KILLED path.
	r.session.sched.discard(victim.pc)
}
