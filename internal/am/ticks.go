package am

import (
	"time"

	"tez/internal/timeline"
)

// amBacklogReportThreshold gates AM_BACKLOG journal events: mailbox-depth
// high-water marks below it are tracked in the counter gauge only, so a
// healthy run (backlog ~0–2) does not spam the timeline.
const amBacklogReportThreshold = 16

// onTick runs the periodic checks: straggler speculation (§4.2),
// out-of-order scheduling deadlock preemption (§3.4), and the dispatcher
// backlog gauge.
func (r *dagRun) onTick() {
	if r.isFinished() {
		return
	}
	r.observeBacklog()
	if r.cfg.Speculation {
		r.checkSpeculation()
	}
	r.checkDeadlock()
}

// observeBacklog samples the dispatcher mailbox depth. The high-water
// mark is kept as the AM_MAILBOX_BACKLOG_MAX gauge; crossing the report
// threshold also journals an AM_BACKLOG event, making a stuck or starved
// dispatcher visible in the timeline instead of only as a hang.
func (r *dagRun) observeBacklog() {
	n := int64(r.mb.Len())
	if n <= r.backlogMax {
		return
	}
	r.backlogMax = n
	r.counters.SetMax("AM_MAILBOX_BACKLOG_MAX", n)
	if n >= amBacklogReportThreshold {
		r.tl().Record(timeline.Event{Type: timeline.AMBacklog, DAG: r.id, Val: n})
	}
}

// checkSpeculation launches a speculative twin for attempts running far
// longer than the vertex's mean completed-task runtime: the clone races
// the original to completion (§4.2, Speculation).
func (r *dagRun) checkSpeculation() {
	now := r.clock()
	for _, vs := range r.vertices {
		if !vs.lc.In(vRunning) || len(vs.durations) < r.cfg.SpeculationMinCompleted {
			continue
		}
		var total time.Duration
		for _, d := range vs.durations {
			total += d
		}
		mean := total / time.Duration(len(vs.durations))
		threshold := time.Duration(float64(mean) * r.cfg.SpeculationFactor)
		if threshold <= 0 {
			continue
		}
		for _, ts := range vs.tasks {
			if !ts.lc.In(tRunning) || len(ts.attempts) == 0 {
				continue
			}
			// One speculative attempt per task, only when exactly one
			// original is running.
			running := 0
			speculated := false
			var oldest *attemptState
			for _, at := range ts.attempts {
				if at.speculative {
					speculated = true
				}
				if at.lc.In(aRunning) {
					running++
					if oldest == nil || at.start.Before(oldest.start) {
						oldest = at
					}
				}
			}
			if speculated || running != 1 || oldest == nil {
				continue
			}
			if now.Sub(oldest.start) > threshold {
				r.newAttempt(ts, true)
			}
		}
	}
}

// checkDeadlock detects the scheduling deadlock of §3.4: an out-of-order
// scheduled descendant holds a container while an ancestor task starves.
// The DAG dependency identifies the descendant, which is preempted.
func (r *dagRun) checkDeadlock() {
	n, oldest, sinceAssign, minPrio := r.session.sched.pendingInfo(r)
	if n == 0 || oldest < r.cfg.DeadlockWait || sinceAssign < r.cfg.DeadlockWait {
		return
	}
	// Preempt the most-downstream, youngest running attempt of a vertex
	// strictly below the starved priority.
	var victim *attemptState
	for _, vs := range r.vertices {
		if vs.priority <= minPrio {
			continue
		}
		for _, ts := range vs.tasks {
			for _, at := range ts.attempts {
				if !at.lc.In(aRunning) || at.pc == nil {
					continue
				}
				if victim == nil ||
					at.task.vertex.priority > victim.task.vertex.priority ||
					(at.task.vertex.priority == victim.task.vertex.priority && at.start.After(victim.start)) {
					victim = at
				}
			}
		}
	}
	if victim == nil {
		return
	}
	r.counters.Add("DEADLOCK_PREEMPTIONS", 1)
	// Releasing the container kills the attempt (ErrContainerKilled),
	// which reschedules the task via the normal KILLED path.
	r.session.sched.discard(victim.pc)
}
