package am

import (
	"errors"
	"testing"

	"tez/internal/security"
	"tez/internal/shuffle"
)

// TestSecureClusterEndToEnd runs a full DAG on a cluster with token-based
// shuffle access control on (§4.3): tasks authenticate transparently, a
// foreign caller is rejected, and the DAG's credential dies with it.
func TestSecureClusterEndToEnd(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	plat.EnableSecurity()

	writeLines(t, plat, "/in/sec", []string{"alpha beta alpha"})
	d := wordCountDAG("wc-secure", "/in/sec", "/out/sec", 2)
	s := NewSession(plat, Config{Name: "secure"})
	defer s.Close()
	h, err := s.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, res.Err)
	}
	counts := readCounts(t, plat, "/out/sec")
	if counts["alpha"] != 2 || counts["beta"] != 1 {
		t.Fatalf("counts = %v", counts)
	}

	// A caller without the token cannot publish into (or read from) the
	// DAG's shuffle namespace.
	id := shuffle.OutputID{DAG: h.ID(), Vertex: "rogue", Name: "x", Task: 0}
	if err := plat.Shuffle.Register("node-000", id, [][]byte{{1}}); !errors.Is(err, security.ErrUnauthorized) {
		t.Fatalf("unauthenticated register: %v", err)
	}
	forged := security.Token("not-the-token")
	if _, _, err := plat.Shuffle.FetchNoWait(id, 0, "node-000", forged); !errors.Is(err, security.ErrUnauthorized) {
		t.Fatalf("forged fetch: %v", err)
	}

	// After DAG completion the token is revoked: even the real token can
	// no longer touch the namespace (zombie-attempt protection).
	real := plat.Authority.Issue("some-other-dag") // control: other scopes still work
	if err := plat.Shuffle.Register("node-000", shuffle.OutputID{DAG: "some-other-dag", Vertex: "v", Name: "x"}, [][]byte{{1}}, real); err != nil {
		t.Fatalf("live scope rejected: %v", err)
	}
	plat.Authority.Revoke("some-other-dag")
	if err := plat.Shuffle.Register("node-000", shuffle.OutputID{DAG: "some-other-dag", Vertex: "v", Name: "y"}, [][]byte{{1}}, real); !errors.Is(err, security.ErrUnauthorized) {
		t.Fatalf("revoked register: %v", err)
	}
}

// TestInsecureClusterUnchanged: without an authority, tokenless access
// keeps working (backwards compatibility for every other test).
func TestInsecureClusterUnchanged(t *testing.T) {
	plat := newTestPlatform(2)
	defer plat.Stop()
	id := shuffle.OutputID{DAG: "d", Vertex: "v", Name: "x"}
	if err := plat.Shuffle.Register("node-000", id, [][]byte{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := plat.Shuffle.Fetch(id, 0, "node-001"); err != nil {
		t.Fatal(err)
	}
}
