package am

import (
	"fmt"
	"time"

	"tez/internal/fsm"
	"tez/internal/metrics"
	"tez/internal/timeline"
)

// The AM's four control-plane lifecycles — DAG, vertex, task, attempt —
// as explicit transition tables (§3.3–§4.1; the Apache implementation
// declares these on Hadoop's StateMachineFactory). Every legal
// (state, event) pair is listed here; firing an undeclared pair never
// mutates state and journals a TRANSITION_INVALID timeline event, so a
// control-plane bug surfaces instead of silently dropping on the floor.
// The tables are shared, immutable specs; each dagRun entity owns a
// cheap fsm.Machine over them, mutated only on the dispatcher goroutine
// (the single-owner mailbox model — no locking).
//
// Timeline emission is a transition observer: every vertex/task/attempt
// lifecycle event in the journal is produced by exactly one place — the
// observers below — instead of per-call-site Record calls. Creation
// events (DAGSubmitted, AttemptRequested) and the DAGFinished span
// closer (which needs the post-teardown duration) remain with their
// constructors and the run loop.

// Vertex lifecycle states.
type vState int

const (
	vNew vState = iota
	vIniting
	vInited
	vRunning
	vSucceeded
	vFailed
)

func (s vState) String() string {
	switch s {
	case vNew:
		return "NEW"
	case vIniting:
		return "INITING"
	case vInited:
		return "INITED"
	case vRunning:
		return "RUNNING"
	case vSucceeded:
		return "SUCCEEDED"
	case vFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("vState(%d)", int(s))
	}
}

// Task lifecycle states.
type tState int

const (
	tPending tState = iota
	tScheduled
	tRunning
	tSucceeded
	tFailed
)

func (s tState) String() string {
	switch s {
	case tPending:
		return "PENDING"
	case tScheduled:
		return "SCHEDULED"
	case tRunning:
		return "RUNNING"
	case tSucceeded:
		return "SUCCEEDED"
	case tFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("tState(%d)", int(s))
	}
}

// Attempt lifecycle states.
type aState int

const (
	aWaiting aState = iota // waiting for a container
	aRunning
	aSucceeded
	aFailed
	aKilled
)

func (s aState) String() string {
	switch s {
	case aWaiting:
		return "WAITING"
	case aRunning:
		return "RUNNING"
	case aSucceeded:
		return "SUCCEEDED"
	case aFailed:
		return "FAILED"
	case aKilled:
		return "KILLED"
	default:
		return fmt.Sprintf("aState(%d)", int(s))
	}
}

// DAG lifecycle events.
type dEvent int

const (
	dEvSucceed dEvent = iota // every vertex succeeded, commits done
	dEvFail                  // unrecoverable error (or injected AM crash)
	dEvKill                  // client kill
)

func (e dEvent) String() string {
	switch e {
	case dEvSucceed:
		return "D_SUCCEED"
	case dEvFail:
		return "D_FAIL"
	case dEvKill:
		return "D_KILL"
	default:
		return fmt.Sprintf("dEvent(%d)", int(e))
	}
}

// Vertex lifecycle events (the §3.3 vertex event list: V_INIT /
// V_INITED / V_START / V_COMPLETED plus re-run and recovery).
type vEvent int

const (
	vEvInitStart  vEvent = iota // data-source initializers launched
	vEvInited                   // parallelism decided, tasks created
	vEvStart                    // edge geometry complete, manager takes over
	vEvCompleted                // every task succeeded
	vEvRerun                    // a succeeded task rolled back (output lost)
	vEvTaskFailed               // a task exhausted MaxTaskAttempts
	vEvRecovered                // restored complete from an AM checkpoint
)

func (e vEvent) String() string {
	switch e {
	case vEvInitStart:
		return "V_INIT_START"
	case vEvInited:
		return "V_INITED"
	case vEvStart:
		return "V_START"
	case vEvCompleted:
		return "V_COMPLETED"
	case vEvRerun:
		return "V_RERUN"
	case vEvTaskFailed:
		return "V_TASK_FAILED"
	case vEvRecovered:
		return "V_RECOVERED"
	default:
		return fmt.Sprintf("vEvent(%d)", int(e))
	}
}

// Task lifecycle events.
type tEvent int

const (
	tEvSchedule  tEvent = iota // vertex manager released the task
	tEvLaunched                // an attempt got its container
	tEvSucceeded               // an attempt won
	tEvRerun                   // winner's output lost; task re-executes
	tEvExhausted               // MaxTaskAttempts genuine failures
	tEvRestored                // recovered as succeeded from a checkpoint
)

func (e tEvent) String() string {
	switch e {
	case tEvSchedule:
		return "T_SCHEDULE"
	case tEvLaunched:
		return "T_ATTEMPT_LAUNCHED"
	case tEvSucceeded:
		return "T_ATTEMPT_SUCCEEDED"
	case tEvRerun:
		return "T_RERUN"
	case tEvExhausted:
		return "T_ATTEMPTS_EXHAUSTED"
	case tEvRestored:
		return "T_RESTORED"
	default:
		return fmt.Sprintf("tEvent(%d)", int(e))
	}
}

// Attempt lifecycle events.
type aEvent int

const (
	aEvAssigned aEvent = iota // scheduler delivered a container
	aEvDone                   // the runner returned (multi-arc: outcome classified)
	aEvKill                   // cancelled before/while running (speculation loser, teardown, stale assignment)
)

func (e aEvent) String() string {
	switch e {
	case aEvAssigned:
		return "A_ASSIGNED"
	case aEvDone:
		return "A_DONE"
	case aEvKill:
		return "A_KILL"
	default:
		return fmt.Sprintf("aEvent(%d)", int(e))
	}
}

// attemptDone carries an A_DONE event's classification inputs into the
// multi-arc selector and the selected cause back out. The selector is
// the one place attempt outcomes are classified.
type attemptDone struct {
	failed          bool // runner returned a non-nil error
	containerKilled bool // the error is cluster.ErrContainerKilled
	inputError      bool // the error is a runtime.InputReadError casualty
	nodeDead        bool // the attempt's node was already known lost
	lostRace        bool // the task already has a winner (speculative twin)

	// cause (out) names the counter to charge for a casualty KILLED arc;
	// empty for SUCCEEDED, FAILED and the uncharged lost-race kill.
	cause string
}

// classifyAttemptDone is the A_DONE arc selector. Pure in its inputs so
// the property test can drive it with randomized payloads. A twin that
// FAILED after its sibling won is still classified as a genuine failure
// (or casualty) — losing the race never launders a real failure.
func classifyAttemptDone(_ *attemptState, payload any) aState {
	d := payload.(*attemptDone)
	switch {
	case !d.failed && d.lostRace:
		return aKilled
	case !d.failed:
		return aSucceeded
	case d.containerKilled:
		d.cause = "ATTEMPTS_KILLED"
		return aKilled
	case d.inputError:
		d.cause = "ATTEMPTS_KILLED_INPUT_ERROR"
		return aKilled
	case d.nodeDead:
		d.cause = "ATTEMPTS_KILLED_NODE_LOST"
		return aKilled
	default:
		return aFailed
	}
}

// The four transition tables. Build panics on malformed tables, so any
// test run validates them (no duplicate pairs, terminal states have no
// outgoing arcs, every state reachable).
var (
	dagLifecycle = (&fsm.Spec[*dagRun, DAGStatus, dEvent]{
		Name:     "dag",
		Initial:  DAGRunning,
		Terminal: []DAGStatus{DAGSucceeded, DAGFailed, DAGKilled},
		Transitions: []fsm.Transition[*dagRun, DAGStatus, dEvent]{
			{From: DAGRunning, On: dEvSucceed, To: DAGSucceeded},
			{From: DAGRunning, On: dEvFail, To: DAGFailed},
			{From: DAGRunning, On: dEvKill, To: DAGKilled},
		},
	}).Build()

	vertexLifecycle = (&fsm.Spec[*vertexState, vState, vEvent]{
		Name:     "vertex",
		Initial:  vNew,
		Terminal: []vState{vFailed},
		Transitions: []fsm.Transition[*vertexState, vState, vEvent]{
			{From: vNew, On: vEvInitStart, To: vIniting},
			{From: vNew, On: vEvInited, To: vInited},     // no initializers
			{From: vIniting, On: vEvInited, To: vInited}, // initializers done, parallelism known
			{From: vInited, On: vEvStart, To: vRunning},
			{From: vRunning, On: vEvCompleted, To: vSucceeded},
			// A consumer's InputReadError (or a node loss under an
			// ephemeral out-edge) rolls a finished vertex back (§4.3).
			{From: vSucceeded, On: vEvRerun, To: vRunning},
			{From: vRunning, On: vEvTaskFailed, To: vFailed},
			// AM recovery replays checkpointed completions through the
			// same table instead of reconstructing state by hand.
			{From: vNew, On: vEvRecovered, To: vSucceeded},
		},
	}).Build()

	taskLifecycle = (&fsm.Spec[*taskState, tState, tEvent]{
		Name:     "task",
		Initial:  tPending,
		Terminal: []tState{tFailed},
		Transitions: []fsm.Transition[*taskState, tState, tEvent]{
			{From: tPending, On: tEvSchedule, To: tScheduled},
			{From: tScheduled, On: tEvLaunched, To: tRunning},
			// Speculative twins launch while the task is already running.
			{From: tRunning, On: tEvLaunched, To: tRunning},
			{From: tRunning, On: tEvSucceeded, To: tSucceeded},
			{From: tSucceeded, On: tEvRerun, To: tRunning},
			{From: tRunning, On: tEvExhausted, To: tFailed},
			{From: tPending, On: tEvRestored, To: tSucceeded},
		},
	}).Build()

	attemptLifecycle = (&fsm.Spec[*attemptState, aState, aEvent]{
		Name:     "attempt",
		Initial:  aWaiting,
		Terminal: []aState{aSucceeded, aFailed, aKilled},
		Transitions: []fsm.Transition[*attemptState, aState, aEvent]{
			{From: aWaiting, On: aEvAssigned, To: aRunning},
			// The runner returned: the selector classifies success,
			// genuine failure, and the casualty kinds (container kill,
			// input-error casualty, node-loss race, lost speculative race).
			{From: aRunning, On: aEvDone, Arcs: []aState{aSucceeded, aFailed, aKilled},
				Select: classifyAttemptDone},
			{From: aWaiting, On: aEvKill, To: aKilled},
			{From: aRunning, On: aEvKill, To: aKilled},
		},
	}).Build()
)

// attemptOutcome maps a terminal attempt state to its journal/trace
// outcome string.
func attemptOutcome(s aState) string {
	switch s {
	case aSucceeded:
		return "SUCCEEDED"
	case aFailed:
		return "FAILED"
	default:
		return "KILLED"
	}
}

// recordInvalid journals one undeclared (state, event) firing. The
// machine's state was not changed; the journal entry is the evidence the
// old guard style destroyed.
func (r *dagRun) recordInvalid(err *fsm.InvalidTransitionError, vertex string, task, attempt int) {
	r.counters.Add("TRANSITIONS_INVALID", 1)
	r.tl().Record(timeline.Event{
		Type: timeline.TransitionInvalid, DAG: r.id,
		Vertex: vertex, Task: task, Attempt: attempt, Info: err.Error(),
	})
}

// newDAGMachine wires the run-level machine. The DAG observer emits
// nothing: DAGFinished is a span closer recorded by the run loop after
// teardown, when the final duration is known.
func newDAGMachine(r *dagRun) *fsm.Machine[*dagRun, DAGStatus, dEvent] {
	return dagLifecycle.New(r).
		OnInvalid(func(_ *dagRun, err *fsm.InvalidTransitionError) {
			r.recordInvalid(err, "", -1, -1)
		})
}

// newVertexMachine wires a vertex machine: the observer is the single
// emission point for VERTEX_INITED / VERTEX_STARTED / VERTEX_SUCCEEDED /
// VERTEX_RECOVERED.
func newVertexMachine(r *dagRun, vs *vertexState) *fsm.Machine[*vertexState, vState, vEvent] {
	return vertexLifecycle.New(vs).
		Observe(func(vs *vertexState, from, to vState, on vEvent) {
			switch on {
			case vEvInited:
				r.tl().Record(timeline.Event{
					Type: timeline.VertexInited, DAG: r.id,
					Vertex: vs.v.Name, Val: int64(vs.parallelism),
				})
			case vEvStart:
				r.tl().Record(timeline.Event{Type: timeline.VertexStarted, DAG: r.id, Vertex: vs.v.Name})
			case vEvCompleted:
				r.tl().Record(timeline.Event{Type: timeline.VertexSucceeded, DAG: r.id, Vertex: vs.v.Name})
			case vEvRecovered:
				r.tl().Record(timeline.Event{Type: timeline.VertexRecovered, DAG: r.id, Vertex: vs.v.Name})
			}
		}).
		OnInvalid(func(vs *vertexState, err *fsm.InvalidTransitionError) {
			r.recordInvalid(err, vs.v.Name, -1, -1)
		})
}

// newTaskMachine wires a task machine; the observer owns TASK_SCHEDULED.
func newTaskMachine(r *dagRun, ts *taskState) *fsm.Machine[*taskState, tState, tEvent] {
	return taskLifecycle.New(ts).
		Observe(func(ts *taskState, from, to tState, on tEvent) {
			if on == tEvSchedule {
				r.tl().Record(timeline.Event{
					Type: timeline.TaskScheduled, DAG: r.id,
					Vertex: ts.vertex.v.Name, Task: ts.idx,
				})
			}
		}).
		OnInvalid(func(ts *taskState, err *fsm.InvalidTransitionError) {
			r.recordInvalid(err, ts.vertex.v.Name, ts.idx, -1)
		})
}

// newAttemptMachine wires an attempt machine. The observer owns
// ATTEMPT_STARTED (on assignment) and — for every attempt that actually
// ran — the ATTEMPT_FINISHED journal entry and metrics trace record, so
// speculation losers and teardown kills now close their spans uniformly
// instead of vanishing.
func newAttemptMachine(r *dagRun, at *attemptState) *fsm.Machine[*attemptState, aState, aEvent] {
	return attemptLifecycle.New(at).
		Observe(func(at *attemptState, from, to aState, on aEvent) {
			switch {
			case from == aWaiting && to == aRunning:
				var cid int64
				if at.pc != nil {
					cid = int64(at.pc.c.ID)
				}
				r.tl().Record(timeline.Event{
					Type: timeline.AttemptStarted, DAG: r.id,
					Vertex: at.task.vertex.v.Name, Task: at.task.idx, Attempt: at.id,
					Node: at.node, Container: cid,
					Info: at.locality.String(), Val: int64(at.allocWait),
				})
			case from == aRunning:
				r.closeAttemptSpan(at, attemptOutcome(to))
			}
		}).
		OnInvalid(func(at *attemptState, err *fsm.InvalidTransitionError) {
			r.recordInvalid(err, at.task.vertex.v.Name, at.task.idx, at.id)
		})
}

// closeAttemptSpan records a ran-to-terminal attempt in the metrics trace
// and the journal.
func (r *dagRun) closeAttemptSpan(at *attemptState, outcome string) {
	end := r.clock()
	r.trace.Record(metrics.AttemptRecord{
		Vertex:      at.task.vertex.v.Name,
		Task:        at.task.idx,
		Attempt:     at.id,
		Node:        at.node,
		Locality:    at.locality.String(),
		Speculative: at.speculative,
		Start:       at.start,
		End:         end,
		Outcome:     outcome,
	})
	var cid int64
	if at.pc != nil {
		cid = int64(at.pc.c.ID)
	}
	var dur time.Duration
	if !at.start.IsZero() {
		dur = end.Sub(at.start)
	}
	r.tl().Record(timeline.Event{
		Type: timeline.AttemptFinished, DAG: r.id,
		Vertex: at.task.vertex.v.Name, Task: at.task.idx, Attempt: at.id,
		Node: at.node, Container: cid, Info: outcome, Dur: dur,
	})
}

// LifecycleTables renders the four declared control-plane transition
// tables ("dag", "vertex", "task", "attempt", in that order) in the
// given format: "mermaid" or "dot". This is the inspectability payoff of
// the table form — cmd/tez-fsm dumps these for DESIGN.md.
func LifecycleTables(format string) ([]LifecycleTable, error) {
	render := func(name string, mermaid, dot func() string) (LifecycleTable, error) {
		switch format {
		case "mermaid":
			return LifecycleTable{Machine: name, Text: mermaid()}, nil
		case "dot":
			return LifecycleTable{Machine: name, Text: dot()}, nil
		default:
			return LifecycleTable{}, fmt.Errorf("am: unknown table format %q (want mermaid or dot)", format)
		}
	}
	var out []LifecycleTable
	for _, m := range []struct {
		name         string
		mermaid, dot func() string
	}{
		{"dag", dagLifecycle.Mermaid, dagLifecycle.DOT},
		{"vertex", vertexLifecycle.Mermaid, vertexLifecycle.DOT},
		{"task", taskLifecycle.Mermaid, taskLifecycle.DOT},
		{"attempt", attemptLifecycle.Mermaid, attemptLifecycle.DOT},
	} {
		t, err := render(m.name, m.mermaid, m.dot)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// LifecycleTable is one rendered machine table.
type LifecycleTable struct {
	Machine string
	Text    string
}
