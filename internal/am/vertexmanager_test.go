package am

import (
	"testing"

	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/library"
	"tez/internal/plugin"
)

// fakeVMContext drives vertex managers without a live DAG.
type fakeVMContext struct {
	cfg         Config
	parallelism int
	setPar      []int
	scheduled   map[int]bool

	sources   []string
	srcPar    map[string]int
	srcDone   map[string]int
	srcMove   map[string]dag.MovementType
	srcSched  map[string]dag.SchedulingType
	taskDone  map[string]map[int]bool
	outEdge   map[string][]byte
	vmPayload []byte
}

func newFakeVMContext(par int) *fakeVMContext {
	return &fakeVMContext{
		cfg:         Config{}.withDefaults(),
		parallelism: par,
		scheduled:   map[int]bool{},
		srcPar:      map[string]int{},
		srcDone:     map[string]int{},
		srcMove:     map[string]dag.MovementType{},
		srcSched:    map[string]dag.SchedulingType{},
		taskDone:    map[string]map[int]bool{},
		outEdge:     map[string][]byte{},
	}
}

func (c *fakeVMContext) addSource(name string, par int, m dag.MovementType) {
	c.sources = append(c.sources, name)
	c.srcPar[name] = par
	c.srcMove[name] = m
	c.taskDone[name] = map[int]bool{}
}

func (c *fakeVMContext) complete(name string, task int) {
	c.taskDone[name][task] = true
	c.srcDone[name]++
}

func (c *fakeVMContext) VertexName() string    { return "v" }
func (c *fakeVMContext) Payload() []byte       { return c.vmPayload }
func (c *fakeVMContext) Parallelism() int      { return c.parallelism }
func (c *fakeVMContext) SessionConfig() Config { return c.cfg }
func (c *fakeVMContext) SetParallelism(n int) error {
	c.parallelism = n
	c.setPar = append(c.setPar, n)
	return nil
}
func (c *fakeVMContext) SetParallelismWithEdges(n int, _ map[string]plugin.Descriptor) error {
	return c.SetParallelism(n)
}
func (c *fakeVMContext) ScheduleTasks(tasks []int) {
	for _, t := range tasks {
		c.scheduled[t] = true
	}
}
func (c *fakeVMContext) SourceVertices() []string { return c.sources }
func (c *fakeVMContext) SourceVertexParallelism(name string) int {
	if p, ok := c.srcPar[name]; ok {
		return p
	}
	return -1
}
func (c *fakeVMContext) SourceTasksCompleted(name string) int { return c.srcDone[name] }
func (c *fakeVMContext) SourceMovement(name string) dag.MovementType {
	return c.srcMove[name]
}
func (c *fakeVMContext) SourceScheduling(name string) dag.SchedulingType {
	return c.srcSched[name]
}
func (c *fakeVMContext) SourceTaskCompleted(name string, task int) bool {
	return c.taskDone[name][task]
}
func (c *fakeVMContext) SetOutEdgePayload(dest string, payload []byte) error {
	c.outEdge[dest] = payload
	return nil
}

func stats(sizes ...int64) []byte {
	return plugin.MustEncode(library.VMStats{PartitionSizes: sizes})
}

func TestSVMSlowStartProgression(t *testing.T) {
	ctx := newFakeVMContext(8)
	ctx.cfg.SlowStartMin, ctx.cfg.SlowStartMax = 0.25, 0.75
	ctx.cfg.DisableAutoParallelism = true
	ctx.addSource("map", 8, dag.ScatterGather)
	m := &ShuffleVertexManager{}
	if err := m.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	m.OnVertexStarted()
	if len(ctx.scheduled) != 0 {
		t.Fatalf("scheduled %d tasks before slow-start threshold", len(ctx.scheduled))
	}
	// 2/8 = 25%: the first consumer may start.
	ctx.complete("map", 0)
	m.OnSourceTaskCompleted("map", 0)
	ctx.complete("map", 1)
	m.OnSourceTaskCompleted("map", 1)
	if got := len(ctx.scheduled); got < 1 || got == 8 {
		t.Fatalf("at 25%%: scheduled %d", got)
	}
	// 6/8 = 75%: everything may run.
	for i := 2; i < 6; i++ {
		ctx.complete("map", i)
		m.OnSourceTaskCompleted("map", i)
	}
	if got := len(ctx.scheduled); got != 8 {
		t.Fatalf("at 75%%: scheduled %d, want all 8", got)
	}
}

func TestSVMAutoParallelismEstimate(t *testing.T) {
	ctx := newFakeVMContext(8)
	ctx.cfg.DesiredBytesPerReducer = 1000
	ctx.cfg.SlowStartMin, ctx.cfg.SlowStartMax = 0.5, 0.5
	ctx.addSource("map", 4, dag.ScatterGather)
	m := &ShuffleVertexManager{}
	if err := m.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	m.OnVertexStarted()
	// Two of four producers report 500 bytes each → extrapolated total
	// 2000 bytes → 2 reducers.
	for i := 0; i < 2; i++ {
		m.OnVertexManagerEvent(event.VertexManagerEvent{SrcVertex: "map", SrcTask: i, Payload: stats(250, 250)})
		ctx.complete("map", i)
		m.OnSourceTaskCompleted("map", i)
	}
	if len(ctx.setPar) != 1 || ctx.setPar[0] != 2 {
		t.Fatalf("SetParallelism calls = %v, want [2]", ctx.setPar)
	}
	// Duplicate stats from a speculative attempt must not double-count.
	m.OnVertexManagerEvent(event.VertexManagerEvent{SrcVertex: "map", SrcTask: 0, Payload: stats(9999)})
	if m.statsBytes != 1000 {
		t.Fatalf("statsBytes = %d after duplicate", m.statsBytes)
	}
}

func TestSVMBroadcastGate(t *testing.T) {
	ctx := newFakeVMContext(2)
	ctx.cfg.DisableAutoParallelism = true
	ctx.addSource("dim", 2, dag.Broadcast)
	m := &ShuffleVertexManager{}
	if err := m.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	m.OnVertexStarted()
	if len(ctx.scheduled) != 0 {
		t.Fatal("scheduled before broadcast source completed")
	}
	ctx.complete("dim", 0)
	m.OnSourceTaskCompleted("dim", 0)
	if len(ctx.scheduled) != 0 {
		t.Fatal("scheduled with broadcast source half done")
	}
	ctx.complete("dim", 1)
	m.OnSourceTaskCompleted("dim", 1)
	if len(ctx.scheduled) != 2 {
		t.Fatalf("scheduled %d after broadcast completed", len(ctx.scheduled))
	}
}

func TestSVMOneToOnePerTaskGating(t *testing.T) {
	ctx := newFakeVMContext(3)
	ctx.cfg.DisableAutoParallelism = true
	ctx.addSource("up", 3, dag.OneToOne)
	m := &ShuffleVertexManager{}
	if err := m.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	m.OnVertexStarted()
	if len(ctx.scheduled) != 0 {
		t.Fatal("1-1 consumer scheduled before any source task")
	}
	ctx.complete("up", 1)
	m.OnSourceTaskCompleted("up", 1)
	if !ctx.scheduled[1] || ctx.scheduled[0] || ctx.scheduled[2] {
		t.Fatalf("scheduled = %v, want only task 1", ctx.scheduled)
	}
}

func TestSVMRootVertexSchedulesImmediately(t *testing.T) {
	ctx := newFakeVMContext(4)
	m := &ShuffleVertexManager{}
	if err := m.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	m.OnVertexStarted()
	if len(ctx.scheduled) != 4 {
		t.Fatalf("root vertex scheduled %d of 4", len(ctx.scheduled))
	}
}

func TestImmediateStartVM(t *testing.T) {
	ctx := newFakeVMContext(5)
	ctx.addSource("up", 3, dag.ScatterGather) // ignored by this manager
	m := &ImmediateStartVertexManager{}
	if err := m.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	m.OnVertexStarted()
	if len(ctx.scheduled) != 5 {
		t.Fatalf("scheduled %d of 5", len(ctx.scheduled))
	}
}

func TestNewVertexManagerDefaultsAndRegistry(t *testing.T) {
	m, err := newVertexManager(plugin.Descriptor{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*ShuffleVertexManager); !ok {
		t.Fatalf("default manager = %T", m)
	}
	if _, err := newVertexManager(plugin.Descriptor{Name: "am.unknown"}); err == nil {
		t.Fatal("unknown manager accepted")
	}
	m2, err := newVertexManager(plugin.Descriptor{Name: ImmediateStartVertexManagerName})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.(*ImmediateStartVertexManager); !ok {
		t.Fatalf("named manager = %T", m2)
	}
}
