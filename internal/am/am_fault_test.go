package am

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

// slowOnFirstAttempt simulates an environment-induced straggler: task 0's
// first attempt hangs (until killed), any other attempt is fast.
type slowOnFirstAttempt struct{ ctx *runtime.Context }

func (p *slowOnFirstAttempt) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *slowOnFirstAttempt) Run(_ map[string]runtime.Input, out map[string]runtime.Output) error {
	if p.ctx.Meta.Task == 0 && p.ctx.Meta.Attempt == 0 {
		select {
		case <-p.ctx.Stop:
			return nil
		case <-time.After(5 * time.Second):
			return fmt.Errorf("straggler was never mitigated")
		}
	}
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	return w.(runtime.KVWriter).Write([]byte(fmt.Sprintf("t%d", p.ctx.Meta.Task)), []byte("ok"))
}
func (p *slowOnFirstAttempt) Close() error { return nil }

func TestSpeculationMitigatesStraggler(t *testing.T) {
	runtime.RegisterProcessor("amtest.straggler", func() runtime.Processor { return &slowOnFirstAttempt{} })
	plat := newTestPlatform(4)
	defer plat.Stop()
	d := dag.New("spec")
	v := d.AddVertex("v", plugin.Desc("amtest.straggler", nil), 6)
	v.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/spec"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/spec"}),
	}}
	cfg := Config{
		Name:                    "t",
		Speculation:             true,
		SpeculationInterval:     2 * time.Millisecond,
		SpeculationFactor:       3,
		SpeculationMinCompleted: 3,
	}
	start := time.Now()
	res, err := RunDAG(plat, cfg, d)
	if err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("speculation did not rescue the straggler in time")
	}
	if res.Counters.Get("SPECULATIVE_ATTEMPTS") == 0 {
		t.Fatal("no speculative attempt launched")
	}
	spec := 0
	for _, rec := range res.Trace.Records() {
		if rec.Speculative && rec.Outcome == "SUCCEEDED" {
			spec++
		}
	}
	if spec == 0 {
		t.Fatal("speculative attempt did not win")
	}
}

// vmEventGated schedules its vertex only after a VertexManagerEvent
// arrives — used to force out-of-order scheduling inversions.
type vmEventGated struct{ ctx VertexManagerContext }

func (m *vmEventGated) Initialize(ctx VertexManagerContext) error { m.ctx = ctx; return nil }
func (m *vmEventGated) OnVertexStarted()                          {}
func (m *vmEventGated) OnSourceTaskCompleted(string, int)         {}
func (m *vmEventGated) OnVertexManagerEvent(event.VertexManagerEvent) {
	p := m.ctx.Parallelism()
	ids := make([]int, p)
	for i := range ids {
		ids[i] = i
	}
	m.ctx.ScheduleTasks(ids)
}

// pokeThenRead emits a VMEvent to the producer vertex, then blocks reading
// its (not yet produced) input — occupying the only container.
type pokeThenRead struct{ ctx *runtime.Context }

func (p *pokeThenRead) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *pokeThenRead) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	p.ctx.Emit(event.VertexManagerEvent{TargetVertex: "producer", SrcVertex: p.ctx.Meta.Vertex})
	r, err := in["producer"].Reader() // blocks until data or kill
	if err != nil {
		return err
	}
	g := r.(runtime.GroupedKVReader)
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	kw := w.(runtime.KVWriter)
	for g.Next() {
		if err := kw.Write(g.Key(), []byte(strconv.Itoa(len(g.Values())))); err != nil {
			return err
		}
	}
	return g.Err()
}
func (p *pokeThenRead) Close() error { return nil }

func TestDeadlockPreemptionResolvesInversion(t *testing.T) {
	RegisterVertexManager("amtest.gated", func() VertexManager { return &vmEventGated{} })
	runtime.RegisterProcessor("amtest.poke_read", func() runtime.Processor { return &pokeThenRead{} })
	runtime.RegisterProcessor("amtest.emit2", func() runtime.Processor { return &emitProducer{} })

	// One node, one slot: the consumer grabs it first (the producer is
	// gated until the consumer pokes it) — a genuine scheduling deadlock.
	cfg := platform.Fast(1)
	cfg.Cluster.NodeResource = cluster.Resource{MemoryMB: 1024, VCores: 1}
	plat := platform.New(cfg)
	defer plat.Stop()

	d := dag.New("deadlock")
	prod := d.AddVertex("producer", plugin.Desc("amtest.emit2", nil), 1)
	prod.Manager = plugin.Desc("amtest.gated", nil)
	cons := d.AddVertex("consumer", plugin.Desc("amtest.poke_read", nil), 1)
	cons.Manager = plugin.Desc(ImmediateStartVertexManagerName, nil)
	cons.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/dl"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/dl"}),
	}}
	d.Connect(prod, cons, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	amCfg := Config{
		Name:                  "t",
		DeadlockCheckInterval: 2 * time.Millisecond,
		DeadlockWait:          20 * time.Millisecond,
	}
	done := make(chan struct{})
	var res DAGResult
	var err error
	go func() {
		res, err = RunDAG(plat, amCfg, d)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock was never resolved")
	}
	if err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	if res.Counters.Get("DEADLOCK_PREEMPTIONS") == 0 {
		t.Fatal("no deadlock preemption recorded")
	}
	counts := readCounts(t, plat, "/out/dl")
	if counts["k"] != 1 {
		t.Fatalf("output = %v", counts)
	}
}

// slowEmit produces a pair, then (consumer side) a reader that takes long
// enough for the test to kill a node under it.
type slowReduce struct {
	ctx   *runtime.Context
	delay time.Duration
}

func (p *slowReduce) Initialize(ctx *runtime.Context) error {
	p.ctx = ctx
	p.delay = 150 * time.Millisecond
	return nil
}

func (p *slowReduce) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	select {
	case <-time.After(p.delay):
	case <-p.ctx.Stop:
		return nil
	}
	r, err := in["producer"].Reader()
	if err != nil {
		return err
	}
	g := r.(runtime.GroupedKVReader)
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	kw := w.(runtime.KVWriter)
	for g.Next() {
		if err := kw.Write(g.Key(), []byte(strconv.Itoa(len(g.Values())))); err != nil {
			return err
		}
	}
	return g.Err()
}
func (p *slowReduce) Close() error { return nil }

func TestNodeFailureProactiveReexecution(t *testing.T) {
	runtime.RegisterProcessor("amtest.emit3", func() runtime.Processor { return &emitProducer{} })
	runtime.RegisterProcessor("amtest.slowreduce", func() runtime.Processor { return &slowReduce{} })
	plat := newTestPlatform(4)
	defer plat.Stop()

	d := dag.New("nodeloss")
	prod := d.AddVertex("producer", plugin.Desc("amtest.emit3", nil), 2)
	cons := d.AddVertex("consumer", plugin.Desc("amtest.slowreduce", nil), 1)
	cons.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/nl"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/nl"}),
	}}
	d.Connect(prod, cons, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})

	s := NewSession(plat, Config{Name: "t"})
	defer s.Close()
	h, err := s.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until a producer output is registered, then kill its node.
	var victim string
	deadline := time.Now().Add(5 * time.Second)
	for victim == "" && time.Now().Before(deadline) {
		for task := 0; task < 2; task++ {
			id := shuffle.OutputID{DAG: h.ID(), Vertex: "producer", Name: "consumer", Task: task, Attempt: 0}
			if node, ok := plat.Shuffle.Node(id); ok {
				victim = node
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if victim == "" {
		t.Fatal("producer output never appeared")
	}
	plat.FailNode(cluster.NodeID(victim))

	res := h.Wait()
	if res.Err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, res.Err)
	}
	if res.Counters.Get("TASKS_REEXECUTED") == 0 {
		t.Fatal("no proactive re-execution after node loss")
	}
	counts := readCounts(t, plat, "/out/nl")
	if counts["k"] != 2 {
		t.Fatalf("output = %v", counts)
	}
}

// failUntilEnabled fails until the package flag is flipped — simulates a
// transient environmental fault fixed before AM recovery.
var recoveryEnabled atomic.Bool

type failUntilEnabled struct{ ctx *runtime.Context }

func (p *failUntilEnabled) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *failUntilEnabled) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	if !recoveryEnabled.Load() {
		return fmt.Errorf("environment down")
	}
	r, err := in["stage1"].Reader()
	if err != nil {
		return err
	}
	g := r.(runtime.GroupedKVReader)
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	kw := w.(runtime.KVWriter)
	for g.Next() {
		if err := kw.Write(g.Key(), []byte(strconv.Itoa(len(g.Values())))); err != nil {
			return err
		}
	}
	return g.Err()
}
func (p *failUntilEnabled) Close() error { return nil }

func TestAMRecoveryFromCheckpoint(t *testing.T) {
	runtime.RegisterProcessor("amtest.emit4", func() runtime.Processor { return &emitProducer{} })
	runtime.RegisterProcessor("amtest.failgate", func() runtime.Processor { return &failUntilEnabled{} })
	recoveryEnabled.Store(false)
	plat := newTestPlatform(3)
	defer plat.Stop()

	build := func() *dag.DAG {
		d := dag.New("recover-me")
		prod := d.AddVertex("stage1", plugin.Desc("amtest.emit4", nil), 2)
		cons := d.AddVertex("stage2", plugin.Desc("amtest.failgate", nil), 1)
		cons.Sinks = []dag.DataSink{{
			Name:      "sink",
			Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/rec"}),
			Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/rec"}),
		}}
		// stage1's output must survive the first AM: emitProducer writes
		// to the edge named "consumer"; rename target vertex accordingly.
		d.Connect(prod, cons, dag.EdgeProperty{
			Movement: dag.ScatterGather,
			Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
			Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
		})
		return d
	}
	cfg := Config{Name: "am1", CheckpointPath: "/_cp", MaxTaskAttempts: 1}

	// First AM: stage1 succeeds, stage2 fails → DAG failed, checkpoint has
	// stage1 complete.
	s1 := NewSession(plat, cfg)
	res, err := s1.Run(build())
	s1.Close()
	if err == nil || res.Status != DAGFailed {
		t.Fatalf("first run: %v %v", res.Status, err)
	}

	// Second AM ("restarted on another node"): recovers stage1, re-runs
	// only stage2.
	recoveryEnabled.Store(true)
	cfg.Name = "am2"
	s2 := NewSession(plat, cfg)
	defer s2.Close()
	h, err := s2.Recover(build())
	if err != nil {
		t.Fatal(err)
	}
	res2 := h.Wait()
	if res2.Err != nil || res2.Status != DAGSucceeded {
		t.Fatalf("recovered run: %v %v", res2.Status, res2.Err)
	}
	if res2.Counters.Get("VERTICES_RECOVERED") != 1 {
		t.Fatalf("VERTICES_RECOVERED = %d", res2.Counters.Get("VERTICES_RECOVERED"))
	}
	// stage1 must NOT have re-run.
	if res2.Counters.Get("TASKS_SUCCEEDED") != 1 {
		t.Fatalf("recovered run executed %d tasks, want 1", res2.Counters.Get("TASKS_SUCCEEDED"))
	}
	counts := readCounts(t, plat, "/out/rec")
	if counts["k"] != 2 {
		t.Fatalf("output = %v", counts)
	}
}

func TestPrewarmedSessionHasIdleContainers(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	s := NewSession(plat, Config{
		Name:                 "warm",
		PrewarmContainers:    3,
		ContainerIdleRelease: time.Second,
	})
	defer s.Close()
	// Wait on the scheduler's own counter, not just HeldContainers: the
	// RM-side count leads the session event loop, so held can reach 3
	// before the scheduler has processed a single allocation.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a, _ := s.SchedulerStats(); a >= 3 && s.app.HeldContainers() >= 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.app.HeldContainers(); got < 3 {
		t.Fatalf("prewarmed containers = %d", got)
	}
	allocated, _ := s.SchedulerStats()
	if allocated < 3 {
		t.Fatalf("allocated = %d", allocated)
	}
	// A DAG submitted now should reuse the warm containers.
	writeLines(t, plat, "/in/warm", []string{"a b a"})
	d := wordCountDAG("wc", "/in/warm", "/out/warm", 1)
	if res, err := s.Run(d); err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	_, reused := s.SchedulerStats()
	if reused == 0 {
		t.Fatal("prewarmed containers were not reused")
	}
}

func TestKillDAG(t *testing.T) {
	runtime.RegisterProcessor("amtest.emit", func() runtime.Processor { return &emitProducer{} })
	runtime.RegisterProcessor("amtest.sleepy", func() runtime.Processor { return &slowReduce{} })
	plat := newTestPlatform(2)
	defer plat.Stop()
	d := dag.New("killme")
	prod := d.AddVertex("producer", plugin.Desc("amtest.emit", nil), 1)
	cons := d.AddVertex("consumer", plugin.Desc("amtest.sleepy", nil), 1)
	d.Connect(prod, cons, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	s := NewSession(plat, Config{Name: "t"})
	defer s.Close()
	h, err := s.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	h.Kill("test")
	res := h.Wait()
	if res.Status != DAGKilled {
		t.Fatalf("status = %v", res.Status)
	}
	// All resources must be returned eventually.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && s.app.HeldContainers() > 0 {
		time.Sleep(time.Millisecond)
	}
}

// TestTransientShuffleErrorsAreAbsorbed runs a DAG on a network that
// randomly fails fetches: the built-in inputs retry with backoff (§4.3)
// and the DAG still completes correctly.
func TestTransientShuffleErrorsAreAbsorbed(t *testing.T) {
	cfg := platform.Fast(4)
	cfg.Shuffle.TransientErrorRate = 0.3
	cfg.Shuffle.Seed = 99
	plat := platform.New(cfg)
	defer plat.Stop()
	writeLines(t, plat, "/in/flaky-net", []string{"x y x z y x"})
	d := wordCountDAG("wc-net", "/in/flaky-net", "/out/net", 3)
	res, err := RunDAG(plat, Config{Name: "t"}, d)
	if err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	counts := readCounts(t, plat, "/out/net")
	if counts["x"] != 3 || counts["y"] != 2 || counts["z"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// TestSessionSurvivesFailedDAG: one failing DAG must not poison the
// session for subsequent DAGs (Figure 7's multi-DAG sessions).
func TestSessionSurvivesFailedDAG(t *testing.T) {
	runtime.RegisterProcessor("amtest.alwaysfail2", func() runtime.Processor { return alwaysFail{} })
	plat := newTestPlatform(3)
	defer plat.Stop()
	s := NewSession(plat, Config{Name: "resilient", MaxTaskAttempts: 1})
	defer s.Close()

	bad := dag.New("bad")
	bad.AddVertex("v", plugin.Desc("amtest.alwaysfail2", nil), 1)
	if res, err := s.Run(bad); err == nil || res.Status != DAGFailed {
		t.Fatalf("bad dag: %v %v", res.Status, err)
	}

	writeLines(t, plat, "/in/after", []string{"ok ok"})
	good := wordCountDAG("wc-after", "/in/after", "/out/after", 1)
	if res, err := s.Run(good); err != nil || res.Status != DAGSucceeded {
		t.Fatalf("good dag after failure: %v %v", res.Status, err)
	}
	if readCounts(t, plat, "/out/after")["ok"] != 2 {
		t.Fatal("wrong output")
	}
}
