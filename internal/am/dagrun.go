package am

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/fsm"
	"tez/internal/mailbox"
	"tez/internal/metrics"
	"tez/internal/runtime"
	"tez/internal/security"
	"tez/internal/timeline"
)

// DAGStatus is the terminal state of a DAG run.
type DAGStatus int

// DAG terminal states.
const (
	DAGRunning DAGStatus = iota
	DAGSucceeded
	DAGFailed
	DAGKilled
)

func (s DAGStatus) String() string {
	switch s {
	case DAGRunning:
		return "RUNNING"
	case DAGSucceeded:
		return "SUCCEEDED"
	case DAGFailed:
		return "FAILED"
	default:
		return "KILLED"
	}
}

// DAGResult is what a DAG run returns.
type DAGResult struct {
	Status   DAGStatus
	Err      error
	Duration time.Duration
	Counters *metrics.Counters
	Trace    *metrics.Trace
}

// Vertex / task / attempt entities. Their lifecycle state lives in fsm
// machines (lc) driven through the transition tables of lifecycle.go —
// never in raw fields — so every state change flows through one declared
// table with a single journaling observer.

type vertexState struct {
	v           *dag.Vertex
	lc          *fsm.Machine[*vertexState, vState, vEvent]
	parallelism int
	priority    int // topological depth; lower runs first
	tasks       []*taskState
	completed   int
	durations   []time.Duration // completed task runtimes (speculation)

	manager        VertexManager
	managerStarted bool
	pendingVM      []event.VertexManagerEvent // events before manager start

	initsOutstanding int
	initEvents       map[string]*mailbox.Mailbox[event.InputInitializerEvent]
	rootPayloads     map[string][][]byte
	locationHints    [][]string

	parWaiters []chan int // initializer queries blocked on our parallelism
	// committed: commit launched; commitComplete: commit finished.
	committed      bool
	commitComplete bool
}

// newVertexState builds a vertex entity with its lifecycle machine wired
// to the run's journaling observer.
func newVertexState(r *dagRun, v *dag.Vertex, depth int) *vertexState {
	vs := &vertexState{
		v:            v,
		parallelism:  v.Parallelism,
		priority:     depth,
		initEvents:   make(map[string]*mailbox.Mailbox[event.InputInitializerEvent]),
		rootPayloads: make(map[string][][]byte),
	}
	if len(v.LocationHints) > 0 {
		vs.locationHints = v.LocationHints
	}
	vs.lc = newVertexMachine(r, vs)
	return vs
}

type taskState struct {
	vertex   *vertexState
	idx      int
	lc       *fsm.Machine[*taskState, tState, tEvent]
	attempts []*attemptState
	winner   *attemptState // the succeeded attempt
	failures int
	// restored marks tasks recovered from a checkpoint (not re-run);
	// restoredAttempt/restoredNode identify the recovered success.
	restored        bool
	restoredAttempt int
	restoredNode    string
}

// newTaskState builds a task entity with its lifecycle machine.
func newTaskState(r *dagRun, vs *vertexState, idx int) *taskState {
	ts := &taskState{vertex: vs, idx: idx}
	ts.lc = newTaskMachine(r, ts)
	return ts
}

// runningAttempts counts attempts not yet terminal.
func (t *taskState) runningAttempts() int {
	n := 0
	for _, a := range t.attempts {
		if !a.lc.Terminal() {
			n++
		}
	}
	return n
}

type attemptState struct {
	task        *taskState
	id          int
	lc          *fsm.Machine[*attemptState, aState, aEvent]
	speculative bool
	req         *taskRequest
	pc          *pooledContainer
	node        string
	locality    cluster.Locality
	mbox        *mailbox.Mailbox[event.Event]
	start       time.Time
	// allocWait is the request→launch span closed at assignment: how long
	// the attempt waited for its container (AttemptStarted's Val).
	allocWait time.Duration
}

// newAttemptState builds an attempt entity with its lifecycle machine.
// The caller appends it to ts.attempts; the id is its slot.
func newAttemptState(r *dagRun, ts *taskState, speculative bool) *attemptState {
	at := &attemptState{task: ts, id: len(ts.attempts), speculative: speculative}
	at.lc = newAttemptMachine(r, at)
	return at
}

type edgeState struct {
	e         *dag.Edge
	from, to  *vertexState
	mgr       dag.EdgeManager
	baseParts int
	// srcs holds each source task's published DataMovements so
	// late-starting consumers can be replayed the full history. With
	// pipelined shuffle a source publishes a sequence of increments, and
	// speculation can have two attempts publishing concurrently, so
	// movements are buffered per attempt and exactly one attempt's stream
	// is "delivered" — visible to consumers — at a time.
	srcs map[int]*srcMovements
}

// srcMovements buffers one source task's DataMovement streams by attempt.
// Only the delivered attempt's movements reach consumers; when that
// attempt dies mid-stream its increments are retracted and a surviving
// attempt's buffered stream (if any) is delivered in its place.
type srcMovements struct {
	delivered int                          // attempt visible to consumers; -1 none
	byAttempt map[int][]event.DataMovement // attempt -> movements, emission order
}

// deliveredMovements returns the consumer-visible stream (nil if none).
func (sm *srcMovements) deliveredMovements() []event.DataMovement {
	if sm == nil || sm.delivered < 0 {
		return nil
	}
	return sm.byAttempt[sm.delivered]
}

// Internal dispatcher messages. The three hot-path messages — assignment,
// task event, attempt completion, of which a 100k-task DAG sends hundreds
// of thousands — are pooled pointer messages: dispatch copies the fields
// out, zeroes the struct and recycles it before invoking the handler, so
// steady-state dispatch allocates nothing per message.

type amMsg interface{}

type msgAssigned struct {
	at *attemptState
	pc *pooledContainer
}

type msgAttemptDone struct {
	at  *attemptState
	err error
}

type msgTaskEvent struct {
	at *attemptState
	ev event.Event
}

var (
	assignedPool    = sync.Pool{New: func() any { return new(msgAssigned) }}
	attemptDonePool = sync.Pool{New: func() any { return new(msgAttemptDone) }}
	taskEventPool   = sync.Pool{New: func() any { return new(msgTaskEvent) }}
)

// postAssigned / postAttemptDone / postTaskEvent enqueue a pooled message.
// Messages still queued when the run tears down are simply dropped to the
// GC — the pool is an optimisation, not an ownership protocol.
func (r *dagRun) postAssigned(at *attemptState, pc *pooledContainer) {
	m := assignedPool.Get().(*msgAssigned)
	m.at, m.pc = at, pc
	r.mb.Put(m)
}

func (r *dagRun) postAttemptDone(at *attemptState, err error) {
	m := attemptDonePool.Get().(*msgAttemptDone)
	m.at, m.err = at, err
	r.mb.Put(m)
}

func (r *dagRun) postTaskEvent(at *attemptState, ev event.Event) {
	m := taskEventPool.Get().(*msgTaskEvent)
	m.at, m.ev = at, ev
	r.mb.Put(m)
}

type msgInitDone struct {
	vs     *vertexState
	source string
	res    *runtime.InitializerResult
	err    error
}

type msgCommitDone struct {
	vs  *vertexState
	err error
}

type msgNodeFailed struct {
	node    cluster.NodeID
	planned bool // decommission (drain), not a crash
}

type msgTick struct{}

// msgKill aborts the run. cause, when set, is wrapped into the result's
// Err so callers can classify the kill with errors.Is (deadline kills
// carry ErrDeadlineExceeded).
type msgKill struct {
	reason string
	cause  error
}

// ErrDeadlineExceeded marks a DAG killed because its per-submission
// deadline (Submit's WithDeadline option) elapsed before completion.
var ErrDeadlineExceeded = errors.New("am: dag deadline exceeded")

// dagRun executes one DAG. A single dispatcher goroutine consumes the
// mailbox and owns all mutable state — the state machines never need
// locks, mirroring the event-driven AM of §3.3.
type dagRun struct {
	session *Session
	cfg     Config
	d       *dag.DAG
	id      string // unique run id (shuffle namespace, checkpoint key)

	mb       *mailbox.Mailbox[amMsg]
	vertices map[string]*vertexState
	topo     []string
	edges    []*edgeState
	inEdges  map[string][]*edgeState
	outEdges map[string][]*edgeState

	counters *metrics.Counters
	trace    *metrics.Trace
	token    security.Token

	// deadNodes records nodes this run has seen fail or drain. A genuine
	// attempt error arriving from a node already in here is downgraded to
	// a casualty: the failure raced the node loss in the mailbox and must
	// not count toward MaxTaskAttempts or node health.
	deadNodes map[string]bool

	// lc is the run-level machine: DAGRunning until dEvSucceed / dEvFail /
	// dEvKill moves it to its terminal status. The old `finished bool` is
	// exactly lc.Terminal().
	lc             *fsm.Machine[*dagRun, DAGStatus, dEvent]
	started        time.Time
	result         DAGResult
	done           chan struct{}
	pendingCommits int
	tickerStop     chan struct{}
	// backlogMax is the dispatcher-mailbox depth high-water mark, sampled
	// on ticks (AM_MAILBOX_BACKLOG_MAX gauge + AM_BACKLOG journal events).
	backlogMax int64

	// deadline, when positive, bounds the run's wall-clock duration: a
	// timer goroutine posts a deadline kill if done has not closed first
	// (Submit's WithDeadline option).
	deadline time.Duration

	// recovered checkpoint to apply at start (nil for fresh runs).
	recovered *checkpoint
}

// tl returns the session's timeline journal (nil-safe: recording on a nil
// journal is a no-op, so call sites never guard).
func (r *dagRun) tl() *timeline.Journal { return r.cfg.Timeline }

// clock reads the session clock (Config.Clock, defaulted to time.Now).
// Every AM timestamp — attempt spans, scheduler waits, speculation math,
// run duration — is measured against it so fake-clock tests see coherent
// durations.
func (r *dagRun) clock() time.Time {
	if r.cfg.Clock != nil {
		return r.cfg.Clock()
	}
	return time.Now()
}

// isFinished reports whether the run reached a terminal status.
func (r *dagRun) isFinished() bool { return r.lc.Terminal() }

func newDAGRun(s *Session, d *dag.DAG, id string) (*dagRun, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	topo, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	r := &dagRun{
		session:   s,
		cfg:       s.cfg,
		d:         d,
		id:        id,
		mb:        mailbox.New[amMsg](),
		vertices:  make(map[string]*vertexState),
		inEdges:   make(map[string][]*edgeState),
		outEdges:  make(map[string][]*edgeState),
		counters:  metrics.NewCounters(),
		trace:     metrics.NewTrace(),
		deadNodes: make(map[string]bool),
		done:      make(chan struct{}),
	}
	r.lc = newDAGMachine(r)
	for depth, name := range topo {
		r.vertices[name] = newVertexState(r, d.Vertex(name), depth)
	}
	r.topo = topo
	for _, e := range d.Edges {
		es := &edgeState{
			e:    e,
			from: r.vertices[e.From],
			to:   r.vertices[e.To],
			srcs: make(map[int]*srcMovements),
		}
		r.edges = append(r.edges, es)
		r.inEdges[e.To] = append(r.inEdges[e.To], es)
		r.outEdges[e.From] = append(r.outEdges[e.From], es)
	}
	return r, nil
}

// start launches the dispatcher and background ticker.
func (r *dagRun) start() {
	r.started = r.clock()
	if a := r.session.plat.Authority; a != nil {
		r.token = a.Issue(r.id)
	}
	r.tickerStop = make(chan struct{})
	interval := r.cfg.SpeculationInterval
	if r.cfg.DeadlockCheckInterval < interval {
		interval = r.cfg.DeadlockCheckInterval
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.tickerStop:
				return
			case <-t.C:
				r.mb.Put(msgTick{})
			}
		}
	}()
	if r.deadline > 0 {
		go func() {
			t := time.NewTimer(r.deadline)
			defer t.Stop()
			select {
			case <-r.done:
				// Completed first; the mailbox may already be abandoned.
			case <-t.C:
				r.mb.Put(msgKill{
					reason: fmt.Sprintf("deadline %v exceeded", r.deadline),
					cause:  ErrDeadlineExceeded,
				})
			}
		}()
	}
	go r.loop()
}

func (r *dagRun) loop() {
	r.bootstrap()
	// Drain the mailbox in batches: one lock round-trip per backlog, not
	// per message. Messages left in the batch after a terminal transition
	// are dropped, exactly as the old per-message loop left them queued.
	var batch []amMsg
	for !r.isFinished() {
		var ok bool
		batch, ok = r.mb.GetAll(batch)
		if !ok {
			return
		}
		for i, m := range batch {
			batch[i] = nil
			r.dispatch(m)
			if r.isFinished() {
				break
			}
		}
	}
	// Terminal: stop background work and release everything still held.
	close(r.tickerStop)
	r.teardown()
	// DAGFinished is the one lifecycle event not emitted by a transition
	// observer: it is a span closer needing the post-teardown duration.
	r.result.Duration = r.clock().Sub(r.started)
	r.result.Counters = r.counters
	r.result.Trace = r.trace
	r.tl().Record(timeline.Event{
		Type: timeline.DAGFinished, DAG: r.id,
		Info: r.result.Status.String(), Dur: r.result.Duration,
	})
	r.session.runFinished(r)
	close(r.done)
}

func (r *dagRun) dispatch(m amMsg) {
	switch msg := m.(type) {
	case *msgAssigned:
		at, pc := msg.at, msg.pc
		*msg = msgAssigned{}
		assignedPool.Put(msg)
		r.onAssigned(at, pc)
	case *msgAttemptDone:
		at, err := msg.at, msg.err
		*msg = msgAttemptDone{}
		attemptDonePool.Put(msg)
		r.onAttemptDone(at, err)
	case *msgTaskEvent:
		at, ev := msg.at, msg.ev
		*msg = msgTaskEvent{}
		taskEventPool.Put(msg)
		r.onTaskEvent(at, ev)
	case msgInitDone:
		r.onInitDone(msg.vs, msg.source, msg.res, msg.err)
	case msgCommitDone:
		r.onCommitDone(msg.vs, msg.err)
	case msgNodeFailed:
		r.onNodeFailed(msg.node, msg.planned)
	case msgTick:
		r.onTick()
	case msgKill:
		if msg.cause != nil {
			r.fail(DAGKilled, fmt.Errorf("am: dag %s killed: %s: %w", r.id, msg.reason, msg.cause))
		} else {
			r.fail(DAGKilled, fmt.Errorf("am: dag %s killed: %s", r.id, msg.reason))
		}
	case msgParQuery:
		r.onParQuery(msg)
	}
}

// bootstrap applies any recovered checkpoint, then initializes vertices:
// runs data-source initializers, resolves static parallelism, and starts
// whatever is ready.
func (r *dagRun) bootstrap() {
	if r.recovered != nil {
		r.applyCheckpoint(r.recovered)
	} else {
		r.tl().Record(timeline.Event{Type: timeline.DAGSubmitted, DAG: r.id, Info: r.d.Name})
		for _, es := range r.edges {
			r.tl().Record(timeline.Event{
				Type: timeline.EdgeDeclared, DAG: r.id,
				Vertex: es.e.From, Info: es.e.To,
			})
		}
	}
	for _, name := range r.topo {
		vs := r.vertices[name]
		if !vs.lc.In(vNew) {
			continue
		}
		if n := len(initializers(vs.v)); n > 0 && !r.vertexRestored(vs) {
			vs.lc.Fire(vEvInitStart)
			vs.initsOutstanding = n
			r.runInitializers(vs)
			continue
		}
		r.tryInitVertex(vs)
	}
	r.advance()
}

// vertexRestored reports whether a checkpoint fully restored this vertex.
func (r *dagRun) vertexRestored(vs *vertexState) bool {
	return vs.lc.In(vSucceeded)
}

func initializers(v *dag.Vertex) []dag.DataSource {
	var out []dag.DataSource
	for _, s := range v.Sources {
		if !s.Initializer.IsZero() {
			out = append(out, s)
		}
	}
	return out
}

// runInitializers spawns one goroutine per initializer (§3.5) — they may
// block waiting for InputInitializerEvents from other vertices (dynamic
// partition pruning) while the rest of the DAG proceeds.
func (r *dagRun) runInitializers(vs *vertexState) {
	for _, src := range initializers(vs.v) {
		src := src
		mbx := mailbox.New[event.InputInitializerEvent]()
		vs.initEvents[src.Name] = mbx
		ictx := &runtime.InitializerContext{
			DAG:          r.id,
			Vertex:       vs.v.Name,
			Source:       src.Name,
			Payload:      src.Initializer.Payload,
			FS:           r.session.plat.FS,
			ClusterNodes: nodeNames(r.session.plat.RM.Nodes()),
			Events:       mbx,
			Stop:         r.done,
			VertexParallelism: func(name string) int {
				return r.queryParallelism(name)
			},
		}
		go func() {
			init, err := runtime.NewInitializer(src.Initializer)
			if err != nil {
				r.mb.Put(msgInitDone{vs: vs, source: src.Name, err: err})
				return
			}
			res, err := init.Run(ictx)
			r.mb.Put(msgInitDone{vs: vs, source: src.Name, res: res, err: err})
		}()
	}
}

func nodeNames(ids []cluster.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// queryParallelism blocks until the named vertex's parallelism is decided
// (used by initializers awaiting a source vertex's fan-out).
func (r *dagRun) queryParallelism(name string) int {
	reply := make(chan int, 1)
	r.mb.Put(msgParQuery{name: name, reply: reply})
	select {
	case p := <-reply:
		return p
	case <-r.done:
		return -1
	}
}

type msgParQuery struct {
	name  string
	reply chan int
}

// onInitDone integrates an initializer's result.
func (r *dagRun) onInitDone(vs *vertexState, source string, res *runtime.InitializerResult, err error) {
	if r.isFinished() || !vs.lc.In(vIniting) {
		return
	}
	if err != nil {
		r.fail(DAGFailed, fmt.Errorf("am: initializer %s/%s: %w", vs.v.Name, source, err))
		return
	}
	if res != nil {
		if res.Parallelism > 0 {
			if vs.parallelism > 0 && vs.parallelism != res.Parallelism && len(vs.rootPayloads) > 0 {
				r.fail(DAGFailed, fmt.Errorf("am: initializers of %s disagree on parallelism (%d vs %d)",
					vs.v.Name, vs.parallelism, res.Parallelism))
				return
			}
			vs.parallelism = res.Parallelism
		}
		vs.rootPayloads[source] = res.PerTaskPayload
		if len(res.LocationHints) > 0 {
			vs.locationHints = res.LocationHints
		}
	}
	vs.initsOutstanding--
	if vs.initsOutstanding == 0 {
		r.tryInitVertex(vs)
		r.advance()
	}
}

// tryInitVertex moves a vertex to vInited once its parallelism is known,
// creating its task states.
func (r *dagRun) tryInitVertex(vs *vertexState) {
	if !vs.lc.In(vNew, vIniting) {
		return
	}
	if vs.parallelism < 0 {
		// A 1-1 edge propagates parallelism from an inited source.
		for _, es := range r.inEdges[vs.v.Name] {
			if es.e.Property.Movement == dag.OneToOne && es.from.parallelism > 0 &&
				es.from.lc.In(vInited, vRunning, vSucceeded) {
				vs.parallelism = es.from.parallelism
				break
			}
		}
	}
	if vs.parallelism < 0 {
		return // not decidable yet
	}
	// Tasks exist before the transition: the VertexInited observer reads
	// the decided parallelism.
	vs.tasks = make([]*taskState, vs.parallelism)
	for i := range vs.tasks {
		vs.tasks[i] = newTaskState(r, vs, i)
	}
	vs.lc.Fire(vEvInited)
	// Answer any blocked initializer queries for this vertex.
	for _, w := range vs.parWaiters {
		w <- vs.parallelism
	}
	vs.parWaiters = nil
}

// advance drives global progress: propagate parallelism, build edge
// managers, and start vertices whose in/out geometry is complete.
func (r *dagRun) advance() {
	if r.isFinished() {
		return
	}
	// Repeated passes: 1-1 propagation can cascade.
	for changed := true; changed; {
		changed = false
		for _, name := range r.topo {
			vs := r.vertices[name]
			if vs.lc.In(vNew) || (vs.lc.In(vIniting) && vs.initsOutstanding == 0) {
				before := vs.lc.State()
				r.tryInitVertex(vs)
				if vs.lc.State() != before {
					changed = true
				}
			}
		}
	}
	// Build edge managers where both endpoints are inited.
	for _, es := range r.edges {
		if es.mgr != nil {
			continue
		}
		if vertexReady(es.from) && vertexReady(es.to) {
			if err := r.buildEdgeManager(es, es.to.parallelism); err != nil {
				r.fail(DAGFailed, err)
				return
			}
		}
	}
	// Start vertices: inited, with every edge manager in place.
	for _, name := range r.topo {
		vs := r.vertices[name]
		if !vs.lc.In(vInited) {
			continue
		}
		if !r.edgesReady(vs) {
			continue
		}
		r.startVertex(vs)
		if r.isFinished() {
			return
		}
	}
	r.maybeFinish()
}

func vertexReady(vs *vertexState) bool {
	return vs.lc.In(vInited, vRunning, vSucceeded) && vs.parallelism > 0
}

// edgesReady gates vertex start. Every in-edge needs its routing table;
// out-edges only gate when the producer's physical output count depends on
// the destination's parallelism (scatter-gather, custom). Broadcast and
// one-to-one producers emit a single physical output, so they may start —
// and finish — before the consumer is even configured (e.g. a dimension
// scan broadcasting into a fact vertex whose pruning initializer is still
// waiting for that very scan's events, §3.5).
func (r *dagRun) edgesReady(vs *vertexState) bool {
	for _, es := range r.inEdges[vs.v.Name] {
		if es.mgr == nil {
			return false
		}
	}
	for _, es := range r.outEdges[vs.v.Name] {
		if es.mgr == nil && !singleOutputMovement(es.e.Property.Movement) {
			return false
		}
	}
	return true
}

func singleOutputMovement(m dag.MovementType) bool {
	return m == dag.Broadcast || m == dag.OneToOne
}

// buildEdgeManager (re)builds the routing table of an edge; destPar may be
// smaller than baseParts after auto-reduce.
func (r *dagRun) buildEdgeManager(es *edgeState, destPar int) error {
	if es.baseParts == 0 {
		es.baseParts = destPar
	}
	mgr, err := dag.NewEdgeManager(es.e.Property, dag.EdgeContext{
		SrcParallelism:  es.from.parallelism,
		DestParallelism: destPar,
		BasePartitions:  es.baseParts,
	})
	if err != nil {
		return fmt.Errorf("am: edge %s->%s: %w", es.e.From, es.e.To, err)
	}
	es.mgr = mgr
	return nil
}

// startVertex transitions to vRunning and hands control to the vertex
// manager.
func (r *dagRun) startVertex(vs *vertexState) {
	vs.lc.Fire(vEvStart)
	if vs.completed == vs.parallelism {
		// Fully restored from checkpoint.
		r.vertexSucceeded(vs)
		return
	}
	mgr, err := newVertexManager(vs.v.Manager)
	if err != nil {
		r.fail(DAGFailed, err)
		return
	}
	vs.manager = mgr
	ctx := &vmContext{run: r, vs: vs}
	if err := mgr.Initialize(ctx); err != nil {
		r.fail(DAGFailed, fmt.Errorf("am: vertex manager of %s: %w", vs.v.Name, err))
		return
	}
	vs.managerStarted = true
	mgr.OnVertexStarted()
	// Flush buffered stats events and completion notifications that
	// happened before the manager existed.
	for _, ev := range vs.pendingVM {
		mgr.OnVertexManagerEvent(ev)
	}
	vs.pendingVM = nil
}

// fail terminates the DAG with the given terminal status.
func (r *dagRun) fail(status DAGStatus, err error) {
	if r.isFinished() {
		return
	}
	ev := dEvFail
	if status == DAGKilled {
		ev = dEvKill
	}
	r.lc.Fire(ev)
	r.result = DAGResult{Status: r.lc.State(), Err: err}
}

// maybeFinish completes the DAG when every vertex succeeded and all sink
// commits are done.
func (r *dagRun) maybeFinish() {
	if r.isFinished() || r.pendingCommits > 0 {
		return
	}
	for _, vs := range r.vertices {
		if !vs.lc.In(vSucceeded) {
			return
		}
	}
	r.lc.Fire(dEvSucceed)
	r.result = DAGResult{Status: DAGSucceeded}
	// Intermediate data is no longer needed.
	r.session.plat.Shuffle.DeleteDAG(r.id)
	r.session.plat.FS.Delete(r.checkpointPath())
}

// teardown cancels outstanding requests and frees containers of running
// attempts after a terminal transition.
func (r *dagRun) teardown() {
	for _, vs := range r.vertices {
		for _, ts := range vs.tasks {
			for _, at := range ts.attempts {
				switch {
				case at.lc.In(aWaiting):
					at.lc.Fire(aEvKill)
					if at.req != nil {
						r.session.sched.cancel(at.req)
					}
				case at.lc.In(aRunning):
					// The observer closes the span: a teardown-killed
					// running attempt journals ATTEMPT_FINISHED/KILLED.
					at.lc.Fire(aEvKill)
					if at.pc != nil {
						r.session.sched.discard(at.pc)
					}
				}
				if at.mbox != nil {
					at.mbox.Close()
				}
			}
		}
		for _, mbx := range vs.initEvents {
			mbx.Close()
		}
		for _, w := range vs.parWaiters {
			close(w)
		}
		vs.parWaiters = nil
	}
	// Sweep per-container object registries of this DAG and revoke its
	// data-plane credential: zombie attempts can no longer publish or read
	// intermediate data (§4.3).
	r.session.sched.sweepRegistries(r.id)
	if a := r.session.plat.Authority; a != nil {
		a.Revoke(r.id)
	}
}

func (r *dagRun) onParQuery(q msgParQuery) {
	vs, ok := r.vertices[q.name]
	if !ok {
		q.reply <- -1
		return
	}
	if vs.parallelism > 0 && !vs.lc.In(vNew, vIniting) {
		q.reply <- vs.parallelism
		return
	}
	vs.parWaiters = append(vs.parWaiters, q.reply)
}
