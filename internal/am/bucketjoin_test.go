package am

import (
	"fmt"
	"strconv"
	"testing"

	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/plugin"
	"tez/internal/runtime"
)

// bucketProducer writes a deterministic, skewed bucket layout through a
// range partitioner: bucket b receives weights[b] rows per producer task.
type bucketProducer struct{ ctx *runtime.Context }

var bucketWeights = []int{40, 1, 1, 1, 40, 1, 1, 1} // two heavy, six tiny

func (p *bucketProducer) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *bucketProducer) Run(_ map[string]runtime.Input, out map[string]runtime.Output) error {
	w, err := out["join"].Writer()
	if err != nil {
		return err
	}
	kw := w.(runtime.KVWriter)
	for b, n := range bucketWeights {
		for i := 0; i < n; i++ {
			key := []byte(fmt.Sprintf("k%d", b))
			if err := kw.Write(key, []byte(strconv.Itoa(i))); err != nil {
				return err
			}
		}
	}
	return nil
}
func (p *bucketProducer) Close() error { return nil }

// bucketConsumer counts the rows of every group it was assigned and
// reports how many buckets fed it (via the grouped reader's key count).
type bucketConsumer struct{ ctx *runtime.Context }

func (p *bucketConsumer) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *bucketConsumer) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	rd, err := in["producer"].Reader()
	if err != nil {
		return err
	}
	g := rd.(runtime.GroupedKVReader)
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	kw := w.(runtime.KVWriter)
	for g.Next() {
		if err := kw.Write(g.Key(), []byte(strconv.Itoa(len(g.Values())))); err != nil {
			return err
		}
	}
	return g.Err()
}
func (p *bucketConsumer) Close() error { return nil }

// TestDynamicallyPartitionedHashJoin exercises §5.2's flagship custom-edge
// pattern end to end: producers bucket into 8 range partitions with very
// skewed sizes; the BucketGroupingVertexManager packs the buckets into
// balanced groups at runtime, shrinks the consumer vertex, and installs
// the grouped-shuffle custom edge manager — and the join-side counts come
// out exactly right.
func TestDynamicallyPartitionedHashJoin(t *testing.T) {
	runtime.RegisterProcessor("amtest.bucket_prod", func() runtime.Processor { return &bucketProducer{} })
	runtime.RegisterProcessor("amtest.bucket_cons", func() runtime.Processor { return &bucketConsumer{} })
	plat := newTestPlatform(4)
	defer plat.Stop()

	const producers = 2
	// Range points kN-boundaries so bucket b == key "k<b>".
	var points [][]byte
	for b := 1; b < len(bucketWeights); b++ {
		points = append(points, []byte(fmt.Sprintf("k%d", b-1)))
	}

	d := dag.New("dphj")
	prod := d.AddVertex("producer", plugin.Desc("amtest.bucket_prod", nil), producers)
	cons := d.AddVertex("join", plugin.Desc("amtest.bucket_cons", nil), len(bucketWeights))
	cons.Manager = plugin.Desc(BucketGroupingVertexManagerName, BucketGroupingConfig{
		// Each heavy bucket (~40 rows * 2 producers * ~10B) must land in
		// its own group; tiny buckets pack together.
		TargetBytesPerTask: 600,
	})
	cons.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/dphj"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/dphj"}),
	}}
	d.Connect(prod, cons, dag.EdgeProperty{
		Movement: dag.CustomMovement,
		Manager:  plugin.Desc(library.GroupedShuffleEdgeManagerName, nil),
		Output: plugin.Desc(library.OrderedPartitionedOutputName, library.OrderedPartitionedConfig{
			Partitioner: library.PartitionerSpec{Kind: "range", Points: points},
		}),
		Input: plugin.Desc(library.OrderedGroupedInputName, nil),
	})

	res, err := RunDAG(plat, Config{Name: "dphj", DisableAutoParallelism: true}, d)
	if err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	if res.Counters.Get("PARALLELISM_RECONFIGURED") == 0 {
		t.Fatal("vertex was never reconfigured")
	}

	// Every key's total must be weights[b] × producers.
	counts := readCounts(t, plat, "/out/dphj")
	for b, wgt := range bucketWeights {
		k := fmt.Sprintf("k%d", b)
		if counts[k] != wgt*producers {
			t.Fatalf("bucket %s = %d, want %d (all: %v)", k, counts[k], wgt*producers, counts)
		}
	}
	// The consumer ran fewer tasks than the 8 submitted: buckets were
	// grouped. Exactly how many groups depends on sizes; it must be
	// between 2 (the heavies) and 7.
	joins := 0
	for _, rec := range res.Trace.Records() {
		if rec.Vertex == "join" && rec.Outcome == "SUCCEEDED" {
			joins++
		}
	}
	if joins < 2 || joins >= len(bucketWeights) {
		t.Fatalf("join tasks = %d, want grouped (2..7)", joins)
	}
}

func TestPackPartitions(t *testing.T) {
	groups := library.PackPartitions([]int64{10, 10, 100, 10, 10, 100}, 40)
	// Sequential greedy: [0,1] [2] [3,4] [5].
	want := [][]int{{0, 1}, {2}, {3, 4}, {5}}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v", groups)
	}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
			}
		}
	}
	// Degenerates.
	if g := library.PackPartitions(nil, 10); len(g) != 1 {
		t.Fatalf("empty input groups = %v", g)
	}
	if g := library.PackPartitions([]int64{5}, 0); len(g) != 1 {
		t.Fatalf("zero target groups = %v", g)
	}
}
