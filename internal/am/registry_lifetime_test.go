package am

import (
	"testing"
	"time"

	"tez/internal/dag"
	"tez/internal/plugin"
	"tez/internal/runtime"
)

// regProbe exercises ObjectRegistry lifetimes end-to-end: every run first
// probes for the entries a previous task may have cached, then caches one
// entry per lifetime. Counter deltas between DAGs reveal what the
// framework preserved and what it swept.
type regProbe struct{ ctx *runtime.Context }

func (p *regProbe) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }

func (p *regProbe) Run(map[string]runtime.Input, map[string]runtime.Output) error {
	reg := p.ctx.Services.Registry
	if reg == nil {
		return nil
	}
	if _, ok := reg.Get(p.ctx.Meta, "probe.session"); ok {
		p.ctx.Services.Counters.Add("PROBE_SESSION_HITS", 1)
	}
	if _, ok := reg.Get(p.ctx.Meta, "probe.dag"); ok {
		p.ctx.Services.Counters.Add("PROBE_DAG_HITS", 1)
	}
	reg.Add(runtime.LifetimeSession, p.ctx.Meta, "probe.session", 1)
	reg.Add(runtime.LifetimeDAG, p.ctx.Meta, "probe.dag", 1)
	return nil
}

func (p *regProbe) Close() error { return nil }

// TestRegistryLifetimesAcrossSessionDAGs: in one session with container
// reuse, a session-lifetime entry cached by DAG 1 must be visible to DAG 2
// in the same container, while a DAG-lifetime entry must have been swept
// when DAG 1 finished.
func TestRegistryLifetimesAcrossSessionDAGs(t *testing.T) {
	runtime.RegisterProcessor("amtest.regprobe", func() runtime.Processor { return &regProbe{} })
	plat := newTestPlatform(1) // one node → the reused container is the only home
	defer plat.Stop()
	s := NewSession(plat, Config{Name: "reglife", ContainerIdleRelease: 2 * time.Second})
	defer s.Close()

	probeDAG := func(name string) *dag.DAG {
		d := dag.New(name)
		d.AddVertex("probe", plugin.Desc("amtest.regprobe", nil), 1)
		return d
	}

	res1, err := s.Run(probeDAG("probe1"))
	if err != nil || res1.Status != DAGSucceeded {
		t.Fatalf("dag1: %v %v", res1.Status, err)
	}
	if res1.Counters.Get("PROBE_SESSION_HITS") != 0 || res1.Counters.Get("PROBE_DAG_HITS") != 0 {
		t.Fatal("first DAG saw entries in a fresh registry")
	}

	res2, err := s.Run(probeDAG("probe2"))
	if err != nil || res2.Status != DAGSucceeded {
		t.Fatalf("dag2: %v %v", res2.Status, err)
	}
	if got := res2.Counters.Get("PROBE_SESSION_HITS"); got != 1 {
		t.Fatalf("session-lifetime entry did not survive across DAGs (hits=%d)", got)
	}
	if got := res2.Counters.Get("PROBE_DAG_HITS"); got != 0 {
		t.Fatalf("DAG-lifetime entry leaked across DAGs (hits=%d)", got)
	}
	if _, reused := s.SchedulerStats(); reused == 0 {
		t.Fatal("no container reuse — the test proved nothing")
	}
}
