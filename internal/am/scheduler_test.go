package am

import (
	"sync"
	"testing"
	"time"

	"tez/internal/cluster"
	"tez/internal/platform"
)

// newTestScheduler builds a scheduler against a real RM. With zero nodes
// the RM can never allocate, so pending-request counts are deterministic.
func newTestScheduler(t *testing.T, nodes int) (*platform.Platform, *cluster.Application, *scheduler) {
	t.Helper()
	plat := platform.New(platform.Fast(nodes))
	app := plat.RM.Submit("sched-test")
	sched := newScheduler(Config{}.withDefaults(), app, nil)
	t.Cleanup(func() {
		sched.close()
		app.Unregister()
		plat.Stop()
	})
	return plat, app, sched
}

// Regression: cancel racing ahead of submit must not leak an RM request.
// The old submit never looked at req.cancelled, so a request cancelled
// before (or during) submission was issued to the RM and never withdrawn.
func TestSchedulerCancelBeforeSubmitLeavesNoRequest(t *testing.T) {
	_, app, sched := newTestScheduler(t, 0)

	req := &taskRequest{assign: func(pc *pooledContainer) { t.Error("assign fired for cancelled request") }}
	sched.cancel(req)
	sched.submit(req)
	if n := app.PendingRequests(); n != 0 {
		t.Fatalf("cancelled-then-submitted request leaked: %d pending at RM", n)
	}
}

// Regression: cancel landing in submit's window between queueing the
// request and issuing it to the RM (deterministic via the pre-request
// hook). submit must notice and withdraw the request it then issues.
func TestSchedulerCancelDuringSubmitWithdrawsRequest(t *testing.T) {
	_, app, sched := newTestScheduler(t, 0)

	req := &taskRequest{assign: func(pc *pooledContainer) { t.Error("assign fired for cancelled request") }}
	sched.testHookPreRequest = func(r *taskRequest) { sched.cancel(r) }
	sched.submit(req)
	if n := app.PendingRequests(); n != 0 {
		t.Fatalf("request cancelled mid-submit leaked: %d pending at RM", n)
	}
	sched.mu.Lock()
	pending := sched.livePending
	sched.mu.Unlock()
	if pending != 0 {
		t.Fatalf("scheduler still tracks %d pending requests", pending)
	}
}

// Stress: concurrent submit/cancel pairs under the race detector. Every
// request is cancelled, so afterwards the RM must hold zero live requests.
func TestSchedulerSubmitCancelStress(t *testing.T) {
	_, app, sched := newTestScheduler(t, 0)

	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				req := &taskRequest{priority: w, assign: func(pc *pooledContainer) {}}
				done := make(chan struct{})
				go func() { sched.cancel(req); close(done) }()
				sched.submit(req)
				<-done
			}
		}(w)
	}
	wg.Wait()
	if n := app.PendingRequests(); n != 0 {
		t.Fatalf("%d container requests leaked at the RM", n)
	}
}

// Regression: a container-launch failure (node died between allocation
// and launch) must re-submit the task request rather than strand it —
// the request was already removed from pending when launch failed.
func TestSchedulerLaunchFailureResubmitsRequest(t *testing.T) {
	plat, app, sched := newTestScheduler(t, 3)

	var once sync.Once
	sched.testHookPreLaunch = func(c *cluster.Container) {
		// Fail the first allocated container's node so its Launch errors.
		once.Do(func() { plat.FailNode(c.Node()) })
	}

	assigned := make(chan *pooledContainer, 1)
	req := &taskRequest{assign: func(pc *pooledContainer) { assigned <- pc }}

	// Drain RM events into the scheduler, as the session event loop would.
	go func() {
		for {
			ev, ok := app.Events().Get()
			if !ok {
				return
			}
			if e, isAlloc := ev.(cluster.AllocatedEvent); isAlloc {
				sched.onAllocated(e.Container, e.Request)
			}
		}
	}()

	sched.submit(req)
	select {
	case pc := <-assigned:
		sched.release(pc, false)
	case <-time.After(5 * time.Second):
		t.Fatal("task request stranded after container-launch failure")
	}
}
