package am

import (
	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/library"
	"tez/internal/plugin"
)

// BucketGroupingVertexManagerName implements the control half of §5.2's
// Dynamically Partitioned Hash Join: producers bucket their output into
// many partitions and report per-partition sizes; once every producer has
// reported, this manager packs the buckets into balanced groups, shrinks
// the vertex to one task per group, and installs the grouped-shuffle
// custom edge (library.GroupedShuffleEdgeManagerName) that routes each
// bucket set to its consumer — all in one validated reconfiguration.
const BucketGroupingVertexManagerName = "tez.bucket_grouping_vertex_manager"

func init() {
	RegisterVertexManager(BucketGroupingVertexManagerName, func() VertexManager {
		return &BucketGroupingVertexManager{}
	})
}

// BucketGroupingConfig is the manager's payload.
type BucketGroupingConfig struct {
	// TargetBytesPerTask is the packing target for one consumer's buckets.
	TargetBytesPerTask int64
}

// BucketGroupingVertexManager groups runtime-sized buckets into consumer
// tasks.
type BucketGroupingVertexManager struct {
	ctx     VertexManagerContext
	cfg     BucketGroupingConfig
	started bool
	done    bool

	// sizes accumulates per-partition bytes across all custom in-edge
	// producers; reported tracks which producer tasks have sent stats.
	sizes    []int64
	reported map[string]bool
}

// Initialize decodes the packing target.
func (m *BucketGroupingVertexManager) Initialize(ctx VertexManagerContext) error {
	m.ctx = ctx
	m.reported = map[string]bool{}
	if len(ctx.Payload()) > 0 {
		if err := plugin.Decode(ctx.Payload(), &m.cfg); err != nil {
			return err
		}
	}
	if m.cfg.TargetBytesPerTask <= 0 {
		m.cfg.TargetBytesPerTask = 32 * 1024
	}
	return nil
}

// OnVertexStarted arms the manager.
func (m *BucketGroupingVertexManager) OnVertexStarted() { m.started = true; m.maybeGo() }

// OnSourceTaskCompleted re-evaluates readiness.
func (m *BucketGroupingVertexManager) OnSourceTaskCompleted(string, int) { m.maybeGo() }

// OnVertexManagerEvent accumulates per-bucket sizes.
func (m *BucketGroupingVertexManager) OnVertexManagerEvent(ev event.VertexManagerEvent) {
	key := ev.SrcVertex + "/" + itoa(ev.SrcTask)
	if m.reported[key] {
		return
	}
	m.reported[key] = true
	var stats library.VMStats
	if err := plugin.Decode(ev.Payload, &stats); err != nil {
		return
	}
	if len(m.sizes) < len(stats.PartitionSizes) {
		grown := make([]int64, len(stats.PartitionSizes))
		copy(grown, m.sizes)
		m.sizes = grown
	}
	for i, s := range stats.PartitionSizes {
		m.sizes[i] += s
	}
	m.maybeGo()
}

// customSources lists the in-edges this manager owns.
func (m *BucketGroupingVertexManager) customSources() []string {
	var out []string
	for _, s := range m.ctx.SourceVertices() {
		if m.ctx.SourceMovement(s) == dag.CustomMovement {
			out = append(out, s)
		}
	}
	return out
}

// maybeGo reconfigures and schedules once every custom-edge producer task
// has completed (all bucket sizes are then known exactly).
func (m *BucketGroupingVertexManager) maybeGo() {
	if m.done || !m.started {
		return
	}
	srcs := m.customSources()
	if len(srcs) == 0 {
		return
	}
	for _, s := range srcs {
		p := m.ctx.SourceVertexParallelism(s)
		if p < 0 || m.ctx.SourceTasksCompleted(s) < p {
			return
		}
	}
	if len(m.sizes) == 0 {
		return
	}
	m.done = true

	groups := library.PackPartitions(m.sizes, m.cfg.TargetBytesPerTask)
	managers := map[string]plugin.Descriptor{}
	for _, s := range srcs {
		managers[s] = plugin.Desc(library.GroupedShuffleEdgeManagerName,
			library.GroupedShuffleConfig{Groups: groups})
	}
	if err := m.ctx.SetParallelismWithEdges(len(groups), managers); err != nil {
		return
	}
	tasks := make([]int, len(groups))
	for i := range tasks {
		tasks[i] = i
	}
	m.ctx.ScheduleTasks(tasks)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
