package am

import (
	"fmt"
	"sort"

	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/timeline"
)

// The AM periodically checkpoints its state; if the node running the AM
// fails, YARN restarts it elsewhere and the AM recovers from the
// checkpoint (§4.3). We checkpoint after every vertex completion (and
// after every sink commit): completed vertices are restored — their
// shuffle outputs are still on the cluster, which survives AM death — and
// unfinished vertices re-run.

type taskCheckpoint struct {
	Attempt int
	Node    string
}

type vertexCheckpoint struct {
	Parallelism int
	Tasks       []taskCheckpoint
	Committed   bool
}

type edgeCheckpoint struct {
	From, To  string
	BaseParts int
	Movements []event.DataMovement
}

type checkpoint struct {
	RunID    string
	DAGName  string
	Vertices map[string]vertexCheckpoint
	Edges    []edgeCheckpoint
	// Timeline is the run's journal stream at checkpoint time. On recovery
	// it is Imported into the new AM's journal, which dedupes by sequence
	// number — the merged history is coherent across the crash.
	Timeline []timeline.Event
}

func (r *dagRun) checkpointPath() string {
	dir := r.cfg.CheckpointPath
	if dir == "" {
		dir = "/_tez_checkpoints"
	}
	return fmt.Sprintf("%s/%s", dir, r.d.Name)
}

// saveCheckpoint snapshots completed vertices and their movement history.
func (r *dagRun) saveCheckpoint() {
	cp := checkpoint{
		RunID:    r.id,
		DAGName:  r.d.Name,
		Vertices: map[string]vertexCheckpoint{},
	}
	for name, vs := range r.vertices {
		if !vs.lc.In(vSucceeded) {
			continue
		}
		vc := vertexCheckpoint{Parallelism: vs.parallelism, Committed: vs.commitComplete}
		for _, ts := range vs.tasks {
			tc := taskCheckpoint{}
			if ts.winner != nil {
				tc.Attempt = ts.winner.id
				tc.Node = ts.winner.node
			} else {
				tc.Attempt = ts.restoredAttempt
				tc.Node = ts.restoredNode
			}
			vc.Tasks = append(vc.Tasks, tc)
		}
		cp.Vertices[name] = vc
	}
	for _, es := range r.edges {
		if _, ok := cp.Vertices[es.e.From]; !ok {
			continue
		}
		ec := edgeCheckpoint{From: es.e.From, To: es.e.To, BaseParts: es.baseParts}
		// Persist each source's delivered stream in ascending task order
		// (and emission order within a task) so recovery replays the same
		// increment sequence a live consumer saw.
		srcTasks := make([]int, 0, len(es.srcs))
		for srcTask := range es.srcs {
			srcTasks = append(srcTasks, srcTask)
		}
		sort.Ints(srcTasks)
		for _, srcTask := range srcTasks {
			ec.Movements = append(ec.Movements, es.srcs[srcTask].deliveredMovements()...)
		}
		cp.Edges = append(cp.Edges, ec)
	}
	cp.Timeline = r.tl().DAGEvents(r.id)
	data := plugin.MustEncode(cp)
	fs := r.session.plat.FS
	path := r.checkpointPath()
	fs.Delete(path)
	_ = fs.WriteFile(path, "", data)
}

// loadCheckpoint reads a DAG's checkpoint, if any.
func loadCheckpoint(s *Session, dagName string) (*checkpoint, bool) {
	dir := s.cfg.CheckpointPath
	if dir == "" {
		dir = "/_tez_checkpoints"
	}
	path := fmt.Sprintf("%s/%s", dir, dagName)
	data, err := s.plat.FS.ReadFile(path, "")
	if err != nil {
		return nil, false
	}
	var cp checkpoint
	if err := plugin.Decode(data, &cp); err != nil {
		return nil, false
	}
	return &cp, true
}

// applyCheckpoint restores completed vertices and edge movement history
// into a fresh run (invoked on the dispatcher at bootstrap).
func (r *dagRun) applyCheckpoint(cp *checkpoint) {
	r.tl().Import(cp.Timeline)
	restored := 0
	for name, vc := range cp.Vertices {
		vs, ok := r.vertices[name]
		if !ok || vc.Parallelism <= 0 || len(vc.Tasks) != vc.Parallelism {
			continue
		}
		vs.parallelism = vc.Parallelism
		vs.tasks = make([]*taskState, vc.Parallelism)
		for i := range vs.tasks {
			ts := newTaskState(r, vs, i)
			ts.restored = true
			ts.restoredAttempt = vc.Tasks[i].Attempt
			ts.restoredNode = vc.Tasks[i].Node
			// Replay the checkpointed completion through the lifecycle
			// table instead of reconstructing the state by hand.
			ts.lc.Fire(tEvRestored)
			vs.tasks[i] = ts
		}
		vs.completed = vc.Parallelism
		// vNew → vSucceeded; the observer journals VERTEX_RECOVERED.
		vs.lc.Fire(vEvRecovered)
		vs.commitComplete = vc.Committed
		vs.committed = vc.Committed
		r.counters.Add("VERTICES_RECOVERED", 1)
		restored++
	}
	r.tl().Record(timeline.Event{
		Type: timeline.DAGRecovered, DAG: r.id,
		Info: r.d.Name, Val: int64(restored),
	})
	for _, ec := range cp.Edges {
		es := r.findEdge(ec.From, ec.To)
		if es == nil {
			continue
		}
		es.baseParts = ec.BaseParts
		for _, dm := range ec.Movements {
			sm := es.srcs[dm.SrcTask]
			if sm == nil {
				sm = &srcMovements{delivered: dm.SrcAttempt, byAttempt: make(map[int][]event.DataMovement)}
				es.srcs[dm.SrcTask] = sm
			}
			sm.byAttempt[dm.SrcAttempt] = append(sm.byAttempt[dm.SrcAttempt], dm)
		}
	}
	// Restored vertices with unfinished commits must still commit.
	for name, vc := range cp.Vertices {
		vs, ok := r.vertices[name]
		if !ok || !vs.lc.In(vSucceeded) {
			continue
		}
		if len(vs.v.Sinks) > 0 && !vc.Committed {
			vs.committed = true
			r.pendingCommits++
			success := make(map[int]int, len(vs.tasks))
			var missing error
			for _, ts := range vs.tasks {
				if ts.winner != nil {
					success[ts.idx] = ts.winner.id
				} else if ts.restored {
					success[ts.idx] = ts.restoredAttempt
				} else {
					missing = fmt.Errorf("am: commit %s: task %d has no successful attempt", vs.v.Name, ts.idx)
					break
				}
			}
			vsCopy := vs
			go func() {
				err := missing
				if err == nil {
					err = r.commitSinks(vsCopy, success)
				}
				r.mb.Put(msgCommitDone{vs: vsCopy, err: err})
			}()
		}
	}
}

// Recover submits a DAG, resuming from its checkpoint when one exists: the
// run keeps its original id so still-registered shuffle outputs remain
// addressable.
func (s *Session) Recover(d *dag.DAG) (*DAGRun, error) {
	cp, ok := loadCheckpoint(s, d.Name)
	if !ok {
		return s.Submit(d)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("am: session closed")
	}
	s.mu.Unlock()
	run, err := newDAGRun(s, d, cp.RunID)
	if err != nil {
		return nil, err
	}
	run.recovered = cp
	s.mu.Lock()
	s.active[run.id] = run
	s.mu.Unlock()
	run.start()
	return &DAGRun{run: run}, nil
}
