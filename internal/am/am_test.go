package am

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

func init() {
	// Word count: map lines to (word, 1), reduce to (word, count).
	library.RegisterMapFunc("amtest.tokenize", func(_, value []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(value)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("amtest.sum", func(key []byte, values [][]byte, out runtime.KVWriter) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		return out.Write(key, []byte(strconv.Itoa(total)))
	})
}

func newTestPlatform(nodes int) *platform.Platform {
	return platform.New(platform.Fast(nodes))
}

// writeLines stores text lines as a record file ("" keys).
func writeLines(t *testing.T, plat *platform.Platform, path string, lines []string) {
	t.Helper()
	wr, err := library.CreateRecordFile(plat.FS, path, plat.FS.LiveNodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if err := wr.Write(nil, []byte(l)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
}

// wordCountDAG builds the canonical Figure 4 DAG.
func wordCountDAG(name, in, out string, reducers int) *dag.DAG {
	d := dag.New(name)
	tok := d.AddVertex("tokenizer", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "amtest.tokenize"}), -1)
	tok.Sources = []dag.DataSource{{
		Name:        "lines",
		Input:       plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: []string{in}, DesiredSplitSize: 4 * 1024}),
	}}
	sum := d.AddVertex("summation", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "amtest.sum"}), reducers)
	sum.Sinks = []dag.DataSink{{
		Name:      "counts",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: out}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: out}),
	}}
	d.Connect(tok, sum, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	return d
}

// readCounts reads committed word counts from the sink directory.
func readCounts(t *testing.T, plat *platform.Platform, out string) map[string]int {
	t.Helper()
	res := map[string]int{}
	for _, f := range plat.FS.List(out + "/part-") {
		data, err := plat.FS.ReadFile(f, "")
		if err != nil {
			t.Fatal(err)
		}
		r := library.NewPaddedReader(data)
		for r.Next() {
			n, err := strconv.Atoi(string(r.Value()))
			if err != nil {
				t.Fatal(err)
			}
			res[string(r.Key())] += n
		}
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	}
	return res
}

func TestWordCountEndToEnd(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	var lines []string
	for i := 0; i < 100; i++ {
		lines = append(lines, "the quick brown fox", "jumps over the lazy dog", "the end")
	}
	writeLines(t, plat, "/in/text", lines)
	d := wordCountDAG("wc", "/in/text", "/out/wc", 2)
	res, err := RunDAG(plat, Config{Name: "t"}, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != DAGSucceeded {
		t.Fatalf("status = %v", res.Status)
	}
	counts := readCounts(t, plat, "/out/wc")
	if counts["the"] != 300 || counts["fox"] != 100 || counts["dog"] != 100 {
		t.Fatalf("counts = %v", counts)
	}
	if got := len(counts); got != 9 {
		t.Fatalf("distinct words = %d: %v", got, counts)
	}
	if res.Counters.Get("TASKS_SUCCEEDED") < 3 {
		t.Fatalf("counters: %s", res.Counters)
	}
}

func TestSessionReusesContainersAcrossDAGs(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	writeLines(t, plat, "/in/text", []string{"a b c d e f"})
	s := NewSession(plat, Config{Name: "sess", ContainerIdleRelease: time.Second})
	defer s.Close()
	for i := 0; i < 3; i++ {
		d := wordCountDAG(fmt.Sprintf("wc%d", i), "/in/text", fmt.Sprintf("/out/wc%d", i), 1)
		if res, err := s.Run(d); err != nil || res.Status != DAGSucceeded {
			t.Fatalf("dag %d: %v %v", i, res.Status, err)
		}
	}
	allocated, reused := s.SchedulerStats()
	if reused == 0 {
		t.Fatalf("no container reuse in session (allocated=%d)", allocated)
	}
	if allocated >= reused+allocated && allocated > 6 {
		t.Fatalf("allocated %d containers for 3 tiny DAGs", allocated)
	}
}

func TestDisableContainerReuse(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	writeLines(t, plat, "/in/text", []string{"a b c d"})
	s := NewSession(plat, Config{Name: "noreuse", DisableContainerReuse: true})
	defer s.Close()
	d := wordCountDAG("wc", "/in/text", "/out/wc", 2)
	if res, err := s.Run(d); err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	_, reused := s.SchedulerStats()
	if reused != 0 {
		t.Fatalf("reused = %d with reuse disabled", reused)
	}
}

func TestAutoParallelismShrinks(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	writeLines(t, plat, "/in/text", []string{"x y z x y x"})
	d := wordCountDAG("wc-auto", "/in/text", "/out/auto", 8)
	cfg := Config{Name: "t", DesiredBytesPerReducer: 1 << 20} // tiny data → 1 reducer
	res, err := RunDAG(plat, cfg, d)
	if err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	if res.Counters.Get("PARALLELISM_RECONFIGURED") == 0 {
		t.Fatal("auto-parallelism did not reconfigure")
	}
	counts := readCounts(t, plat, "/out/auto")
	if counts["x"] != 3 || counts["y"] != 2 || counts["z"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// Only one reducer should have committed output.
	if got := len(plat.FS.List("/out/auto/part-")); got != 1 {
		t.Fatalf("committed parts = %d", got)
	}
}

func TestAutoParallelismDisabled(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	writeLines(t, plat, "/in/text", []string{"x y z"})
	d := wordCountDAG("wc-noauto", "/in/text", "/out/noauto", 4)
	cfg := Config{Name: "t", DisableAutoParallelism: true}
	res, err := RunDAG(plat, cfg, d)
	if err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	if res.Counters.Get("PARALLELISM_RECONFIGURED") != 0 {
		t.Fatal("reconfigured despite disabled auto-parallelism")
	}
	if got := len(plat.FS.List("/out/noauto/part-")); got != 4 {
		t.Fatalf("committed parts = %d, want 4", got)
	}
}

// flakyProcessor fails its first attempt of every task, then succeeds.
type flakyProcessor struct {
	ctx *runtime.Context
}

func (p *flakyProcessor) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *flakyProcessor) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	if p.ctx.Meta.Attempt == 0 {
		return fmt.Errorf("injected failure (task %d attempt 0)", p.ctx.Meta.Task)
	}
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	return w.(runtime.KVWriter).Write([]byte(fmt.Sprintf("t%d", p.ctx.Meta.Task)), []byte("ok"))
}
func (p *flakyProcessor) Close() error { return nil }

func TestTaskRetryOnFailure(t *testing.T) {
	runtime.RegisterProcessor("amtest.flaky", func() runtime.Processor { return &flakyProcessor{} })
	plat := newTestPlatform(2)
	defer plat.Stop()
	d := dag.New("flaky")
	v := d.AddVertex("v", plugin.Desc("amtest.flaky", nil), 3)
	v.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/flaky"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/flaky"}),
	}}
	res, err := RunDAG(plat, Config{Name: "t"}, d)
	if err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	if res.Counters.Get("ATTEMPTS_FAILED") != 3 {
		t.Fatalf("ATTEMPTS_FAILED = %d", res.Counters.Get("ATTEMPTS_FAILED"))
	}
	if got := len(plat.FS.List("/out/flaky/part-")); got != 3 {
		t.Fatalf("parts = %d", got)
	}
}

// alwaysFail exhausts attempts.
type alwaysFail struct{}

func (alwaysFail) Initialize(*runtime.Context) error { return nil }
func (alwaysFail) Run(map[string]runtime.Input, map[string]runtime.Output) error {
	return fmt.Errorf("permanent failure")
}
func (alwaysFail) Close() error { return nil }

func TestDAGFailsAfterMaxAttempts(t *testing.T) {
	runtime.RegisterProcessor("amtest.alwaysfail", func() runtime.Processor { return alwaysFail{} })
	plat := newTestPlatform(2)
	defer plat.Stop()
	d := dag.New("doomed")
	d.AddVertex("v", plugin.Desc("amtest.alwaysfail", nil), 1)
	res, err := RunDAG(plat, Config{Name: "t", MaxTaskAttempts: 2}, d)
	if err == nil || res.Status != DAGFailed {
		t.Fatalf("status=%v err=%v", res.Status, err)
	}
	if !strings.Contains(err.Error(), "permanent failure") {
		t.Fatalf("err = %v", err)
	}
	if res.Counters.Get("ATTEMPTS_FAILED") != 2 {
		t.Fatalf("ATTEMPTS_FAILED = %d", res.Counters.Get("ATTEMPTS_FAILED"))
	}
}

// sabotageReduce deletes the producer's shuffle data on the consumer's
// first attempt, forcing the InputReadError → producer re-execution path.
type sabotageReduce struct {
	ctx *runtime.Context
}

func (p *sabotageReduce) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *sabotageReduce) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	if p.ctx.Meta.Attempt == 0 {
		// Destroy all producer outputs, simulating intermediate data loss.
		p.ctx.Services.Shuffle.Unregister(shuffle.OutputID{
			DAG: p.ctx.Meta.DAG, Vertex: "producer", Name: "consumer", Task: 0, Attempt: 0,
		})
	}
	r, err := in["producer"].Reader()
	if err != nil {
		return err
	}
	g := r.(runtime.GroupedKVReader)
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	kw := w.(runtime.KVWriter)
	for g.Next() {
		if err := kw.Write(g.Key(), []byte(strconv.Itoa(len(g.Values())))); err != nil {
			return err
		}
	}
	return g.Err()
}
func (p *sabotageReduce) Close() error { return nil }

// emitProducer writes a fixed pair to every output.
type emitProducer struct{ ctx *runtime.Context }

func (p *emitProducer) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *emitProducer) Run(_ map[string]runtime.Input, out map[string]runtime.Output) error {
	for _, o := range out {
		w, err := o.Writer()
		if err != nil {
			return err
		}
		if err := w.(runtime.KVWriter).Write([]byte("k"), []byte("v")); err != nil {
			return err
		}
	}
	return nil
}
func (p *emitProducer) Close() error { return nil }

func TestInputReadErrorTriggersProducerReexecution(t *testing.T) {
	runtime.RegisterProcessor("amtest.emit", func() runtime.Processor { return &emitProducer{} })
	runtime.RegisterProcessor("amtest.sabotage", func() runtime.Processor { return &sabotageReduce{} })
	plat := newTestPlatform(3)
	defer plat.Stop()
	d := dag.New("lossy")
	prod := d.AddVertex("producer", plugin.Desc("amtest.emit", nil), 1)
	cons := d.AddVertex("consumer", plugin.Desc("amtest.sabotage", nil), 1)
	cons.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/lossy"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/lossy"}),
	}}
	d.Connect(prod, cons, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	res, err := RunDAG(plat, Config{Name: "t"}, d)
	if err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	if res.Counters.Get("INPUT_READ_ERRORS") == 0 {
		t.Fatal("no input read error observed")
	}
	if res.Counters.Get("TASKS_REEXECUTED") == 0 {
		t.Fatal("producer was not re-executed")
	}
	counts := readCounts(t, plat, "/out/lossy")
	if counts["k"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
