package am

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tez/internal/chaos"
	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

// failOnSickNode fails every execution placed on node-000 and succeeds
// anywhere else — a sick-but-alive machine.
type failOnSickNode struct{ ctx *runtime.Context }

func (p *failOnSickNode) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *failOnSickNode) Run(_ map[string]runtime.Input, out map[string]runtime.Output) error {
	if p.ctx.Services.Node == "node-000" {
		return fmt.Errorf("sick node %s", p.ctx.Services.Node)
	}
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	return w.(runtime.KVWriter).Write([]byte(fmt.Sprintf("t%d", p.ctx.Meta.Task)), []byte("ok"))
}
func (p *failOnSickNode) Close() error { return nil }

func sickNodeDAG(name, out string) *dag.DAG {
	d := dag.New(name)
	v := d.AddVertex("v", plugin.Desc("amtest.sicknode", nil), 1)
	// Pin the task to the sick node: locality preference plus container
	// reuse keep every retry there until blacklisting intervenes.
	v.LocationHints = [][]string{{"node-000"}}
	v.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: out}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: out}),
	}}
	return d
}

// TestBlacklistRescuesDAGFromSickNode is the tentpole acceptance check: a
// single permanently failing node exhausts MaxTaskAttempts when health
// tracking is off (the seed behaviour), and with blacklisting on the same
// schedule succeeds because retries are steered off the sick machine
// before the attempt budget runs out.
func TestBlacklistRescuesDAGFromSickNode(t *testing.T) {
	runtime.RegisterProcessor("amtest.sicknode", func() runtime.Processor { return &failOnSickNode{} })

	t.Run("without blacklisting the DAG dies", func(t *testing.T) {
		plat := newTestPlatform(4)
		defer plat.Stop()
		res, err := RunDAG(plat, Config{
			Name:                "nohealth",
			MaxTaskAttempts:     3,
			DisableBlacklisting: true,
		}, sickNodeDAG("sick-off", "/out/sick-off"))
		if err == nil || res.Status != DAGFailed {
			t.Fatalf("expected MaxTaskAttempts exhaustion, got %v %v", res.Status, err)
		}
		if got := res.Counters.Get("ATTEMPTS_FAILED"); got != 3 {
			t.Fatalf("ATTEMPTS_FAILED = %d, want 3", got)
		}
	})

	t.Run("blacklisting steers retries off the node", func(t *testing.T) {
		plat := newTestPlatform(4)
		defer plat.Stop()
		s := NewSession(plat, Config{
			Name:                "health",
			MaxTaskAttempts:     3,
			NodeMaxTaskFailures: 2,
		})
		defer s.Close()
		res, err := s.Run(sickNodeDAG("sick-on", "/out/sick-on"))
		if err != nil || res.Status != DAGSucceeded {
			t.Fatalf("%v %v", res.Status, err)
		}
		if got := res.Counters.Get("ATTEMPTS_FAILED"); got != 2 {
			t.Fatalf("ATTEMPTS_FAILED = %d, want exactly the blacklist threshold 2", got)
		}
		if res.Counters.Get("NODES_BLACKLISTED") != 1 {
			t.Fatalf("NODES_BLACKLISTED = %d", res.Counters.Get("NODES_BLACKLISTED"))
		}
		report := s.NodeHealth()
		if report.BlacklistedCount() != 1 {
			t.Fatalf("blacklisted count = %d, report:\n%s", report.BlacklistedCount(), report)
		}
		if report[0].Node != "node-000" || report[0].TaskFailures != 2 || report[0].BlacklistEnters != 1 {
			t.Fatalf("unexpected report:\n%s", report)
		}
	})
}

// TestBlacklistDecayRestoresNode: after NodeBlacklistDecay the node is
// un-blacklisted with a clean slate. Driven by the injectable clock — no
// sleeping, and the decay boundary is tested exactly.
func TestBlacklistDecayRestoresNode(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := Config{
		NodeMaxTaskFailures: 1,
		NodeBlacklistDecay:  10 * time.Millisecond,
		Clock:               func() time.Time { return now },
	}.withDefaults()
	h := newNodeHealth(cfg, 8)
	if !h.taskFailed("n1") {
		t.Fatal("n1 not blacklisted at threshold 1")
	}
	if !h.isBlacklisted("n1") || len(h.excludedIDs()) != 1 {
		t.Fatal("n1 should be excluded")
	}
	now = now.Add(9 * time.Millisecond)
	if !h.isBlacklisted("n1") {
		t.Fatal("n1 decayed before NodeBlacklistDecay elapsed")
	}
	now = now.Add(time.Millisecond)
	if h.isBlacklisted("n1") {
		t.Fatal("n1 still blacklisted after decay")
	}
	rep := h.report()
	if len(rep) != 1 || rep[0].BlacklistExits != 1 || rep[0].TaskFailures != 0 {
		t.Fatalf("decay did not reset the record: %+v", rep)
	}
}

// TestBlacklistCapRefusesExcess: the MaxBlacklistFraction cap keeps a
// cluster-wide problem from excluding more than its share of nodes.
func TestBlacklistCapRefusesExcess(t *testing.T) {
	cfg := Config{NodeMaxTaskFailures: 1, MaxBlacklistFraction: 0.34}.withDefaults()
	h := newNodeHealth(cfg, 3) // cap = max(1, floor(0.34*3)) = 1
	if !h.taskFailed("n1") {
		t.Fatal("first node should blacklist")
	}
	if h.fetchFailed("n2") || h.taskFailed("n3") {
		t.Fatal("cap exceeded: more than 1 of 3 nodes blacklisted")
	}
	if h.isBlacklisted("n2") || h.isBlacklisted("n3") {
		t.Fatal("n2/n3 must stay schedulable at the cap")
	}
	if got := len(h.excludedIDs()); got != 1 {
		t.Fatalf("excluded = %d, want 1", got)
	}
}

// gatedFail coordinates the node-loss race: attempt 0 reports its node,
// then blocks until released, then fails; later attempts succeed.
type gatedFail struct{ ctx *runtime.Context }

var (
	gateNodeCh    chan string
	gateReleaseCh chan struct{}
)

func (p *gatedFail) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *gatedFail) Run(_ map[string]runtime.Input, out map[string]runtime.Output) error {
	if p.ctx.Meta.Attempt == 0 {
		gateNodeCh <- p.ctx.Services.Node
		<-gateReleaseCh
		return fmt.Errorf("process crashed as the node went down")
	}
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	return w.(runtime.KVWriter).Write([]byte("k"), []byte("ok"))
}
func (p *gatedFail) Close() error { return nil }

// TestAttemptFailureRacingNodeLossIsCasualty is the satellite-2 regression
// test: a genuine task error whose node-failure notification is already in
// the mailbox must be downgraded to a casualty — no MaxTaskAttempts
// charge, no node-health charge. The mailbox is FIFO, so putting
// msgNodeFailed before releasing the processor guarantees the ordering.
func TestAttemptFailureRacingNodeLossIsCasualty(t *testing.T) {
	runtime.RegisterProcessor("amtest.gatedfail", func() runtime.Processor { return &gatedFail{} })
	gateNodeCh = make(chan string, 1)
	gateReleaseCh = make(chan struct{})

	plat := newTestPlatform(2)
	defer plat.Stop()
	d := dag.New("race")
	v := d.AddVertex("v", plugin.Desc("amtest.gatedfail", nil), 1)
	v.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/race"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/race"}),
	}}
	// MaxTaskAttempts 1: if the raced failure counted, the DAG would die.
	s := NewSession(plat, Config{Name: "t", MaxTaskAttempts: 1, NodeMaxTaskFailures: 1})
	defer s.Close()
	h, err := s.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	node := <-gateNodeCh
	// The node-failure notification lands in the mailbox first...
	h.run.mb.Put(msgNodeFailed{node: cluster.NodeID(node)})
	// ...then the attempt's failure message arrives behind it.
	close(gateReleaseCh)

	res := h.Wait()
	if res.Err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, res.Err)
	}
	if got := res.Counters.Get("ATTEMPTS_KILLED_NODE_LOST"); got != 1 {
		t.Fatalf("ATTEMPTS_KILLED_NODE_LOST = %d, want 1", got)
	}
	if got := res.Counters.Get("ATTEMPTS_FAILED"); got != 0 {
		t.Fatalf("ATTEMPTS_FAILED = %d, raced failure was charged", got)
	}
	if rep := s.NodeHealth(); rep.BlacklistedCount() != 0 {
		t.Fatalf("raced failure polluted node health:\n%s", rep)
	}
}

// TestDecommissionDrainDoesNotBlacklist is the satellite-3 test: a planned
// drain re-executes ephemeral-output producers but never charges node
// health — the machine did nothing wrong.
func TestDecommissionDrainDoesNotBlacklist(t *testing.T) {
	runtime.RegisterProcessor("amtest.emit5", func() runtime.Processor { return &emitProducer{} })
	runtime.RegisterProcessor("amtest.slowreduce2", func() runtime.Processor { return &slowReduce{} })
	plat := newTestPlatform(4)
	defer plat.Stop()

	d := dag.New("drain")
	prod := d.AddVertex("producer", plugin.Desc("amtest.emit5", nil), 2)
	cons := d.AddVertex("consumer", plugin.Desc("amtest.slowreduce2", nil), 1)
	cons.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/drain"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/drain"}),
	}}
	d.Connect(prod, cons, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})

	s := NewSession(plat, Config{Name: "t"})
	defer s.Close()
	h, err := s.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	deadline := time.Now().Add(5 * time.Second)
	for victim == "" && time.Now().Before(deadline) {
		for task := 0; task < 2; task++ {
			id := shuffle.OutputID{DAG: h.ID(), Vertex: "producer", Name: "consumer", Task: task, Attempt: 0}
			if node, ok := plat.Shuffle.Node(id); ok {
				victim = node
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if victim == "" {
		t.Fatal("producer output never appeared")
	}
	plat.Decommission(cluster.NodeID(victim))

	res := h.Wait()
	if res.Err != nil || res.Status != DAGSucceeded {
		t.Fatalf("%v %v", res.Status, res.Err)
	}
	if res.Counters.Get("TASKS_REEXECUTED") == 0 {
		t.Fatal("drain did not re-execute the ephemeral-output producer")
	}
	if res.Counters.Get("NODE_DECOMMISSIONS_OBSERVED") == 0 {
		t.Fatal("drain not counted as a decommission")
	}
	if got := res.Counters.Get("NODE_FAILURES_OBSERVED"); got != 0 {
		t.Fatalf("drain miscounted as %d unplanned failures", got)
	}
	rep := s.NodeHealth()
	if rep.BlacklistedCount() != 0 {
		t.Fatalf("drain contributed to blacklisting:\n%s", rep)
	}
	for _, n := range rep {
		if n.TaskFailures != 0 {
			t.Fatalf("drain charged task failures to %s:\n%s", n.Node, rep)
		}
	}
	if counts := readCounts(t, plat, "/out/drain"); counts["k"] != 2 {
		t.Fatalf("output = %v", counts)
	}
}

// TestChaosAMCrashAndRecovery: the chaos plane kills the AM after the
// first vertex completion; a fresh AM recovers the checkpoint and finishes
// without re-running the completed vertex.
func TestChaosAMCrashAndRecovery(t *testing.T) {
	plat := newTestPlatform(3)
	defer plat.Stop()
	writeLines(t, plat, "/in/amcrash", []string{"a b a c b a"})
	build := func() *dag.DAG { return wordCountDAG("amcrash", "/in/amcrash", "/out/amcrash", 1) }

	plane := chaos.New(11, chaos.Spec{AMCrashAfterVertexCompletions: 1})
	s1 := NewSession(plat, Config{Name: "am1", CheckpointPath: "/_cp_chaos", Chaos: plane})
	res, err := s1.Run(build())
	s1.Close()
	if err == nil || res.Status != DAGFailed || !errors.Is(res.Err, chaos.ErrAMCrash) {
		t.Fatalf("expected injected AM crash, got %v %v", res.Status, err)
	}

	s2 := NewSession(plat, Config{Name: "am2", CheckpointPath: "/_cp_chaos"})
	defer s2.Close()
	h, err := s2.Recover(build())
	if err != nil {
		t.Fatal(err)
	}
	res2 := h.Wait()
	if res2.Err != nil || res2.Status != DAGSucceeded {
		t.Fatalf("recovered run: %v %v", res2.Status, res2.Err)
	}
	if res2.Counters.Get("VERTICES_RECOVERED") == 0 {
		t.Fatal("nothing recovered from the checkpoint")
	}
	counts := readCounts(t, plat, "/out/amcrash")
	if counts["a"] != 3 || counts["b"] != 2 || counts["c"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
