package am

import (
	"fmt"

	"tez/internal/dag"
	"tez/internal/plugin"
	"tez/internal/timeline"
)

// vmContext implements VertexManagerContext for a vertex. Every method
// runs on the DAG dispatcher goroutine.
type vmContext struct {
	run *dagRun
	vs  *vertexState
}

func (c *vmContext) VertexName() string    { return c.vs.v.Name }
func (c *vmContext) Payload() []byte       { return c.vs.v.Manager.Payload }
func (c *vmContext) Parallelism() int      { return c.vs.parallelism }
func (c *vmContext) SessionConfig() Config { return c.run.cfg }

// SetParallelism applies a runtime parallelism change (Figure 6): tasks
// are rebuilt and every in/out edge manager is re-initialised with the new
// geometry. Scatter-gather in-edges keep their original partition count
// (BaseParts), so a shrink makes each task own a contiguous partition
// range.
func (c *vmContext) SetParallelism(n int) error {
	return c.SetParallelismWithEdges(n, nil)
}

// SetParallelismWithEdges is the full reconfiguration call (mirroring
// Tez's setVertexParallelism with EdgeManagerPluginDescriptors): it
// changes the task count and atomically swaps the named in-edges' edge
// manager descriptors, validating every new routing table before anything
// is committed. This is how the dynamically-partitioned-hash-join pattern
// installs its runtime partition grouping (§5.2).
func (c *vmContext) SetParallelismWithEdges(n int, edgeManagers map[string]plugin.Descriptor) error {
	vs := c.vs
	run := c.run
	if n <= 0 {
		return fmt.Errorf("am: SetParallelism(%d) on %s", n, vs.v.Name)
	}
	if n == vs.parallelism && len(edgeManagers) == 0 {
		return nil
	}
	for _, ts := range vs.tasks {
		if !ts.lc.In(tPending) {
			return fmt.Errorf("am: SetParallelism on %s after tasks were scheduled", vs.v.Name)
		}
	}
	for _, es := range run.inEdges[vs.v.Name] {
		if es.e.Property.Movement == dag.OneToOne {
			return fmt.Errorf("am: SetParallelism on %s with one-to-one in-edge", vs.v.Name)
		}
		if es.e.Property.Movement == dag.ScatterGather && n > es.baseParts {
			return fmt.Errorf("am: SetParallelism(%d) on %s exceeds %d partitions", n, vs.v.Name, es.baseParts)
		}
	}
	// A one-to-one consumer whose task count is already decided pins ours.
	for _, es := range run.outEdges[vs.v.Name] {
		if es.e.Property.Movement == dag.OneToOne && es.to.parallelism > 0 && es.to.parallelism != n {
			return fmt.Errorf("am: SetParallelism(%d) on %s conflicts with one-to-one consumer %s (%d tasks)",
				n, vs.v.Name, es.e.To, es.to.parallelism)
		}
	}
	// A consumer that has already scheduled tasks derived its attempts'
	// physical-input counts from the current out-edge routing tables.
	// Swapping those tables underneath it strands running attempts waiting
	// for source tasks that no longer exist, deadlocking the DAG. The
	// reconfiguration loses the race in that case: the submitted
	// parallelism stands.
	for _, es := range run.outEdges[vs.v.Name] {
		if es.mgr == nil {
			continue
		}
		for _, ts := range es.to.tasks {
			if !ts.lc.In(tPending) {
				return fmt.Errorf("am: SetParallelism(%d) on %s after consumer %s scheduled tasks",
					n, vs.v.Name, es.e.To)
			}
		}
	}

	// Validate-then-commit: dry-build every affected routing table first so
	// a failure cannot leave the DAG half-reconfigured.
	type rebuilt struct {
		es  *edgeState
		mgr dag.EdgeManager
	}
	var commits []rebuilt
	type propSwap struct {
		es   *edgeState
		desc plugin.Descriptor
	}
	var swaps []propSwap
	for _, es := range run.inEdges[vs.v.Name] {
		if es.mgr == nil {
			continue
		}
		prop := es.e.Property
		if d, ok := edgeManagers[es.e.From]; ok {
			prop.Manager = d
			swaps = append(swaps, propSwap{es, d})
		}
		mgr, err := dag.NewEdgeManager(prop, dag.EdgeContext{
			SrcParallelism:  es.from.parallelism,
			DestParallelism: n,
			BasePartitions:  es.baseParts,
		})
		if err != nil {
			return fmt.Errorf("am: SetParallelism(%d) on %s: %w", n, vs.v.Name, err)
		}
		commits = append(commits, rebuilt{es, mgr})
	}
	for _, es := range run.outEdges[vs.v.Name] {
		if es.mgr == nil {
			continue
		}
		mgr, err := dag.NewEdgeManager(es.e.Property, dag.EdgeContext{
			SrcParallelism:  n,
			DestParallelism: es.to.parallelism,
			BasePartitions:  es.baseParts,
		})
		if err != nil {
			return fmt.Errorf("am: SetParallelism(%d) on %s: %w", n, vs.v.Name, err)
		}
		commits = append(commits, rebuilt{es, mgr})
	}

	vs.parallelism = n
	vs.tasks = make([]*taskState, n)
	for i := range vs.tasks {
		vs.tasks[i] = newTaskState(run, vs, i)
	}
	for _, c := range commits {
		c.es.mgr = c.mgr
	}
	for _, sw := range swaps {
		sw.es.e.Property.Manager = sw.desc
	}
	run.counters.Add("PARALLELISM_RECONFIGURED", 1)
	run.tl().Record(timeline.Event{
		Type: timeline.VertexReconfigured, DAG: run.id,
		Vertex: vs.v.Name, Val: int64(n),
	})
	return nil
}

// ScheduleTasks requests execution of the given tasks (idempotent).
func (c *vmContext) ScheduleTasks(tasks []int) {
	c.run.scheduleTasks(c.vs, tasks)
}

func (c *vmContext) SourceVertices() []string {
	var out []string
	for _, es := range c.run.inEdges[c.vs.v.Name] {
		out = append(out, es.e.From)
	}
	return out
}

func (c *vmContext) SourceVertexParallelism(name string) int {
	vs, ok := c.run.vertices[name]
	if !ok || !vertexReady(vs) {
		return -1
	}
	return vs.parallelism
}

func (c *vmContext) SourceTasksCompleted(name string) int {
	vs, ok := c.run.vertices[name]
	if !ok {
		return 0
	}
	return vs.completed
}

func (c *vmContext) SourceMovement(name string) dag.MovementType {
	if es := c.run.findEdge(name, c.vs.v.Name); es != nil {
		return es.e.Property.Movement
	}
	return dag.CustomMovement
}

func (c *vmContext) SourceScheduling(name string) dag.SchedulingType {
	if es := c.run.findEdge(name, c.vs.v.Name); es != nil {
		return es.e.Property.Scheduling
	}
	return dag.Sequential
}

func (c *vmContext) SourceTaskCompleted(name string, task int) bool {
	vs, ok := c.run.vertices[name]
	if !ok || task < 0 || task >= len(vs.tasks) {
		return false
	}
	return vs.tasks[task].lc.In(tSucceeded)
}

// SetOutEdgePayload swaps the producer-side output configuration of an
// out-edge before this vertex's tasks run — the IPO reconfiguration hook
// behind sample-based range partitioning and skew handling (§3.4).
func (c *vmContext) SetOutEdgePayload(destVertex string, payload []byte) error {
	es := c.run.findEdge(c.vs.v.Name, destVertex)
	if es == nil {
		return fmt.Errorf("am: no edge %s->%s", c.vs.v.Name, destVertex)
	}
	for _, ts := range c.vs.tasks {
		if !ts.lc.In(tPending) {
			return fmt.Errorf("am: SetOutEdgePayload on %s after tasks were scheduled", c.vs.v.Name)
		}
	}
	es.e.Property.Output.Payload = payload
	return nil
}
