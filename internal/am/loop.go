package am

import (
	"fmt"

	"tez/internal/dag"
)

// RunLoop is the blessed pattern for iterative drivers on a session
// (§4.2: "Each iteration can be represented as a new DAG and submitted to
// a shared session for efficient execution"): build constructs iteration
// it's DAG, the session runs it, and after inspects the result — reading
// back whatever the iteration materialised — and reports whether the loop
// has converged. A nil after just runs all max iterations.
//
// RunLoop returns the number of iterations that ran. A submission error,
// a non-succeeded DAG status, or an error from build/after stops the loop
// immediately; convergence (after returning done) stops it without
// building — let alone scheduling — another iteration.
func (s *Session) RunLoop(max int,
	build func(it int) (*dag.DAG, error),
	after func(it int, res DAGResult) (done bool, err error)) (int, error) {
	for it := 0; it < max; it++ {
		d, err := build(it)
		if err != nil {
			return it, fmt.Errorf("am: loop iteration %d: %w", it, err)
		}
		res, err := s.Run(d)
		if err != nil {
			return it, fmt.Errorf("am: loop iteration %d: %w", it, err)
		}
		if res.Status != DAGSucceeded {
			return it, fmt.Errorf("am: loop iteration %d: status %v", it, res.Status)
		}
		if after != nil {
			done, err := after(it, res)
			if err != nil {
				return it + 1, fmt.Errorf("am: loop iteration %d: %w", it, err)
			}
			if done {
				return it + 1, nil
			}
		}
	}
	return max, nil
}
