// Per-submission deadline and Close-hardening tests: overdue DAGs die
// with a typed reason, the deadline-vs-completion race always lands on
// exactly one terminal result, and closing a session mid-run leaks no
// scheduler requests, containers or goroutines.
package am

import (
	"errors"
	"fmt"
	gort "runtime"
	"testing"
	"time"

	"tez/internal/dag"
	"tez/internal/plugin"
	"tez/internal/runtime"
)

func init() {
	runtime.RegisterProcessor("amdl.block", func() runtime.Processor { return &blockProc{} })
	runtime.RegisterProcessor("amdl.sleep", func() runtime.Processor { return &sleepProc{} })
}

// blockProc parks until the attempt is killed.
type blockProc struct{ stop <-chan struct{} }

func (p *blockProc) Initialize(ctx *runtime.Context) error { p.stop = ctx.Stop; return nil }
func (p *blockProc) Run(map[string]runtime.Input, map[string]runtime.Output) error {
	<-p.stop
	return errors.New("amdl.block: killed")
}
func (p *blockProc) Close() error { return nil }

// sleepProc runs for ~2ms, observing Stop.
type sleepProc struct{ stop <-chan struct{} }

func (p *sleepProc) Initialize(ctx *runtime.Context) error { p.stop = ctx.Stop; return nil }
func (p *sleepProc) Run(map[string]runtime.Input, map[string]runtime.Output) error {
	select {
	case <-time.After(2 * time.Millisecond):
		return nil
	case <-p.stop:
		return errors.New("amdl.sleep: killed")
	}
}
func (p *sleepProc) Close() error { return nil }

func oneVertexDAG(name, proc string, tasks int) *dag.DAG {
	d := dag.New(name)
	d.AddVertex("work", plugin.Desc(proc, nil), tasks)
	return d
}

// TestDeadlineKillsOverdueDAG: a DAG that cannot finish is killed at its
// deadline with a result classifiable as ErrDeadlineExceeded.
func TestDeadlineKillsOverdueDAG(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	sess := NewSession(plat, Config{Name: "deadline"})
	defer sess.Close()

	start := time.Now()
	res, err := sess.Run(oneVertexDAG("stuck", "amdl.block", 2), WithDeadline(25*time.Millisecond))
	if res.Status != DAGKilled {
		t.Fatalf("status = %v (err %v), want DAGKilled", res.Status, err)
	}
	if !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", res.Err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", waited)
	}
}

// TestDeadlineCompletionRace: with the deadline set right at the DAG's
// natural runtime, every run must land on exactly one coherent terminal
// result — success, or a deadline kill — never a hang or a mixed state.
func TestDeadlineCompletionRace(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	sess := NewSession(plat, Config{Name: "race"})
	defer sess.Close()

	var succeeded, killed int
	for i := 0; i < 30; i++ {
		// Sweep the deadline through the DAG's ~2ms runtime so both sides
		// of the race occur across the sweep.
		deadline := time.Duration(1+i%5) * time.Millisecond
		res, _ := sess.Run(oneVertexDAG(fmt.Sprintf("r%d", i), "amdl.sleep", 2), WithDeadline(deadline))
		switch res.Status {
		case DAGSucceeded:
			succeeded++
			if res.Err != nil {
				t.Fatalf("run %d: succeeded with err %v", i, res.Err)
			}
		case DAGKilled:
			killed++
			if !errors.Is(res.Err, ErrDeadlineExceeded) {
				t.Fatalf("run %d: killed with err %v, want ErrDeadlineExceeded", i, res.Err)
			}
		default:
			t.Fatalf("run %d: unexpected status %v (%v)", i, res.Status, res.Err)
		}
	}
	t.Logf("race sweep: %d succeeded, %d deadline-killed", succeeded, killed)
}

// TestCloseMidRunLeaksNothing: closing a session (with prewarmed
// containers) while a DAG is mid-flight must cancel every outstanding
// scheduler request, return all containers to the RM and unwind every
// goroutine. Run under -race in CI.
func TestCloseMidRunLeaksNothing(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	time.Sleep(10 * time.Millisecond)
	before := gort.NumGoroutine()

	for i := 0; i < 5; i++ {
		sess := NewSession(plat, Config{Name: fmt.Sprintf("close-%d", i), PrewarmContainers: 2})
		h, err := sess.Submit(oneVertexDAG("stuck", "amdl.block", 3))
		if err != nil {
			t.Fatal(err)
		}
		// Let some attempts reach the blocking processor, then yank the
		// session out from under them.
		time.Sleep(time.Duration(i) * 2 * time.Millisecond)
		sess.Close()
		res := h.Wait()
		if res.Status != DAGKilled {
			t.Fatalf("iter %d: status %v (%v), want DAGKilled", i, res.Status, res.Err)
		}
		if pending := sess.app.PendingRequests(); pending != 0 {
			t.Fatalf("iter %d: %d scheduler requests leaked past Close", i, pending)
		}
		if held := sess.app.HeldContainers(); held != 0 {
			t.Fatalf("iter %d: %d containers leaked past Close", i, held)
		}
	}
	if used := plat.RM.UsedResources(); !used.IsZero() {
		t.Fatalf("RM still holds resources after Close: %v", used)
	}
	deadline := time.Now().Add(5 * time.Second)
	for gort.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, gort.NumGoroutine(), buf[:gort.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
