package am

import (
	"testing"
	"time"

	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/library"
	"tez/internal/plugin"
)

// lateShrinkManager reproduces the auto-reduce ordering race: it sits on a
// middle vertex and attempts to shrink its parallelism only after a source
// task completes — by which time a downstream ImmediateStart consumer has
// already scheduled tasks whose physical-input counts were derived from
// the current routing tables. The attempt must fail; if it were allowed,
// the consumer would wait forever for movements from source tasks that no
// longer exist.
type lateShrinkManager struct {
	ctx       VertexManagerContext
	scheduled bool
}

var lateShrinkErr = make(chan error, 1)

func init() {
	RegisterVertexManager("amtest.late_shrink", func() VertexManager { return &lateShrinkManager{} })
}

func (m *lateShrinkManager) Initialize(ctx VertexManagerContext) error {
	m.ctx = ctx
	return nil
}

func (m *lateShrinkManager) OnVertexStarted() {}

func (m *lateShrinkManager) OnSourceTaskCompleted(string, int) {
	if m.scheduled {
		return
	}
	m.scheduled = true
	select {
	case lateShrinkErr <- m.ctx.SetParallelism(1):
	default:
	}
	tasks := make([]int, m.ctx.Parallelism())
	for i := range tasks {
		tasks[i] = i
	}
	m.ctx.ScheduleTasks(tasks)
}

func (m *lateShrinkManager) OnVertexManagerEvent(event.VertexManagerEvent) {}

// TestParallelismShrinkRefusedAfterConsumerScheduled is the regression for
// an intermittent DAG deadlock: a vertex applying runtime auto-reduce
// after one of its consumers was slow-started would rebuild the shared
// edge manager underneath running consumer attempts, which then waited for
// the original (larger) number of physical inputs forever. SetParallelism
// must refuse once any consumer task left the pending state, leaving the
// submitted parallelism in force so every expected movement still arrives.
func TestParallelismShrinkRefusedAfterConsumerScheduled(t *testing.T) {
	plat := newTestPlatform(4)
	defer plat.Stop()
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, "a b c d e f g h")
	}
	writeLines(t, plat, "/in/shrink", lines)

	sg := dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	}
	d := dag.New("shrink-race")
	tok := d.AddVertex("tokenizer", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "amtest.tokenize"}), -1)
	tok.Sources = []dag.DataSource{{
		Name:        "lines",
		Input:       plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: []string{"/in/shrink"}, DesiredSplitSize: 4 * 1024}),
	}}
	mid := d.AddVertex("mid", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "amtest.sum"}), 4)
	mid.Manager = plugin.Desc("amtest.late_shrink", nil)
	final := d.AddVertex("final", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "amtest.sum"}), 2)
	// The consumer schedules all its tasks the moment the vertex starts —
	// before mid's manager gets its first source-completion callback.
	final.Manager = plugin.Desc(ImmediateStartVertexManagerName, nil)
	final.Sinks = []dag.DataSink{{
		Name:      "counts",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/shrink"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/shrink"}),
	}}
	d.Connect(tok, mid, sg)
	d.Connect(mid, final, sg)

	for len(lateShrinkErr) > 0 {
		<-lateShrinkErr
	}
	type outcome struct{ err error }
	done := make(chan outcome, 1)
	go func() {
		_, err := RunDAG(plat, Config{Name: "shrink-race"}, d)
		done <- outcome{err}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("DAG deadlocked: parallelism shrank under an already-scheduled consumer")
	}

	select {
	case err := <-lateShrinkErr:
		if err == nil {
			t.Fatal("SetParallelism succeeded after the consumer scheduled tasks")
		}
	default:
		t.Fatal("late-shrink manager never attempted SetParallelism")
	}

	counts := readCounts(t, plat, "/out/shrink")
	for _, w := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if counts[w] != 50 {
			t.Fatalf("count[%s] = %d, want 50", w, counts[w])
		}
	}
}
