package timeline

import (
	"bytes"
	"strings"
	"testing"
)

// TestTagStreamAttributesEvents: one TagStream at submission stamps the
// whole run stream; explicit tenants win; untagged streams stay blank.
func TestTagStreamAttributesEvents(t *testing.T) {
	j := New()
	j.TagStream("acme.wc.1", "acme")

	j.Record(Event{Type: DAGSubmitted, DAG: "acme.wc.1"})
	j.Record(Event{Type: VertexStarted, DAG: "acme.wc.1", Vertex: "map"})
	j.Record(Event{Type: DAGSubmitted, DAG: "other.wc.1"})
	j.Record(Event{Type: ContainerAllocated, Tenant: "explicit"}) // cluster stream, stamped by the recorder

	evs := j.Events()
	if evs[0].Tenant != "acme" || evs[1].Tenant != "acme" {
		t.Fatalf("tagged stream events carry tenants %q/%q, want acme", evs[0].Tenant, evs[1].Tenant)
	}
	if evs[2].Tenant != "" {
		t.Fatalf("untagged stream inherited tenant %q", evs[2].Tenant)
	}
	if evs[3].Tenant != "explicit" {
		t.Fatalf("explicit tenant overwritten to %q", evs[3].Tenant)
	}

	got := FilterTenant(evs, "acme")
	if len(got) != 2 {
		t.Fatalf("FilterTenant(acme) = %d events, want 2", len(got))
	}
	for _, e := range got {
		if e.DAG != "acme.wc.1" {
			t.Fatalf("filter leaked event from stream %q", e.DAG)
		}
	}
}

// TestTenantJSONLRoundTrip: the tenant survives JSONL export/import and
// the field is omitted entirely for untenanted events (wire-format
// stability with pre-tenant journals).
func TestTenantJSONLRoundTrip(t *testing.T) {
	j := New()
	j.TagStream("acme.wc.1", "acme")
	j.Record(Event{Type: DAGSubmitted, DAG: "acme.wc.1"})
	j.Record(Event{Type: DAGSubmitted, DAG: "plain.wc.1"})

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, j.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], `"tenant":"acme"`) {
		t.Fatalf("tenant missing from JSONL: %s", lines[0])
	}
	if strings.Contains(lines[1], "tenant") {
		t.Fatalf("empty tenant serialized: %s", lines[1])
	}

	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Tenant != "acme" || back[1].Tenant != "" {
		t.Fatalf("round trip tenants = %q/%q", back[0].Tenant, back[1].Tenant)
	}
}
