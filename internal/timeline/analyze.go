package timeline

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Analyzers over a recorded journal: critical-path extraction (the
// longest chain of attempt spans and the waits between them that bounds
// DAG completion, à la the paper's Figure 12 discussion), per-vertex
// attempt-duration percentiles, and container-utilisation swimlanes.

// Segment is one step of the critical path. The segments of a Path tile
// the [DAG start, DAG finish] interval exactly, so their durations sum to
// the measured wall-clock by construction.
type Segment struct {
	// Kind is "startup" (init + first allocation), "run" (an attempt
	// executing), "wait" (gap between the enabling producer finishing and
	// the consumer attempt starting: scheduling + shuffle wait), or
	// "finish" (commit + teardown after the last attempt).
	Kind    string
	Vertex  string
	Task    int
	Attempt int
	Node    string
	Start   time.Time
	End     time.Time
}

// Duration returns the segment's length.
func (s Segment) Duration() time.Duration { return s.End.Sub(s.Start) }

func (s Segment) String() string {
	switch s.Kind {
	case "run":
		return fmt.Sprintf("run   %s/t%03d_a%d on %s  %v", s.Vertex, s.Task, s.Attempt, s.Node, s.Duration().Round(time.Microsecond))
	case "wait":
		return fmt.Sprintf("wait  before %s/t%03d  %v", s.Vertex, s.Task, s.Duration().Round(time.Microsecond))
	default:
		return fmt.Sprintf("%-5s %v", s.Kind, s.Duration().Round(time.Microsecond))
	}
}

// Path is one DAG run's critical path.
type Path struct {
	DAG      string
	Start    time.Time
	End      time.Time
	Segments []Segment
}

// Wall returns the DAG's measured wall-clock (finish - start).
func (p Path) Wall() time.Duration { return p.End.Sub(p.Start) }

// Total sums the segment durations. Because segments tile the run
// interval, Total equals Wall for a well-formed journal.
func (p Path) Total() time.Duration {
	var t time.Duration
	for _, s := range p.Segments {
		t += s.Duration()
	}
	return t
}

func (p Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path %s: wall=%v path=%v\n", p.DAG, p.Wall().Round(time.Microsecond), p.Total().Round(time.Microsecond))
	for _, s := range p.Segments {
		off := s.Start.Sub(p.Start).Round(time.Microsecond)
		fmt.Fprintf(&b, "  +%-10v %s\n", off, s)
	}
	return b.String()
}

// attemptSpan is a reconstructed successful attempt.
type attemptSpan struct {
	vertex     string
	task, id   int
	node       string
	start, end time.Time
}

// LastDAG returns the run id of the last DAG_FINISHED event (or the last
// DAG-stamped event when none finished), "" if the journal has no runs.
func LastDAG(events []Event) string {
	dag := ""
	for _, e := range events {
		if e.Type == DAGFinished {
			dag = e.DAG
		}
	}
	if dag != "" {
		return dag
	}
	for _, e := range events {
		if e.DAG != "" {
			dag = e.DAG
		}
	}
	return dag
}

// CriticalPath extracts the run's critical path: starting from the
// latest-finishing winner attempt, it repeatedly steps to the source-
// vertex winner whose completion enabled the current attempt (the
// latest-finishing producer that ended before the current attempt did),
// then tiles the chain into run/wait segments bounded by the DAG's
// submit and finish events.
func CriticalPath(events []Event, dag string) (Path, error) {
	if dag == "" {
		dag = LastDAG(events)
	}
	p := Path{DAG: dag}
	if dag == "" {
		return p, fmt.Errorf("timeline: no DAG runs in journal")
	}

	// Bounds, structure and winner attempts.
	sources := map[string][]string{} // vertex → source vertices
	winners := map[string]map[int]attemptSpan{}
	var haveStart, haveEnd bool
	for _, e := range events {
		if e.DAG != dag {
			continue
		}
		switch e.Type {
		case DAGSubmitted, DAGRecovered:
			if !haveStart || e.Wall.Before(p.Start) {
				p.Start, haveStart = e.Wall, true
			}
		case DAGFinished:
			p.End, haveEnd = e.Wall, true
		case EdgeDeclared:
			sources[e.Info] = append(sources[e.Info], e.Vertex)
		case AttemptFinished:
			if e.Info != "SUCCEEDED" {
				continue
			}
			span := attemptSpan{vertex: e.Vertex, task: e.Task, id: e.Attempt, node: e.Node, start: e.Start(), end: e.Wall}
			byTask := winners[e.Vertex]
			if byTask == nil {
				byTask = map[int]attemptSpan{}
				winners[e.Vertex] = byTask
			}
			// Re-execution can succeed the same task twice; the latest
			// success is the one consumers ultimately depended on.
			if cur, ok := byTask[e.Task]; !ok || span.end.After(cur.end) {
				byTask[e.Task] = span
			}
		}
	}
	if !haveStart {
		return p, fmt.Errorf("timeline: run %s has no start event", dag)
	}
	if !haveEnd {
		return p, fmt.Errorf("timeline: run %s has no DAG_FINISHED event", dag)
	}
	if len(winners) == 0 {
		// Fully-recovered runs can finish with zero fresh attempts.
		p.Segments = []Segment{{Kind: "finish", Start: p.Start, End: p.End}}
		return p, nil
	}

	// Walk back from the latest-finishing winner.
	latest := func(vertices []string, before time.Time) (attemptSpan, bool) {
		var best attemptSpan
		found := false
		for _, v := range vertices {
			for _, span := range winners[v] {
				if !before.IsZero() && !span.end.Before(before) {
					continue
				}
				if !found || span.end.After(best.end) ||
					(span.end.Equal(best.end) && (span.vertex < best.vertex || span.vertex == best.vertex && span.task < best.task)) {
					best, found = span, true
				}
			}
		}
		return best, found
	}
	allVertices := make([]string, 0, len(winners))
	for v := range winners {
		allVertices = append(allVertices, v)
	}
	sort.Strings(allVertices)
	cur, ok := latest(allVertices, time.Time{})
	if !ok {
		return p, fmt.Errorf("timeline: run %s has no successful attempts", dag)
	}
	var chain []attemptSpan
	seen := map[string]bool{}
	for {
		key := fmt.Sprintf("%s/%d/%d", cur.vertex, cur.task, cur.id)
		if seen[key] {
			break
		}
		seen[key] = true
		chain = append(chain, cur)
		pred, ok := latest(sources[cur.vertex], cur.end)
		if !ok {
			break
		}
		cur = pred
	}
	// Reverse into execution order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}

	// Tile the run interval: cursor sweeps start→finish; each chained
	// attempt contributes a wait (if it started after the cursor) and a
	// run segment clipped to the cursor (a consumer overlapping its
	// producer charges the overlap to the producer's segment — that time
	// was shuffle wait inside the consumer).
	cursor := p.Start
	for i, span := range chain {
		if span.start.After(cursor) {
			kind := "wait"
			if i == 0 {
				kind = "startup"
			}
			p.Segments = append(p.Segments, Segment{Kind: kind, Vertex: span.vertex, Task: span.task, Start: cursor, End: span.start})
			cursor = span.start
		}
		if span.end.After(cursor) {
			p.Segments = append(p.Segments, Segment{
				Kind: "run", Vertex: span.vertex, Task: span.task, Attempt: span.id,
				Node: span.node, Start: cursor, End: span.end,
			})
			cursor = span.end
		}
	}
	if p.End.After(cursor) {
		p.Segments = append(p.Segments, Segment{Kind: "finish", Start: cursor, End: p.End})
	}
	return p, nil
}

// VertexStats summarises attempt durations for one vertex.
type VertexStats struct {
	Vertex    string
	Attempts  int
	Succeeded int
	P50       time.Duration
	P90       time.Duration
	Max       time.Duration
}

func (v VertexStats) String() string {
	return fmt.Sprintf("%s: attempts=%d succeeded=%d p50=%v p90=%v max=%v",
		v.Vertex, v.Attempts, v.Succeeded,
		v.P50.Round(time.Microsecond), v.P90.Round(time.Microsecond), v.Max.Round(time.Microsecond))
}

// AttemptPercentiles computes per-vertex attempt-duration percentiles
// over every terminal attempt of the given run (all runs when dag is "").
func AttemptPercentiles(events []Event, dag string) []VertexStats {
	durs := map[string][]time.Duration{}
	succ := map[string]int{}
	for _, e := range events {
		if e.Type != AttemptFinished || (dag != "" && e.DAG != dag) {
			continue
		}
		durs[e.Vertex] = append(durs[e.Vertex], e.Dur)
		if e.Info == "SUCCEEDED" {
			succ[e.Vertex]++
		}
	}
	out := make([]VertexStats, 0, len(durs))
	for v, ds := range durs {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(ds)-1))
			return ds[i]
		}
		out = append(out, VertexStats{
			Vertex: v, Attempts: len(ds), Succeeded: succ[v],
			P50: pct(0.50), P90: pct(0.90), Max: ds[len(ds)-1],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vertex < out[j].Vertex })
	return out
}

// Lane is one container's utilisation swimlane: busy time over its
// observed window, from the attempt spans that ran in it.
type Lane struct {
	Container int64
	Node      string
	Attempts  int
	Busy      time.Duration
	Window    time.Duration
}

// Utilisation is busy/window in [0,1] (0 for an empty window).
func (l Lane) Utilisation() float64 {
	if l.Window <= 0 {
		return 0
	}
	u := float64(l.Busy) / float64(l.Window)
	if u > 1 {
		u = 1
	}
	return u
}

func (l Lane) String() string {
	return fmt.Sprintf("container-%d on %s: attempts=%d busy=%v window=%v util=%.0f%%",
		l.Container, l.Node, l.Attempts, l.Busy.Round(time.Microsecond), l.Window.Round(time.Microsecond), 100*l.Utilisation())
}

// ContainerLanes reconstructs container swimlanes from attempt spans.
func ContainerLanes(events []Event, dag string) []Lane {
	type window struct {
		node        string
		first, last time.Time
		busy        time.Duration
		attempts    int
	}
	lanes := map[int64]*window{}
	for _, e := range events {
		if e.Type != AttemptFinished || e.Container == 0 || (dag != "" && e.DAG != dag) {
			continue
		}
		w := lanes[e.Container]
		if w == nil {
			w = &window{node: e.Node, first: e.Start(), last: e.Wall}
			lanes[e.Container] = w
		}
		if e.Start().Before(w.first) {
			w.first = e.Start()
		}
		if e.Wall.After(w.last) {
			w.last = e.Wall
		}
		w.busy += e.Dur
		w.attempts++
	}
	out := make([]Lane, 0, len(lanes))
	for id, w := range lanes {
		out = append(out, Lane{Container: id, Node: w.node, Attempts: w.attempts, Busy: w.busy, Window: w.last.Sub(w.first)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Container < out[j].Container })
	return out
}

// Canonical projects one run's journal onto its deterministic structural
// skeleton: DAG submit/finish, declared edges, vertex init/start/success
// (with parallelism), task scheduling, and recovery markers — sorted and
// deduplicated so the projection is independent of goroutine
// interleaving, attempt placement and retry counts. Two runs of the same
// DAG under the same chaos seed produce identical Canonical sequences;
// golden-file determinism tests pin exactly this.
func Canonical(events []Event, dag string) []string {
	var lines []string
	for _, e := range events {
		if dag != "" && e.DAG != dag {
			continue
		}
		switch e.Type {
		case DAGSubmitted:
			lines = append(lines, fmt.Sprintf("DAG_SUBMITTED %s", e.Info))
		case DAGRecovered:
			lines = append(lines, fmt.Sprintf("DAG_RECOVERED %s", e.Info))
		case DAGFinished:
			lines = append(lines, fmt.Sprintf("DAG_FINISHED %s", e.Info))
		case EdgeDeclared:
			lines = append(lines, fmt.Sprintf("EDGE %s->%s", e.Vertex, e.Info))
		case VertexInited:
			lines = append(lines, fmt.Sprintf("VERTEX_INITED %s par=%d", e.Vertex, e.Val))
		case VertexStarted:
			lines = append(lines, fmt.Sprintf("VERTEX_STARTED %s", e.Vertex))
		case VertexSucceeded:
			lines = append(lines, fmt.Sprintf("VERTEX_SUCCEEDED %s", e.Vertex))
		case VertexRecovered:
			lines = append(lines, fmt.Sprintf("VERTEX_RECOVERED %s", e.Vertex))
		case VertexReconfigured:
			lines = append(lines, fmt.Sprintf("VERTEX_RECONFIGURED %s par=%d", e.Vertex, e.Val))
		case TaskScheduled:
			lines = append(lines, fmt.Sprintf("TASK_SCHEDULED %s t%03d", e.Vertex, e.Task))
		}
	}
	sort.Strings(lines)
	out := lines[:0]
	for i, l := range lines {
		if i == 0 || l != lines[i-1] {
			out = append(out, l)
		}
	}
	return out
}
