package timeline_test

// End-to-end tests of the timeline subsystem against real DAG runs:
// fixed-seed chaos determinism pinned by a golden file, Chrome trace
// validity, critical-path agreement with the measured wall-clock, and
// journal coherence across an AM crash + recovery.

import (
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"tez/internal/am"
	"tez/internal/chaos"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/timeline"
)

var update = flag.Bool("update", false, "rewrite golden files")

func init() {
	library.RegisterMapFunc("tltest.tokenize", func(_, line []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(line)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("tltest.sum", func(k []byte, vs [][]byte, out runtime.KVWriter) error {
		return out.Write(k, []byte(strconv.Itoa(len(vs))))
	})
}

func writeLines(t *testing.T, plat *platform.Platform, path string, lines []string) {
	t.Helper()
	wr, err := library.CreateRecordFile(plat.FS, path, plat.FS.LiveNodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if err := wr.Write(nil, []byte(l)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
}

func wordCountDAG(name, in, out string, reducers int) *dag.DAG {
	d := dag.New(name)
	tok := d.AddVertex("tokenizer", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "tltest.tokenize"}), -1)
	tok.Sources = []dag.DataSource{{
		Name:        "lines",
		Input:       plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: []string{in}, DesiredSplitSize: 512}),
	}}
	sum := d.AddVertex("summation", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "tltest.sum"}), reducers)
	sum.Sinks = []dag.DataSink{{
		Name:      "counts",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: out}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: out}),
	}}
	d.Connect(tok, sum, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	return d
}

// chaosRun executes one fixed-seed wordcount under fetch-fault injection
// with the journal attached to every layer, returning the journal.
func chaosRun(t *testing.T, seed int64) *timeline.Journal {
	t.Helper()
	j := timeline.New()
	plane := chaos.New(seed, chaos.Spec{TransientFetchProb: 0.3, FetchDataLostProb: 0.05})
	pcfg := platform.Fast(4)
	pcfg.Chaos = plane
	pcfg.Timeline = j
	plat := platform.New(pcfg)
	defer plat.Stop()

	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, "pad pad pad alpha beta gamma delta epsilon zeta eta theta")
	}
	writeLines(t, plat, "/in/golden", lines)

	// Auto-parallelism reacts to data volumes, which fault-induced retries
	// can perturb; the structural skeleton is only seed-stable without it.
	sess := am.NewSession(plat, am.Config{
		Name:                   "golden",
		DisableAutoParallelism: true,
		Timeline:               j,
		Chaos:                  plane,
	})
	defer sess.Close()
	res, err := sess.Run(wordCountDAG("wc", "/in/golden", "/out/golden", 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != am.DAGSucceeded {
		t.Fatalf("run status = %v", res.Status)
	}
	return j
}

// TestChaosDeterminismGolden runs the same seeded chaos workload twice and
// requires the canonical event skeleton to be identical across runs and to
// match the checked-in golden file (regenerate with -update).
func TestChaosDeterminismGolden(t *testing.T) {
	j1 := chaosRun(t, 7)
	dag1 := timeline.LastDAG(j1.Events())
	c1 := timeline.Canonical(j1.Events(), dag1)

	j2 := chaosRun(t, 7)
	c2 := timeline.Canonical(j2.Events(), timeline.LastDAG(j2.Events()))
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("same seed produced different canonical sequences:\nrun1: %q\nrun2: %q", c1, c2)
	}

	golden := filepath.Join("testdata", "golden_chaos.txt")
	got := strings.Join(c1, "\n") + "\n"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("canonical skeleton drifted from golden file:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestChromeTraceFromRun exports a real run and checks the trace-event
// JSON shape chrome://tracing and Perfetto require.
func TestChromeTraceFromRun(t *testing.T) {
	j := chaosRun(t, 3)
	buf, err := timeline.ChromeTrace(j.Events())
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	spans := 0
	for _, e := range trace.TraceEvents {
		for _, key := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("trace event missing %q: %v", key, e)
			}
		}
		if e["ph"] == "X" {
			spans++
			if dur, ok := e["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("span with bad dur: %v", e)
			}
		}
	}
	if spans == 0 {
		t.Fatal("no attempt/fetch spans in trace")
	}
}

// TestCriticalPathMatchesWallClock checks the acceptance bound: the
// critical path's segment durations must sum to within 10% of the DAG's
// measured wall-clock (they tile the interval, so they agree exactly).
func TestCriticalPathMatchesWallClock(t *testing.T) {
	j := timeline.New()
	pcfg := platform.Default(4)
	pcfg.Timeline = j
	plat := platform.New(pcfg)
	defer plat.Stop()
	var lines []string
	for i := 0; i < 60; i++ {
		lines = append(lines, "a b c d e f g h i j k l")
	}
	writeLines(t, plat, "/in/cp", lines)
	sess := am.NewSession(plat, am.Config{Name: "cp", Timeline: j})
	defer sess.Close()
	res, err := sess.Run(wordCountDAG("wc", "/in/cp", "/out/cp", 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != am.DAGSucceeded {
		t.Fatalf("run status = %v", res.Status)
	}

	p, err := timeline.CriticalPath(j.Events(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) == 0 {
		t.Fatal("empty critical path")
	}
	wall, total := p.Wall(), p.Total()
	if wall <= 0 {
		t.Fatalf("wall = %v", wall)
	}
	diff := total - wall
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.10*float64(wall) {
		t.Fatalf("path sum %v deviates more than 10%% from wall %v\n%s", total, wall, p)
	}
	// The journalled wall-clock must also track the AM's own measurement.
	if res.Duration > 0 && wall > res.Duration {
		t.Fatalf("journal wall %v exceeds AM-reported duration %v", wall, res.Duration)
	}
}

// TestCrashRecoveryJournalCoherence crashes the AM mid-run, recovers in a
// second session with a fresh journal, and requires the merged history to
// be one coherent stream: contiguous sequence numbers with no duplicates
// or gaps, the pre-crash vertex completion imported from the checkpoint,
// and recovery + finish markers recorded after it.
func TestCrashRecoveryJournalCoherence(t *testing.T) {
	plat := platform.New(platform.Fast(3))
	defer plat.Stop()
	writeLines(t, plat, "/in/crash", []string{"a b a c b a"})
	build := func() *dag.DAG { return wordCountDAG("crash", "/in/crash", "/out/crash", 1) }

	j1 := timeline.New()
	plane := chaos.New(11, chaos.Spec{AMCrashAfterVertexCompletions: 1})
	s1 := am.NewSession(plat, am.Config{Name: "am1", CheckpointPath: "/_cp_tl", Chaos: plane, Timeline: j1})
	res, err := s1.Run(build())
	s1.Close()
	if err == nil || !errors.Is(res.Err, chaos.ErrAMCrash) {
		t.Fatalf("expected injected AM crash, got %v %v", res.Status, err)
	}

	// The new AM starts with an empty journal, as a restarted process would.
	j2 := timeline.New()
	s2 := am.NewSession(plat, am.Config{Name: "am2", CheckpointPath: "/_cp_tl", Timeline: j2})
	defer s2.Close()
	h, err := s2.Recover(build())
	if err != nil {
		t.Fatal(err)
	}
	if res2 := h.Wait(); res2.Err != nil || res2.Status != am.DAGSucceeded {
		t.Fatalf("recovered run: %v %v", res2.Status, res2.Err)
	}

	runID := timeline.LastDAG(j2.Events())
	if runID == "" {
		t.Fatal("no run in recovered journal")
	}
	evs := j2.DAGEvents(runID)
	var succeeded, recovered, finished bool
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d — duplicate or gap across the crash:\n%+v", i, e.Seq, evs)
		}
		switch e.Type {
		case timeline.VertexSucceeded:
			if e.Vertex == "tokenizer" && !recovered {
				succeeded = true // imported from the pre-crash checkpoint
			}
		case timeline.DAGRecovered:
			recovered = true
		case timeline.DAGFinished:
			finished = e.Info == "SUCCEEDED"
		}
	}
	if !succeeded {
		t.Fatal("pre-crash VERTEX_SUCCEEDED was not imported from the checkpoint")
	}
	if !recovered {
		t.Fatal("no DAG_RECOVERED marker in merged history")
	}
	if !finished {
		t.Fatal("merged history does not end in DAG_FINISHED SUCCEEDED")
	}

	// Pre-crash events must appear in both journals with identical
	// sequence numbers (same stream, two observers).
	pre := j1.DAGEvents(runID)
	if len(pre) == 0 {
		t.Fatal("crashed session journalled nothing")
	}
	bylen := len(pre)
	if bylen > len(evs) {
		bylen = len(evs)
	}
	imported := 0
	for i := 0; i < bylen; i++ {
		if pre[i].Type == evs[i].Type && pre[i].Seq == evs[i].Seq {
			imported++
		} else {
			break
		}
	}
	if imported == 0 {
		t.Fatalf("merged history does not start with the checkpointed prefix:\npre: %+v\nmerged: %+v", pre[0], evs[0])
	}
}

// TestShuffleDataPlaneCountersInJournal runs a wordcount with a spill-
// constrained, combined, flate-compressed shuffle and asserts the data
// plane shows up both in the run's counters and as journalled spill/merge
// spans — the counters-audit contract of the shuffle data plane.
func TestShuffleDataPlaneCountersInJournal(t *testing.T) {
	library.RegisterMapFunc("tltest.tokenize2", func(_, line []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(line)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	sumv := func(k []byte, vs [][]byte, out runtime.KVWriter) error {
		n := 0
		for _, v := range vs {
			i, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			n += i
		}
		return out.Write(k, []byte(strconv.Itoa(n)))
	}
	library.RegisterReduceFunc("tltest.sumv", sumv)
	library.RegisterCombineFunc("tltest.sumv", sumv)

	j := timeline.New()
	pcfg := platform.Fast(4)
	pcfg.Timeline = j
	plat := platform.New(pcfg)
	defer plat.Stop()

	var lines []string
	for i := 0; i < 60; i++ {
		lines = append(lines, "alpha beta gamma delta epsilon zeta eta theta iota kappa")
	}
	writeLines(t, plat, "/in/dataplane", lines)

	d := dag.New("dp")
	tok := d.AddVertex("tokenizer", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "tltest.tokenize2"}), -1)
	tok.Sources = []dag.DataSource{{
		Name:        "lines",
		Input:       plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: []string{"/in/dataplane"}, DesiredSplitSize: 512}),
	}}
	sum := d.AddVertex("summation", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "tltest.sumv"}), 2)
	sum.Sinks = []dag.DataSink{{
		Name:      "counts",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/dataplane"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/dataplane"}),
	}}
	d.Connect(tok, sum, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		// A few-KiB spill budget so this small run still spills, plus the
		// sum combiner — the knobs an application would set per edge.
		Output: plugin.Desc(library.OrderedPartitionedOutputName, library.OrderedPartitionedConfig{
			SortBytes: 2048,
			Combiner:  "tltest.sumv",
		}),
		Input: plugin.Desc(library.OrderedGroupedInputName, nil),
	})

	sess := am.NewSession(plat, am.Config{
		Name:         "dataplane",
		Timeline:     j,
		ShuffleCodec: "flate",
	})
	defer sess.Close()
	res, err := sess.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != am.DAGSucceeded {
		t.Fatalf("run status = %v", res.Status)
	}

	for _, c := range []string{"SHUFFLE_SORT_TIME_NS", "SHUFFLE_SPILLS", "SHUFFLE_MERGE_TIME_NS",
		"COMBINE_INPUT_RECORDS", "COMBINE_OUTPUT_RECORDS", "SHUFFLE_BYTES_WIRE", "SHUFFLE_BYTES_RAW"} {
		if res.Counters.Get(c) <= 0 {
			t.Errorf("counter %s missing from the run", c)
		}
	}
	if in, out := res.Counters.Get("COMBINE_INPUT_RECORDS"), res.Counters.Get("COMBINE_OUTPUT_RECORDS"); out >= in {
		t.Errorf("combiner did not reduce records: in=%d out=%d", in, out)
	}
	if w, r := res.Counters.Get("SHUFFLE_BYTES_WIRE"), res.Counters.Get("SHUFFLE_BYTES_RAW"); w >= r {
		t.Errorf("flate did not compress: wire=%d raw=%d", w, r)
	}
	spills, merges := 0, 0
	for _, e := range j.Events() {
		switch e.Type {
		case timeline.ShuffleSpill:
			spills++
		case timeline.ShuffleMerge:
			merges++
		}
	}
	if spills == 0 || merges == 0 {
		t.Fatalf("journal: %d spill, %d merge spans, want both > 0", spills, merges)
	}
}
