package timeline

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// fakeClock returns a Clock stepping 1ms per call from a fixed epoch.
func fakeClock() Clock {
	t := time.Unix(1000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestJournalSequencesPerStream(t *testing.T) {
	j := New(WithClock(fakeClock()))
	j.Record(Event{Type: DAGSubmitted, DAG: "run-1"})
	j.Record(Event{Type: NodeFailed, Node: "node-0"}) // "" stream
	j.Record(Event{Type: VertexInited, DAG: "run-1", Vertex: "v"})
	j.Record(Event{Type: DAGSubmitted, DAG: "run-2"})
	j.Record(Event{Type: DAGFinished, DAG: "run-1"})

	if j.Len() != 5 {
		t.Fatalf("Len = %d, want 5", j.Len())
	}
	r1 := j.DAGEvents("run-1")
	if len(r1) != 3 {
		t.Fatalf("run-1 events = %d, want 3", len(r1))
	}
	for i, e := range r1 {
		if e.Seq != uint64(i+1) {
			t.Fatalf("run-1 seq[%d] = %d, want contiguous from 1", i, e.Seq)
		}
		if e.Wall.IsZero() {
			t.Fatalf("run-1 event %d has zero Wall", i)
		}
	}
	if got := j.DAGEvents("run-2"); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("run-2 stream = %+v, want one event with seq 1", got)
	}
	if got := j.DAGEvents(""); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("session stream = %+v, want one event with seq 1", got)
	}
}

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	j.Record(Event{Type: DAGSubmitted, DAG: "x"})
	if j.Len() != 0 || j.Events() != nil || j.DAGEvents("x") != nil || j.Import(nil) != 0 {
		t.Fatal("nil journal methods must all no-op")
	}
}

func TestImportDedupesBySequence(t *testing.T) {
	// Session 1 records four events, checkpoints after three.
	j1 := New(WithClock(fakeClock()))
	for _, ty := range []Type{DAGSubmitted, VertexInited, VertexSucceeded} {
		j1.Record(Event{Type: ty, DAG: "run", Vertex: "v"})
	}
	cp := j1.DAGEvents("run")

	// Same-journal recovery: every checkpointed event is already present.
	if n := j1.Import(cp); n != 0 {
		t.Fatalf("same-journal import brought in %d events, want 0", n)
	}
	if j1.Len() != 3 {
		t.Fatalf("same-journal import duplicated events: Len = %d", j1.Len())
	}

	// Fresh-journal recovery: all imported, and new records continue the
	// stream with no duplicate or gap sequence numbers.
	j2 := New(WithClock(fakeClock()))
	if n := j2.Import(cp); n != 3 {
		t.Fatalf("fresh-journal import = %d, want 3", n)
	}
	j2.Record(Event{Type: DAGRecovered, DAG: "run"})
	j2.Record(Event{Type: DAGFinished, DAG: "run"})
	evs := j2.DAGEvents("run")
	if len(evs) != 5 {
		t.Fatalf("merged stream = %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("merged seq[%d] = %d, want contiguous 1..5", i, e.Seq)
		}
	}
	// Importing the checkpoint a second time must still be a no-op.
	if n := j2.Import(cp); n != 0 {
		t.Fatalf("re-import brought in %d events", n)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	j := New(WithClock(fakeClock()))
	j.Record(Event{Type: DAGSubmitted, DAG: "run", Info: "wc"})
	j.Record(Event{Type: AttemptFinished, DAG: "run", Vertex: "v", Task: 2, Attempt: 1,
		Node: "node-3", Container: 7, Info: "SUCCEEDED", Dur: 5 * time.Millisecond, Val: 42})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, j.Events()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := j.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip = %d events, want %d", len(got), len(want))
	}
	for i := range want {
		// Compare through JSON so time.Time monotonic-clock detail is
		// normalised the same way the wire format does.
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(got[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("event %d mismatch:\n  wrote %s\n  read  %s", i, a, b)
		}
	}
}

func TestCanonicalProjection(t *testing.T) {
	j := New(WithClock(fakeClock()))
	j.Record(Event{Type: DAGSubmitted, DAG: "run", Info: "wc"})
	j.Record(Event{Type: EdgeDeclared, DAG: "run", Vertex: "map", Info: "red"})
	j.Record(Event{Type: VertexInited, DAG: "run", Vertex: "map", Val: 2})
	j.Record(Event{Type: TaskScheduled, DAG: "run", Vertex: "map", Task: 1})
	j.Record(Event{Type: TaskScheduled, DAG: "run", Vertex: "map", Task: 0})
	// Non-structural noise that must not appear.
	j.Record(Event{Type: AttemptStarted, DAG: "run", Vertex: "map", Node: "node-1"})
	j.Record(Event{Type: ShuffleFetch, DAG: "run", Vertex: "map"})
	j.Record(Event{Type: DAGFinished, DAG: "run", Info: "SUCCEEDED"})
	// A second run that must be filtered out.
	j.Record(Event{Type: DAGSubmitted, DAG: "other", Info: "x"})

	want := []string{
		"DAG_FINISHED SUCCEEDED",
		"DAG_SUBMITTED wc",
		"EDGE map->red",
		"TASK_SCHEDULED map t000",
		"TASK_SCHEDULED map t001",
		"VERTEX_INITED map par=2",
	}
	if got := Canonical(j.Events(), "run"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Canonical = %q, want %q", got, want)
	}
}

// synthetic run: submit at t0; map runs [1ms,3ms]; reduce runs [4ms,6ms]
// (1ms scheduling wait); finish at 6.5ms.
func syntheticRun(t0 time.Time) []Event {
	at := func(d time.Duration) time.Time { return t0.Add(d) }
	return []Event{
		{Seq: 1, Type: DAGSubmitted, DAG: "run", Info: "wc", Wall: t0},
		{Seq: 2, Type: EdgeDeclared, DAG: "run", Vertex: "map", Info: "red", Wall: t0},
		{Seq: 3, Type: AttemptFinished, DAG: "run", Vertex: "map", Task: 0, Attempt: 0,
			Node: "node-0", Container: 1, Info: "SUCCEEDED", Dur: 2 * time.Millisecond, Wall: at(3 * time.Millisecond)},
		{Seq: 4, Type: AttemptFinished, DAG: "run", Vertex: "red", Task: 0, Attempt: 0,
			Node: "node-1", Container: 2, Info: "SUCCEEDED", Dur: 2 * time.Millisecond, Wall: at(6 * time.Millisecond)},
		{Seq: 5, Type: DAGFinished, DAG: "run", Info: "SUCCEEDED",
			Dur: 6500 * time.Microsecond, Wall: at(6500 * time.Microsecond)},
	}
}

func TestCriticalPathTiling(t *testing.T) {
	t0 := time.Unix(2000, 0)
	events := syntheticRun(t0)
	p, err := CriticalPath(events, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.DAG != "run" {
		t.Fatalf("DAG = %q", p.DAG)
	}
	if p.Wall() != 6500*time.Microsecond {
		t.Fatalf("Wall = %v", p.Wall())
	}
	if p.Total() != p.Wall() {
		t.Fatalf("Total %v != Wall %v — segments must tile the run", p.Total(), p.Wall())
	}
	kinds := make([]string, len(p.Segments))
	for i, s := range p.Segments {
		kinds[i] = s.Kind
	}
	want := []string{"startup", "run", "wait", "run", "finish"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("segment kinds = %v, want %v\n%s", kinds, want, p)
	}
	if r := p.Segments[1]; r.Vertex != "map" || r.Duration() != 2*time.Millisecond {
		t.Fatalf("map run segment = %+v", r)
	}
	if w := p.Segments[2]; w.Vertex != "red" || w.Duration() != time.Millisecond {
		t.Fatalf("wait segment = %+v", w)
	}
}

func TestCriticalPathErrors(t *testing.T) {
	if _, err := CriticalPath(nil, ""); err == nil {
		t.Fatal("empty journal must error")
	}
	t0 := time.Unix(2000, 0)
	unfinished := syntheticRun(t0)[:4] // no DAG_FINISHED
	if _, err := CriticalPath(unfinished, "run"); err == nil {
		t.Fatal("run without DAG_FINISHED must error")
	}
}

func TestAttemptPercentilesAndLanes(t *testing.T) {
	t0 := time.Unix(2000, 0)
	events := syntheticRun(t0)
	stats := AttemptPercentiles(events, "run")
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Vertex != "map" || stats[0].Succeeded != 1 || stats[0].P50 != 2*time.Millisecond {
		t.Fatalf("map stats = %+v", stats[0])
	}
	lanes := ContainerLanes(events, "run")
	if len(lanes) != 2 {
		t.Fatalf("lanes = %+v", lanes)
	}
	if lanes[0].Container != 1 || lanes[0].Attempts != 1 || lanes[0].Busy != 2*time.Millisecond {
		t.Fatalf("lane 1 = %+v", lanes[0])
	}
}

func TestChromeTraceSynthetic(t *testing.T) {
	t0 := time.Unix(2000, 0)
	buf, err := ChromeTrace(syntheticRun(t0))
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	spans := 0
	for _, e := range trace.TraceEvents {
		if e.Ph == "" {
			t.Fatalf("event %+v missing ph", e)
		}
		if e.Ph == "X" {
			spans++
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("bad span %+v", e)
			}
		}
	}
	if spans != 2 {
		t.Fatalf("spans = %d, want the two attempt spans", spans)
	}
}
