package timeline

import (
	"reflect"
	"testing"
)

func TestFetchInfoParts(t *testing.T) {
	cases := []struct {
		info  string
		edge  string
		spill int
	}{
		{"red p0 -> n1", "red", 0},              // barrier span, untagged
		{"red p3 s7 -> n2", "red", 7},           // pipelined increment
		{"red p1 s0 -> n0", "red", 0},           // first increment, tagged
		{"red p2 -> sick-node", "red", 0},       // nothing after -> may parse as a tag
		{"", "", 0},                             // defensive: empty info
		{"edge-s9 p0 -> n1", "edge-s9", 0},      // edge name is not a spill tag
		{"red p0 sX -> n1", "red", 0},           // malformed tag ignored
	}
	for _, c := range cases {
		edge, spill := fetchInfoParts(c.info)
		if edge != c.edge || spill != c.spill {
			t.Errorf("fetchInfoParts(%q) = (%q, %d), want (%q, %d)", c.info, edge, spill, c.edge, c.spill)
		}
	}
}

func TestEdgeFetchStats(t *testing.T) {
	fetch := func(dag, vertex, info string, val int64) Event {
		return Event{Type: ShuffleFetch, DAG: dag, Vertex: vertex, Info: info, Val: val}
	}
	events := []Event{
		fetch("dag1", "red", "map p0 -> n1", 100),
		fetch("dag1", "red", "map p0 s1 -> n1", 50),
		fetch("dag1", "red", "map p1 s2 -> n2", 25),
		fetch("dag1", "join", "left p0 -> n1", 10),
		fetch("dag2", "red", "map p0 s9 -> n1", 1), // other run: filtered out
		{Type: ShuffleMerge, DAG: "dag1", Vertex: "red", Info: "map", Val: 99}, // not a fetch
	}
	got := EdgeFetchStats(events, "dag1")
	want := []EdgeFetch{
		{Vertex: "join", Edge: "left", Fetches: 1, Bytes: 10, Increments: 1},
		{Vertex: "red", Edge: "map", Fetches: 3, Bytes: 175, Increments: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EdgeFetchStats = %+v, want %+v", got, want)
	}
	// Empty dagID aggregates every run: dag2's s9 span raises the
	// increment high-water mark.
	all := EdgeFetchStats(events, "")
	if len(all) != 2 || all[1].Increments != 10 || all[1].Fetches != 4 {
		t.Fatalf("unfiltered stats = %+v", all)
	}
}
