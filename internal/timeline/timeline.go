// Package timeline is the in-process analog of the YARN Application
// Timeline Server the paper leans on for history, monitoring and
// debugging (§4.3, §5): an append-only, concurrency-safe journal of
// structured lifecycle events recorded by the AM, the cluster substrate
// and the shuffle service. Events carry monotonic per-run sequence
// numbers — the canonical ordering for determinism checks, independent of
// goroutine interleaving — and timestamps from an injectable clock, so
// fixed-seed chaos runs replay identically under test.
//
// Like the chaos plane, the journal is threaded through the layers as a
// nil-safe hook: every exported method is a no-op on a nil *Journal, and
// the production path simply attaches no journal.
package timeline

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Type names one event kind in the taxonomy. The string values are the
// wire format (JSONL, golden files) — stable by contract.
type Type string

// Event taxonomy: DAG/vertex/task/attempt lifecycle, scheduler and
// container pool activity, node health, shuffle data plane, chaos.
const (
	// DAG lifecycle.
	DAGSubmitted Type = "DAG_SUBMITTED" // Info: dag name
	DAGRecovered Type = "DAG_RECOVERED" // Info: dag name; Val: vertices restored
	DAGFinished  Type = "DAG_FINISHED"  // Info: status; Dur: wall-clock

	// DAG structure, declared once at bootstrap (critical-path input).
	EdgeDeclared Type = "EDGE" // Vertex: from; Info: to

	// Vertex lifecycle.
	VertexInited       Type = "VERTEX_INITED" // Val: parallelism
	VertexStarted      Type = "VERTEX_STARTED"
	VertexSucceeded    Type = "VERTEX_SUCCEEDED"
	VertexRecovered    Type = "VERTEX_RECOVERED"    // restored from checkpoint
	VertexReconfigured Type = "VERTEX_RECONFIGURED" // Val: new parallelism

	// Task / attempt lifecycle. AttemptStarted closes the scheduler's
	// request→allocate→launch span: Val is the wait in nanoseconds since
	// the request was submitted, Info the locality level achieved.
	// AttemptFinished is a complete span: Dur is the attempt's runtime,
	// Info its outcome (SUCCEEDED / FAILED / KILLED).
	TaskScheduled    Type = "TASK_SCHEDULED"
	AttemptRequested Type = "ATTEMPT_REQUESTED" // Info: "speculative" when it is
	AttemptStarted   Type = "ATTEMPT_STARTED"   // Node, Container, Info: locality, Val: wait ns
	AttemptFinished  Type = "ATTEMPT_FINISHED"  // Node, Container, Info: outcome, Dur: runtime

	// Scheduler container pool and cluster allocation.
	ContainerAllocated Type = "CONTAINER_ALLOCATED" // RM grant; Info: locality
	ContainerReused    Type = "CONTAINER_REUSED"    // idle hit; Val: prior exec count (0 = prewarm hit)
	ContainerPrewarmed Type = "CONTAINER_PREWARMED" // prewarm request satisfied
	ContainerStopped   Type = "CONTAINER_STOPPED"   // involuntary stop; Info: reason

	// Node health and node events.
	NodeBlacklisted    Type = "NODE_BLACKLISTED"   // Val: failures charged
	NodeUnblacklisted  Type = "NODE_UNBLACKLISTED" // decay expired
	NodeFailed         Type = "NODE_FAILED"
	NodeDecommissioned Type = "NODE_DECOMMISSIONED"

	// Shuffle data plane. ShuffleFetch is a span: Dur is the modelled
	// transfer time, Val the bytes moved, Node the serving node, Info the
	// reader and partition. InputReadError is the consumer-reported loss
	// that triggers producer re-execution.
	ShuffleFetch      Type = "SHUFFLE_FETCH"
	ShuffleFetchError Type = "SHUFFLE_FETCH_ERROR" // Info: error class
	InputReadError    Type = "INPUT_READ_ERROR"
	// ShuffleSpill is a map-side sort-spill span (Dur: sort+encode time,
	// Val: records spilled); ShuffleMerge a run-merge span (Dur: merge
	// time, Val: bytes merged, Info: "final <edge>" on the map side,
	// "reduce <edge>" for reduce-side intermediate merges).
	ShuffleSpill Type = "SHUFFLE_SPILL"
	ShuffleMerge Type = "SHUFFLE_MERGE"

	// ChaosFault records one injected fault (Info: "kind site").
	ChaosFault Type = "CHAOS_FAULT"

	// TransitionInvalid records a control-plane event fired at a state
	// with no declared transition (internal/fsm): the machine's state was
	// NOT changed. Info carries the machine/state/event triple. A healthy
	// run journals none of these — each one is a control-plane bug made
	// visible where the old guard style dropped it on the floor.
	TransitionInvalid Type = "TRANSITION_INVALID"

	// GraphSuperstep is one BSP superstep of the graph engine
	// (internal/graph) — a span: Dur is the superstep DAG's wall-clock,
	// Val the active-vertex count, DAG the graph job name, Info
	// "superstep=<k> active=<n> sent=<m> combined=<c>" (messages combined
	// away between the senders and the inbox files).
	GraphSuperstep Type = "GRAPH_SUPERSTEP"

	// AMBacklog records a new high-water mark of the AM dispatcher's
	// mailbox backlog (Val: queued messages) once it crosses a reporting
	// threshold — a stuck or starved dispatcher becomes visible in the
	// timeline instead of only as a hang.
	AMBacklog Type = "AM_BACKLOG"
)

// Event is one journal entry. Seq is monotonic per run (the DAG field
// keys the stream; session/cluster-scoped events use the "" stream), and
// is the canonical ordering — timestamps are informative, ordering by
// them is not deterministic across runs. Task/Attempt are meaningful only
// for task- and attempt-typed events.
type Event struct {
	Seq       uint64        `json:"seq"`
	Wall      time.Time     `json:"wall"`
	Dur       time.Duration `json:"dur,omitempty"`
	Type      Type          `json:"type"`
	DAG       string        `json:"dag,omitempty"`
	Tenant    string        `json:"tenant,omitempty"`
	Vertex    string        `json:"vertex,omitempty"`
	Task      int           `json:"task"`
	Attempt   int           `json:"attempt"`
	Node      string        `json:"node,omitempty"`
	Container int64         `json:"container,omitempty"`
	Info      string        `json:"info,omitempty"`
	Val       int64         `json:"val,omitempty"`
}

// Start returns the span's start time (Wall - Dur); for instant events it
// equals Wall.
func (e Event) Start() time.Time { return e.Wall.Add(-e.Dur) }

// Clock supplies timestamps. Inject a fake for deterministic tests; nil
// means time.Now.
type Clock func() time.Time

// Journal is the append-only event log. All methods are safe for
// concurrent use and are no-ops on a nil receiver (the nil-safe hook
// contract the chaos plane established).
type Journal struct {
	mu      sync.Mutex
	now     Clock
	events  []Event
	nextSeq map[string]uint64 // per-run stream → next sequence number
	// streamTenant maps a run stream (DAG id) to its tenant; Record fills
	// Event.Tenant from it when the recording layer did not, so one
	// TagStream at submission tags the whole stream.
	streamTenant map[string]string
}

// Option configures a Journal at construction.
type Option func(*Journal)

// WithClock makes the journal stamp events from c instead of time.Now.
func WithClock(c Clock) Option {
	return func(j *Journal) {
		if c != nil {
			j.now = c
		}
	}
}

// New returns an empty journal.
func New(opts ...Option) *Journal {
	j := &Journal{
		now:          time.Now,
		nextSeq:      make(map[string]uint64),
		streamTenant: make(map[string]string),
	}
	for _, o := range opts {
		o(j)
	}
	return j
}

// Record appends e, assigning the next sequence number of its run stream
// and stamping Wall from the journal's clock unless the caller set it.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextSeq[e.DAG]++
	e.Seq = j.nextSeq[e.DAG]
	if e.Tenant == "" && e.DAG != "" {
		e.Tenant = j.streamTenant[e.DAG]
	}
	if e.Wall.IsZero() {
		e.Wall = j.now()
	}
	j.events = append(j.events, e)
}

// TagStream attributes a run stream (DAG id) to a tenant: subsequent
// Records into that stream inherit the tenant unless they set their own.
// Call it before the stream's first event (the AM does, at submission).
func (j *Journal) TagStream(dag, tenant string) {
	if j == nil || dag == "" || tenant == "" {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.streamTenant[dag] = tenant
}

// FilterTenant returns the events attributed to the given tenant, in the
// original order.
func FilterTenant(events []Event, tenant string) []Event {
	var out []Event
	for _, e := range events {
		if e.Tenant == tenant {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of recorded events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Events returns a copy of all events in append order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// DAGEvents returns the given run's stream in sequence order.
func (j *Journal) DAGEvents(dag string) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for _, e := range j.events {
		if e.DAG == dag {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Import merges a checkpointed run stream into the journal (AM recovery):
// events already present — recognised by their sequence number being at
// or below the stream's high-water mark, since streams are contiguous —
// are skipped, and subsequent Records continue after the highest imported
// sequence. The result is one coherent history per run with no duplicate
// or gap sequence numbers across the crash. Returns the number of events
// actually imported.
func (j *Journal) Import(events []Event) int {
	if j == nil || len(events) == 0 {
		return 0
	}
	sorted := append([]Event(nil), events...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Seq < sorted[b].Seq })
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range sorted {
		if e.Seq <= j.nextSeq[e.DAG] {
			continue // already recorded (same-journal recovery)
		}
		j.nextSeq[e.DAG] = e.Seq
		j.events = append(j.events, e)
		n++
	}
	return n
}

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a journal written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
