package timeline

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Chrome trace-event export (the catapult JSON format Perfetto loads):
// a {"traceEvents": [...]} object whose events carry ph/ts/pid/tid.
// Attempt executions, scheduler waits and shuffle fetches become complete
// ("X") spans; lifecycle transitions become instants ("i"); process and
// thread names are declared with metadata ("M") events. Each DAG run maps
// to a pid; containers, the AM control plane and shuffle servers map to
// tids within it, which is what gives Perfetto its swimlanes.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	// Dur is never omitted: complete ("X") spans require the key even
	// when the modelled duration rounds to zero.
	Dur float64 `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// laneTable allocates stable pid/tid pairs and their metadata events.
type laneTable struct {
	pids  map[string]int
	tids  map[string]int
	metas []chromeEvent
}

func newLaneTable() *laneTable {
	return &laneTable{pids: map[string]int{}, tids: map[string]int{}}
}

func (t *laneTable) pid(name string) int {
	if name == "" {
		name = "session"
	}
	if id, ok := t.pids[name]; ok {
		return id
	}
	id := len(t.pids) + 1
	t.pids[name] = id
	t.metas = append(t.metas, chromeEvent{
		Name: "process_name", Ph: "M", Pid: id, Tid: 0,
		Args: map[string]any{"name": name},
	})
	return id
}

func (t *laneTable) tid(pid int, lane string) int {
	key := fmt.Sprintf("%d/%s", pid, lane)
	if id, ok := t.tids[key]; ok {
		return id
	}
	id := len(t.tids) + 1
	t.tids[key] = id
	t.metas = append(t.metas, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: id,
		Args: map[string]any{"name": lane},
	})
	return id
}

// ChromeTrace renders the events as Chrome trace-event JSON.
func ChromeTrace(events []Event) ([]byte, error) {
	// Timestamps are offsets from the earliest span start, in µs.
	var base time.Time
	for _, e := range events {
		if s := e.Start(); base.IsZero() || s.Before(base) {
			base = s
		}
	}
	us := func(t time.Time) float64 { return float64(t.Sub(base)) / float64(time.Microsecond) }

	lanes := newLaneTable()
	var out []chromeEvent
	for _, e := range events {
		pid := lanes.pid(e.DAG)
		switch e.Type {
		case AttemptFinished:
			lane := fmt.Sprintf("container-%d (%s)", e.Container, e.Node)
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("%s/t%03d_a%d", e.Vertex, e.Task, e.Attempt),
				Ph:   "X", Ts: us(e.Start()), Dur: float64(e.Dur) / float64(time.Microsecond),
				Pid: pid, Tid: lanes.tid(pid, lane),
				Args: map[string]any{"node": e.Node, "outcome": e.Info},
			})
		case AttemptStarted:
			// The closed request→allocate→launch span (Val = wait ns).
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("alloc %s/t%03d_a%d", e.Vertex, e.Task, e.Attempt),
				Ph:   "X", Ts: us(e.Wall.Add(-time.Duration(e.Val))), Dur: float64(e.Val) / float64(time.Microsecond),
				Pid: pid, Tid: lanes.tid(pid, "scheduler"),
				Args: map[string]any{"locality": e.Info, "node": e.Node},
			})
		case ShuffleFetch:
			args := map[string]any{"bytes": e.Val, "reader": e.Info}
			if _, spill := fetchInfoParts(e.Info); spill > 0 {
				args["spill"] = spill
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("fetch %s/t%03d_a%d", e.Vertex, e.Task, e.Attempt),
				Ph:   "X", Ts: us(e.Start()), Dur: float64(e.Dur) / float64(time.Microsecond),
				Pid: pid, Tid: lanes.tid(pid, "shuffle @"+e.Node),
				Args: args,
			})
		case ShuffleSpill, ShuffleMerge:
			verb := "spill"
			args := map[string]any{"records": e.Val, "edge": e.Info}
			if e.Type == ShuffleMerge {
				verb = "merge"
				args = map[string]any{"bytes": e.Val, "edge": e.Info}
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("%s %s/t%03d_a%d", verb, e.Vertex, e.Task, e.Attempt),
				Ph:   "X", Ts: us(e.Start()), Dur: float64(e.Dur) / float64(time.Microsecond),
				Pid: pid, Tid: lanes.tid(pid, "shuffle @"+e.Node),
				Args: args,
			})
		default:
			name := string(e.Type)
			if e.Vertex != "" {
				name += " " + e.Vertex
			}
			if e.Node != "" {
				name += " @" + e.Node
			}
			out = append(out, chromeEvent{
				Name: name, Ph: "i", Ts: us(e.Wall),
				Pid: pid, Tid: lanes.tid(pid, "am"), S: "t",
				Args: map[string]any{"seq": e.Seq, "info": e.Info},
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return json.MarshalIndent(chromeTrace{
		TraceEvents:     append(lanes.metas, out...),
		DisplayTimeUnit: "ms",
	}, "", " ")
}
