package timeline

import (
	"sort"
	"strconv"
	"strings"
)

// EdgeFetch summarises one shuffle edge's fetch traffic: how many fetches
// it served, the bytes moved, and how many publication increments per
// source the consumers saw — 1 for barrier-mode edges, the spill count
// for pipelined ones.
type EdgeFetch struct {
	Vertex     string // producing vertex
	Edge       string // edge name (= consumer vertex)
	Fetches    int
	Bytes      int64
	Increments int // max spill index observed + 1
}

// fetchInfoParts parses a ShuffleFetch span's Info — "<edge> p<k> -> <r>"
// or, for pipelined increments, "<edge> p<k> s<n> -> <r>" — returning the
// edge name and the spill index (0 when untagged).
func fetchInfoParts(info string) (edge string, spill int) {
	fields := strings.Fields(info)
	if len(fields) == 0 {
		return "", 0
	}
	edge = fields[0]
	for _, f := range fields[1:] {
		if f == "->" {
			break
		}
		if len(f) > 1 && f[0] == 's' {
			if n, err := strconv.Atoi(f[1:]); err == nil {
				spill = n
			}
		}
	}
	return edge, spill
}

// EdgeFetchStats aggregates one run's ShuffleFetch spans per (producing
// vertex, edge), sorted by vertex then edge. An empty dagID aggregates
// every run in the journal.
func EdgeFetchStats(events []Event, dagID string) []EdgeFetch {
	byEdge := make(map[[2]string]*EdgeFetch)
	for _, e := range events {
		if e.Type != ShuffleFetch || (dagID != "" && e.DAG != dagID) {
			continue
		}
		edge, spill := fetchInfoParts(e.Info)
		key := [2]string{e.Vertex, edge}
		ef := byEdge[key]
		if ef == nil {
			ef = &EdgeFetch{Vertex: e.Vertex, Edge: edge, Increments: 1}
			byEdge[key] = ef
		}
		ef.Fetches++
		ef.Bytes += e.Val
		if spill+1 > ef.Increments {
			ef.Increments = spill + 1
		}
	}
	out := make([]EdgeFetch, 0, len(byEdge))
	for _, ef := range byEdge {
		out = append(out, *ef)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Vertex != out[j].Vertex {
			return out[i].Vertex < out[j].Vertex
		}
		return out[i].Edge < out[j].Edge
	})
	return out
}
