// Chaos coverage for pipelined shuffle publication: producers killed
// between spill publications leave consumers holding partial increment
// streams, which the AM must retract and replace with the re-executed
// attempt's stream — and the committed output must still be byte-identical
// to a fault-free barrier run.
package chaos_test

import (
	"fmt"
	"testing"

	"tez/internal/am"
	"tez/internal/chaos"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
)

// runPipelinedWordcount runs a wordcount whose shuffle edge publishes
// pipelined increments under a tiny sort budget (so every map attempt
// publishes several) and returns the aggregated counts.
func runPipelinedWordcount(t *testing.T, plat *platform.Platform, amCfg am.Config, pipelined bool, out string) map[string]int {
	t.Helper()
	d := dag.New("pipeline-chaos")
	m := d.AddVertex("map", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "chaose2e.tokenize"}), -1)
	m.Sources = []dag.DataSource{{
		Name:        "text",
		Input:       plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: []string{"/in/words"}}),
	}}
	r := d.AddVertex("reduce", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "chaose2e.sum"}), 3)
	r.Sinks = []dag.DataSink{{
		Name:      "counts",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: out}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: out}),
	}}
	d.Connect(m, r, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output: plugin.Desc(library.OrderedPartitionedOutputName, library.OrderedPartitionedConfig{
			SortBytes: 2048,
			Pipelined: pipelined,
		}),
		Input: plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	sess := am.NewSession(plat, amCfg)
	defer sess.Close()
	res, err := sess.Run(d)
	if err != nil {
		t.Fatalf("pipelined wordcount: %v", err)
	}
	if res.Status != am.DAGSucceeded {
		t.Fatalf("pipelined wordcount: %v", res.Status)
	}
	return readWordCounts(t, plat.FS, out)
}

// TestChaosPipelinedSpillFaults kills pipelined producers right after a
// spill publication under five fixed seeds. Each death strands a partial
// increment stream at the consumers; retraction plus re-execution must
// leave the counts identical to a fault-free barrier run, and every seed
// must actually land at least one mid-stream kill.
func TestChaosPipelinedSpillFaults(t *testing.T) {
	basePlat := newChaosPlatform(nil)
	seedInputs(t, basePlat)
	baseline := runPipelinedWordcount(t, basePlat, am.Config{Name: "clean"}, false, "/out/pwc")
	basePlat.Stop()
	if len(baseline) == 0 {
		t.Fatal("fault-free barrier baseline is empty")
	}

	for _, seed := range []int64{41, 42, 43, 44, 46} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			plane := chaos.New(seed, chaos.Spec{SpillFaultProb: 0.08})
			plat := newChaosPlatform(plane)
			defer plat.Stop()
			seedInputs(t, plat)
			got := runPipelinedWordcount(t, plat, am.Config{
				Name: "pipeline-chaos", MaxTaskAttempts: 10,
			}, true, "/out/pwc")
			if len(got) != len(baseline) {
				t.Fatalf("word count groups: %d vs %d", len(got), len(baseline))
			}
			for k, v := range baseline {
				if got[k] != v {
					t.Errorf("count %q = %d under spill faults, want %d", k, got[k], v)
				}
			}
			if n := plane.Injected()["spill"]; n == 0 {
				t.Errorf("seed %d injected no spill faults — schedule too weak to prove anything", seed)
			} else {
				t.Logf("seed %d: %d mid-stream producer kills", seed, n)
			}
		})
	}
}
