package chaos

import (
	"testing"
	"time"
)

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = string(rune('a'+i)) + "-node"
	}
	return nodes
}

// Same seed + spec + node list ⇒ identical bound schedule.
func TestSameSeedSameSchedule(t *testing.T) {
	spec := Spec{
		SickNodeCount:     1,
		SlowNodeCount:     2,
		SlowExecDelay:     5 * time.Millisecond,
		CrashNodes:        2,
		DecommissionNodes: 1,
		StepSpacing:       3,
	}
	nodes := testNodes(8)
	a := New(42, spec)
	b := New(42, spec)
	a.Bind(nodes)
	b.Bind(nodes)
	if a.Describe() != b.Describe() {
		t.Fatalf("same seed produced different schedules:\n  %s\n  %s", a.Describe(), b.Describe())
	}
	if len(a.Schedule()) != 3 {
		t.Fatalf("expected 3 node actions, got %v", a.Schedule())
	}
	seen := map[string]bool{}
	for _, act := range a.Schedule() {
		if seen[act.Node] {
			t.Fatalf("node %s targeted twice: %v", act.Node, a.Schedule())
		}
		seen[act.Node] = true
	}

	c := New(43, spec)
	c.Bind(nodes)
	if a.Describe() == c.Describe() {
		t.Fatalf("different seeds produced identical schedules: %s", a.Describe())
	}
}

// Decisions are a pure function of (seed, site, call index): two planes
// asked the same questions in different interleavings answer identically.
func TestDecisionStreamDeterminism(t *testing.T) {
	spec := Spec{
		TransientFetchProb: 0.3,
		FetchDataLostProb:  0.05,
		LaunchFailProb:     0.2,
		TaskFaultProb:      0.1,
		DFSReadFaultProb:   0.15,
	}
	a := New(7, spec)
	b := New(7, spec)

	sites := []string{"v1/t000_a0/p0/r1", "v1/t001_a0/p0/r1", "v2/t000_a1/p3/r0"}
	// Plane a: site-major order; plane b: round-major order. Per-site
	// streams must match regardless.
	type draw struct {
		site string
		f    Fault
	}
	var got [2][]draw
	for pi, p := range []*Plane{a, b} {
		record := func(site string) { got[pi] = append(got[pi], draw{site, p.FetchFault(site)}) }
		if pi == 0 {
			for _, s := range sites {
				for r := 0; r < 20; r++ {
					record(s)
				}
			}
		} else {
			for r := 0; r < 20; r++ {
				for _, s := range sites {
					record(s)
				}
			}
		}
	}
	perSite := func(ds []draw) map[string][]Fault {
		m := map[string][]Fault{}
		for _, d := range ds {
			m[d.site] = append(m[d.site], d.f)
		}
		return m
	}
	ma, mb := perSite(got[0]), perSite(got[1])
	for _, s := range sites {
		if len(ma[s]) != len(mb[s]) {
			t.Fatalf("site %s: draw count mismatch", s)
		}
		for i := range ma[s] {
			if ma[s][i] != mb[s][i] {
				t.Fatalf("site %s draw %d: %v vs %v", s, i, ma[s][i], mb[s][i])
			}
		}
	}

	// Other decision kinds are deterministic too.
	for i := 0; i < 50; i++ {
		if a.LaunchFault("n1", "") != b.LaunchFault("n1", "") {
			t.Fatalf("launch decision %d diverged", i)
		}
		if a.DFSReadFault("/in/part-0", "n2") != b.DFSReadFault("/in/part-0", "n2") {
			t.Fatalf("dfs decision %d diverged", i)
		}
		ea, eb := a.ExecFault("n3", "v1/t000_a0"), b.ExecFault("n3", "v1/t000_a0")
		if (ea == nil) != (eb == nil) {
			t.Fatalf("exec decision %d diverged", i)
		}
	}
}

// Probabilities actually bite: over many draws the hit rate lands near p.
func TestRollRates(t *testing.T) {
	p := New(99, Spec{TransientFetchProb: 0.25})
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if p.FetchFault("site") == FaultTransient {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.18 || rate > 0.32 {
		t.Fatalf("transient rate %.3f far from 0.25", rate)
	}
}

// Node actions fire exactly once, at their step, via the bound callbacks.
func TestNodeActionsFireAtStep(t *testing.T) {
	p := New(5, Spec{NodeActions: []NodeAction{
		{Step: 2, Node: "n1"},
		{Step: 3, Node: "n2", Decommission: true},
	}})
	p.Bind([]string{"n1", "n2", "n3"})
	failed := make(chan string, 4)
	decom := make(chan string, 4)
	p.FailNode = func(n string) { failed <- n }
	p.DecommissionNode = func(n string) { decom <- n }

	p.TaskStarted("n3") // step 1: nothing due
	select {
	case n := <-failed:
		t.Fatalf("premature failure of %s", n)
	case <-time.After(20 * time.Millisecond):
	}
	p.TaskStarted("n3") // step 2: crash n1
	select {
	case n := <-failed:
		if n != "n1" {
			t.Fatalf("crashed %s, want n1", n)
		}
	case <-time.After(time.Second):
		t.Fatal("crash action never fired")
	}
	p.TaskStarted("n3") // step 3: decommission n2
	select {
	case n := <-decom:
		if n != "n2" {
			t.Fatalf("decommissioned %s, want n2", n)
		}
	case <-time.After(time.Second):
		t.Fatal("decommission action never fired")
	}
	p.TaskStarted("n3")
	select {
	case n := <-failed:
		t.Fatalf("action re-fired for %s", n)
	case n := <-decom:
		t.Fatalf("action re-fired for %s", n)
	case <-time.After(20 * time.Millisecond):
	}
}

// The AM-crash trigger fires exactly once at the configured count.
func TestAMCrashOnce(t *testing.T) {
	p := New(1, Spec{AMCrashAfterVertexCompletions: 2})
	if p.OnVertexCompleted() {
		t.Fatal("crashed after 1 completion, want 2")
	}
	if !p.OnVertexCompleted() {
		t.Fatal("did not crash after 2 completions")
	}
	for i := 0; i < 5; i++ {
		if p.OnVertexCompleted() {
			t.Fatal("crashed twice")
		}
	}
}

// A nil plane is inert everywhere.
func TestNilPlaneNoOps(t *testing.T) {
	var p *Plane
	p.Bind([]string{"n1"})
	p.TaskStarted("n1")
	if p.ExecFault("n1", "s") != nil || p.ExecDelay("n1") != 0 || p.LaunchFault("n1", "") {
		t.Fatal("nil plane injected an exec/launch fault")
	}
	if p.FetchFault("s") != FaultNone || p.FetchDelayFactor("n1") != 1 || p.DFSReadFault("p", "n1") {
		t.Fatal("nil plane injected a fetch/dfs fault")
	}
	if p.OnVertexCompleted() || p.Step() != 0 || p.Schedule() != nil || p.Injected() != nil {
		t.Fatal("nil plane reported state")
	}
	if p.Describe() != "chaos: off" {
		t.Fatalf("nil Describe = %q", p.Describe())
	}
}
