// Package chaos is a seeded, deterministic fault-injection plane for the
// simulated cluster. A single Plane is shared by the resource manager, the
// shuffle service, the DFS and the AM; each layer calls a nil-safe hook at
// its natural fault point and the plane decides — from the seed and a
// stable per-site key, never from wall-clock or goroutine interleaving —
// whether that operation fails, how slowly it runs, and when scheduled
// whole-node events (crash, decommission) fire.
//
// Determinism contract: a Plane built from (seed, Spec) and bound to the
// same node list always produces the same node-event schedule, the same
// sick/slow node sets, and the same per-site decision stream. Decisions
// are pure functions of (seed, site key, per-site call index), so two runs
// that issue the same logical operations see the same faults regardless of
// thread interleaving. The production path passes a nil *Plane everywhere
// and every hook is a no-op.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Injected failures surfaced to the layers.
var (
	// ErrTaskFault is returned by container execution on sick nodes (and
	// on TaskFaultProb rolls): the task attempt fails as if the process
	// had crashed, exercising task re-execution and node blacklisting.
	ErrTaskFault = errors.New("chaos: injected task fault")
	// ErrAMCrash marks a DAG torn down by an injected AM crash; with
	// checkpointing enabled a fresh session can Recover it.
	ErrAMCrash = errors.New("chaos: injected AM crash")
)

// Fault classifies the outcome of a fetch-path decision.
type Fault int

// Fetch-decision outcomes.
const (
	FaultNone Fault = iota
	// FaultTransient is a retryable network-style error.
	FaultTransient
	// FaultDataLost is a permanent error: the consumer must report the
	// loss so the producer is re-executed.
	FaultDataLost
)

// NodeAction is one scheduled whole-node event: when the plane's step
// counter (advanced once per task execution) reaches Step, Node is crashed
// or decommissioned through the callbacks bound by the platform.
type NodeAction struct {
	Step         int
	Node         string
	Decommission bool
}

func (a NodeAction) String() string {
	kind := "crash"
	if a.Decommission {
		kind = "decommission"
	}
	return fmt.Sprintf("step %d: %s %s", a.Step, kind, a.Node)
}

// Spec declares a fault schedule. All probabilities are in [0,1); zero
// values inject nothing.
type Spec struct {
	// TransientFetchProb injects retryable shuffle-fetch errors.
	TransientFetchProb float64
	// FetchDataLostProb injects permanent shuffle-fetch errors (the
	// consumer reports an InputReadError and the producer re-executes).
	FetchDataLostProb float64
	// LaunchFailProb makes container launches fail (allocation succeeded,
	// the process never came up — the scheduler must re-request).
	LaunchFailProb float64
	// TaskFaultProb fails task executions on any node.
	TaskFaultProb float64
	// DFSReadFaultProb injects transient errors into DFS reads issued from
	// a task node (reads with an empty local node — committers, test
	// verification — are never injected).
	DFSReadFaultProb float64
	// SpillFaultProb kills a pipelined producer attempt right after it has
	// published a spill increment — the mid-stream death that forces the
	// AM to retract partially-published increments.
	SpillFaultProb float64

	// SickNodes lists nodes on which every task execution fails; SickNodeCount
	// instead picks that many nodes deterministically from the seed at Bind.
	// Sick nodes exercise the blacklisting path: the node is alive and
	// accepts containers, but work placed there always dies.
	SickNodes     []string
	SickNodeCount int

	// SlowNodes (or SlowNodeCount, seed-picked at Bind) run every task
	// execution SlowExecDelay later and serve shuffle fetches
	// SlowFetchFactor× slower — straggler material for speculation.
	SlowNodes       []string
	SlowNodeCount   int
	SlowExecDelay   time.Duration
	SlowFetchFactor float64

	// NodeActions is an explicit node-event schedule. CrashNodes /
	// DecommissionNodes instead generate that many events at Bind,
	// StepSpacing steps apart (default 4), on seed-picked distinct nodes.
	NodeActions       []NodeAction
	CrashNodes        int
	DecommissionNodes int
	StepSpacing       int

	// AMCrashAfterVertexCompletions crashes the AM (once) after that many
	// vertex completions across the plane's lifetime.
	AMCrashAfterVertexCompletions int

	// ScopeTenantPrefix, when non-empty, restricts fault injection to
	// operations whose scope tag starts with the prefix — the tenant-
	// isolation drill: faults land only on one tenant's traffic while
	// everyone else runs clean. Tags per hook: task execution and
	// container launch carry the owning app's tenant name; shuffle
	// fetches carry the fetch site, which begins with the DAG run id
	// ("<session>.<dag>.<seq>") — name sessions after tenants and the
	// prefix matches; DFS reads carry the file path. Node-level
	// behaviours (sick/slow node picks are still made, node actions,
	// exec delays) are whole-machine and stay unscoped, but a sick
	// node only fails executions whose tag is in scope.
	ScopeTenantPrefix string
}

// inScope reports whether a fault with the given scope tag may be
// injected under ScopeTenantPrefix. An empty scope admits everything.
func (p *Plane) inScope(tag string) bool {
	return p.spec.ScopeTenantPrefix == "" || strings.HasPrefix(tag, p.spec.ScopeTenantPrefix)
}

// Plane carries one seeded fault schedule. The zero/nil Plane injects
// nothing; every exported method is safe on a nil receiver.
type Plane struct {
	seed int64
	spec Spec

	// FailNode and DecommissionNode are bound by the platform so scheduled
	// node actions take out containers, DFS replicas and shuffle outputs
	// together. Unset callbacks make node actions no-ops.
	FailNode         func(node string)
	DecommissionNode func(node string)
	// Observer, when set, is told about every injected fault as (kind,
	// site) — the platform binds it to the timeline journal. Called
	// outside the plane's lock.
	Observer func(kind, site string)

	nodes   []string
	actions []NodeAction // sorted by Step
	sick    map[string]bool
	slow    map[string]bool

	mu         sync.Mutex
	step       int
	nextAction int
	amCrashed  bool
	completed  int // vertex completions observed
	sites      map[string]uint64
	injected   map[string]int64
}

// New builds a plane from a seed and spec. Zero seed means 1. Call Bind
// before use so node-targeted entries resolve against the real topology
// (platform.New does this when Config.Chaos is set).
func New(seed int64, spec Spec) *Plane {
	if seed == 0 {
		seed = 1
	}
	return &Plane{
		seed:     seed,
		spec:     spec,
		sick:     map[string]bool{},
		slow:     map[string]bool{},
		sites:    map[string]uint64{},
		injected: map[string]int64{},
	}
}

// Bind resolves the schedule against the cluster's node list: seed-picked
// sick/slow nodes and generated node actions become concrete. Binding is
// idempotent for a given node list and deterministic in the seed.
func (p *Plane) Bind(nodes []string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nodes = append([]string(nil), nodes...)
	rng := rand.New(rand.NewSource(p.seed))
	p.sick = map[string]bool{}
	p.slow = map[string]bool{}
	for _, n := range p.spec.SickNodes {
		p.sick[n] = true
	}
	for _, n := range p.spec.SlowNodes {
		p.slow[n] = true
	}
	pick := func(k int, into map[string]bool, avoid map[string]bool) {
		perm := rng.Perm(len(nodes))
		taken := 0
		for _, i := range perm {
			if taken >= k {
				break
			}
			n := nodes[i]
			if into[n] || (avoid != nil && avoid[n]) {
				continue
			}
			into[n] = true
			taken++
		}
	}
	pick(p.spec.SickNodeCount, p.sick, nil)
	pick(p.spec.SlowNodeCount, p.slow, p.sick)

	spacing := p.spec.StepSpacing
	if spacing <= 0 {
		spacing = 4
	}
	p.actions = append([]NodeAction(nil), p.spec.NodeActions...)
	victims := map[string]bool{}
	pick(p.spec.CrashNodes+p.spec.DecommissionNodes, victims, nil)
	names := make([]string, 0, len(victims))
	for n := range victims {
		names = append(names, n)
	}
	sort.Strings(names)
	// Shuffle deterministically so victim order is not lexical.
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	for i, n := range names {
		p.actions = append(p.actions, NodeAction{
			Step:         spacing * (i + 1),
			Node:         n,
			Decommission: i >= p.spec.CrashNodes,
		})
	}
	sort.SliceStable(p.actions, func(i, j int) bool { return p.actions[i].Step < p.actions[j].Step })
	p.nextAction = 0
}

// Schedule returns the bound node-event schedule (for determinism tests
// and reports).
func (p *Plane) Schedule() []NodeAction {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]NodeAction(nil), p.actions...)
}

// SickNodes returns the bound always-failing node set, sorted.
func (p *Plane) SickNodes() []string { return p.nodeSet(func(p *Plane) map[string]bool { return p.sick }) }

// SlowNodes returns the bound slow node set, sorted.
func (p *Plane) SlowNodes() []string { return p.nodeSet(func(p *Plane) map[string]bool { return p.slow }) }

func (p *Plane) nodeSet(get func(*Plane) map[string]bool) []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(get(p)))
	for n := range get(p) {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe renders the bound schedule — two planes with the same seed and
// spec describe identically (the determinism check CI pins).
func (p *Plane) Describe() string {
	if p == nil {
		return "chaos: off"
	}
	var b []byte
	b = fmt.Appendf(b, "seed=%d sick=%v slow=%v actions=[", p.seed, p.SickNodes(), p.SlowNodes())
	for i, a := range p.Schedule() {
		if i > 0 {
			b = append(b, "; "...)
		}
		b = append(b, a.String()...)
	}
	b = append(b, ']')
	return string(b)
}

// Injected snapshots per-kind injection counts (observability and tests).
func (p *Plane) Injected() map[string]int64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.injected))
	for k, v := range p.injected {
		out[k] = v
	}
	return out
}

// roll makes one deterministic decision for a site: the n-th call for a
// given site key always sees the same pseudo-random draw for a given seed.
func (p *Plane) roll(kind, site string, prob float64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	p.mu.Lock()
	n := p.sites[kind+"\x00"+site]
	p.sites[kind+"\x00"+site] = n + 1
	p.mu.Unlock()
	h := mix(uint64(p.seed) ^ mix(hashString(kind)^hashString(site)+n))
	hit := float64(h>>11)/(1<<53) < prob
	if hit {
		p.mu.Lock()
		p.injected[kind]++
		p.mu.Unlock()
		if p.Observer != nil {
			p.Observer(kind, site)
		}
	}
	return hit
}

// TaskStarted advances the step clock (one tick per task execution) and
// fires any node actions that have come due. Actions run asynchronously:
// the kill path takes platform locks the caller may be under.
func (p *Plane) TaskStarted(node string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.step++
	var due []NodeAction
	for p.nextAction < len(p.actions) && p.actions[p.nextAction].Step <= p.step {
		due = append(due, p.actions[p.nextAction])
		p.nextAction++
	}
	fail, decom := p.FailNode, p.DecommissionNode
	if len(due) > 0 {
		p.injected["node_actions"] += int64(len(due))
	}
	p.mu.Unlock()
	if p.Observer != nil {
		for _, a := range due {
			p.Observer("node_action", a.String())
		}
	}
	for _, a := range due {
		a := a
		go func() {
			if a.Decommission {
				if decom != nil {
					decom(a.Node)
				}
			} else if fail != nil {
				fail(a.Node)
			}
		}()
	}
}

// Step returns the current step-clock value.
func (p *Plane) Step() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.step
}

// ExecFault decides whether a task execution on node fails. site is the
// scope tag of the execution (the cluster passes the container's tenant;
// "" when untenanted) and also keys the decision stream.
func (p *Plane) ExecFault(node, site string) error {
	if p == nil {
		return nil
	}
	if !p.inScope(site) {
		return nil
	}
	p.mu.Lock()
	sick := p.sick[node]
	if sick {
		p.injected["exec_sick"]++
	}
	p.mu.Unlock()
	if sick {
		if p.Observer != nil {
			p.Observer("exec_sick", node+"/"+site)
		}
		return fmt.Errorf("%w (sick node %s)", ErrTaskFault, node)
	}
	if p.roll("exec", node+"/"+site, p.spec.TaskFaultProb) {
		return fmt.Errorf("%w (node %s)", ErrTaskFault, node)
	}
	return nil
}

// ExecDelay returns the extra latency a task execution on node pays.
func (p *Plane) ExecDelay(node string) time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.slow[node] {
		p.injected["slow_exec"]++
		return p.spec.SlowExecDelay
	}
	return 0
}

// LaunchFault decides whether a container launch on node fails. tag is
// the launch's scope tag (the owning app's tenant; "" when untenanted)
// and does not key the decision stream, so untenanted runs draw the same
// stream they always did.
func (p *Plane) LaunchFault(node, tag string) bool {
	if p == nil || !p.inScope(tag) {
		return false
	}
	return p.roll("launch", node, p.spec.LaunchFailProb)
}

// FetchFault decides the fate of one shuffle fetch. site should name the
// (output, partition, reader) so retries of the same fetch draw fresh
// decisions in a stable stream.
func (p *Plane) FetchFault(site string) Fault {
	if p == nil || !p.inScope(site) {
		return FaultNone
	}
	if p.roll("fetch_lost", site, p.spec.FetchDataLostProb) {
		return FaultDataLost
	}
	if p.roll("fetch_transient", site, p.spec.TransientFetchProb) {
		return FaultTransient
	}
	return FaultNone
}

// FetchDelayFactor multiplies the transfer cost of fetches served by node.
func (p *Plane) FetchDelayFactor(node string) float64 {
	if p == nil {
		return 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.slow[node] && p.spec.SlowFetchFactor > 1 {
		p.injected["slow_fetch"]++
		return p.spec.SlowFetchFactor
	}
	return 1
}

// DFSReadFault decides whether a DFS read issued from node fails
// transiently. Under a tenant scope the path is the tag; paths rarely
// carry tenant names, so scoped specs effectively suppress DFS faults.
func (p *Plane) DFSReadFault(path, node string) bool {
	if p == nil || !p.inScope(path) {
		return false
	}
	return p.roll("dfs_read", node+"/"+path, p.spec.DFSReadFaultProb)
}

// SpillFault reports whether a pipelined producer should die right after
// publishing the spill increment identified by site (the spill-indexed
// output id) — exercised between increments, so consumers see a partial
// stream that the AM must retract.
func (p *Plane) SpillFault(site string) bool {
	if p == nil || !p.inScope(site) {
		return false
	}
	return p.roll("spill", site, p.spec.SpillFaultProb)
}

// OnVertexCompleted counts a vertex completion and reports — exactly once
// — that the AM should crash now.
func (p *Plane) OnVertexCompleted() bool {
	if p == nil || p.spec.AMCrashAfterVertexCompletions <= 0 {
		return false
	}
	p.mu.Lock()
	crash := false
	p.completed++
	if !p.amCrashed && p.completed >= p.spec.AMCrashAfterVertexCompletions {
		p.amCrashed = true
		p.injected["am_crash"]++
		crash = true
	}
	p.mu.Unlock()
	if crash && p.Observer != nil {
		p.Observer("am_crash", fmt.Sprintf("after %d vertex completions", p.spec.AMCrashAfterVertexCompletions))
	}
	return crash
}

// mix is the splitmix64 finalizer: a cheap, well-distributed hash step.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a 64.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
