package chaos

import "testing"

// TestScopeTenantPrefix: with a scope set, every fault hook fires only
// for tags carrying the scoped prefix — the mechanism behind tenant-
// isolation chaos (the tag is the tenant for exec/launch and the
// tenant-prefixed run id for fetch).
func TestScopeTenantPrefix(t *testing.T) {
	p := New(7, Spec{
		ScopeTenantPrefix:  "A",
		TaskFaultProb:      1,
		LaunchFailProb:     1,
		TransientFetchProb: 1,
		DFSReadFaultProb:   1,
	})

	// Out of scope: no hook may ever fire.
	for i := 0; i < 20; i++ {
		if err := p.ExecFault("n1", "B"); err != nil {
			t.Fatalf("exec fault leaked into tenant B: %v", err)
		}
		if err := p.ExecFault("n1", ""); err != nil {
			t.Fatalf("exec fault leaked into untenanted run: %v", err)
		}
		if p.LaunchFault("n1", "B") {
			t.Fatal("launch fault leaked into tenant B")
		}
		if f := p.FetchFault("B.job.1/out/0"); f != FaultNone {
			t.Fatalf("fetch fault leaked into tenant B: %v", f)
		}
		if p.DFSReadFault("/in/words", "n1") {
			t.Fatal("DFS fault fired on an unscoped path")
		}
	}
	if n := len(p.Injected()); n != 0 {
		t.Fatalf("out-of-scope probes injected %d fault kinds: %v", n, p.Injected())
	}

	// In scope: probability-1 hooks must fire.
	if err := p.ExecFault("n1", "A"); err == nil {
		t.Fatal("exec fault suppressed for the scoped tenant")
	}
	if !p.LaunchFault("n1", "A") {
		t.Fatal("launch fault suppressed for the scoped tenant")
	}
	if f := p.FetchFault("A.job.1/out/0"); f == FaultNone {
		t.Fatal("fetch fault suppressed for the scoped tenant's run")
	}
}

// TestScopeEmptyIsUniversal: no scope means every tag is eligible — the
// pre-scoping behaviour.
func TestScopeEmptyIsUniversal(t *testing.T) {
	p := New(7, Spec{TaskFaultProb: 1})
	if err := p.ExecFault("n1", ""); err == nil {
		t.Fatal("untenanted exec fault suppressed without a scope")
	}
	if err := p.ExecFault("n1", "B"); err == nil {
		t.Fatal("tenant exec fault suppressed without a scope")
	}
}
