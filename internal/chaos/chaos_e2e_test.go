// End-to-end chaos suite: the acceptance gate for the fault-injection
// plane. Every seeded schedule — transient and permanent fetch faults,
// task and launch faults, DFS read faults, node crashes, drains, slow
// nodes — must leave the final results byte-identical (after canonical
// ordering) to a fault-free run of the same three DAG families.
//
// This lives in an external test package so it can drive the AM, relop
// and sparklike layers without an import cycle (they all import chaos).
package chaos_test

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"tez/internal/am"
	"tez/internal/chaos"
	"tez/internal/data"
	"tez/internal/dfs"
	"tez/internal/library"
	"tez/internal/mapreduce"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
	"tez/internal/runtime"
	"tez/internal/sparklike"
)

func init() {
	library.RegisterMapFunc("chaose2e.tokenize", func(_, line []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(line)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("chaose2e.sum", func(key []byte, values [][]byte, out runtime.KVWriter) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		return out.Write(key, []byte(strconv.Itoa(total)))
	})
}

func newChaosPlatform(plane *chaos.Plane) *platform.Platform {
	return newChaosPlatformN(plane, 8)
}

func newChaosPlatformN(plane *chaos.Plane, nodes int) *platform.Platform {
	cfg := platform.Fast(nodes)
	cfg.Chaos = plane
	return platform.New(cfg)
}

// seedInputs writes the identical inputs on every platform: text lines for
// wordcount and a deterministic Zipf pair table for relop and sparklike.
func seedInputs(t *testing.T, plat *platform.Platform) *relop.Table {
	t.Helper()
	wr, err := library.CreateRecordFile(plat.FS, "/in/words", plat.FS.LiveNodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		line := fmt.Sprintf("tez dag vertex %d edge task %d attempt shuffle", i%7, i%13)
		if err := wr.Write(nil, []byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	tb, err := data.GenZipfPairs(plat.FS, "pairs", 600, 40, 1.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// e2eResults is the canonicalised output of the three DAG families. Part
// file layout may differ between runs (auto-parallelism, re-execution), so
// results are aggregated/sorted before comparison — the data, not the
// accidental file arrangement, must match.
type e2eResults struct {
	WordCounts map[string]int
	AggRows    string
	PartRows   string
}

func runAllDAGs(t *testing.T, plat *platform.Platform, tb *relop.Table, amCfg am.Config) e2eResults {
	t.Helper()
	sess := am.NewSession(plat, amCfg)
	defer sess.Close()

	if _, err := mapreduce.RunOnTez(sess, mapreduce.JobConf{
		Name: "wc", Map: "chaose2e.tokenize", Reduce: "chaose2e.sum",
		InputPaths: []string{"/in/words"}, OutputPath: "/out/wc",
		Reducers: 3, SplitSize: 2 * 1024,
	}); err != nil {
		t.Fatalf("wordcount: %v", err)
	}

	plan := relop.StoreNode(
		relop.AggNode(relop.Scan(tb),
			[]*relop.Expr{relop.Col(0)}, []string{"k"},
			[]relop.AggDef{{Func: "sum", Arg: relop.Col(1), Name: "s"}}),
		"/out/agg")
	if _, err := relop.RunTez(sess, relop.Config{}, "agg", []*relop.Node{plan}); err != nil {
		t.Fatalf("relop: %v", err)
	}

	if err := sparklike.RunPartitionTez(sess, "part", sparklike.PartitionJob{
		Table: tb, KeyCol: 0, Partitions: 3, OutPath: "/out/part",
	}); err != nil {
		t.Fatalf("sparklike: %v", err)
	}

	return e2eResults{
		WordCounts: readWordCounts(t, plat.FS, "/out/wc"),
		AggRows:    canonRows(t, plat.FS, "/out/agg"),
		PartRows:   canonRows(t, plat.FS, "/out/part"),
	}
}

func readWordCounts(t *testing.T, fs *dfs.FileSystem, out string) map[string]int {
	t.Helper()
	res := map[string]int{}
	for _, f := range fs.List(out + "/part-") {
		blob, err := fs.ReadFile(f, "")
		if err != nil {
			t.Fatal(err)
		}
		r := library.NewPaddedReader(blob)
		for r.Next() {
			n, err := strconv.Atoi(string(r.Value()))
			if err != nil {
				t.Fatal(err)
			}
			res[string(r.Key())] += n
		}
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	}
	return res
}

func canonRows(t *testing.T, fs *dfs.FileSystem, path string) string {
	t.Helper()
	rows, err := relop.ReadStored(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = string(row.EncodeKey(nil, r...))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func totalInjected(p *chaos.Plane) int64 {
	var n int64
	for _, v := range p.Injected() {
		n += v
	}
	return n
}

func checkEqual(t *testing.T, got, want e2eResults) {
	t.Helper()
	if !reflect.DeepEqual(got.WordCounts, want.WordCounts) {
		t.Errorf("wordcount diverged under chaos:\ngot:  %v\nwant: %v", got.WordCounts, want.WordCounts)
	}
	if got.AggRows != want.AggRows {
		t.Errorf("relop aggregate diverged under chaos")
	}
	if got.PartRows != want.PartRows {
		t.Errorf("sparklike partition diverged under chaos")
	}
}

// TestChaosSeedsMatchFaultFree runs the three DAG families under ten fixed
// seeded fault schedules and demands results identical to a fault-free
// run. Seeds rotate extra whole-node events on top of a common background
// of fetch/task/launch/DFS faults; node events stay within Replication-1
// so the DFS keeps every block readable.
func TestChaosSeedsMatchFaultFree(t *testing.T) {
	basePlat := newChaosPlatform(nil)
	tb := seedInputs(t, basePlat)
	baseline := runAllDAGs(t, basePlat, tb, am.Config{Name: "clean"})
	basePlat.Stop()
	if len(baseline.WordCounts) == 0 || baseline.AggRows == "" || baseline.PartRows == "" {
		t.Fatal("fault-free baseline is empty")
	}

	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := chaos.Spec{
				TransientFetchProb: 0.20,
				FetchDataLostProb:  0.03,
				LaunchFailProb:     0.05,
				TaskFaultProb:      0.05,
				DFSReadFaultProb:   0.02,
				StepSpacing:        3,
			}
			amCfg := am.Config{Name: "chaos", MaxTaskAttempts: 8}
			switch seed % 3 {
			case 0:
				spec.CrashNodes = 1 // == Replication-1 on the Fast platform
			case 1:
				spec.DecommissionNodes = 1
			case 2:
				spec.SlowNodeCount = 1
				spec.SlowExecDelay = 2 * time.Millisecond
				spec.SlowFetchFactor = 3
				amCfg.Speculation = true
			}
			plane := chaos.New(seed, spec)
			plat := newChaosPlatform(plane)
			defer plat.Stop()
			tb := seedInputs(t, plat)
			got := runAllDAGs(t, plat, tb, amCfg)
			checkEqual(t, got, baseline)
			if totalInjected(plane) == 0 {
				t.Errorf("seed %d injected no faults — schedule too weak to prove anything", seed)
			}
			t.Logf("seed %d: %d faults injected, schedule %v", seed, totalInjected(plane), plane.Schedule())
		})
	}
}

// TestChaosSickNodeEndToEnd: a seed-picked permanently failing node must
// not change any result — blacklisting steers work off it while the rest
// of the cluster carries the DAGs.
func TestChaosSickNodeEndToEnd(t *testing.T) {
	basePlat := newChaosPlatform(nil)
	tb := seedInputs(t, basePlat)
	baseline := runAllDAGs(t, basePlat, tb, am.Config{Name: "clean"})
	basePlat.Stop()

	// Both seeds pick node-000 as the sick machine — the node the RM fills
	// first, so the fault path is guaranteed to be exercised.
	for _, seed := range []int64{22, 27} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			// 4 nodes, not 8: with container reuse only a few machines see
			// work, and on a small cluster the sick one reliably does.
			plane := chaos.New(seed, chaos.Spec{SickNodeCount: 1})
			plat := newChaosPlatformN(plane, 4)
			defer plat.Stop()
			tb := seedInputs(t, plat)
			got := runAllDAGs(t, plat, tb, am.Config{
				Name: "sick", MaxTaskAttempts: 8, NodeMaxTaskFailures: 2,
			})
			checkEqual(t, got, baseline)
			if totalInjected(plane) == 0 {
				t.Errorf("sick node %v never exercised", plane.SickNodes())
			}
			t.Logf("seed %d: sick=%v injected=%d", seed, plane.SickNodes(), totalInjected(plane))
		})
	}
}
