package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(Config{BlockSize: 64, Replication: 3})
	for i := 0; i < 6; i++ {
		fs.AddNode(fmt.Sprintf("n%d", i), fmt.Sprintf("r%d", i%2))
	}
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := fs.WriteFile("/a/b", "n0", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a/b", "n0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: got %d bytes", len(got))
	}
	sz, err := fs.Size("/a/b")
	if err != nil || sz != 1000 {
		t.Fatalf("Size = %d, %v; want 1000", sz, err)
	}
}

func TestReadAtPartial(t *testing.T) {
	fs := New(Config{BlockSize: 16, Replication: 2})
	fs.AddNode("n0", "r0")
	fs.AddNode("n1", "r0")
	data := []byte("0123456789abcdefghijklmnopqrstuvwxyz")
	if err := fs.WriteFile("/f", "n0", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt("/f", "n0", 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdefghijkl" {
		t.Fatalf("ReadAt = %q", got)
	}
	// Read past EOF truncates.
	got, err = fs.ReadAt("/f", "n0", 30, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "uvwxyz" {
		t.Fatalf("ReadAt tail = %q", got)
	}
}

func TestLocalReplicaPreferred(t *testing.T) {
	fs := New(Config{BlockSize: 64, Replication: 3})
	for i := 0; i < 6; i++ {
		fs.AddNode(fmt.Sprintf("n%d", i), fmt.Sprintf("r%d", i%3))
	}
	if err := fs.WriteFile("/f", "n3", make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	locs, err := fs.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	for bi, hosts := range locs {
		if len(hosts) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", bi, len(hosts))
		}
		if hosts[0] != "n3" {
			t.Fatalf("block %d first replica %q, want local n3", bi, hosts[0])
		}
	}
}

func TestReplicaSpreadAcrossRacks(t *testing.T) {
	fs := New(Config{BlockSize: 64, Replication: 3})
	for i := 0; i < 9; i++ {
		fs.AddNode(fmt.Sprintf("n%d", i), fmt.Sprintf("r%d", i%3))
	}
	if err := fs.WriteFile("/f", "n0", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	locs, _ := fs.BlockLocations("/f")
	racks := map[string]bool{}
	for _, h := range locs[0] {
		racks[fs.Rack(h)] = true
	}
	if len(racks) < 2 {
		t.Fatalf("replicas on %d racks, want >= 2", len(racks))
	}
}

func TestNodeFailureLosesBlocks(t *testing.T) {
	fs := New(Config{BlockSize: 64, Replication: 1})
	fs.AddNode("n0", "r0")
	fs.AddNode("n1", "r0")
	if err := fs.WriteFile("/f", "n0", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	fs.FailNode("n0")
	_, err := fs.ReadFile("/f", "n1")
	if !errors.Is(err, ErrBlockLost) {
		t.Fatalf("read after failure: err = %v, want ErrBlockLost", err)
	}
}

func TestNodeFailureSurvivesWithReplicas(t *testing.T) {
	fs := New(Config{BlockSize: 64, Replication: 3})
	for i := 0; i < 5; i++ {
		fs.AddNode(fmt.Sprintf("n%d", i), "r0")
	}
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("/f", "n0", data); err != nil {
		t.Fatal(err)
	}
	fs.FailNode("n0")
	got, err := fs.ReadFile("/f", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after single node failure with replication 3")
	}
}

func TestSplitsCoverFileWithLocality(t *testing.T) {
	fs := New(Config{BlockSize: 32, Replication: 2})
	for i := 0; i < 4; i++ {
		fs.AddNode(fmt.Sprintf("n%d", i), "r0")
	}
	data := make([]byte, 200)
	if err := fs.WriteFile("/f", "n0", data); err != nil {
		t.Fatal(err)
	}
	splits, err := fs.Splits("/f", 64)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range splits {
		total += s.Length
		if len(s.Hosts) == 0 {
			t.Fatal("split without locality hosts")
		}
		if s.Length > 64 {
			t.Fatalf("split length %d exceeds desired 64", s.Length)
		}
	}
	if total != 200 {
		t.Fatalf("splits cover %d bytes, want 200", total)
	}
	// Splits must tile the file: offsets contiguous.
	var off int64
	for _, s := range splits {
		if s.Offset != off {
			t.Fatalf("split offset %d, want %d", s.Offset, off)
		}
		off += s.Length
	}
}

func TestRenameAndDelete(t *testing.T) {
	fs := New(Config{})
	fs.AddNode("n0", "r0")
	if err := fs.WriteFile("/tmp/x", "n0", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/tmp/x", "/out/x"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/tmp/x") || !fs.Exists("/out/x") {
		t.Fatal("rename did not move file")
	}
	if err := fs.Rename("/missing", "/y"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
	if err := fs.WriteFile("/tmp/y", "n0", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/tmp/y", "/out/x"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
	fs.Delete("/out/x")
	if fs.Exists("/out/x") {
		t.Fatal("delete failed")
	}
}

func TestDeletePrefixAndList(t *testing.T) {
	fs := New(Config{})
	fs.AddNode("n0", "r0")
	for i := 0; i < 5; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/job/part-%d", i), "n0", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteFile("/other/file", "n0", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := len(fs.List("/job/")); got != 5 {
		t.Fatalf("List = %d, want 5", got)
	}
	if n := fs.DeletePrefix("/job/"); n != 5 {
		t.Fatalf("DeletePrefix = %d, want 5", n)
	}
	if got := len(fs.List("/")); got != 1 {
		t.Fatalf("after delete, %d files remain, want 1", got)
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs := New(Config{})
	fs.AddNode("n0", "r0")
	if err := fs.WriteFile("/f", "n0", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/f", "n0"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestCreateNoNodes(t *testing.T) {
	fs := New(Config{})
	if _, err := fs.Create("/f", ""); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("create with no nodes: %v", err)
	}
}

// Property: for any data and block size, write/read round-trips and the
// block math covers the file exactly.
func TestQuickRoundTripAndBlockMath(t *testing.T) {
	f := func(seed int64, n uint16, bsRaw uint8) bool {
		bs := int64(bsRaw%100) + 1
		fs := New(Config{BlockSize: bs, Replication: 2})
		fs.AddNode("n0", "r0")
		fs.AddNode("n1", "r1")
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%3000)
		rng.Read(data)
		if err := fs.WriteFile("/f", "n0", data); err != nil {
			return false
		}
		got, err := fs.ReadFile("/f", "n1")
		if err != nil {
			return false
		}
		if !bytes.Equal(got, data) {
			return false
		}
		locs, _ := fs.BlockLocations("/f")
		wantBlocks := (int64(len(data)) + bs - 1) / bs
		return int64(len(locs)) == wantBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: splits always tile the file regardless of desired split size.
func TestQuickSplitsTile(t *testing.T) {
	f := func(n uint16, bsRaw, dsRaw uint8) bool {
		bs := int64(bsRaw%50) + 1
		ds := int64(dsRaw % 200) // 0 allowed: defaults to block size
		fs := New(Config{BlockSize: bs, Replication: 1})
		fs.AddNode("n0", "r0")
		size := int(n) % 2000
		if err := fs.WriteFile("/f", "n0", make([]byte, size)); err != nil {
			return false
		}
		splits, err := fs.Splits("/f", ds)
		if err != nil {
			return false
		}
		var off int64
		for _, s := range splits {
			if s.Offset != off {
				return false
			}
			off += s.Length
		}
		return off == int64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
