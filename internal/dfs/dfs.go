// Package dfs implements an in-memory distributed filesystem that stands in
// for HDFS in this reproduction of Apache Tez (SIGMOD 2015).
//
// It models the properties Tez actually depends on:
//
//   - files are split into fixed-size blocks, each replicated on several
//     nodes, so that split calculation can produce locality hints;
//   - writes pay a configurable replication/transfer cost so that engines
//     which materialise intermediate data between jobs (the classic
//     MapReduce baseline) pay for it, while Tez DAGs that stream through the
//     shuffle service do not;
//   - node failures invalidate replicas; a block with no live replica is
//     lost and reads report it, which drives the fault-tolerance paths.
//
// The filesystem is safe for concurrent use.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"tez/internal/chaos"
)

// Config controls block geometry and the write cost model.
type Config struct {
	// BlockSize is the maximum number of bytes per block. Defaults to 4 KiB
	// (scaled down from HDFS's 128 MiB so that laptop-scale inputs still
	// span multiple blocks and exercise locality).
	BlockSize int64
	// Replication is the number of replicas per block. Defaults to 3,
	// capped at the number of live nodes.
	Replication int
	// WriteDelayPerBlock simulates the fixed cost of a block write pipeline
	// (one per block per replica beyond the first is NOT charged separately;
	// the pipeline is charged once per block).
	WriteDelayPerBlock time.Duration
	// WriteDelayPerByte simulates per-byte replication cost across the
	// write pipeline. The delay charged for a block is
	// WriteDelayPerBlock + len(block)*Replication*WriteDelayPerByte.
	WriteDelayPerByte time.Duration
	// ReadDelayPerByteRemote simulates per-byte cost of a non-local read.
	// Local reads are free.
	ReadDelayPerByteRemote time.Duration
	// Seed makes replica placement deterministic. Zero means 1.
	Seed int64
	// Chaos, when set, injects transient read faults into reads issued
	// from a task node (nil means no injection).
	Chaos *chaos.Plane
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 4 * 1024
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Errors reported by the filesystem.
var (
	ErrNotFound  = errors.New("dfs: file not found")
	ErrExists    = errors.New("dfs: file already exists")
	ErrBlockLost = errors.New("dfs: block lost (no live replica)")
	ErrNoNodes   = errors.New("dfs: no live nodes")
	// ErrReadFault is a transient, injected read failure: the data is
	// intact and a retry (normally a fresh task attempt) will succeed.
	ErrReadFault = errors.New("dfs: transient read fault")
)

// FileSystem is the in-memory DFS namespace plus block store.
type FileSystem struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	files map[string]*file
	nodes map[string]*nodeInfo // node id -> info

	// sleep is replaceable in tests.
	sleep func(time.Duration)

	bytesWritten int64
	bytesRead    int64
}

type nodeInfo struct {
	rack string
	live bool
}

type file struct {
	blocks []*block
	size   int64
}

type block struct {
	data     []byte
	replicas []string
}

// New creates an empty filesystem with the given config.
func New(cfg Config) *FileSystem {
	cfg = cfg.withDefaults()
	return &FileSystem{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		files: make(map[string]*file),
		nodes: make(map[string]*nodeInfo),
		sleep: time.Sleep,
	}
}

// AddNode registers a datanode with its rack. Adding an existing node marks
// it live again (re-commissioning); its previous replicas are not restored.
func (fs *FileSystem) AddNode(id, rack string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n, ok := fs.nodes[id]; ok {
		n.live = true
		n.rack = rack
		return
	}
	fs.nodes[id] = &nodeInfo{rack: rack, live: true}
}

// FailNode marks a node dead and drops its replicas. Blocks whose last
// replica lived there become lost and will fail reads.
func (fs *FileSystem) FailNode(id string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[id]
	if !ok {
		return
	}
	n.live = false
	for _, f := range fs.files {
		for _, b := range f.blocks {
			b.replicas = removeString(b.replicas, id)
		}
	}
}

// BlockSize returns the configured block size.
func (fs *FileSystem) BlockSize() int64 { return fs.cfg.BlockSize }

// LiveNodes returns the sorted ids of live datanodes.
func (fs *FileSystem) LiveNodes() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for id, n := range fs.nodes {
		if n.live {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Rack returns the rack of a node ("" if unknown).
func (fs *FileSystem) Rack(node string) string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n, ok := fs.nodes[node]; ok {
		return n.rack
	}
	return ""
}

// BytesWritten reports total logical bytes written (excludes replication).
func (fs *FileSystem) BytesWritten() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesWritten
}

// BytesRead reports total logical bytes read.
func (fs *FileSystem) BytesRead() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesRead
}

// Exists reports whether path names a file.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the length of the file at path.
func (fs *FileSystem) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return f.size, nil
}

// List returns the paths under the given prefix, sorted.
func (fs *FileSystem) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a file. Deleting a missing file is not an error.
func (fs *FileSystem) Delete(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, path)
}

// DeletePrefix removes every file under prefix and returns how many.
func (fs *FileSystem) DeletePrefix(prefix string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			delete(fs.files, p)
			n++
		}
	}
	return n
}

// Rename moves a file to a new path (used by output committers to make
// output visible atomically).
func (fs *FileSystem) Rename(from, to string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[from]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, from)
	}
	if _, ok := fs.files[to]; ok {
		return fmt.Errorf("%w: %s", ErrExists, to)
	}
	delete(fs.files, from)
	fs.files[to] = f
	return nil
}

// Create opens a new file for writing. localNode, if non-empty and live, is
// preferred as the first replica of every block (the writer's node, as in
// HDFS). The returned writer buffers into blocks and charges the write cost
// model; Close finalises the file.
func (fs *FileSystem) Create(path, localNode string) (*Writer, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	if fs.countLiveLocked() == 0 {
		return nil, ErrNoNodes
	}
	// Reserve the name immediately so concurrent creators collide.
	f := &file{}
	fs.files[path] = f
	return &Writer{fs: fs, f: f, path: path, local: localNode}, nil
}

// WriteFile writes data as a whole file.
func (fs *FileSystem) WriteFile(path, localNode string, data []byte) error {
	w, err := fs.Create(path, localNode)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// ReadFile reads the whole file, charging remote-read cost against
// localNode ("" means fully remote).
func (fs *FileSystem) ReadFile(path, localNode string) ([]byte, error) {
	sz, err := fs.Size(path)
	if err != nil {
		return nil, err
	}
	return fs.ReadAt(path, localNode, 0, sz)
}

// ReadAt reads length bytes at offset. Reads spanning lost blocks return
// ErrBlockLost. Remote bytes (no replica on localNode) pay the read cost.
func (fs *FileSystem) ReadAt(path, localNode string, offset, length int64) ([]byte, error) {
	// Chaos only targets reads issued from a task's node; control-plane
	// and verification reads pass localNode == "" and are never injected.
	if localNode != "" && fs.cfg.Chaos.DFSReadFault(path, localNode) {
		return nil, fmt.Errorf("%w: %s from %s (injected)", ErrReadFault, path, localNode)
	}
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if offset < 0 || offset > f.size {
		fs.mu.Unlock()
		return nil, fmt.Errorf("dfs: offset %d out of range for %s (size %d)", offset, path, f.size)
	}
	if offset+length > f.size {
		length = f.size - offset
	}
	out := make([]byte, 0, length)
	var remote int64
	bs := fs.cfg.BlockSize
	for length > 0 {
		bi := offset / bs
		bo := offset % bs
		b := f.blocks[bi]
		if len(b.replicas) == 0 {
			fs.mu.Unlock()
			return nil, fmt.Errorf("%w: %s block %d", ErrBlockLost, path, bi)
		}
		n := int64(len(b.data)) - bo
		if n > length {
			n = length
		}
		out = append(out, b.data[bo:bo+n]...)
		if localNode == "" || !containsString(b.replicas, localNode) {
			remote += n
		}
		offset += n
		length -= n
	}
	fs.bytesRead += int64(len(out))
	delay := time.Duration(remote) * fs.cfg.ReadDelayPerByteRemote
	sleep := fs.sleep
	fs.mu.Unlock()
	if delay > 0 {
		sleep(delay)
	}
	return out, nil
}

// Split describes a shard of a file together with the nodes holding it, the
// unit of work handed to a root input task ("split calculation" in
// MapReduce/Tez parlance).
type Split struct {
	Path   string
	Offset int64
	Length int64
	Hosts  []string
}

// Splits computes splits of roughly desiredSize bytes, aligned to block
// boundaries, each annotated with the hosts of its first block.
func (fs *FileSystem) Splits(path string, desiredSize int64) ([]Split, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if desiredSize <= 0 {
		desiredSize = fs.cfg.BlockSize
	}
	// Round the split size up to a whole number of blocks.
	bs := fs.cfg.BlockSize
	blocksPerSplit := (desiredSize + bs - 1) / bs
	if blocksPerSplit < 1 {
		blocksPerSplit = 1
	}
	var splits []Split
	for bi := int64(0); bi < int64(len(f.blocks)); bi += blocksPerSplit {
		end := bi + blocksPerSplit
		if end > int64(len(f.blocks)) {
			end = int64(len(f.blocks))
		}
		var length int64
		for _, b := range f.blocks[bi:end] {
			length += int64(len(b.data))
		}
		hosts := append([]string(nil), f.blocks[bi].replicas...)
		sort.Strings(hosts)
		splits = append(splits, Split{
			Path:   path,
			Offset: bi * bs,
			Length: length,
			Hosts:  hosts,
		})
	}
	return splits, nil
}

// BlockLocations returns replica hosts per block (testing/inspection).
func (fs *FileSystem) BlockLocations(path string) ([][]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([][]string, len(f.blocks))
	for i, b := range f.blocks {
		out[i] = append([]string(nil), b.replicas...)
	}
	return out, nil
}

func (fs *FileSystem) countLiveLocked() int {
	n := 0
	for _, ni := range fs.nodes {
		if ni.live {
			n++
		}
	}
	return n
}

// placeReplicasLocked picks replica nodes for a new block: the local node
// first when live, then distinct random live nodes, preferring to spread
// across racks like the HDFS default placement policy.
func (fs *FileSystem) placeReplicasLocked(local string) []string {
	type cand struct {
		id   string
		rack string
	}
	var live []cand
	for id, ni := range fs.nodes {
		if ni.live {
			live = append(live, cand{id, ni.rack})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	want := fs.cfg.Replication
	if want > len(live) {
		want = len(live)
	}
	var chosen []string
	usedNode := map[string]bool{}
	usedRack := map[string]bool{}
	pick := func(c cand) {
		chosen = append(chosen, c.id)
		usedNode[c.id] = true
		usedRack[c.rack] = true
	}
	if local != "" {
		for _, c := range live {
			if c.id == local {
				pick(c)
				break
			}
		}
	}
	// Prefer unused racks, then anything unused.
	for len(chosen) < want {
		perm := fs.rng.Perm(len(live))
		found := false
		for _, i := range perm {
			c := live[i]
			if !usedNode[c.id] && !usedRack[c.rack] {
				pick(c)
				found = true
				break
			}
		}
		if !found {
			for _, i := range perm {
				c := live[i]
				if !usedNode[c.id] {
					pick(c)
					found = true
					break
				}
			}
		}
		if !found {
			break
		}
	}
	return chosen
}

// Writer streams data into a file, cutting blocks at BlockSize.
type Writer struct {
	fs     *FileSystem
	f      *file
	path   string
	local  string
	buf    []byte
	closed bool
}

// Write buffers p, flushing whole blocks as they fill.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs: write to closed writer for %s", w.path)
	}
	w.buf = append(w.buf, p...)
	bs := w.fs.cfg.BlockSize
	for int64(len(w.buf)) >= bs {
		w.flushBlock(w.buf[:bs])
		w.buf = w.buf[bs:]
	}
	return len(p), nil
}

func (w *Writer) flushBlock(data []byte) {
	b := &block{data: append([]byte(nil), data...)}
	w.fs.mu.Lock()
	b.replicas = w.fs.placeReplicasLocked(w.local)
	w.f.blocks = append(w.f.blocks, b)
	w.f.size += int64(len(b.data))
	w.fs.bytesWritten += int64(len(b.data))
	cfg := w.fs.cfg
	sleep := w.fs.sleep
	w.fs.mu.Unlock()
	delay := cfg.WriteDelayPerBlock +
		time.Duration(int64(len(data))*int64(cfg.Replication))*cfg.WriteDelayPerByte
	if delay > 0 {
		sleep(delay)
	}
}

// Close flushes the trailing partial block and finalises the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		w.flushBlock(w.buf)
		w.buf = nil
	}
	return nil
}

var _ io.WriteCloser = (*Writer)(nil)

func containsString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func removeString(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
