package mapreduce

import (
	"fmt"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/plugin"
)

// StitchWorkflow implements the idea the paper's future-work section
// (§7) sketches: "create tooling that enables a full MapReduce workflow
// to be stitched into a single Tez DAG". A chain of jobs — where job i+1
// reads job i's output — becomes one DAG:
//
//	map₀ ⇒(scatter-gather) reduce₀ ⇒(one-to-one) map₁ ⇒ … ⇒ reduceₙ → sink
//
// Intermediate job outputs never touch the DFS: each reduce streams its
// rows over a one-to-one edge straight into the next map, whose
// parallelism is inherited from the producing reduce. Only the last job
// commits output. Map-only jobs contribute a single vertex.
//
// Every job after the first must leave InputPaths empty (its input is the
// previous job's output by construction).
func StitchWorkflow(name string, jobs []JobConf) (*dag.DAG, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("mapreduce: empty workflow")
	}
	d := dag.New(name)
	var prev *dag.Vertex // tail vertex of the previous job

	sgEdge := dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	}
	oneToOne := dag.EdgeProperty{
		Movement: dag.OneToOne,
		Output:   plugin.Desc(library.UnorderedOutputName, nil),
		Input:    plugin.Desc(library.UnorderedInputName, nil),
	}

	for i, j := range jobs {
		j = j.withDefaults()
		if j.Map == "" {
			return nil, fmt.Errorf("mapreduce: job %d has no map function", i)
		}
		if i == 0 && len(j.InputPaths) == 0 {
			return nil, fmt.Errorf("mapreduce: first job needs input paths")
		}
		if i > 0 && len(j.InputPaths) > 0 {
			return nil, fmt.Errorf("mapreduce: stitched job %d must not name inputs", i)
		}

		m := d.AddVertex(fmt.Sprintf("map%d", i),
			plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: j.Map}), -1)
		if i == 0 {
			m.Sources = []dag.DataSource{{
				Name:  "input",
				Input: plugin.Desc(library.DFSSourceInputName, nil),
				Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{
					Paths:            j.InputPaths,
					DesiredSplitSize: j.SplitSize,
				}),
			}}
		} else {
			// The stitched boundary: one-to-one from the previous tail;
			// parallelism is inherited through the edge.
			d.Connect(prev, m, oneToOne)
		}

		tail := m
		if j.Reduce != "" {
			r := d.AddVertex(fmt.Sprintf("reduce%d", i),
				plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: j.Reduce}), j.Reducers)
			d.Connect(m, r, sgEdge)
			tail = r
		}
		if i == len(jobs)-1 {
			if j.OutputPath == "" {
				return nil, fmt.Errorf("mapreduce: final job needs an output path")
			}
			tail.Sinks = []dag.DataSink{{
				Name:      "output",
				Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: j.OutputPath}),
				Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: j.OutputPath}),
			}}
		}
		prev = tail
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// RunStitched builds and runs a stitched workflow in the session.
func RunStitched(sess *am.Session, name string, jobs []JobConf) (am.DAGResult, error) {
	d, err := StitchWorkflow(name, jobs)
	if err != nil {
		return am.DAGResult{}, err
	}
	return sess.Run(d)
}
