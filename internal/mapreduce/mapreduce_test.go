package mapreduce

import (
	"strconv"
	"strings"
	"testing"

	"tez/internal/am"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/runtime"
)

func init() {
	library.RegisterMapFunc("mrtest.tokenize", func(_, value []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(value)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("mrtest.sum", func(key []byte, values [][]byte, out runtime.KVWriter) error {
		return out.Write(key, []byte(strconv.Itoa(len(values))))
	})
	library.RegisterMapFunc("mrtest.identity", func(k, v []byte, out runtime.KVWriter) error {
		return out.Write(k, v)
	})
	library.RegisterMapFunc("mrtest.double", func(k, v []byte, out runtime.KVWriter) error {
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		return out.Write(k, []byte(strconv.Itoa(2*n)))
	})
}

func writeText(t *testing.T, plat *platform.Platform, path string, lines []string) {
	t.Helper()
	w, err := library.CreateRecordFile(plat.FS, path, plat.FS.LiveNodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if err := w.Write(nil, []byte(l)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readKV(t *testing.T, plat *platform.Platform, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, f := range plat.FS.List(dir + "/part-") {
		data, err := plat.FS.ReadFile(f, "")
		if err != nil {
			t.Fatal(err)
		}
		r := library.NewPaddedReader(data)
		for r.Next() {
			out[string(r.Key())] = string(r.Value())
		}
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	}
	return out
}

func TestWordCountOnBothEngines(t *testing.T) {
	plat := platform.New(platform.Fast(4))
	defer plat.Stop()
	writeText(t, plat, "/in/t", []string{"a b a", "c a b"})
	sess := am.NewSession(plat, am.Config{Name: "mr"})
	defer sess.Close()

	job := JobConf{Name: "wc", Map: "mrtest.tokenize", Reduce: "mrtest.sum",
		InputPaths: []string{"/in/t"}, OutputPath: "/out/tez"}
	if res, err := RunOnTez(sess, job); err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	want := map[string]string{"a": "3", "b": "2", "c": "1"}
	got := readKV(t, plat, "/out/tez")
	if len(got) != 3 || got["a"] != want["a"] || got["b"] != want["b"] || got["c"] != want["c"] {
		t.Fatalf("tez got %v", got)
	}

	job.OutputPath = "/out/classic"
	if res, err := RunClassic(plat, job); err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("classic: %v %v", res.Status, err)
	}
	got2 := readKV(t, plat, "/out/classic")
	if len(got2) != 3 || got2["a"] != "3" {
		t.Fatalf("classic got %v", got2)
	}
}

func TestMapOnlyJob(t *testing.T) {
	plat := platform.New(platform.Fast(2))
	defer plat.Stop()
	writeText(t, plat, "/in/m", []string{"x y"})
	sess := am.NewSession(plat, am.Config{Name: "mo"})
	defer sess.Close()
	job := JobConf{Name: "mo", Map: "mrtest.tokenize",
		InputPaths: []string{"/in/m"}, OutputPath: "/out/mo"}
	if res, err := RunOnTez(sess, job); err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	got := readKV(t, plat, "/out/mo")
	if got["x"] != "1" || got["y"] != "1" {
		t.Fatalf("got %v", got)
	}
}

func TestJobChain(t *testing.T) {
	plat := platform.New(platform.Fast(3))
	defer plat.Stop()
	writeText(t, plat, "/in/c", []string{"a a b"})
	sess := am.NewSession(plat, am.Config{Name: "chain"})
	defer sess.Close()
	jobs := []JobConf{
		{Name: "count", Map: "mrtest.tokenize", Reduce: "mrtest.sum",
			InputPaths: []string{"/in/c"}, OutputPath: "/chain/1"},
		{Name: "double", Map: "mrtest.double",
			InputPaths: []string{}, OutputPath: "/chain/2"},
	}
	// The second job reads the first job's committed parts.
	if err := RunChainOnTez(sess, jobs[:1]); err != nil {
		t.Fatal(err)
	}
	jobs[1].InputPaths = plat.FS.List("/chain/1/part-")
	if err := RunChainOnTez(sess, jobs[1:]); err != nil {
		t.Fatal(err)
	}
	got := readKV(t, plat, "/chain/2")
	if got["a"] != "4" || got["b"] != "2" {
		t.Fatalf("got %v", got)
	}
}

func TestBadJobConf(t *testing.T) {
	if _, err := BuildDAG(JobConf{}); err == nil {
		t.Fatal("empty conf accepted")
	}
	if _, err := BuildDAG(JobConf{Name: "x", Map: "m", InputPaths: []string{"/i"}}); err == nil {
		t.Fatal("missing output accepted")
	}
}
