package mapreduce

import (
	"testing"

	"tez/internal/am"
	"tez/internal/platform"
)

func TestStitchedWorkflowMatchesChain(t *testing.T) {
	plat := platform.New(platform.Fast(3))
	defer plat.Stop()
	writeText(t, plat, "/in/s", []string{"a a b", "b a c"})
	sess := am.NewSession(plat, am.Config{Name: "stitch"})
	defer sess.Close()

	// Chain: wordcount then double the counts, via the DFS.
	chain := []JobConf{
		{Name: "count", Map: "mrtest.tokenize", Reduce: "mrtest.sum",
			InputPaths: []string{"/in/s"}, OutputPath: "/chain/a"},
		{Name: "double", Map: "mrtest.double", OutputPath: "/chain/b"},
	}
	if err := RunChainOnTez(sess, chain[:1]); err != nil {
		t.Fatal(err)
	}
	chain[1].InputPaths = plat.FS.List("/chain/a/part-")
	if err := RunChainOnTez(sess, chain[1:]); err != nil {
		t.Fatal(err)
	}
	wantChain := readKV(t, plat, "/chain/b")

	// Stitched: the same two jobs as one DAG; the intermediate result
	// never touches the DFS.
	before := plat.FS.BytesWritten()
	stitched := []JobConf{
		{Name: "count", Map: "mrtest.tokenize", Reduce: "mrtest.sum",
			InputPaths: []string{"/in/s"}},
		{Name: "double", Map: "mrtest.double", OutputPath: "/stitched/b"},
	}
	res, err := RunStitched(sess, "wc2x", stitched)
	if err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	got := readKV(t, plat, "/stitched/b")
	if len(got) != len(wantChain) {
		t.Fatalf("stitched %v vs chain %v", got, wantChain)
	}
	for k, v := range wantChain {
		if got[k] != v {
			t.Fatalf("key %q: stitched %q vs chain %q", k, got[k], v)
		}
	}
	if got["a"] != "6" || got["b"] != "4" || got["c"] != "2" {
		t.Fatalf("got %v", got)
	}
	// The stitched run wrote only its final output (plus temp attempt
	// files) — strictly less DFS traffic than the chained run's
	// materialisation of /chain/a.
	stitchedBytes := plat.FS.BytesWritten() - before
	if int(stitchedBytes) <= 0 {
		t.Fatal("no output written")
	}
	if res.Counters.Get("VERTICES_SUCCEEDED") != 3 {
		t.Fatalf("vertices = %d, want 3 (map0, reduce0, map-only map1)", res.Counters.Get("VERTICES_SUCCEEDED"))
	}
}

func TestStitchedMapOnlyTail(t *testing.T) {
	plat := platform.New(platform.Fast(2))
	defer plat.Stop()
	writeText(t, plat, "/in/mo", []string{"x y x"})
	sess := am.NewSession(plat, am.Config{Name: "mo"})
	defer sess.Close()
	res, err := RunStitched(sess, "mo", []JobConf{
		{Name: "count", Map: "mrtest.tokenize", Reduce: "mrtest.sum", InputPaths: []string{"/in/mo"}},
		{Name: "pass", Map: "mrtest.identity", OutputPath: "/out/mo2"},
	})
	if err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	got := readKV(t, plat, "/out/mo2")
	if got["x"] != "2" || got["y"] != "1" {
		t.Fatalf("got %v", got)
	}
}

func TestStitchValidation(t *testing.T) {
	if _, err := StitchWorkflow("x", nil); err == nil {
		t.Fatal("empty workflow accepted")
	}
	if _, err := StitchWorkflow("x", []JobConf{{Name: "a", Map: "m"}}); err == nil {
		t.Fatal("first job without inputs accepted")
	}
	if _, err := StitchWorkflow("x", []JobConf{
		{Name: "a", Map: "m", InputPaths: []string{"/i"}},
		{Name: "b", Map: "m", InputPaths: []string{"/j"}, OutputPath: "/o"},
	}); err == nil {
		t.Fatal("mid-chain inputs accepted")
	}
	if _, err := StitchWorkflow("x", []JobConf{
		{Name: "a", Map: "m", InputPaths: []string{"/i"}},
	}); err == nil {
		t.Fatal("missing final output accepted")
	}
}
