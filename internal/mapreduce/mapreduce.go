// Package mapreduce expresses MapReduce on Tez (§5.1): "at its core, it is
// a simple 2 vertex connected graph" — a map vertex and a reduce vertex
// joined by a scatter-gather edge, using the built-in MapProcessor and
// ReduceProcessor. Any job written against this API runs unchanged either
// through a Tez session (with container reuse, sessions, auto reduce
// parallelism) or in the classic pre-Tez mode: one fresh application
// master per job, no reuse, fixed reducer count — so workflow chains pay
// the repeated start-up and DFS materialisation costs the paper measures.
package mapreduce

import (
	"fmt"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
)

// JobConf describes one MapReduce job. Map and Reduce name functions
// registered with library.RegisterMapFunc / RegisterReduceFunc.
type JobConf struct {
	Name       string
	Map        string
	Reduce     string // empty: map-only job
	Combiner   string // optional library.RegisterCombineFunc pre-aggregator
	InputPaths []string
	OutputPath string
	Reducers   int   // reduce parallelism as submitted (default 4)
	SplitSize  int64 // desired split size (default 16 KiB)
}

func (j JobConf) withDefaults() JobConf {
	if j.Reducers <= 0 {
		j.Reducers = 4
	}
	if j.SplitSize <= 0 {
		j.SplitSize = 16 * 1024
	}
	return j
}

// BuildDAG lowers the job to its canonical Tez DAG.
func BuildDAG(j JobConf) (*dag.DAG, error) {
	j = j.withDefaults()
	if j.Name == "" || j.Map == "" || len(j.InputPaths) == 0 || j.OutputPath == "" {
		return nil, fmt.Errorf("mapreduce: incomplete job conf %+v", j)
	}
	d := dag.New(j.Name)
	m := d.AddVertex("map", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: j.Map}), -1)
	m.Sources = []dag.DataSource{{
		Name:  "input",
		Input: plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{
			Paths:            j.InputPaths,
			DesiredSplitSize: j.SplitSize,
		}),
	}}
	sink := dag.DataSink{
		Name:      "output",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: j.OutputPath}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: j.OutputPath}),
	}
	if j.Reduce == "" {
		m.Sinks = []dag.DataSink{sink}
		return d, nil
	}
	r := d.AddVertex("reduce", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: j.Reduce}), j.Reducers)
	r.Sinks = []dag.DataSink{sink}
	var outPayload any
	if j.Combiner != "" {
		outPayload = library.OrderedPartitionedConfig{Combiner: j.Combiner}
	}
	d.Connect(m, r, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, outPayload),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	return d, nil
}

// RunOnTez executes the job in a Tez session.
func RunOnTez(sess *am.Session, j JobConf) (am.DAGResult, error) {
	d, err := BuildDAG(j)
	if err != nil {
		return am.DAGResult{}, err
	}
	return sess.Run(d)
}

// RunClassic executes the job in the pre-Tez mode: a dedicated AM, no
// container reuse, no runtime parallelism changes.
func RunClassic(plat *platform.Platform, j JobConf) (am.DAGResult, error) {
	d, err := BuildDAG(j)
	if err != nil {
		return am.DAGResult{}, err
	}
	cfg := am.Config{
		Name:                   "mr-" + j.Name,
		DisableContainerReuse:  true,
		DisableAutoParallelism: true,
	}
	return am.RunDAG(plat, cfg, d)
}

// RunChainOnTez runs a workflow of jobs in one shared session — what the
// paper's future-work section calls "stitching a full MapReduce workflow
// into a single Tez [session]". Jobs run in order; later jobs may read
// earlier jobs' outputs.
func RunChainOnTez(sess *am.Session, jobs []JobConf) error {
	for _, j := range jobs {
		res, err := RunOnTez(sess, j)
		if err != nil {
			return err
		}
		if res.Status != am.DAGSucceeded {
			return fmt.Errorf("mapreduce: job %s: %v", j.Name, res.Status)
		}
	}
	return nil
}

// RunChainClassic runs the workflow the pre-Tez way: every job pays a
// fresh AM and cold containers.
func RunChainClassic(plat *platform.Platform, jobs []JobConf) error {
	for _, j := range jobs {
		res, err := RunClassic(plat, j)
		if err != nil {
			return err
		}
		if res.Status != am.DAGSucceeded {
			return fmt.Errorf("mapreduce: job %s: %v", j.Name, res.Status)
		}
	}
	return nil
}
