package col

import (
	"bytes"
	"testing"

	"tez/internal/row"
)

func frame(rows ...row.Row) []byte {
	b := NewBatch()
	for _, r := range rows {
		b.AppendRow(r)
	}
	return EncodeBatch(nil, b)
}

func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{batchMagic})
	f.Add([]byte{batchMagic, batchVersion})
	f.Add([]byte{batchMagic, batchVersion, 0x80}) // width varint cut mid-way
	f.Add([]byte{batchMagic, 0xFF})               // future version
	f.Add(frame())
	f.Add(frame(row.Row{}))
	f.Add(frame(row.Row{row.Int(1), row.Float(2.5), row.String("s"), row.Null()}))
	f.Add(frame(
		row.Row{row.Int(-7), row.String("")},
		row.Row{row.Null(), row.String("\x00\x00")},
	))
	// A kind-mixed column forces the boxed (Any) wire representation.
	f.Add(frame(
		row.Row{row.Int(1)},
		row.Row{row.String("mix")},
		row.Row{row.Float(3.5)},
	))
	// Huge claimed row count with a tiny payload must be rejected cheaply.
	f.Add([]byte{batchMagic, batchVersion, 0x01, 0xFF, 0xFF, 0xFF, 0x7F, byte(Int64), 0x00})
	f.Fuzz(func(t *testing.T, buf []byte) {
		b, err := DecodeBatch(buf)
		if err != nil {
			return
		}
		// A decodable frame must survive a canonical re-encode/decode with
		// every row's wire bytes unchanged.
		re := EncodeBatch(nil, b)
		b2, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v (frame %x)", err, re)
		}
		if b2.Len() != b.Len() || b2.Width() != b.Width() {
			t.Fatalf("shape changed: %dx%d -> %dx%d", b.Len(), b.Width(), b2.Len(), b2.Width())
		}
		var r1, r2 []byte
		for i := 0; i < b.Len(); i++ {
			r1 = AppendRowEncoded(r1[:0], b, i)
			r2 = AppendRowEncoded(r2[:0], b2, i)
			if !bytes.Equal(r1, r2) {
				t.Fatalf("row %d changed: %x -> %x", i, r1, r2)
			}
		}
	})
}
