// Package col implements typed columnar record batches for the
// batch-at-a-time relational execution path (DESIGN.md §13). A Batch
// holds one Vector per column; each Vector stores a run of values of a
// single physical kind (int64 / float64 / var-len bytes / bool) with a
// null bitmap overlay, demoting itself to a boxed row.Value
// representation only when a column turns out to be kind-mixed. Filters
// narrow a selection vector instead of moving data; var-len values live
// in a per-vector byte heap indexed by offsets, in the style of the
// shuffle sort arena (library/arena.go).
//
// The package mirrors the row package's wire formats exactly
// (AppendRowEncoded == row.Encode, AppendKeyEncoded == row.EncodeKey),
// so the vectorized engine can produce byte-identical output to the
// row-at-a-time engine.
package col

import (
	"fmt"

	"tez/internal/row"
)

// Kind is the physical representation of a Vector.
type Kind uint8

// Vector kinds. Unset means only nulls have been appended so far; Any is
// the boxed fallback for kind-mixed columns (the row model is dynamically
// typed, so a column may legally hold e.g. both ints and strings).
const (
	Unset Kind = iota
	Int64
	Float64
	Bytes
	Bool
	Any
)

func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case Bytes:
		return "bytes"
	case Bool:
		return "bool"
	case Any:
		return "any"
	default:
		return "unset"
	}
}

// Vector is one column of a Batch. Exactly one payload slice is active,
// selected by kind; payload slices are exported so kernels can range over
// them directly. Nulls are a bitmap overlay (payload holds a zero value
// at null positions, except Any, which stores row.Null() inline).
type Vector struct {
	kind  Kind
	n     int
	konst bool // logical length n, physical storage one element

	Ints   []int64
	Floats []float64
	Bits   []uint64 // Bool payload, one bit per row
	Offs   []uint32 // Bytes: n+1 offsets into Heap (batches are small; 4 GiB heap is unreachable)
	Heap   []byte
	Vals   []row.Value // Any

	nulls []uint64 // bit set = null; nil when no nulls seen
}

// Kind returns the physical representation.
func (v *Vector) Kind() Kind { return v.kind }

// Len is the logical length.
func (v *Vector) Len() int { return v.n }

// IsConst reports whether the vector stores a single repeated value.
func (v *Vector) IsConst() bool { return v.konst }

// HasNulls reports whether any null bit is set.
func (v *Vector) HasNulls() bool {
	for _, w := range v.nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

func (v *Vector) phys(i int) int {
	if v.konst {
		return 0
	}
	return i
}

// IsNull reports whether row i is null.
func (v *Vector) IsNull(i int) bool {
	i = v.phys(i)
	switch v.kind {
	case Unset:
		return true
	case Any:
		return v.Vals[i].Kind == row.KindNull
	}
	return bitGet(v.nulls, i)
}

// Int returns the int64 payload at i (kind Int64, or Bool as 0/1).
func (v *Vector) Int(i int) int64 {
	i = v.phys(i)
	if v.kind == Bool {
		if bitGet(v.Bits, i) {
			return 1
		}
		return 0
	}
	return v.Ints[i]
}

// Float returns the float64 payload at i.
func (v *Vector) Float(i int) float64 { return v.Floats[v.phys(i)] }

// Bool returns the bool payload at i.
func (v *Vector) Bool(i int) bool { return bitGet(v.Bits, v.phys(i)) }

// BytesAt returns the var-len payload at i without copying.
func (v *Vector) BytesAt(i int) []byte {
	i = v.phys(i)
	return v.Heap[v.Offs[i]:v.Offs[i+1]]
}

// NullWord returns word w of the null bitmap (0 when absent).
func (v *Vector) NullWord(w int) uint64 {
	if w < len(v.nulls) {
		return v.nulls[w]
	}
	return 0
}

// Value materializes row i as a row.Value (allocates for Bytes).
func (v *Vector) Value(i int) row.Value {
	i = v.phys(i)
	switch v.kind {
	case Any:
		return v.Vals[i]
	case Unset:
		return row.Null()
	}
	if bitGet(v.nulls, i) {
		return row.Null()
	}
	switch v.kind {
	case Int64:
		return row.Int(v.Ints[i])
	case Float64:
		return row.Float(v.Floats[i])
	case Bytes:
		return row.String(string(v.Heap[v.Offs[i]:v.Offs[i+1]]))
	case Bool:
		if bitGet(v.Bits, i) {
			return row.Int(1)
		}
		return row.Int(0)
	}
	return row.Null()
}

// Truthy mirrors relop truthiness: null, 0, 0.0 and "" are false.
func (v *Vector) Truthy(i int) bool {
	i = v.phys(i)
	switch v.kind {
	case Unset:
		return false
	case Any:
		val := v.Vals[i]
		switch val.Kind {
		case row.KindInt:
			return val.Int != 0
		case row.KindFloat:
			return val.Float != 0
		case row.KindString:
			return val.Str != ""
		}
		return false
	}
	if bitGet(v.nulls, i) {
		return false
	}
	switch v.kind {
	case Int64:
		return v.Ints[i] != 0
	case Float64:
		return v.Floats[i] != 0
	case Bytes:
		return v.Offs[i] != v.Offs[i+1]
	case Bool:
		return bitGet(v.Bits, i)
	}
	return false
}

// NumAt returns the numeric view of row i for arithmetic kernels: isInt
// follows the row model (Int and Bool are integer; Float is not; Bytes
// coerces to float 0 like Value.AsFloat on strings).
func (v *Vector) NumAt(i int) (iv int64, fv float64, isInt, null bool) {
	i = v.phys(i)
	switch v.kind {
	case Unset:
		return 0, 0, false, true
	case Any:
		val := v.Vals[i]
		switch val.Kind {
		case row.KindNull:
			return 0, 0, false, true
		case row.KindInt:
			return val.Int, float64(val.Int), true, false
		case row.KindFloat:
			return 0, val.Float, false, false
		}
		return 0, 0, false, false // string: AsFloat == 0
	}
	if bitGet(v.nulls, i) {
		return 0, 0, false, true
	}
	switch v.kind {
	case Int64:
		x := v.Ints[i]
		return x, float64(x), true, false
	case Float64:
		return 0, v.Floats[i], false, false
	case Bool:
		var x int64
		if bitGet(v.Bits, i) {
			x = 1
		}
		return x, float64(x), true, false
	}
	return 0, 0, false, false
}

// CompareAt orders row i of a against row j of b under row.Compare
// semantics (null < numeric < string), without materializing values.
func CompareAt(a *Vector, i int, b *Vector, j int) int {
	ra, rb := a.rankAt(i), b.rankAt(j)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 2:
		return bytesCompare(a.bytesView(i), b.bytesView(j))
	}
	// Numeric: exact int-int compare when both sides are integers.
	ai, af, aInt, _ := a.NumAt(i)
	bi, bf, bInt, _ := b.NumAt(j)
	if aInt && bInt {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	}
	if aInt {
		af = float64(ai)
	}
	if bInt {
		bf = float64(bi)
	}
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}

func (v *Vector) rankAt(i int) int {
	if v.IsNull(i) {
		return 0
	}
	switch v.kind {
	case Bytes:
		return 2
	case Any:
		if v.Vals[v.phys(i)].Kind == row.KindString {
			return 2
		}
	}
	return 1
}

// bytesView returns the string payload at i without copying when
// possible (Bytes heap slice, or the Any value's string).
func (v *Vector) bytesView(i int) []byte {
	i = v.phys(i)
	if v.kind == Bytes {
		return v.Heap[v.Offs[i]:v.Offs[i+1]]
	}
	return []byte(v.Vals[i].Str) // Any holding a string; rare path
}

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// --- construction -----------------------------------------------------

// Const builds a logical-length-n vector repeating one value.
func Const(val row.Value, n int) Vector {
	v := Vector{konst: true}
	v.AppendValue(val)
	v.n = n
	return v
}

// ConstNull builds an all-null vector of logical length n.
func ConstNull(n int) Vector {
	return Vector{konst: true, kind: Unset, n: n}
}

// NewBool builds a dense all-false bool vector of length n (the cmp /
// logic kernels' output shape).
func NewBool(n int) Vector {
	return Vector{kind: Bool, n: n, Bits: make([]uint64, (n+63)/64)}
}

// NewInts builds a dense zeroed int64 vector of length n.
func NewInts(n int) Vector {
	return Vector{kind: Int64, n: n, Ints: make([]int64, n)}
}

// NewFloats builds a dense zeroed float64 vector of length n.
func NewFloats(n int) Vector {
	return Vector{kind: Float64, n: n, Floats: make([]float64, n)}
}

// SetTrue sets bool payload bit i.
func (v *Vector) SetTrue(i int) { v.Bits[i>>6] |= 1 << (uint(i) & 63) }

// SetNullAt marks row i null (payload, if any, keeps its zero value).
func (v *Vector) SetNullAt(i int) { v.nulls = bitSet(v.nulls, i) }

// SetNullWord installs word w of the null bitmap directly (fast kernels
// propagating operand null masks).
func (v *Vector) SetNullWord(w int, bits uint64) {
	for len(v.nulls) <= w {
		v.nulls = append(v.nulls, 0)
	}
	v.nulls[w] = bits
}

// reset empties the vector for reuse, keeping capacity. Null bitmap
// words are recreated zeroed on demand, so no explicit clear is needed.
func (v *Vector) reset() {
	v.kind = Unset
	v.n = 0
	v.konst = false
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Bits = v.Bits[:0]
	v.Offs = v.Offs[:0]
	v.Heap = v.Heap[:0]
	v.Vals = v.Vals[:0]
	v.nulls = v.nulls[:0]
}

// truncate drops rows ≥ n (rollback after a partial decode error).
func (v *Vector) truncate(n int) {
	v.n = n
	if v.konst {
		return
	}
	switch v.kind {
	case Int64:
		v.Ints = v.Ints[:n]
	case Float64:
		v.Floats = v.Floats[:n]
	case Bytes:
		v.Offs = v.Offs[:n+1]
		v.Heap = v.Heap[:v.Offs[n]]
	case Any:
		v.Vals = v.Vals[:n]
	}
	// Clear stale null bits at and above n.
	for w := range v.nulls {
		base := w * 64
		if base >= n {
			v.nulls[w] = 0
		} else if base+64 > n {
			v.nulls[w] &= (1 << uint(n-base)) - 1
		}
	}
}

// promote moves an Unset vector (n all-null rows) to a concrete kind,
// backfilling zero payloads under the existing null bits.
func (v *Vector) promote(k Kind) {
	v.kind = k
	switch k {
	case Int64:
		for i := 0; i < v.n; i++ {
			v.Ints = append(v.Ints, 0)
		}
	case Float64:
		for i := 0; i < v.n; i++ {
			v.Floats = append(v.Floats, 0)
		}
	case Bytes:
		for i := 0; i <= v.n; i++ {
			v.Offs = append(v.Offs, uint32(len(v.Heap)))
		}
	case Bool:
		for len(v.Bits) < (v.n+63)/64 {
			v.Bits = append(v.Bits, 0)
		}
	case Any:
		for i := 0; i < v.n; i++ {
			v.Vals = append(v.Vals, row.Null())
		}
	}
}

// toAny demotes to the boxed representation, preserving exact value
// kinds (Int 5 and Float 5.0 encode differently on the wire even though
// they compare equal, so demotion must not coerce).
func (v *Vector) toAny() {
	if v.kind == Any {
		return
	}
	vals := v.Vals[:0]
	for i := 0; i < v.n; i++ {
		vals = append(vals, v.Value(i))
	}
	v.reset()
	v.kind = Any
	v.Vals = vals
	v.n = len(vals)
}

// AppendNull appends a null row.
func (v *Vector) AppendNull() {
	switch v.kind {
	case Unset:
		// no payload yet
	case Int64:
		v.Ints = append(v.Ints, 0)
	case Float64:
		v.Floats = append(v.Floats, 0)
	case Bytes:
		v.Offs = append(v.Offs, uint32(len(v.Heap)))
	case Bool:
		for len(v.Bits) < (v.n+64)/64 {
			v.Bits = append(v.Bits, 0)
		}
	case Any:
		v.Vals = append(v.Vals, row.Null())
		v.n++
		return
	}
	v.nulls = bitSet(v.nulls, v.n)
	v.n++
}

// AppendInt appends an int64 row, demoting on kind mismatch.
func (v *Vector) AppendInt(x int64) {
	switch v.kind {
	case Unset:
		v.promote(Int64)
		fallthrough
	case Int64:
		v.Ints = append(v.Ints, x)
		v.n++
	case Any:
		v.Vals = append(v.Vals, row.Int(x))
		v.n++
	default:
		v.toAny()
		v.AppendInt(x)
	}
}

// AppendFloat appends a float64 row, demoting on kind mismatch.
func (v *Vector) AppendFloat(x float64) {
	switch v.kind {
	case Unset:
		v.promote(Float64)
		fallthrough
	case Float64:
		v.Floats = append(v.Floats, x)
		v.n++
	case Any:
		v.Vals = append(v.Vals, row.Float(x))
		v.n++
	default:
		v.toAny()
		v.AppendFloat(x)
	}
}

// AppendBytes appends a var-len row (copied into the heap), demoting on
// kind mismatch.
func (v *Vector) AppendBytes(s []byte) {
	switch v.kind {
	case Unset:
		v.promote(Bytes)
		fallthrough
	case Bytes:
		v.Heap = append(v.Heap, s...)
		v.Offs = append(v.Offs, uint32(len(v.Heap)))
		v.n++
	case Any:
		v.Vals = append(v.Vals, row.String(string(s)))
		v.n++
	default:
		v.toAny()
		v.AppendBytes(s)
	}
}

// AppendBool appends a bool row, demoting on kind mismatch (bools box as
// Int 0/1, matching the row engine's comparison results).
func (v *Vector) AppendBool(x bool) {
	switch v.kind {
	case Unset:
		v.promote(Bool)
		fallthrough
	case Bool:
		for len(v.Bits) < (v.n+64)/64 {
			v.Bits = append(v.Bits, 0)
		}
		if x {
			v.Bits[v.n>>6] |= 1 << (uint(v.n) & 63)
		}
		v.n++
	case Any:
		var b int64
		if x {
			b = 1
		}
		v.Vals = append(v.Vals, row.Int(b))
		v.n++
	default:
		v.toAny()
		v.AppendBool(x)
	}
}

// AppendValue appends a row.Value, choosing the typed representation and
// demoting to Any on kind mixes.
func (v *Vector) AppendValue(val row.Value) {
	switch val.Kind {
	case row.KindNull:
		v.AppendNull()
	case row.KindInt:
		v.AppendInt(val.Int)
	case row.KindFloat:
		v.AppendFloat(val.Float)
	case row.KindString:
		if v.kind == Any {
			v.Vals = append(v.Vals, val)
			v.n++
			return
		}
		v.AppendBytes(unsafeStringBytes(val.Str))
	}
}

// unsafeStringBytes would be the zero-copy view; we keep the safe copy —
// AppendBytes copies into the heap immediately, so a plain conversion is
// both safe and the only allocation-free option without unsafe.
func unsafeStringBytes(s string) []byte { return []byte(s) }

// AppendFrom appends row i of src (any kind, nulls preserved).
func (v *Vector) AppendFrom(src *Vector, i int) {
	if src.IsNull(i) {
		v.AppendNull()
		return
	}
	switch src.kind {
	case Int64:
		v.AppendInt(src.Ints[src.phys(i)])
	case Float64:
		v.AppendFloat(src.Floats[src.phys(i)])
	case Bytes:
		v.AppendBytes(src.BytesAt(i))
	case Bool:
		v.AppendBool(src.Bool(i))
	case Any:
		v.AppendValue(src.Vals[src.phys(i)])
	}
}

// --- null bitmap helpers ---------------------------------------------

func bitGet(bits []uint64, i int) bool {
	w := i >> 6
	return w < len(bits) && bits[w]&(1<<(uint(i)&63)) != 0
}

func bitSet(bits []uint64, i int) []uint64 {
	w := i >> 6
	for len(bits) <= w {
		bits = append(bits, 0)
	}
	bits[w] |= 1 << (uint(i) & 63)
	return bits
}

// --- Batch ------------------------------------------------------------

// Batch is a set of column vectors plus a selection vector. sel == nil
// means all n rows are live; after a filter, sel lists the live physical
// row indices in order.
type Batch struct {
	cols   []Vector
	width  int // -1 until the first row fixes it
	n      int
	sel    []int32
	selBuf []int32 // spare buffer so Filter ping-pongs without allocating
}

// NewBatch returns an empty batch with no width fixed yet.
func NewBatch() *Batch { return &Batch{width: -1} }

// Width is the column count (0 for a width-0 batch, -1 when unset).
func (b *Batch) Width() int {
	if b.width < 0 {
		return 0
	}
	return b.width
}

// Len is the physical row count.
func (b *Batch) Len() int { return b.n }

// Live is the selected row count.
func (b *Batch) Live() int {
	if b.sel == nil {
		return b.n
	}
	return len(b.sel)
}

// RowAt maps live index k to a physical row index.
func (b *Batch) RowAt(k int) int {
	if b.sel == nil {
		return k
	}
	return int(b.sel[k])
}

// Sel exposes the selection vector (nil = dense).
func (b *Batch) Sel() []int32 { return b.sel }

// Col returns column i.
func (b *Batch) Col(i int) *Vector { return &b.cols[i] }

// Reset empties the batch for reuse, keeping storage. The width unlocks
// so the next appended row fixes it again.
func (b *Batch) Reset() {
	for i := range b.cols {
		b.cols[i].reset()
	}
	b.width = -1
	b.n = 0
	b.sel = nil
}

func (b *Batch) setWidth(w int) {
	for len(b.cols) < w {
		b.cols = append(b.cols, Vector{})
	}
	for i := 0; i < w; i++ {
		b.cols[i].reset()
	}
	b.width = w
}

// EnsureWidth fixes the width on an empty batch (join output batches
// know their shape before the first row).
func (b *Batch) EnsureWidth(w int) {
	if b.width != w {
		b.setWidth(w)
	}
}

// SetRowCount declares the physical row count after appending directly
// into column vectors (join fan-out construction).
func (b *Batch) SetRowCount(n int) { b.n = n }

// ReplaceCols swaps in a new column set, keeping row count and
// selection (the project operator's output: same live rows, new shape).
func (b *Batch) ReplaceCols(cols []Vector) {
	b.cols = cols
	b.width = len(cols)
}

// AppendRow appends a decoded row. Returns false (without appending) on
// a width mismatch — the caller flushes and retries.
func (b *Batch) AppendRow(r row.Row) bool {
	if b.width < 0 {
		b.setWidth(len(r))
	}
	if len(r) != b.width {
		return false
	}
	for i := range r {
		b.cols[i].AppendValue(r[i])
	}
	b.n++
	return true
}

// AppendEncoded parses one row.Encode payload straight into the column
// vectors, without materializing a row.Row. Returns (false, nil) on a
// width mismatch; a corrupt payload rolls the batch back to its prior
// row count and returns the error.
func (b *Batch) AppendEncoded(buf []byte) (bool, error) {
	cols, hdr := uvarint(buf)
	if hdr <= 0 {
		return false, fmt.Errorf("col: corrupt row header")
	}
	if b.width < 0 {
		b.setWidth(int(cols))
	}
	if int(cols) != b.width {
		return false, nil
	}
	pos := hdr
	for i := 0; i < b.width; i++ {
		if pos >= len(buf) {
			b.rollback()
			return false, fmt.Errorf("col: truncated at col %d", i)
		}
		kind := row.Kind(buf[pos])
		pos++
		v := &b.cols[i]
		switch kind {
		case row.KindNull:
			v.AppendNull()
		case row.KindInt:
			x, n := varint(buf[pos:])
			if n <= 0 {
				b.rollback()
				return false, fmt.Errorf("col: corrupt int at col %d", i)
			}
			pos += n
			v.AppendInt(x)
		case row.KindFloat:
			if pos+8 > len(buf) {
				b.rollback()
				return false, fmt.Errorf("col: truncated float at col %d", i)
			}
			v.AppendFloat(beFloat(buf[pos:]))
			pos += 8
		case row.KindString:
			l, n := uvarint(buf[pos:])
			if n <= 0 {
				b.rollback()
				return false, fmt.Errorf("col: corrupt string at col %d", i)
			}
			pos += n
			if uint64(len(buf)-pos) < l {
				b.rollback()
				return false, fmt.Errorf("col: truncated string at col %d", i)
			}
			v.AppendBytes(buf[pos : pos+int(l)])
			pos += int(l)
		default:
			b.rollback()
			return false, fmt.Errorf("col: unknown value kind %d at col %d", kind, i)
		}
	}
	b.n++
	return true, nil
}

// rollback truncates every column to the batch's committed row count
// after a mid-row decode error.
func (b *Batch) rollback() {
	for i := 0; i < b.width; i++ {
		if b.cols[i].n > b.n {
			b.cols[i].truncate(b.n)
		}
	}
}

// Filter narrows the selection to live rows where pred is truthy. The
// two selection buffers ping-pong, so repeated filters do not allocate.
func (b *Batch) Filter(pred *Vector) {
	out := b.selBuf[:0]
	if out == nil {
		// nil sel means "dense"; an empty selection must stay non-nil.
		out = []int32{}
	}
	if b.sel == nil {
		for i := 0; i < b.n; i++ {
			if pred.Truthy(i) {
				out = append(out, int32(i))
			}
		}
	} else {
		for _, i := range b.sel {
			if pred.Truthy(int(i)) {
				out = append(out, i)
			}
		}
	}
	b.selBuf = b.sel
	b.sel = out
}

// MaterializeRow boxes physical row i as a row.Row.
func (b *Batch) MaterializeRow(i int) row.Row {
	r := make(row.Row, b.Width())
	for c := range r {
		r[c] = b.cols[c].Value(i)
	}
	return r
}

// FromVectors wraps pre-built columns (all of physical length n) into a
// batch with the given selection.
func FromVectors(n int, sel []int32, cols []Vector) *Batch {
	return &Batch{cols: cols, width: len(cols), n: n, sel: sel}
}
