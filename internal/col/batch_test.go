package col

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tez/internal/row"
)

// randValue covers every kind the row model has, including edge floats
// and strings with 0x00 bytes (the key-encoding escape path).
func randValue(rng *rand.Rand) row.Value {
	switch rng.Intn(10) {
	case 0:
		return row.Null()
	case 1, 2, 3:
		return row.Int(rng.Int63n(2000) - 1000)
	case 4, 5:
		f := rng.NormFloat64() * 100
		if rng.Intn(10) == 0 {
			f = math.Copysign(0, -1) // -0.0 vs +0.0 must round-trip bit-exact
		}
		return row.Float(f)
	default:
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256)) // includes 0x00
		}
		return row.String(string(b))
	}
}

func randRow(rng *rand.Rand, width int) row.Row {
	r := make(row.Row, width)
	for i := range r {
		r[i] = randValue(rng)
	}
	return r
}

func TestAppendRowEncodedMatchesRowEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		width := rng.Intn(6)
		b := NewBatch()
		var rows []row.Row
		for i := 0; i < 1+rng.Intn(40); i++ {
			r := randRow(rng, width)
			if !b.AppendRow(r) {
				t.Fatalf("trial %d: AppendRow rejected width %d", trial, width)
			}
			rows = append(rows, r)
		}
		for i, r := range rows {
			want := row.Encode(nil, r)
			got := AppendRowEncoded(nil, b, i)
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d row %d: encode mismatch\n got %x\nwant %x (row %v)", trial, i, got, want, r)
			}
		}
	}
}

func TestAppendEncodedRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		width := rng.Intn(6)
		b := NewBatch()
		var encoded [][]byte
		for i := 0; i < 1+rng.Intn(40); i++ {
			e := row.Encode(nil, randRow(rng, width))
			ok, err := b.AppendEncoded(e)
			if err != nil || !ok {
				t.Fatalf("trial %d: AppendEncoded ok=%v err=%v", trial, ok, err)
			}
			encoded = append(encoded, e)
		}
		for i, want := range encoded {
			got := AppendRowEncoded(nil, b, i)
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d row %d: roundtrip mismatch\n got %x\nwant %x", trial, i, got, want)
			}
			r, err := row.Decode(want)
			if err != nil {
				t.Fatal(err)
			}
			m := b.MaterializeRow(i)
			if len(m) != len(r) {
				t.Fatalf("materialize width %d want %d", len(m), len(r))
			}
			for c := range r {
				if m[c] != r[c] {
					t.Fatalf("trial %d row %d col %d: %v != %v", trial, i, c, m[c], r[c])
				}
			}
		}
	}
}

func TestAppendKeyEncodedMatchesRowEncodeKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		var v Vector
		var vals []row.Value
		for i := 0; i < 1+rng.Intn(30); i++ {
			val := randValue(rng)
			v.AppendValue(val)
			vals = append(vals, val)
		}
		for i, val := range vals {
			want := row.EncodeKey(nil, val)
			got := AppendKeyEncoded(nil, &v, i)
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d row %d (%v, vector kind %v): key mismatch\n got %x\nwant %x",
					trial, i, val, v.Kind(), got, want)
			}
		}
	}
}

func TestBoolVectorEncodesAsInt(t *testing.T) {
	v := NewBool(3)
	v.SetTrue(0)
	v.SetNullAt(2)
	wants := []row.Value{row.Int(1), row.Int(0), row.Null()}
	for i, w := range wants {
		if got, want := AppendValueEncoded(nil, &v, i), row.Encode(nil, row.Row{w})[1:]; !bytes.Equal(got, want) {
			t.Fatalf("bool row %d: got %x want %x", i, got, want)
		}
		if got, want := AppendKeyEncoded(nil, &v, i), row.EncodeKey(nil, w); !bytes.Equal(got, want) {
			t.Fatalf("bool key %d: got %x want %x", i, got, want)
		}
	}
}

func TestBatchCodecRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		width := rng.Intn(5)
		b := NewBatch()
		nrows := rng.Intn(50)
		for i := 0; i < nrows; i++ {
			b.AppendRow(randRow(rng, width))
		}
		if b.Width() == 0 && nrows == 0 {
			b.EnsureWidth(width)
			b.SetRowCount(0)
		}
		// Optionally apply a selection; the frame must contain exactly the
		// live rows.
		var liveIdx []int
		if nrows > 0 && rng.Intn(2) == 0 {
			pred := NewBool(nrows)
			for i := 0; i < nrows; i++ {
				if rng.Intn(2) == 0 {
					pred.SetTrue(i)
					liveIdx = append(liveIdx, i)
				}
			}
			b.Filter(&pred)
		} else {
			for i := 0; i < nrows; i++ {
				liveIdx = append(liveIdx, i)
			}
		}
		frame := EncodeBatch(nil, b)
		dec, err := DecodeBatch(frame)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if dec.Len() != len(liveIdx) || dec.Width() != b.Width() {
			t.Fatalf("trial %d: decoded %dx%d want %dx%d", trial, dec.Len(), dec.Width(), len(liveIdx), b.Width())
		}
		for k, i := range liveIdx {
			want := AppendRowEncoded(nil, b, i)
			got := AppendRowEncoded(nil, dec, k)
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d live row %d: mismatch\n got %x\nwant %x", trial, k, got, want)
			}
		}
	}
}

func TestAppendRowWidthMismatch(t *testing.T) {
	b := NewBatch()
	if !b.AppendRow(row.Row{row.Int(1), row.Int(2)}) {
		t.Fatal("first row rejected")
	}
	if b.AppendRow(row.Row{row.Int(1)}) {
		t.Fatal("width mismatch accepted")
	}
	if ok, err := b.AppendEncoded(row.Encode(nil, row.Row{row.Int(1)})); ok || err != nil {
		t.Fatalf("encoded width mismatch: ok=%v err=%v", ok, err)
	}
	if b.Len() != 1 {
		t.Fatalf("len %d after rejects", b.Len())
	}
	b.Reset()
	if !b.AppendRow(row.Row{row.Int(7)}) {
		t.Fatal("width should unlock after Reset")
	}
}

func TestAppendEncodedCorruptRollsBack(t *testing.T) {
	b := NewBatch()
	good := row.Encode(nil, row.Row{row.Int(5), row.String("hello")})
	if ok, err := b.AppendEncoded(good); !ok || err != nil {
		t.Fatalf("good row: ok=%v err=%v", ok, err)
	}
	if ok, err := b.AppendEncoded(good[:len(good)-3]); ok || err == nil {
		t.Fatalf("truncated row: ok=%v err=%v", ok, err)
	}
	if b.Len() != 1 {
		t.Fatalf("len %d after rollback", b.Len())
	}
	if got := AppendRowEncoded(nil, b, 0); !bytes.Equal(got, good) {
		t.Fatalf("row 0 damaged by rollback: %x want %x", got, good)
	}
}

func TestVectorDemotion(t *testing.T) {
	var v Vector
	v.AppendNull()
	v.AppendInt(5)
	if v.Kind() != Int64 {
		t.Fatalf("kind %v", v.Kind())
	}
	v.AppendValue(row.String("x"))
	if v.Kind() != Any {
		t.Fatalf("kind %v after mix", v.Kind())
	}
	wants := []row.Value{row.Null(), row.Int(5), row.String("x")}
	for i, w := range wants {
		if v.Value(i) != w {
			t.Fatalf("row %d: %v want %v", i, v.Value(i), w)
		}
	}
	// Int 5 must stay Int (not Float) through demotion: wire bytes differ.
	if got, want := AppendValueEncoded(nil, &v, 1), []byte{byte(row.KindInt), 0x0a}; !bytes.Equal(got, want) {
		t.Fatalf("demoted int encode %x want %x", got, want)
	}
}

func TestCompareAtMatchesRowCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var a, b Vector
	var av, bv []row.Value
	for i := 0; i < 300; i++ {
		x, y := randValue(rng), randValue(rng)
		a.AppendValue(x)
		b.AppendValue(y)
		av, bv = append(av, x), append(bv, y)
	}
	for i := range av {
		want := row.Compare(av[i], bv[i])
		if got := CompareAt(&a, i, &b, i); got != want {
			t.Fatalf("row %d: CompareAt(%v,%v)=%d want %d", i, av[i], bv[i], got, want)
		}
	}
}

func TestConstVector(t *testing.T) {
	v := Const(row.Int(9), 100)
	if v.Len() != 100 || !v.IsConst() {
		t.Fatal("const shape")
	}
	for _, i := range []int{0, 50, 99} {
		if v.Value(i) != row.Int(9) {
			t.Fatalf("const at %d: %v", i, v.Value(i))
		}
	}
	nv := ConstNull(7)
	if !nv.IsNull(3) || nv.Truthy(3) {
		t.Fatal("const null semantics")
	}
}

func TestFilterPingPong(t *testing.T) {
	b := NewBatch()
	for i := 0; i < 64; i++ {
		b.AppendRow(row.Row{row.Int(int64(i))})
	}
	even := NewBool(64)
	for i := 0; i < 64; i += 2 {
		even.SetTrue(i)
	}
	b.Filter(&even)
	if b.Live() != 32 {
		t.Fatalf("live %d", b.Live())
	}
	lt10 := NewBool(64)
	for i := 0; i < 10; i++ {
		lt10.SetTrue(i)
	}
	b.Filter(&lt10)
	if b.Live() != 5 {
		t.Fatalf("live %d after second filter", b.Live())
	}
	var got []int64
	for k := 0; k < b.Live(); k++ {
		got = append(got, b.Col(0).Int(b.RowAt(k)))
	}
	if fmt.Sprint(got) != "[0 2 4 6 8]" {
		t.Fatalf("selection %v", got)
	}
}

func TestTruthyMatchesRowSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var v Vector
	var vals []row.Value
	for i := 0; i < 300; i++ {
		val := randValue(rng)
		if rng.Intn(5) == 0 {
			val = row.Int(0)
		}
		v.AppendValue(val)
		vals = append(vals, val)
	}
	for i, val := range vals {
		want := !val.IsNull() && (val.Int != 0 || val.Float != 0 || val.Str != "")
		if got := v.Truthy(i); got != want {
			t.Fatalf("row %d (%v): truthy %v want %v", i, val, got, want)
		}
	}
}
