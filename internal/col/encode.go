package col

import (
	"encoding/binary"
	"math"

	"tez/internal/row"
)

// This file mirrors the row package's two wire formats over columnar
// storage, byte for byte: AppendRowEncoded produces exactly row.Encode's
// output and AppendKeyEncoded exactly row.EncodeKey's, so the vectorized
// engine's sink files and shuffle segments are indistinguishable from
// the row engine's. Bool vectors (comparison results) encode as Int 0/1
// — that is what Expr.Eval produces on the row path.

func uvarint(buf []byte) (uint64, int) { return binary.Uvarint(buf) }
func varint(buf []byte) (int64, int)   { return binary.Varint(buf) }
func beFloat(buf []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(buf))
}

// AppendRowEncoded appends physical row i of b in row.Encode format.
func AppendRowEncoded(dst []byte, b *Batch, i int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(b.Width()))
	dst = append(dst, tmp[:n]...)
	for c := 0; c < b.Width(); c++ {
		dst = AppendValueEncoded(dst, &b.cols[c], i)
	}
	return dst
}

// AppendValueEncoded appends row i of v as one row.Encode element.
func AppendValueEncoded(dst []byte, v *Vector, i int) []byte {
	i = v.phys(i)
	if v.kind == Any {
		return appendBoxedEncoded(dst, v.Vals[i])
	}
	if v.kind == Unset || bitGet(v.nulls, i) {
		return append(dst, byte(row.KindNull))
	}
	var tmp [binary.MaxVarintLen64]byte
	switch v.kind {
	case Int64:
		dst = append(dst, byte(row.KindInt))
		n := binary.PutVarint(tmp[:], v.Ints[i])
		dst = append(dst, tmp[:n]...)
	case Float64:
		dst = append(dst, byte(row.KindFloat))
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Floats[i]))
		dst = append(dst, b[:]...)
	case Bytes:
		dst = append(dst, byte(row.KindString))
		s := v.Heap[v.Offs[i]:v.Offs[i+1]]
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		dst = append(dst, tmp[:n]...)
		dst = append(dst, s...)
	case Bool:
		dst = append(dst, byte(row.KindInt))
		var x int64
		if bitGet(v.Bits, i) {
			x = 1
		}
		n := binary.PutVarint(tmp[:], x)
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

func appendBoxedEncoded(dst []byte, val row.Value) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, byte(val.Kind))
	switch val.Kind {
	case row.KindInt:
		n := binary.PutVarint(tmp[:], val.Int)
		dst = append(dst, tmp[:n]...)
	case row.KindFloat:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(val.Float))
		dst = append(dst, b[:]...)
	case row.KindString:
		n := binary.PutUvarint(tmp[:], uint64(len(val.Str)))
		dst = append(dst, tmp[:n]...)
		dst = append(dst, val.Str...)
	}
	return dst
}

// AppendKeyEncoded appends row i of v as one row.EncodeKey segment
// (order-preserving: byte comparison matches row.Compare).
func AppendKeyEncoded(dst []byte, v *Vector, i int) []byte {
	i = v.phys(i)
	if v.kind == Any {
		return row.EncodeKey(dst, v.Vals[i])
	}
	if v.kind == Unset || bitGet(v.nulls, i) {
		return append(dst, 0x00)
	}
	switch v.kind {
	case Int64:
		return appendNumericKey(dst, float64(v.Ints[i]))
	case Float64:
		return appendNumericKey(dst, v.Floats[i])
	case Bool:
		var x float64
		if bitGet(v.Bits, i) {
			x = 1
		}
		return appendNumericKey(dst, x)
	case Bytes:
		dst = append(dst, 0x02)
		s := v.Heap[v.Offs[i]:v.Offs[i+1]]
		for k := 0; k < len(s); k++ {
			if s[k] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, s[k])
			}
		}
		return append(dst, 0x00, 0x00)
	}
	return append(dst, 0x00)
}

func appendNumericKey(dst []byte, f float64) []byte {
	dst = append(dst, 0x01)
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], bits)
	return append(dst, b[:]...)
}
