package col

import (
	"encoding/binary"
	"fmt"
	"math"

	"tez/internal/row"
)

// Batch wire format (broadcast edges flagged Batched by the relop
// compiler). Self-describing like library.DMInfo.Codec: a magic byte and
// a version lead the frame, then each column declares its own physical
// kind, so a decoder needs no out-of-band schema and old readers fail
// loudly rather than misparse.
//
//	0xB5 version=1
//	uvarint width  uvarint nrows        (selection applied on encode)
//	per column:
//	  kind byte (Kind)
//	  nulls byte 0|1, then ceil(nrows/8) bitmap bytes when 1
//	  payload:
//	    Unset   — nothing (all rows null)
//	    Int64   — nrows varints (0 at null positions)
//	    Float64 — nrows big-endian float64s
//	    Bytes   — nrows of uvarint len + bytes (len 0 at null positions)
//	    Bool    — ceil(nrows/8) bitmap bytes
//	    Any     — nrows of row.Encode value elements
const (
	batchMagic   = 0xB5
	batchVersion = 1
)

// MaxDecodeRows bounds the claimed row count a frame may declare. All-null
// (Unset) columns cost zero wire bytes per row, so without this cap a
// 9-byte hostile frame could claim 2^60 rows and stall every consumer
// that walks the decoded batch. Real producers flush at a few thousand
// rows (runtime.Services.RelopBatchSize).
const MaxDecodeRows = 1 << 20

// EncodeBatch appends the live rows of b as one batch frame. Constant
// vectors are materialized (the frame is always dense).
func EncodeBatch(dst []byte, b *Batch) []byte {
	var tmp [binary.MaxVarintLen64]byte
	live := b.Live()
	dst = append(dst, batchMagic, batchVersion)
	n := binary.PutUvarint(tmp[:], uint64(b.Width()))
	dst = append(dst, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(live))
	dst = append(dst, tmp[:n]...)
	for c := 0; c < b.Width(); c++ {
		dst = encodeCol(dst, &b.cols[c], b, live)
	}
	return dst
}

func encodeCol(dst []byte, v *Vector, b *Batch, live int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	kind := v.kind
	if kind == Unset || (v.konst && v.kind != Any && v.IsNull(0)) {
		return append(dst, byte(Unset))
	}
	dst = append(dst, byte(kind))

	// Null bitmap over live rows (Any carries nulls in its values).
	if kind != Any {
		anyNull := false
		for k := 0; k < live && !anyNull; k++ {
			anyNull = v.IsNull(b.RowAt(k))
		}
		if anyNull {
			dst = append(dst, 1)
			nb := (live + 7) / 8
			start := len(dst)
			for i := 0; i < nb; i++ {
				dst = append(dst, 0)
			}
			for k := 0; k < live; k++ {
				if v.IsNull(b.RowAt(k)) {
					dst[start+k/8] |= 1 << (uint(k) % 8)
				}
			}
		} else {
			dst = append(dst, 0)
		}
	}

	switch kind {
	case Int64:
		for k := 0; k < live; k++ {
			n := binary.PutVarint(tmp[:], v.Int(b.RowAt(k)))
			dst = append(dst, tmp[:n]...)
		}
	case Float64:
		var fb [8]byte
		for k := 0; k < live; k++ {
			binary.BigEndian.PutUint64(fb[:], math.Float64bits(v.Float(b.RowAt(k))))
			dst = append(dst, fb[:]...)
		}
	case Bytes:
		for k := 0; k < live; k++ {
			i := b.RowAt(k)
			var s []byte
			if !v.IsNull(i) {
				s = v.BytesAt(i)
			}
			n := binary.PutUvarint(tmp[:], uint64(len(s)))
			dst = append(dst, tmp[:n]...)
			dst = append(dst, s...)
		}
	case Bool:
		nb := (live + 7) / 8
		start := len(dst)
		for i := 0; i < nb; i++ {
			dst = append(dst, 0)
		}
		for k := 0; k < live; k++ {
			i := b.RowAt(k)
			if !v.IsNull(i) && v.Bool(i) {
				dst[start+k/8] |= 1 << (uint(k) % 8)
			}
		}
	case Any:
		for k := 0; k < live; k++ {
			dst = appendBoxedEncoded(dst, v.Vals[v.phys(b.RowAt(k))])
		}
	}
	return dst
}

// DecodeBatch parses one batch frame into a fresh dense batch. Trailing
// bytes after the frame are ignored (mirroring row.Decode). Every length
// is validated against the remaining input before any allocation, so
// hostile frames cannot demand unbounded memory.
func DecodeBatch(buf []byte) (*Batch, error) {
	if len(buf) < 2 || buf[0] != batchMagic {
		return nil, fmt.Errorf("col: not a batch frame")
	}
	if buf[1] != batchVersion {
		return nil, fmt.Errorf("col: unsupported batch version %d", buf[1])
	}
	pos := 2
	width, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("col: corrupt batch width")
	}
	pos += n
	rows, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("col: corrupt batch row count")
	}
	pos += n
	if rows > MaxDecodeRows {
		return nil, fmt.Errorf("col: batch claims %d rows (max %d)", rows, MaxDecodeRows)
	}
	// Each column costs at least one byte on the wire.
	if width > uint64(len(buf)-pos) {
		return nil, fmt.Errorf("col: batch width %d exceeds frame", width)
	}
	b := NewBatch()
	b.setWidth(int(width))
	b.n = int(rows)
	for c := 0; c < int(width); c++ {
		var err error
		pos, err = decodeCol(&b.cols[c], buf, pos, int(rows))
		if err != nil {
			return nil, fmt.Errorf("col %d: %w", c, err)
		}
	}
	return b, nil
}

func decodeCol(v *Vector, buf []byte, pos, rows int) (int, error) {
	if pos >= len(buf) {
		return 0, fmt.Errorf("col: truncated column header")
	}
	kind := Kind(buf[pos])
	pos++
	if kind == Unset {
		v.kind = Unset
		v.n = rows
		v.konst = true
		return pos, nil
	}
	if kind > Any {
		return 0, fmt.Errorf("col: unknown column kind %d", kind)
	}

	var nulls []byte
	if kind != Any {
		if pos >= len(buf) {
			return 0, fmt.Errorf("col: truncated null marker")
		}
		marker := buf[pos]
		pos++
		if marker > 1 {
			return 0, fmt.Errorf("col: corrupt null marker %d", marker)
		}
		if marker == 1 {
			nb := (rows + 7) / 8
			if len(buf)-pos < nb {
				return 0, fmt.Errorf("col: truncated null bitmap")
			}
			nulls = buf[pos : pos+nb]
			pos += nb
		}
	}
	nullAt := func(k int) bool {
		return nulls != nil && nulls[k/8]&(1<<(uint(k)%8)) != 0
	}

	switch kind {
	case Int64:
		if rows > len(buf)-pos {
			return 0, fmt.Errorf("col: int column larger than frame")
		}
		v.promote(Int64)
		for k := 0; k < rows; k++ {
			x, n := binary.Varint(buf[pos:])
			if n <= 0 {
				return 0, fmt.Errorf("col: corrupt int at row %d", k)
			}
			pos += n
			if nullAt(k) {
				v.AppendNull()
			} else {
				v.AppendInt(x)
			}
		}
	case Float64:
		if rows > (len(buf)-pos)/8 {
			return 0, fmt.Errorf("col: float column larger than frame")
		}
		v.promote(Float64)
		for k := 0; k < rows; k++ {
			if nullAt(k) {
				v.AppendNull()
			} else {
				v.AppendFloat(beFloat(buf[pos:]))
			}
			pos += 8
		}
	case Bytes:
		if rows > len(buf)-pos {
			return 0, fmt.Errorf("col: bytes column larger than frame")
		}
		v.promote(Bytes)
		for k := 0; k < rows; k++ {
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return 0, fmt.Errorf("col: corrupt bytes length at row %d", k)
			}
			pos += n
			if uint64(len(buf)-pos) < l {
				return 0, fmt.Errorf("col: truncated bytes at row %d", k)
			}
			if nullAt(k) {
				v.AppendNull()
			} else {
				v.AppendBytes(buf[pos : pos+int(l)])
			}
			pos += int(l)
		}
	case Bool:
		nb := (rows + 7) / 8
		if len(buf)-pos < nb {
			return 0, fmt.Errorf("col: truncated bool column")
		}
		v.promote(Bool)
		for k := 0; k < rows; k++ {
			if nullAt(k) {
				v.AppendNull()
			} else {
				v.AppendBool(buf[pos+k/8]&(1<<(uint(k)%8)) != 0)
			}
		}
		pos += nb
	case Any:
		if rows > len(buf)-pos {
			return 0, fmt.Errorf("col: boxed column larger than frame")
		}
		v.promote(Any)
		for k := 0; k < rows; k++ {
			var err error
			pos, err = decodeBoxed(v, buf, pos)
			if err != nil {
				return 0, fmt.Errorf("row %d: %w", k, err)
			}
		}
	}
	if v.n != rows {
		return 0, fmt.Errorf("col: decoded %d of %d rows", v.n, rows)
	}
	return pos, nil
}

func decodeBoxed(v *Vector, buf []byte, pos int) (int, error) {
	if pos >= len(buf) {
		return 0, fmt.Errorf("col: truncated boxed value")
	}
	kind := row.Kind(buf[pos])
	pos++
	switch kind {
	case row.KindNull:
		v.Vals = append(v.Vals, row.Null())
	case row.KindInt:
		x, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("col: corrupt boxed int")
		}
		pos += n
		v.Vals = append(v.Vals, row.Int(x))
	case row.KindFloat:
		if pos+8 > len(buf) {
			return 0, fmt.Errorf("col: truncated boxed float")
		}
		v.Vals = append(v.Vals, row.Float(beFloat(buf[pos:])))
		pos += 8
	case row.KindString:
		l, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("col: corrupt boxed string")
		}
		pos += n
		if uint64(len(buf)-pos) < l {
			return 0, fmt.Errorf("col: truncated boxed string")
		}
		v.Vals = append(v.Vals, row.String(string(buf[pos:pos+int(l)])))
		pos += int(l)
	default:
		return 0, fmt.Errorf("col: unknown boxed kind %d", kind)
	}
	v.n++
	return pos, nil
}
