// Package security implements the token-based authentication of §4.3 in
// miniature: "secure Hadoop provides Kerberos and token based
// authentication for applications to access storage or compute resources
// and Tez integrates with the secure APIs exposed by Hadoop".
//
// An Authority issues HMAC-SHA256 tokens scoped to one DAG. The shuffle
// service — the place where one application's intermediate data is
// exposed to the network — verifies them on registration and fetch, so a
// task can only touch the data plane of its own DAG. Tokens are revoked
// when the DAG finishes, which also shuts out zombie task attempts that
// outlive their DAG (§4.1's "tasks are typically executed in their
// dependency order" teardown).
package security

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"sync"
)

// ErrUnauthorized rejects a missing, forged or revoked token.
var ErrUnauthorized = errors.New("security: unauthorized")

// Token is an opaque credential scoped to one DAG.
type Token []byte

// Authority issues and verifies per-DAG tokens.
type Authority struct {
	mu      sync.Mutex
	key     []byte
	revoked map[string]bool
}

// NewAuthority creates an authority with a fresh random key.
func NewAuthority() *Authority {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return &Authority{key: key, revoked: map[string]bool{}}
}

// Issue mints the token for a DAG (idempotent: same DAG → same token).
// Issuing un-revokes a previously revoked scope (AM recovery re-issues
// for the same run id).
func (a *Authority) Issue(dag string) Token {
	a.mu.Lock()
	delete(a.revoked, dag)
	a.mu.Unlock()
	return a.sign(dag)
}

func (a *Authority) sign(dag string) Token {
	m := hmac.New(sha256.New, a.key)
	m.Write([]byte(dag))
	return m.Sum(nil)
}

// Verify checks that tok is the live token for dag.
func (a *Authority) Verify(dag string, tok Token) error {
	a.mu.Lock()
	revoked := a.revoked[dag]
	a.mu.Unlock()
	if revoked {
		return ErrUnauthorized
	}
	if !hmac.Equal(a.sign(dag), tok) {
		return ErrUnauthorized
	}
	return nil
}

// Revoke invalidates a DAG's token (called when the DAG terminates).
func (a *Authority) Revoke(dag string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.revoked[dag] = true
}
