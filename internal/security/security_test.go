package security

import (
	"errors"
	"testing"
)

func TestIssueVerifyRevoke(t *testing.T) {
	a := NewAuthority()
	tok := a.Issue("dag1")
	if err := a.Verify("dag1", tok); err != nil {
		t.Fatal(err)
	}
	// Wrong scope.
	if err := a.Verify("dag2", tok); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("cross-scope verify: %v", err)
	}
	// Forged token.
	forged := append(Token{}, tok...)
	forged[0] ^= 0xFF
	if err := a.Verify("dag1", forged); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("forged verify: %v", err)
	}
	// Nil token.
	if err := a.Verify("dag1", nil); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("nil verify: %v", err)
	}
	// Revocation.
	a.Revoke("dag1")
	if err := a.Verify("dag1", tok); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("revoked verify: %v", err)
	}
	// Re-issue (AM recovery) restores access with the same token value.
	tok2 := a.Issue("dag1")
	if err := a.Verify("dag1", tok2); err != nil {
		t.Fatal(err)
	}
	if string(tok) != string(tok2) {
		t.Fatal("re-issued token differs")
	}
}

func TestAuthoritiesAreIndependent(t *testing.T) {
	a := NewAuthority()
	b := NewAuthority()
	tok := a.Issue("dag")
	if err := b.Verify("dag", tok); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("cross-authority verify: %v", err)
	}
}
