package runtime

import (
	"fmt"

	"tez/internal/dfs"
	"tez/internal/event"
	"tez/internal/mailbox"
	"tez/internal/plugin"
)

// This file defines the two AM-side pluggable entities of the Tez model:
// DataSourceInitializers (§3.5), which run in the AM before a vertex's
// tasks to decide the optimal read pattern, and DataSinkCommitters (§3.1),
// which run once after vertex success to make output visible.

// InitializerContext is the framework context an initializer runs with.
type InitializerContext struct {
	DAG    string
	Vertex string
	Source string
	// Payload is the initializer descriptor's opaque configuration.
	Payload []byte
	// FS and ClusterNodes give access to data distribution and compute
	// capacity for split planning.
	FS           *dfs.FileSystem
	ClusterNodes []string
	// Events delivers InputInitializerEvents from running tasks of other
	// vertices — the dynamic partition pruning channel.
	Events *mailbox.Mailbox[event.InputInitializerEvent]
	// VertexParallelism blocks until the named vertex's task count is
	// decided and returns it (-1 if the DAG ends first). Initializers use
	// it to learn how many pruning events to expect.
	VertexParallelism func(vertex string) int
	// Stop is closed when the DAG is torn down.
	Stop <-chan struct{}
}

// InitializerResult tells the AM how to configure the vertex.
type InitializerResult struct {
	// Parallelism sets the vertex task count (-1 keeps the DAG value).
	Parallelism int
	// PerTaskPayload[i] is delivered to task i's root input as a
	// RootInputDataInformation event (e.g. its split assignment).
	PerTaskPayload [][]byte
	// LocationHints[i] optionally lists preferred hosts for task i.
	LocationHints [][]string
}

// Initializer computes the read pattern for a data source at runtime.
type Initializer interface {
	Run(ctx *InitializerContext) (*InitializerResult, error)
}

// InitializerFactory builds initializers.
type InitializerFactory func() Initializer

// RegisterInitializer installs an initializer factory.
func RegisterInitializer(name string, f InitializerFactory) {
	plugin.Register(plugin.KindInitializer, name, f)
}

// NewInitializer instantiates a registered initializer.
func NewInitializer(d plugin.Descriptor) (Initializer, error) {
	f, err := plugin.Lookup(plugin.KindInitializer, d.Name)
	if err != nil {
		return nil, err
	}
	inf, ok := f.(InitializerFactory)
	if !ok {
		return nil, fmt.Errorf("runtime: initializer %q factory has type %T", d.Name, f)
	}
	return inf(), nil
}

// CommitContext is handed to a committer after its vertex succeeds.
type CommitContext struct {
	DAG    string
	Vertex string
	Sink   string
	// Payload is the committer descriptor's opaque configuration.
	Payload []byte
	FS      *dfs.FileSystem
	// Parallelism is the final task count of the vertex;
	// SuccessfulAttempt[i] is the attempt number whose output to commit.
	Parallelism       int
	SuccessfulAttempt map[int]int
}

// Committer finalises a data sink exactly once (§3.1: "guaranteed to be
// done once, and typically involves making the output visible to external
// observers").
type Committer interface {
	Commit(ctx *CommitContext) error
}

// CommitterFactory builds committers.
type CommitterFactory func() Committer

// RegisterCommitter installs a committer factory.
func RegisterCommitter(name string, f CommitterFactory) {
	plugin.Register(plugin.KindCommitter, name, f)
}

// NewCommitter instantiates a registered committer.
func NewCommitter(d plugin.Descriptor) (Committer, error) {
	f, err := plugin.Lookup(plugin.KindCommitter, d.Name)
	if err != nil {
		return nil, err
	}
	cf, ok := f.(CommitterFactory)
	if !ok {
		return nil, fmt.Errorf("runtime: committer %q factory has type %T", d.Name, f)
	}
	return cf(), nil
}
