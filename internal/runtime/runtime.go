// Package runtime implements the Tez Runtime API (§3.2): the Input,
// Processor and Output interfaces that compose a task, the contexts through
// which the framework configures them (opaque payloads) and lets them
// exchange control events, and the in-container task runner that wires a
// TaskSpec to live IPO objects and executes it.
//
// Tez itself stays off the data plane: the runner never looks at data, it
// only instantiates the application-chosen IPO classes and routes their
// control events.
package runtime

import (
	"errors"
	"fmt"

	"tez/internal/dfs"
	"tez/internal/event"
	"tez/internal/metrics"
	"tez/internal/plugin"
	"tez/internal/security"
	"tez/internal/shuffle"
	"tez/internal/timeline"
)

// Meta identifies the task attempt an entity belongs to.
type Meta struct {
	DAG     string
	Vertex  string
	Task    int
	Attempt int
	// VertexParallelism is the task count of this vertex (for
	// partition-aware processors).
	VertexParallelism int
}

// ID renders a compact attempt id.
func (m Meta) ID() string {
	return fmt.Sprintf("%s/%s/t%03d_a%d", m.DAG, m.Vertex, m.Task, m.Attempt)
}

// Services exposes the per-container environment: the data services of the
// simulated Hadoop cluster, the node identity (for locality-aware IO), the
// container's shared object registry (§4.2) and task counters.
type Services struct {
	FS       *dfs.FileSystem
	Shuffle  *shuffle.Service
	Node     string
	Registry *ObjectRegistry
	Counters *metrics.Counters
	// Token is the DAG's shuffle-access credential on secure clusters
	// (§4.3); nil when security is off.
	Token security.Token
	// FetchParallelism overrides the shuffle fetcher-pool size for this
	// task's inputs: 0 falls through to the cluster-wide
	// shuffle.Config.FetchParallelism (and then the library default);
	// 1 forces serial fetching.
	FetchParallelism int
	// SortMB overrides the map-side shuffle sort budget (MiB) for this
	// task's ordered outputs: 0 falls through to shuffle.Config.SortMB,
	// negative forces unbounded (no spills).
	SortMB int
	// MergeFactor overrides the reduce-side merge width for this task's
	// ordered inputs: 0 falls through to shuffle.Config.MergeFactor (and
	// then the library default), negative disables intermediate merges.
	MergeFactor int
	// Codec overrides the shuffle wire block codec name for this task's
	// outputs ("none", "flate", ...): empty falls through to
	// shuffle.Config.Codec and then "none".
	Codec string
	// ShufflePipelined turns on pipelined spill publication for this
	// task's ordered outputs: each sorted spill is registered and
	// announced as it is produced instead of held for Close. False falls
	// through to shuffle.Config.Pipelined; per-edge
	// OrderedPartitionedConfig.Pipelined still takes precedence.
	ShufflePipelined bool
	// Timeline, when set, receives data-plane spans (sort spills, run
	// merges) from this task's shuffle transports; nil records nothing.
	Timeline *timeline.Journal
	// RelopBatchSize tunes the relational stage processor's vectorized
	// execution: 0 uses the engine default, > 0 sets the rows-per-batch
	// flush threshold, < 0 forces row-at-a-time execution for this
	// session (batched wire contracts still honored).
	RelopBatchSize int
}

// Context is handed to every Input, Processor and Output at Initialize.
type Context struct {
	Meta     Meta
	Services Services
	// Payload is this entity's opaque configuration from its descriptor.
	Payload []byte
	// Name is the input/output name: for edge IO it is the peer vertex
	// name; for data sources/sinks it is the source/sink name.
	Name string
	// PhysicalCount is the number of physical inputs (for an Input) or
	// outputs (for an Output) as computed by the edge manager.
	PhysicalCount int
	// Emit sends a control event to the AM (asynchronous, never blocks).
	Emit func(event.Event)
	// Stop is closed when the attempt is being killed; long operations
	// should observe it at I/O boundaries.
	Stop <-chan struct{}
}

// Input is the consumer side of an edge or a data source reader.
type Input interface {
	Initialize(ctx *Context) error
	// HandleEvent delivers a routed control event (DataMovement,
	// RootInputDataInformation, InputFailed).
	HandleEvent(ev event.Event) error
	// Start begins any background work (e.g. shuffle fetches may begin
	// before all producers finish — the overlap of §3.4).
	Start() error
	// Reader returns the data reader. Its concrete type is part of the
	// input/output compatibility contract (Tez is data-format agnostic);
	// processors type-assert to the format they expect.
	Reader() (any, error)
	Close() error
}

// Output is the producer side of an edge or a data sink writer.
type Output interface {
	Initialize(ctx *Context) error
	// Writer returns the data writer; processors type-assert it.
	Writer() (any, error)
	// Close finalises the output and returns the control events announcing
	// produced data (typically DataMovement events carrying metadata such
	// as a shuffle output id — the "access URL" of §3.3).
	Close() ([]event.Event, error)
}

// Processor hosts the application logic of a vertex task.
type Processor interface {
	Initialize(ctx *Context) error
	// Run consumes the named inputs and produces the named outputs.
	Run(inputs map[string]Input, outputs map[string]Output) error
	Close() error
}

// Factory signatures registered under the plugin kinds.
type (
	ProcessorFactory func() Processor
	InputFactory     func() Input
	OutputFactory    func() Output
)

// RegisterProcessor, RegisterInput and RegisterOutput install factories.
func RegisterProcessor(name string, f ProcessorFactory) {
	plugin.Register(plugin.KindProcessor, name, f)
}

// RegisterInput installs an input factory.
func RegisterInput(name string, f InputFactory) { plugin.Register(plugin.KindInput, name, f) }

// RegisterOutput installs an output factory.
func RegisterOutput(name string, f OutputFactory) { plugin.Register(plugin.KindOutput, name, f) }

// NewProcessor instantiates a registered processor.
func NewProcessor(d plugin.Descriptor) (Processor, error) {
	f, err := plugin.Lookup(plugin.KindProcessor, d.Name)
	if err != nil {
		return nil, err
	}
	pf, ok := f.(ProcessorFactory)
	if !ok {
		return nil, fmt.Errorf("runtime: processor %q factory has type %T", d.Name, f)
	}
	return pf(), nil
}

// NewInput instantiates a registered input.
func NewInput(d plugin.Descriptor) (Input, error) {
	f, err := plugin.Lookup(plugin.KindInput, d.Name)
	if err != nil {
		return nil, err
	}
	inf, ok := f.(InputFactory)
	if !ok {
		return nil, fmt.Errorf("runtime: input %q factory has type %T", d.Name, f)
	}
	return inf(), nil
}

// NewOutput instantiates a registered output.
func NewOutput(d plugin.Descriptor) (Output, error) {
	f, err := plugin.Lookup(plugin.KindOutput, d.Name)
	if err != nil {
		return nil, err
	}
	of, ok := f.(OutputFactory)
	if !ok {
		return nil, fmt.Errorf("runtime: output %q factory has type %T", d.Name, f)
	}
	return of(), nil
}

// InputReadError marks a task failure caused by unreadable upstream data.
// The runner converts it into an event.InputReadError so the AM re-executes
// the producer instead of blaming this attempt (§4.3).
type InputReadError struct {
	InputName  string
	SrcVertex  string
	SrcTask    int
	SrcAttempt int
	Err        error
}

// Error implements error.
func (e *InputReadError) Error() string {
	return fmt.Sprintf("input %s: data of %s task %d attempt %d unreadable: %v",
		e.InputName, e.SrcVertex, e.SrcTask, e.SrcAttempt, e.Err)
}

// Unwrap exposes the cause.
func (e *InputReadError) Unwrap() error { return e.Err }

// AsInputReadError extracts an InputReadError from an error chain.
func AsInputReadError(err error) (*InputReadError, bool) {
	var ire *InputReadError
	if errors.As(err, &ire) {
		return ire, true
	}
	return nil, false
}
