package runtime

import "sync"

// Lifetime scopes an object-registry entry (§4.2, Shared Object Registry).
type Lifetime int

const (
	// LifetimeVertex entries are visible only to tasks of the inserting
	// vertex within the same DAG.
	LifetimeVertex Lifetime = iota
	// LifetimeDAG entries are visible to all tasks of the inserting DAG.
	LifetimeDAG
	// LifetimeSession entries live as long as the container's session.
	LifetimeSession
)

// ObjectRegistry is the per-container in-memory object cache that extends
// the benefit of container reuse to the application: a task populates it
// (e.g. the hash table of a broadcast join) and subsequent tasks running in
// the same container skip the recomputation.
type ObjectRegistry struct {
	mu      sync.Mutex
	entries map[string]regEntry
}

type regEntry struct {
	value    any
	lifetime Lifetime
	dag      string
	vertex   string
}

// NewObjectRegistry returns an empty registry (one per container).
func NewObjectRegistry() *ObjectRegistry {
	return &ObjectRegistry{entries: make(map[string]regEntry)}
}

// Add caches value under key with the given lifetime, scoped by the
// caller's attempt metadata. It returns the previous value, if any.
func (r *ObjectRegistry) Add(lt Lifetime, meta Meta, key string, value any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, _ := r.getLocked(meta, key)
	r.entries[key] = regEntry{value: value, lifetime: lt, dag: meta.DAG, vertex: meta.Vertex}
	return prev
}

// Get returns the cached value for key if the caller's scope matches the
// entry's lifetime.
func (r *ObjectRegistry) Get(meta Meta, key string) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.getLocked(meta, key)
}

func (r *ObjectRegistry) getLocked(meta Meta, key string) (any, bool) {
	e, ok := r.entries[key]
	if !ok {
		return nil, false
	}
	switch e.lifetime {
	case LifetimeVertex:
		if e.dag != meta.DAG || e.vertex != meta.Vertex {
			return nil, false
		}
	case LifetimeDAG:
		if e.dag != meta.DAG {
			return nil, false
		}
	}
	return e.value, true
}

// Delete explicitly evicts key if the caller's scope can see it (the same
// visibility rule as Get), returning the evicted value. Long-running
// session workloads use it to bound what container reuse accumulates:
// framework sweeps only run at vertex/DAG end, and session-lifetime
// entries are never swept at all — an iterative driver caching per-step
// state must retire superseded steps itself.
func (r *ObjectRegistry) Delete(meta Meta, key string) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.getLocked(meta, key)
	if !ok {
		return nil, false
	}
	delete(r.entries, key)
	return v, true
}

// SweepDAG evicts entries scoped to a completed DAG (the framework-managed
// lifecycle of §4.2). Session entries survive.
func (r *ObjectRegistry) SweepDAG(dag string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, e := range r.entries {
		if e.lifetime != LifetimeSession && e.dag == dag {
			delete(r.entries, k)
		}
	}
}

// SweepVertex evicts vertex-lifetime entries of a completed vertex.
func (r *ObjectRegistry) SweepVertex(dag, vertex string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, e := range r.entries {
		if e.lifetime == LifetimeVertex && e.dag == dag && e.vertex == vertex {
			delete(r.entries, k)
		}
	}
}

// Len reports the number of cached entries.
func (r *ObjectRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
