package runtime

// The key-value data-plane contracts shared by the built-in inputs and
// outputs (§4.1: "Tez inputs and outputs are based on the key-value data
// format ... and can be extended to other data formats"). These are
// conventions between compatible IO pairs and processors; the framework
// itself never touches them.

// KVWriter accepts key-value pairs.
type KVWriter interface {
	Write(key, value []byte) error
}

// KVReader iterates key-value pairs.
type KVReader interface {
	// Next advances to the next pair, reporting false at the end.
	Next() bool
	Key() []byte
	Value() []byte
	// Err returns the first error encountered while reading.
	Err() error
}

// GroupedKVReader iterates keys with all their values grouped — the
// reduce-side contract of the ordered, partitioned shuffle.
type GroupedKVReader interface {
	Next() bool
	Key() []byte
	Values() [][]byte
	Err() error
}

// SliceKVReader adapts in-memory pairs to KVReader (testing and small
// inputs).
type SliceKVReader struct {
	Keys   [][]byte
	Values [][]byte
	pos    int
}

// Next advances.
func (r *SliceKVReader) Next() bool {
	if r.pos >= len(r.Keys) {
		return false
	}
	r.pos++
	return true
}

// Key returns the current key.
func (r *SliceKVReader) Key() []byte { return r.Keys[r.pos-1] }

// Value returns the current value.
func (r *SliceKVReader) Value() []byte { return r.Values[r.pos-1] }

// Err always returns nil.
func (r *SliceKVReader) Err() error { return nil }
