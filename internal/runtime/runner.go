package runtime

import (
	"fmt"

	"tez/internal/event"
	"tez/internal/mailbox"
	"tez/internal/plugin"
)

// IOSpec describes one logical input or output of a task: its name (the
// peer vertex for edges, the source/sink name otherwise), the IO class
// descriptor, and the physical fan-in/out computed by the edge manager.
type IOSpec struct {
	Name          string
	Descriptor    plugin.Descriptor
	PhysicalCount int
}

// TaskSpec is everything a container needs to execute one task attempt.
// It is assembled by the AM from the (possibly runtime-reconfigured) DAG.
type TaskSpec struct {
	Meta      Meta
	Processor plugin.Descriptor
	Inputs    []IOSpec
	Outputs   []IOSpec
}

// TaskRunner executes one task attempt inside a container: it instantiates
// the processor and IO objects from the registry, initialises them with
// their opaque payloads, pumps incoming control events to the right input,
// runs the processor, then closes outputs and forwards their completion
// events to the AM.
type TaskRunner struct {
	Spec     TaskSpec
	Services Services
	// Incoming carries AM→task events (routed DataMovement etc.). The
	// runner closes it when the attempt finishes.
	Incoming *mailbox.Mailbox[event.Event]
	// Emit sends task→AM events.
	Emit func(event.Event)
}

// Run executes the attempt. A returned *InputReadError (possibly wrapped)
// has already been reported to the AM as an event.InputReadError.
func (r *TaskRunner) Run(stop <-chan struct{}) (err error) {
	defer r.Incoming.Close()
	defer func() {
		if err != nil {
			if ire, ok := AsInputReadError(err); ok {
				r.Emit(event.InputReadError{
					Vertex:     r.Spec.Meta.Vertex,
					Task:       r.Spec.Meta.Task,
					InputName:  ire.InputName,
					SrcVertex:  ire.SrcVertex,
					SrcTask:    ire.SrcTask,
					SrcAttempt: ire.SrcAttempt,
					Reason:     ire.Error(),
				})
			}
		}
	}()

	proc, err := NewProcessor(r.Spec.Processor)
	if err != nil {
		return err
	}
	inputs := make(map[string]Input, len(r.Spec.Inputs))
	outputs := make(map[string]Output, len(r.Spec.Outputs))

	newCtx := func(name string, payload []byte, phys int) *Context {
		return &Context{
			Meta:          r.Spec.Meta,
			Services:      r.Services,
			Payload:       payload,
			Name:          name,
			PhysicalCount: phys,
			Emit:          r.Emit,
			Stop:          stop,
		}
	}

	if err := proc.Initialize(newCtx("", r.Spec.Processor.Payload, 0)); err != nil {
		return fmt.Errorf("initialize processor: %w", err)
	}
	for _, spec := range r.Spec.Inputs {
		in, err := NewInput(spec.Descriptor)
		if err != nil {
			return err
		}
		if err := in.Initialize(newCtx(spec.Name, spec.Descriptor.Payload, spec.PhysicalCount)); err != nil {
			return fmt.Errorf("initialize input %s: %w", spec.Name, err)
		}
		inputs[spec.Name] = in
	}
	for _, spec := range r.Spec.Outputs {
		out, err := NewOutput(spec.Descriptor)
		if err != nil {
			return err
		}
		if err := out.Initialize(newCtx(spec.Name, spec.Descriptor.Payload, spec.PhysicalCount)); err != nil {
			return fmt.Errorf("initialize output %s: %w", spec.Name, err)
		}
		outputs[spec.Name] = out
	}

	// Event pump: deliver routed events to the addressed input. The pump
	// exits when Incoming is closed (by us, at attempt end, or by the AM).
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for {
			ev, ok := r.Incoming.Get()
			if !ok {
				return
			}
			name := inputNameOf(ev)
			if in, ok := inputs[name]; ok {
				// Input event handlers are required to be non-blocking
				// and error-free on routed events; a handler error is a
				// contract bug surfaced via the task's own read path.
				_ = in.HandleEvent(ev)
			}
		}
	}()
	defer func() { r.Incoming.Close(); <-pumpDone }()

	for name, in := range inputs {
		if err := in.Start(); err != nil {
			return fmt.Errorf("start input %s: %w", name, err)
		}
	}

	if err := proc.Run(inputs, outputs); err != nil {
		return err
	}
	if err := proc.Close(); err != nil {
		return fmt.Errorf("close processor: %w", err)
	}
	for name, in := range inputs {
		if err := in.Close(); err != nil {
			return fmt.Errorf("close input %s: %w", name, err)
		}
	}
	for name, out := range outputs {
		events, err := out.Close()
		if err != nil {
			return fmt.Errorf("close output %s: %w", name, err)
		}
		for _, ev := range events {
			r.Emit(ev)
		}
	}
	return nil
}

// inputNameOf extracts the addressed input name from a routed event.
func inputNameOf(ev event.Event) string {
	switch e := ev.(type) {
	case event.DataMovement:
		return e.TargetInput
	case event.RootInputDataInformation:
		return e.InputName
	case event.InputFailed:
		return e.TargetInput
	default:
		return ""
	}
}
