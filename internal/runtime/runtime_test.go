package runtime

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"tez/internal/event"
	"tez/internal/mailbox"
	"tez/internal/plugin"
)

// Fake IPOs for runner tests.

type fakeProcessor struct {
	initialized bool
	run         func(in map[string]Input, out map[string]Output) error
}

func (p *fakeProcessor) Initialize(*Context) error { p.initialized = true; return nil }
func (p *fakeProcessor) Run(in map[string]Input, out map[string]Output) error {
	if p.run != nil {
		return p.run(in, out)
	}
	return nil
}
func (p *fakeProcessor) Close() error { return nil }

type fakeInput struct {
	mu     sync.Mutex
	events []event.Event
	name   string
	fail   error
}

func (i *fakeInput) Initialize(ctx *Context) error { i.name = ctx.Name; return nil }
func (i *fakeInput) HandleEvent(ev event.Event) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.events = append(i.events, ev)
	return nil
}
func (i *fakeInput) Start() error { return nil }
func (i *fakeInput) Reader() (any, error) {
	if i.fail != nil {
		return nil, i.fail
	}
	return &SliceKVReader{}, nil
}
func (i *fakeInput) Close() error { return nil }
func (i *fakeInput) seen() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.events)
}

type fakeOutput struct {
	closedEvents []event.Event
}

func (o *fakeOutput) Initialize(*Context) error     { return nil }
func (o *fakeOutput) Writer() (any, error)          { return KVWriter(nil), nil }
func (o *fakeOutput) Close() ([]event.Event, error) { return o.closedEvents, nil }

func TestRunnerHappyPath(t *testing.T) {
	var lastProc *fakeProcessor
	var lastIn *fakeInput
	var lastOut *fakeOutput
	RegisterProcessor("rt.proc", func() Processor { lastProc = &fakeProcessor{}; return lastProc })
	RegisterInput("rt.in", func() Input { lastIn = &fakeInput{}; return lastIn })
	RegisterOutput("rt.out", func() Output {
		lastOut = &fakeOutput{closedEvents: []event.Event{event.VertexManagerEvent{TargetVertex: "next"}}}
		return lastOut
	})

	var emitted []event.Event
	var mu sync.Mutex
	r := &TaskRunner{
		Spec: TaskSpec{
			Meta:      Meta{DAG: "d", Vertex: "v", Task: 0},
			Processor: plugin.Desc("rt.proc", nil),
			Inputs:    []IOSpec{{Name: "up", Descriptor: plugin.Desc("rt.in", nil), PhysicalCount: 2}},
			Outputs:   []IOSpec{{Name: "down", Descriptor: plugin.Desc("rt.out", nil), PhysicalCount: 1}},
		},
		Incoming: mailbox.New[event.Event](),
		Emit: func(ev event.Event) {
			mu.Lock()
			defer mu.Unlock()
			emitted = append(emitted, ev)
		},
	}
	// Queue a routed event before the run starts; the pump must deliver it.
	r.Incoming.Put(event.DataMovement{TargetInput: "up", TargetInputIndex: 1})
	if err := r.Run(make(chan struct{})); err != nil {
		t.Fatal(err)
	}
	if !lastProc.initialized {
		t.Fatal("processor not initialized")
	}
	if lastIn.name != "up" {
		t.Fatalf("input context name = %q", lastIn.name)
	}
	if lastIn.seen() != 1 {
		t.Fatalf("input saw %d events", lastIn.seen())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(emitted) != 1 {
		t.Fatalf("emitted %d events, want the output close event", len(emitted))
	}
}

func TestRunnerEmitsInputReadError(t *testing.T) {
	RegisterProcessor("rt.proc_read", func() Processor {
		return &fakeProcessor{run: func(in map[string]Input, _ map[string]Output) error {
			_, err := in["up"].Reader()
			return err
		}}
	})
	RegisterInput("rt.in_fail", func() Input {
		return &fakeInput{fail: &InputReadError{
			InputName: "up", SrcVertex: "prev", SrcTask: 3, SrcAttempt: 1,
			Err: errors.New("gone"),
		}}
	})
	var emitted []event.Event
	var mu sync.Mutex
	r := &TaskRunner{
		Spec: TaskSpec{
			Meta:      Meta{DAG: "d", Vertex: "v", Task: 5},
			Processor: plugin.Desc("rt.proc_read", nil),
			Inputs:    []IOSpec{{Name: "up", Descriptor: plugin.Desc("rt.in_fail", nil)}},
		},
		Incoming: mailbox.New[event.Event](),
		Emit: func(ev event.Event) {
			mu.Lock()
			defer mu.Unlock()
			emitted = append(emitted, ev)
		},
	}
	err := r.Run(make(chan struct{}))
	if _, ok := AsInputReadError(err); !ok {
		t.Fatalf("err = %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(emitted) != 1 {
		t.Fatalf("emitted %d events", len(emitted))
	}
	ire, ok := emitted[0].(event.InputReadError)
	if !ok {
		t.Fatalf("emitted %T", emitted[0])
	}
	if ire.SrcVertex != "prev" || ire.SrcTask != 3 || ire.SrcAttempt != 1 || ire.Task != 5 {
		t.Fatalf("event = %+v", ire)
	}
}

func TestRunnerUnknownProcessor(t *testing.T) {
	r := &TaskRunner{
		Spec:     TaskSpec{Processor: plugin.Desc("rt.nonexistent", nil)},
		Incoming: mailbox.New[event.Event](),
		Emit:     func(event.Event) {},
	}
	err := r.Run(make(chan struct{}))
	if err == nil || !strings.Contains(err.Error(), "nonexistent") {
		t.Fatalf("err = %v", err)
	}
}

func TestObjectRegistryScoping(t *testing.T) {
	reg := NewObjectRegistry()
	m1 := Meta{DAG: "dag1", Vertex: "v1"}
	m2 := Meta{DAG: "dag1", Vertex: "v2"}
	m3 := Meta{DAG: "dag2", Vertex: "v1"}

	reg.Add(LifetimeVertex, m1, "vkey", 1)
	reg.Add(LifetimeDAG, m1, "dkey", 2)
	reg.Add(LifetimeSession, m1, "skey", 3)

	if v, ok := reg.Get(m1, "vkey"); !ok || v != 1 {
		t.Fatal("same-vertex get failed")
	}
	if _, ok := reg.Get(m2, "vkey"); ok {
		t.Fatal("vertex-scoped entry visible to other vertex")
	}
	if v, ok := reg.Get(m2, "dkey"); !ok || v != 2 {
		t.Fatal("dag-scoped entry invisible within dag")
	}
	if _, ok := reg.Get(m3, "dkey"); ok {
		t.Fatal("dag-scoped entry visible to other dag")
	}
	if v, ok := reg.Get(m3, "skey"); !ok || v != 3 {
		t.Fatal("session entry invisible")
	}

	reg.SweepVertex("dag1", "v1")
	if _, ok := reg.Get(m1, "vkey"); ok {
		t.Fatal("sweep vertex did not evict")
	}
	reg.SweepDAG("dag1")
	if _, ok := reg.Get(m1, "dkey"); ok {
		t.Fatal("sweep dag did not evict")
	}
	if _, ok := reg.Get(m1, "skey"); !ok {
		t.Fatal("sweep dag evicted session entry")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len = %d", reg.Len())
	}
}

func TestObjectRegistryAddReturnsPrevious(t *testing.T) {
	reg := NewObjectRegistry()
	m := Meta{DAG: "d", Vertex: "v"}
	if prev := reg.Add(LifetimeDAG, m, "k", "a"); prev != nil {
		t.Fatalf("prev = %v", prev)
	}
	if prev := reg.Add(LifetimeDAG, m, "k", "b"); prev != "a" {
		t.Fatalf("prev = %v", prev)
	}
}

func TestMetaID(t *testing.T) {
	m := Meta{DAG: "d", Vertex: "v", Task: 7, Attempt: 2}
	if got := m.ID(); got != "d/v/t007_a2" {
		t.Fatalf("ID = %q", got)
	}
}

func TestObjectRegistryDelete(t *testing.T) {
	reg := NewObjectRegistry()
	m1 := Meta{DAG: "dag1", Vertex: "v1"}
	m2 := Meta{DAG: "dag2", Vertex: "v9"}

	reg.Add(LifetimeDAG, m1, "dkey", 1)
	reg.Add(LifetimeSession, m1, "skey", 2)

	// Delete obeys Get's visibility: another DAG cannot evict a
	// DAG-scoped entry it cannot see.
	if _, ok := reg.Delete(m2, "dkey"); ok {
		t.Fatal("delete crossed DAG scope")
	}
	if v, ok := reg.Delete(m1, "dkey"); !ok || v != 1 {
		t.Fatalf("delete = %v %v", v, ok)
	}
	if _, ok := reg.Get(m1, "dkey"); ok {
		t.Fatal("entry survived delete")
	}
	// Session entries are visible — and deletable — from any scope: that
	// is the explicit-eviction path iterative drivers rely on, since no
	// framework sweep ever touches session lifetime.
	if v, ok := reg.Delete(m2, "skey"); !ok || v != 2 {
		t.Fatalf("session delete = %v %v", v, ok)
	}
	if _, ok := reg.Delete(m1, "skey"); ok {
		t.Fatal("double delete reported success")
	}
	if reg.Len() != 0 {
		t.Fatalf("Len = %d", reg.Len())
	}
}
