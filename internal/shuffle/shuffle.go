// Package shuffle implements the stand-in for the YARN Shuffle Service:
// per-node storage of partitioned task outputs plus the fetch path the
// built-in Tez inputs/outputs use to move intermediate data (§4.1).
//
// Like the real service it lives outside the orchestrator — Tez is not on
// the data plane; producers register partitioned output under their node,
// consumers fetch partitions by output id. The cost model charges per-byte
// transfer delays by topology distance (same node / same rack / cross
// rack), transient network errors can be injected and are retried with
// backoff by Fetcher, and node failure makes data unavailable, which is
// what drives the InputReadError → producer re-execution fault-tolerance
// path (§4.3).
package shuffle

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tez/internal/chaos"
	"tez/internal/security"
	"tez/internal/timeline"
)

// Errors reported by the service.
var (
	// ErrDataLost is fatal for the fetch: the output no longer exists
	// (never produced here, deleted, or its node died). The consumer must
	// report an input read error so the producer is re-executed.
	ErrDataLost = errors.New("shuffle: output data lost")
	// ErrTransient is a retryable network-style failure.
	ErrTransient = errors.New("shuffle: transient fetch error")
)

// Config is the transfer cost and fault-injection model.
type Config struct {
	// FetchBaseLatency is charged once per fetch.
	FetchBaseLatency time.Duration
	// DelayPerByteLocal/Rack/Remote charge per byte by topology distance.
	DelayPerByteLocal  time.Duration
	DelayPerByteRack   time.Duration
	DelayPerByteRemote time.Duration
	// TransientErrorRate in [0,1) injects retryable fetch failures.
	TransientErrorRate float64
	// Seed for the error-injection RNG. Zero means 1.
	Seed int64
	// FetchParallelism is the default number of parallel fetcher
	// goroutines each shuffle consumer runs (the per-reducer fetcher
	// thread pool of real Tez). Zero lets consumers fall back to their
	// own default; 1 forces serial fetching. Per-task overrides (e.g.
	// am.Config.ShuffleFetchParallelism) take precedence.
	FetchParallelism int
	// SortMB is the cluster-default map-side sort budget in MiB for
	// ordered shuffle outputs: when the sort buffer exceeds it, a sorted
	// run is spilled. Zero means unbounded (no spills). Per-task
	// overrides (am.Config.ShuffleSortMB) take precedence.
	SortMB int
	// MergeFactor is the cluster-default reduce-side merge width: when
	// more sorted runs than this arrive, early arrivals are pre-merged
	// while stragglers are still fetching. Zero lets consumers fall back
	// to the library default.
	MergeFactor int
	// Codec is the cluster-default wire block codec name for shuffle
	// partitions ("none", "flate", or any codec registered with the
	// library). Empty means "none": bytes cross the wire raw.
	Codec string
	// Pipelined is the cluster-default for pipelined shuffle publication:
	// ordered outputs register every sorted spill as it is produced
	// (spill-indexed ids, incremental DataMovement events) instead of
	// holding everything for Close. Per-edge overrides
	// (library.OrderedPartitionedConfig.Pipelined) take precedence.
	Pipelined bool
	// Chaos, when set, injects transient/permanent fetch faults and slow-
	// node transfer multipliers (nil means no injection). Unlike
	// TransientErrorRate's shared RNG, chaos decisions are deterministic
	// per fetch site.
	Chaos *chaos.Plane
	// Timeline, when set, receives a ShuffleFetch span per successful
	// fetch and a ShuffleFetchError per failed one (nil records nothing).
	Timeline *timeline.Journal
}

// OutputID names one task attempt's registered output. Name distinguishes
// the several logical outputs a task may have (one per out-edge); Spill
// distinguishes the increments of a pipelined output, which registers each
// sorted spill under its own id as it is produced (0 for the single
// registration of a non-pipelined output, so legacy ids are unchanged).
type OutputID struct {
	DAG     string
	Vertex  string
	Name    string
	Task    int
	Attempt int
	Spill   int
}

func (id OutputID) String() string {
	if id.Spill > 0 {
		return fmt.Sprintf("%s/%s/%s/t%03d_a%d_s%d", id.DAG, id.Vertex, id.Name, id.Task, id.Attempt, id.Spill)
	}
	return fmt.Sprintf("%s/%s/%s/t%03d_a%d", id.DAG, id.Vertex, id.Name, id.Task, id.Attempt)
}

type output struct {
	node       string
	partitions [][]byte
}

// Service is the cluster-wide shuffle registry.
type Service struct {
	cfg Config

	auth *security.Authority

	mu      sync.Mutex
	rng     *rand.Rand
	outputs map[OutputID]*output
	racks   map[string]string
	live    map[string]bool
	sleep   func(time.Duration)

	bytesFetched int64
	localFetches int64
	rackFetches  int64
	otherFetches int64
}

// New creates an empty shuffle service.
func New(cfg Config) *Service {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Service{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		outputs: make(map[OutputID]*output),
		racks:   make(map[string]string),
		live:    make(map[string]bool),
		sleep:   time.Sleep,
	}
}

// FetchParallelism returns the cluster-configured default fetcher-pool
// size per consumer (0 when unset).
func (s *Service) FetchParallelism() int { return s.cfg.FetchParallelism }

// SortMB returns the cluster-configured default map-side sort budget in
// MiB (0 when unset: unbounded).
func (s *Service) SortMB() int { return s.cfg.SortMB }

// MergeFactor returns the cluster-configured default reduce-side merge
// width (0 when unset).
func (s *Service) MergeFactor() int { return s.cfg.MergeFactor }

// Codec returns the cluster-configured default wire block codec name
// ("" when unset: none).
func (s *Service) Codec() string { return s.cfg.Codec }

// Pipelined returns the cluster-configured default for pipelined spill
// publication (false when unset: barrier mode).
func (s *Service) Pipelined() bool { return s.cfg.Pipelined }

// SpillFault asks the bound chaos plane whether a pipelined producer
// should die right after publishing the increment named by site. Nil-safe;
// false without a plane.
func (s *Service) SpillFault(site string) bool { return s.cfg.Chaos.SpillFault(site) }

// SetAuthority turns on token-based access control (§4.3): every
// registration and fetch must then present the live token of the DAG the
// output belongs to. In a secure cluster the shuffle service authenticates
// access to intermediate data; here the authority plays that role.
func (s *Service) SetAuthority(a *security.Authority) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.auth = a
}

// authorize verifies tok against the DAG scope when security is on.
func (s *Service) authorize(dag string, tok security.Token) error {
	s.mu.Lock()
	auth := s.auth
	s.mu.Unlock()
	if auth == nil {
		return nil
	}
	return auth.Verify(dag, tok)
}

// AddNode registers (or revives) a node's shuffle server.
func (s *Service) AddNode(node, rack string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.racks[node] = rack
	s.live[node] = true
}

// FailNode drops the node's shuffle server and all outputs stored there.
func (s *Service) FailNode(node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live[node] = false
	for id, o := range s.outputs {
		if o.node == node {
			delete(s.outputs, id)
		}
	}
}

// Register stores the partitioned output of a task attempt under node.
// Registering on a dead node fails (the zombie-task case). With an
// authority configured, the caller must present the DAG's live token.
func (s *Service) Register(node string, id OutputID, partitions [][]byte, tok ...security.Token) error {
	var t security.Token
	if len(tok) > 0 {
		t = tok[0]
	}
	if err := s.authorize(id.DAG, t); err != nil {
		return fmt.Errorf("shuffle: register %s: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.live[node] {
		return fmt.Errorf("shuffle: register on dead node %s: %w", node, ErrDataLost)
	}
	cp := make([][]byte, len(partitions))
	for i, p := range partitions {
		cp[i] = append([]byte(nil), p...)
	}
	s.outputs[id] = &output{node: node, partitions: cp}
	return nil
}

// Unregister removes one output (e.g. a failed attempt's).
func (s *Service) Unregister(id OutputID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.outputs, id)
}

// DeleteDAG removes all outputs of a DAG (teardown) and returns the count.
func (s *Service) DeleteDAG(dag string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id := range s.outputs {
		if id.DAG == dag {
			delete(s.outputs, id)
			n++
		}
	}
	return n
}

// Node returns the node an output lives on.
func (s *Service) Node(id OutputID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outputs[id]
	if !ok {
		return "", false
	}
	return o.node, true
}

// PartitionSizes reports the byte size of each partition of an output.
func (s *Service) PartitionSizes(id OutputID) ([]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outputs[id]
	if !ok {
		return nil, fmt.Errorf("shuffle: %s: %w", id, ErrDataLost)
	}
	out := make([]int64, len(o.partitions))
	for i, p := range o.partitions {
		out[i] = int64(len(p))
	}
	return out, nil
}

// Fetch returns partition p of output id, charging the transfer cost to
// readerNode's distance. It may fail with ErrTransient (injected) or
// ErrDataLost (missing output or dead node).
func (s *Service) Fetch(id OutputID, partition int, readerNode string, tok ...security.Token) ([]byte, error) {
	data, delay, err := s.FetchNoWait(id, partition, readerNode, tok...)
	if err != nil {
		return nil, err
	}
	if delay > 0 {
		s.sleep(delay)
	}
	return data, nil
}

// recordFetchErr journals one failed fetch (nil-safe).
func (s *Service) recordFetchErr(id OutputID, partition int, readerNode, node, class string) {
	s.cfg.Timeline.Record(timeline.Event{
		Type: timeline.ShuffleFetchError, DAG: id.DAG,
		Vertex: id.Vertex, Task: id.Task, Attempt: id.Attempt, Node: node,
		Info: fmt.Sprintf("%s %s p%d -> %s", class, id.Name, partition, readerNode),
	})
}

// FetchNoWait is Fetch with the transfer cost returned instead of slept —
// consumers doing many small fetches accumulate the owed delay and sleep
// in coarse chunks (sub-millisecond sleeps round up to the OS timer
// granularity, which would inflate the cost model by 10–30×).
func (s *Service) FetchNoWait(id OutputID, partition int, readerNode string, tok ...security.Token) ([]byte, time.Duration, error) {
	var t security.Token
	if len(tok) > 0 {
		t = tok[0]
	}
	if err := s.authorize(id.DAG, t); err != nil {
		return nil, 0, fmt.Errorf("shuffle: fetch %s: %w", id, err)
	}
	s.mu.Lock()
	o, ok := s.outputs[id]
	if !ok {
		s.mu.Unlock()
		s.recordFetchErr(id, partition, readerNode, "", "DATA_LOST")
		return nil, 0, fmt.Errorf("shuffle: %s p%d: %w", id, partition, ErrDataLost)
	}
	if !s.live[o.node] {
		node := o.node
		s.mu.Unlock()
		s.recordFetchErr(id, partition, readerNode, node, "NODE_DOWN")
		return nil, 0, fmt.Errorf("shuffle: %s node %s down: %w", id, node, ErrDataLost)
	}
	if partition < 0 || partition >= len(o.partitions) {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("shuffle: %s has no partition %d", id, partition)
	}
	if s.cfg.TransientErrorRate > 0 && s.rng.Float64() < s.cfg.TransientErrorRate {
		node := o.node
		s.mu.Unlock()
		s.recordFetchErr(id, partition, readerNode, node, "TRANSIENT")
		return nil, 0, fmt.Errorf("shuffle: %s p%d: %w", id, partition, ErrTransient)
	}
	if s.cfg.Chaos != nil {
		site := fmt.Sprintf("%s/p%d/%s", id, partition, readerNode)
		switch s.cfg.Chaos.FetchFault(site) {
		case chaos.FaultTransient:
			node := o.node
			s.mu.Unlock()
			s.recordFetchErr(id, partition, readerNode, node, "TRANSIENT_INJECTED")
			return nil, 0, fmt.Errorf("shuffle: %s p%d: injected: %w", id, partition, ErrTransient)
		case chaos.FaultDataLost:
			node := o.node
			s.mu.Unlock()
			s.recordFetchErr(id, partition, readerNode, node, "DATA_LOST_INJECTED")
			return nil, 0, fmt.Errorf("shuffle: %s p%d: injected: %w", id, partition, ErrDataLost)
		}
	}
	data := o.partitions[partition]
	var perByte time.Duration
	switch {
	case o.node == readerNode:
		perByte = s.cfg.DelayPerByteLocal
		s.localFetches++
	case s.racks[o.node] != "" && s.racks[o.node] == s.racks[readerNode]:
		perByte = s.cfg.DelayPerByteRack
		s.rackFetches++
	default:
		perByte = s.cfg.DelayPerByteRemote
		s.otherFetches++
	}
	s.bytesFetched += int64(len(data))
	delay := s.cfg.FetchBaseLatency + time.Duration(len(data))*perByte
	if f := s.cfg.Chaos.FetchDelayFactor(o.node); f > 1 {
		delay = time.Duration(float64(delay) * f)
	}
	node := o.node
	s.mu.Unlock()
	info := fmt.Sprintf("%s p%d -> %s", id.Name, partition, readerNode)
	if id.Spill > 0 {
		// Pipelined increments tag the spill index so trace tooling can
		// count increments per edge; spill 0 keeps the legacy format.
		info = fmt.Sprintf("%s p%d s%d -> %s", id.Name, partition, id.Spill, readerNode)
	}
	s.cfg.Timeline.Record(timeline.Event{
		Type: timeline.ShuffleFetch, DAG: id.DAG,
		Vertex: id.Vertex, Task: id.Task, Attempt: id.Attempt, Node: node,
		Info: info,
		Dur:  delay, Val: int64(len(data)),
	})
	return data, delay, nil
}

// Stats is a snapshot of fetch-path counters.
type Stats struct {
	BytesFetched int64
	LocalFetches int64
	RackFetches  int64
	OtherFetches int64
	Outputs      int
}

// Stats returns current counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		BytesFetched: s.bytesFetched,
		LocalFetches: s.localFetches,
		RackFetches:  s.rackFetches,
		OtherFetches: s.otherFetches,
		Outputs:      len(s.outputs),
	}
}

// Fetcher wraps Fetch with bounded retry and exponential backoff on
// transient errors — the "temporary network errors are retried with
// back-off before reporting an error event" behaviour of §4.3. A single
// Fetcher is safe for concurrent use by multiple goroutines (the parallel
// fetcher pool of a shuffle consumer shares one), and owed transfer delay
// accumulated by any goroutine is slept by whichever goroutine pushes it
// over the 1 ms threshold — concurrently with other fetchers' sleeps, so
// parallel transfers overlap like real parallel connections do.
type Fetcher struct {
	Service *Service
	// MaxRetries bounds retries of transient errors. Zero means "unset"
	// and defaults to 3 retries; a negative value means no retries at
	// all (the fetch fails on the first transient error); a positive
	// value retries exactly that many times (total attempts = retries+1).
	MaxRetries int
	Backoff    time.Duration // initial backoff, doubled per retry; default 1ms
	// MaxBackoff caps the exponential growth of the backoff ceiling;
	// default 250ms. The actual sleep before retry n is drawn uniformly
	// from [0, min(MaxBackoff, Backoff·2ⁿ)) — "full jitter", which
	// decorrelates the retry storms of many consumers hammering the same
	// recovering server.
	MaxBackoff time.Duration
	// Rand supplies the jitter draw in [0,1). Defaults to a private
	// seeded source; inject for deterministic tests. Called under the
	// Fetcher's lock, so a plain rand.Float64 closure is safe.
	Rand func() float64

	// Token authenticates fetches when the service has an authority.
	Token security.Token

	mu      sync.Mutex
	retries int64
	jrng    *rand.Rand
	// owed accumulates transfer delay until it is worth an OS sleep.
	owed time.Duration
}

// RetryCount returns the transient errors absorbed so far (observable in
// tests and metrics; safe to call concurrently).
func (f *Fetcher) RetryCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.retries
}

// retryBudget resolves the MaxRetries semantics: <0 none, 0 default, >0 n.
func (f *Fetcher) retryBudget() int {
	switch {
	case f.MaxRetries < 0:
		return 0
	case f.MaxRetries == 0:
		return 3
	default:
		return f.MaxRetries
	}
}

// Fetch retrieves one partition, retrying transient failures.
func (f *Fetcher) Fetch(id OutputID, partition int, readerNode string) ([]byte, error) {
	data, _, err := f.FetchCounted(id, partition, readerNode)
	return data, err
}

// FetchCounted is Fetch plus the number of transient retries this call
// absorbed (per-call, unlike the shared RetryCount total — useful when
// several goroutines share the Fetcher and want per-fetch metrics).
func (f *Fetcher) FetchCounted(id OutputID, partition int, readerNode string) ([]byte, int, error) {
	budget := f.retryBudget()
	ceiling := f.Backoff
	if ceiling <= 0 {
		ceiling = time.Millisecond
	}
	maxBackoff := f.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 250 * time.Millisecond
	}
	retried := 0
	var lastErr error
	for attempt := 0; attempt <= budget; attempt++ {
		data, delay, err := f.Service.FetchNoWait(id, partition, readerNode, f.Token)
		if err == nil {
			f.sleepOwed(delay)
			return data, retried, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTransient) {
			return nil, retried, err
		}
		if attempt == budget {
			break
		}
		retried++
		f.mu.Lock()
		f.retries++
		u := f.jitterLocked()
		f.mu.Unlock()
		if ceiling > maxBackoff {
			ceiling = maxBackoff
		}
		if sleep := time.Duration(u * float64(ceiling)); sleep > 0 {
			time.Sleep(sleep)
		}
		if ceiling < maxBackoff {
			ceiling *= 2
		}
	}
	return nil, retried, fmt.Errorf("shuffle: retries exhausted: %w", lastErr)
}

// jitterLocked draws the full-jitter fraction in [0,1). Caller holds f.mu.
func (f *Fetcher) jitterLocked() float64 {
	if f.Rand != nil {
		return f.Rand()
	}
	if f.jrng == nil {
		f.jrng = rand.New(rand.NewSource(1))
	}
	return f.jrng.Float64()
}

// sleepOwed adds delay to the shared owed accumulator and, once it is
// worth an OS timer, claims the whole balance and sleeps it outside the
// lock so concurrent fetchers' transfer costs overlap in wall time.
func (f *Fetcher) sleepOwed(delay time.Duration) {
	f.mu.Lock()
	f.owed += delay
	var due time.Duration
	if f.owed >= time.Millisecond {
		due, f.owed = f.owed, 0
	}
	f.mu.Unlock()
	if due > 0 {
		time.Sleep(due)
	}
}
