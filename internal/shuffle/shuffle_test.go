package shuffle

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func newService(nodes int) *Service {
	s := New(Config{})
	for i := 0; i < nodes; i++ {
		s.AddNode(fmt.Sprintf("n%d", i), fmt.Sprintf("r%d", i%2))
	}
	return s
}

func oid(task, attempt int) OutputID {
	return OutputID{DAG: "dag1", Vertex: "v1", Task: task, Attempt: attempt}
}

func TestRegisterFetchRoundTrip(t *testing.T) {
	s := newService(3)
	parts := [][]byte{[]byte("p0"), []byte("p1-data"), nil}
	if err := s.Register("n0", oid(0, 0), parts); err != nil {
		t.Fatal(err)
	}
	for i, want := range parts {
		got, err := s.Fetch(oid(0, 0), i, "n1")
		if err != nil {
			t.Fatalf("fetch p%d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("p%d = %q want %q", i, got, want)
		}
	}
	sizes, err := s.PartitionSizes(oid(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if sizes[0] != 2 || sizes[1] != 7 || sizes[2] != 0 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestFetchMissingIsDataLost(t *testing.T) {
	s := newService(2)
	if _, err := s.Fetch(oid(9, 0), 0, "n0"); !errors.Is(err, ErrDataLost) {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchBadPartition(t *testing.T) {
	s := newService(2)
	if err := s.Register("n0", oid(0, 0), [][]byte{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(oid(0, 0), 5, "n0"); err == nil {
		t.Fatal("fetch of out-of-range partition succeeded")
	}
}

func TestNodeFailureLosesOutputs(t *testing.T) {
	s := newService(3)
	if err := s.Register("n0", oid(0, 0), [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("n1", oid(1, 0), [][]byte{[]byte("y")}); err != nil {
		t.Fatal(err)
	}
	s.FailNode("n0")
	if _, err := s.Fetch(oid(0, 0), 0, "n2"); !errors.Is(err, ErrDataLost) {
		t.Fatalf("fetch from dead node: %v", err)
	}
	if _, err := s.Fetch(oid(1, 0), 0, "n2"); err != nil {
		t.Fatalf("unrelated output lost: %v", err)
	}
	if err := s.Register("n0", oid(2, 0), [][]byte{{1}}); !errors.Is(err, ErrDataLost) {
		t.Fatalf("register on dead node: %v", err)
	}
}

func TestDeleteDAG(t *testing.T) {
	s := newService(2)
	_ = s.Register("n0", OutputID{DAG: "a", Vertex: "v", Task: 0}, [][]byte{{1}})
	_ = s.Register("n0", OutputID{DAG: "a", Vertex: "v", Task: 1}, [][]byte{{1}})
	_ = s.Register("n0", OutputID{DAG: "b", Vertex: "v", Task: 0}, [][]byte{{1}})
	if n := s.DeleteDAG("a"); n != 2 {
		t.Fatalf("DeleteDAG = %d", n)
	}
	if s.Stats().Outputs != 1 {
		t.Fatalf("outputs left = %d", s.Stats().Outputs)
	}
}

func TestTopologyCounters(t *testing.T) {
	s := newService(4) // n0,n2 on r0; n1,n3 on r1
	_ = s.Register("n0", oid(0, 0), [][]byte{[]byte("data")})
	if _, err := s.Fetch(oid(0, 0), 0, "n0"); err != nil { // local
		t.Fatal(err)
	}
	if _, err := s.Fetch(oid(0, 0), 0, "n2"); err != nil { // same rack
		t.Fatal(err)
	}
	if _, err := s.Fetch(oid(0, 0), 0, "n1"); err != nil { // cross rack
		t.Fatal(err)
	}
	st := s.Stats()
	if st.LocalFetches != 1 || st.RackFetches != 1 || st.OtherFetches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesFetched != 12 {
		t.Fatalf("bytes = %d", st.BytesFetched)
	}
}

func TestRegisterCopiesData(t *testing.T) {
	s := newService(1)
	buf := []byte("orig")
	_ = s.Register("n0", oid(0, 0), [][]byte{buf})
	buf[0] = 'X'
	got, _ := s.Fetch(oid(0, 0), 0, "n0")
	if string(got) != "orig" {
		t.Fatalf("registered data aliased caller buffer: %q", got)
	}
}

func TestFetcherRetriesTransient(t *testing.T) {
	s := New(Config{TransientErrorRate: 0.5, Seed: 42})
	s.AddNode("n0", "r0")
	_ = s.Register("n0", oid(0, 0), [][]byte{[]byte("x")})
	f := &Fetcher{Service: s, MaxRetries: 50, Backoff: 1}
	got, err := f.Fetch(oid(0, 0), 0, "n0")
	if err != nil {
		t.Fatalf("fetch with retries: %v", err)
	}
	if string(got) != "x" {
		t.Fatalf("got %q", got)
	}
	// With a 50% error rate and 200 fetches, some retries must occur.
	for i := 0; i < 200; i++ {
		if _, err := f.Fetch(oid(0, 0), 0, "n0"); err != nil {
			t.Fatal(err)
		}
	}
	if f.RetryCount() == 0 {
		t.Fatal("expected transient retries")
	}
}

func TestFetcherFatalIsNotRetried(t *testing.T) {
	s := newService(1)
	f := &Fetcher{Service: s, MaxRetries: 3, Backoff: 1}
	if _, err := f.Fetch(oid(0, 0), 0, "n0"); !errors.Is(err, ErrDataLost) {
		t.Fatalf("err = %v", err)
	}
	if f.RetryCount() != 0 {
		t.Fatal("fatal error was retried")
	}
}

func TestFetcherNoRetriesWhenNegative(t *testing.T) {
	// Every fetch fails transiently; a negative MaxRetries must fail on
	// the first attempt with no retries recorded.
	s := New(Config{TransientErrorRate: 1, Seed: 1})
	s.AddNode("n0", "r0")
	_ = s.Register("n0", oid(0, 0), [][]byte{[]byte("x")})
	f := &Fetcher{Service: s, MaxRetries: -1, Backoff: 1}
	if _, err := f.Fetch(oid(0, 0), 0, "n0"); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if f.RetryCount() != 0 {
		t.Fatalf("retries = %d, want 0", f.RetryCount())
	}
}

func TestFetcherUnsetRetriesDefaultsToThree(t *testing.T) {
	s := New(Config{TransientErrorRate: 1, Seed: 1})
	s.AddNode("n0", "r0")
	_ = s.Register("n0", oid(0, 0), [][]byte{[]byte("x")})
	f := &Fetcher{Service: s, Backoff: 1} // MaxRetries unset
	if _, err := f.Fetch(oid(0, 0), 0, "n0"); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if f.RetryCount() != 3 {
		t.Fatalf("retries = %d, want 3", f.RetryCount())
	}
}

func TestFetcherExactRetryBudget(t *testing.T) {
	s := New(Config{TransientErrorRate: 1, Seed: 1})
	s.AddNode("n0", "r0")
	_ = s.Register("n0", oid(0, 0), [][]byte{[]byte("x")})
	f := &Fetcher{Service: s, MaxRetries: 7, Backoff: 1}
	_, retried, err := f.FetchCounted(oid(0, 0), 0, "n0")
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if retried != 7 || f.RetryCount() != 7 {
		t.Fatalf("retried = %d total = %d, want 7", retried, f.RetryCount())
	}
}

func TestFetcherConcurrentUse(t *testing.T) {
	s := New(Config{TransientErrorRate: 0.3, Seed: 7})
	s.AddNode("n0", "r0")
	s.AddNode("n1", "r0")
	_ = s.Register("n0", oid(0, 0), [][]byte{[]byte("shared")})
	f := &Fetcher{Service: s, MaxRetries: 50, Backoff: 1}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				got, err := f.Fetch(oid(0, 0), 0, "n1")
				if err != nil {
					errs <- err
					return
				}
				if string(got) != "shared" {
					errs <- fmt.Errorf("got %q", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestAttemptIsolation(t *testing.T) {
	s := newService(2)
	_ = s.Register("n0", oid(0, 0), [][]byte{[]byte("attempt0")})
	_ = s.Register("n1", oid(0, 1), [][]byte{[]byte("attempt1")})
	g0, _ := s.Fetch(oid(0, 0), 0, "n0")
	g1, _ := s.Fetch(oid(0, 1), 0, "n0")
	if string(g0) != "attempt0" || string(g1) != "attempt1" {
		t.Fatalf("attempts collided: %q %q", g0, g1)
	}
	s.Unregister(oid(0, 0))
	if _, err := s.Fetch(oid(0, 0), 0, "n0"); !errors.Is(err, ErrDataLost) {
		t.Fatal("unregistered output still fetchable")
	}
}

// Property: fetch returns exactly what was registered for every partition.
func TestQuickRegisterFetch(t *testing.T) {
	f := func(parts [][]byte) bool {
		s := newService(3)
		if err := s.Register("n0", oid(0, 0), parts); err != nil {
			return false
		}
		for i, want := range parts {
			got, err := s.Fetch(oid(0, 0), i, "n1")
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		sizes, err := s.PartitionSizes(oid(0, 0))
		if err != nil || len(sizes) != len(parts) {
			return false
		}
		for i := range parts {
			if sizes[i] != int64(len(parts[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
