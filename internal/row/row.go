// Package row is the tuple data model shared by the Hive- and Pig-style
// engines built on Tez in this repository. Tez itself is data-format
// agnostic (§3.2); rows only ever flow through the engines' own
// processors, inputs and outputs.
package row

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind is a value type.
type Kind byte

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return "null"
	}
}

// Value is a dynamically typed scalar.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
}

// Convenience constructors.
func Null() Value           { return Value{Kind: KindNull} }
func Int(v int64) Value     { return Value{Kind: KindInt, Int: v} }
func Float(v float64) Value { return Value{Kind: KindFloat, Float: v} }
func String(v string) Value { return Value{Kind: KindString, Str: v} }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat coerces numerics to float64.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.Int)
	case KindFloat:
		return v.Float
	}
	return 0
}

// AsInt coerces numerics to int64.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.Int
	case KindFloat:
		return int64(v.Float)
	}
	return 0
}

func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return v.Str
	default:
		return "NULL"
	}
}

// Compare orders values: null < int/float (numeric order) < string.
func Compare(a, b Value) int {
	ra, rb := rank(a.Kind), rank(b.Kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(a.Str, b.Str)
	default:
		fa, fb := a.AsFloat(), b.AsFloat()
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.Int < b.Int:
				return -1
			case a.Int > b.Int:
				return 1
			}
			return 0
		}
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	}
}

func rank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

// Equal reports value equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Row is a tuple.
type Row []Value

// Clone deep-copies a row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Col describes one column.
type Col struct {
	Name string
	Kind Kind
}

// Schema is an ordered column list.
type Schema struct {
	Cols []Col
}

// NewSchema builds a schema from "name:kind" specs (kind one of
// int/float/string).
func NewSchema(specs ...string) Schema {
	var s Schema
	for _, spec := range specs {
		parts := strings.SplitN(spec, ":", 2)
		kind := KindString
		if len(parts) == 2 {
			switch parts[1] {
			case "int":
				kind = KindInt
			case "float":
				kind = KindFloat
			}
		}
		s.Cols = append(s.Cols, Col{Name: parts[0], Kind: kind})
	}
	return s
}

// Index returns the position of a column by name (or -1). Qualified names
// ("t.col") match on the suffix.
func (s Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	for i, c := range s.Cols {
		if strings.HasSuffix(c.Name, "."+name) {
			return i
		}
	}
	return -1
}

// Width is the number of columns.
func (s Schema) Width() int { return len(s.Cols) }

// Concat appends another schema's columns.
func (s Schema) Concat(o Schema) Schema {
	out := Schema{Cols: append([]Col{}, s.Cols...)}
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// Qualify prefixes every column with "alias.".
func (s Schema) Qualify(alias string) Schema {
	out := Schema{Cols: make([]Col, len(s.Cols))}
	for i, c := range s.Cols {
		base := c.Name
		if idx := strings.LastIndexByte(base, '.'); idx >= 0 {
			base = base[idx+1:]
		}
		out.Cols[i] = Col{Name: alias + "." + base, Kind: c.Kind}
	}
	return out
}

// Encode appends a compact binary encoding of the row to dst.
func Encode(dst []byte, r Row) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(r)))
	dst = append(dst, tmp[:n]...)
	for _, v := range r {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case KindInt:
			n := binary.PutVarint(tmp[:], v.Int)
			dst = append(dst, tmp[:n]...)
		case KindFloat:
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Float))
			dst = append(dst, b[:]...)
		case KindString:
			n := binary.PutUvarint(tmp[:], uint64(len(v.Str)))
			dst = append(dst, tmp[:n]...)
			dst = append(dst, v.Str...)
		}
	}
	return dst
}

// Decode parses one row from buf.
func Decode(buf []byte) (Row, error) {
	cols, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("row: corrupt header")
	}
	pos := n
	r := make(Row, cols)
	for i := range r {
		if pos >= len(buf) {
			return nil, fmt.Errorf("row: truncated at col %d", i)
		}
		kind := Kind(buf[pos])
		pos++
		switch kind {
		case KindNull:
			r[i] = Null()
		case KindInt:
			v, n := binary.Varint(buf[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("row: corrupt int at col %d", i)
			}
			pos += n
			r[i] = Int(v)
		case KindFloat:
			if pos+8 > len(buf) {
				return nil, fmt.Errorf("row: truncated float at col %d", i)
			}
			r[i] = Float(math.Float64frombits(binary.BigEndian.Uint64(buf[pos:])))
			pos += 8
		case KindString:
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("row: corrupt string at col %d", i)
			}
			pos += n
			if pos+int(l) > len(buf) {
				return nil, fmt.Errorf("row: truncated string at col %d", i)
			}
			r[i] = String(string(buf[pos : pos+int(l)]))
			pos += int(l)
		}
	}
	return r, nil
}

// EncodeKey appends an order-preserving encoding of the values: byte-wise
// comparison of two encoded keys matches lexicographic Compare order of
// the value tuples. Used wherever keys are sorted by the shuffle (group
// keys, sort keys, range partitioning).
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		switch v.Kind {
		case KindNull:
			dst = append(dst, 0x00)
		case KindInt, KindFloat:
			dst = append(dst, 0x01)
			bits := math.Float64bits(v.AsFloat())
			// Flip for total order: negative floats reverse.
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits |= 1 << 63
			}
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], bits)
			dst = append(dst, b[:]...)
		case KindString:
			dst = append(dst, 0x02)
			// Escape 0x00 so the terminator is unambiguous.
			for i := 0; i < len(v.Str); i++ {
				c := v.Str[i]
				if c == 0x00 {
					dst = append(dst, 0x00, 0xFF)
				} else {
					dst = append(dst, c)
				}
			}
			dst = append(dst, 0x00, 0x00)
		}
	}
	return dst
}

// DescendingKey inverts an encoded key byte-wise for DESC ordering.
func DescendingKey(key []byte) []byte {
	out := make([]byte, len(key))
	for i, b := range key {
		out[i] = ^b
	}
	return out
}
