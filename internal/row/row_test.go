package row

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Null(), Int(0), -1},
		{String("a"), String("b"), -1},
		{Int(5), String("a"), -1}, // numbers sort before strings
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Fatalf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	r := Row{Int(-42), Float(3.14), String("hello"), Null(), String("")}
	buf := Encode(nil, r)
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(r) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range r {
		if !Equal(got[i], r[i]) || got[i].Kind != r[i].Kind {
			t.Fatalf("col %d: %v != %v", i, got[i], r[i])
		}
	}
}

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return Null()
	case 1:
		return Int(rng.Int63n(1<<40) - (1 << 39))
	case 2:
		return Float((rng.Float64() - 0.5) * 1e6)
	default:
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return String(string(b))
	}
}

// Property: codec round-trips arbitrary rows.
func TestQuickRowCodec(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := make(Row, int(width)%10)
		for i := range r {
			r[i] = randomValue(rng)
		}
		got, err := Decode(Encode(nil, r))
		if err != nil || len(got) != len(r) {
			return false
		}
		for i := range r {
			if got[i].Kind != r[i].Kind || Compare(got[i], r[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: EncodeKey is order-preserving — bytes.Compare of encodings
// agrees with tuple comparison.
func TestQuickEncodeKeyOrderPreserving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Row{randomValue(rng), randomValue(rng)}
		b := Row{randomValue(rng), randomValue(rng)}
		ka := EncodeKey(nil, a...)
		kb := EncodeKey(nil, b...)
		want := 0
		for i := range a {
			if c := Compare(a[i], b[i]); c != 0 {
				want = c
				break
			}
		}
		got := bytes.Compare(ka, kb)
		if want == 0 {
			// Equal tuples must encode identically (group keys!).
			return got == 0
		}
		return sign(got) == sign(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestEncodeKeySortsNumerically(t *testing.T) {
	vals := []Value{Int(100), Int(-5), Float(2.5), Int(0), Float(-1e9), Int(99)}
	type pair struct {
		v Value
		k []byte
	}
	pairs := make([]pair, len(vals))
	for i, v := range vals {
		pairs[i] = pair{v, EncodeKey(nil, v)}
	}
	sort.Slice(pairs, func(i, j int) bool {
		return bytes.Compare(pairs[i].k, pairs[j].k) < 0
	})
	for i := range pairs {
		vals[i] = pairs[i].v
	}
	// After sorting by key bytes, values must be numerically ascending.
	for i := 1; i < len(vals); i++ {
		if Compare(vals[i-1], vals[i]) > 0 {
			t.Fatalf("order broken at %d: %v", i, vals)
		}
	}
}

func TestDescendingKeyReversesOrder(t *testing.T) {
	a := EncodeKey(nil, Int(1))
	b := EncodeKey(nil, Int(2))
	if !(bytes.Compare(a, b) < 0) {
		t.Fatal("precondition")
	}
	if !(bytes.Compare(DescendingKey(a), DescendingKey(b)) > 0) {
		t.Fatal("descending key did not reverse order")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := NewSchema("a:int", "b:float", "c")
	if s.Width() != 3 {
		t.Fatal("width")
	}
	if s.Cols[0].Kind != KindInt || s.Cols[1].Kind != KindFloat || s.Cols[2].Kind != KindString {
		t.Fatalf("kinds = %+v", s.Cols)
	}
	q := s.Qualify("t")
	if q.Cols[0].Name != "t.a" {
		t.Fatalf("qualify = %v", q.Cols[0].Name)
	}
	if q.Index("a") != 0 || q.Index("t.b") != 1 || q.Index("zz") != -1 {
		t.Fatal("index lookup")
	}
	cat := s.Concat(q)
	if cat.Width() != 6 || cat.Cols[3].Name != "t.a" {
		t.Fatal("concat")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	r := Row{String("hello"), Int(12)}
	buf := Encode(nil, r)
	if _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated row decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer decoded")
	}
}
