package graph

import (
	"fmt"
	"math"
	"os"
	goruntime "runtime"
	"sort"
	"testing"
	"time"

	"tez/internal/am"
	"tez/internal/platform"
	"tez/internal/timeline"
)

func loadFixture(t *testing.T, name string) *Graph {
	t.Helper()
	data, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseEdgeList(data)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newHarness builds a 4-node platform and a warm session: idle release is
// stretched past the driver's between-superstep bookkeeping so containers
// (and their registries) survive from one superstep DAG to the next.
func newHarness(t *testing.T) (*platform.Platform, *am.Session) {
	t.Helper()
	plat := platform.New(platform.Fast(4))
	t.Cleanup(plat.Stop)
	sess := am.NewSession(plat, am.Config{Name: "graphtest", ContainerIdleRelease: 2 * time.Second})
	t.Cleanup(sess.Close)
	return plat, sess
}

func TestParseEdgeListFixture(t *testing.T) {
	g := loadFixture(t, "weighted.txt")
	if got := g.NumVertices(); got != 8 {
		t.Fatalf("vertices = %d, want 8", got)
	}
	if got := g.NumEdges(); got != 10 {
		t.Fatalf("edges = %d, want 10", got)
	}
	es := g.Edges(0)
	if len(es) != 2 || es[0].To != 1 || es[0].Weight != 2.0 || es[1].To != 2 {
		t.Fatalf("edges(0) = %v", es)
	}
	if len(g.Edges(7)) != 0 {
		t.Fatalf("vertex 7 should be isolated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(500, 4, 11), Generate(500, 4, 11)
	if a.NumVertices() != 500 || a.NumEdges() != b.NumEdges() {
		t.Fatalf("generate mismatch: %d/%d vs %d/%d",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for _, id := range a.VertexIDs() {
		ae, be := a.Edges(id), b.Edges(id)
		if len(ae) != len(be) {
			t.Fatalf("vertex %d: %d vs %d edges", id, len(ae), len(be))
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("vertex %d edge %d differs", id, i)
			}
		}
	}
	if c := Generate(500, 4, 12); c.NumEdges() == a.NumEdges() {
		// Different seeds overwhelmingly produce different chord sets; edge
		// count collision alone is possible but adjacency equality is not
		// worth asserting against — just sanity-check the graph is connected
		// ring + chords sized plausibly.
		t.Logf("seeds 11 and 12 coincide in edge count (%d)", c.NumEdges())
	}
}

// refComponents labels every vertex with the minimum id reachable over the
// (directed) fixture edges treated as given — the fixture is symmetric, so
// this is the connected-component minimum.
func refComponents(g *Graph) map[int64]float64 {
	labels := map[int64]float64{}
	for _, id := range g.VertexIDs() {
		labels[id] = float64(id)
	}
	for changed := true; changed; {
		changed = false
		for _, id := range g.VertexIDs() {
			for _, e := range g.Edges(id) {
				if labels[id] < labels[e.To] {
					labels[e.To] = labels[id]
					changed = true
				}
			}
		}
	}
	return labels
}

func TestConnectedComponents(t *testing.T) {
	plat, sess := newHarness(t)
	g := loadFixture(t, "components.txt")
	res, err := Run(sess, plat, Job{Name: "cc", Program: CCProgram, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("cc did not converge in %d supersteps", res.Supersteps)
	}
	want := refComponents(g)
	if len(res.Values) != len(want) {
		t.Fatalf("got %d labels, want %d", len(res.Values), len(want))
	}
	for id, w := range want {
		if res.Values[id] != w {
			t.Errorf("vertex %d: label %v, want %v", id, res.Values[id], w)
		}
	}
}

// refSSSP is textbook Dijkstra. Distance arithmetic accumulates along the
// shortest path in the same order the BSP relaxation does, so equality is
// exact, not approximate.
func refSSSP(g *Graph, source int64) map[int64]float64 {
	dist := map[int64]float64{}
	for _, id := range g.VertexIDs() {
		dist[id] = math.Inf(1)
	}
	dist[source] = 0
	done := map[int64]bool{}
	for {
		u, best := int64(-1), math.Inf(1)
		for _, id := range g.VertexIDs() {
			if !done[id] && dist[id] < best {
				u, best = id, dist[id]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		for _, e := range g.Edges(u) {
			if d := dist[u] + e.Weight; d < dist[e.To] {
				dist[e.To] = d
			}
		}
	}
}

func TestSSSP(t *testing.T) {
	plat, sess := newHarness(t)
	g := loadFixture(t, "weighted.txt")
	res, err := Run(sess, plat, Job{
		Name: "sssp", Program: SSSPProgram, Graph: g,
		ProgramConfig: SSSPConfig{Source: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sssp did not converge in %d supersteps", res.Supersteps)
	}
	want := refSSSP(g, 0)
	for id, w := range want {
		got := res.Values[id]
		if got != w && !(math.IsInf(got, 1) && math.IsInf(w, 1)) {
			t.Errorf("vertex %d: dist %v, want %v", id, got, w)
		}
	}
	if !math.IsInf(res.Values[7], 1) {
		t.Errorf("isolated vertex 7 should be unreachable, got %v", res.Values[7])
	}
}

// serialPageRank mirrors the program's superstep semantics (including the
// one-superstep dangling-mass lag) in-process for the given step count.
func serialPageRank(g *Graph, damping float64, steps int) map[int64]float64 {
	n := float64(g.NumVertices())
	val := map[int64]float64{}
	for _, id := range g.VertexIDs() {
		val[id] = 1 / n
	}
	inbox := map[int64]float64{}
	danglingPrev := 0.0
	for s := 0; s < steps; s++ {
		nextInbox := map[int64]float64{}
		dangling := 0.0
		for _, id := range g.VertexIDs() {
			v := val[id]
			if s > 0 {
				v = (1-damping)/n + damping*(inbox[id]+danglingPrev/n)
				val[id] = v
			}
			es := g.Edges(id)
			if len(es) == 0 {
				dangling += v
				continue
			}
			share := v / float64(len(es))
			for _, e := range es {
				nextInbox[e.To] += share
			}
		}
		inbox, danglingPrev = nextInbox, dangling
	}
	return val
}

func TestPageRank(t *testing.T) {
	plat, sess := newHarness(t)
	g := Generate(200, 4, 3)
	res, err := Run(sess, plat, Job{
		Name: "pr", Program: PageRankProgram, Graph: g,
		ProgramConfig: PageRankConfig{Damping: 0.85, Epsilon: 1e-10},
		MaxSupersteps: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("pagerank did not converge in %d supersteps (delta=%v)",
			res.Supersteps, res.Aggregates[aggPRDelta])
	}
	if res.Supersteps >= 60 {
		t.Fatalf("convergence did not stop the loop early (%d supersteps)", res.Supersteps)
	}
	want := serialPageRank(g, 0.85, res.Supersteps)
	var sum float64
	for id, w := range want {
		got := res.Values[id]
		if math.Abs(got-w) > 1e-9 {
			t.Errorf("vertex %d: rank %v, serial reference %v", id, got, w)
		}
		sum += got
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v, want ~1", sum)
	}
}

// TestConvergenceStopsEarly: CC on a short path graph must finish in about
// diameter supersteps, far under the budget, with no empty trailing
// superstep beyond the one that detects quiescence.
func TestConvergenceStopsEarly(t *testing.T) {
	plat, sess := newHarness(t)
	g := NewGraph()
	for i := int64(0); i < 6; i++ {
		if i > 0 {
			if err := g.AddUndirectedEdge(i-1, i, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := Run(sess, plat, Job{Name: "path", Program: CCProgram, Graph: g, MaxSupersteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("path graph CC did not converge")
	}
	if res.Supersteps > 10 {
		t.Fatalf("CC on a 6-path took %d supersteps", res.Supersteps)
	}
	last := res.Stats[len(res.Stats)-1]
	if last.Sent != 0 || last.Halted != g.NumVertices() {
		t.Fatalf("final superstep not quiescent: %+v", last)
	}
	for id := int64(0); id < 6; id++ {
		if res.Values[id] != 0 {
			t.Fatalf("vertex %d label %v, want 0", id, res.Values[id])
		}
	}
}

// TestRegistryCachingAcrossSupersteps: superstep 0 must cold-load every
// partition; with container reuse later supersteps must hit the registry,
// and the ablation knob must force cold loads throughout.
func TestRegistryCachingAcrossSupersteps(t *testing.T) {
	plat, sess := newHarness(t)
	g := Generate(300, 4, 5)
	job := Job{
		Name: "reg", Program: PageRankProgram, Graph: g,
		ProgramConfig: PageRankConfig{Epsilon: -1}, // fixed-length run
		MaxSupersteps: 6, Partitions: 4,
		Timeline: timeline.New(),
	}
	res, err := Run(sess, plat, job)
	if err != nil {
		t.Fatal(err)
	}
	s0 := res.Stats[0]
	if s0.RegistryHits != 0 || s0.ColdLoads != int64(job.Partitions) {
		t.Fatalf("superstep 0: hits=%d cold=%d, want 0/%d", s0.RegistryHits, s0.ColdLoads, job.Partitions)
	}
	var hits, cold int64
	for _, s := range res.Stats[1:] {
		hits += s.RegistryHits
		cold += s.ColdLoads
	}
	if hits == 0 {
		t.Fatalf("no registry hits after superstep 0 (cold=%d) — container reuse broken?", cold)
	}
	if hits < cold {
		t.Logf("warning: cold loads (%d) outnumber registry hits (%d)", cold, hits)
	}
	spans := 0
	for _, ev := range job.Timeline.Events() {
		if ev.Type == timeline.GraphSuperstep {
			spans++
		}
	}
	if spans != res.Supersteps {
		t.Fatalf("timeline spans = %d, want %d", spans, res.Supersteps)
	}

	job.Name = "reg-cold"
	job.Timeline = nil
	job.DisableRegistryCache = true
	resCold, err := Run(sess, plat, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range resCold.Stats {
		if s.RegistryHits != 0 {
			t.Fatalf("superstep %d hit the registry with caching disabled", s.Superstep)
		}
		if s.ColdLoads != int64(job.Partitions) {
			t.Fatalf("superstep %d cold loads = %d, want %d", s.Superstep, s.ColdLoads, job.Partitions)
		}
	}
	// Same computation either way.
	if string(res.CanonicalBytes()) != string(resCold.CanonicalBytes()) {
		t.Fatal("cached and cold runs disagree on final ranks")
	}
}

// TestDriverShutdownNoGoroutineLeak: after the job, session close and
// platform stop, the process must return to its pre-run goroutine count.
func TestDriverShutdownNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("goroutine-leak check skipped in -short")
	}
	before := goruntime.NumGoroutine()
	plat := platform.New(platform.Fast(4))
	sess := am.NewSession(plat, am.Config{Name: "leak", ContainerIdleRelease: 2 * time.Second})
	g := loadFixture(t, "components.txt")
	if _, err := Run(sess, plat, Job{Name: "leak", Program: CCProgram, Graph: g}); err != nil {
		sess.Close()
		plat.Stop()
		t.Fatal(err)
	}
	sess.Close()
	plat.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := goruntime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, goruntime.NumGoroutine(), buf[:goruntime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobValidation exercises the driver's argument checks.
func TestJobValidation(t *testing.T) {
	plat, sess := newHarness(t)
	if _, err := Run(sess, plat, Job{Name: "x", Program: CCProgram}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := NewGraph()
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sess, plat, Job{Name: "x", Program: "graph.nosuch", Graph: g}); err == nil {
		t.Fatal("unregistered program accepted")
	}
	if _, err := Run(sess, plat, Job{Program: CCProgram, Graph: g}); err == nil {
		t.Fatal("unnamed job accepted")
	}
}

func sortedIDs(m map[int64]float64) []int64 {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestCanonicalBytes: ascending ids, 16 bytes per vertex, order-insensitive
// construction.
func TestCanonicalBytes(t *testing.T) {
	r := &Result{Values: map[int64]float64{3: 0.5, 1: 0.25, 2: 0.25}}
	b := r.CanonicalBytes()
	if len(b) != 48 {
		t.Fatalf("canonical bytes = %d, want 48", len(b))
	}
	ids := sortedIDs(r.Values)
	if fmt.Sprint(ids) != "[1 2 3]" {
		t.Fatalf("ids = %v", ids)
	}
}
