package graph

import (
	"fmt"
	"math"
	"sort"
)

// GraphInfo is the static topology summary every compute call can see.
type GraphInfo struct {
	NumVertices int64
	NumEdges    int64
}

// Vertex is the runtime view of one vertex handed to Program.Compute.
// Value may be mutated; Edges is the static out-adjacency and must not be.
type Vertex struct {
	ID    int64
	Value float64
	Edges []Edge
}

// Combiner names the typed message pre-aggregator of a program. It is
// applied twice: map-side through the shuffle's RegisterCombineFunc hook
// (cutting what crosses the wire) and again at the inbox when folding a
// key's surviving values into the single message the next superstep reads.
type Combiner int

const (
	// CombineNone delivers every message individually.
	CombineNone Combiner = iota
	// CombineSum folds messages by addition (PageRank contributions).
	CombineSum
	// CombineMin keeps the minimum (SSSP distances, CC labels).
	CombineMin
	// CombineMax keeps the maximum.
	CombineMax
)

// FuncName returns the registered library combine-func name, or "" for
// CombineNone.
func (c Combiner) FuncName() string {
	switch c {
	case CombineSum:
		return "graph.combine.sum"
	case CombineMin:
		return "graph.combine.min"
	case CombineMax:
		return "graph.combine.max"
	default:
		return ""
	}
}

// fold returns the binary fold of the combiner, or nil for CombineNone.
func (c Combiner) fold() func(a, b float64) float64 {
	switch c {
	case CombineSum:
		return func(a, b float64) float64 { return a + b }
	case CombineMin:
		return math.Min
	case CombineMax:
		return math.Max
	default:
		return nil
	}
}

// AggKind is how a global aggregator folds per-task partials.
type AggKind int

const (
	// AggSum adds partials.
	AggSum AggKind = iota
	// AggMin keeps the minimum partial.
	AggMin
	// AggMax keeps the maximum partial.
	AggMax
)

func (k AggKind) fold() func(a, b float64) float64 {
	switch k {
	case AggMin:
		return math.Min
	case AggMax:
		return math.Max
	default:
		return func(a, b float64) float64 { return a + b }
	}
}

// AggSpec declares one named global aggregator of a program.
type AggSpec struct {
	Name string
	Kind AggKind
}

// Built-in aggregators the engine always maintains; the driver's halt
// protocol reads them. Programs must not aggregate under these names.
const (
	// AggActive counts vertices whose Compute ran this superstep.
	AggActive = "graph.active"
	// AggSent counts messages sent this superstep (pre-combine).
	AggSent = "graph.sent"
	// AggHalted counts vertices halted at the end of this superstep.
	AggHalted = "graph.halted"
)

// Program is the Pregel vertex-program contract (Malewicz et al., via the
// GraphX/Pregelix "thin layer over a dataflow engine" reading): the engine
// calls Compute on every active vertex each superstep, messages sent in
// superstep S arrive at superstep S+1, and the computation ends when every
// vertex has voted to halt and no messages are in flight.
type Program interface {
	// InitialValue seeds id's value before superstep 0.
	InitialValue(id int64, info GraphInfo) float64
	// Compute processes one active vertex: read msgs (delivered from the
	// previous superstep, post-combine), mutate v.Value, send messages and
	// aggregate through c, optionally vote to halt.
	Compute(c *ComputeContext, v *Vertex, msgs []float64) error
	// Combiner declares how messages to the same vertex are merged.
	Combiner() Combiner
}

// Configurable programs receive the job's encoded ProgramConfig before any
// other call (both driver-side and inside each task).
type Configurable interface {
	Configure(payload []byte) error
}

// Aggregating programs declare custom global aggregators; their folded
// values from superstep S are readable via ComputeContext.Agg at S+1.
type Aggregating interface {
	Aggregators() []AggSpec
}

// Converger programs terminate the loop early: the driver calls Converged
// after folding superstep's aggregators, and stops scheduling further
// supersteps when it reports true. (Vote-to-halt termination — all halted,
// nothing sent — applies regardless.)
type Converger interface {
	Converged(superstep int, agg map[string]float64) bool
}

// ComputeContext is the per-superstep API surface of Compute.
type ComputeContext struct {
	superstep int
	info      GraphInfo
	agg       map[string]float64 // folded globals of the previous superstep
	kinds     map[string]AggKind
	partial   map[string]float64 // this task's aggregator partials
	send      func(dst int64, val float64) error
	sent      int64
	halt      bool
	err       error
}

// Superstep returns the current superstep number (0-based).
func (c *ComputeContext) Superstep() int { return c.superstep }

// NumVertices returns the graph's vertex count.
func (c *ComputeContext) NumVertices() int64 { return c.info.NumVertices }

// NumEdges returns the graph's directed edge count.
func (c *ComputeContext) NumEdges() int64 { return c.info.NumEdges }

// Agg returns the named aggregator's folded global value from the previous
// superstep (0 when it was not aggregated).
func (c *ComputeContext) Agg(name string) float64 { return c.agg[name] }

// Aggregate folds v into the named aggregator (declared via Aggregators).
func (c *ComputeContext) Aggregate(name string, v float64) {
	kind, ok := c.kinds[name]
	if !ok {
		if c.err == nil {
			c.err = fmt.Errorf("graph: aggregate to undeclared aggregator %q", name)
		}
		return
	}
	if cur, ok := c.partial[name]; ok {
		c.partial[name] = kind.fold()(cur, v)
	} else {
		c.partial[name] = v
	}
}

// Send delivers val to vertex dst at the next superstep.
func (c *ComputeContext) Send(dst int64, val float64) {
	if err := c.send(dst, val); err != nil && c.err == nil {
		c.err = err
	}
	c.sent++
}

// VoteToHalt marks this vertex inactive; it is reawakened by any incoming
// message.
func (c *ComputeContext) VoteToHalt() { c.halt = true }

// sortedPartials returns this task's aggregator partials in name order
// (deterministic sink bytes).
func (c *ComputeContext) sortedPartials() []AggSpec {
	names := make([]string, 0, len(c.partial))
	for n := range c.partial {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]AggSpec, len(names))
	for i, n := range names {
		out[i] = AggSpec{Name: n, Kind: c.kinds[n]}
	}
	return out
}

// Program registry: programs run inside tasks, so (like combine funcs and
// processors) they are referenced by registered name in DAG payloads.
var programs = map[string]func() Program{}

// RegisterProgram installs a program factory under name.
func RegisterProgram(name string, factory func() Program) {
	if _, dup := programs[name]; dup {
		panic(fmt.Sprintf("graph: program %q registered twice", name))
	}
	programs[name] = factory
}

// newProgram instantiates and configures a registered program.
func newProgram(name string, payload []byte) (Program, error) {
	f, ok := programs[name]
	if !ok {
		return nil, fmt.Errorf("graph: program %q not registered", name)
	}
	p := f()
	if c, ok := p.(Configurable); ok && len(payload) > 0 {
		if err := c.Configure(payload); err != nil {
			return nil, fmt.Errorf("graph: configure %q: %w", name, err)
		}
	}
	return p, nil
}

// aggSpecs returns the program's declared aggregators plus the built-ins.
func aggSpecs(p Program) []AggSpec {
	specs := []AggSpec{
		{Name: AggActive, Kind: AggSum},
		{Name: AggSent, Kind: AggSum},
		{Name: AggHalted, Kind: AggSum},
	}
	if a, ok := p.(Aggregating); ok {
		specs = append(specs, a.Aggregators()...)
	}
	return specs
}
