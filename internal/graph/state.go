package graph

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"tez/internal/dfs"
	"tez/internal/library"
)

// On-disk layout under Job.WorkDir (one snapshot/inbox generation per
// superstep, so any attempt of superstep k can always rebuild from durable
// state even when its container's registry cache is gone):
//
//	state/s<k>/part-<p>   vertex state consumed by superstep k (partition p)
//	inbox/s<k>/part-*     combined messages consumed by superstep k
//	agg/s<k>/part-*       aggregator partials produced by superstep k
//	mstats/s<k>/part-*    inbox message stats produced by superstep k
//
// The driver deletes generation k once superstep k has succeeded and its
// sidecar outputs are folded; only the live frontier stays on the DFS.

func stateDir(work string, step int) string  { return fmt.Sprintf("%s/state/s%03d", work, step) }
func inboxDir(work string, step int) string  { return fmt.Sprintf("%s/inbox/s%03d", work, step) }
func aggDir(work string, step int) string    { return fmt.Sprintf("%s/agg/s%03d", work, step) }
func mstatsDir(work string, step int) string { return fmt.Sprintf("%s/mstats/s%03d", work, step) }

// regKey is the per-container ObjectRegistry key of a partition's decoded
// state snapshot entering superstep step. Keys are per-superstep because
// snapshots are immutable: an attempt retry or a speculative twin must
// never observe another attempt's in-place mutations, so each superstep
// caches a fresh entry and explicitly deletes its predecessors.
func regKey(job string, part, step int) string {
	return fmt.Sprintf("tez.graph/%s/p%03d/s%03d", job, part, step)
}

// vertexKey encodes a vertex id as an 8-byte big-endian key: byte order
// equals numeric order, and the shuffle's hash partitioner sees a
// fixed-width key.
func vertexKey(id int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return b[:]
}

func vertexID(key []byte) (int64, error) {
	if len(key) != 8 {
		return 0, fmt.Errorf("graph: vertex key of %d bytes", len(key))
	}
	return int64(binary.BigEndian.Uint64(key)), nil
}

// msgBytes encodes a message value (8-byte big-endian IEEE-754 bits). The
// byte encoding doubles as the combiner-fold tiebreak order in the sorted
// shuffle, which is what makes float folds content-deterministic.
func msgBytes(v float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func msgValue(b []byte) (float64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("graph: message value of %d bytes", len(b))
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

// locAggName encodes the per-partition locality breadcrumb record written
// into the agg sidecar: which node computed partition part this superstep.
func locAggName(part int, node string) string {
	return fmt.Sprintf("graph.loc/p%03d/%s", part, node)
}

// splitLocAgg splits a folded sidecar map into the real aggregators and the
// locality breadcrumbs (part → node). Placement varies run to run (and
// under faults), so breadcrumbs must never reach program-visible state —
// they feed scheduling hints only.
func splitLocAgg(folded map[string]float64, parts int) (map[string]float64, []string) {
	nodes := make([]string, parts)
	agg := make(map[string]float64, len(folded))
	for name, v := range folded {
		rest, ok := strings.CutPrefix(name, "graph.loc/p")
		if !ok {
			agg[name] = v
			continue
		}
		if i := strings.IndexByte(rest, '/'); i > 0 {
			if p, err := strconv.Atoi(rest[:i]); err == nil && p >= 0 && p < parts {
				nodes[p] = rest[i+1:]
			}
		}
	}
	return agg, nodes
}

// vertexState is one vertex's durable per-superstep state.
type vertexState struct {
	Vertex
	Halted bool
}

// partitionState is the decoded snapshot of one graph partition entering a
// superstep — the unit cached in the ObjectRegistry. Snapshots are
// immutable once built; computeStep copies vertex structs before mutating
// (the Edges slices are shared: topology is static).
type partitionState struct {
	vertices []vertexState // sorted by ID
}

const haltedFlag = 0x01

// appendStateValue encodes a vertex's state record value:
// value(8) flags(1) uvarint(nedges) { dst(8) weight(8) }*.
func appendStateValue(dst []byte, v *vertexState) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Value))
	dst = append(dst, b[:]...)
	var flags byte
	if v.Halted {
		flags |= haltedFlag
	}
	dst = append(dst, flags)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(v.Edges)))
	dst = append(dst, hdr[:n]...)
	for _, e := range v.Edges {
		binary.BigEndian.PutUint64(b[:], uint64(e.To))
		dst = append(dst, b[:]...)
		binary.BigEndian.PutUint64(b[:], math.Float64bits(e.Weight))
		dst = append(dst, b[:]...)
	}
	return dst
}

func decodeStateValue(id int64, val []byte) (vertexState, error) {
	bad := func() (vertexState, error) {
		return vertexState{}, fmt.Errorf("graph: corrupt state record for vertex %d", id)
	}
	if len(val) < 9 {
		return bad()
	}
	v := vertexState{Vertex: Vertex{ID: id, Value: math.Float64frombits(binary.BigEndian.Uint64(val))}}
	v.Halted = val[8]&haltedFlag != 0
	rest := val[9:]
	n, used := binary.Uvarint(rest)
	if used <= 0 || uint64(len(rest[used:])) != n*16 {
		return bad()
	}
	rest = rest[used:]
	if n > 0 {
		v.Edges = make([]Edge, n)
		for i := range v.Edges {
			v.Edges[i].To = int64(binary.BigEndian.Uint64(rest))
			v.Edges[i].Weight = math.Float64frombits(binary.BigEndian.Uint64(rest[8:]))
			rest = rest[16:]
		}
	}
	return v, nil
}

// decodeSnapshot builds a partition snapshot from a key-ordered record
// stream (a state part file).
func decodeSnapshot(r interface {
	Next() bool
	Key() []byte
	Value() []byte
	Err() error
}) (*partitionState, error) {
	ps := &partitionState{}
	for r.Next() {
		id, err := vertexID(r.Key())
		if err != nil {
			return nil, err
		}
		v, err := decodeStateValue(id, r.Value())
		if err != nil {
			return nil, err
		}
		ps.vertices = append(ps.vertices, v)
	}
	return ps, r.Err()
}

// writeInitialState materialises the graph into the superstep-0 snapshot:
// one record file per partition, written directly at the committed
// FinalPath (the driver is outside any DAG — there is nothing to commit),
// vertices in ascending id order.
func writeInitialState(fs *dfs.FileSystem, dir string, g *Graph, prog Program, parts int) error {
	info := GraphInfo{NumVertices: g.NumVertices(), NumEdges: g.NumEdges()}
	writers := make([]*library.RecordFileWriter, parts)
	for p := 0; p < parts; p++ {
		w, err := library.CreateRecordFile(fs, library.FinalPath(dir, p), "")
		if err != nil {
			return err
		}
		writers[p] = w
	}
	var buf []byte
	for _, id := range g.VertexIDs() {
		v := vertexState{Vertex: Vertex{
			ID:    id,
			Value: prog.InitialValue(id, info),
			Edges: g.Edges(id),
		}}
		buf = appendStateValue(buf[:0], &v)
		if err := writers[PartitionOf(id, parts)].Write(vertexKey(id), buf); err != nil {
			return err
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// readValues reads a committed state directory back into id → value (the
// driver's final-result read; node "" keeps it off the chaos plane).
func readValues(fs *dfs.FileSystem, dir string) (map[int64]float64, error) {
	out := map[int64]float64{}
	files := fs.List(dir + "/part-")
	sort.Strings(files)
	for _, f := range files {
		blob, err := fs.ReadFile(f, "")
		if err != nil {
			return nil, err
		}
		r := library.NewPaddedReader(blob)
		for r.Next() {
			id, err := vertexID(r.Key())
			if err != nil {
				return nil, err
			}
			v, err := decodeStateValue(id, r.Value())
			if err != nil {
				return nil, err
			}
			out[id] = v.Value
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readFloatRecords folds a sidecar directory of (name, float64) records —
// aggregator partials or inbox message stats — by each name's AggKind
// (sum when the name is undeclared). File order is sorted and records are
// folded in stream order, so float folds are deterministic.
func readFloatRecords(fs *dfs.FileSystem, dir string, kinds map[string]AggKind) (map[string]float64, error) {
	out := map[string]float64{}
	files := fs.List(dir + "/part-")
	sort.Strings(files)
	for _, f := range files {
		blob, err := fs.ReadFile(f, "")
		if err != nil {
			return nil, err
		}
		r := library.NewPaddedReader(blob)
		for r.Next() {
			v, err := msgValue(r.Value())
			if err != nil {
				return nil, err
			}
			name := string(r.Key())
			if cur, ok := out[name]; ok {
				out[name] = kinds[name].fold()(cur, v)
			} else {
				out[name] = v
			}
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
