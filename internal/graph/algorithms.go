package graph

import (
	"math"

	"tez/internal/plugin"
)

// Built-in vertex programs. Each is a few dozen lines against the Program
// contract — the point of the exercise: the BSP engine underneath is the
// same session-DAG machinery every other workload uses.
const (
	PageRankProgram = "graph.pagerank"
	CCProgram       = "graph.cc"
	SSSPProgram     = "graph.sssp"
)

func init() {
	RegisterProgram(PageRankProgram, func() Program { return &pageRank{} })
	RegisterProgram(CCProgram, func() Program { return &connectedComponents{} })
	RegisterProgram(SSSPProgram, func() Program { return &shortestPaths{} })
}

// PageRankConfig parameterises the PageRank program.
type PageRankConfig struct {
	// Damping is the damping factor d (default 0.85).
	Damping float64
	// Epsilon stops the iteration once the summed |rank delta| of a
	// superstep drops to or below it (default 1e-9 * N at run time; set
	// negative to disable and run MaxSupersteps rounds).
	Epsilon float64
}

const (
	aggPRDelta    = "pr.delta"
	aggPRDangling = "pr.dangling"
)

// pageRank iterates r = (1-d)/N + d*(Σ incoming r/outdeg + dangling/N).
// Dangling mass is collected through an aggregator, so (as in the original
// Pregel formulation) it reaches the other vertices one superstep late —
// the ranks still converge to the same fixed point. Vertices never vote to
// halt; termination is the pr.delta Converged predicate.
type pageRank struct {
	cfg PageRankConfig
}

func (p *pageRank) Configure(payload []byte) error {
	return plugin.Decode(payload, &p.cfg)
}

func (p *pageRank) damping() float64 {
	if p.cfg.Damping <= 0 || p.cfg.Damping >= 1 {
		return 0.85
	}
	return p.cfg.Damping
}

func (p *pageRank) InitialValue(id int64, info GraphInfo) float64 {
	return 1 / float64(info.NumVertices)
}

func (p *pageRank) Combiner() Combiner { return CombineSum }

func (p *pageRank) Aggregators() []AggSpec {
	return []AggSpec{{Name: aggPRDelta, Kind: AggSum}, {Name: aggPRDangling, Kind: AggSum}}
}

func (p *pageRank) Compute(c *ComputeContext, v *Vertex, msgs []float64) error {
	n := float64(c.NumVertices())
	d := p.damping()
	if c.Superstep() > 0 {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		next := (1-d)/n + d*(sum+c.Agg(aggPRDangling)/n)
		c.Aggregate(aggPRDelta, math.Abs(next-v.Value))
		v.Value = next
	}
	if len(v.Edges) == 0 {
		c.Aggregate(aggPRDangling, v.Value)
		return nil
	}
	share := v.Value / float64(len(v.Edges))
	for _, e := range v.Edges {
		c.Send(e.To, share)
	}
	return nil
}

func (p *pageRank) Converged(superstep int, agg map[string]float64) bool {
	if superstep == 0 {
		return false // no delta yet
	}
	eps := p.cfg.Epsilon
	if eps == 0 {
		eps = 1e-9
	}
	return eps > 0 && agg[aggPRDelta] <= eps
}

// connectedComponents propagates the minimum vertex id seen so far as the
// component label (HashMin). Pure vote-to-halt termination: a vertex wakes
// only when a smaller label arrives, and the run ends when no labels move.
type connectedComponents struct{}

func (*connectedComponents) InitialValue(id int64, info GraphInfo) float64 {
	return float64(id)
}

func (*connectedComponents) Combiner() Combiner { return CombineMin }

func (*connectedComponents) Compute(c *ComputeContext, v *Vertex, msgs []float64) error {
	improved := c.Superstep() == 0
	for _, m := range msgs {
		if m < v.Value {
			v.Value = m
			improved = true
		}
	}
	if improved {
		for _, e := range v.Edges {
			c.Send(e.To, v.Value)
		}
	}
	c.VoteToHalt()
	return nil
}

// SSSPConfig parameterises the single-source shortest-paths program.
type SSSPConfig struct {
	// Source is the origin vertex; every other vertex starts at +Inf.
	Source int64
}

// shortestPaths is Bellman-Ford-style relaxation: a vertex whose distance
// improved relaxes all out-edges, everyone votes to halt, and the frontier
// of reawakened vertices shrinks until no distance moves. Unreachable
// vertices finish at +Inf.
type shortestPaths struct {
	cfg SSSPConfig
}

func (s *shortestPaths) Configure(payload []byte) error {
	return plugin.Decode(payload, &s.cfg)
}

func (s *shortestPaths) InitialValue(id int64, info GraphInfo) float64 {
	if id == s.cfg.Source {
		return 0
	}
	return math.Inf(1)
}

func (s *shortestPaths) Combiner() Combiner { return CombineMin }

func (s *shortestPaths) Compute(c *ComputeContext, v *Vertex, msgs []float64) error {
	improved := c.Superstep() == 0 && !math.IsInf(v.Value, 1)
	for _, m := range msgs {
		if m < v.Value {
			v.Value = m
			improved = true
		}
	}
	if improved {
		for _, e := range v.Edges {
			c.Send(e.To, v.Value+e.Weight)
		}
	}
	c.VoteToHalt()
	return nil
}
