// Package graph is a Pregel-style BSP graph analytics engine compiled
// onto Tez session DAGs — the "graph engine as a thin layer over a
// dataflow engine" design of GraphX and Pregelix, realised with the
// primitives this repo already has:
//
//   - Each superstep is one two-vertex Tez DAG (compute → inbox)
//     submitted to a shared am.Session, so containers are reused across
//     supersteps exactly like the sparklike K-means loop (§4.2).
//   - Graph partitions (vertex values + adjacency) are cached in the
//     per-container runtime.ObjectRegistry with session lifetime; a
//     task whose container computed the same partition last superstep
//     skips the DFS state load entirely. Cold containers fall back to
//     the durable per-superstep state snapshot in the DFS, so faults
//     never lose state.
//   - Only messages cross the shuffle. They are pre-aggregated on the
//     map side by a typed combiner compiled onto the existing
//     library.RegisterCombineFunc machinery (PR 5), and the inbox
//     vertex's parallelism is auto-shrunk from message-volume stats by
//     the stock ShuffleVertexManager.
//   - The driver detects convergence from halt votes + message counts
//     (and an optional program-defined aggregator predicate) and stops
//     without scheduling an empty trailing superstep.
//
// See DESIGN.md §12 for the full architecture.
package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"tez/internal/library"
)

// Edge is one directed out-edge of a vertex. Weight is 1 for unweighted
// graphs.
type Edge struct {
	To     int64
	Weight float64
}

// Graph is the in-memory input topology handed to the driver, which
// partitions and materialises it into per-partition DFS state snapshots
// before superstep 0. The engine treats the topology as static.
type Graph struct {
	adj map[int64][]Edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{adj: make(map[int64][]Edge)} }

// AddVertex ensures id exists (isolated vertices participate too).
// Negative ids are rejected: vertex ids are encoded as unsigned
// big-endian keys so that byte order equals numeric order.
func (g *Graph) AddVertex(id int64) error {
	if id < 0 {
		return fmt.Errorf("graph: negative vertex id %d", id)
	}
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = nil
	}
	return nil
}

// AddEdge adds a directed edge. Both endpoints are created as needed.
func (g *Graph) AddEdge(from, to int64, weight float64) error {
	if err := g.AddVertex(from); err != nil {
		return err
	}
	if err := g.AddVertex(to); err != nil {
		return err
	}
	g.adj[from] = append(g.adj[from], Edge{To: to, Weight: weight})
	return nil
}

// AddUndirectedEdge adds both directions.
func (g *Graph) AddUndirectedEdge(a, b int64, weight float64) error {
	if err := g.AddEdge(a, b, weight); err != nil {
		return err
	}
	return g.AddEdge(b, a, weight)
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int64 { return int64(len(g.adj)) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int64 {
	var n int64
	for _, es := range g.adj {
		n += int64(len(es))
	}
	return n
}

// VertexIDs returns all ids in ascending order.
func (g *Graph) VertexIDs() []int64 {
	ids := make([]int64, 0, len(g.adj))
	for id := range g.adj {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Edges returns the out-edges of id (sorted by destination, for
// deterministic materialisation).
func (g *Graph) Edges(id int64) []Edge {
	es := append([]Edge(nil), g.adj[id]...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].To != es[j].To {
			return es[i].To < es[j].To
		}
		return es[i].Weight < es[j].Weight
	})
	return es
}

// PartitionOf maps a vertex id to its graph partition in [0, parts).
// This is the single partitioning function of the engine: the driver
// uses it to materialise state snapshots, and compute tasks use it to
// filter inbox records — both must agree, so it is the same FNV-1a hash
// the shuffle's HashPartitioner applies to the encoded vertex key.
func PartitionOf(id int64, parts int) int {
	return library.HashPartitioner{}.Partition(vertexKey(id), parts)
}

// ParseEdgeList parses a whitespace-separated edge list: one "src dst
// [weight]" triple per line, '#' starting a comment, a bare "v id" line
// declaring an isolated vertex. Weight defaults to 1.
func ParseEdgeList(data []byte) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "v" && len(fields) == 2 {
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if err := g.AddVertex(id); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", line, text)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		w := 1.0
		if len(fields) == 3 {
			if w, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		}
		if err := g.AddEdge(src, dst, w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// Generate builds a deterministic pseudo-random connected digraph for
// benchmarks and examples: a ring (so every vertex is reachable and CC
// converges to one component) plus avgDegree-1 random chords per
// vertex. Weights are uniform in (0, 10].
func Generate(n int, avgDegree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	for i := 0; i < n; i++ {
		_ = g.AddEdge(int64(i), int64((i+1)%n), 1+rng.Float64()*9)
		for d := 1; d < avgDegree; d++ {
			to := int64(rng.Intn(n))
			if to == int64(i) {
				to = (to + 1) % int64(n)
			}
			_ = g.AddEdge(int64(i), to, 1+rng.Float64()*9)
		}
	}
	return g
}
