package graph

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/timeline"
)

// Job describes one BSP computation.
type Job struct {
	// Name namespaces the job's DFS work area, registry keys, DAG names
	// and timeline spans.
	Name string
	// Program is a RegisterProgram name.
	Program string
	// ProgramConfig, when non-nil, is gob-encoded and handed to the
	// program's Configure (driver-side and in every task).
	ProgramConfig any
	// Graph is the input topology.
	Graph *Graph
	// Partitions is the graph partition count == the compute vertex's
	// parallelism (default 4). The inbox vertex starts at the same width
	// and is auto-shrunk per superstep by the ShuffleVertexManager from
	// observed message volume.
	Partitions int
	// MaxSupersteps bounds the loop (default 50).
	MaxSupersteps int
	// WorkDir is the DFS work area (default "/graph/<name>").
	WorkDir string
	// KeepWork leaves the work area on the DFS after the run.
	KeepWork bool
	// DisableRegistryCache makes every superstep cold-load state from the
	// DFS (the ablation knob of the graph bench).
	DisableRegistryCache bool
	// Timeline, when set, receives one GraphSuperstep span per superstep.
	Timeline *timeline.Journal
}

// SuperstepStat summarises one executed superstep.
type SuperstepStat struct {
	Superstep int
	// Active vertices computed; Halted vertices at superstep end.
	Active, Halted int64
	// Sent messages (pre-combine); Received at the inbox (post map-side
	// combine); Delivered into the next superstep's inbox files (post
	// inbox fold). Sent-Delivered is the total combined away.
	Sent, Received, Delivered int64
	// RegistryHits / ColdLoads count how compute tasks acquired their
	// partition snapshot; StateLoad is the cold loads' summed wall-clock.
	RegistryHits, ColdLoads int64
	StateLoad               time.Duration
	// InboxTasks is the inbox vertex's auto-chosen parallelism.
	InboxTasks int
	// Wall is the superstep DAG's wall-clock.
	Wall time.Duration
}

// Result is a finished computation.
type Result struct {
	// Values maps every vertex id to its final value.
	Values map[int64]float64
	// Supersteps executed (== len(Stats); the loop schedules no empty
	// trailing superstep).
	Supersteps int
	// Converged is true when the loop ended by halt votes or the
	// program's Converged predicate rather than MaxSupersteps.
	Converged bool
	// Aggregates are the final superstep's folded globals.
	Aggregates map[string]float64
	Stats      []SuperstepStat
}

// CanonicalBytes renders the final values as a deterministic byte string
// (ids ascending, IEEE-754 bits verbatim) — the unit of comparison for
// the chaos determinism suite.
func (r *Result) CanonicalBytes() []byte {
	ids := make([]int64, 0, len(r.Values))
	for id := range r.Values {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]byte, 0, 16*len(ids))
	var b [16]byte
	for _, id := range ids {
		binary.BigEndian.PutUint64(b[:8], uint64(id))
		binary.BigEndian.PutUint64(b[8:], math.Float64bits(r.Values[id]))
		out = append(out, b[:]...)
	}
	return out
}

func (j *Job) withDefaults() (Job, error) {
	job := *j
	if job.Name == "" {
		return job, fmt.Errorf("graph: job without name")
	}
	if job.Graph == nil || job.Graph.NumVertices() == 0 {
		return job, fmt.Errorf("graph: job %s without graph", job.Name)
	}
	if job.Program == "" {
		return job, fmt.Errorf("graph: job %s without program", job.Name)
	}
	if job.Partitions <= 0 {
		job.Partitions = 4
	}
	if job.MaxSupersteps <= 0 {
		job.MaxSupersteps = 50
	}
	if job.WorkDir == "" {
		job.WorkDir = "/graph/" + job.Name
	}
	return job, nil
}

// Run executes the job in the given session: each superstep compiles to a
// two-vertex DAG (compute → inbox) submitted through Session.RunLoop, so
// consecutive supersteps reuse the session's containers and each
// container's ObjectRegistry carries the partition snapshots forward. The
// loop stops as soon as the halt protocol fires — every vertex halted and
// nothing sent, or the program's Converged predicate — without building
// another DAG.
func Run(sess *am.Session, plat *platform.Platform, j Job) (*Result, error) {
	job, err := j.withDefaults()
	if err != nil {
		return nil, err
	}
	var progCfg []byte
	if job.ProgramConfig != nil {
		progCfg = plugin.MustEncode(job.ProgramConfig)
	}
	// The driver-side program instance answers Combiner/Aggregators/
	// Converged; per-vertex Compute runs only inside tasks.
	prog, err := newProgram(job.Program, progCfg)
	if err != nil {
		return nil, err
	}
	specs := aggSpecs(prog)
	kinds := map[string]AggKind{}
	for _, s := range specs {
		kinds[s.Name] = s.Kind
	}
	info := GraphInfo{NumVertices: job.Graph.NumVertices(), NumEdges: job.Graph.NumEdges()}

	fs := plat.FS
	fs.DeletePrefix(job.WorkDir + "/")
	if !job.KeepWork {
		defer fs.DeletePrefix(job.WorkDir + "/")
	}
	if err := writeInitialState(fs, stateDir(job.WorkDir, 0), job.Graph, prog, job.Partitions); err != nil {
		return nil, err
	}

	res := &Result{}
	agg := map[string]float64{}
	prevNodes := make([]string, job.Partitions)
	converged := false
	iters, err := sess.RunLoop(job.MaxSupersteps,
		func(it int) (*dag.DAG, error) {
			inbox := inboxDir(job.WorkDir, it)
			if !fs.Exists(library.FinalPath(inbox, 0)) {
				inbox = "" // superstep 0, or upstream delivered nothing
			}
			return superstepDAG(&job, progCfg, prog, specs, info, it, inbox, agg, prevNodes), nil
		},
		func(it int, dres am.DAGResult) (bool, error) {
			folded, err := readFloatRecords(fs, aggDir(job.WorkDir, it), kinds)
			if err != nil {
				return false, err
			}
			mstats, err := readFloatRecords(fs, mstatsDir(job.WorkDir, it), nil)
			if err != nil {
				return false, err
			}
			agg, prevNodes = splitLocAgg(folded, job.Partitions)
			folded = agg
			stat := SuperstepStat{
				Superstep:    it,
				Active:       int64(folded[AggActive]),
				Halted:       int64(folded[AggHalted]),
				Sent:         int64(folded[AggSent]),
				Received:     int64(mstats["graph.received"]),
				Delivered:    int64(mstats["graph.emitted"]),
				RegistryHits: dres.Counters.Get(ctrRegistryHits),
				ColdLoads:    dres.Counters.Get(ctrColdLoads),
				StateLoad:    time.Duration(dres.Counters.Get(ctrLoadNS)),
				InboxTasks:   len(fs.List(inboxDir(job.WorkDir, it+1) + "/part-")),
				Wall:         dres.Duration,
			}
			res.Stats = append(res.Stats, stat)
			job.Timeline.Record(timeline.Event{
				Type: timeline.GraphSuperstep,
				DAG:  job.Name,
				Dur:  stat.Wall,
				Val:  stat.Active,
				Info: fmt.Sprintf("superstep=%d active=%d sent=%d combined=%d",
					it, stat.Active, stat.Sent, stat.Sent-stat.Delivered),
			})
			// Retire the consumed generation; the frontier (state and inbox
			// of superstep it+1) stays.
			fs.DeletePrefix(stateDir(job.WorkDir, it) + "/")
			fs.DeletePrefix(inboxDir(job.WorkDir, it) + "/")
			fs.DeletePrefix(aggDir(job.WorkDir, it) + "/")
			fs.DeletePrefix(mstatsDir(job.WorkDir, it) + "/")

			// Halt protocol: all votes in and no messages in flight ends the
			// computation; a Converger program can end it sooner.
			if stat.Sent == 0 && stat.Halted == info.NumVertices {
				converged = true
				return true, nil
			}
			if c, ok := prog.(Converger); ok && c.Converged(it, agg) {
				converged = true
				return true, nil
			}
			return false, nil
		})
	if err != nil {
		return nil, err
	}

	values, err := readValues(fs, stateDir(job.WorkDir, iters))
	if err != nil {
		return nil, err
	}
	res.Values = values
	res.Supersteps = iters
	res.Converged = converged
	res.Aggregates = agg
	return res, nil
}

// superstepDAG compiles superstep it onto a two-vertex DAG:
//
//	state/s<it> ──initializer──▶ [compute ×P] ──scatter-gather──▶ [inbox ×auto]
//	                               │    │  (combiner on the edge)      │    │
//	                           snapshot agg                           out  mstats
//	                          state/s<it+1>                     inbox/s<it+1>
func superstepDAG(job *Job, progCfg []byte, prog Program, specs []AggSpec,
	info GraphInfo, it int, inbox string, agg map[string]float64, prevNodes []string) *dag.DAG {
	work := job.WorkDir
	d := dag.New(fmt.Sprintf("%s-s%03d", job.Name, it))

	compute := d.AddVertex("compute", plugin.Desc(ComputeProcessorName, computeConfig{
		Job:          job.Name,
		Program:      job.Program,
		ProgramCfg:   progCfg,
		Superstep:    it,
		Partitions:   job.Partitions,
		Info:         info,
		InboxDir:     inbox,
		Aggs:         agg,
		AggSpecs:     specs,
		DisableCache: job.DisableRegistryCache,
	}), job.Partitions)
	compute.Sources = []dag.DataSource{{
		Name:  "state",
		Input: plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(StateInitializerName, stateInitConfig{
			Dir: stateDir(work, it), Partitions: job.Partitions, PrevNodes: prevNodes,
		}),
	}}
	snapSink := library.DFSSinkConfig{Path: stateDir(work, it + 1)}
	aggSink := library.DFSSinkConfig{Path: aggDir(work, it)}
	compute.Sinks = []dag.DataSink{{
		Name:      "snapshot",
		Output:    plugin.Desc(library.DFSSinkOutputName, snapSink),
		Committer: plugin.Desc(library.DFSCommitterName, snapSink),
	}, {
		Name:      "agg",
		Output:    plugin.Desc(library.DFSSinkOutputName, aggSink),
		Committer: plugin.Desc(library.DFSCommitterName, aggSink),
	}}

	inboxV := d.AddVertex("inbox", plugin.Desc(InboxProcessorName, inboxConfig{
		Combine: prog.Combiner(),
	}), job.Partitions)
	outSink := library.DFSSinkConfig{Path: inboxDir(work, it+1)}
	mstatsSink := library.DFSSinkConfig{Path: mstatsDir(work, it)}
	inboxV.Sinks = []dag.DataSink{{
		Name:      "out",
		Output:    plugin.Desc(library.DFSSinkOutputName, outSink),
		Committer: plugin.Desc(library.DFSCommitterName, outSink),
	}, {
		Name:      "mstats",
		Output:    plugin.Desc(library.DFSSinkOutputName, mstatsSink),
		Committer: plugin.Desc(library.DFSCommitterName, mstatsSink),
	}}

	d.Connect(compute, inboxV, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output: plugin.Desc(library.OrderedPartitionedOutputName, library.OrderedPartitionedConfig{
			Combiner: prog.Combiner().FuncName(),
		}),
		Input: plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	return d
}
