package graph

import (
	"fmt"
	"sort"
	"time"

	"tez/internal/library"
	"tez/internal/plugin"
	"tez/internal/runtime"
)

// Registered names of the engine's task-side components.
const (
	// ComputeProcessorName runs one partition's vertex programs for one
	// superstep.
	ComputeProcessorName = "graph.compute"
	// InboxProcessorName folds one shuffle partition's messages and
	// materialises them for the next superstep.
	InboxProcessorName = "graph.inbox"
	// StateInitializerName plans the state-snapshot read: task p reads
	// partition p's part file, hinted to the nodes holding its blocks — on
	// a reused container that node is where the previous superstep wrote
	// the snapshot, which is what turns locality hints into registry hits.
	StateInitializerName = "graph.state_initializer"
)

// Task counters (visible in DAGResult.Counters).
const (
	ctrRegistryHits = "GRAPH_STATE_REGISTRY_HITS"
	ctrColdLoads    = "GRAPH_STATE_COLD_LOADS"
	ctrLoadNS       = "GRAPH_STATE_LOAD_NS"
	ctrCombined     = "GRAPH_MESSAGES_COMBINED"
)

func init() {
	runtime.RegisterProcessor(ComputeProcessorName, func() runtime.Processor { return &computeProc{} })
	runtime.RegisterProcessor(InboxProcessorName, func() runtime.Processor { return &inboxProc{} })
	runtime.RegisterInitializer(StateInitializerName, func() runtime.Initializer { return stateInitializer{} })
	for _, c := range []Combiner{CombineSum, CombineMin, CombineMax} {
		registerCombine(c)
	}
}

// registerCombine compiles a typed message combiner onto the shuffle's
// generic combine hook: the map side folds each sorted key group before
// anything is spilled or shipped, so for combining programs at most one
// message per (producer task, destination vertex) crosses the wire.
func registerCombine(c Combiner) {
	fold := c.fold()
	library.RegisterCombineFunc(c.FuncName(), func(key []byte, values [][]byte, out runtime.KVWriter) error {
		acc, err := msgValue(values[0])
		if err != nil {
			return err
		}
		for _, v := range values[1:] {
			f, err := msgValue(v)
			if err != nil {
				return err
			}
			acc = fold(acc, f)
		}
		return out.Write(key, msgBytes(acc))
	})
}

// computeConfig is the compute processor's payload for one superstep.
type computeConfig struct {
	Job        string
	Program    string
	ProgramCfg []byte
	Superstep  int
	Partitions int
	Info       GraphInfo
	// InboxDir holds the messages delivered to this superstep ("" at
	// superstep 0 or when the previous superstep sent nothing).
	InboxDir string
	// Aggs carries the previous superstep's folded global aggregators.
	Aggs map[string]float64
	// AggSpecs declares the aggregator kinds (built-ins + program's).
	AggSpecs []AggSpec
	// DisableCache bypasses the ObjectRegistry entirely (the cold-load
	// ablation of the graph bench).
	DisableCache bool
}

// computeProc executes Program.Compute over one graph partition: load the
// partition snapshot (registry hit or DFS cold load), deliver inbox
// messages, run active vertices, emit next-superstep messages onto the
// shuffle edge, and write the next snapshot + aggregator partials to the
// sinks.
type computeProc struct {
	ctx *runtime.Context
	cfg computeConfig
}

func (p *computeProc) Initialize(ctx *runtime.Context) error {
	p.ctx = ctx
	return plugin.Decode(ctx.Payload, &p.cfg)
}

func (p *computeProc) Close() error { return nil }

func (p *computeProc) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	cfg, meta := &p.cfg, p.ctx.Meta
	part := meta.Task
	if part >= cfg.Partitions {
		return fmt.Errorf("graph: compute task %d beyond %d partitions", part, cfg.Partitions)
	}
	prog, err := newProgram(cfg.Program, cfg.ProgramCfg)
	if err != nil {
		return err
	}
	snap, err := p.loadState(in)
	if err != nil {
		return err
	}
	msgs, err := p.readInbox(part)
	if err != nil {
		return err
	}

	edgeW, err := kvWriter(out, "inbox")
	if err != nil {
		return err
	}
	kinds := map[string]AggKind{}
	for _, s := range cfg.AggSpecs {
		kinds[s.Name] = s.Kind
	}
	cc := &ComputeContext{
		superstep: cfg.Superstep,
		info:      cfg.Info,
		agg:       cfg.Aggs,
		kinds:     kinds,
		partial:   map[string]float64{},
		send: func(dst int64, val float64) error {
			return edgeW.Write(vertexKey(dst), msgBytes(val))
		},
	}

	// Compute pass. The snapshot is shared (it may live in the registry and
	// be re-read by a retried or speculative attempt), so vertices are
	// copied before mutation; Edges slices are shared — topology is static.
	next := &partitionState{vertices: make([]vertexState, len(snap.vertices))}
	var active, halted int64
	for i := range snap.vertices {
		v := snap.vertices[i]
		m := msgs[v.ID]
		if cfg.Superstep == 0 || !v.Halted || len(m) > 0 {
			v.Halted = false
			cc.halt = false
			if err := prog.Compute(cc, &v.Vertex, m); err != nil {
				return err
			}
			if cc.err != nil {
				return cc.err
			}
			v.Halted = cc.halt
			active++
		}
		if v.Halted {
			halted++
		}
		next.vertices[i] = v
	}

	// Next-superstep snapshot (durable) + aggregator partials.
	snapW, err := kvWriter(out, "snapshot")
	if err != nil {
		return err
	}
	var buf []byte
	for i := range next.vertices {
		v := &next.vertices[i]
		buf = appendStateValue(buf[:0], v)
		if err := snapW.Write(vertexKey(v.ID), buf); err != nil {
			return err
		}
	}
	aggW, err := kvWriter(out, "agg")
	if err != nil {
		return err
	}
	for _, rec := range []struct {
		name string
		val  float64
	}{{AggActive, float64(active)}, {AggSent, float64(cc.sent)}, {AggHalted, float64(halted)}} {
		if err := aggW.Write([]byte(rec.name), msgBytes(rec.val)); err != nil {
			return err
		}
	}
	for _, s := range cc.sortedPartials() {
		if err := aggW.Write([]byte(s.Name), msgBytes(cc.partial[s.Name])); err != nil {
			return err
		}
	}
	// Locality breadcrumb: record which node computed this partition. The
	// driver feeds it back as the next superstep's location hint, steering
	// task p onto the container whose registry holds the fresh snapshot.
	// (Speculation-safe: only the winning attempt's sink is committed.)
	if node := p.ctx.Services.Node; node != "" {
		if err := aggW.Write([]byte(locAggName(part, node)), msgBytes(0)); err != nil {
			return err
		}
	}

	// Publish the next snapshot to this container's registry and retire
	// every predecessor generation of this partition — session-lifetime
	// entries are never framework-swept, so the engine bounds its own
	// footprint. Entries are immutable and content-deterministic, so a
	// stale entry left by a failed attempt is still byte-equal to the
	// durable snapshot; republishing just overwrites it.
	if reg := p.ctx.Services.Registry; reg != nil && !cfg.DisableCache {
		reg.Add(runtime.LifetimeSession, meta, regKey(cfg.Job, part, cfg.Superstep+1), next)
		for s := 0; s <= cfg.Superstep; s++ {
			reg.Delete(meta, regKey(cfg.Job, part, s))
		}
	}
	return nil
}

// loadState fetches the partition snapshot entering this superstep: from
// the container's registry when a previous superstep of this job ran here
// (skipping the DFS read entirely), else decoded from the durable state
// part file via the root source.
func (p *computeProc) loadState(in map[string]runtime.Input) (*partitionState, error) {
	cfg, meta := &p.cfg, p.ctx.Meta
	reg, ctr := p.ctx.Services.Registry, p.ctx.Services.Counters
	key := regKey(cfg.Job, meta.Task, cfg.Superstep)
	if reg != nil && !cfg.DisableCache {
		if v, ok := reg.Get(meta, key); ok {
			if snap, ok := v.(*partitionState); ok {
				ctr.Add(ctrRegistryHits, 1)
				return snap, nil
			}
		}
	}
	src, ok := in["state"]
	if !ok {
		return nil, fmt.Errorf("graph: compute without state source")
	}
	t0 := time.Now()
	rd, err := src.Reader()
	if err != nil {
		return nil, err
	}
	kv, ok := rd.(runtime.KVReader)
	if !ok {
		return nil, fmt.Errorf("graph: state reader is %T, want KVReader", rd)
	}
	snap, err := decodeSnapshot(kv)
	if err != nil {
		return nil, err
	}
	ctr.Add(ctrColdLoads, 1)
	ctr.Add(ctrLoadNS, time.Since(t0).Nanoseconds())
	return snap, nil
}

// readInbox loads this partition's messages from the previous superstep's
// inbox files. Every file is scanned and filtered by the engine's
// partition function: the inbox vertex's parallelism (and therefore the
// file layout) is whatever the ShuffleVertexManager's auto-parallelism
// chose that superstep, but each destination vertex's messages were fully
// folded inside exactly one shuffle partition, so filtering by PartitionOf
// re-routes them independent of layout. Reads pass the task's node, so
// they are on the chaos plane like any other task I/O.
func (p *computeProc) readInbox(part int) (map[int64][]float64, error) {
	if p.cfg.InboxDir == "" {
		return nil, nil
	}
	fs := p.ctx.Services.FS
	files := fs.List(p.cfg.InboxDir + "/part-")
	sort.Strings(files)
	msgs := map[int64][]float64{}
	for _, f := range files {
		blob, err := fs.ReadFile(f, p.ctx.Services.Node)
		if err != nil {
			return nil, err
		}
		r := library.NewPaddedReader(blob)
		for r.Next() {
			id, err := vertexID(r.Key())
			if err != nil {
				return nil, err
			}
			if PartitionOf(id, p.cfg.Partitions) != part {
				continue
			}
			v, err := msgValue(r.Value())
			if err != nil {
				return nil, err
			}
			msgs[id] = append(msgs[id], v)
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return msgs, nil
}

// inboxConfig is the inbox processor's payload.
type inboxConfig struct {
	Combine Combiner
}

// inboxProc is the receive half of the superstep barrier: it drains its
// shuffle partitions' grouped messages, applies the program's combiner
// fold once more across producer tasks (the map side already folded
// within each producer), and materialises the surviving messages for the
// next superstep's compute vertex, plus receive statistics for the
// driver's timeline span.
type inboxProc struct {
	ctx *runtime.Context
	cfg inboxConfig
}

func (p *inboxProc) Initialize(ctx *runtime.Context) error {
	p.ctx = ctx
	return plugin.Decode(ctx.Payload, &p.cfg)
}

func (p *inboxProc) Close() error { return nil }

func (p *inboxProc) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	rd, err := in["compute"].Reader()
	if err != nil {
		return err
	}
	g, ok := rd.(runtime.GroupedKVReader)
	if !ok {
		return fmt.Errorf("graph: inbox reader is %T, want GroupedKVReader", rd)
	}
	ow, err := kvWriter(out, "out")
	if err != nil {
		return err
	}
	fold := p.cfg.Combine.fold()
	var received, emitted int64
	for g.Next() {
		vals := g.Values()
		received += int64(len(vals))
		if fold == nil {
			for _, v := range vals {
				if err := ow.Write(g.Key(), v); err != nil {
					return err
				}
			}
			emitted += int64(len(vals))
			continue
		}
		acc, err := msgValue(vals[0])
		if err != nil {
			return err
		}
		for _, v := range vals[1:] {
			f, err := msgValue(v)
			if err != nil {
				return err
			}
			acc = fold(acc, f)
		}
		if err := ow.Write(g.Key(), msgBytes(acc)); err != nil {
			return err
		}
		emitted++
	}
	if err := g.Err(); err != nil {
		return err
	}
	p.ctx.Services.Counters.Add(ctrCombined, received-emitted)
	mw, err := kvWriter(out, "mstats")
	if err != nil {
		return err
	}
	if err := mw.Write([]byte("graph.received"), msgBytes(float64(received))); err != nil {
		return err
	}
	return mw.Write([]byte("graph.emitted"), msgBytes(float64(emitted)))
}

// kvWriter fetches a named output's writer as a runtime.KVWriter.
func kvWriter(out map[string]runtime.Output, name string) (runtime.KVWriter, error) {
	o, ok := out[name]
	if !ok {
		return nil, fmt.Errorf("graph: missing output %q", name)
	}
	wAny, err := o.Writer()
	if err != nil {
		return nil, err
	}
	w, ok := wAny.(runtime.KVWriter)
	if !ok {
		return nil, fmt.Errorf("graph: output %q writer is %T, want KVWriter", name, wAny)
	}
	return w, nil
}

// stateInitConfig configures the state-snapshot initializer.
type stateInitConfig struct {
	Dir        string
	Partitions int
	// PrevNodes[p], when known, is the node that computed partition p last
	// superstep — the one container whose registry holds the snapshot.
	PrevNodes []string
}

// stateInitializer assigns task p the splits of partition p's committed
// state file. The location hint is the single node that computed the
// partition last superstep when the driver knows it — a hint of all
// replica hosts would let the scheduler pick any of them, and only one
// has the warm registry — falling back to the blocks' replica hosts
// (plain DFS locality) at superstep 0.
type stateInitializer struct{}

func (stateInitializer) Run(ctx *runtime.InitializerContext) (*runtime.InitializerResult, error) {
	var cfg stateInitConfig
	if err := plugin.Decode(ctx.Payload, &cfg); err != nil {
		return nil, err
	}
	res := &runtime.InitializerResult{Parallelism: cfg.Partitions}
	for p := 0; p < cfg.Partitions; p++ {
		splits, err := ctx.FS.Splits(library.FinalPath(cfg.Dir, p), 1<<40)
		if err != nil {
			return nil, err
		}
		res.PerTaskPayload = append(res.PerTaskPayload, plugin.MustEncode(library.SplitAssignment{Splits: splits}))
		var hints []string
		if p < len(cfg.PrevNodes) && cfg.PrevNodes[p] != "" {
			hints = []string{cfg.PrevNodes[p]}
		} else if len(splits) > 0 {
			hints = splits[0].Hosts
		}
		res.LocationHints = append(res.LocationHints, hints)
	}
	return res, nil
}
