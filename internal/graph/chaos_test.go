package graph

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"tez/internal/am"
	"tez/internal/chaos"
	"tez/internal/platform"
)

// The graph engine's fault-tolerance gate, mirroring the golden chaos
// suite: PageRank under five seeded fault schedules must produce final
// ranks byte-identical to a fault-free run. Everything the engine does to
// earn this is deliberate — immutable per-superstep snapshots (a retried
// attempt rebuilds from durable state, never from a half-mutated cache),
// sorted-run combiner folds, and inbox-layout-independent delivery (the
// compute side reads every inbox file and filters by partition, so an
// auto-parallelism decision that differs under chaos cannot change what
// any vertex receives).

func chaosJob(name string) Job {
	return Job{
		Name: name,
		// Regenerated per run (deterministic seed) rather than shared: each
		// run must rebuild identical inputs from scratch, like a resubmitted
		// production job would.
		Graph:   Generate(800, 5, 21),
		Program: PageRankProgram,
		// A fixed 12-superstep run: convergence timing is itself part of
		// what must not drift under faults, but a fixed horizon makes the
		// comparison independent of epsilon-edge effects.
		ProgramConfig: PageRankConfig{Damping: 0.85, Epsilon: -1},
		MaxSupersteps: 12,
		Partitions:    4,
	}
}

func runChaosPageRank(t *testing.T, plane *chaos.Plane, amCfg am.Config, job Job) *Result {
	t.Helper()
	cfg := platform.Fast(8)
	cfg.Chaos = plane
	plat := platform.New(cfg)
	defer plat.Stop()
	sess := am.NewSession(plat, amCfg)
	defer sess.Close()
	res, err := Run(sess, plat, job)
	if err != nil {
		t.Fatalf("pagerank under chaos: %v", err)
	}
	return res
}

func graphTotalInjected(p *chaos.Plane) int64 {
	var n int64
	for _, v := range p.Injected() {
		n += v
	}
	return n
}

// TestChaosSuperstepDeterminism: five seeded schedules (fetch, task,
// launch and DFS-read faults, with rotating whole-node events) vs a
// fault-free baseline, compared by CanonicalBytes.
func TestChaosSuperstepDeterminism(t *testing.T) {
	baseline := runChaosPageRank(t, nil,
		am.Config{Name: "clean", ContainerIdleRelease: 2 * time.Second}, chaosJob("pr-clean"))
	want := baseline.CanonicalBytes()
	if len(want) != 16*800 {
		t.Fatalf("baseline canonical bytes = %d", len(want))
	}

	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := chaos.Spec{
				TransientFetchProb: 0.20,
				FetchDataLostProb:  0.03,
				LaunchFailProb:     0.05,
				TaskFaultProb:      0.05,
				DFSReadFaultProb:   0.02,
				StepSpacing:        3,
			}
			amCfg := am.Config{
				Name:                 "graph-chaos",
				MaxTaskAttempts:      8,
				ContainerIdleRelease: 2 * time.Second,
			}
			switch seed % 3 {
			case 0:
				spec.CrashNodes = 1 // Replication-1 on the Fast platform
			case 1:
				spec.DecommissionNodes = 1
			case 2:
				spec.SlowNodeCount = 1
				spec.SlowExecDelay = 2 * time.Millisecond
				spec.SlowFetchFactor = 3
				amCfg.Speculation = true
			}
			plane := chaos.New(seed, spec)
			res := runChaosPageRank(t, plane, amCfg, chaosJob(fmt.Sprintf("pr-seed%d", seed)))
			if got := res.CanonicalBytes(); !bytes.Equal(got, want) {
				diff := 0
				for i := range got {
					if i < len(want) && got[i] != want[i] {
						diff++
					}
				}
				t.Errorf("seed %d: final ranks diverge from fault-free run (%d differing bytes of %d)",
					seed, diff, len(want))
			}
			if graphTotalInjected(plane) == 0 {
				t.Errorf("seed %d injected no faults — schedule too weak to prove anything", seed)
			}
			t.Logf("seed %d: %d faults injected over %d supersteps",
				seed, graphTotalInjected(plane), res.Supersteps)
		})
	}
}

// TestChaosRetryDoesNotObserveMutatedCache targets the sharpest hazard of
// registry caching: a task fault after the snapshot for superstep k+1 was
// cached must not let the retry (or any later superstep) observe in-place
// mutation. High task-fault probability on a long run maximises retries
// that land on warm containers.
func TestChaosRetryDoesNotObserveMutatedCache(t *testing.T) {
	baseline := runChaosPageRank(t, nil,
		am.Config{Name: "clean2", ContainerIdleRelease: 2 * time.Second}, chaosJob("pr-clean2"))
	plane := chaos.New(99, chaos.Spec{TaskFaultProb: 0.25, StepSpacing: 2})
	res := runChaosPageRank(t, plane, am.Config{
		Name: "retry", MaxTaskAttempts: 10, ContainerIdleRelease: 2 * time.Second,
	}, chaosJob("pr-retry"))
	if !bytes.Equal(res.CanonicalBytes(), baseline.CanonicalBytes()) {
		t.Fatal("retried supersteps observed mutated cached state")
	}
	if graphTotalInjected(plane) == 0 {
		t.Fatal("no task faults injected")
	}
	var hits int64
	for _, s := range res.Stats {
		hits += s.RegistryHits
	}
	if hits == 0 {
		t.Log("warning: no registry hits under chaos — hazard path not exercised this run")
	}
}
