// Package platform composes the three simulated Hadoop substrates — the
// YARN-like resource manager, the HDFS-like filesystem and the shuffle
// service — behind one handle with a consistent node topology, so that a
// single FailNode takes out the machine's containers, its block replicas
// and its shuffle outputs at once, as a real machine failure would.
package platform

import (
	"time"

	"tez/internal/chaos"
	"tez/internal/cluster"
	"tez/internal/dfs"
	"tez/internal/security"
	"tez/internal/shuffle"
	"tez/internal/timeline"
)

// Config aggregates substrate configs. The node topology is defined once
// by Cluster and mirrored into the DFS and shuffle service.
type Config struct {
	Cluster cluster.Config
	DFS     dfs.Config
	Shuffle shuffle.Config
	// Chaos, when set, is bound to the topology at New and threaded into
	// every substrate; its scheduled node actions fire through the
	// platform's FailNode/Decommission so all layers see them together.
	Chaos *chaos.Plane
	// Timeline, when set, is threaded into the cluster and shuffle configs
	// so data-plane events (allocations, node events, fetch spans) land in
	// the same journal as the AM's — usually the journal also passed as
	// am.Config.Timeline. When Chaos is also set, injected faults are
	// journalled as ChaosFault events through the plane's Observer.
	Timeline *timeline.Journal
}

// Default returns a laptop-scale config with mild, visible overheads:
// container cold-starts, JVM-style warm-up, replication and shuffle
// transfer costs are all non-zero so the paper's structural effects
// (container reuse, sessions, avoiding DFS materialisation) show up in
// measurements at MB scale.
func Default(nodes int) Config {
	return Config{
		Cluster: cluster.Config{
			Nodes:                   nodes,
			NodesPerRack:            8,
			NodeResource:            cluster.Resource{MemoryMB: 8192, VCores: 8},
			ContainerLaunchOverhead: 2 * time.Millisecond,
			WarmupPenalty:           1 * time.Millisecond,
			ScheduleInterval:        200 * time.Microsecond,
			NodeLocalityDelay:       2,
			RackLocalityDelay:       2,
		},
		DFS: dfs.Config{
			BlockSize:              64 * 1024,
			Replication:            3,
			WriteDelayPerBlock:     200 * time.Microsecond,
			WriteDelayPerByte:      2 * time.Nanosecond,
			ReadDelayPerByteRemote: 1 * time.Nanosecond,
		},
		Shuffle: shuffle.Config{
			FetchBaseLatency:   50 * time.Microsecond,
			DelayPerByteLocal:  0,
			DelayPerByteRack:   1 * time.Nanosecond,
			DelayPerByteRemote: 2 * time.Nanosecond,
		},
	}
}

// Fast returns a config with all simulated overheads zeroed — used by unit
// tests that care about behaviour, not timing.
func Fast(nodes int) Config {
	return Config{
		Cluster: cluster.Config{
			Nodes:            nodes,
			NodesPerRack:     4,
			NodeResource:     cluster.Resource{MemoryMB: 8192, VCores: 8},
			ScheduleInterval: 100 * time.Microsecond,
		},
		DFS:     dfs.Config{BlockSize: 4 * 1024, Replication: 2},
		Shuffle: shuffle.Config{},
	}
}

// Platform is the assembled simulated Hadoop cluster.
type Platform struct {
	RM      *cluster.ResourceManager
	FS      *dfs.FileSystem
	Shuffle *shuffle.Service
	// Authority is non-nil on secure clusters (EnableSecurity).
	Authority *security.Authority
}

// EnableSecurity turns on token-based access control for intermediate
// data (§4.3): application masters must issue per-DAG tokens and tasks
// must present them on every shuffle operation.
func (p *Platform) EnableSecurity() *security.Authority {
	p.Authority = security.NewAuthority()
	p.Shuffle.SetAuthority(p.Authority)
	return p.Authority
}

// New builds and starts the platform.
func New(cfg Config) *Platform {
	if cfg.Chaos != nil {
		cfg.Cluster.Chaos = cfg.Chaos
		cfg.DFS.Chaos = cfg.Chaos
		cfg.Shuffle.Chaos = cfg.Chaos
	}
	if cfg.Timeline != nil {
		cfg.Cluster.Timeline = cfg.Timeline
		cfg.Shuffle.Timeline = cfg.Timeline
	}
	p := &Platform{
		RM:      cluster.New(cfg.Cluster),
		FS:      dfs.New(cfg.DFS),
		Shuffle: shuffle.New(cfg.Shuffle),
	}
	var nodes []string
	for _, id := range p.RM.Nodes() {
		rack := p.RM.RackOf(id)
		p.FS.AddNode(string(id), rack)
		p.Shuffle.AddNode(string(id), rack)
		nodes = append(nodes, string(id))
	}
	if cfg.Chaos != nil {
		cfg.Chaos.Bind(nodes)
		cfg.Chaos.FailNode = func(n string) { p.FailNode(cluster.NodeID(n)) }
		cfg.Chaos.DecommissionNode = func(n string) { p.Decommission(cluster.NodeID(n)) }
		if tl := cfg.Timeline; tl != nil {
			cfg.Chaos.Observer = func(kind, site string) {
				tl.Record(timeline.Event{Type: timeline.ChaosFault, Info: kind + " " + site})
			}
		}
	}
	return p
}

// FailNode simulates a whole-machine failure: containers are killed, block
// replicas dropped and shuffle outputs lost, then every AM is notified.
func (p *Platform) FailNode(id cluster.NodeID) {
	// Data services first so zombie tasks cannot re-register output there.
	p.FS.FailNode(string(id))
	p.Shuffle.FailNode(string(id))
	p.RM.FailNode(id)
}

// Decommission is the planned variant of FailNode.
func (p *Platform) Decommission(id cluster.NodeID) {
	p.FS.FailNode(string(id))
	p.Shuffle.FailNode(string(id))
	p.RM.DecommissionNode(id)
}

// Stop halts the platform's background loops.
func (p *Platform) Stop() { p.RM.Stop() }
