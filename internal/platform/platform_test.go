package platform

import (
	"errors"
	"testing"
	"time"

	"tez/internal/cluster"
	"tez/internal/shuffle"
)

func TestNodeTopologyMirrored(t *testing.T) {
	p := New(Fast(6))
	defer p.Stop()
	nodes := p.RM.Nodes()
	if len(nodes) != 6 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if p.FS.Rack(string(n)) != p.RM.RackOf(n) {
			t.Fatalf("rack mismatch for %s", n)
		}
	}
	if got := len(p.FS.LiveNodes()); got != 6 {
		t.Fatalf("dfs live nodes = %d", got)
	}
}

func TestFailNodePropagates(t *testing.T) {
	p := New(Fast(4))
	defer p.Stop()
	victim := p.RM.Nodes()[1]

	if err := p.FS.WriteFile("/f", string(victim), []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Shuffle output on the victim.
	id := shuffle.OutputID{DAG: "d", Vertex: "v", Task: 0}
	if err := p.Shuffle.Register(string(victim), id, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	// Container on the victim.
	app := p.RM.Submit("app")
	defer app.Unregister()
	app.Request(&cluster.ContainerRequest{
		Resource: cluster.Resource{MemoryMB: 1024, VCores: 1},
		Nodes:    []cluster.NodeID{victim},
	})
	var c *cluster.Container
	deadline := time.After(time.Second)
	for c == nil {
		select {
		case <-deadline:
			t.Fatal("no allocation")
		default:
		}
		if e, ok := app.Events().TryGet(); ok {
			if ae, ok := e.(cluster.AllocatedEvent); ok {
				c = ae.Container
			}
		} else {
			time.Sleep(time.Millisecond)
		}
	}

	p.FailNode(victim)

	if _, err := p.Shuffle.Fetch(id, 0, "node-000"); !errors.Is(err, shuffle.ErrDataLost) {
		t.Fatalf("shuffle fetch after node loss: %v", err)
	}
	select {
	case <-c.Killed():
	case <-time.After(time.Second):
		t.Fatal("container not killed")
	}
	// DFS replica dropped from the victim (file may survive via replicas).
	locs, err := p.FS.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	for _, hosts := range locs {
		for _, h := range hosts {
			if h == string(victim) {
				t.Fatal("victim still listed as replica")
			}
		}
	}
}

func TestDefaultConfigHasOverheads(t *testing.T) {
	cfg := Default(8)
	if cfg.Cluster.ContainerLaunchOverhead <= 0 || cfg.Cluster.WarmupPenalty <= 0 {
		t.Fatal("Default must charge container overheads")
	}
	if cfg.DFS.WriteDelayPerByte <= 0 {
		t.Fatal("Default must charge replication cost")
	}
	p := New(cfg)
	p.Stop()
}
