// Package fsm is a small generic transition-table engine for the AM's
// control-plane state machines, modeled on Hadoop's StateMachineFactory
// (which the paper's AM builds its DAG/vertex/task/attempt lifecycles on,
// §3.3–§4.1). A Spec declares every legal (state, event) pair up front —
// single-arc transitions with an optional side-effect Hook, or multi-arc
// transitions whose Select hook picks the destination from a declared arc
// set. Firing an undeclared pair never mutates state: it returns an
// *InvalidTransitionError and invokes the machine's OnInvalid handler, so
// a would-be silent drop-on-the-floor guard becomes a journaled,
// checkable invariant.
//
// Specs are immutable after Build and shared by every Machine instance;
// a Machine is just {spec, operand, current state} plus its observer
// hooks, so per-entity machines are cheap. The engine does no locking:
// like the rest of the AM control plane, machines are owned by a single
// dispatcher goroutine.
package fsm

import "fmt"

// Transition declares one row of the table: every legal way to leave
// From on event On. Exactly one of To (single-arc) or Arcs+Select
// (multi-arc) must be used.
type Transition[Op any, S comparable, E comparable] struct {
	From S
	On   E
	// To is the single-arc destination (self-loops are legal).
	To S
	// Arcs lists the destinations of a multi-arc transition; Select picks
	// one of them per firing.
	Arcs []S
	// Hook runs just before the state changes (single-arc only). It
	// receives the machine's operand and the payload passed to FireWith.
	Hook func(op Op, payload any)
	// Select picks the destination of a multi-arc transition; it may also
	// record derived facts on the payload (the MultipleArcTransition
	// contract). Required exactly when Arcs is set. Returning a state
	// outside Arcs is a programmer error and panics.
	Select func(op Op, payload any) S
}

// Spec is a machine definition: declare the exported fields, then call
// Build once. Build validates the table (duplicate pairs, transitions out
// of terminal states, unreachable states are all programmer errors and
// panic) and indexes it; the built Spec is immutable and shared by every
// Machine it creates.
type Spec[Op any, S comparable, E comparable] struct {
	Name        string
	Initial     S
	Terminal    []S
	Transitions []Transition[Op, S, E]
	// StateName / EventName label states and events in errors and table
	// dumps; they default to fmt.Sprint (so fmt.Stringer values render
	// their names).
	StateName func(S) string
	EventName func(E) string

	built    bool
	table    map[S]map[E]*Transition[Op, S, E]
	terminal map[S]bool
	states   []S // declaration order, Initial first
	events   []E // declaration order
}

// Build validates and indexes the spec, returning it for use. It panics
// on structural errors — a malformed table is a bug, not a runtime
// condition.
func (s *Spec[Op, S, E]) Build() *Spec[Op, S, E] {
	if s.built {
		return s
	}
	if s.StateName == nil {
		s.StateName = func(st S) string { return fmt.Sprint(st) }
	}
	if s.EventName == nil {
		s.EventName = func(ev E) string { return fmt.Sprint(ev) }
	}
	s.table = make(map[S]map[E]*Transition[Op, S, E])
	s.terminal = make(map[S]bool)
	for _, t := range s.Terminal {
		s.terminal[t] = true
	}
	seenState := map[S]bool{}
	addState := func(st S) {
		if !seenState[st] {
			seenState[st] = true
			s.states = append(s.states, st)
		}
	}
	addState(s.Initial)
	seenEvent := map[E]bool{}
	for i := range s.Transitions {
		t := &s.Transitions[i]
		if s.terminal[t.From] {
			panic(fmt.Sprintf("fsm: %s: transition out of terminal state %s", s.Name, s.StateName(t.From)))
		}
		if (len(t.Arcs) > 0) != (t.Select != nil) {
			panic(fmt.Sprintf("fsm: %s: %s/%s: Arcs and Select must be set together",
				s.Name, s.StateName(t.From), s.EventName(t.On)))
		}
		if len(t.Arcs) > 0 && t.Hook != nil {
			panic(fmt.Sprintf("fsm: %s: %s/%s: multi-arc transitions take Select, not Hook",
				s.Name, s.StateName(t.From), s.EventName(t.On)))
		}
		row := s.table[t.From]
		if row == nil {
			row = make(map[E]*Transition[Op, S, E])
			s.table[t.From] = row
		}
		if _, dup := row[t.On]; dup {
			panic(fmt.Sprintf("fsm: %s: duplicate transition %s/%s",
				s.Name, s.StateName(t.From), s.EventName(t.On)))
		}
		row[t.On] = t
		addState(t.From)
		if len(t.Arcs) > 0 {
			for _, a := range t.Arcs {
				addState(a)
			}
		} else {
			addState(t.To)
		}
		if !seenEvent[t.On] {
			seenEvent[t.On] = true
			s.events = append(s.events, t.On)
		}
	}
	for t := range s.terminal {
		addState(t)
	}
	s.built = true
	if err := s.Validate(); err != nil {
		panic(err.Error())
	}
	return s
}

// Validate checks the built table's graph invariants: every declared
// state must be reachable from Initial.
func (s *Spec[Op, S, E]) Validate() error {
	if !s.built {
		return fmt.Errorf("fsm: %s: Validate before Build", s.Name)
	}
	reach := map[S]bool{s.Initial: true}
	frontier := []S{s.Initial}
	for len(frontier) > 0 {
		st := frontier[0]
		frontier = frontier[1:]
		for _, t := range s.table[st] {
			dests := t.Arcs
			if len(dests) == 0 {
				dests = []S{t.To}
			}
			for _, d := range dests {
				if !reach[d] {
					reach[d] = true
					frontier = append(frontier, d)
				}
			}
		}
	}
	for _, st := range s.states {
		if !reach[st] {
			return fmt.Errorf("fsm: %s: state %s is unreachable from %s",
				s.Name, s.StateName(st), s.StateName(s.Initial))
		}
	}
	return nil
}

// States returns every declared state, Initial first, in declaration
// order.
func (s *Spec[Op, S, E]) States() []S { return append([]S(nil), s.states...) }

// Events returns every declared event type in declaration order.
func (s *Spec[Op, S, E]) Events() []E { return append([]E(nil), s.events...) }

// LegalEvents returns the events with a declared transition out of from.
func (s *Spec[Op, S, E]) LegalEvents(from S) []E {
	var out []E
	for _, ev := range s.events {
		if _, ok := s.table[from][ev]; ok {
			out = append(out, ev)
		}
	}
	return out
}

// IsTerminal reports whether st is a declared terminal (absorbing) state.
func (s *Spec[Op, S, E]) IsTerminal(st S) bool { return s.terminal[st] }

// InvalidTransitionError reports a fired (state, event) pair with no
// declared transition. The machine's state is guaranteed unchanged.
type InvalidTransitionError struct {
	Machine string
	State   string
	Event   string
}

func (e *InvalidTransitionError) Error() string {
	return fmt.Sprintf("fsm: %s: no transition from %s on %s", e.Machine, e.State, e.Event)
}

// Machine is one entity's live state, driven through its Spec's table.
// Not safe for concurrent use: a machine belongs to one dispatcher
// goroutine, like the AM state it models.
type Machine[Op any, S comparable, E comparable] struct {
	spec      *Spec[Op, S, E]
	op        Op
	state     S
	observer  func(op Op, from, to S, on E)
	onInvalid func(op Op, err *InvalidTransitionError)
}

// New returns a machine at the spec's Initial state.
func (s *Spec[Op, S, E]) New(op Op) *Machine[Op, S, E] {
	if !s.built {
		panic(fmt.Sprintf("fsm: %s: New before Build", s.Name))
	}
	return &Machine[Op, S, E]{spec: s, op: op, state: s.Initial}
}

// Observe installs f, called after every successful transition (from may
// equal to on self-loops). Returns the machine for chaining.
func (m *Machine[Op, S, E]) Observe(f func(op Op, from, to S, on E)) *Machine[Op, S, E] {
	m.observer = f
	return m
}

// OnInvalid installs f, called whenever a fired pair has no declared
// transition — the detection path for would-be silent guards.
func (m *Machine[Op, S, E]) OnInvalid(f func(op Op, err *InvalidTransitionError)) *Machine[Op, S, E] {
	m.onInvalid = f
	return m
}

// State returns the current state.
func (m *Machine[Op, S, E]) State() S { return m.state }

// In reports whether the current state is any of states.
func (m *Machine[Op, S, E]) In(states ...S) bool {
	for _, s := range states {
		if m.state == s {
			return true
		}
	}
	return false
}

// Terminal reports whether the machine has reached an absorbing state.
func (m *Machine[Op, S, E]) Terminal() bool { return m.spec.terminal[m.state] }

// Can reports whether on has a declared transition from the current
// state — the declarative replacement for ad-hoc state-field guards.
func (m *Machine[Op, S, E]) Can(on E) bool {
	_, ok := m.spec.table[m.state][on]
	return ok
}

// Fire drives the machine with an event that carries no payload.
func (m *Machine[Op, S, E]) Fire(on E) error { return m.FireWith(on, nil) }

// FireWith drives the machine: the declared transition's Hook or Select
// runs, then the state changes, then the observer fires. An undeclared
// pair changes nothing, invokes OnInvalid and returns the
// *InvalidTransitionError.
func (m *Machine[Op, S, E]) FireWith(on E, payload any) error {
	t, ok := m.spec.table[m.state][on]
	if !ok {
		err := &InvalidTransitionError{
			Machine: m.spec.Name,
			State:   m.spec.StateName(m.state),
			Event:   m.spec.EventName(on),
		}
		if m.onInvalid != nil {
			m.onInvalid(m.op, err)
		}
		return err
	}
	from := m.state
	to := t.To
	if t.Select != nil {
		to = t.Select(m.op, payload)
		legal := false
		for _, a := range t.Arcs {
			if a == to {
				legal = true
				break
			}
		}
		if !legal {
			panic(fmt.Sprintf("fsm: %s: Select for %s/%s returned undeclared arc %s",
				m.spec.Name, m.spec.StateName(from), m.spec.EventName(on), m.spec.StateName(to)))
		}
	} else if t.Hook != nil {
		t.Hook(m.op, payload)
	}
	m.state = to
	if m.observer != nil {
		m.observer(m.op, from, to, on)
	}
	return nil
}
