package fsm

import (
	"fmt"
	"strings"
)

// Table dumps: render a built Spec's transition table as a Mermaid
// stateDiagram-v2 or Graphviz DOT digraph, in declaration order so output
// is deterministic. Multi-arc transitions emit one edge per declared arc,
// the event label suffixed with "?" to mark the runtime choice.

// Mermaid renders the spec as a Mermaid stateDiagram-v2 block.
func (s *Spec[Op, S, E]) Mermaid() string {
	if !s.built {
		panic(fmt.Sprintf("fsm: %s: Mermaid before Build", s.Name))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "stateDiagram-v2\n")
	fmt.Fprintf(&b, "    [*] --> %s\n", s.StateName(s.Initial))
	for i := range s.Transitions {
		t := &s.Transitions[i]
		for _, d := range s.dests(t) {
			fmt.Fprintf(&b, "    %s --> %s: %s\n",
				s.StateName(t.From), s.StateName(d), s.edgeLabel(t))
		}
	}
	for _, st := range s.states {
		if s.terminal[st] {
			fmt.Fprintf(&b, "    %s --> [*]\n", s.StateName(st))
		}
	}
	return b.String()
}

// DOT renders the spec as a Graphviz digraph.
func (s *Spec[Op, S, E]) DOT() string {
	if !s.built {
		panic(fmt.Sprintf("fsm: %s: DOT before Build", s.Name))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", s.Name)
	fmt.Fprintf(&b, "  rankdir=LR;\n")
	fmt.Fprintf(&b, "  node [shape=box, fontname=\"monospace\"];\n")
	for _, st := range s.states {
		attrs := ""
		switch {
		case st == s.Initial:
			attrs = " [style=bold]"
		case s.terminal[st]:
			attrs = " [peripheries=2]"
		}
		fmt.Fprintf(&b, "  %q%s;\n", s.StateName(st), attrs)
	}
	for i := range s.Transitions {
		t := &s.Transitions[i]
		for _, d := range s.dests(t) {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
				s.StateName(t.From), s.StateName(d), s.edgeLabel(t))
		}
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

func (s *Spec[Op, S, E]) dests(t *Transition[Op, S, E]) []S {
	if len(t.Arcs) > 0 {
		return t.Arcs
	}
	return []S{t.To}
}

func (s *Spec[Op, S, E]) edgeLabel(t *Transition[Op, S, E]) string {
	label := s.EventName(t.On)
	if len(t.Arcs) > 0 {
		label += "?"
	}
	return label
}
