package fsm

import (
	"errors"
	"strings"
	"testing"
)

// A toy lifecycle for engine tests: a door that can be opened, closed,
// slammed (multi-arc: breaks if already stressed) and demolished.
type door struct {
	stressed bool
	log      []string
}

const (
	closed = iota
	open
	broken
	gone
)

const (
	evOpen = iota
	evClose
	evSlam
	evDemolish
)

var stateNames = map[int]string{closed: "CLOSED", open: "OPEN", broken: "BROKEN", gone: "GONE"}
var eventNames = map[int]string{evOpen: "OPEN", evClose: "CLOSE", evSlam: "SLAM", evDemolish: "DEMOLISH"}

func doorSpec() *Spec[*door, int, int] {
	return (&Spec[*door, int, int]{
		Name:      "door",
		Initial:   closed,
		Terminal:  []int{gone},
		StateName: func(s int) string { return stateNames[s] },
		EventName: func(e int) string { return eventNames[e] },
		Transitions: []Transition[*door, int, int]{
			{From: closed, On: evOpen, To: open, Hook: func(d *door, _ any) { d.log = append(d.log, "hook") }},
			{From: open, On: evClose, To: closed},
			{From: open, On: evSlam, Arcs: []int{closed, broken}, Select: func(d *door, _ any) int {
				if d.stressed {
					return broken
				}
				d.stressed = true
				return closed
			}},
			{From: closed, On: evDemolish, To: gone},
			{From: open, On: evDemolish, To: gone},
			{From: broken, On: evDemolish, To: gone},
		},
	}).Build()
}

func TestSingleArcHookAndObserver(t *testing.T) {
	d := &door{}
	var seen []string
	m := doorSpec().New(d).Observe(func(d *door, from, to, on int) {
		d.log = append(d.log, "observe")
		seen = append(seen, stateNames[from]+"->"+stateNames[to])
	})
	if m.State() != closed || m.Terminal() {
		t.Fatalf("initial state = %v terminal=%v", m.State(), m.Terminal())
	}
	if !m.Can(evOpen) || m.Can(evClose) {
		t.Fatal("Can disagrees with the table")
	}
	if err := m.Fire(evOpen); err != nil {
		t.Fatal(err)
	}
	// Hook runs before the observer.
	if strings.Join(d.log, ",") != "hook,observe" {
		t.Fatalf("hook/observer order = %v", d.log)
	}
	if len(seen) != 1 || seen[0] != "CLOSED->OPEN" {
		t.Fatalf("observer saw %v", seen)
	}
}

func TestMultiArcSelect(t *testing.T) {
	d := &door{}
	m := doorSpec().New(d)
	m.Fire(evOpen)
	if err := m.Fire(evSlam); err != nil || m.State() != closed {
		t.Fatalf("first slam: %v state=%v", err, m.State())
	}
	m.Fire(evOpen)
	if err := m.Fire(evSlam); err != nil || m.State() != broken {
		t.Fatalf("second slam: %v state=%v", err, m.State())
	}
}

func TestInvalidTransitionDoesNotMutate(t *testing.T) {
	d := &door{}
	var invalid []*InvalidTransitionError
	m := doorSpec().New(d).OnInvalid(func(_ *door, err *InvalidTransitionError) {
		invalid = append(invalid, err)
	})
	err := m.Fire(evClose) // closed has no CLOSE transition
	if err == nil {
		t.Fatal("illegal event fired without error")
	}
	var ite *InvalidTransitionError
	if !errors.As(err, &ite) {
		t.Fatalf("error type = %T", err)
	}
	if ite.Machine != "door" || ite.State != "CLOSED" || ite.Event != "CLOSE" {
		t.Fatalf("error fields = %+v", ite)
	}
	if m.State() != closed {
		t.Fatal("invalid transition mutated state")
	}
	if len(invalid) != 1 {
		t.Fatalf("OnInvalid fired %d times", len(invalid))
	}
}

func TestTerminalStatesAbsorb(t *testing.T) {
	m := doorSpec().New(&door{})
	m.Fire(evDemolish)
	if !m.Terminal() {
		t.Fatal("GONE not terminal")
	}
	for ev := range eventNames {
		if err := m.Fire(ev); err == nil || m.State() != gone {
			t.Fatalf("terminal state accepted event %v (state now %v)", eventNames[ev], m.State())
		}
	}
}

func TestSpecIntrospection(t *testing.T) {
	s := doorSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	states := s.States()
	if len(states) != 4 || states[0] != closed {
		t.Fatalf("States() = %v", states)
	}
	if got := len(s.Events()); got != 4 {
		t.Fatalf("Events() = %d", got)
	}
	legal := s.LegalEvents(open)
	if len(legal) != 3 { // CLOSE, SLAM, DEMOLISH
		t.Fatalf("LegalEvents(open) = %v", legal)
	}
	if !s.IsTerminal(gone) || s.IsTerminal(open) {
		t.Fatal("IsTerminal disagrees with declaration")
	}
}

func TestBuildPanics(t *testing.T) {
	expectPanic := func(name string, spec *Spec[*door, int, int]) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Build did not panic", name)
			}
		}()
		spec.Build()
	}
	expectPanic("duplicate pair", &Spec[*door, int, int]{
		Name: "dup", Initial: closed,
		Transitions: []Transition[*door, int, int]{
			{From: closed, On: evOpen, To: open},
			{From: closed, On: evOpen, To: broken},
		},
	})
	expectPanic("terminal with outgoing arc", &Spec[*door, int, int]{
		Name: "term", Initial: closed, Terminal: []int{open},
		Transitions: []Transition[*door, int, int]{
			{From: closed, On: evOpen, To: open},
			{From: open, On: evClose, To: closed},
		},
	})
	expectPanic("unreachable state", &Spec[*door, int, int]{
		Name: "unreach", Initial: closed, Terminal: []int{gone},
		Transitions: []Transition[*door, int, int]{
			{From: closed, On: evOpen, To: open},
			{From: broken, On: evDemolish, To: gone},
		},
	})
	expectPanic("arcs without select", &Spec[*door, int, int]{
		Name: "arcs", Initial: closed,
		Transitions: []Transition[*door, int, int]{
			{From: closed, On: evSlam, Arcs: []int{open, broken}},
		},
	})
}

func TestDumpFormats(t *testing.T) {
	s := doorSpec()
	mmd := s.Mermaid()
	for _, want := range []string{
		"stateDiagram-v2",
		"[*] --> CLOSED",
		"CLOSED --> OPEN: OPEN",
		"OPEN --> BROKEN: SLAM?", // multi-arc marked
		"GONE --> [*]",
	} {
		if !strings.Contains(mmd, want) {
			t.Fatalf("Mermaid missing %q:\n%s", want, mmd)
		}
	}
	dot := s.DOT()
	for _, want := range []string{
		`digraph "door"`,
		`"CLOSED" [style=bold]`,
		`"GONE" [peripheries=2]`,
		`"OPEN" -> "CLOSED" [label="SLAM?"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if s.Mermaid() != mmd || s.DOT() != dot {
		t.Fatal("dump output is not deterministic")
	}
}
