package bench

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/hive"
	"tez/internal/mapreduce"
	"tez/internal/platform"
	"tez/internal/relop"
)

// tiny finishes each figure in well under a second for unit testing.
var tiny = Scale{
	Name:       "tiny",
	TPCDSSales: 600, TPCHOrders: 150,
	NodesF8: 4, NodesF9: 4,
	PigRows:      400,
	KMeansPoints: 300, KMeansIters: []int{2},
	SparkUsers: 3, SparkRows: 300, SparkScales: []int{1},
	SparkExecs: 4, SparkClusterN: 2,
}

func requireRows(t *testing.T, rep *Report, minRows int) {
	t.Helper()
	if rep == nil || len(rep.Rows) < minRows {
		t.Fatalf("report %+v has too few rows", rep)
	}
	if s := rep.String(); !strings.Contains(s, rep.Figure) {
		t.Fatal("render missing figure tag")
	}
}

func cell(t *testing.T, rep *Report, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(rep.Rows[r][c], "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", r, c, rep.Rows[r][c], err)
	}
	return v
}

func TestHiveTPCDSReport(t *testing.T) {
	rep, err := HiveTPCDS(tiny)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, rep, len(tpcdsQueries))
	// Tez should win on the large majority of queries.
	wins := 0
	for i := range rep.Rows {
		if cell(t, rep, i, 3) > 1.0 {
			wins++
		}
	}
	if wins < len(rep.Rows)-1 {
		t.Fatalf("Tez won only %d/%d TPC-DS queries:\n%s", wins, len(rep.Rows), rep)
	}
}

func TestHiveTPCHReport(t *testing.T) {
	rep, err := HiveTPCH(tiny)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, rep, len(tpchQueries))
	wins := 0
	for i := range rep.Rows {
		if cell(t, rep, i, 3) > 1.0 {
			wins++
		}
	}
	if wins < len(rep.Rows)-1 {
		t.Fatalf("Tez won only %d/%d TPC-H queries:\n%s", wins, len(rep.Rows), rep)
	}
}

func TestPigProductionReport(t *testing.T) {
	rep, err := PigProduction(tiny)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, rep, len(pigWorkloads))
}

func TestKMeansReport(t *testing.T) {
	rep, err := KMeansIterations(tiny)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, rep, 1)
	// The shared session must beat per-iteration AMs.
	if cell(t, rep, 0, 3) <= 1.0 {
		t.Fatalf("session mode did not win:\n%s", rep)
	}
}

func TestSparkReports(t *testing.T) {
	tl, err := SparkTimelines(tiny)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tl, 4)
	lat, err := SparkLatency(tiny)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, lat, 1)
}

func TestAblationSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	reps, err := Ablations(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 9 {
		t.Fatalf("ablations = %d", len(reps))
	}
	for _, r := range reps {
		requireRows(t, r, 2)
	}
}

// TestShuffleSortAblation is the arena acceptance gate: the pointer sort
// must at least halve allocations per record and not be slower than the
// boxed baseline it replaced.
func TestShuffleSortAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := ShuffleSortResults(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]ShuffleBenchResult{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	boxed, arena := byVariant["serial-boxed"], byVariant["arena"]
	if boxed.Records == 0 || arena.Records == 0 {
		t.Fatalf("missing variants in %+v", rows)
	}
	if arena.AllocsPerRecord*2 > boxed.AllocsPerRecord {
		t.Fatalf("arena allocs/record %.3f not ≥2x better than boxed %.3f",
			arena.AllocsPerRecord, boxed.AllocsPerRecord)
	}
	if arena.NsPerOp >= boxed.NsPerOp {
		t.Fatalf("arena ns/op %d not below boxed %d", arena.NsPerOp, boxed.NsPerOp)
	}
	rep, err := AblationShuffleSort(tiny)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, rep, 4)
}

// TestShuffleCodecAblation is the end-to-end codec acceptance: flate must
// round-trip byte-identically through Register→Fetch→merge on wordcount,
// Hive and Pig workloads while moving fewer wire bytes than raw.
func TestShuffleCodecAblation(t *testing.T) {
	rows, err := ShuffleCodecResults(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s under %s diverged from codec=none", r.Workload, r.Codec)
		}
		if r.BytesRaw <= 0 {
			t.Errorf("%s under %s: no raw shuffle bytes recorded", r.Workload, r.Codec)
		}
		switch r.Codec {
		case "none":
			if r.BytesWire != r.BytesRaw {
				t.Errorf("%s: codec=none wire %d != raw %d", r.Workload, r.BytesWire, r.BytesRaw)
			}
		case "flate":
			if r.BytesWire >= r.BytesRaw {
				t.Errorf("%s: flate wire %d not below raw %d", r.Workload, r.BytesWire, r.BytesRaw)
			}
		}
	}
}

// TestShufflePipelineAblation is the pipelined-publication acceptance:
// barrier and pipelined runs of the same wordcount DAG must commit
// byte-identical output at every spill budget, and past one spill per
// producer the consumers must actually see a multi-increment stream.
func TestShufflePipelineAblation(t *testing.T) {
	rows, err := ShufflePipelineResults(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byKey := map[string]ShufflePipelineResult{}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s at %d spills diverged from barrier", r.Mode, r.Spills)
		}
		byKey[fmt.Sprintf("%s-%d", r.Mode, r.Spills)] = r
	}
	for _, spills := range []int{4, 16} {
		p, b := byKey[fmt.Sprintf("pipelined-%d", spills)], byKey[fmt.Sprintf("barrier-%d", spills)]
		if p.Increments <= b.Increments {
			t.Errorf("%d spills: pipelined stored %d increments, barrier %d — no incremental publication",
				spills, p.Increments, b.Increments)
		}
	}
}

// TestShufflePipelinedWorkloadsIdentity runs wordcount, a Hive query and a
// Pig script end to end with pipelined shuffle publication on — through
// the AM knob, not a per-edge payload — and demands answers identical to
// the barrier runs.
func TestShufflePipelinedWorkloadsIdentity(t *testing.T) {
	plat := platform.New(platform.Default(6))
	defer plat.Stop()
	if err := writeWords(plat, "/bench/pipeid/words", tiny.PigRows); err != nil {
		t.Fatal(err)
	}
	td, err := data.GenTPCDS(plat.FS, tiny.TPCDSSales, 21)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := data.GenZipfPairs(plat.FS, "pipeid_a", tiny.PigRows, 200, 1.3, 22)
	if err != nil {
		t.Fatal(err)
	}
	workloads := []struct {
		name string
		run  func(sess *am.Session, out string) (am.DAGResult, error)
		read func(out string) (any, error)
	}{
		{"wordcount", func(sess *am.Session, out string) (am.DAGResult, error) {
			return mapreduce.RunOnTez(sess, mapreduce.JobConf{
				Name: "wc", Map: "bench.tokenize", Reduce: "bench.count",
				InputPaths: []string{"/bench/pipeid/words"}, OutputPath: out,
			})
		}, func(out string) (any, error) { return readCountsDFS(plat, out) }},
		{"hive-q7", func(sess *am.Session, out string) (am.DAGResult, error) {
			eng := hive.NewEngine()
			eng.Exec = relop.Config{DefaultPartitions: 8}
			eng.Register(td.Tables()...)
			return eng.RunTez(sess, "pipeid-q7", tpcdsQueries[2].sql, out)
		}, func(out string) (any, error) { return relop.ReadStored(plat.FS, out) }},
		{"pig-group_agg", func(sess *am.Session, out string) (am.DAGResult, error) {
			return pigWorkloads[0].build(t1, nil, out).RunTez(sess)
		}, func(out string) (any, error) { return relop.ReadStored(plat.FS, out) }},
	}
	for _, w := range workloads {
		answers := map[bool]any{}
		for _, pipelined := range []bool{false, true} {
			cfg := am.Config{Name: fmt.Sprintf("pipeid-%s-%v", w.name, pipelined)}
			if pipelined {
				cfg.ShufflePipelined = true
				cfg.ShuffleSortMB = 1
			}
			sess := am.NewSession(plat, cfg)
			out := fmt.Sprintf("/bench/pipeid/%s-%v", w.name, pipelined)
			res, err := w.run(sess, out)
			sess.Close()
			if err != nil {
				t.Fatalf("%s pipelined=%v: %v", w.name, pipelined, err)
			}
			if res.Status != am.DAGSucceeded {
				t.Fatalf("%s pipelined=%v: %v", w.name, pipelined, res.Status)
			}
			answers[pipelined], err = w.read(out)
			if err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(answers[true], answers[false]) {
			t.Errorf("%s diverged under pipelined shuffle", w.name)
		}
	}
}

// TestRelopVectorizationAblation is the columnar acceptance gate: every
// kernel must beat its row-at-a-time twin (with at least 2x fewer
// allocations on the scan-shaped kernels), and all three end-to-end
// engine variants must commit byte-identical output.
func TestRelopVectorizationAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	micro, err := RelopMicroResults(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byKernel := map[string]map[string]RelopMicroResult{}
	for _, r := range micro {
		if byKernel[r.Kernel] == nil {
			byKernel[r.Kernel] = map[string]RelopMicroResult{}
		}
		byKernel[r.Kernel][r.Variant] = r
	}
	for _, kernel := range []string{"filter", "project", "hashjoin", "aggregate"} {
		rowRes, colRes := byKernel[kernel]["row"], byKernel[kernel]["columnar"]
		if rowRes.Records == 0 || colRes.Records == 0 {
			t.Fatalf("missing variants for %s in %+v", kernel, micro)
		}
		if colRes.NsPerOp >= rowRes.NsPerOp {
			t.Errorf("%s: columnar ns/op %d not below row %d", kernel, colRes.NsPerOp, rowRes.NsPerOp)
		}
		if kernel != "hashjoin" && colRes.AllocsPerOp*2 > rowRes.AllocsPerOp {
			t.Errorf("%s: columnar allocs/op %d not ≥2x better than row %d",
				kernel, colRes.AllocsPerOp, rowRes.AllocsPerOp)
		}
	}
	requireRows(t, RelopMicroReport(micro), 8)

	e2e, err := RelopE2EResults(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2e) != 9 {
		t.Fatalf("e2e rows = %d, want 9", len(e2e))
	}
	for _, r := range e2e {
		if !r.Identical {
			t.Errorf("%s under %s diverged from the row engine", r.Workload, r.Variant)
		}
	}
	requireRows(t, RelopE2EReport(e2e), 9)
}

func TestReportRendering(t *testing.T) {
	r := &Report{Figure: "F", Title: "T", Headers: []string{"a", "bb"}}
	r.AddRow("x", "y")
	r.Notes = []string{"n"}
	s := r.String()
	for _, want := range []string{"F", "T", "a", "bb", "x", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
	if ms(1500*time.Microsecond) != "1.5" {
		t.Fatal("ms formatting")
	}
	if speedup(2*time.Second, time.Second) != "2.00x" {
		t.Fatal("speedup formatting")
	}
}

func TestChaosRobustnessReport(t *testing.T) {
	rep, err := ChaosRobustness(tiny)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, rep, 8) // baseline + 7 scenarios
	for _, row := range rep.Rows[1:] {
		if row[2] != "identical" {
			t.Fatalf("scenario %s diverged from the fault-free run:\n%s", row[0], rep)
		}
	}
}
