package bench

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/event"
	"tez/internal/hive"
	"tez/internal/library"
	"tez/internal/mapreduce"
	"tez/internal/metrics"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/relop"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

// ShuffleBenchResult is one row of the map-side sort ablation, shaped for
// BENCH_shuffle.json: the standard go-bench triple plus per-record
// normalisations (the shuffle sorts record streams, so per-record cost is
// the number that transfers across input sizes).
type ShuffleBenchResult struct {
	Variant         string  `json:"variant"`
	Records         int     `json:"records"`
	NsPerOp         int64   `json:"ns_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	NsPerRecord     float64 `json:"ns_per_record"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// shuffleRecords sizes the sort ablation input; the acceptance bar is a
// ≥100k-record shuffle at the default (small) benchmark scale.
func shuffleRecords(sc Scale) int {
	switch sc.Name {
	case "full":
		return 400_000
	case "tiny":
		return 12_000
	default:
		return 120_000
	}
}

// benchKeys builds the key set once: word-shaped keys over a modest
// vocabulary, so sorting does real comparison work and flate finds real
// redundancy, without per-record fmt/alloc noise inside the timed loop.
func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("word-%04d", i))
	}
	return keys
}

// runOrderedProducer drives the real OrderedPartitionedKVOutput once:
// write every record, sort/spill/merge, register with a throwaway shuffle
// service. This is exactly the map-side data plane a task attempt runs.
func runOrderedProducer(cfg *library.OrderedPartitionedConfig, parts int, keys [][]byte, records int) error {
	sh := shuffle.New(shuffle.Config{})
	sh.AddNode("n0", "r0")
	var payload []byte
	if cfg != nil {
		payload = plugin.MustEncode(*cfg)
	}
	out := &library.OrderedPartitionedKVOutput{}
	ctx := &runtime.Context{
		Meta:          runtime.Meta{DAG: "bench", Vertex: "map", Task: 0, Attempt: 0},
		Services:      runtime.Services{Shuffle: sh, Node: "n0", Counters: metrics.NewCounters()},
		Payload:       payload,
		Name:          "red",
		PhysicalCount: parts,
		Emit:          func(event.Event) {},
		Stop:          make(chan struct{}),
	}
	if err := out.Initialize(ctx); err != nil {
		return err
	}
	wAny, err := out.Writer()
	if err != nil {
		return err
	}
	w := wAny.(runtime.KVWriter)
	one := []byte("1")
	for i := 0; i < records; i++ {
		if err := w.Write(keys[i%len(keys)], one); err != nil {
			return err
		}
	}
	_, err = out.Close()
	return err
}

// runBoxedProducer is the pre-arena baseline the tentpole replaced: one
// boxed pair per record (two byte-slice copies plus the slice headers),
// sort.Slice over the boxed pairs, then per-partition encode. Kept here,
// re-implemented, so the ablation always measures the old representation
// against whatever the library currently does.
func runBoxedProducer(parts int, keys [][]byte, records int) error {
	type boxedPair struct {
		part int
		k, v []byte
	}
	hp := library.HashPartitioner{}
	one := []byte("1")
	pairs := make([]boxedPair, 0)
	for i := 0; i < records; i++ {
		k := keys[i%len(keys)]
		pairs = append(pairs, boxedPair{
			part: hp.Partition(k, parts),
			k:    append([]byte(nil), k...),
			v:    append([]byte(nil), one...),
		})
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.part != b.part {
			return a.part < b.part
		}
		if c := string(a.k); c != string(b.k) {
			return c < string(b.k)
		}
		return string(a.v) < string(b.v)
	})
	sh := shuffle.New(shuffle.Config{})
	sh.AddNode("n0", "r0")
	enc := make([][]byte, parts)
	i := 0
	for p := 0; p < parts; p++ {
		var buf []byte
		for i < len(pairs) && pairs[i].part == p {
			buf = library.AppendRecord(buf, pairs[i].k, pairs[i].v)
			i++
		}
		enc[p] = buf
	}
	return sh.Register("n0", shuffle.OutputID{DAG: "bench", Vertex: "map", Name: "red", Task: 0, Attempt: 0}, enc)
}

// ShuffleSortResults measures the four map-side variants with
// testing.Benchmark and returns machine-readable rows.
func ShuffleSortResults(sc Scale) ([]ShuffleBenchResult, error) {
	const parts = 8
	records := shuffleRecords(sc)
	keys := benchKeys(997)
	spillBudget := records // ~records bytes is ~1/12 of the raw data: several spills
	variants := []struct {
		name string
		run  func() error
	}{
		{"serial-boxed", func() error { return runBoxedProducer(parts, keys, records) }},
		{"arena", func() error { return runOrderedProducer(nil, parts, keys, records) }},
		{"arena-spill", func() error {
			return runOrderedProducer(&library.OrderedPartitionedConfig{SortBytes: int64(spillBudget)}, parts, keys, records)
		}},
		{"arena-flate", func() error {
			return runOrderedProducer(&library.OrderedPartitionedConfig{Codec: "flate"}, parts, keys, records)
		}},
	}
	var out []ShuffleBenchResult
	for _, v := range variants {
		var failure error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := v.run(); err != nil {
					failure = err
					b.FailNow()
				}
			}
		})
		if failure != nil {
			return nil, fmt.Errorf("%s: %w", v.name, failure)
		}
		out = append(out, ShuffleBenchResult{
			Variant:         v.name,
			Records:         records,
			NsPerOp:         res.NsPerOp(),
			BytesPerOp:      res.AllocedBytesPerOp(),
			AllocsPerOp:     res.AllocsPerOp(),
			NsPerRecord:     float64(res.NsPerOp()) / float64(records),
			AllocsPerRecord: float64(res.AllocsPerOp()) / float64(records),
		})
	}
	return out, nil
}

// AblationShuffleSort renders the map-side sort ablation: boxed pairs vs
// the arena pointer sort, with spilling and wire compression ablated in.
func AblationShuffleSort(sc Scale) (*Report, error) {
	rows, err := ShuffleSortResults(sc)
	if err != nil {
		return nil, err
	}
	return ShuffleSortReport(rows), nil
}

// ShuffleSortReport renders precomputed sort-ablation rows.
func ShuffleSortReport(rows []ShuffleBenchResult) *Report {
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Shuffle sort data plane: boxed pairs vs arena pointer sort",
		Headers: []string{"variant", "ns/op", "B/op", "allocs/op", "allocs/record", "ns/record"},
		Notes: []string{
			fmt.Sprintf("%d records, 8 partitions per op; arena-spill runs a constrained sort budget, arena-flate compresses the wire blocks", rows[0].Records),
		},
	}
	for _, r := range rows {
		rep.AddRow(r.Variant,
			fmt.Sprintf("%d", r.NsPerOp),
			fmt.Sprintf("%d", r.BytesPerOp),
			fmt.Sprintf("%d", r.AllocsPerOp),
			fmt.Sprintf("%.3f", r.AllocsPerRecord),
			fmt.Sprintf("%.1f", r.NsPerRecord))
	}
	return rep
}

// ShuffleCodecResult is one row of the end-to-end codec ablation for
// BENCH_shuffle.json.
type ShuffleCodecResult struct {
	Workload  string  `json:"workload"`
	Codec     string  `json:"codec"`
	Millis    float64 `json:"ms"`
	BytesWire int64   `json:"shuffle_bytes_wire"`
	BytesRaw  int64   `json:"shuffle_bytes_raw"`
	WirePct   float64 `json:"wire_pct"`
	Identical bool    `json:"identical_to_none"`
}

// ShuffleCodecResults runs wordcount, a Hive query and a Pig script end to
// end under codec none and flate, asserting the flate runs produce
// byte-identical answers while moving fewer bytes over the simulated wire.
func ShuffleCodecResults(sc Scale) ([]ShuffleCodecResult, error) {
	plat := platform.New(platform.Default(6))
	defer plat.Stop()
	if err := writeWords(plat, "/bench/codec/words", sc.PigRows); err != nil {
		return nil, err
	}
	td, err := data.GenTPCDS(plat.FS, sc.TPCDSSales, 21)
	if err != nil {
		return nil, err
	}
	t1, err := data.GenZipfPairs(plat.FS, "codec_a", sc.PigRows, 200, 1.3, 22)
	if err != nil {
		return nil, err
	}

	type outcome struct {
		res    am.DAGResult
		answer any
		dur    time.Duration
	}
	workloads := []struct {
		name string
		run  func(sess *am.Session, out string) (am.DAGResult, error)
		read func(out string) (any, error)
	}{
		{"wordcount", func(sess *am.Session, out string) (am.DAGResult, error) {
			return mapreduce.RunOnTez(sess, mapreduce.JobConf{
				Name: "wc", Map: "bench.tokenize", Reduce: "bench.count",
				InputPaths: []string{"/bench/codec/words"}, OutputPath: out,
			})
		}, func(out string) (any, error) { return readCountsDFS(plat, out) }},
		{"hive-q7", func(sess *am.Session, out string) (am.DAGResult, error) {
			eng := hive.NewEngine()
			eng.Exec = relop.Config{DefaultPartitions: 8}
			eng.Register(td.Tables()...)
			return eng.RunTez(sess, "codec-q7", tpcdsQueries[2].sql, out)
		}, func(out string) (any, error) { return relop.ReadStored(plat.FS, out) }},
		{"pig-group_agg", func(sess *am.Session, out string) (am.DAGResult, error) {
			return pigWorkloads[0].build(t1, nil, out).RunTez(sess)
		}, func(out string) (any, error) { return relop.ReadStored(plat.FS, out) }},
	}

	var rows []ShuffleCodecResult
	for _, w := range workloads {
		byCodec := map[string]outcome{}
		for _, codec := range []string{"none", "flate"} {
			sess := am.NewSession(plat, am.Config{
				Name:         fmt.Sprintf("codec-%s-%s", w.name, codec),
				ShuffleCodec: codec,
			})
			out := fmt.Sprintf("/bench/codec/%s-%s", w.name, codec)
			start := time.Now()
			res, err := w.run(sess, out)
			dur := time.Since(start)
			sess.Close()
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", w.name, codec, err)
			}
			if res.Status != am.DAGSucceeded {
				return nil, fmt.Errorf("%s under %s: %v", w.name, codec, res.Status)
			}
			answer, err := w.read(out)
			if err != nil {
				return nil, err
			}
			byCodec[codec] = outcome{res: res, answer: answer, dur: dur}
		}
		for _, codec := range []string{"none", "flate"} {
			o := byCodec[codec]
			wire := o.res.Counters.Get("SHUFFLE_BYTES_WIRE")
			raw := o.res.Counters.Get("SHUFFLE_BYTES_RAW")
			row := ShuffleCodecResult{
				Workload:  w.name,
				Codec:     codec,
				Millis:    float64(o.dur.Microseconds()) / 1000,
				BytesWire: wire,
				BytesRaw:  raw,
				Identical: reflect.DeepEqual(o.answer, byCodec["none"].answer),
			}
			if raw > 0 {
				row.WirePct = 100 * float64(wire) / float64(raw)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AblationShuffleCodec renders the wire-compression ablation.
func AblationShuffleCodec(sc Scale) (*Report, error) {
	rows, err := ShuffleCodecResults(sc)
	if err != nil {
		return nil, err
	}
	return ShuffleCodecReport(rows), nil
}

// ShuffleCodecReport renders precomputed codec-ablation rows.
func ShuffleCodecReport(rows []ShuffleCodecResult) *Report {
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Shuffle wire codec: none vs flate, end to end",
		Headers: []string{"workload", "codec", "time (ms)", "wire B", "raw B", "wire %", "result"},
		Notes: []string{
			"result compares the committed output against the codec=none run of the same workload",
		},
	}
	for _, r := range rows {
		verdict := "identical"
		if !r.Identical {
			verdict = "DIVERGED"
		}
		rep.AddRow(r.Workload, r.Codec, fmt.Sprintf("%.1f", r.Millis),
			fmt.Sprintf("%d", r.BytesWire), fmt.Sprintf("%d", r.BytesRaw),
			fmt.Sprintf("%.1f", r.WirePct), verdict)
	}
	return rep
}
