package bench

import (
	"fmt"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/pig"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

// pigWorkload is one ETL pipeline of the Figure 10 production mix. Each
// builder produces a multi-stage script over the shared inputs.
type pigWorkload struct {
	name  string
	build func(t1, t2 *relop.Table, out string) *pig.Script
}

// The mix mirrors §6.3: combinations of group by, union, distinct, join,
// order by, multi-output — the operations Yahoo's production scripts used.
var pigWorkloads = []pigWorkload{
	{"group_agg", func(t1, _ *relop.Table, out string) *pig.Script {
		s := pig.NewScript("group_agg")
		a := s.Load(t1)
		g := a.GroupBy([]*relop.Expr{a.Col("k")}, []string{"k"},
			[]relop.AggDef{{Func: "count", Name: "n"}, {Func: "sum", Arg: a.Col("v"), Name: "s"}})
		s.Store(g, out)
		return s
	}},
	{"join_group", func(t1, t2 *relop.Table, out string) *pig.Script {
		s := pig.NewScript("join_group")
		a := s.Load(t1)
		b := s.Load(t2)
		j := a.Join(b, []*relop.Expr{a.Col("k")}, []*relop.Expr{b.Col("k")})
		g := j.GroupBy([]*relop.Expr{relop.Col(0)}, []string{"k"},
			[]relop.AggDef{{Func: "count", Name: "pairs"}})
		s.Store(g, out)
		return s
	}},
	{"union_distinct", func(t1, t2 *relop.Table, out string) *pig.Script {
		s := pig.NewScript("union_distinct")
		a := s.Load(t1).ForEach([]*relop.Expr{relop.Col(0)}, []string{"k"}, []row.Kind{row.KindInt})
		b := s.Load(t2).ForEach([]*relop.Expr{relop.Col(0)}, []string{"k"}, []row.Kind{row.KindInt})
		s.Store(a.Union(b).Distinct(), out)
		return s
	}},
	{"multi_output_etl", func(t1, t2 *relop.Table, out string) *pig.Script {
		s := pig.NewScript("multi_output_etl")
		a := s.Load(t1)
		branches := a.Split(
			relop.Cmp("<", a.Col("k"), relop.LitInt(10)),
			relop.Cmp(">=", a.Col("k"), relop.LitInt(10)),
		)
		hot := branches[0].GroupBy([]*relop.Expr{branches[0].Col("k")}, []string{"k"},
			[]relop.AggDef{{Func: "count", Name: "n"}})
		s.Store(hot, out+"-hot")
		s.Store(branches[1], out+"-cold")
		return s
	}},
	{"order_by", func(t1, _ *relop.Table, out string) *pig.Script {
		s := pig.NewScript("order_by")
		a := s.Load(t1)
		s.Store(a.OrderBy([]*relop.Expr{a.Col("v")}, []bool{false}, 0, 4), out)
		return s
	}},
	{"skew_join", func(t1, t2 *relop.Table, out string) *pig.Script {
		s := pig.NewScript("skew_join")
		a := s.Load(t1)
		b := s.Load(t2)
		j := a.SkewJoin(b, []*relop.Expr{a.Col("k")}, []*relop.Expr{b.Col("k")}, 4)
		g := j.GroupBy(nil, nil, []relop.AggDef{{Func: "count", Name: "n"}})
		s.Store(g, out)
		return s
	}},
}

// PigProduction regenerates Figure 10: the production ETL mix, Tez vs MR.
func PigProduction(sc Scale) (*Report, error) {
	plat := platform.New(platform.Default(10))
	defer plat.Stop()
	t1, err := data.GenZipfPairs(plat.FS, "etl_a", sc.PigRows, 200, 1.3, 10)
	if err != nil {
		return nil, err
	}
	// The join/skew-join right side is a one-row-per-key profile table (a
	// foreign-key join; two skewed sides would multiply hot keys).
	t2, err := data.GenUniquePairs(plat.FS, "etl_b", 200, 11)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Figure:  "Figure 10",
		Title:   "Pig: production ETL workloads (" + sc.Name + " scale)",
		Headers: []string{"script", "MR (ms)", "Tez (ms)", "speedup", "MR jobs"},
		Notes: []string{
			"scripts mix group by, union, distinct, join, order by, skew join and multi-output stores (§6.3)",
			"paper reports 1.5–2x for this class of workload",
		},
	}

	sess := am.NewSession(plat, am.Config{
		Name:                 "pig-tez",
		PrewarmContainers:    4,
		ContainerIdleRelease: 200 * time.Millisecond,
	})
	defer sess.Close()

	for _, w := range pigWorkloads {
		mrScript := w.build(t1, t2, "/bench/pig/"+w.name+"-mr")
		start := time.Now()
		stats, err := mrScript.RunMR(plat, am.Config{Name: w.name + "-mr"})
		if err != nil {
			return nil, fmt.Errorf("%s on MR: %w", w.name, err)
		}
		mrDur := time.Since(start)

		tezScript := w.build(t1, t2, "/bench/pig/"+w.name+"-tez")
		start = time.Now()
		if _, err := tezScript.RunTez(sess); err != nil {
			return nil, fmt.Errorf("%s on Tez: %w", w.name, err)
		}
		tezDur := time.Since(start)
		rep.AddRow(w.name, ms(mrDur), ms(tezDur), speedup(mrDur, tezDur), fmt.Sprintf("%d", stats.Jobs))
	}
	return rep, nil
}
