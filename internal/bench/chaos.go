package bench

import (
	"fmt"
	"reflect"
	"strconv"
	"time"

	"tez/internal/am"
	"tez/internal/chaos"
	"tez/internal/library"
	"tez/internal/mapreduce"
	"tez/internal/platform"
)

// chaosScenario is one seeded fault schedule for the robustness table.
type chaosScenario struct {
	name string
	seed int64
	spec chaos.Spec
	cfg  func(am.Config) am.Config
}

func chaosScenarios() []chaosScenario {
	id := func(c am.Config) am.Config { return c }
	return []chaosScenario{
		{"fetch-faults", 101, chaos.Spec{TransientFetchProb: 0.25, FetchDataLostProb: 0.05}, id},
		{"task+launch", 102, chaos.Spec{TaskFaultProb: 0.20, LaunchFailProb: 0.20}, id},
		{"dfs-read", 103, chaos.Spec{DFSReadFaultProb: 0.30}, id},
		{"node-crash", 104, chaos.Spec{CrashNodes: 1, StepSpacing: 3, TransientFetchProb: 0.10}, id},
		{"drain", 105, chaos.Spec{DecommissionNodes: 1, StepSpacing: 3}, id},
		{"sick-node", 106, chaos.Spec{SickNodes: []string{"node-000"}},
			func(c am.Config) am.Config { c.NodeMaxTaskFailures = 2; return c }},
		// node-000/001 are where the RM places first, so the slowdown is
		// guaranteed to hit real work.
		{"slow-nodes", 107, chaos.Spec{SlowNodes: []string{"node-000", "node-001"}, SlowExecDelay: 2 * time.Millisecond, SlowFetchFactor: 3},
			func(c am.Config) am.Config { c.Speculation = true; return c }},
	}
}

// ChaosRobustness runs the same wordcount workload under each seeded fault
// schedule and reports whether the output stayed identical to the
// fault-free run, what the faults cost, and what node health saw — the
// robustness counterpart of the timing figures.
func ChaosRobustness(sc Scale) (*Report, error) {
	lines := sc.PigRows
	if lines <= 0 {
		lines = 3000
	}
	run := func(plane *chaos.Plane, mut func(am.Config) am.Config) (map[string]int, am.DAGResult, *am.Session, *platform.Platform, time.Duration, error) {
		pcfg := platform.Fast(8)
		pcfg.Chaos = plane
		plat := platform.New(pcfg)
		if err := writeWords(plat, "/bench/chaos/words", lines); err != nil {
			plat.Stop()
			return nil, am.DAGResult{}, nil, nil, 0, err
		}
		cfg := mut(am.Config{Name: "chaos", MaxTaskAttempts: 8})
		sess := am.NewSession(plat, cfg)
		start := time.Now()
		res, err := mapreduce.RunOnTez(sess, mapreduce.JobConf{
			Name: "wc", Map: "bench.tokenize", Reduce: "bench.count",
			InputPaths: []string{"/bench/chaos/words"}, OutputPath: "/bench/chaos/out",
			Reducers: 4,
		})
		dur := time.Since(start)
		if err != nil {
			return nil, res, sess, plat, dur, err
		}
		counts, err := readCountsDFS(plat, "/bench/chaos/out")
		return counts, res, sess, plat, dur, err
	}

	rep := &Report{
		Figure:  "Chaos",
		Title:   "seeded fault injection vs fault-free wordcount (8 nodes)",
		Headers: []string{"scenario", "seed", "result", "time_ms", "injected", "att_failed", "reexecuted", "blacklisted"},
	}

	want, _, sess, plat, cleanDur, err := run(nil, func(c am.Config) am.Config { return c })
	if err != nil {
		return nil, fmt.Errorf("fault-free run: %w", err)
	}
	sess.Close()
	plat.Stop()
	rep.AddRow("fault-free", "-", "baseline", ms(cleanDur), "0", "0", "0", "0")

	for _, s := range chaosScenarios() {
		plane := chaos.New(s.seed, s.spec)
		got, res, sess, plat, dur, err := run(plane, s.cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.name, err)
		}
		verdict := "identical"
		if !reflect.DeepEqual(got, want) {
			verdict = "DIVERGED"
		}
		var injected int64
		for _, v := range plane.Injected() {
			injected += v
		}
		rep.AddRow(s.name, strconv.FormatInt(s.seed, 10), verdict, ms(dur),
			strconv.FormatInt(injected, 10),
			strconv.FormatInt(res.Counters.Get("ATTEMPTS_FAILED"), 10),
			strconv.FormatInt(res.Counters.Get("TASKS_REEXECUTED"), 10),
			strconv.FormatInt(res.Counters.Get("NODES_BLACKLISTED"), 10))
		if s.name == "sick-node" {
			for _, h := range sess.NodeHealth() {
				mark := ""
				if h.Blacklisted {
					mark = " BLACKLISTED"
				}
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"sick-node health: %s taskFailures=%d fetchFailures=%d%s",
					h.Node, h.TaskFailures, h.FetchFailures, mark))
			}
		}
		sess.Close()
		plat.Stop()
	}
	rep.Notes = append(rep.Notes,
		"every scenario must read `identical`: chaos may slow a DAG down, never change its answer",
		"same seed ⇒ same schedule and decision stream (internal/chaos determinism tests)")
	return rep, nil
}

// readCountsDFS aggregates committed wordcount output across part files.
func readCountsDFS(plat *platform.Platform, out string) (map[string]int, error) {
	res := map[string]int{}
	for _, f := range plat.FS.List(out + "/part-") {
		blob, err := plat.FS.ReadFile(f, "")
		if err != nil {
			return nil, err
		}
		r := library.NewPaddedReader(blob)
		for r.Next() {
			n, err := strconv.Atoi(string(r.Value()))
			if err != nil {
				return nil, err
			}
			res[string(r.Key())] += n
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	return res, nil
}
