package bench

import (
	"fmt"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/platform"
	"tez/internal/sparklike"
)

// KMeansIterations regenerates Figure 11: the iterative K-means job run
// with per-iteration DAGs in one shared pre-warmed Tez session (container
// reuse across iterations) versus one isolated AM per iteration (the
// MR-style baseline of §6.4).
func KMeansIterations(sc Scale) (*Report, error) {
	plat := platform.New(platform.Default(4))
	defer plat.Stop()
	points, truth, err := data.GenPoints(plat.FS, "kmeans", sc.KMeansPoints, 3, 11)
	if err != nil {
		return nil, err
	}
	initial := make([][2]float64, len(truth))
	for i, c := range truth {
		initial[i] = [2]float64{c[0] + 3, c[1] - 3}
	}

	rep := &Report{
		Figure:  "Figure 11",
		Title:   "Pig/iterative: K-means (" + sc.Name + " scale)",
		Headers: []string{"iterations", "per-job AMs (ms)", "Tez session (ms)", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d points, 3 centroids; one DAG per iteration", sc.KMeansPoints),
			"session mode pre-warms containers and reuses them across iteration DAGs (§4.2)",
		},
	}

	for _, iters := range sc.KMeansIters {
		start := time.Now()
		_, err := sparklike.RunKMeansIsolated(plat, am.Config{Name: "km-iso"},
			points, initial, iters, fmt.Sprintf("/bench/km-iso-%d", iters))
		if err != nil {
			return nil, err
		}
		isoDur := time.Since(start)

		sess := am.NewSession(plat, am.Config{
			Name:                 fmt.Sprintf("km-sess-%d", iters),
			PrewarmContainers:    2,
			ContainerIdleRelease: 500 * time.Millisecond,
		})
		start = time.Now()
		_, err = sparklike.RunKMeans(sess, plat, points, initial, iters,
			fmt.Sprintf("/bench/km-sess-%d", iters))
		sess.Close()
		if err != nil {
			return nil, err
		}
		sessDur := time.Since(start)

		rep.AddRow(fmt.Sprintf("%d", iters), ms(isoDur), ms(sessDur), speedup(isoDur, sessDur))
	}
	return rep, nil
}
