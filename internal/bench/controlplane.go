package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tez/internal/am"
	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/mailbox"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/runtime"
)

// The control-plane bench answers ROADMAP item 2 ("Control-plane raw
// throughput: 10k simulated nodes, 100k-task DAGs") with four fixed-size
// experiments. Sizes are deliberately NOT tied to Scale: the acceptance
// bar is absolute (10k nodes, 100k tasks), and cross-PR trajectory
// tracking needs identical workloads run after run.
//
//   - sched:        raw RM scheduling decisions/sec. 10k nodes, 8 apps,
//     5 waves of 2000 mixed-locality requests, driven by ScheduleNow so
//     only scheduler cost is on the clock.
//   - events-*:     mailbox event-plane throughput, one-at-a-time
//     (Put/Get) vs batched (PutAll/GetAll) delivery.
//   - dag-churn:    whole small DAGs through a session, DAGs/sec.
//   - dag-100k:     the flagship: one 100k-task DAG on a 10k-node
//     cluster through the full AM, tasks/sec.
const (
	cpSchedNodes    = 10_000
	cpSchedPerRack  = 40
	cpSchedApps     = 8
	cpSchedWaves    = 5
	cpSchedPerWave  = 2_000
	cpEventsTotal   = 1_000_000
	cpEventsProds   = 4
	cpChurnNodes    = 32
	cpChurnDAGs     = 40
	cpChurnTasks    = 250
	cpBigDAGNodes   = 10_000
	cpBigDAGTasks   = 100_000
	cpBigDAGPerRack = 40
)

// ControlPlaneResult is one row of BENCH_controlplane.json.
type ControlPlaneResult struct {
	Experiment string  `json:"experiment"`
	Nodes      int     `json:"nodes,omitempty"`
	Items      int     `json:"items"` // decisions, events or tasks processed
	DurationMS float64 `json:"duration_ms"`
	PerSec     float64 `json:"per_sec"`
	Unit       string  `json:"unit"`
}

func cpRow(exp string, nodes, items int, d time.Duration, unit string) ControlPlaneResult {
	return ControlPlaneResult{
		Experiment: exp,
		Nodes:      nodes,
		Items:      items,
		DurationMS: float64(d.Microseconds()) / 1000,
		PerSec:     float64(items) / d.Seconds(),
		Unit:       unit,
	}
}

var noopProcOnce sync.Once

// registerNoopProcessor installs the bench's no-op task body: the point of
// dag-churn/dag-100k is to weigh the control plane, so the data plane must
// cost nothing.
func registerNoopProcessor() {
	noopProcOnce.Do(func() {
		runtime.RegisterProcessor("bench.noop", func() runtime.Processor {
			return noopProcessor{}
		})
	})
}

type noopProcessor struct{}

func (noopProcessor) Initialize(*runtime.Context) error { return nil }
func (noopProcessor) Run(map[string]runtime.Input, map[string]runtime.Output) error {
	return nil
}
func (noopProcessor) Close() error { return nil }

// ControlPlaneSched measures raw scheduling decisions/sec against a
// 10k-node RM. Requests arrive in waves with a fixed-seed mix of
// node-local / rack-local / any locality; ScheduleNow drives passes until
// every request in the wave is satisfied (delay scheduling relaxes the
// contended node-local ones), so the measured time is pure scheduler work.
func ControlPlaneSched() (ControlPlaneResult, error) {
	rm := cluster.New(cluster.Config{
		Nodes:        cpSchedNodes,
		NodesPerRack: cpSchedPerRack,
		NodeResource: cluster.Resource{MemoryMB: 8192, VCores: 8},
		// The bench drives passes explicitly; park the heartbeat.
		ScheduleInterval:  time.Hour,
		NodeLocalityDelay: 2,
		RackLocalityDelay: 2,
	})
	defer rm.Stop()

	nodes := rm.Nodes()
	apps := make([]*cluster.Application, cpSchedApps)
	for i := range apps {
		apps[i] = rm.Submit(fmt.Sprintf("cp-sched-%d", i))
		defer apps[i].Unregister()
	}

	rng := rand.New(rand.NewSource(42))
	want := 0
	start := time.Now()
	for wave := 0; wave < cpSchedWaves; wave++ {
		for i := 0; i < cpSchedPerWave; i++ {
			req := &cluster.ContainerRequest{
				Priority:      i % 3,
				Resource:      cluster.Resource{MemoryMB: 1024, VCores: 1},
				RelaxLocality: true,
			}
			switch i % 3 {
			case 0: // node-local preference
				req.Nodes = []cluster.NodeID{nodes[rng.Intn(len(nodes))]}
			case 1: // rack-local preference
				req.Racks = []string{rm.RackOf(nodes[rng.Intn(len(nodes))])}
			}
			apps[i%cpSchedApps].Request(req)
			want++
		}
		// Drive passes until the wave is fully placed. Contended
		// node-local requests need extra passes to accrue missed
		// opportunities and relax; cap defensively.
		for pass := 0; pass < 10_000; pass++ {
			rm.ScheduleNow()
			held := 0
			for _, a := range apps {
				held += a.HeldContainers()
			}
			if held >= want {
				break
			}
		}
	}
	elapsed := time.Since(start)

	held := 0
	for _, a := range apps {
		held += a.HeldContainers()
	}
	if held != want {
		return ControlPlaneResult{}, fmt.Errorf("sched: placed %d of %d requests", held, want)
	}
	return cpRow("sched", cpSchedNodes, held, elapsed, "decisions/sec"), nil
}

// ControlPlaneEvents measures event-plane throughput through one mailbox:
// the one-at-a-time path every producer used before batching, and the
// PutAll/GetAll path the AM and RM use now.
func ControlPlaneEvents() []ControlPlaneResult {
	type ev struct {
		kind int
		seq  int
	}
	run := func(batch bool) time.Duration {
		m := mailbox.New[ev]()
		per := cpEventsTotal / cpEventsProds
		start := time.Now()
		var wg sync.WaitGroup
		for p := 0; p < cpEventsProds; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				if batch {
					buf := make([]ev, 0, 128)
					for i := 0; i < per; i++ {
						buf = append(buf, ev{kind: p, seq: i})
						if len(buf) == cap(buf) {
							m.PutAll(buf)
							buf = buf[:0]
						}
					}
					m.PutAll(buf)
				} else {
					for i := 0; i < per; i++ {
						m.Put(ev{kind: p, seq: i})
					}
				}
			}(p)
		}
		go func() {
			wg.Wait()
			m.Close()
		}()
		got := 0
		if batch {
			var buf []ev
			for {
				var ok bool
				buf, ok = m.GetAll(buf)
				if !ok {
					break
				}
				got += len(buf)
			}
		} else {
			for {
				if _, ok := m.Get(); !ok {
					break
				}
				got++
			}
		}
		if got != per*cpEventsProds {
			panic(fmt.Sprintf("events: drained %d of %d", got, per*cpEventsProds))
		}
		return time.Since(start)
	}
	return []ControlPlaneResult{
		cpRow("events-single", 0, cpEventsTotal, run(false), "events/sec"),
		cpRow("events-batch", 0, cpEventsTotal, run(true), "events/sec"),
	}
}

// ControlPlaneDAGChurn measures whole-DAG turnaround: submit/run/finish
// many small no-op DAGs through one session, back to back.
func ControlPlaneDAGChurn() (ControlPlaneResult, error) {
	registerNoopProcessor()
	plat := platform.New(platform.Fast(cpChurnNodes))
	defer plat.Stop()
	sess := am.NewSession(plat, am.Config{Name: "cp-churn"})
	defer sess.Close()

	start := time.Now()
	for i := 0; i < cpChurnDAGs; i++ {
		d := dag.New(fmt.Sprintf("churn-%03d", i))
		d.AddVertex("work", plugin.Desc("bench.noop", nil), cpChurnTasks)
		if _, err := sess.Run(d); err != nil {
			return ControlPlaneResult{}, fmt.Errorf("dag-churn: %w", err)
		}
	}
	return cpRow("dag-churn", cpChurnNodes, cpChurnDAGs, time.Since(start), "dags/sec"), nil
}

// ControlPlaneDAG100k is the flagship run from the acceptance bar: one
// 100,000-task DAG on a 10,000-node cluster through the full AM — every
// task is a real attempt with a real container allocation. Reported as
// tasks/sec.
func ControlPlaneDAG100k() (ControlPlaneResult, error) {
	registerNoopProcessor()
	cfg := platform.Fast(cpBigDAGNodes)
	cfg.Cluster.NodesPerRack = cpBigDAGPerRack
	plat := platform.New(cfg)
	defer plat.Stop()
	sess := am.NewSession(plat, am.Config{Name: "cp-100k"})
	defer sess.Close()

	d := dag.New("dag-100k")
	d.AddVertex("work", plugin.Desc("bench.noop", nil), cpBigDAGTasks)
	start := time.Now()
	if _, err := sess.Run(d); err != nil {
		return ControlPlaneResult{}, fmt.Errorf("dag-100k: %w", err)
	}
	return cpRow("dag-100k", cpBigDAGNodes, cpBigDAGTasks, time.Since(start), "tasks/sec"), nil
}

// ControlPlaneResults runs the suite. include100k gates the flagship DAG,
// which is only tractable on the sharded/bucketed scheduler — the
// pre-refactor baseline was captured without it.
func ControlPlaneResults(include100k bool) ([]ControlPlaneResult, error) {
	var rows []ControlPlaneResult
	sched, err := ControlPlaneSched()
	if err != nil {
		return nil, err
	}
	rows = append(rows, sched)
	rows = append(rows, ControlPlaneEvents()...)
	churn, err := ControlPlaneDAGChurn()
	if err != nil {
		return nil, err
	}
	rows = append(rows, churn)
	if include100k {
		big, err := ControlPlaneDAG100k()
		if err != nil {
			return nil, err
		}
		rows = append(rows, big)
	}
	return rows, nil
}

// ControlPlaneBaseline holds the pre-refactor numbers for the same
// workloads, captured at the commit before the sharded node index /
// priority-bucket scheduler landed (see DESIGN.md §10). dag-100k has no
// baseline row: the O(pending²·log) per-pass sorting made the run
// intractable before the refactor.
var ControlPlaneBaseline = []ControlPlaneResult{
	{Experiment: "sched", Nodes: 10000, Items: 10000, DurationMS: 2732.5, PerSec: 3660, Unit: "decisions/sec"},
	{Experiment: "events-single", Items: 1000000, DurationMS: 56.8, PerSec: 17609974, Unit: "events/sec"},
	{Experiment: "events-batch", Items: 1000000, DurationMS: 9.8, PerSec: 102494312, Unit: "events/sec"},
	{Experiment: "dag-churn", Nodes: 32, Items: 40, DurationMS: 203.1, PerSec: 197, Unit: "dags/sec"},
}

// ControlPlaneSpeedup returns current/baseline throughput for an
// experiment, or 0 if either side is missing.
func ControlPlaneSpeedup(rows []ControlPlaneResult, exp string) float64 {
	var cur, base float64
	for _, r := range rows {
		if r.Experiment == exp {
			cur = r.PerSec
		}
	}
	for _, r := range ControlPlaneBaseline {
		if r.Experiment == exp {
			base = r.PerSec
		}
	}
	if base == 0 {
		return 0
	}
	return cur / base
}

// ControlPlaneReport renders the rows (and baseline comparison when
// recorded) as a printable table.
func ControlPlaneReport(rows []ControlPlaneResult) *Report {
	r := &Report{
		Figure:  "CP",
		Title:   "control-plane throughput (10k nodes / 100k tasks)",
		Headers: []string{"experiment", "nodes", "items", "ms", "per_sec", "unit", "vs_baseline"},
	}
	for _, row := range rows {
		vs := "-"
		if s := ControlPlaneSpeedup(rows, row.Experiment); s > 0 {
			vs = fmt.Sprintf("%.1fx", s)
		}
		r.AddRow(row.Experiment,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.Items),
			fmt.Sprintf("%.1f", row.DurationMS),
			fmt.Sprintf("%.0f", row.PerSec),
			row.Unit, vs)
	}
	return r
}
