package bench

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
)

// ShufflePipelineResult is one row of the pipelined-publication ablation
// for BENCH_shuffle.json: the same wordcount DAG run under the producer
// barrier and under pipelined spill publication, at a sort budget tuned
// to a target number of sorted runs per producer.
type ShufflePipelineResult struct {
	Spills     int     `json:"spills_per_producer"` // target sorted runs per producer
	Mode       string  `json:"mode"`                // barrier | pipelined
	Millis     float64 `json:"ms"`
	Increments int64   `json:"consumer_increments"` // SHUFFLE_INCREMENTS: increments stored across all consumers
	Identical  bool    `json:"identical_to_barrier"`
}

// pipelineLines sizes each producer's input. The interesting regime is a
// map phase long enough that consumers have real fetch/merge work to
// overlap with it.
func pipelineLines(sc Scale) int {
	switch sc.Name {
	case "full":
		return 120_000
	case "tiny":
		return 4_000
	default:
		return 50_000
	}
}

// sortChargePerRecord mirrors the library's sort-budget accounting: the
// arena holds key+value bytes and each record charges one 24-byte index
// entry, so a spill budget targeting N runs must count both.
const sortChargePerRecord = 24

// ShufflePipelineResults measures pipelined spill publication against the
// producer barrier end to end: a wordcount DAG with an aggressive slow
// start (consumers up early) at 1, 4 and 16 target spills per producer.
// At 1 spill pipelined publication degenerates to the barrier (a single
// increment at close); past that, consumers fetch and merge increments
// while producers are still sorting, and the map-side close no longer
// re-merges its spills. Both modes must commit byte-identical output.
func ShufflePipelineResults(sc Scale) ([]ShufflePipelineResult, error) {
	const producers = 3
	const reducers = 4
	pcfg := platform.Default(6)
	// One split — one long-lived producer — per input file. With the
	// default 64 KiB blocks the input shatters into ~20 short map tasks
	// and the barrier already overlaps across tasks; the pipelining win
	// is overlap within a producer's lifetime, so producers must be few
	// and long.
	pcfg.DFS.BlockSize = 16 << 20
	plat := platform.New(pcfg)
	defer plat.Stop()

	lines := pipelineLines(sc)
	var paths []string
	var rawPerProducer int64
	for p := 0; p < producers; p++ {
		path := fmt.Sprintf("/bench/pipeline/words-%d", p)
		nodes := plat.FS.LiveNodes()
		w, err := library.CreateRecordFile(plat.FS, path, nodes[p%len(nodes)])
		if err != nil {
			return nil, err
		}
		for i := 0; i < lines; i++ {
			line := fmt.Sprintf("w%d w%d w%d common words here %d", i%97, i%31, i%7, i)
			if err := w.Write(nil, []byte(line)); err != nil {
				return nil, err
			}
			if p == 0 {
				// Track the sort-buffer charge the map output will incur
				// (key + "1" value per token, plus the index entry) to
				// size the spill budget.
				for _, word := range strings.Fields(line) {
					rawPerProducer += int64(len(word)) + 1 + sortChargePerRecord
				}
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}

	run := func(mode string, sortBytes int64, outPath string) (time.Duration, int64, error) {
		d := dag.New(fmt.Sprintf("pipeline-%s", mode))
		m := d.AddVertex("map", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "bench.tokenize"}), -1)
		m.Sources = []dag.DataSource{{
			Name:        "text",
			Input:       plugin.Desc(library.DFSSourceInputName, nil),
			Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: paths}),
		}}
		r := d.AddVertex("reduce", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "bench.count"}), reducers)
		r.Sinks = []dag.DataSink{{
			Name:      "counts",
			Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: outPath}),
			Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: outPath}),
		}}
		d.Connect(m, r, dag.EdgeProperty{
			Movement: dag.ScatterGather,
			Output: plugin.Desc(library.OrderedPartitionedOutputName, library.OrderedPartitionedConfig{
				SortBytes: sortBytes,
				Pipelined: mode == "pipelined",
			}),
			Input: plugin.Desc(library.OrderedGroupedInputName, nil),
		})
		sess := am.NewSession(plat, am.Config{
			Name: fmt.Sprintf("pipeline-%s", mode),
			// Consumers up almost immediately, so the two modes differ
			// only in when data becomes fetchable. The merge factor stays
			// at the default: increments per consumer remain under it, so
			// the reduce side streams one heap merge over all runs and
			// pipelined mode never pays a materialised re-merge — that re-
			// merge (the map-side spill merge at close) is exactly what
			// the barrier keeps on its critical path.
			SlowStartMin: 0.02,
			SlowStartMax: 0.05,
		})
		defer sess.Close()
		start := time.Now()
		res, err := sess.Run(d)
		dur := time.Since(start)
		if err != nil {
			return 0, 0, err
		}
		if res.Status != am.DAGSucceeded {
			return 0, 0, fmt.Errorf("pipeline %s: %v", mode, res.Status)
		}
		return dur, res.Counters.Get("SHUFFLE_INCREMENTS"), nil
	}

	iters := 2
	if sc.Name == "tiny" {
		iters = 1
	}
	var rows []ShufflePipelineResult
	for _, spills := range []int{1, 4, 16} {
		sortBytes := int64(-1) // unbounded: the whole output is one sorted run
		if spills > 1 {
			sortBytes = rawPerProducer / int64(spills)
		}
		perMode := map[string]ShufflePipelineResult{}
		outputs := map[string]map[string][]byte{}
		for _, mode := range []string{"barrier", "pipelined"} {
			var best time.Duration
			var incs int64
			for it := 0; it < iters; it++ {
				out := fmt.Sprintf("/bench/pipeline/out-%s-s%d-i%d", mode, spills, it)
				dur, inc, err := run(mode, sortBytes, out)
				if err != nil {
					return nil, fmt.Errorf("%s at %d spills: %w", mode, spills, err)
				}
				if best == 0 || dur < best {
					best, incs = dur, inc
				}
				if it == 0 {
					parts, err := readParts(plat, out)
					if err != nil {
						return nil, err
					}
					outputs[mode] = parts
				}
			}
			perMode[mode] = ShufflePipelineResult{
				Spills:     spills,
				Mode:       mode,
				Millis:     float64(best.Microseconds()) / 1000,
				Increments: incs,
			}
		}
		identical := reflect.DeepEqual(outputs["barrier"], outputs["pipelined"])
		for _, mode := range []string{"barrier", "pipelined"} {
			row := perMode[mode]
			row.Identical = identical
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// readParts reads the committed part files of one output directory keyed
// by their name relative to it, for byte-level comparison across modes.
func readParts(plat *platform.Platform, out string) (map[string][]byte, error) {
	res := map[string][]byte{}
	for _, f := range plat.FS.List(out + "/part-") {
		blob, err := plat.FS.ReadFile(f, "")
		if err != nil {
			return nil, err
		}
		res[strings.TrimPrefix(f, out)] = append([]byte(nil), blob...)
	}
	return res, nil
}

// ShufflePipelineReport renders precomputed pipeline-ablation rows.
func ShufflePipelineReport(rows []ShufflePipelineResult) *Report {
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Pipelined spill publication vs producer barrier, end to end",
		Headers: []string{"spills/producer", "mode", "time (ms)", "increments", "speedup", "result"},
		Notes: []string{
			"speedup compares against the barrier run at the same spill budget; result compares committed bytes",
		},
	}
	barrier := map[int]float64{}
	for _, r := range rows {
		if r.Mode == "barrier" {
			barrier[r.Spills] = r.Millis
		}
	}
	for _, r := range rows {
		speed := "-"
		if r.Mode == "pipelined" && r.Millis > 0 && barrier[r.Spills] > 0 {
			speed = fmt.Sprintf("%.2fx", barrier[r.Spills]/r.Millis)
		}
		verdict := "identical"
		if !r.Identical {
			verdict = "DIVERGED"
		}
		rep.AddRow(fmt.Sprintf("%d", r.Spills), r.Mode,
			fmt.Sprintf("%.1f", r.Millis), fmt.Sprintf("%d", r.Increments),
			speed, verdict)
	}
	return rep
}
