package bench

import (
	"fmt"
	"sync"
	"time"

	"tez/internal/am"
	"tez/internal/cluster"
	"tez/internal/data"
	"tez/internal/metrics"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/sparklike"
)

// jobsPerUser and thinkTime model an interactive session: each user
// submits several partitioning jobs with gaps between them. The daemon
// holds its executors through the gaps; Tez releases them.
const (
	jobsPerUser = 3
	thinkTime   = 25 * time.Millisecond
)

// runSparkUsers runs one concurrency round: users (staggered by 5ms) each
// run a sequence of partitioning jobs over their own dataset, in either
// the service-daemon or the Tez-session execution model. It returns
// per-job latencies and the sampled per-user container timeline.
func runSparkUsers(plat *platform.Platform, tables []*relop.Table, execs int, service bool) ([]time.Duration, []metrics.Sample, error) {
	users := len(tables)
	sampler := metrics.StartSampler(2*time.Millisecond, func() map[string]int {
		out := map[string]int{}
		for app, res := range plat.RM.AllocatedByApp() {
			out[app] = res.MemoryMB / 1024
		}
		return out
	})

	perUser := make([][]time.Duration, users)
	errs := make([]error, users)
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(u) * 5 * time.Millisecond)
			name := fmt.Sprintf("user-%d", u+1)
			mkJob := func(j int) sparklike.PartitionJob {
				return sparklike.PartitionJob{
					Table:      tables[u],
					KeyCol:     0,
					Partitions: 4,
					OutPath:    fmt.Sprintf("/bench/spark/%s-%v-%d", name, service, j),
				}
			}
			if service {
				// The daemon acquires a fixed pool once and holds it for
				// the whole interactive session — through every think-time
				// gap. Pool acquisition is charged to the first job.
				start := time.Now()
				svc, err := sparklike.StartService(plat, name, execs,
					cluster.Resource{MemoryMB: 1024, VCores: 1}, 100*time.Millisecond)
				if err != nil {
					errs[u] = err
					return
				}
				for j := 0; j < jobsPerUser; j++ {
					if j > 0 {
						time.Sleep(thinkTime)
						start = time.Now()
					}
					if err := svc.RunPartition(fmt.Sprintf("job%d", j), mkJob(j)); err != nil {
						errs[u] = err
						break
					}
					perUser[u] = append(perUser[u], time.Since(start))
				}
				svc.Close()
				return
			}
			sess := am.NewSession(plat, am.Config{
				Name:                 name,
				ContainerIdleRelease: 10 * time.Millisecond,
				// A 2-stage repartition gains nothing from early reducers;
				// waiting reducers would hold slots other tenants need.
				DisableSlowStart: true,
			})
			defer sess.Close()
			for j := 0; j < jobsPerUser; j++ {
				if j > 0 {
					time.Sleep(thinkTime)
				}
				start := time.Now()
				if err := sparklike.RunPartitionTez(sess, fmt.Sprintf("job%d", j), mkJob(j)); err != nil {
					errs[u] = err
					break
				}
				perUser[u] = append(perUser[u], time.Since(start))
			}
		}()
	}
	wg.Wait()
	time.Sleep(20 * time.Millisecond) // let releases land in the timeline
	samples := sampler.Stop()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	var latencies []time.Duration
	for _, ls := range perUser {
		latencies = append(latencies, ls...)
	}
	return latencies, samples, nil
}

// sparkCluster builds a deliberately capacity-constrained cluster: the
// aggregate daemon demand (users × executors) exceeds the slot count, so
// fixed pools starve late arrivals — the contention Figures 12–13 study.
func sparkCluster(sc Scale) platform.Config {
	cfg := platform.Default(sc.SparkClusterN)
	cfg.Cluster.NodeResource = cluster.Resource{MemoryMB: 4096, VCores: 4}
	return cfg
}

func genUserTables(plat *platform.Platform, users, rows int) ([]*relop.Table, error) {
	tables := make([]*relop.Table, users)
	for u := 0; u < users; u++ {
		t, err := data.GenZipfPairs(plat.FS, fmt.Sprintf("lineitem_u%d", u), rows, 60, 1.1, int64(20+u))
		if err != nil {
			return nil, err
		}
		tables[u] = t
	}
	return tables, nil
}

// SparkTimelines regenerates Figure 12: per-user container holdings over
// time, service-based vs Tez-based, 5 concurrent users.
func SparkTimelines(sc Scale) (*Report, error) {
	rep := &Report{
		Figure:  "Figure 12",
		Title:   "Sharing a cluster across concurrent Spark-style jobs (" + sc.Name + " scale)",
		Headers: []string{"mode", "t (ms)", "u1", "u2", "u3", "u4", "u5"},
		Notes: []string{
			"containers held per user, sampled during the run",
			"service daemons hold executors for the app lifetime; Tez releases idle containers to later users",
		},
	}
	for _, service := range []bool{true, false} {
		plat := platform.New(sparkCluster(sc))
		tables, err := genUserTables(plat, sc.SparkUsers, sc.SparkRows)
		if err != nil {
			plat.Stop()
			return nil, err
		}
		_, samples, err := runSparkUsers(plat, tables, sc.SparkExecs, service)
		plat.Stop()
		if err != nil {
			return nil, err
		}
		mode := "tez"
		if service {
			mode = "service"
		}
		// Condense to ~12 timeline rows.
		step := len(samples)/12 + 1
		for i := 0; i < len(samples); i += step {
			s := samples[i]
			row := []string{mode, ms(s.At)}
			for u := 1; u <= sc.SparkUsers; u++ {
				row = append(row, fmt.Sprintf("%d", s.Values[fmt.Sprintf("user-%d", u)]))
			}
			rep.AddRow(row...)
		}
	}
	return rep, nil
}

// SparkLatency regenerates Figure 13: mean job latency under 5-user
// concurrency across scale factors, service vs Tez.
func SparkLatency(sc Scale) (*Report, error) {
	rep := &Report{
		Figure:  "Figure 13",
		Title:   "Spark multi-tenancy on YARN: latency vs scale (" + sc.Name + " scale)",
		Headers: []string{"scale", "service mean (ms)", "tez mean (ms)", "improvement"},
		Notes: []string{
			fmt.Sprintf("%d concurrent users partitioning a lineitem-style dataset along its key", sc.SparkUsers),
		},
	}
	for _, mult := range sc.SparkScales {
		var means [2]time.Duration
		for i, service := range []bool{true, false} {
			plat := platform.New(sparkCluster(sc))
			tables, err := genUserTables(plat, sc.SparkUsers, sc.SparkRows*mult)
			if err != nil {
				plat.Stop()
				return nil, err
			}
			lats, _, err := runSparkUsers(plat, tables, sc.SparkExecs, service)
			plat.Stop()
			if err != nil {
				return nil, err
			}
			var total time.Duration
			for _, l := range lats {
				total += l
			}
			means[i] = total / time.Duration(len(lats))
		}
		rep.AddRow(fmt.Sprintf("%dx", mult), ms(means[0]), ms(means[1]), speedup(means[0], means[1]))
	}
	return rep, nil
}
