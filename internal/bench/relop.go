package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/hive"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

// The vectorization ablation: the same relational kernels measured
// row-at-a-time and batch-at-a-time (micro), and the same Hive/Pig
// workloads run end to end under the row engine, the columnar engine,
// and columnar plus wire compression. The e2e rows double as an
// acceptance check — every variant must commit byte-identical output.

// RelopMicroResult is one row of the kernel microbenchmark for
// BENCH_relop.json.
type RelopMicroResult struct {
	Kernel      string  `json:"kernel"`
	Variant     string  `json:"variant"` // row | columnar
	Records     int     `json:"records"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerRecord float64 `json:"ns_per_record"`
	Speedup     float64 `json:"speedup_vs_row,omitempty"`
}

// RelopE2EResult is one row of the end-to-end engine ablation.
type RelopE2EResult struct {
	Workload  string  `json:"workload"`
	Variant   string  `json:"variant"` // row | columnar | columnar-flate
	Millis    float64 `json:"ms"`
	Identical bool    `json:"identical_to_row"`
	Speedup   float64 `json:"speedup_vs_row,omitempty"`
}

// relopRecords sizes the micro input; the acceptance bar is ≥200k rows
// per op at the default scale.
func relopRecords(sc Scale) int {
	switch sc.Name {
	case "full":
		return 400_000
	case "tiny":
		return 20_000
	default:
		return 200_000
	}
}

// discardKV swallows terminal writes so the kernels, not an output
// buffer, are what the benchmark times.
type discardKV struct{}

func (discardKV) Write(key, value []byte) error { return nil }

// relopBenchRows builds the shared micro input: a (int key, float
// measure, word tag) fact row, pre-encoded once outside the timed loop
// exactly as a task attempt receives it.
func relopBenchRows(records int) [][]byte {
	rng := rand.New(rand.NewSource(31))
	words := []string{"ash", "birch", "cedar", "fir", "oak", "pine"}
	encoded := make([][]byte, records)
	for i := range encoded {
		encoded[i] = row.Encode(nil, row.Row{
			row.Int(int64(rng.Intn(1000))),
			row.Float(float64(rng.Intn(10000)) / 100),
			row.String(words[rng.Intn(len(words))]),
		})
	}
	return encoded
}

// RelopMicroResults measures filter / project / hashjoin / aggregate on
// both engines with testing.Benchmark and returns machine-readable rows.
func RelopMicroResults(sc Scale) ([]RelopMicroResult, error) {
	records := relopRecords(sc)
	encoded := relopBenchRows(records)

	// A 1000-key dimension table for the hashjoin probe, keyed the way
	// buildTable keys broadcast inputs.
	build := map[string][]row.Row{}
	for k := 0; k < 1000; k++ {
		br := row.Row{row.Int(int64(k)), row.String(fmt.Sprintf("dim-%04d", k))}
		build[string(row.EncodeKey(nil, br[0]))] = []row.Row{br}
	}
	tables := map[string]map[string][]row.Row{"dim": build}
	widths := map[string]int{"dim": 2}

	sink := func(pipe []relop.PipeOp) relop.EmitSpec {
		return relop.EmitSpec{Input: "in", Output: "out", Kind: relop.EmitSink, Tag: -1, Pipe: pipe}
	}
	agg := &relop.GroupOp{Kind: "agg", GroupWidth: 1, Aggs: []relop.AggFuncSpec{
		{Func: "count", Col: 0}, {Func: "sum", Col: 1}, {Func: "min", Col: 1}, {Func: "avg", Col: 1},
	}}

	kernels := []struct {
		name string
		run  func(batchSize int) (int64, error)
	}{
		{"filter", func(bs int) (int64, error) {
			spec := sink([]relop.PipeOp{{Kind: "filter",
				Filter: relop.Cmp("<", relop.Col(1), relop.LitFloat(25))}})
			return relop.RunEmitBench(spec, nil, nil, encoded, bs, discardKV{})
		}},
		{"project", func(bs int) (int64, error) {
			spec := sink([]relop.PipeOp{{Kind: "project", Project: []*relop.Expr{
				relop.Arith("*", relop.Col(1), relop.LitFloat(2)),
				relop.Arith("+", relop.Col(0), relop.LitInt(1)),
			}}})
			return relop.RunEmitBench(spec, nil, nil, encoded, bs, discardKV{})
		}},
		{"hashjoin", func(bs int) (int64, error) {
			spec := sink([]relop.PipeOp{{Kind: "hashjoin", HJ: &relop.HashJoinSpec{
				Input: "dim", ProbeKeys: []*relop.Expr{relop.Col(0)},
			}}})
			return relop.RunEmitBench(spec, tables, widths, encoded, bs, discardKV{})
		}},
		{"aggregate", func(bs int) (int64, error) {
			var n int64
			err := relop.RunAggBench(agg, encoded, bs, func(row.Row) error {
				n++
				return nil
			})
			return n, err
		}},
	}

	var out []RelopMicroResult
	for _, k := range kernels {
		var rowNs int64
		var rowCount int64 = -1
		for _, v := range []struct {
			name string
			bs   int
		}{{"row", 0}, {"columnar", relop.DefaultBatchSize}} {
			var failure error
			var count int64
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					n, err := k.run(v.bs)
					if err != nil {
						failure = err
						b.FailNow()
					}
					count = n
				}
			})
			if failure != nil {
				return nil, fmt.Errorf("%s/%s: %w", k.name, v.name, failure)
			}
			if rowCount >= 0 && count != rowCount {
				return nil, fmt.Errorf("%s: row emitted %d rows, %s emitted %d", k.name, rowCount, v.name, count)
			}
			rowCount = count
			r := RelopMicroResult{
				Kernel:      k.name,
				Variant:     v.name,
				Records:     records,
				NsPerOp:     res.NsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				NsPerRecord: float64(res.NsPerOp()) / float64(records),
			}
			if v.name == "row" {
				rowNs = res.NsPerOp()
			} else if r.NsPerOp > 0 {
				r.Speedup = float64(rowNs) / float64(r.NsPerOp)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// relopE2EOrders sizes the end-to-end TPC-H input (lineitem ≈ 4×).
func relopE2EOrders(sc Scale) int {
	switch sc.Name {
	case "full":
		return 12_000
	case "tiny":
		return 150
	default:
		return 4_000
	}
}

// readPartBytes concatenates the committed part files of one store, in
// name order — the byte-identity unit for the engine ablation.
func readPartBytes(plat *platform.Platform, out string) ([]byte, error) {
	files := plat.FS.List(out + "/part-")
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no part files under %s", out)
	}
	var all []byte
	for _, f := range files {
		blob, err := plat.FS.ReadFile(f, "")
		if err != nil {
			return nil, err
		}
		all = append(all, blob...)
	}
	return all, nil
}

// RelopE2EResults runs two Hive TPC-H queries and a Pig script end to
// end under row, columnar, and columnar+flate engines. Each timing is
// the median of three runs in a shared pre-warmed session; every
// variant's committed bytes must equal the row engine's.
func RelopE2EResults(sc Scale) ([]RelopE2EResult, error) {
	plat := platform.New(platform.Default(8))
	defer plat.Stop()
	tp, err := data.GenTPCH(plat.FS, relopE2EOrders(sc), 33)
	if err != nil {
		return nil, err
	}
	t1, err := data.GenZipfPairs(plat.FS, "vec_etl", relopRecords(sc)/20, 200, 1.3, 34)
	if err != nil {
		return nil, err
	}

	workloads := []struct {
		name string
		run  func(sess *am.Session, exec relop.Config, out string) error
	}{
		{"hive-q1", func(sess *am.Session, exec relop.Config, out string) error {
			eng := hive.NewEngine()
			eng.Exec = exec
			eng.Register(tp.Tables()...)
			_, err := eng.RunTez(sess, "vec-q1", tpchQueries[0].sql, out)
			return err
		}},
		{"hive-q18", func(sess *am.Session, exec relop.Config, out string) error {
			eng := hive.NewEngine()
			eng.Exec = exec
			eng.Register(tp.Tables()...)
			_, err := eng.RunTez(sess, "vec-q18", tpchQueries[4].sql, out)
			return err
		}},
		{"pig-group_agg", func(sess *am.Session, exec relop.Config, out string) error {
			s := pigWorkloads[0].build(t1, nil, out)
			s.Exec = exec
			_, err := s.RunTez(sess)
			return err
		}},
	}
	variants := []struct {
		name  string
		exec  relop.Config
		batch int // am.Config.RelopBatchSize
		codec string
	}{
		{"row", relop.Config{DefaultPartitions: 8, DisableVectorized: true}, -1, ""},
		{"columnar", relop.Config{DefaultPartitions: 8}, 0, ""},
		{"columnar-flate", relop.Config{DefaultPartitions: 8}, 0, "flate"},
	}

	var out []RelopE2EResult
	for _, w := range workloads {
		rowMs := 0.0
		var rowBytes []byte
		for _, v := range variants {
			sess := am.NewSession(plat, am.Config{
				Name:              fmt.Sprintf("vec-%s-%s", w.name, v.name),
				PrewarmContainers: 4,
				RelopBatchSize:    v.batch,
				ShuffleCodec:      v.codec,
			})
			var durs []time.Duration
			var blob []byte
			for rep := 0; rep < 3; rep++ {
				dir := fmt.Sprintf("/bench/vec/%s-%s-%d", w.name, v.name, rep)
				start := time.Now()
				if err := w.run(sess, v.exec, dir); err != nil {
					sess.Close()
					return nil, fmt.Errorf("%s under %s: %w", w.name, v.name, err)
				}
				durs = append(durs, time.Since(start))
				if rep == 0 {
					if blob, err = readPartBytes(plat, dir); err != nil {
						sess.Close()
						return nil, err
					}
				}
			}
			sess.Close()
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			medMs := float64(durs[1].Microseconds()) / 1000
			r := RelopE2EResult{Workload: w.name, Variant: v.name, Millis: medMs}
			if v.name == "row" {
				rowMs = medMs
				rowBytes = blob
				r.Identical = true
			} else {
				r.Identical = bytes.Equal(blob, rowBytes)
				if medMs > 0 {
					r.Speedup = rowMs / medMs
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// RelopMicroReport renders the kernel microbenchmark rows.
func RelopMicroReport(rows []RelopMicroResult) *Report {
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Relational kernels: row-at-a-time vs columnar batches",
		Headers: []string{"kernel", "variant", "ns/op", "B/op", "allocs/op", "ns/record", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d pre-encoded rows per op through the real emit pipeline (decode, eval, terminal encode included)", rows[0].Records),
		},
	}
	for _, r := range rows {
		sp := "-"
		if r.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", r.Speedup)
		}
		rep.AddRow(r.Kernel, r.Variant,
			fmt.Sprintf("%d", r.NsPerOp),
			fmt.Sprintf("%d", r.BytesPerOp),
			fmt.Sprintf("%d", r.AllocsPerOp),
			fmt.Sprintf("%.1f", r.NsPerRecord), sp)
	}
	return rep
}

// RelopE2EReport renders the end-to-end engine ablation rows.
func RelopE2EReport(rows []RelopE2EResult) *Report {
	rep := &Report{
		Figure:  "Ablation",
		Title:   "End-to-end engines: row vs columnar vs columnar+flate",
		Headers: []string{"workload", "variant", "time (ms)", "speedup", "result"},
		Notes: []string{
			"median of 3 runs per variant in a shared pre-warmed session",
			"result byte-compares the committed part files against the row-engine run",
		},
	}
	for _, r := range rows {
		sp, verdict := "-", "identical"
		if r.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", r.Speedup)
		}
		if !r.Identical {
			verdict = "DIVERGED"
		}
		rep.AddRow(r.Workload, r.Variant, fmt.Sprintf("%.1f", r.Millis), sp, verdict)
	}
	return rep
}
