// BSP graph-engine benchmark (ISSUE 8 acceptance): PageRank, connected
// components and SSSP compiled onto session DAGs, reported as
// supersteps/sec and messages/sec, with a registry-cached vs cold-load
// ablation isolating what the per-container ObjectRegistry buys each
// superstep. Persisted to BENCH_graph.json by tez-bench.
package bench

import (
	"fmt"
	"time"

	"tez/internal/am"
	"tez/internal/graph"
	"tez/internal/platform"
)

const (
	graphNodes      = 8
	graphVertices   = 20000
	graphDegree     = 8
	graphSeed       = 7
	graphPartitions = 8
	graphSupersteps = 12 // fixed horizon: cached and cold must do identical work
)

// GraphBenchResult is one JSON row of BENCH_graph.json.
type GraphBenchResult struct {
	Experiment       string  `json:"experiment"`
	Nodes            int     `json:"nodes"`
	Vertices         int64   `json:"vertices"`
	Edges            int64   `json:"edges"`
	Partitions       int     `json:"partitions"`
	Supersteps       int     `json:"supersteps"`
	Converged        bool    `json:"converged"`
	DurationMS       float64 `json:"duration_ms"`
	SuperstepsPerSec float64 `json:"supersteps_per_sec"`
	MessagesPerSec   float64 `json:"messages_per_sec"`
	RegistryHits     int64   `json:"registry_hits"`
	ColdLoads        int64   `json:"cold_loads"`
	StateLoadMS      float64 `json:"state_load_ms"`
}

func runGraphBench(plat *platform.Platform, name string, job graph.Job) (GraphBenchResult, error) {
	sess := am.NewSession(plat, am.Config{
		Name:                 "bench-" + name,
		PrewarmContainers:    4,
		ContainerIdleRelease: 500 * time.Millisecond,
	})
	defer sess.Close()
	start := time.Now()
	res, err := graph.Run(sess, plat, job)
	if err != nil {
		return GraphBenchResult{}, fmt.Errorf("graph bench %s: %w", name, err)
	}
	dur := time.Since(start)
	row := GraphBenchResult{
		Experiment: name,
		Nodes:      graphNodes,
		Vertices:   job.Graph.NumVertices(),
		Edges:      job.Graph.NumEdges(),
		Partitions: job.Partitions,
		Supersteps: res.Supersteps,
		Converged:  res.Converged,
		DurationMS: round1(float64(dur.Microseconds()) / 1e3),
	}
	var sent int64
	var load time.Duration
	for _, s := range res.Stats {
		sent += s.Sent
		load += s.StateLoad
		row.RegistryHits += s.RegistryHits
		row.ColdLoads += s.ColdLoads
	}
	row.SuperstepsPerSec = round1(float64(res.Supersteps) / dur.Seconds())
	row.MessagesPerSec = float64(int(float64(sent) / dur.Seconds()))
	row.StateLoadMS = round1(float64(load.Microseconds()) / 1e3)
	return row, nil
}

// GraphResults runs the graph benchmark suite on one simulated cluster:
// PageRank twice (warm registry vs the DisableRegistryCache ablation —
// identical DAGs, identical superstep count, the only difference is
// whether compute tasks may reuse cached partition snapshots), then
// connected components and SSSP with vote-to-halt termination.
func GraphResults() ([]GraphBenchResult, error) {
	plat := platform.New(platform.Default(graphNodes))
	defer plat.Stop()

	directed := graph.Generate(graphVertices, graphDegree, graphSeed)
	undirected := graph.NewGraph()
	for _, id := range directed.VertexIDs() {
		for _, e := range directed.Edges(id) {
			if err := undirected.AddUndirectedEdge(id, e.To, e.Weight); err != nil {
				return nil, err
			}
		}
	}

	prJob := graph.Job{
		Name:          "bench-pr",
		Program:       graph.PageRankProgram,
		ProgramConfig: graph.PageRankConfig{Damping: 0.85, Epsilon: -1},
		Graph:         directed,
		Partitions:    graphPartitions,
		MaxSupersteps: graphSupersteps,
	}
	rows := make([]GraphBenchResult, 0, 4)
	cached, err := runGraphBench(plat, "pagerank-cached", prJob)
	if err != nil {
		return nil, err
	}
	rows = append(rows, cached)

	coldJob := prJob
	coldJob.Name = "bench-pr-cold"
	coldJob.DisableRegistryCache = true
	cold, err := runGraphBench(plat, "pagerank-cold", coldJob)
	if err != nil {
		return nil, err
	}
	rows = append(rows, cold)

	if cached.RegistryHits == 0 {
		return nil, fmt.Errorf("graph bench: cached run scored no registry hits — the ablation compares nothing")
	}
	if cold.RegistryHits != 0 {
		return nil, fmt.Errorf("graph bench: ablation run hit the registry %d times", cold.RegistryHits)
	}

	ccRow, err := runGraphBench(plat, "cc", graph.Job{
		Name:       "bench-cc",
		Program:    graph.CCProgram,
		Graph:      undirected,
		Partitions: graphPartitions,
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ccRow)

	ssspRow, err := runGraphBench(plat, "sssp", graph.Job{
		Name:          "bench-sssp",
		Program:       graph.SSSPProgram,
		ProgramConfig: graph.SSSPConfig{Source: 0},
		Graph:         directed,
		Partitions:    graphPartitions,
		MaxSupersteps: 60,
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ssspRow)
	return rows, nil
}

// GraphReport renders the rows as a table with the ablation delta.
func GraphReport(rows []GraphBenchResult) *Report {
	rep := &Report{
		Figure:  "graph",
		Title:   "BSP graph engine on session DAGs (Pregel-style supersteps)",
		Headers: []string{"experiment", "vertices", "supersteps", "ss/sec", "msgs/sec", "reg hits", "cold", "state-load ms", "wall ms"},
	}
	var cachedRow, coldRow *GraphBenchResult
	for i := range rows {
		r := &rows[i]
		rep.AddRow(r.Experiment,
			fmt.Sprintf("%d", r.Vertices),
			fmt.Sprintf("%d", r.Supersteps),
			fmt.Sprintf("%.1f", r.SuperstepsPerSec),
			fmt.Sprintf("%.0f", r.MessagesPerSec),
			fmt.Sprintf("%d", r.RegistryHits),
			fmt.Sprintf("%d", r.ColdLoads),
			fmt.Sprintf("%.1f", r.StateLoadMS),
			fmt.Sprintf("%.1f", r.DurationMS))
		switch r.Experiment {
		case "pagerank-cached":
			cachedRow = r
		case "pagerank-cold":
			coldRow = r
		}
	}
	if cachedRow != nil && coldRow != nil && cachedRow.StateLoadMS > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"registry ablation: cached run spent %.1fms (re)loading state vs %.1fms cold (%.1fx), wall %.1fms vs %.1fms",
			cachedRow.StateLoadMS, coldRow.StateLoadMS, coldRow.StateLoadMS/cachedRow.StateLoadMS,
			cachedRow.DurationMS, coldRow.DurationMS))
	}
	rep.Notes = append(rep.Notes,
		"each superstep is one compute→inbox DAG in a shared session; partitions cached in the per-container ObjectRegistry, only messages shuffle")
	return rep
}
