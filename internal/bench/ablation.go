package bench

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tez/internal/am"
	dagpkg "tez/internal/dag"
	"tez/internal/data"
	"tez/internal/hive"
	"tez/internal/library"
	"tez/internal/mapreduce"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/relop"
	"tez/internal/runtime"
)

func init() {
	library.RegisterMapFunc("bench.tokenize", func(_, value []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(value)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("bench.count", func(key []byte, values [][]byte, out runtime.KVWriter) error {
		return out.Write(key, []byte(strconv.Itoa(len(values))))
	})
}

// writeWords writes a synthetic text input.
func writeWords(plat *platform.Platform, path string, lines int) error {
	w, err := library.CreateRecordFile(plat.FS, path, plat.FS.LiveNodes()[0])
	if err != nil {
		return err
	}
	for i := 0; i < lines; i++ {
		line := fmt.Sprintf("w%d w%d w%d common words here %d", i%97, i%31, i%7, i)
		if err := w.Write(nil, []byte(line)); err != nil {
			return err
		}
	}
	return w.Close()
}

// timeWordCountSession runs n wordcount DAGs in one session under cfg and
// returns the total duration plus scheduler stats.
func timeWordCountSession(plat *platform.Platform, cfg am.Config, jobs int) (time.Duration, int, int, error) {
	sess := am.NewSession(plat, cfg)
	defer sess.Close()
	start := time.Now()
	for i := 0; i < jobs; i++ {
		job := mapreduce.JobConf{
			Name: fmt.Sprintf("wc%d", i), Map: "bench.tokenize", Reduce: "bench.count",
			InputPaths: []string{"/bench/words"}, OutputPath: fmt.Sprintf("/bench/abl/%s/wc%d", cfg.Name, i),
		}
		res, err := mapreduce.RunOnTez(sess, job)
		if err != nil {
			return 0, 0, 0, err
		}
		if res.Status != am.DAGSucceeded {
			return 0, 0, 0, fmt.Errorf("wc%d: %v", i, res.Status)
		}
	}
	dur := time.Since(start)
	alloc, reused := sess.SchedulerStats()
	return dur, alloc, reused, nil
}

// AblationContainerReuse measures §4.2 container reuse: the same DAG
// sequence with and without reuse.
func AblationContainerReuse(sc Scale) (*Report, error) {
	plat := platform.New(platform.Default(6))
	defer plat.Stop()
	if err := writeWords(plat, "/bench/words", sc.PigRows/2); err != nil {
		return nil, err
	}
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Container reuse (§4.2)",
		Headers: []string{"mode", "total (ms)", "containers allocated", "reuses"},
	}
	for _, disable := range []bool{true, false} {
		cfg := am.Config{Name: fmt.Sprintf("reuse-%v", !disable), DisableContainerReuse: disable,
			ContainerIdleRelease: 200 * time.Millisecond}
		dur, alloc, reused, err := timeWordCountSession(plat, cfg, 4)
		if err != nil {
			return nil, err
		}
		mode := "reuse on"
		if disable {
			mode = "reuse off"
		}
		rep.AddRow(mode, ms(dur), fmt.Sprintf("%d", alloc), fmt.Sprintf("%d", reused))
	}
	return rep, nil
}

// AblationSession measures session pre-warming (§4.2): first-DAG latency
// with a cold vs pre-warmed session.
func AblationSession(sc Scale) (*Report, error) {
	cfg := platform.Default(6)
	// Make process start-up visible at simulation scale (a real YARN
	// container localisation + JVM launch is seconds).
	cfg.Cluster.ContainerLaunchOverhead = 20 * time.Millisecond
	cfg.Cluster.WarmupPenalty = 8 * time.Millisecond
	plat := platform.New(cfg)
	defer plat.Stop()
	if err := writeWords(plat, "/bench/words", sc.PigRows/2); err != nil {
		return nil, err
	}
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Session pre-warm (§4.2)",
		Headers: []string{"mode", "first DAG (ms)"},
	}
	for _, prewarm := range []int{0, 4} {
		cfg := am.Config{Name: fmt.Sprintf("warm-%d", prewarm), PrewarmContainers: prewarm,
			ContainerIdleRelease: 300 * time.Millisecond}
		sess := am.NewSession(plat, cfg)
		if prewarm > 0 {
			time.Sleep(30 * time.Millisecond) // let the warm pool build
		}
		start := time.Now()
		job := mapreduce.JobConf{
			Name: "wc", Map: "bench.tokenize", Reduce: "bench.count",
			InputPaths: []string{"/bench/words"}, OutputPath: fmt.Sprintf("/bench/abl/warm%d", prewarm),
		}
		if _, err := mapreduce.RunOnTez(sess, job); err != nil {
			sess.Close()
			return nil, err
		}
		dur := time.Since(start)
		sess.Close()
		mode := "cold session"
		if prewarm > 0 {
			mode = fmt.Sprintf("pre-warmed (%d)", prewarm)
		}
		rep.AddRow(mode, ms(dur))
	}
	return rep, nil
}

// AblationAutoParallelism measures the ShuffleVertexManager estimate
// (Figure 6): reducer waves with and without runtime shrinking.
func AblationAutoParallelism(sc Scale) (*Report, error) {
	plat := platform.New(platform.Default(6))
	defer plat.Stop()
	if err := writeWords(plat, "/bench/words", sc.PigRows/2); err != nil {
		return nil, err
	}
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Automatic reduce parallelism (§3.4, Figure 6)",
		Headers: []string{"mode", "total (ms)", "reduce tasks run"},
		Notes:   []string{"DAG submitted with 16 reducers; tiny shuffle volume"},
	}
	for _, disable := range []bool{true, false} {
		cfg := am.Config{Name: fmt.Sprintf("auto-%v", !disable), DisableAutoParallelism: disable}
		sess := am.NewSession(plat, cfg)
		job := mapreduce.JobConf{
			Name: "wc", Map: "bench.tokenize", Reduce: "bench.count", Reducers: 16,
			InputPaths: []string{"/bench/words"}, OutputPath: fmt.Sprintf("/bench/abl/auto-%v", disable),
		}
		start := time.Now()
		res, err := mapreduce.RunOnTez(sess, job)
		dur := time.Since(start)
		sess.Close()
		if err != nil {
			return nil, err
		}
		reduces := 0
		for _, rec := range res.Trace.Records() {
			if rec.Vertex == "reduce" && rec.Outcome == "SUCCEEDED" {
				reduces++
			}
		}
		mode := "auto-parallelism on"
		if disable {
			mode = "auto-parallelism off"
		}
		rep.AddRow(mode, ms(dur), fmt.Sprintf("%d", reduces))
	}
	return rep, nil
}

// AblationPartitionPruning measures §3.5 dynamic partition pruning: bytes
// of the partitioned fact actually read.
func AblationPartitionPruning(sc Scale) (*Report, error) {
	plat := platform.New(platform.Default(6))
	defer plat.Stop()
	td, err := data.GenTPCDS(plat.FS, sc.TPCDSSales, 13)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Dynamic partition pruning (§3.5)",
		Headers: []string{"mode", "query (ms)", "DFS bytes read"},
		Notes:   []string{"q55-style star join filtered to one month of the date-partitioned fact"},
	}
	sql := `SELECT i.i_brand_id, sum(ss.ss_sales_price) AS rev
		FROM store_sales_p ss
		JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
		JOIN item i ON ss.ss_item_sk = i.i_item_sk
		WHERE d.d_moy = 11 AND d.d_year = 1998
		GROUP BY i.i_brand_id ORDER BY rev DESC LIMIT 10`
	for _, pruning := range []bool{false, true} {
		eng := hive.NewEngine()
		eng.EnablePruning = pruning
		eng.Exec = relop.Config{DefaultPartitions: 8}
		eng.Register(td.Tables()...)
		sess := am.NewSession(plat, am.Config{Name: fmt.Sprintf("prune-%v", pruning)})
		before := plat.FS.BytesRead()
		start := time.Now()
		if _, err := eng.RunTez(sess, fmt.Sprintf("q55-%v", pruning), sql, fmt.Sprintf("/bench/abl/prune-%v", pruning)); err != nil {
			sess.Close()
			return nil, err
		}
		dur := time.Since(start)
		sess.Close()
		readBytes := plat.FS.BytesRead() - before
		mode := "pruning off"
		if pruning {
			mode = "pruning on"
		}
		rep.AddRow(mode, ms(dur), fmt.Sprintf("%d", readBytes))
	}
	return rep, nil
}

// AblationLocality measures locality-aware scheduling with delay
// scheduling (§4.2) against placement-oblivious allocation.
func AblationLocality(sc Scale) (*Report, error) {
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Locality-aware scheduling + delay scheduling (§4.2)",
		Headers: []string{"mode", "total (ms)", "node-local", "rack-local", "off-switch"},
	}
	for _, disable := range []bool{true, false} {
		cfg := platform.Default(8)
		cfg.Cluster.DisableDelayScheduling = disable
		if disable {
			cfg.Cluster.NodeLocalityDelay = 0
			cfg.Cluster.RackLocalityDelay = 0
		}
		plat := platform.New(cfg)
		if err := writeWords(plat, "/bench/words", sc.PigRows); err != nil {
			plat.Stop()
			return nil, err
		}
		amCfg := am.Config{Name: fmt.Sprintf("loc-%v", !disable)}
		sess := am.NewSession(plat, amCfg)
		job := mapreduce.JobConf{
			Name: "wc", Map: "bench.tokenize", Reduce: "bench.count",
			InputPaths: []string{"/bench/words"}, OutputPath: "/bench/abl/loc",
		}
		start := time.Now()
		res, err := mapreduce.RunOnTez(sess, job)
		dur := time.Since(start)
		sess.Close()
		plat.Stop()
		if err != nil {
			return nil, err
		}
		mode := "delay scheduling on"
		if disable {
			mode = "delay scheduling off"
		}
		rep.AddRow(mode, ms(dur),
			fmt.Sprintf("%d", res.Counters.Get("LOCALITY_NODE_LOCAL")),
			fmt.Sprintf("%d", res.Counters.Get("LOCALITY_RACK_LOCAL")),
			fmt.Sprintf("%d", res.Counters.Get("LOCALITY_OFF_SWITCH")))
	}
	return rep, nil
}

// AblationSlowStart measures shuffle slow-start (§3.4): overlapping the
// fetch with remaining producers versus waiting for all of them.
func AblationSlowStart(sc Scale) (*Report, error) {
	cfg := platform.Default(6)
	// Slow start pays off when the shuffle transfer is expensive enough to
	// be worth overlapping with the tail of the map phase.
	cfg.Shuffle.DelayPerByteRemote = 60 * time.Nanosecond
	cfg.Shuffle.DelayPerByteRack = 40 * time.Nanosecond
	plat := platform.New(cfg)
	defer plat.Stop()
	if err := writeWords(plat, "/bench/words", sc.PigRows*3); err != nil {
		return nil, err
	}
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Shuffle slow-start (§3.4)",
		Headers: []string{"mode", "total (ms)"},
	}
	for _, disable := range []bool{true, false} {
		cfg := am.Config{Name: fmt.Sprintf("ss-%v", !disable), DisableSlowStart: disable}
		dur, _, _, err := timeWordCountSession(plat, cfg, 2)
		if err != nil {
			return nil, err
		}
		mode := "slow-start on"
		if disable {
			mode = "slow-start off"
		}
		rep.AddRow(mode, ms(dur))
	}
	return rep, nil
}

// AblationParallelFetch measures the parallel shuffle fetcher pool
// (§3.4): with per-byte transfer costs dominated by remote fetches, a
// reducer pulling many producer outputs pays the max of overlapping
// transfer delays instead of their sum.
func AblationParallelFetch(sc Scale) (*Report, error) {
	cfg := platform.Default(6)
	// Make the shuffle remote-heavy so serial fetching is the bottleneck:
	// transfer delay well above the slow-start ablation's, plus a per-fetch
	// base latency that a serial pump pays once per producer.
	cfg.Shuffle.FetchBaseLatency = 500 * time.Microsecond
	cfg.Shuffle.DelayPerByteRemote = 400 * time.Nanosecond
	cfg.Shuffle.DelayPerByteRack = 300 * time.Nanosecond
	plat := platform.New(cfg)
	defer plat.Stop()
	if err := writeWords(plat, "/bench/words", sc.PigRows*10); err != nil {
		return nil, err
	}
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Parallel shuffle fetchers (§3.4)",
		Headers: []string{"mode", "total (ms)"},
	}
	for _, disable := range []bool{true, false} {
		// Best of two runs per mode: scheduling jitter at simulation scale
		// is large relative to the fetch savings being measured.
		var best time.Duration
		for rerun := 0; rerun < 2; rerun++ {
			cfg := am.Config{Name: fmt.Sprintf("pf-%v-%d", !disable, rerun), DisableParallelFetch: disable}
			dur, _, _, err := timeWordCountSession(plat, cfg, 2)
			if err != nil {
				return nil, err
			}
			if best == 0 || dur < best {
				best = dur
			}
		}
		mode := "parallel fetch on"
		if disable {
			mode = "parallel fetch off (serial)"
		}
		rep.AddRow(mode, ms(best))
	}
	return rep, nil
}

// AblationObjectRegistry measures the shared object registry (§4.2): how
// many broadcast-join hash tables are built with and without caching.
func AblationObjectRegistry(sc Scale) (*Report, error) {
	plat := platform.New(platform.Default(4))
	defer plat.Stop()
	td, err := data.GenTPCDS(plat.FS, sc.TPCDSSales, 14)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Shared object registry: broadcast-join hash table (§4.2)",
		Headers: []string{"mode", "query (ms)", "hash tables built", "cache hits"},
	}
	sql := `SELECT i.i_category, sum(ss.ss_sales_price) AS rev
		FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk
		GROUP BY i.i_category ORDER BY rev DESC`
	for _, disable := range []bool{true, false} {
		eng := hive.NewEngine()
		eng.BroadcastThreshold = 1 << 30 // force map join
		eng.Exec = relop.Config{DefaultPartitions: 8, DisableRegistryCache: disable}
		eng.Register(td.Tables()...)
		sess := am.NewSession(plat, am.Config{Name: fmt.Sprintf("reg-%v", !disable)})
		start := time.Now()
		res, err := eng.RunTez(sess, fmt.Sprintf("regq-%v", disable), sql, fmt.Sprintf("/bench/abl/reg-%v", disable))
		dur := time.Since(start)
		sess.Close()
		if err != nil {
			return nil, err
		}
		mode := "registry on"
		if disable {
			mode = "registry off"
		}
		rep.AddRow(mode, ms(dur),
			fmt.Sprintf("%d", res.Counters.Get("HASHTABLE_BUILDS")),
			fmt.Sprintf("%d", res.Counters.Get("HASHTABLE_CACHE_HITS")))
	}
	return rep, nil
}

// Ablations runs the whole ablation suite.
func Ablations(sc Scale) ([]*Report, error) {
	runners := []func(Scale) (*Report, error){
		AblationContainerReuse,
		AblationSession,
		AblationAutoParallelism,
		AblationPartitionPruning,
		AblationLocality,
		AblationSlowStart,
		AblationParallelFetch,
		AblationObjectRegistry,
		AblationSpeculation,
	}
	var out []*Report
	for _, r := range runners {
		rep, err := r(sc)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// slowFirstAttempt simulates an environment-induced straggler: one task's
// first attempt stalls until killed; any re-attempt is fast.
type slowFirstAttempt struct{ ctx *runtime.Context }

func (p *slowFirstAttempt) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *slowFirstAttempt) Run(_ map[string]runtime.Input, out map[string]runtime.Output) error {
	if p.ctx.Meta.Task == 0 && p.ctx.Meta.Attempt == 0 {
		select {
		case <-p.ctx.Stop:
			return nil
		case <-time.After(2 * time.Second):
			return fmt.Errorf("straggler ran to its timeout")
		}
	}
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	return w.(runtime.KVWriter).Write([]byte(fmt.Sprintf("t%d", p.ctx.Meta.Task)), []byte("ok"))
}
func (p *slowFirstAttempt) Close() error { return nil }

func init() {
	runtime.RegisterProcessor("bench.straggler", func() runtime.Processor { return &slowFirstAttempt{} })
}

// AblationSpeculation measures straggler mitigation (§4.2): a DAG with one
// environment-stuck task, with and without speculative execution. Without
// speculation the straggler runs to its 2s timeout and fails the attempt;
// with it, a speculative twin finishes the task long before.
func AblationSpeculation(sc Scale) (*Report, error) {
	rep := &Report{
		Figure:  "Ablation",
		Title:   "Speculative execution (§4.2)",
		Headers: []string{"mode", "total (ms)", "speculative attempts"},
		Notes:   []string{"one task's first attempt hangs for 2s (an environment-induced straggler)"},
	}
	for _, speculate := range []bool{false, true} {
		plat := platform.New(platform.Default(4))
		d := dagpkg.New("straggle")
		v := d.AddVertex("v", plugin.Desc("bench.straggler", nil), 8)
		v.Sinks = []dagpkg.DataSink{{
			Name:      "sink",
			Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/bench/abl/spec"}),
			Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/bench/abl/spec"}),
		}}
		cfg := am.Config{
			Name:                    fmt.Sprintf("spec-%v", speculate),
			Speculation:             speculate,
			SpeculationInterval:     2 * time.Millisecond,
			SpeculationFactor:       4,
			SpeculationMinCompleted: 3,
			MaxTaskAttempts:         4,
		}
		start := time.Now()
		res, err := am.RunDAG(plat, cfg, d)
		dur := time.Since(start)
		plat.FS.DeletePrefix("/bench/abl/spec/")
		plat.Stop()
		if err != nil {
			return nil, err
		}
		mode := "speculation off"
		if speculate {
			mode = "speculation on"
		}
		rep.AddRow(mode, ms(dur), fmt.Sprintf("%d", res.Counters.Get("SPECULATIVE_ATTEMPTS")))
	}
	return rep, nil
}
