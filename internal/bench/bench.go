// Package bench regenerates the paper's evaluation (§6, Figures 8–13) on
// the simulated cluster, plus ablation experiments for the design choices
// the paper credits (container reuse, sessions, auto parallelism, dynamic
// partition pruning, locality, speculation, slow start, the shared object
// registry). Each runner builds a fresh platform with realistic simulated
// overheads (platform.Default), generates synthetic data at the requested
// scale, runs the Tez and baseline variants, and reports the same rows or
// series the paper's figure shows. Absolute numbers are simulation-scale;
// the shape — who wins, by roughly what factor — is the reproduction
// target.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Scale sizes an experiment run.
type Scale struct {
	Name string

	TPCDSSales int // fact rows (Figure 8)
	TPCHOrders int // orders (Figure 9; lineitem ≈ 4×)
	NodesF8    int
	NodesF9    int

	PigRows int // per-input rows for the ETL mix (Figure 10)

	KMeansPoints int
	KMeansIters  []int // Figure 11's 10/50/100 series

	SparkUsers    int
	SparkRows     int   // base dataset rows (Figure 12)
	SparkScales   []int // multipliers standing in for 100GB..1TB (Figure 13)
	SparkExecs    int   // service executors requested per user
	SparkClusterN int
}

// Small finishes in seconds — the default for `go test -bench`.
var Small = Scale{
	Name:       "small",
	TPCDSSales: 4000, TPCHOrders: 800,
	NodesF8: 8, NodesF9: 16,
	PigRows:      3000,
	KMeansPoints: 2000, KMeansIters: []int{2, 5, 10},
	SparkUsers: 5, SparkRows: 4000, SparkScales: []int{1, 2, 4},
	SparkExecs: 6, SparkClusterN: 4, // 16 slots vs 30 requested
}

// Full mirrors the paper's parameters more closely (minutes of wall time).
var Full = Scale{
	Name:       "full",
	TPCDSSales: 40000, TPCHOrders: 6000,
	NodesF8: 20, NodesF9: 48,
	PigRows:      20000,
	KMeansPoints: 10000, KMeansIters: []int{10, 50, 100},
	SparkUsers: 5, SparkRows: 8000, SparkScales: []int{1, 2, 4, 8},
	SparkExecs: 8, SparkClusterN: 7, // 28 slots vs 40 requested
}

// Report is one regenerated table or series.
type Report struct {
	Figure  string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// String renders an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.Figure, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

func speedup(base, tez time.Duration) string {
	if tez <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(tez))
}
