// Multi-tenant service benchmark (ISSUE 7 acceptance): ≥1000 small DAGs
// submitted open-loop from ≥4 tenants through the admission-controlled
// service, with bounded queues shedding the overload as typed rejections.
// Reported as sustained DAGs/sec plus end-to-end p50/p99 (admission →
// terminal result), persisted to BENCH_service.json by tez-bench.
package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tez/internal/dag"
	"tez/internal/metrics"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/service"
)

const (
	svcNodes      = 16
	svcTenants    = 4
	svcTargetDAGs = 1200 // admitted DAGs per run (acceptance floor: 1000)
	svcTasks      = 4    // tasks per DAG — "small concurrent DAGs"
	svcSubmitters = 2    // open-loop submitter goroutines per tenant
)

// ServiceBenchResult is one JSON row of BENCH_service.json.
type ServiceBenchResult struct {
	Experiment string  `json:"experiment"`
	Nodes      int     `json:"nodes"`
	Tenants    int     `json:"tenants"`
	Admitted   int64   `json:"admitted"`
	Rejected   int64   `json:"rejected_typed"` // typed sheds (queue-full + over-cap)
	DurationMS float64 `json:"duration_ms"`
	DAGsPerSec float64 `json:"dags_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
}

// ServiceThroughput floods the service from svcTenants weighted tenants
// until svcTargetDAGs small no-op DAGs have been admitted and finished.
// Submitters run open-loop (no think time), so the bounded queues and the
// global in-flight cap are constantly probed: the run is invalid unless
// typed rejections actually occurred.
func ServiceThroughput() (ServiceBenchResult, error) {
	registerNoopProcessor()
	plat := platform.New(platform.Fast(svcNodes))
	defer plat.Stop()
	svc := service.New(plat, service.Config{
		Tenants: []service.TenantConfig{
			{Name: "t0", Weight: 2, Workers: 4, QueueDepth: 16},
			{Name: "t1", Weight: 1, Workers: 4, QueueDepth: 16},
			{Name: "t2", Weight: 1, Workers: 4, QueueDepth: 16},
			{Name: "t3", Weight: 1, Workers: 4, QueueDepth: 16},
		},
		MaxInFlight: 96,
	})
	defer svc.Close()

	var (
		admitted atomic.Int64
		rejected atomic.Int64
		lat      metrics.Quantiles
		subs     = make(chan *service.Submission, svcTargetDAGs+256)
		collect  sync.WaitGroup
		submit   sync.WaitGroup
		failed   atomic.Int64
	)
	collect.Add(1)
	go func() {
		defer collect.Done()
		for sub := range subs {
			res := sub.Wait()
			lat.Observe(res.Total)
			if res.Err != nil {
				failed.Add(1)
			}
		}
	}()

	start := time.Now()
	for ti := 0; ti < svcTenants; ti++ {
		for c := 0; c < svcSubmitters; c++ {
			submit.Add(1)
			go func(tenant string, c int) {
				defer submit.Done()
				for i := 0; admitted.Load() < svcTargetDAGs; i++ {
					d := dag.New(fmt.Sprintf("b-%s-%d-%d", tenant, c, i))
					d.AddVertex("work", plugin.Desc("bench.noop", nil), svcTasks)
					sub, err := svc.Submit(tenant, d)
					if err != nil {
						// Typed shed under open-loop overload — the admission
						// plane doing its job. Anything unclassified is a bug.
						if !errors.Is(err, service.ErrQueueFull) && !errors.Is(err, service.ErrOverQuota) {
							failed.Add(1)
							return
						}
						rejected.Add(1)
						time.Sleep(100 * time.Microsecond)
						continue
					}
					admitted.Add(1)
					subs <- sub
				}
			}(fmt.Sprintf("t%d", ti), c)
		}
	}
	submit.Wait()
	close(subs)
	collect.Wait()
	svc.Drain(service.DrainFinish)
	dur := time.Since(start)

	if failed.Load() > 0 {
		return ServiceBenchResult{}, fmt.Errorf("service bench: %d submissions failed", failed.Load())
	}
	if rejected.Load() == 0 {
		return ServiceBenchResult{}, fmt.Errorf("service bench: open-loop load produced no typed rejections — admission bounds never engaged")
	}
	sum := lat.Summary()
	return ServiceBenchResult{
		Experiment: "service-load",
		Nodes:      svcNodes,
		Tenants:    svcTenants,
		Admitted:   admitted.Load(),
		Rejected:   rejected.Load(),
		DurationMS: round1(float64(dur.Microseconds()) / 1e3),
		DAGsPerSec: float64(int(float64(admitted.Load()) / dur.Seconds())),
		P50MS:      round1(float64(sum.P50.Microseconds()) / 1e3),
		P99MS:      round1(float64(sum.P99.Microseconds()) / 1e3),
	}, nil
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }

// ServiceResults runs the service benchmark suite.
func ServiceResults() ([]ServiceBenchResult, error) {
	row, err := ServiceThroughput()
	if err != nil {
		return nil, err
	}
	return []ServiceBenchResult{row}, nil
}

// ServiceReport renders the rows as a table.
func ServiceReport(rows []ServiceBenchResult) *Report {
	rep := &Report{
		Figure:  "service",
		Title:   "Multi-tenant DAG service: admission-controlled throughput",
		Headers: []string{"experiment", "tenants", "admitted", "shed (typed)", "dags/sec", "p50 ms", "p99 ms"},
	}
	for _, r := range rows {
		rep.AddRow(r.Experiment,
			fmt.Sprintf("%d", r.Tenants),
			fmt.Sprintf("%d", r.Admitted),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%.0f", r.DAGsPerSec),
			fmt.Sprintf("%.1f", r.P50MS),
			fmt.Sprintf("%.1f", r.P99MS))
	}
	rep.Notes = append(rep.Notes,
		"open-loop submitters; rejections are typed sheds (ErrQueueFull/ErrOverQuota), not errors")
	return rep
}
