package bench

import (
	"fmt"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/hive"
	"tez/internal/platform"
	"tez/internal/relop"
)

// namedQuery is one benchmark query.
type namedQuery struct {
	name string
	sql  string
}

// tpcdsQueries are TPC-DS-derived star-join/aggregation shapes (Figure 8).
// q55 runs against the date-partitioned fact copy, so the Tez plan prunes
// partitions dynamically from the filtered date dimension.
var tpcdsQueries = []namedQuery{
	{"q55", `SELECT i.i_brand_id, sum(ss.ss_sales_price) AS rev
		FROM store_sales_p ss
		JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
		JOIN item i ON ss.ss_item_sk = i.i_item_sk
		WHERE d.d_moy = 11 AND d.d_year = 1998
		GROUP BY i.i_brand_id ORDER BY rev DESC LIMIT 10`},
	{"q3", `SELECT d.d_year, i.i_brand_id, sum(ss.ss_sales_price) AS agg
		FROM store_sales ss
		JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
		JOIN item i ON ss.ss_item_sk = i.i_item_sk
		WHERE i.i_manufact_id = 5 AND d.d_moy = 12
		GROUP BY d.d_year, i.i_brand_id ORDER BY agg DESC LIMIT 10`},
	{"q7", `SELECT i.i_category, avg(ss.ss_quantity) AS qty
		FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk
		GROUP BY i.i_category ORDER BY i.i_category`},
	{"q19", `SELECT i.i_brand, sum(ss.ss_sales_price) AS rev
		FROM store_sales ss
		JOIN item i ON ss.ss_item_sk = i.i_item_sk
		JOIN store s ON ss.ss_store_sk = s.s_store_sk
		WHERE s.s_state = 'CA'
		GROUP BY i.i_brand ORDER BY rev DESC LIMIT 10`},
	{"q27", `SELECT s.s_state, avg(ss.ss_quantity) AS q
		FROM store_sales ss JOIN store s ON ss.ss_store_sk = s.s_store_sk
		GROUP BY s.s_state ORDER BY s.s_state`},
}

// tpchQueries are TPC-H-derived shapes (Figure 9).
var tpchQueries = []namedQuery{
	{"q1", `SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty,
			sum(l_extendedprice) AS sum_price, avg(l_discount) AS avg_disc, count(*) AS cnt
		FROM lineitem WHERE l_shipdate <= 19980902
		GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`},
	{"q3", `SELECT l.l_orderkey, sum(l.l_extendedprice) AS rev
		FROM lineitem l
		JOIN orders o ON l.l_orderkey = o.o_orderkey
		JOIN customer c ON o.o_custkey = c.c_custkey
		WHERE c.c_mktsegment = 'BUILDING' AND o.o_orderdate < 19950315
		GROUP BY l.l_orderkey ORDER BY rev DESC LIMIT 10`},
	{"q5", `SELECT n.n_name, sum(l.l_extendedprice) AS rev
		FROM lineitem l
		JOIN supplier s ON l.l_suppkey = s.s_suppkey
		JOIN nation n ON s.s_nationkey = n.n_nationkey
		GROUP BY n.n_name ORDER BY rev DESC`},
	{"q12", `SELECT l_linestatus, count(*) AS n
		FROM lineitem WHERE l_shipdate BETWEEN 19940101 AND 19941231
		GROUP BY l_linestatus ORDER BY l_linestatus`},
	{"q18", `SELECT o.o_orderkey, sum(l.l_quantity) AS qty
		FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey
		GROUP BY o.o_orderkey ORDER BY qty DESC LIMIT 10`},
}

// runHiveSuite measures every query on the MR chain and on Tez (shared
// pre-warmed session, as Hive deployments run).
func runHiveSuite(figure, title string, nodes int, queries []namedQuery,
	setup func(plat *platform.Platform, eng *hive.Engine) error) (*Report, error) {

	plat := platform.New(platform.Default(nodes))
	defer plat.Stop()
	eng := hive.NewEngine()
	eng.Exec = relop.Config{DefaultPartitions: 8}
	if err := setup(plat, eng); err != nil {
		return nil, err
	}

	rep := &Report{
		Figure:  figure,
		Title:   title,
		Headers: []string{"query", "MR (ms)", "Tez (ms)", "speedup", "MR jobs"},
		Notes: []string{
			fmt.Sprintf("%d simulated nodes; Tez: single DAG per query, broadcast joins, auto reduce parallelism, shared pre-warmed session", nodes),
			"MR: one AM per job, chain materialised through the DFS, fixed reducers, no container reuse",
		},
	}

	sess := am.NewSession(plat, am.Config{
		Name:                 "hive-tez",
		PrewarmContainers:    4,
		ContainerIdleRelease: 200 * time.Millisecond,
	})
	defer sess.Close()

	for _, q := range queries {
		mrOut := "/bench/" + q.name + "-mr"
		start := time.Now()
		stats, err := eng.RunMR(plat, am.Config{Name: q.name + "-mr"}, q.name+"-mr", q.sql, mrOut)
		if err != nil {
			return nil, fmt.Errorf("%s on MR: %w", q.name, err)
		}
		mrDur := time.Since(start)

		tezOut := "/bench/" + q.name + "-tez"
		start = time.Now()
		if _, err := eng.RunTez(sess, q.name+"-tez", q.sql, tezOut); err != nil {
			return nil, fmt.Errorf("%s on Tez: %w", q.name, err)
		}
		tezDur := time.Since(start)

		// Cross-check: both backends computed the same result.
		a, err := relop.ReadStored(plat.FS, mrOut)
		if err != nil {
			return nil, err
		}
		b, err := relop.ReadStored(plat.FS, tezOut)
		if err != nil {
			return nil, err
		}
		if len(a) != len(b) {
			return nil, fmt.Errorf("%s: MR %d rows vs Tez %d rows", q.name, len(a), len(b))
		}
		rep.AddRow(q.name, ms(mrDur), ms(tezDur), speedup(mrDur, tezDur), fmt.Sprintf("%d", stats.Jobs))
	}
	return rep, nil
}

// HiveTPCDS regenerates Figure 8: Hive, TPC-DS derived workload, Tez vs MR.
func HiveTPCDS(sc Scale) (*Report, error) {
	return runHiveSuite("Figure 8", "Hive: TPC-DS derived workload ("+sc.Name+" scale)",
		sc.NodesF8, tpcdsQueries,
		func(plat *platform.Platform, eng *hive.Engine) error {
			td, err := data.GenTPCDS(plat.FS, sc.TPCDSSales, 8)
			if err != nil {
				return err
			}
			eng.Register(td.Tables()...)
			return nil
		})
}

// HiveTPCH regenerates Figure 9: Hive, TPC-H derived workload at larger
// cluster scale, Tez vs MR.
func HiveTPCH(sc Scale) (*Report, error) {
	return runHiveSuite("Figure 9", "Hive: TPC-H derived workload ("+sc.Name+" scale)",
		sc.NodesF9, tpchQueries,
		func(plat *platform.Platform, eng *hive.Engine) error {
			tp, err := data.GenTPCH(plat.FS, sc.TPCHOrders, 9)
			if err != nil {
				return err
			}
			eng.Register(tp.Tables()...)
			return nil
		})
}
