package relop

import (
	"fmt"

	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/plugin"
)

// The MapReduce-shaped backend: the same plan is lowered to a chain of
// 2-level jobs (map vertices + one reduce vertex), every job boundary
// materialised through the DFS, exactly as Hive/Pig executed before their
// Tez rewrite (§5.2–5.3). Tez-only features (broadcast joins, dynamic
// partition pruning, runtime re-parallelism) are unavailable here; shared
// scans are re-executed per job, as MR forces.

// MRJob is one compiled job of the chain.
type MRJob struct {
	Name string
	DAG  *dag.DAG
}

// CompileMR lowers the plan roots to an ordered job chain. tempRunID
// namespaces intermediate data; call CleanupMR afterwards.
func CompileMR(cfg Config, name string, roots []*Node) ([]MRJob, string, error) {
	cfg = cfg.withDefaults()
	c := NewCompiler(cfg)
	c.forMR = true
	if err := Validate(roots); err != nil {
		return nil, "", err
	}
	for _, r := range roots {
		if err := c.compileStore(r); err != nil {
			return nil, "", err
		}
	}
	// Job specs below copy the stage emits by value, so the vectorize
	// flags must be stamped first.
	c.vectorize()
	tempRoot := fmt.Sprintf("%s/%s", cfg.TempRoot, name)

	// Which grouped stages feed other grouped stages (need temp output)?
	consumers := map[*bStage][]*bStage{} // producer -> grouped consumers
	for _, st := range c.stages {
		for _, e := range st.inEdges {
			consumers[e.from] = append(consumers[e.from], st)
		}
	}
	tempPath := func(st *bStage) string { return fmt.Sprintf("%s/%s", tempRoot, st.name) }

	var jobs []MRJob
	seq := 0

	// mapVertexFor builds the map-side vertex spec feeding consumer G from
	// producer P within one job.
	mapVertexFor := func(d *dag.DAG, p *bStage, g *bStage) (*dag.Vertex, error) {
		spec := StageSpec{}
		var sources []dag.DataSource
		if !p.grouped {
			// Original map stage: its sources plus only the emits to G.
			sources = p.sources
			for _, in := range p.spec.Inputs {
				if in.Mode == InSource {
					spec.Inputs = append(spec.Inputs, in)
				} else {
					return nil, fmt.Errorf("relop: MR map stage %s has non-source input %s", p.name, in.Name)
				}
			}
			for _, em := range p.spec.Emits {
				if em.Output == g.name && em.Kind == EmitShuffle {
					spec.Emits = append(spec.Emits, em)
				}
			}
		} else {
			// Re-read the producer's materialised output.
			sources = []dag.DataSource{{
				Name:  "src",
				Input: plugin.Desc(library.DFSSourceInputName, nil),
				Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{
					Paths:            []string{},
					DesiredSplitSize: cfg.SplitSize,
				}),
			}}
			// The initializer needs the committed part files; they are
			// only known at run time, so point it at the directory via a
			// glob-style prefix: the split initializer takes exact paths,
			// so we record the temp DIRECTORY and resolve in RunMRJobs.
			sources[0].Initializer = plugin.Desc(mrTempInitializerName, mrTempInitializerConfig{
				Dir:              tempPath(p),
				DesiredSplitSize: cfg.SplitSize,
			})
			spec.Inputs = []StageInput{{Name: "src", Mode: InSource}}
			for _, em := range p.spec.Emits {
				if em.Output == g.name && em.Kind == EmitShuffle {
					em.Input = "src"
					spec.Emits = append(spec.Emits, em)
				}
			}
		}
		v := d.AddVertex(p.name, plugin.Desc(StageProcessorName, spec), -1)
		v.Sources = sources
		return v, nil
	}

	for _, g := range c.stages {
		if !g.grouped {
			continue
		}
		seq++
		d := dag.New(fmt.Sprintf("%s_job%02d_%s", name, seq, g.name))
		rspec := StageSpec{Group: g.spec.Group}
		rv := d.AddVertex(g.name, plugin.Descriptor{}, cfg.DefaultPartitions) // descriptor set below
		for _, e := range g.inEdges {
			mv, err := mapVertexFor(d, e.from, g)
			if err != nil {
				return nil, "", err
			}
			rspec.Inputs = append(rspec.Inputs, StageInput{Name: e.from.name, Mode: InGrouped})
			d.Connect(mv, rv, dag.EdgeProperty{
				Movement: dag.ScatterGather,
				Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
				Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
			})
		}
		if g.grouped && g.spec.Group.Kind == "sort" {
			rv.Parallelism = cfg.SortParallelism
		}
		// Final sinks stay; edges to other grouped stages become a temp
		// materialisation.
		rv.Sinks = g.sinks
		for _, em := range g.spec.Emits {
			if em.Kind == EmitSink {
				rspec.Emits = append(rspec.Emits, em)
			}
		}
		if len(consumers[g]) > 0 {
			sinkName := "mr_temp"
			rv.Sinks = append(rv.Sinks, dag.DataSink{
				Name:      sinkName,
				Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: tempPath(g)}),
				Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: tempPath(g)}),
			})
			tmp := EmitSpec{Input: "", Output: sinkName, Kind: EmitSink, Tag: -1}
			applyVectorize(&tmp, cfg.DisableVectorized)
			rspec.Emits = append(rspec.Emits, tmp)
		}
		rv.Processor = plugin.Desc(StageProcessorName, rspec)
		if err := d.Validate(); err != nil {
			return nil, "", err
		}
		jobs = append(jobs, MRJob{Name: d.Name, DAG: d})
	}

	// Map-only jobs: map stages with direct sinks.
	for _, m := range c.stages {
		if m.grouped || len(m.sinks) == 0 {
			continue
		}
		seq++
		d := dag.New(fmt.Sprintf("%s_job%02d_%s", name, seq, m.name))
		spec := StageSpec{}
		for _, in := range m.spec.Inputs {
			if in.Mode == InSource {
				spec.Inputs = append(spec.Inputs, in)
			}
		}
		for _, em := range m.spec.Emits {
			if em.Kind == EmitSink {
				spec.Emits = append(spec.Emits, em)
			}
		}
		v := d.AddVertex(m.name, plugin.Desc(StageProcessorName, spec), -1)
		v.Sources = m.sources
		v.Sinks = m.sinks
		if err := d.Validate(); err != nil {
			return nil, "", err
		}
		jobs = append(jobs, MRJob{Name: d.Name, DAG: d})
	}
	return jobs, tempRoot, nil
}

// ordering note: jobs were appended grouped-stages-first in stage creation
// order, which is a valid topological order because compile() creates
// producers before consumers.
