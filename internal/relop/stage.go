package relop

// The stage language: what one Tez vertex (or one MR map/reduce phase)
// executes. StageSpec is carried as the opaque processor payload — the
// "code injection via configuration" pattern of §3.2.

// Input modes.
const (
	// InSource reads a DFS root input (rows in record-file values).
	InSource = "source"
	// InUnordered reads a broadcast/one-to-one/unordered edge.
	InUnordered = "unordered"
	// InGrouped reads an ordered, grouped shuffle edge.
	InGrouped = "grouped"
	// InBuild reads an unordered edge into a hash-join build table (not
	// part of the stage's row stream).
	InBuild = "build"
)

// StageInput declares one named input of the stage. Edge inputs are named
// after their source vertex (the runner's convention); root inputs after
// their data source.
type StageInput struct {
	Name string
	Mode string
	// BuildKeys evaluate the hash-table key on build rows (InBuild).
	BuildKeys []*Expr
	// CacheInRegistry shares the built hash table through the container's
	// object registry (§4.2); ablation toggles it off.
	CacheInRegistry bool
	// Batched marks a build input whose edge carries whole encoded column
	// batches (col.EncodeBatch frames) instead of per-row records. Set by
	// the compiler together with the producing emit's Batched flag; the
	// wire format is a compile-time contract between the two ends.
	Batched bool
}

// GroupOp is the operation applied to a grouped input.
type GroupOp struct {
	// Kind: "join", "agg", "sort", "distinct".
	Kind string
	// join: number of tagged sides.
	Sides int
	// agg: first GroupWidth value columns are the group key; aggregate i
	// reads value column GroupWidth+i.
	GroupWidth int
	Aggs       []AggFuncSpec
	// sort: stop after Limit rows (0 = all).
	Limit int
	// Vectorize enables the typed aggregation kernels for "agg" groups
	// (identical results to the row path; see DESIGN.md §13). Set by the
	// compiler, subject to Config.DisableVectorized.
	Vectorize bool
}

// AggFuncSpec is one aggregate function over a fixed value column.
type AggFuncSpec struct {
	Func string // sum, count, min, max, avg
	Col  int
}

// PipeOp is one step of a row pipeline.
type PipeOp struct {
	// Kind: "filter", "project", "hashjoin".
	Kind    string
	Filter  *Expr
	Project []*Expr
	HJ      *HashJoinSpec
}

// HashJoinSpec probes a build input's hash table; for each match the
// output row is probe ++ build.
type HashJoinSpec struct {
	// Input names the InBuild stage input.
	Input string
	// ProbeKeys evaluate the lookup key on the probe row.
	ProbeKeys []*Expr
}

// Emit kinds.
const (
	// EmitShuffle writes (orderable key, row) to a scatter-gather edge.
	EmitShuffle = "shuffle"
	// EmitBroadcast writes rows to a broadcast/unordered edge.
	EmitBroadcast = "broadcast"
	// EmitSink writes rows to a DFS data sink.
	EmitSink = "sink"
	// EmitInitializer sends each row's key value to a data-source
	// initializer as an InputInitializerEvent (dynamic partition pruning).
	EmitInitializer = "initializer"
	// EmitVM sends the stage's rows to a VertexManager as a
	// VertexManagerEvent payload (sample histograms).
	EmitVM = "vm"
)

// EmitSpec writes the stage's rows somewhere, after its own pipeline.
// For "map" stages Input names which stage input's rows feed this emit
// (union branches differ); for grouped stages Input is empty (group
// output).
type EmitSpec struct {
	Input  string
	Output string // output/sink name, or target vertex for initializer/vm
	Kind   string
	Pipe   []PipeOp
	// shuffle: key expressions and per-key descending flags.
	Keys []*Expr
	Desc []bool
	// Tag >= 0 prefixes values with a join-side tag byte.
	Tag int
	// SampleRate in (0,1] emits only a deterministic sample of rows.
	SampleRate float64
	// initializer: the data source name at the target vertex.
	TargetSource string
	// Vectorize marks this emit's pipeline for batch-at-a-time columnar
	// execution; VecReason records why it stayed row-at-a-time (surfaced
	// by tez-hive/tez-pig explain). Set by the compiler's vectorize pass.
	Vectorize bool
	VecReason string
	// Batched switches a broadcast emit's wire format to whole encoded
	// column batches. Only set when the consumer's matching
	// StageInput.Batched agrees (compile-time contract).
	Batched bool
}

// StageSpec is the full program of one stage.
type StageSpec struct {
	Inputs []StageInput
	Group  *GroupOp // nil for map stages
	Emits  []EmitSpec
}
