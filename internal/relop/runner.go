package relop

import (
	"fmt"
	"time"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/dfs"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/row"
	"tez/internal/runtime"
)

// mrTempInitializerName resolves an MR temp directory's part files at run
// time (they do not exist when the job chain is compiled).
const mrTempInitializerName = "relop.mr_temp_initializer"

func init() {
	runtime.RegisterInitializer(mrTempInitializerName, func() runtime.Initializer {
		return mrTempInitializer{}
	})
}

type mrTempInitializerConfig struct {
	Dir              string
	DesiredSplitSize int64
}

type mrTempInitializer struct{}

// Run lists the directory and delegates to the standard split logic.
func (mrTempInitializer) Run(ctx *runtime.InitializerContext) (*runtime.InitializerResult, error) {
	var cfg mrTempInitializerConfig
	if err := plugin.Decode(ctx.Payload, &cfg); err != nil {
		return nil, err
	}
	files := ctx.FS.List(cfg.Dir + "/part-")
	inner := library.SplitInitializer{}
	ctx2 := *ctx
	ctx2.Payload = plugin.MustEncode(library.SplitSourceConfig{
		Paths:            files,
		DesiredSplitSize: cfg.DesiredSplitSize,
	})
	return inner.Run(&ctx2)
}

// RunTez compiles the plan to one DAG and runs it in the session.
func RunTez(s *am.Session, cfg Config, name string, roots []*Node) (am.DAGResult, error) {
	d, err := NewCompiler(cfg).CompileTez(name, roots)
	if err != nil {
		return am.DAGResult{}, err
	}
	return s.Run(d)
}

// MRStats summarises a job-chain execution.
type MRStats struct {
	Jobs      int
	Duration  time.Duration
	PerJob    []time.Duration
	TempFiles int
}

// RunMR compiles the plan to an MR job chain and executes it: one fresh
// AM per job (no cross-job container reuse), fixed reduce parallelism, all
// intermediate data through the DFS — the pre-Tez execution model.
func RunMR(plat *platform.Platform, amCfg am.Config, cfg Config, name string, roots []*Node) (MRStats, error) {
	jobs, tempRoot, err := CompileMR(cfg, name, roots)
	if err != nil {
		return MRStats{}, err
	}
	// Enforce the MR execution model regardless of caller config.
	amCfg.DisableContainerReuse = true
	amCfg.DisableAutoParallelism = true
	amCfg.PrewarmContainers = 0

	var stats MRStats
	start := time.Now()
	for _, job := range jobs {
		jobStart := time.Now()
		jobCfg := amCfg
		jobCfg.Name = job.Name
		res, err := am.RunDAG(plat, jobCfg, job.DAG)
		stats.PerJob = append(stats.PerJob, time.Since(jobStart))
		stats.Jobs++
		if err != nil {
			cleanupMR(plat.FS, tempRoot)
			return stats, fmt.Errorf("relop: MR job %s: %w", job.Name, err)
		}
		if res.Status != am.DAGSucceeded {
			cleanupMR(plat.FS, tempRoot)
			return stats, fmt.Errorf("relop: MR job %s: %v", job.Name, res.Status)
		}
	}
	stats.Duration = time.Since(start)
	stats.TempFiles = cleanupMR(plat.FS, tempRoot)
	return stats, nil
}

func cleanupMR(fs *dfs.FileSystem, tempRoot string) int {
	return fs.DeletePrefix(tempRoot + "/")
}

// WriteTable materialises rows as a catalogued table in the DFS: one
// record file per shard, rows in values, empty keys.
func WriteTable(fs *dfs.FileSystem, t *Table, shards int, rows []row.Row) error {
	if shards <= 0 {
		shards = 1
	}
	nodes := fs.LiveNodes()
	if len(nodes) == 0 {
		return fmt.Errorf("relop: no DFS nodes")
	}
	t.Files = nil
	t.Rows = int64(len(rows))
	t.SizeBytes = 0
	for s := 0; s < shards; s++ {
		path := fmt.Sprintf("/tables/%s/shard-%03d", t.Name, s)
		w, err := library.CreateRecordFile(fs, path, nodes[s%len(nodes)])
		if err != nil {
			return err
		}
		for i := s; i < len(rows); i += shards {
			buf := row.Encode(nil, rows[i])
			if err := w.Write(nil, buf); err != nil {
				return err
			}
			t.SizeBytes += int64(len(buf))
		}
		if err := w.Close(); err != nil {
			return err
		}
		t.Files = append(t.Files, path)
	}
	return nil
}

// WritePartitionedTable writes one file per partition value of column
// partCol (Hive-style static partitioning) so the pruning initializer can
// skip files.
func WritePartitionedTable(fs *dfs.FileSystem, t *Table, partCol int, rows []row.Row) error {
	nodes := fs.LiveNodes()
	if len(nodes) == 0 {
		return fmt.Errorf("relop: no DFS nodes")
	}
	groups := map[string][]row.Row{}
	var order []string
	vals := map[string]row.Value{}
	for _, r := range rows {
		k := string(row.EncodeKey(nil, r[partCol]))
		if _, ok := groups[k]; !ok {
			order = append(order, k)
			vals[k] = r[partCol]
		}
		groups[k] = append(groups[k], r)
	}
	t.Files = nil
	t.PartitionVals = nil
	t.PartitionCol = partCol
	t.Rows = int64(len(rows))
	t.SizeBytes = 0
	for i, k := range order {
		path := fmt.Sprintf("/tables/%s/part-%03d", t.Name, i)
		w, err := library.CreateRecordFile(fs, path, nodes[i%len(nodes)])
		if err != nil {
			return err
		}
		for _, r := range groups[k] {
			buf := row.Encode(nil, r)
			if err := w.Write(nil, buf); err != nil {
				return err
			}
			t.SizeBytes += int64(len(buf))
		}
		if err := w.Close(); err != nil {
			return err
		}
		t.Files = append(t.Files, path)
		t.PartitionVals = append(t.PartitionVals, vals[k])
	}
	return nil
}

// ReadRecordFile reads all rows of one table record file.
func ReadRecordFile(fs *dfs.FileSystem, path string) ([]row.Row, error) {
	splits, err := fs.Splits(path, 0)
	if err != nil {
		return nil, err
	}
	var out []row.Row
	for _, s := range splits {
		data, err := fs.ReadAt(path, "", s.Offset, s.Length)
		if err != nil {
			return nil, err
		}
		// Skip block padding between records.
		for len(data) > 0 {
			if data[0] == 0x00 {
				data = data[1:]
				continue
			}
			_, v, n, err := library.DecodeRecord(data)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				break
			}
			r, err := row.Decode(v)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
			data = data[n:]
		}
	}
	return out, nil
}

// ReadStored reads back the rows a StoreNode wrote.
func ReadStored(fs *dfs.FileSystem, path string) ([]row.Row, error) {
	var out []row.Row
	for _, f := range fs.List(path + "/part-") {
		data, err := fs.ReadFile(f, "")
		if err != nil {
			return nil, err
		}
		r := library.NewPaddedReader(data)
		for r.Next() {
			rr, err := row.Decode(r.Value())
			if err != nil {
				return nil, err
			}
			out = append(out, rr)
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EmitDAGOnly compiles without running (inspection/tests).
func EmitDAGOnly(cfg Config, name string, roots []*Node) (*dag.DAG, error) {
	return NewCompiler(cfg).CompileTez(name, roots)
}
