package relop

import (
	"fmt"
	"hash/fnv"

	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/row"
	"tez/internal/runtime"
)

// StageProcessorName is the registered processor hosting StageSpecs.
const StageProcessorName = "relop.stage"

func init() {
	runtime.RegisterProcessor(StageProcessorName, func() runtime.Processor { return &stageProcessor{} })
}

// PruneValues is the payload of initializer events and of VM histogram
// events: a bag of key values.
type PruneValues struct {
	Values []row.Value
}

type stageProcessor struct {
	ctx  *runtime.Context
	spec StageSpec
}

func (p *stageProcessor) Initialize(ctx *runtime.Context) error {
	p.ctx = ctx
	return plugin.Decode(ctx.Payload, &p.spec)
}

func (p *stageProcessor) Close() error { return nil }

// emitter is one EmitSpec bound to its writer and deferred-event state.
type emitter struct {
	spec   EmitSpec
	writer runtime.KVWriter
	proc   *stageProcessor
	tables map[string]map[string][]row.Row
	// deferred collects key values for initializer/vm emits, sent once at
	// stage end.
	deferred []row.Value
	count    int64
}

func (e *emitter) emit(r row.Row) error {
	return e.runPipe(r, e.spec.Pipe, e.terminal)
}

// runPipe applies the pipeline (hash joins may fan out) and calls sink.
func (e *emitter) runPipe(r row.Row, ops []PipeOp, sink func(row.Row) error) error {
	if len(ops) == 0 {
		return sink(r)
	}
	op := ops[0]
	rest := ops[1:]
	switch op.Kind {
	case "filter":
		if !Truthy(op.Filter.Eval(r)) {
			return nil
		}
		return e.runPipe(r, rest, sink)
	case "project":
		return e.runPipe(EvalAll(op.Project, r), rest, sink)
	case "hashjoin":
		table := e.tables[op.HJ.Input]
		if table == nil {
			return fmt.Errorf("relop: hash join against unknown build input %q", op.HJ.Input)
		}
		key := row.EncodeKey(nil, EvalAll(op.HJ.ProbeKeys, r)...)
		for _, build := range table[string(key)] {
			joined := append(r.Clone(), build...)
			if err := e.runPipe(joined, rest, sink); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("relop: unknown pipe op %q", op.Kind)
}

func (e *emitter) terminal(r row.Row) error {
	if e.spec.SampleRate > 0 && !sampled(r, e.spec.SampleRate) {
		return nil
	}
	e.count++
	switch e.spec.Kind {
	case EmitShuffle:
		key := e.shuffleKey(r)
		val := make([]byte, 0, 64)
		if e.spec.Tag >= 0 {
			val = append(val, byte(e.spec.Tag))
		}
		val = row.Encode(val, r)
		return e.writer.Write(key, val)
	case EmitBroadcast, EmitSink:
		return e.writer.Write(nil, row.Encode(nil, r))
	case EmitInitializer, EmitVM:
		e.deferred = append(e.deferred, e.spec.Keys[0].Eval(r))
		return nil
	}
	return fmt.Errorf("relop: unknown emit kind %q", e.spec.Kind)
}

// shuffleKey builds the orderable key with per-column direction.
func (e *emitter) shuffleKey(r row.Row) []byte {
	var key []byte
	for i, kx := range e.spec.Keys {
		seg := row.EncodeKey(nil, kx.Eval(r))
		if i < len(e.spec.Desc) && e.spec.Desc[i] {
			seg = row.DescendingKey(seg)
		}
		key = append(key, seg...)
	}
	return key
}

// flush sends deferred control events (§3.3: opaque payloads routed by
// the framework).
func (e *emitter) flush() {
	switch e.spec.Kind {
	case EmitInitializer:
		e.proc.ctx.Emit(event.InputInitializerEvent{
			TargetVertex:     e.spec.Output,
			TargetDataSource: e.spec.TargetSource,
			SrcVertex:        e.proc.ctx.Meta.Vertex,
			SrcTask:          e.proc.ctx.Meta.Task,
			Payload:          plugin.MustEncode(PruneValues{Values: e.deferred}),
		})
	case EmitVM:
		e.proc.ctx.Emit(event.VertexManagerEvent{
			TargetVertex: e.spec.Output,
			SrcVertex:    e.proc.ctx.Meta.Vertex,
			SrcTask:      e.proc.ctx.Meta.Task,
			Payload:      plugin.MustEncode(PruneValues{Values: e.deferred}),
		})
	}
}

func sampled(r row.Row, rate float64) bool {
	h := fnv.New32a()
	_, _ = h.Write(row.Encode(nil, r))
	return float64(h.Sum32()%1000000) < rate*1000000
}

func (p *stageProcessor) Run(inputs map[string]runtime.Input, outputs map[string]runtime.Output) error {
	// Bind emitters to writers.
	emitters := make([]*emitter, len(p.spec.Emits))
	tables := map[string]map[string][]row.Row{}
	for i := range p.spec.Emits {
		es := p.spec.Emits[i]
		em := &emitter{spec: es, proc: p, tables: tables}
		switch es.Kind {
		case EmitShuffle, EmitBroadcast, EmitSink:
			out, ok := outputs[es.Output]
			if !ok {
				return fmt.Errorf("relop: stage has no output %q", es.Output)
			}
			w, err := out.Writer()
			if err != nil {
				return err
			}
			kw, ok := w.(runtime.KVWriter)
			if !ok {
				return fmt.Errorf("relop: output %q writer is %T", es.Output, w)
			}
			em.writer = kw
		}
		emitters[i] = em
	}

	// Build hash tables (possibly from the shared object registry, §4.2).
	for _, in := range p.spec.Inputs {
		if in.Mode != InBuild {
			continue
		}
		table, err := p.buildTable(in, inputs)
		if err != nil {
			return err
		}
		tables[in.Name] = table
	}

	// Stream the inputs. All grouped inputs are merged into one key-ordered
	// group stream (a reduce-side join's sides arrive on separate edges).
	var grouped []runtime.GroupedKVReader
	for _, in := range p.spec.Inputs {
		switch in.Mode {
		case InSource, InUnordered:
			if err := p.runStream(in, inputs, emitters); err != nil {
				return err
			}
		case InGrouped:
			src, ok := inputs[in.Name]
			if !ok {
				return fmt.Errorf("relop: stage has no input %q", in.Name)
			}
			rd, err := src.Reader()
			if err != nil {
				return err
			}
			gr, ok := rd.(runtime.GroupedKVReader)
			if !ok {
				return fmt.Errorf("relop: input %q reader is %T", in.Name, rd)
			}
			grouped = append(grouped, gr)
		}
	}
	if len(grouped) > 0 {
		if err := p.runGrouped(grouped, emitters); err != nil {
			return err
		}
	}
	for _, em := range emitters {
		em.flush()
	}
	if p.ctx.Services.Counters != nil {
		for _, em := range emitters {
			p.ctx.Services.Counters.Add("ROWS_EMITTED", em.count)
		}
	}
	return nil
}

// buildTable loads a broadcast build side, caching through the object
// registry so tasks reusing the container skip the rebuild (the Hive
// broadcast-join example of §4.2).
func (p *stageProcessor) buildTable(in StageInput, inputs map[string]runtime.Input) (map[string][]row.Row, error) {
	cacheKey := fmt.Sprintf("relop/hj/%s/%s", p.ctx.Meta.Vertex, in.Name)
	if in.CacheInRegistry && p.ctx.Services.Registry != nil {
		if v, ok := p.ctx.Services.Registry.Get(p.ctx.Meta, cacheKey); ok {
			if p.ctx.Services.Counters != nil {
				p.ctx.Services.Counters.Add("HASHTABLE_CACHE_HITS", 1)
			}
			return v.(map[string][]row.Row), nil
		}
	}
	src, ok := inputs[in.Name]
	if !ok {
		return nil, fmt.Errorf("relop: stage has no input %q", in.Name)
	}
	rd, err := src.Reader()
	if err != nil {
		return nil, err
	}
	kv, ok := rd.(runtime.KVReader)
	if !ok {
		return nil, fmt.Errorf("relop: build input %q reader is %T", in.Name, rd)
	}
	table := map[string][]row.Row{}
	for kv.Next() {
		r, err := row.Decode(kv.Value())
		if err != nil {
			return nil, err
		}
		key := string(row.EncodeKey(nil, EvalAll(in.BuildKeys, r)...))
		table[key] = append(table[key], r)
	}
	if err := kv.Err(); err != nil {
		return nil, err
	}
	if in.CacheInRegistry && p.ctx.Services.Registry != nil {
		p.ctx.Services.Registry.Add(runtime.LifetimeDAG, p.ctx.Meta, cacheKey, table)
		if p.ctx.Services.Counters != nil {
			p.ctx.Services.Counters.Add("HASHTABLE_BUILDS", 1)
		}
	}
	return table, nil
}

// runStream feeds a row-stream input through the emits bound to it.
func (p *stageProcessor) runStream(in StageInput, inputs map[string]runtime.Input, emitters []*emitter) error {
	src, ok := inputs[in.Name]
	if !ok {
		return fmt.Errorf("relop: stage has no input %q", in.Name)
	}
	rd, err := src.Reader()
	if err != nil {
		return err
	}
	kv, ok := rd.(runtime.KVReader)
	if !ok {
		return fmt.Errorf("relop: input %q reader is %T", in.Name, rd)
	}
	var bound []*emitter
	for _, em := range emitters {
		if em.spec.Input == in.Name {
			bound = append(bound, em)
		}
	}
	for kv.Next() {
		r, err := row.Decode(kv.Value())
		if err != nil {
			return err
		}
		for _, em := range bound {
			if err := em.emit(r); err != nil {
				return err
			}
		}
	}
	return kv.Err()
}

// runGrouped applies the stage's GroupOp per key group and feeds the
// group-output emits. Multiple grouped inputs are merged by key.
func (p *stageProcessor) runGrouped(readers []runtime.GroupedKVReader, emitters []*emitter) error {
	g := p.spec.Group
	if g == nil {
		return fmt.Errorf("relop: grouped inputs without group op")
	}
	gr := mergeGroupReaders(readers)
	var bound []*emitter
	for _, em := range emitters {
		if em.spec.Input == "" {
			bound = append(bound, em)
		}
	}
	emitRow := func(r row.Row) error {
		for _, em := range bound {
			if err := em.emit(r); err != nil {
				return err
			}
		}
		return nil
	}

	emitted := 0
	for gr.Next() {
		values := gr.Values()
		switch g.Kind {
		case "join":
			if err := p.joinGroup(g, values, emitRow); err != nil {
				return err
			}
		case "agg":
			if err := p.aggGroup(g, values, emitRow); err != nil {
				return err
			}
		case "sort":
			for _, v := range values {
				if g.Limit > 0 && emitted >= g.Limit {
					return gr.Err()
				}
				r, err := row.Decode(v)
				if err != nil {
					return err
				}
				if err := emitRow(r); err != nil {
					return err
				}
				emitted++
			}
		case "distinct":
			r, err := row.Decode(values[0])
			if err != nil {
				return err
			}
			if err := emitRow(r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("relop: unknown group op %q", g.Kind)
		}
	}
	return gr.Err()
}

// joinGroup splits tagged values by side and emits the cartesian product.
func (p *stageProcessor) joinGroup(g *GroupOp, values [][]byte, emit func(row.Row) error) error {
	sides := make([][]row.Row, g.Sides)
	for _, v := range values {
		if len(v) == 0 {
			return fmt.Errorf("relop: untagged join value")
		}
		tag := int(v[0])
		if tag >= g.Sides {
			return fmt.Errorf("relop: join tag %d out of %d sides", tag, g.Sides)
		}
		r, err := row.Decode(v[1:])
		if err != nil {
			return err
		}
		sides[tag] = append(sides[tag], r)
	}
	for _, s := range sides {
		if len(s) == 0 {
			return nil // inner join: some side empty
		}
	}
	var rec func(i int, acc row.Row) error
	rec = func(i int, acc row.Row) error {
		if i == len(sides) {
			return emit(acc)
		}
		for _, r := range sides[i] {
			next := append(acc.Clone(), r...)
			if err := rec(i+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, row.Row{})
}

// aggGroup computes the aggregates of one group.
func (p *stageProcessor) aggGroup(g *GroupOp, values [][]byte, emit func(row.Row) error) error {
	type state struct {
		sum   float64
		count int64
		min   row.Value
		max   row.Value
		init  bool
	}
	states := make([]state, len(g.Aggs))
	var groupVals row.Row
	for _, v := range values {
		r, err := row.Decode(v)
		if err != nil {
			return err
		}
		if groupVals == nil {
			groupVals = r[:g.GroupWidth].Clone()
		}
		for i, a := range g.Aggs {
			var av row.Value
			if a.Col >= 0 && a.Col < len(r) {
				av = r[a.Col]
			}
			st := &states[i]
			st.count++
			if !av.IsNull() {
				st.sum += av.AsFloat()
				if !st.init || row.Compare(av, st.min) < 0 {
					st.min = av
				}
				if !st.init || row.Compare(av, st.max) > 0 {
					st.max = av
				}
				st.init = true
			}
		}
	}
	out := groupVals.Clone()
	for i, a := range g.Aggs {
		st := states[i]
		switch a.Func {
		case "sum":
			out = append(out, row.Float(st.sum))
		case "count":
			out = append(out, row.Int(st.count))
		case "avg":
			if st.count == 0 {
				out = append(out, row.Null())
			} else {
				out = append(out, row.Float(st.sum/float64(st.count)))
			}
		case "min":
			out = append(out, st.min)
		case "max":
			out = append(out, st.max)
		default:
			return fmt.Errorf("relop: unknown aggregate %q", a.Func)
		}
	}
	return emit(out)
}
