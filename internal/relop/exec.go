package relop

import (
	"fmt"
	"hash/fnv"

	"tez/internal/col"
	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/row"
	"tez/internal/runtime"
)

// StageProcessorName is the registered processor hosting StageSpecs.
const StageProcessorName = "relop.stage"

func init() {
	runtime.RegisterProcessor(StageProcessorName, func() runtime.Processor { return &stageProcessor{} })
}

// DefaultBatchSize is the rows-per-batch flush threshold of the
// vectorized path when runtime.Services.RelopBatchSize is 0.
const DefaultBatchSize = 1024

// PruneValues is the payload of initializer events and of VM histogram
// events: a bag of key values.
type PruneValues struct {
	Values []row.Value
}

type stageProcessor struct {
	ctx  *runtime.Context
	spec StageSpec
	// batchSize is the vectorized flush threshold; <= 0 disables the
	// batch execution strategy at runtime (spec-level Batched wire
	// contracts still hold — see emitter.terminal).
	batchSize int
	// tableWidths records each build table's row width (-1 when mixed:
	// the batch join kernel needs a fixed output shape, so mixed-width
	// tables force the row path).
	tableWidths map[string]int
}

func (p *stageProcessor) Initialize(ctx *runtime.Context) error {
	p.ctx = ctx
	p.tableWidths = map[string]int{}
	switch bs := ctx.Services.RelopBatchSize; {
	case bs == 0:
		p.batchSize = DefaultBatchSize
	case bs > 0:
		p.batchSize = bs
	default:
		p.batchSize = 0 // negative knob: row-at-a-time everywhere
	}
	return plugin.Decode(ctx.Payload, &p.spec)
}

func (p *stageProcessor) Close() error { return nil }

// emitter is one EmitSpec bound to its writer and deferred-event state.
// The scratch buffers make the row fallback path allocation-light: the
// downstream writers copy what they are handed (sort arenas, unordered
// buffers, record files), so reuse across rows is safe.
type emitter struct {
	spec   EmitSpec
	writer runtime.KVWriter
	proc   *stageProcessor
	tables map[string]map[string][]row.Row
	// vec is non-nil when this emit runs the batch-at-a-time path.
	vec *vecEmitter
	// deferred collects key values for initializer/vm emits, sent once at
	// stage end.
	deferred []row.Value
	count    int64

	keyScratch []byte  // hash-join probe keys / shuffle keys
	valScratch []byte  // encoded values
	keyVals    row.Row // probe-key evaluation buffer
	// joinRows holds one reusable joined-row buffer per hash-join nesting
	// depth (nothing downstream retains the row: terminals copy).
	joinRows []row.Row
	// outBatch accumulates rows for a Batched broadcast emit when the
	// pipeline itself ran row-at-a-time (runtime batch disable, or a
	// non-vectorizable pipe feeding a batched edge): the wire format is a
	// compile-time contract and must hold either way.
	outBatch *col.Batch
	outFrame []byte
}

func (e *emitter) emit(r row.Row) error {
	return e.runPipe(r, 0, 0)
}

// runPipe applies ops[from:] iteratively; only hash-join fan-out
// recurses (per matched build row, one nesting depth per join), so the
// common linear pipeline costs no per-record closures or clones.
func (e *emitter) runPipe(r row.Row, from, depth int) error {
	ops := e.spec.Pipe
	for i := from; i < len(ops); i++ {
		op := &ops[i]
		switch op.Kind {
		case "filter":
			if !Truthy(op.Filter.Eval(r)) {
				return nil
			}
		case "project":
			r = EvalAll(op.Project, r)
		case "hashjoin":
			table := e.tables[op.HJ.Input]
			if table == nil {
				return fmt.Errorf("relop: hash join against unknown build input %q", op.HJ.Input)
			}
			// The key scratch is consumed by the map lookup before any
			// deeper join can overwrite it.
			e.keyVals = EvalAllInto(e.keyVals, op.HJ.ProbeKeys, r)
			e.keyScratch = row.EncodeKey(e.keyScratch[:0], e.keyVals...)
			matches := table[string(e.keyScratch)]
			for len(e.joinRows) <= depth {
				e.joinRows = append(e.joinRows, nil)
			}
			for _, build := range matches {
				joined := e.joinRows[depth][:0]
				joined = append(append(joined, r...), build...)
				e.joinRows[depth] = joined
				if err := e.runPipe(joined, i+1, depth+1); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("relop: unknown pipe op %q", op.Kind)
		}
	}
	return e.terminal(r)
}

func (e *emitter) terminal(r row.Row) error {
	if e.spec.SampleRate > 0 && !sampled(r, e.spec.SampleRate) {
		return nil
	}
	e.count++
	switch e.spec.Kind {
	case EmitShuffle:
		key := e.shuffleKey(r)
		val := e.valScratch[:0]
		if e.spec.Tag >= 0 {
			val = append(val, byte(e.spec.Tag))
		}
		val = row.Encode(val, r)
		e.valScratch = val
		return e.writer.Write(key, val)
	case EmitBroadcast:
		if e.spec.Batched {
			return e.batchOut(r)
		}
		e.valScratch = row.Encode(e.valScratch[:0], r)
		return e.writer.Write(nil, e.valScratch)
	case EmitSink:
		e.valScratch = row.Encode(e.valScratch[:0], r)
		return e.writer.Write(nil, e.valScratch)
	case EmitInitializer, EmitVM:
		e.deferred = append(e.deferred, e.spec.Keys[0].Eval(r))
		return nil
	}
	return fmt.Errorf("relop: unknown emit kind %q", e.spec.Kind)
}

// batchOut frames rows for a Batched edge fed by the row path.
func (e *emitter) batchOut(r row.Row) error {
	if e.outBatch == nil {
		e.outBatch = col.NewBatch()
	}
	if !e.outBatch.AppendRow(r) {
		if err := e.flushBatchOut(); err != nil {
			return err
		}
		e.outBatch.AppendRow(r) // width unlocked by Reset
	}
	if e.outBatch.Len() >= e.proc.effectiveBatchSize() {
		return e.flushBatchOut()
	}
	return nil
}

func (e *emitter) flushBatchOut() error {
	if e.outBatch == nil || e.outBatch.Len() == 0 {
		return nil
	}
	e.outFrame = col.EncodeBatch(e.outFrame[:0], e.outBatch)
	e.outBatch.Reset()
	return e.writer.Write(nil, e.outFrame)
}

// effectiveBatchSize never reports the disabled (0) state: Batched wire
// framing needs a flush threshold even when batch execution is off.
func (p *stageProcessor) effectiveBatchSize() int {
	if p.batchSize > 0 {
		return p.batchSize
	}
	return DefaultBatchSize
}

// shuffleKey builds the orderable key with per-column direction into a
// reused buffer (descending segments are flipped in place).
func (e *emitter) shuffleKey(r row.Row) []byte {
	key := e.keyScratch[:0]
	for i, kx := range e.spec.Keys {
		start := len(key)
		key = row.EncodeKey(key, kx.Eval(r))
		if i < len(e.spec.Desc) && e.spec.Desc[i] {
			flipBytes(key[start:])
		}
	}
	e.keyScratch = key
	return key
}

func flipBytes(b []byte) {
	for i := range b {
		b[i] = ^b[i]
	}
}

// finish flushes any buffered batch output (stage end).
func (e *emitter) finish() error {
	if e.vec != nil {
		if err := e.vec.flush(); err != nil {
			return err
		}
	}
	return e.flushBatchOut()
}

// flush sends deferred control events (§3.3: opaque payloads routed by
// the framework).
func (e *emitter) flush() {
	switch e.spec.Kind {
	case EmitInitializer:
		e.proc.ctx.Emit(event.InputInitializerEvent{
			TargetVertex:     e.spec.Output,
			TargetDataSource: e.spec.TargetSource,
			SrcVertex:        e.proc.ctx.Meta.Vertex,
			SrcTask:          e.proc.ctx.Meta.Task,
			Payload:          plugin.MustEncode(PruneValues{Values: e.deferred}),
		})
	case EmitVM:
		e.proc.ctx.Emit(event.VertexManagerEvent{
			TargetVertex: e.spec.Output,
			SrcVertex:    e.proc.ctx.Meta.Vertex,
			SrcTask:      e.proc.ctx.Meta.Task,
			Payload:      plugin.MustEncode(PruneValues{Values: e.deferred}),
		})
	}
}

func sampled(r row.Row, rate float64) bool {
	h := fnv.New32a()
	_, _ = h.Write(row.Encode(nil, r))
	return float64(h.Sum32()%1000000) < rate*1000000
}

// vecEligible decides at runtime whether an emit runs the batch path:
// the compiler must have marked it, batching must be enabled, and every
// hash join must probe a fixed-width build table (the batch join kernel
// emits into a fixed-shape output batch).
func (p *stageProcessor) vecEligible(es *EmitSpec) bool {
	if !es.Vectorize || p.batchSize <= 0 {
		return false
	}
	for i := range es.Pipe {
		if es.Pipe[i].Kind == "hashjoin" {
			if w, ok := p.tableWidths[es.Pipe[i].HJ.Input]; !ok || w < 0 {
				return false
			}
		}
	}
	return true
}

func (p *stageProcessor) Run(inputs map[string]runtime.Input, outputs map[string]runtime.Output) error {
	// Bind emitters to writers.
	emitters := make([]*emitter, len(p.spec.Emits))
	tables := map[string]map[string][]row.Row{}
	for i := range p.spec.Emits {
		es := p.spec.Emits[i]
		em := &emitter{spec: es, proc: p, tables: tables}
		switch es.Kind {
		case EmitShuffle, EmitBroadcast, EmitSink:
			out, ok := outputs[es.Output]
			if !ok {
				return fmt.Errorf("relop: stage has no output %q", es.Output)
			}
			w, err := out.Writer()
			if err != nil {
				return err
			}
			kw, ok := w.(runtime.KVWriter)
			if !ok {
				return fmt.Errorf("relop: output %q writer is %T", es.Output, w)
			}
			em.writer = kw
		}
		emitters[i] = em
	}

	// Build hash tables (possibly from the shared object registry, §4.2).
	for _, in := range p.spec.Inputs {
		if in.Mode != InBuild {
			continue
		}
		table, width, err := p.buildTable(in, inputs)
		if err != nil {
			return err
		}
		tables[in.Name] = table
		p.tableWidths[in.Name] = width
	}

	// With tables known, pick each emit's execution strategy.
	for _, em := range emitters {
		if p.vecEligible(&em.spec) {
			em.vec = newVecEmitter(em, p.effectiveBatchSize())
		}
	}

	// Stream the inputs. All grouped inputs are merged into one key-ordered
	// group stream (a reduce-side join's sides arrive on separate edges).
	var grouped []runtime.GroupedKVReader
	for _, in := range p.spec.Inputs {
		switch in.Mode {
		case InSource, InUnordered:
			if err := p.runStream(in, inputs, emitters); err != nil {
				return err
			}
		case InGrouped:
			src, ok := inputs[in.Name]
			if !ok {
				return fmt.Errorf("relop: stage has no input %q", in.Name)
			}
			rd, err := src.Reader()
			if err != nil {
				return err
			}
			gr, ok := rd.(runtime.GroupedKVReader)
			if !ok {
				return fmt.Errorf("relop: input %q reader is %T", in.Name, rd)
			}
			grouped = append(grouped, gr)
		}
	}
	if len(grouped) > 0 {
		if err := p.runGrouped(grouped, emitters); err != nil {
			return err
		}
	}
	for _, em := range emitters {
		if err := em.finish(); err != nil {
			return err
		}
	}
	for _, em := range emitters {
		em.flush()
	}
	if p.ctx.Services.Counters != nil {
		for _, em := range emitters {
			p.ctx.Services.Counters.Add("ROWS_EMITTED", em.count)
		}
	}
	return nil
}

// buildEntry is the registry-cached form of a build table: the hash map
// plus the observed row width (-1 = mixed, fixed width otherwise; an
// empty table reports 0, which any probe shape satisfies vacuously).
type buildEntry struct {
	table map[string][]row.Row
	width int
}

// buildTable loads a broadcast build side, caching through the object
// registry so tasks reusing the container skip the rebuild (the Hive
// broadcast-join example of §4.2). Batched inputs carry col.EncodeBatch
// frames; rows are materialized once into the table.
func (p *stageProcessor) buildTable(in StageInput, inputs map[string]runtime.Input) (map[string][]row.Row, int, error) {
	cacheKey := fmt.Sprintf("relop/hj/%s/%s", p.ctx.Meta.Vertex, in.Name)
	if in.CacheInRegistry && p.ctx.Services.Registry != nil {
		if v, ok := p.ctx.Services.Registry.Get(p.ctx.Meta, cacheKey); ok {
			if p.ctx.Services.Counters != nil {
				p.ctx.Services.Counters.Add("HASHTABLE_CACHE_HITS", 1)
			}
			ent := v.(buildEntry)
			return ent.table, ent.width, nil
		}
	}
	src, ok := inputs[in.Name]
	if !ok {
		return nil, 0, fmt.Errorf("relop: stage has no input %q", in.Name)
	}
	rd, err := src.Reader()
	if err != nil {
		return nil, 0, err
	}
	kv, ok := rd.(runtime.KVReader)
	if !ok {
		return nil, 0, fmt.Errorf("relop: build input %q reader is %T", in.Name, rd)
	}
	table := map[string][]row.Row{}
	width := -2 // unset
	var keyBuf []byte
	var keyVals row.Row
	add := func(r row.Row) {
		if width == -2 {
			width = len(r)
		} else if width != len(r) {
			width = -1
		}
		keyVals = EvalAllInto(keyVals, in.BuildKeys, r)
		keyBuf = row.EncodeKey(keyBuf[:0], keyVals...)
		table[string(keyBuf)] = append(table[string(keyBuf)], r)
	}
	for kv.Next() {
		if in.Batched {
			b, err := col.DecodeBatch(kv.Value())
			if err != nil {
				return nil, 0, err
			}
			for i := 0; i < b.Len(); i++ {
				add(b.MaterializeRow(i))
			}
		} else {
			r, err := row.Decode(kv.Value())
			if err != nil {
				return nil, 0, err
			}
			add(r)
		}
	}
	if err := kv.Err(); err != nil {
		return nil, 0, err
	}
	if width == -2 {
		width = 0
	}
	if in.CacheInRegistry && p.ctx.Services.Registry != nil {
		p.ctx.Services.Registry.Add(runtime.LifetimeDAG, p.ctx.Meta, cacheKey, buildEntry{table: table, width: width})
		if p.ctx.Services.Counters != nil {
			p.ctx.Services.Counters.Add("HASHTABLE_BUILDS", 1)
		}
	}
	return table, width, nil
}

// runStream feeds a row-stream input through the emits bound to it. Rows
// are decoded once for the row-path emitters; batch-path emitters parse
// the encoded bytes straight into their column vectors.
func (p *stageProcessor) runStream(in StageInput, inputs map[string]runtime.Input, emitters []*emitter) error {
	src, ok := inputs[in.Name]
	if !ok {
		return fmt.Errorf("relop: stage has no input %q", in.Name)
	}
	rd, err := src.Reader()
	if err != nil {
		return err
	}
	kv, ok := rd.(runtime.KVReader)
	if !ok {
		return fmt.Errorf("relop: input %q reader is %T", in.Name, rd)
	}
	var rowBound, vecBound []*emitter
	for _, em := range emitters {
		if em.spec.Input != in.Name {
			continue
		}
		if em.vec != nil {
			vecBound = append(vecBound, em)
		} else {
			rowBound = append(rowBound, em)
		}
	}
	for kv.Next() {
		v := kv.Value()
		if len(rowBound) > 0 {
			r, err := row.Decode(v)
			if err != nil {
				return err
			}
			for _, em := range rowBound {
				if err := em.emit(r); err != nil {
					return err
				}
			}
		}
		for _, em := range vecBound {
			if err := em.vec.add(v); err != nil {
				return err
			}
		}
	}
	// Flush here (not only at stage end) so per-writer row order matches
	// the row engine when several inputs feed the same stage.
	for _, em := range vecBound {
		if err := em.vec.flush(); err != nil {
			return err
		}
	}
	return kv.Err()
}

// runGrouped applies the stage's GroupOp per key group and feeds the
// group-output emits. Multiple grouped inputs are merged by key.
func (p *stageProcessor) runGrouped(readers []runtime.GroupedKVReader, emitters []*emitter) error {
	g := p.spec.Group
	if g == nil {
		return fmt.Errorf("relop: grouped inputs without group op")
	}
	gr := mergeGroupReaders(readers)
	var bound []*emitter
	for _, em := range emitters {
		if em.spec.Input == "" {
			bound = append(bound, em)
		}
	}
	emitRow := func(r row.Row) error {
		for _, em := range bound {
			if em.vec != nil {
				if err := em.vec.addRow(r); err != nil {
					return err
				}
				continue
			}
			if err := em.emit(r); err != nil {
				return err
			}
		}
		return nil
	}

	var aggScratch *col.Batch
	emitted := 0
	for gr.Next() {
		values := gr.Values()
		switch g.Kind {
		case "join":
			if err := p.joinGroup(g, values, emitRow); err != nil {
				return err
			}
		case "agg":
			if g.Vectorize && p.batchSize > 0 {
				if aggScratch == nil {
					aggScratch = col.NewBatch()
				}
				if err := aggGroupVec(g, values, p.batchSize, aggScratch, emitRow); err != nil {
					return err
				}
			} else if err := p.aggGroup(g, values, emitRow); err != nil {
				return err
			}
		case "sort":
			for _, v := range values {
				if g.Limit > 0 && emitted >= g.Limit {
					return gr.Err()
				}
				r, err := row.Decode(v)
				if err != nil {
					return err
				}
				if err := emitRow(r); err != nil {
					return err
				}
				emitted++
			}
		case "distinct":
			r, err := row.Decode(values[0])
			if err != nil {
				return err
			}
			if err := emitRow(r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("relop: unknown group op %q", g.Kind)
		}
	}
	return gr.Err()
}

// joinGroup splits tagged values by side and emits the cartesian product.
func (p *stageProcessor) joinGroup(g *GroupOp, values [][]byte, emit func(row.Row) error) error {
	sides := make([][]row.Row, g.Sides)
	for _, v := range values {
		if len(v) == 0 {
			return fmt.Errorf("relop: untagged join value")
		}
		tag := int(v[0])
		if tag >= g.Sides {
			return fmt.Errorf("relop: join tag %d out of %d sides", tag, g.Sides)
		}
		r, err := row.Decode(v[1:])
		if err != nil {
			return err
		}
		sides[tag] = append(sides[tag], r)
	}
	for _, s := range sides {
		if len(s) == 0 {
			return nil // inner join: some side empty
		}
	}
	var rec func(i int, acc row.Row) error
	rec = func(i int, acc row.Row) error {
		if i == len(sides) {
			return emit(acc)
		}
		for _, r := range sides[i] {
			next := append(acc.Clone(), r...)
			if err := rec(i+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, row.Row{})
}

// aggState accumulates one aggregate. The exact update and finalize
// rules are shared with the vectorized kernels (vagg.go) so the two
// paths cannot drift: count includes nulls, sum accumulates float64 in
// row order, min/max keep the first value on Compare ties.
type aggState struct {
	sum   float64
	count int64
	min   row.Value
	max   row.Value
	init  bool
}

func (st *aggState) observe(av row.Value) {
	st.count++
	if !av.IsNull() {
		st.sum += av.AsFloat()
		if !st.init || row.Compare(av, st.min) < 0 {
			st.min = av
		}
		if !st.init || row.Compare(av, st.max) > 0 {
			st.max = av
		}
		st.init = true
	}
}

// finalizeAgg appends the aggregate outputs to the group key columns.
func finalizeAgg(g *GroupOp, groupVals row.Row, states []aggState) (row.Row, error) {
	out := groupVals.Clone()
	for i, a := range g.Aggs {
		st := states[i]
		switch a.Func {
		case "sum":
			out = append(out, row.Float(st.sum))
		case "count":
			out = append(out, row.Int(st.count))
		case "avg":
			if st.count == 0 {
				out = append(out, row.Null())
			} else {
				out = append(out, row.Float(st.sum/float64(st.count)))
			}
		case "min":
			out = append(out, st.min)
		case "max":
			out = append(out, st.max)
		default:
			return nil, fmt.Errorf("relop: unknown aggregate %q", a.Func)
		}
	}
	return out, nil
}

// aggGroup computes the aggregates of one group, row at a time.
func (p *stageProcessor) aggGroup(g *GroupOp, values [][]byte, emit func(row.Row) error) error {
	states := make([]aggState, len(g.Aggs))
	var groupVals row.Row
	for _, v := range values {
		r, err := row.Decode(v)
		if err != nil {
			return err
		}
		if groupVals == nil {
			groupVals = r[:g.GroupWidth].Clone()
		}
		for i, a := range g.Aggs {
			var av row.Value
			if a.Col >= 0 && a.Col < len(r) {
				av = r[a.Col]
			}
			states[i].observe(av)
		}
	}
	out, err := finalizeAgg(g, groupVals, states)
	if err != nil {
		return err
	}
	return emit(out)
}
