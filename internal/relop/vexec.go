package relop

import (
	"fmt"

	"tez/internal/col"
	"tez/internal/row"
)

// vecEmitter runs one EmitSpec batch-at-a-time: input rows accumulate
// into a columnar batch (parsed straight from their wire encoding, no
// row.Row boxing), the pipeline applies whole-batch kernels (filters
// narrow the selection vector, projects swap in computed vectors, hash
// joins fan out into a fixed-shape output batch), and the terminal
// re-encodes live rows with byte-identical framing to the row engine.
type vecEmitter struct {
	em    *emitter
	size  int
	batch *col.Batch
	// joinBatches holds one reusable output batch per hashjoin op
	// position (nested joins must not share).
	joinBatches map[int]*col.Batch
	keyVecs     []col.Vector
	keyBuf      []byte
	valBuf      []byte
	frameBuf    []byte
}

func newVecEmitter(em *emitter, size int) *vecEmitter {
	return &vecEmitter{em: em, size: size, batch: col.NewBatch()}
}

// add appends one encoded input row, flushing on batch-full or on a row
// width change (widths are stable in practice; a change just costs an
// early flush, never a wrong result).
func (ve *vecEmitter) add(encoded []byte) error {
	ok, err := ve.batch.AppendEncoded(encoded)
	if err != nil {
		return err
	}
	if !ok {
		if err := ve.flush(); err != nil {
			return err
		}
		if ok, err = ve.batch.AppendEncoded(encoded); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("relop: batch rejected row after reset")
		}
	}
	if ve.batch.Len() >= ve.size {
		return ve.flush()
	}
	return nil
}

// addRow appends an already-decoded row (group outputs).
func (ve *vecEmitter) addRow(r row.Row) error {
	if !ve.batch.AppendRow(r) {
		if err := ve.flush(); err != nil {
			return err
		}
		ve.batch.AppendRow(r) // width unlocked by Reset
	}
	if ve.batch.Len() >= ve.size {
		return ve.flush()
	}
	return nil
}

func (ve *vecEmitter) flush() error {
	if ve.batch.Len() == 0 {
		return nil
	}
	err := ve.run(ve.batch)
	ve.batch.Reset()
	return err
}

func (ve *vecEmitter) run(b *col.Batch) error {
	ops := ve.em.spec.Pipe
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case "filter":
			pred := evalVec(op.Filter, b)
			b.Filter(&pred)
			if b.Live() == 0 {
				return nil
			}
		case "project":
			vecs := make([]col.Vector, len(op.Project))
			for j, e := range op.Project {
				vecs[j] = evalVec(e, b)
			}
			b = col.FromVectors(b.Len(), b.Sel(), vecs)
		case "hashjoin":
			nb, err := ve.hashJoin(i, op, b)
			if err != nil {
				return err
			}
			b = nb
			if b.Live() == 0 {
				return nil
			}
		default:
			return fmt.Errorf("relop: unknown pipe op %q", op.Kind)
		}
	}
	return ve.terminal(b)
}

// hashJoin probes the build table per live row, appending probe ++ build
// into a dense output batch. vecEligible guarantees a fixed build width.
func (ve *vecEmitter) hashJoin(opIdx int, op *PipeOp, b *col.Batch) (*col.Batch, error) {
	table := ve.em.tables[op.HJ.Input]
	if table == nil {
		return nil, fmt.Errorf("relop: hash join against unknown build input %q", op.HJ.Input)
	}
	bw := ve.em.proc.tableWidths[op.HJ.Input]
	if ve.joinBatches == nil {
		ve.joinBatches = map[int]*col.Batch{}
	}
	out := ve.joinBatches[opIdx]
	if out == nil {
		out = col.NewBatch()
		ve.joinBatches[opIdx] = out
	} else {
		out.Reset()
	}
	pw := b.Width()
	out.EnsureWidth(pw + bw)

	ve.keyVecs = ve.keyVecs[:0]
	for _, kx := range op.HJ.ProbeKeys {
		ve.keyVecs = append(ve.keyVecs, evalVec(kx, b))
	}
	rows := 0
	for k := 0; k < b.Live(); k++ {
		i := b.RowAt(k)
		key := ve.keyBuf[:0]
		for j := range ve.keyVecs {
			key = col.AppendKeyEncoded(key, &ve.keyVecs[j], i)
		}
		ve.keyBuf = key
		for _, build := range table[string(key)] {
			for c := 0; c < pw; c++ {
				out.Col(c).AppendFrom(b.Col(c), i)
			}
			for c, val := range build {
				out.Col(pw + c).AppendValue(val)
			}
			rows++
		}
	}
	out.SetRowCount(rows)
	return out, nil
}

func (ve *vecEmitter) terminal(b *col.Batch) error {
	em := ve.em
	switch em.spec.Kind {
	case EmitShuffle:
		ve.keyVecs = ve.keyVecs[:0]
		for _, kx := range em.spec.Keys {
			ve.keyVecs = append(ve.keyVecs, evalVec(kx, b))
		}
		for k := 0; k < b.Live(); k++ {
			i := b.RowAt(k)
			key := ve.keyBuf[:0]
			for j := range ve.keyVecs {
				start := len(key)
				key = col.AppendKeyEncoded(key, &ve.keyVecs[j], i)
				if j < len(em.spec.Desc) && em.spec.Desc[j] {
					flipBytes(key[start:])
				}
			}
			ve.keyBuf = key
			val := ve.valBuf[:0]
			if em.spec.Tag >= 0 {
				val = append(val, byte(em.spec.Tag))
			}
			val = col.AppendRowEncoded(val, b, i)
			ve.valBuf = val
			em.count++
			if err := em.writer.Write(key, val); err != nil {
				return err
			}
		}
		return nil
	case EmitBroadcast:
		if em.spec.Batched {
			ve.frameBuf = col.EncodeBatch(ve.frameBuf[:0], b)
			em.count += int64(b.Live())
			return em.writer.Write(nil, ve.frameBuf)
		}
		return ve.writeRows(b)
	case EmitSink:
		return ve.writeRows(b)
	}
	// initializer/vm emits are never vectorized (vectorize.go).
	return fmt.Errorf("relop: emit kind %q cannot run vectorized", em.spec.Kind)
}

func (ve *vecEmitter) writeRows(b *col.Batch) error {
	em := ve.em
	for k := 0; k < b.Live(); k++ {
		ve.valBuf = col.AppendRowEncoded(ve.valBuf[:0], b, b.RowAt(k))
		em.count++
		if err := em.writer.Write(nil, ve.valBuf); err != nil {
			return err
		}
	}
	return nil
}
