package relop

import (
	"fmt"
	"sort"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/event"
	"tez/internal/library"
	"tez/internal/plugin"
	"tez/internal/row"
)

// This file implements the two Pig-on-Tez runtime re-configurations of
// §5.3 as plan operators:
//
//   - RangeSortNode: sample-based global ordering. A sampler sub-graph
//     (an independent re-read of the input) feeds a single-task histogram
//     vertex; the histogram sends the sampled keys as a
//     VertexManagerEvent to the custom vertex manager of the partition
//     vertex, which computes balanced split points, rewrites the
//     partition vertex's output payload to a range partitioner
//     (SetOutEdgePayload), and only then schedules its tasks.
//
//   - SkewJoinNode: the same histogram machinery applied to a join — both
//     sides are range-partitioned with the split points estimated from a
//     sample of the (skewed) left input, giving balanced reducers where a
//     hash partitioner would collapse under Zipf keys.
//
// Substitution note (recorded in DESIGN.md): real Pig additionally splits
// a single hot key across reducers and replicates matching right rows;
// here skew is mitigated by density-balanced ranges, which preserves the
// mechanism being demonstrated (sampling → histogram vertex → VM event →
// runtime partitioner re-configuration) with simpler data-plane code.
//
// On the MapReduce backend both operators degrade to what pre-Tez engines
// could express in one job: a single-reducer global sort and a plain hash
// join.

// RangeSortNode globally orders rows with `partitions`-way parallelism.
func RangeSortNode(in *Node, keys []*Expr, desc []bool, limit, partitions int) *Node {
	return &Node{
		Op: "rangesort", Children: []*Node{in},
		SortKeys: keys, SortDesc: desc, Limit: limit,
		RangeParts: partitions,
		OutSchema:  in.OutSchema,
	}
}

// SkewJoinNode joins with sampled range partitioning on the join key.
func SkewJoinNode(l, r *Node, keysL, keysR []*Expr, partitions int) *Node {
	return &Node{
		Op: "skewjoin", Children: []*Node{l, r},
		JoinL: keysL, JoinR: keysR,
		RangeParts: partitions,
		OutSchema:  l.OutSchema.Concat(r.OutSchema),
	}
}

// CopyPlan deep-copies a plan subtree so the copy compiles to fresh stages
// (the sampler must be independent of the stage it re-configures, or the
// graph would gate on itself).
func CopyPlan(n *Node) *Node {
	if n == nil {
		return nil
	}
	cp := *n
	cp.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		cp.Children[i] = CopyPlan(c)
	}
	return &cp
}

// SampleRateFor picks a sampling rate that yields ~targetSamples rows.
func SampleRateFor(totalRows int64, targetSamples int) float64 {
	if totalRows <= 0 {
		return 1
	}
	r := float64(targetSamples) / float64(totalRows)
	if r > 1 {
		return 1
	}
	if r < 0.001 {
		r = 0.001
	}
	return r
}

// buildSampler compiles an independent copy of `src` that emits a sampled
// key stream into a 1-task histogram stage, which forwards the sorted
// sample to targets as VertexManagerEvents.
func (c *Compiler) buildSampler(src *Node, key *Expr, desc bool, targets []*bStage) error {
	cs, err := c.compile(CopyPlan(src))
	if err != nil {
		return err
	}
	hist := c.newStage("histogram")
	hist.grouped = true
	hist.par = 1
	hist.spec.Group = &GroupOp{Kind: "sort"}
	for _, cur := range cs {
		cur.st.spec.Emits = append(cur.st.spec.Emits, EmitSpec{
			Input: cur.input, Output: hist.name, Kind: EmitShuffle,
			Pipe: cur.pipe, Keys: []*Expr{key}, Desc: []bool{desc}, Tag: -1,
			SampleRate: 0.1,
		})
		if err := c.edge(cur.st, hist, dag.ScatterGather); err != nil {
			return err
		}
	}
	for _, tgt := range targets {
		hist.spec.Emits = append(hist.spec.Emits, EmitSpec{
			Input: "", Output: tgt.name, Kind: EmitVM,
			Keys: []*Expr{key}, Tag: -1,
		})
	}
	return nil
}

func (c *Compiler) compileRangeSort(n *Node) ([]cursor, error) {
	if c.forMR {
		// Pre-Tez degradation: single-reducer global sort.
		plain := SortNode(n.Children[0], n.SortKeys, n.SortDesc, n.Limit)
		return c.compile(plain)
	}
	in, err := c.compile(n.Children[0])
	if err != nil {
		return nil, err
	}
	parts := n.RangeParts
	if parts <= 0 {
		parts = c.cfg.DefaultPartitions
	}
	st := c.newStage("rangesort")
	st.grouped = true
	st.par = parts
	st.spec.Group = &GroupOp{Kind: "sort", Limit: n.Limit}
	var producers []*bStage
	for _, cur := range in {
		cur.st.spec.Emits = append(cur.st.spec.Emits, EmitSpec{
			Input: cur.input, Output: st.name, Kind: EmitShuffle,
			Pipe: cur.pipe, Keys: n.SortKeys, Desc: n.SortDesc, Tag: -1,
		})
		if err := c.edge(cur.st, st, dag.ScatterGather); err != nil {
			return nil, err
		}
		if err := c.attachRangeVM(cur.st, st.name, parts, firstDesc(n.SortDesc)); err != nil {
			return nil, err
		}
		producers = append(producers, cur.st)
	}
	if err := c.buildSampler(n.Children[0], n.SortKeys[0], firstDesc(n.SortDesc), producers); err != nil {
		return nil, err
	}
	return []cursor{{st: st}}, nil
}

func (c *Compiler) compileSkewJoin(n *Node) ([]cursor, error) {
	if c.forMR {
		// Pre-Tez degradation: plain hash join.
		plain := JoinNode(n.Children[0], n.Children[1], n.JoinL, n.JoinR, false)
		plain.OutSchema = n.OutSchema
		return c.compile(plain)
	}
	left, err := c.compile(n.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := c.compile(n.Children[1])
	if err != nil {
		return nil, err
	}
	parts := n.RangeParts
	if parts <= 0 {
		parts = c.cfg.DefaultPartitions
	}
	st := c.newStage("skewjoin")
	st.grouped = true
	st.par = parts
	st.spec.Group = &GroupOp{Kind: "join", Sides: 2}
	var producers []*bStage
	emitSide := func(curs []cursor, keys []*Expr, tag int) error {
		for _, cur := range curs {
			cur.st.spec.Emits = append(cur.st.spec.Emits, EmitSpec{
				Input: cur.input, Output: st.name, Kind: EmitShuffle,
				Pipe: cur.pipe, Keys: keys, Tag: tag,
			})
			if err := c.edge(cur.st, st, dag.ScatterGather); err != nil {
				return err
			}
			if err := c.attachRangeVM(cur.st, st.name, parts, false); err != nil {
				return err
			}
			producers = append(producers, cur.st)
		}
		return nil
	}
	if err := emitSide(left, n.JoinL, 0); err != nil {
		return nil, err
	}
	if err := emitSide(right, n.JoinR, 1); err != nil {
		return nil, err
	}
	// The sample comes from the (skewed) left input on its join key.
	if err := c.buildSampler(n.Children[0], n.JoinL[0], false, producers); err != nil {
		return nil, err
	}
	return []cursor{{st: st}}, nil
}

func (c *Compiler) attachRangeVM(st *bStage, dest string, parts int, desc bool) error {
	if !st.vm.IsZero() {
		return fmt.Errorf("relop: stage %s already has a vertex manager", st.name)
	}
	st.vm = plugin.Desc(RangePartitionVMName, RangePartitionVMConfig{
		DestVertex: dest,
		Partitions: parts,
		Desc:       desc,
	})
	return nil
}

func firstDesc(desc []bool) bool { return len(desc) > 0 && desc[0] }

// RangePartitionVMName is the custom vertex manager that converts a
// sampled histogram into a range partitioner at runtime.
const RangePartitionVMName = "relop.range_partition_vm"

func init() {
	am.RegisterVertexManager(RangePartitionVMName, func() am.VertexManager {
		return &rangePartitionVM{}
	})
}

// RangePartitionVMConfig is the manager's opaque payload.
type RangePartitionVMConfig struct {
	DestVertex string
	Partitions int
	Desc       bool
}

// rangePartitionVM gates its vertex until the histogram event arrives,
// rewrites the out-edge output payload with balanced split points, then
// schedules every task.
type rangePartitionVM struct {
	ctx     am.VertexManagerContext
	cfg     RangePartitionVMConfig
	started bool
	points  [][]byte
	done    bool
}

func (m *rangePartitionVM) Initialize(ctx am.VertexManagerContext) error {
	m.ctx = ctx
	return plugin.Decode(ctx.Payload(), &m.cfg)
}

func (m *rangePartitionVM) OnVertexStarted() {
	m.started = true
	m.maybeGo()
}

func (m *rangePartitionVM) OnSourceTaskCompleted(string, int) {}

func (m *rangePartitionVM) OnVertexManagerEvent(ev event.VertexManagerEvent) {
	if m.points != nil {
		return
	}
	var pv PruneValues
	if err := plugin.Decode(ev.Payload, &pv); err != nil {
		return
	}
	keys := make([][]byte, 0, len(pv.Values))
	for _, v := range pv.Values {
		k := row.EncodeKey(nil, v)
		if m.cfg.Desc {
			k = row.DescendingKey(k)
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return string(keys[i]) < string(keys[j]) })
	m.points = library.SplitPoints(keys, m.cfg.Partitions)
	if m.points == nil {
		m.points = [][]byte{} // empty sample: single effective range
	}
	m.maybeGo()
}

func (m *rangePartitionVM) maybeGo() {
	if m.done || !m.started || m.points == nil {
		return
	}
	m.done = true
	payload := plugin.MustEncode(library.OrderedPartitionedConfig{
		Partitioner: library.PartitionerSpec{Kind: "range", Points: m.points},
	})
	if err := m.ctx.SetOutEdgePayload(m.cfg.DestVertex, payload); err != nil {
		return
	}
	p := m.ctx.Parallelism()
	tasks := make([]int, p)
	for i := range tasks {
		tasks[i] = i
	}
	m.ctx.ScheduleTasks(tasks)
}
