package relop

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tez/internal/am"
	"tez/internal/col"
	"tez/internal/row"
)

// The vectorized engine's contract is byte-identity: for any pipeline
// and any data — nulls, kind-mixed columns, NaN, -0.0, strings with
// embedded zero bytes, empty batches — the batch path must write exactly
// the bytes the row path writes. These tests drive both paths over
// randomized plans and data and compare every (key, value) pair.

type capturedKV struct {
	key []byte
	val []byte
}

type captureWriter struct {
	kvs []capturedKV
}

func (w *captureWriter) Write(key, value []byte) error {
	w.kvs = append(w.kvs, capturedKV{key: append([]byte{}, key...), val: append([]byte{}, value...)})
	return nil
}

func randVecValue(rng *rand.Rand) row.Value {
	switch rng.Intn(10) {
	case 0, 1:
		return row.Null()
	case 2, 3, 4:
		return row.Int(int64(rng.Intn(9) - 4))
	case 5:
		switch rng.Intn(4) {
		case 0:
			return row.Float(math.Copysign(0, -1)) // -0.0
		case 1:
			return row.Float(math.NaN())
		default:
			return row.Float(float64(rng.Intn(7)) / 2)
		}
	case 6:
		return row.Float(float64(rng.Intn(9) - 4))
	case 7:
		return row.String("")
	case 8:
		return row.String(string([]byte{'k', 0x00, byte(rng.Intn(3))}))
	default:
		return row.String(fmt.Sprintf("s%d", rng.Intn(5)))
	}
}

func randVecRow(rng *rand.Rand, w int) row.Row {
	r := make(row.Row, w)
	for i := range r {
		r[i] = randVecValue(rng)
	}
	return r
}

// randVecExpr builds an expression over a width-w row, occasionally
// referencing out-of-range columns and unknown operators (both have
// defined row-path semantics the batch path must match).
func randVecExpr(rng *rand.Rand, w, depth int) *Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(4) == 0 {
			return Lit(randVecValue(rng))
		}
		return Col(rng.Intn(w+2) - 1) // may be -1 or w (out of range)
	}
	switch rng.Intn(5) {
	case 0:
		ops := []string{"=", "!=", "<", "<=", ">", ">=", "~"}
		return Cmp(ops[rng.Intn(len(ops))], randVecExpr(rng, w, depth-1), randVecExpr(rng, w, depth-1))
	case 1:
		return And(randVecExpr(rng, w, depth-1), randVecExpr(rng, w, depth-1))
	case 2:
		return Or(randVecExpr(rng, w, depth-1), randVecExpr(rng, w, depth-1))
	case 3:
		return Not(randVecExpr(rng, w, depth-1))
	default:
		ops := []string{"+", "-", "*", "/", "%"}
		return Arith(ops[rng.Intn(len(ops))], randVecExpr(rng, w, depth-1), randVecExpr(rng, w, depth-1))
	}
}

// runPipeIdentityTrial builds a random emit spec and streams random rows
// through the row path and the batch path, asserting identical writes.
func runPipeIdentityTrial(t *testing.T, rng *rand.Rand, trial int) {
	t.Helper()
	width := 1 + rng.Intn(4)
	curWidth := width

	var pipe []PipeOp
	tables := map[string]map[string][]row.Row{}
	widths := map[string]int{}
	for len(pipe) < 3 && rng.Intn(2) == 0 {
		switch rng.Intn(3) {
		case 0:
			pipe = append(pipe, PipeOp{Kind: "filter", Filter: randVecExpr(rng, curWidth, 2)})
		case 1:
			nw := 1 + rng.Intn(4)
			proj := make([]*Expr, nw)
			for i := range proj {
				proj[i] = randVecExpr(rng, curWidth, 2)
			}
			pipe = append(pipe, PipeOp{Kind: "project", Project: proj})
			curWidth = nw
		default:
			if _, dup := tables["b0"]; dup {
				continue
			}
			bw := 1 + rng.Intn(3)
			table := map[string][]row.Row{}
			for i := 0; i < 5+rng.Intn(10); i++ {
				br := randVecRow(rng, bw)
				key := row.EncodeKey(nil, br[0])
				table[string(key)] = append(table[string(key)], br)
			}
			tables["b0"] = table
			widths["b0"] = bw
			pipe = append(pipe, PipeOp{Kind: "hashjoin", HJ: &HashJoinSpec{
				Input: "b0", ProbeKeys: []*Expr{Col(0)},
			}})
			curWidth += bw
		}
	}

	spec := EmitSpec{Input: "in", Pipe: pipe, Tag: -1, Vectorize: true}
	if rng.Intn(2) == 0 {
		spec.Kind = EmitShuffle
		spec.Output = "shuf"
		nk := 1 + rng.Intn(2)
		for i := 0; i < nk; i++ {
			spec.Keys = append(spec.Keys, randVecExpr(rng, curWidth, 1))
			spec.Desc = append(spec.Desc, rng.Intn(2) == 0)
		}
		if rng.Intn(3) == 0 {
			spec.Tag = rng.Intn(2)
		}
	} else {
		spec.Kind = EmitSink
		spec.Output = "sink"
	}
	if ok, reason := VectorizableEmit(&spec); !ok {
		t.Fatalf("trial %d: generated spec not vectorizable: %s", trial, reason)
	}

	batchSize := 1 + rng.Intn(16)
	if rng.Intn(4) == 0 {
		batchSize = DefaultBatchSize
	}
	rowW, vecW := &captureWriter{}, &captureWriter{}
	rowProc := &stageProcessor{batchSize: 0, tableWidths: widths}
	rowEm := &emitter{spec: spec, writer: rowW, proc: rowProc, tables: tables}
	vecProc := &stageProcessor{batchSize: batchSize, tableWidths: widths}
	vecEm := &emitter{spec: spec, writer: vecW, proc: vecProc, tables: tables}
	if !vecProc.vecEligible(&spec) {
		t.Fatalf("trial %d: spec unexpectedly ineligible for the batch path", trial)
	}
	vecEm.vec = newVecEmitter(vecEm, batchSize)

	nrows := rng.Intn(120) // 0 exercises the empty-input flush
	var enc []byte
	for i := 0; i < nrows; i++ {
		w := width
		if rng.Intn(40) == 0 {
			w = 1 + rng.Intn(4) // width change mid-stream forces an early flush
		}
		r := randVecRow(rng, w)
		if err := rowEm.emit(r); err != nil {
			t.Fatalf("trial %d row path: %v", trial, err)
		}
		enc = row.Encode(enc[:0], r)
		if err := vecEm.vec.add(enc); err != nil {
			t.Fatalf("trial %d vec path: %v", trial, err)
		}
	}
	if err := rowEm.finish(); err != nil {
		t.Fatalf("trial %d row finish: %v", trial, err)
	}
	if err := vecEm.finish(); err != nil {
		t.Fatalf("trial %d vec finish: %v", trial, err)
	}

	if rowEm.count != vecEm.count {
		t.Fatalf("trial %d: row path emitted %d, vec path %d", trial, rowEm.count, vecEm.count)
	}
	if len(rowW.kvs) != len(vecW.kvs) {
		t.Fatalf("trial %d: row path wrote %d records, vec path %d", trial, len(rowW.kvs), len(vecW.kvs))
	}
	for i := range rowW.kvs {
		if !bytes.Equal(rowW.kvs[i].key, vecW.kvs[i].key) {
			t.Fatalf("trial %d record %d: key mismatch\nrow: %x\nvec: %x", trial, i, rowW.kvs[i].key, vecW.kvs[i].key)
		}
		if !bytes.Equal(rowW.kvs[i].val, vecW.kvs[i].val) {
			t.Fatalf("trial %d record %d: value mismatch\nrow: %x\nvec: %x", trial, i, rowW.kvs[i].val, vecW.kvs[i].val)
		}
	}
}

func TestVecPipeIdentityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		runPipeIdentityTrial(t, rng, trial)
	}
}

func TestVecAggIdentityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	funcs := []string{"sum", "count", "min", "max", "avg"}
	for trial := 0; trial < 150; trial++ {
		gw := rng.Intn(3)
		extra := 1 + rng.Intn(3)
		width := gw + extra
		g := &GroupOp{Kind: "agg", GroupWidth: gw, Vectorize: true}
		for i := 0; i < 1+rng.Intn(4); i++ {
			g.Aggs = append(g.Aggs, AggFuncSpec{
				Func: funcs[rng.Intn(len(funcs))],
				Col:  rng.Intn(width+2) - 1, // may be out of range
			})
		}
		var values [][]byte
		for i := 0; i < 1+rng.Intn(200); i++ {
			w := width
			if rng.Intn(50) == 0 && gw == 0 {
				w = 1 + rng.Intn(4) // width drift (only safe with no group key)
			}
			values = append(values, row.Encode(nil, randVecRow(rng, w)))
		}
		var rowOut, vecOut []row.Row
		p := &stageProcessor{}
		if err := p.aggGroup(g, values, func(r row.Row) error {
			rowOut = append(rowOut, r.Clone())
			return nil
		}); err != nil {
			t.Fatalf("trial %d row agg: %v", trial, err)
		}
		batchSize := 1 + rng.Intn(32)
		if err := aggGroupVec(g, values, batchSize, col.NewBatch(), func(r row.Row) error {
			vecOut = append(vecOut, r.Clone())
			return nil
		}); err != nil {
			t.Fatalf("trial %d vec agg: %v", trial, err)
		}
		if len(rowOut) != len(vecOut) {
			t.Fatalf("trial %d: row agg emitted %d rows, vec %d", trial, len(rowOut), len(vecOut))
		}
		for i := range rowOut {
			a := row.Encode(nil, rowOut[i])
			b := row.Encode(nil, vecOut[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("trial %d row %d: agg mismatch\nrow: %v (%x)\nvec: %v (%x)",
					trial, i, rowOut[i], a, vecOut[i], b)
			}
		}
	}
}

// TestVecAggAllNullColumn pins the null accounting: count includes null
// rows, sum/min/max skip them, avg of an all-null column is null only
// when the group is empty (count counts nulls too).
func TestVecAggAllNullColumn(t *testing.T) {
	g := &GroupOp{Kind: "agg", GroupWidth: 1, Vectorize: true, Aggs: []AggFuncSpec{
		{Func: "count", Col: 1}, {Func: "sum", Col: 1}, {Func: "min", Col: 1}, {Func: "avg", Col: 1},
	}}
	var values [][]byte
	for i := 0; i < 10; i++ {
		values = append(values, row.Encode(nil, row.Row{row.Int(7), row.Null()}))
	}
	var got row.Row
	if err := aggGroupVec(g, values, 4, col.NewBatch(), func(r row.Row) error {
		got = r.Clone()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := row.Row{row.Int(7), row.Int(10), row.Float(0), row.Null(), row.Float(0)}
	if !bytes.Equal(row.Encode(nil, got), row.Encode(nil, want)) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestVectorizedEndToEndByteIdentity runs one DAG — broadcast join with
// a batched edge, filter, arithmetic projection, aggregation, ordered
// store — once vectorized and once forced row-at-a-time (compile-time
// escape hatch plus runtime knob), and compares the stored part files
// byte for byte.
func TestVectorizedEndToEndByteIdentity(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	rng := rand.New(rand.NewSource(3))
	var facts []row.Row
	for i := 0; i < 400; i++ {
		facts = append(facts, row.Row{
			row.Int(int64(rng.Intn(20))),
			randVecValue(rng),
			row.Float(float64(rng.Intn(100)) / 4),
		})
	}
	var dims []row.Row
	for i := 0; i < 20; i++ {
		dims = append(dims, row.Row{row.Int(int64(i)), row.String(fmt.Sprintf("d%02d", i))})
	}
	fact := h.table("fact_vec", row.NewSchema("k:int", "x", "v:float"), 3, facts)
	dim := h.table("dim_vec", row.NewSchema("k:int", "name"), 1, dims)

	mkPlan := func(out string) []*Node {
		s := Scan(fact)
		f := FilterNode(s, Or(Cmp(">", Col(2), LitFloat(5)), Not(Col(1))))
		d := Scan(dim)
		j := JoinNode(f, d, []*Expr{Col(0)}, []*Expr{Col(0)}, true) // broadcast
		p := ProjectNode(j, []*Expr{Col(4), Arith("*", Col(2), LitFloat(2)), Col(1)},
			[]string{"name", "v2", "x"}, []row.Kind{row.KindString, row.KindFloat, row.KindString})
		a := AggNode(p, []*Expr{Col(0)}, []string{"name"}, []AggDef{
			{Func: "count", Name: "n"},
			{Func: "sum", Arg: Col(1), Name: "s"},
			{Func: "min", Arg: Col(2), Name: "lo"},
		})
		srt := SortNode(a, []*Expr{Col(0)}, []bool{false}, 0)
		return []*Node{StoreNode(srt, out)}
	}

	run := func(name string, exec Config, amCfg am.Config) string {
		out := "/out/" + name
		sess := am.NewSession(h.plat, amCfg)
		defer sess.Close()
		if _, err := RunTez(sess, exec, name, mkPlan(out)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return out
	}
	outVec := run("e2e-vec", Config{}, am.Config{Name: "e2e-vec"})
	outRow := run("e2e-row", Config{DisableVectorized: true}, am.Config{Name: "e2e-row", RelopBatchSize: -1})

	vecFiles := h.plat.FS.List(outVec + "/part-")
	rowFiles := h.plat.FS.List(outRow + "/part-")
	if len(vecFiles) == 0 || len(vecFiles) != len(rowFiles) {
		t.Fatalf("part file mismatch: vec %v row %v", vecFiles, rowFiles)
	}
	for i := range vecFiles {
		vb, err := h.plat.FS.ReadFile(vecFiles[i], "")
		if err != nil {
			t.Fatal(err)
		}
		rb, err := h.plat.FS.ReadFile(rowFiles[i], "")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(vb, rb) {
			t.Fatalf("stored bytes differ between engines in %s vs %s", vecFiles[i], rowFiles[i])
		}
	}
}
