package relop

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"tez/internal/row"
)

// ParseExpr parses a textual expression against a schema, resolving
// identifiers to column indices. Supported: identifiers (optionally
// qualified), integer/float/'string' literals, comparison operators
// (= == != <> < <= > >=), arithmetic (+ - * /), AND/OR/NOT and
// parentheses. Used by the Pig script parser and the CLI tools.
func ParseExpr(src string, schema row.Schema) (*Expr, error) {
	toks, err := lexExpr(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks, schema: schema}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("relop: trailing input near %q in %q", p.toks[p.pos].text, src)
	}
	return e, nil
}

type exprTok struct {
	kind string // ident, int, float, str, op
	text string
}

func lexExpr(src string) ([]exprTok, error) {
	var toks []exprTok
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '\'':
			j := i + 1
			for j < len(rs) && rs[j] != '\'' {
				j++
			}
			if j >= len(rs) {
				return nil, fmt.Errorf("relop: unterminated string in %q", src)
			}
			toks = append(toks, exprTok{"str", string(rs[i+1 : j])})
			i = j + 1
		case unicode.IsDigit(r):
			j := i
			isFloat := false
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.') {
				if rs[j] == '.' {
					isFloat = true
				}
				j++
			}
			kind := "int"
			if isFloat {
				kind = "float"
			}
			toks = append(toks, exprTok{kind, string(rs[i:j])})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_' || rs[j] == '.') {
				j++
			}
			toks = append(toks, exprTok{"ident", string(rs[i:j])})
			i = j
		default:
			two := ""
			if i+1 < len(rs) {
				two = string(rs[i : i+2])
			}
			matched := false
			for _, op := range []string{"<=", ">=", "!=", "<>", "=="} {
				if two == op {
					if op == "<>" {
						op = "!="
					}
					if op == "==" {
						op = "="
					}
					toks = append(toks, exprTok{"op", op})
					i += 2
					matched = true
					break
				}
			}
			if !matched {
				if strings.ContainsRune("=<>()+-*/,", r) {
					toks = append(toks, exprTok{"op", string(r)})
					i++
				} else {
					return nil, fmt.Errorf("relop: unexpected character %q in %q", r, src)
				}
			}
		}
	}
	return toks, nil
}

type exprParser struct {
	toks   []exprTok
	pos    int
	schema row.Schema
}

func (p *exprParser) peek() exprTok {
	if p.pos >= len(p.toks) {
		return exprTok{kind: "eof"}
	}
	return p.toks[p.pos]
}

func (p *exprParser) kw(w string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, w) {
		p.pos++
		return true
	}
	return false
}

func (p *exprParser) op(text string) bool {
	t := p.peek()
	if t.kind == "op" && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *exprParser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *exprParser) parseAnd() (*Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.kw("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

func (p *exprParser) parseNot() (*Expr, error) {
	if p.kw("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	}
	return p.parseCmp()
}

func (p *exprParser) parseCmp() (*Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.op(op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Cmp(op, left, right), nil
		}
	}
	return left, nil
}

func (p *exprParser) parseAdd() (*Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.op("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = Arith("+", left, r)
		case p.op("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = Arith("-", left, r)
		default:
			return left, nil
		}
	}
}

func (p *exprParser) parseMul() (*Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.op("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = Arith("*", left, r)
		case p.op("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = Arith("/", left, r)
		default:
			return left, nil
		}
	}
}

func (p *exprParser) parseUnary() (*Expr, error) {
	t := p.peek()
	switch t.kind {
	case "int":
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return LitInt(n), nil
	case "float":
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, err
		}
		return LitFloat(f), nil
	case "str":
		p.pos++
		return LitString(t.text), nil
	case "ident":
		p.pos++
		idx := p.schema.Index(t.text)
		if idx < 0 {
			return nil, fmt.Errorf("relop: unknown column %q (have %v)", t.text, schemaNames(p.schema))
		}
		return Col(idx), nil
	case "op":
		if t.text == "(" {
			p.pos++
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.op(")") {
				return nil, fmt.Errorf("relop: missing )")
			}
			return e, nil
		}
		if t.text == "-" {
			p.pos++
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Arith("-", LitInt(0), e), nil
		}
	}
	return nil, fmt.Errorf("relop: unexpected token %q", t.text)
}

func schemaNames(s row.Schema) []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}
