package relop

import (
	"math/rand"
	"testing"

	"tez/internal/am"
	"tez/internal/row"
)

func TestRangeSortGlobalOrder(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	rows := make([]row.Row, n)
	for i := range rows {
		rows[i] = row.Row{row.Int(rng.Int63n(100000)), row.Int(int64(i))}
	}
	tb := h.table("rsort", row.NewSchema("k:int", "v:int"), 4, rows)

	sess := am.NewSession(h.plat, am.Config{Name: "rs"})
	defer sess.Close()
	root := StoreNode(RangeSortNode(Scan(tb), []*Expr{Col(0)}, []bool{false}, 0, 4), "/out/rs")
	res, err := RunTez(sess, Config{DefaultPartitions: 4}, "rs", []*Node{root})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadStored(h.plat.FS, "/out/rs")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("rows = %d", len(got))
	}
	// Part files concatenate in partition order → globally sorted.
	for i := 1; i < len(got); i++ {
		if row.Compare(got[i-1][0], got[i][0]) > 0 {
			t.Fatalf("order broken at %d: %v > %v", i, got[i-1][0], got[i][0])
		}
	}
	// The point of range partitioning is parallel sorting: more than one
	// task must have produced output (part files).
	if parts := len(h.plat.FS.List("/out/rs/part-")); parts < 2 {
		t.Fatalf("range sort used %d partitions", parts)
	}
	_ = res
}

func TestRangeSortDescending(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	rows := make([]row.Row, 500)
	for i := range rows {
		rows[i] = row.Row{row.Int(int64(i * 7 % 501))}
	}
	tb := h.table("rsd", row.NewSchema("k:int"), 3, rows)
	sess := am.NewSession(h.plat, am.Config{Name: "rsd"})
	defer sess.Close()
	root := StoreNode(RangeSortNode(Scan(tb), []*Expr{Col(0)}, []bool{true}, 0, 3), "/out/rsd")
	if _, err := RunTez(sess, Config{}, "rsd", []*Node{root}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStored(h.plat.FS, "/out/rsd")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("rows = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if row.Compare(got[i-1][0], got[i][0]) < 0 {
			t.Fatalf("descending order broken at %d", i)
		}
	}
}

func TestRangeSortMRFallsBackToSingleReducer(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	rows := make([]row.Row, 100)
	for i := range rows {
		rows[i] = row.Row{row.Int(int64(99 - i))}
	}
	tb := h.table("rsmr", row.NewSchema("k:int"), 2, rows)
	root := func(out string) []*Node {
		return []*Node{StoreNode(RangeSortNode(Scan(tb), []*Expr{Col(0)}, []bool{false}, 0, 4), out)}
	}
	if _, err := RunMR(h.plat, am.Config{Name: "rsmr"}, Config{}, "rsmr", root("/out/rsmr")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStored(h.plat.FS, "/out/rsmr")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if row.Compare(got[i-1][0], got[i][0]) > 0 {
			t.Fatalf("MR sort order broken at %d", i)
		}
	}
	// Degraded mode: a single reducer produced the output.
	if parts := len(h.plat.FS.List("/out/rsmr/part-")); parts != 1 {
		t.Fatalf("MR global sort used %d reducers, want 1", parts)
	}
}

func TestSkewJoinCorrectAndBalanced(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	rng := rand.New(rand.NewSource(3))
	// Zipf-ish: many rows on few keys.
	z := rand.NewZipf(rng, 1.3, 1, 49)
	const n = 3000
	left := make([]row.Row, n)
	counts := map[int64]int64{}
	for i := range left {
		k := int64(z.Uint64())
		counts[k]++
		left[i] = row.Row{row.Int(k), row.Int(int64(i))}
	}
	right := make([]row.Row, 50)
	for i := range right {
		right[i] = row.Row{row.Int(int64(i)), row.Int(int64(i * 100))}
	}
	lt := h.table("skl", row.NewSchema("k:int", "v:int"), 4, left)
	rt := h.table("skr", row.NewSchema("k:int", "w:int"), 2, right)

	sess := am.NewSession(h.plat, am.Config{Name: "skew", DisableAutoParallelism: true})
	defer sess.Close()
	j := SkewJoinNode(Scan(lt), Scan(rt), []*Expr{Col(0)}, []*Expr{Col(0)}, 4)
	agg := AggNode(j, nil, nil, []AggDef{{Func: "count", Name: "n"}})
	if _, err := RunTez(sess, Config{DefaultPartitions: 4}, "skew", []*Node{StoreNode(agg, "/out/skew")}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStored(h.plat.FS, "/out/skew")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range got {
		total += r[0].AsInt()
	}
	// Every left row matches exactly one right row.
	if total != n {
		t.Fatalf("join produced %d rows, want %d", total, n)
	}
}
