package relop

import (
	"bytes"

	"tez/internal/col"
)

// Vectorized expression kernels (DESIGN.md §13). evalVec computes an
// Expr over every physical row of a batch at once — type-specialized
// loops for the common int64/bytes comparators and int/float arithmetic,
// with boxed per-row fallbacks (via col.CompareAt / arithValues) that
// replicate the row engine's dynamic-typing rules exactly. The lint gate
// forbids per-record Expr evaluation in this file: everything here must
// stay batch-shaped.
//
// Null discipline: fast kernels may leave garbage payload bits at null
// positions; every consumer (truthyWords, encoders, CompareAt) checks
// the null overlay first, mirroring how the row engine checks IsNull
// before touching a value.

func evalVec(e *Expr, b *col.Batch) col.Vector {
	n := b.Len()
	switch e.Kind {
	case "col":
		if e.Col < 0 || e.Col >= b.Width() {
			return col.ConstNull(n)
		}
		return *b.Col(e.Col) // header copy; storage shared, never mutated
	case "lit":
		return col.Const(e.Lit, n)
	case "cmp":
		a := evalVec(e.Args[0], b)
		c := evalVec(e.Args[1], b)
		return cmpVec(e.Op, &a, &c, n)
	case "and", "or":
		nw := (n + 63) / 64
		acc := make([]uint64, nw)
		if e.Kind == "and" {
			for w := range acc {
				acc[w] = ^uint64(0)
			}
		}
		var tmp []uint64
		for _, arg := range e.Args {
			v := evalVec(arg, b)
			tmp = truthyWords(tmp, &v, n)
			if e.Kind == "and" {
				for w := range acc {
					acc[w] &= tmp[w]
				}
			} else {
				for w := range acc {
					acc[w] |= tmp[w]
				}
			}
		}
		out := col.NewBool(n)
		copy(out.Bits, acc)
		return out
	case "not":
		v := evalVec(e.Args[0], b)
		tmp := truthyWords(nil, &v, n)
		out := col.NewBool(n)
		for w := range out.Bits {
			out.Bits[w] = ^tmp[w]
		}
		return out
	case "arith":
		a := evalVec(e.Args[0], b)
		c := evalVec(e.Args[1], b)
		return arithVec(e.Op, &a, &c, n)
	}
	return col.ConstNull(n)
}

// truthyWords renders a vector as one truthiness bit per row (null, 0,
// 0.0 and "" are false), reusing dst.
func truthyWords(dst []uint64, v *col.Vector, n int) []uint64 {
	nw := (n + 63) / 64
	dst = dst[:0]
	for w := 0; w < nw; w++ {
		dst = append(dst, 0)
	}
	if v.IsConst() {
		if v.Truthy(0) {
			for w := range dst {
				dst[w] = ^uint64(0)
			}
		}
		return dst
	}
	switch v.Kind() {
	case col.Bool:
		for w := range dst {
			if w < len(v.Bits) {
				dst[w] = v.Bits[w] &^ v.NullWord(w)
			}
		}
	case col.Int64:
		for i, x := range v.Ints {
			if x != 0 {
				dst[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		for w := range dst {
			dst[w] &^= v.NullWord(w)
		}
	default:
		for i := 0; i < n; i++ {
			if v.Truthy(i) {
				dst[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	return dst
}

// --- comparison -------------------------------------------------------

func cmpTrue(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// flipOp mirrors an operator across swapped operands.
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func constNonNull(v *col.Vector, k col.Kind) bool {
	return v.IsConst() && v.Kind() == k && !v.IsNull(0)
}

func denseKind(v *col.Vector, k col.Kind) bool {
	return v.Kind() == k && !v.IsConst()
}

func cmpVec(op string, a, c *col.Vector, n int) col.Vector {
	out := col.NewBool(n)
	switch {
	case denseKind(a, col.Int64) && constNonNull(c, col.Int64):
		cmpIntsConst(&out, a.Ints, c.Int(0), op)
		copyNullWords(&out, a, n)
	case denseKind(c, col.Int64) && constNonNull(a, col.Int64):
		cmpIntsConst(&out, c.Ints, a.Int(0), flipOp(op))
		copyNullWords(&out, c, n)
	case denseKind(a, col.Int64) && denseKind(c, col.Int64):
		cmpIntsInts(&out, a.Ints, c.Ints, op)
		unionNullWords(&out, a, c, n)
	case denseKind(a, col.Bytes) && constNonNull(c, col.Bytes):
		cmpBytesConst(&out, a, c.BytesAt(0), op)
		copyNullWords(&out, a, n)
	case denseKind(c, col.Bytes) && constNonNull(a, col.Bytes):
		cmpBytesConst(&out, c, a.BytesAt(0), flipOp(op))
		copyNullWords(&out, c, n)
	case denseKind(a, col.Float64) && constNonNull(c, col.Float64):
		cmpFloatsConst(&out, a.Floats, c.Float(0), op)
		copyNullWords(&out, a, n)
	case denseKind(c, col.Float64) && constNonNull(a, col.Float64):
		cmpFloatsConst(&out, c.Floats, a.Float(0), flipOp(op))
		copyNullWords(&out, c, n)
	default:
		for i := 0; i < n; i++ {
			if a.IsNull(i) || c.IsNull(i) {
				out.SetNullAt(i)
				continue
			}
			if cmpTrue(op, col.CompareAt(a, i, c, i)) {
				out.SetTrue(i)
			}
		}
	}
	return out
}

func cmpIntsConst(out *col.Vector, xs []int64, lit int64, op string) {
	switch op {
	case "=":
		for i, x := range xs {
			if x == lit {
				out.SetTrue(i)
			}
		}
	case "!=":
		for i, x := range xs {
			if x != lit {
				out.SetTrue(i)
			}
		}
	case "<":
		for i, x := range xs {
			if x < lit {
				out.SetTrue(i)
			}
		}
	case "<=":
		for i, x := range xs {
			if x <= lit {
				out.SetTrue(i)
			}
		}
	case ">":
		for i, x := range xs {
			if x > lit {
				out.SetTrue(i)
			}
		}
	case ">=":
		for i, x := range xs {
			if x >= lit {
				out.SetTrue(i)
			}
		}
	}
}

func cmpIntsInts(out *col.Vector, xs, ys []int64, op string) {
	switch op {
	case "=":
		for i, x := range xs {
			if x == ys[i] {
				out.SetTrue(i)
			}
		}
	case "!=":
		for i, x := range xs {
			if x != ys[i] {
				out.SetTrue(i)
			}
		}
	case "<":
		for i, x := range xs {
			if x < ys[i] {
				out.SetTrue(i)
			}
		}
	case "<=":
		for i, x := range xs {
			if x <= ys[i] {
				out.SetTrue(i)
			}
		}
	case ">":
		for i, x := range xs {
			if x > ys[i] {
				out.SetTrue(i)
			}
		}
	case ">=":
		for i, x := range xs {
			if x >= ys[i] {
				out.SetTrue(i)
			}
		}
	}
}

// cmpFloatsConst phrases every operator in terms of strict < and >, the
// way row.Compare does: NaN is unordered, so Compare returns 0 and the
// row engine treats NaN "=", "<=", ">=" anything as true. Native ==, !=
// and <= would diverge on NaN operands.
func cmpFloatsConst(out *col.Vector, xs []float64, lit float64, op string) {
	switch op {
	case "=":
		for i, x := range xs {
			if !(x < lit) && !(x > lit) {
				out.SetTrue(i)
			}
		}
	case "!=":
		for i, x := range xs {
			if x < lit || x > lit {
				out.SetTrue(i)
			}
		}
	case "<":
		for i, x := range xs {
			if x < lit {
				out.SetTrue(i)
			}
		}
	case "<=":
		for i, x := range xs {
			if !(x > lit) {
				out.SetTrue(i)
			}
		}
	case ">":
		for i, x := range xs {
			if x > lit {
				out.SetTrue(i)
			}
		}
	case ">=":
		for i, x := range xs {
			if !(x < lit) {
				out.SetTrue(i)
			}
		}
	}
}

func cmpBytesConst(out *col.Vector, a *col.Vector, lit []byte, op string) {
	for i := 0; i < a.Len(); i++ {
		if cmpTrue(op, bytes.Compare(a.BytesAt(i), lit)) {
			out.SetTrue(i)
		}
	}
}

func copyNullWords(out *col.Vector, a *col.Vector, n int) {
	for w := 0; w < (n+63)/64; w++ {
		if nw := a.NullWord(w); nw != 0 {
			out.SetNullWord(w, nw)
		}
	}
}

func unionNullWords(out *col.Vector, a, c *col.Vector, n int) {
	for w := 0; w < (n+63)/64; w++ {
		if nw := a.NullWord(w) | c.NullWord(w); nw != 0 {
			out.SetNullWord(w, nw)
		}
	}
}

// --- arithmetic -------------------------------------------------------

func numericIntKind(v *col.Vector) bool {
	return v.Kind() == col.Int64 || v.Kind() == col.Bool
}

func plainKind(v *col.Vector) bool {
	switch v.Kind() {
	case col.Int64, col.Float64, col.Bytes, col.Bool:
		return true
	}
	return false
}

func arithVec(op string, a, c *col.Vector, n int) col.Vector {
	switch op {
	case "+", "-", "*", "/":
	default:
		return col.ConstNull(n) // unknown operator yields null on the row path too
	}
	if a.Kind() == col.Unset || c.Kind() == col.Unset {
		return col.ConstNull(n) // an all-null operand nulls every row
	}
	if !plainKind(a) || !plainKind(c) {
		// Kind-mixed column: box per row through the shared scalar kernel.
		var out col.Vector
		for i := 0; i < n; i++ {
			out.AppendValue(arithValues(op, a.Value(i), c.Value(i)))
		}
		return out
	}
	// Per-vector kinds are uniform, so the row engine's per-row "both
	// ints and not division" test is uniform across the batch.
	if numericIntKind(a) && numericIntKind(c) && op != "/" {
		return arithInts(op, a, c, n)
	}
	return arithFloats(op, a, c, n)
}

func arithInts(op string, a, c *col.Vector, n int) col.Vector {
	out := col.NewInts(n)
	switch {
	case denseKind(a, col.Int64) && constNonNull(c, col.Int64):
		arithIntsConst(out.Ints, a.Ints, c.Int(0), op, false)
		copyNullWords(&out, a, n)
	case denseKind(c, col.Int64) && constNonNull(a, col.Int64):
		arithIntsConst(out.Ints, c.Ints, a.Int(0), op, true)
		copyNullWords(&out, c, n)
	case denseKind(a, col.Int64) && denseKind(c, col.Int64):
		arithIntsInts(out.Ints, a.Ints, c.Ints, op)
		unionNullWords(&out, a, c, n)
	default:
		for i := 0; i < n; i++ {
			if a.IsNull(i) || c.IsNull(i) {
				out.SetNullAt(i)
				continue
			}
			out.Ints[i] = intOp(op, a.Int(i), c.Int(i))
		}
	}
	return out
}

func intOp(op string, x, y int64) int64 {
	switch op {
	case "+":
		return x + y
	case "-":
		return x - y
	case "*":
		return x * y
	}
	return 0
}

// arithIntsConst computes xs ⊕ lit (or lit ⊕ xs when rev).
func arithIntsConst(dst, xs []int64, lit int64, op string, rev bool) {
	switch op {
	case "+":
		for i, x := range xs {
			dst[i] = x + lit
		}
	case "-":
		if rev {
			for i, x := range xs {
				dst[i] = lit - x
			}
		} else {
			for i, x := range xs {
				dst[i] = x - lit
			}
		}
	case "*":
		for i, x := range xs {
			dst[i] = x * lit
		}
	}
}

func arithIntsInts(dst, xs, ys []int64, op string) {
	switch op {
	case "+":
		for i, x := range xs {
			dst[i] = x + ys[i]
		}
	case "-":
		for i, x := range xs {
			dst[i] = x - ys[i]
		}
	case "*":
		for i, x := range xs {
			dst[i] = x * ys[i]
		}
	}
}

func arithFloats(op string, a, c *col.Vector, n int) col.Vector {
	out := col.NewFloats(n)
	if op == "/" {
		for i := 0; i < n; i++ {
			if a.IsNull(i) || c.IsNull(i) {
				out.SetNullAt(i)
				continue
			}
			_, fa, _, _ := a.NumAt(i)
			_, fb, _, _ := c.NumAt(i)
			if fb == 0 {
				out.SetNullAt(i)
				continue
			}
			out.Floats[i] = fa / fb
		}
		return out
	}
	switch {
	case denseKind(a, col.Float64) && constNonNull(c, col.Float64):
		arithFloatsConst(out.Floats, a.Floats, c.Float(0), op, false)
		copyNullWords(&out, a, n)
	case denseKind(c, col.Float64) && constNonNull(a, col.Float64):
		arithFloatsConst(out.Floats, c.Floats, a.Float(0), op, true)
		copyNullWords(&out, c, n)
	case denseKind(a, col.Float64) && denseKind(c, col.Float64):
		arithFloatsFloats(out.Floats, a.Floats, c.Floats, op)
		unionNullWords(&out, a, c, n)
	default:
		for i := 0; i < n; i++ {
			if a.IsNull(i) || c.IsNull(i) {
				out.SetNullAt(i)
				continue
			}
			_, fa, _, _ := a.NumAt(i)
			_, fb, _, _ := c.NumAt(i)
			out.Floats[i] = floatOp(op, fa, fb)
		}
	}
	return out
}

func floatOp(op string, x, y float64) float64 {
	switch op {
	case "+":
		return x + y
	case "-":
		return x - y
	case "*":
		return x * y
	}
	return 0
}

func arithFloatsConst(dst, xs []float64, lit float64, op string, rev bool) {
	switch op {
	case "+":
		for i, x := range xs {
			dst[i] = x + lit
		}
	case "-":
		if rev {
			for i, x := range xs {
				dst[i] = lit - x
			}
		} else {
			for i, x := range xs {
				dst[i] = x - lit
			}
		}
	case "*":
		for i, x := range xs {
			dst[i] = x * lit
		}
	}
}

func arithFloatsFloats(dst, xs, ys []float64, op string) {
	switch op {
	case "+":
		for i, x := range xs {
			dst[i] = x + ys[i]
		}
	case "-":
		for i, x := range xs {
			dst[i] = x - ys[i]
		}
	case "*":
		for i, x := range xs {
			dst[i] = x * ys[i]
		}
	}
}
