package relop

import (
	"fmt"

	"tez/internal/row"
)

// Table is a catalogued DFS-resident dataset: rows stored as record files
// (empty keys, row-encoded values). Files lists the physical files; tables
// partitioned by a column keep one file per partition value so the
// dynamic-pruning initializer can skip irrelevant ones.
type Table struct {
	Name      string
	Schema    row.Schema
	Files     []string
	SizeBytes int64
	Rows      int64
	// PartitionCol, when >= 0, is the column each file is partitioned by;
	// PartitionVals[i] is file i's value (Hive-style partitioned table).
	PartitionCol  int
	PartitionVals []row.Value
}

// AggDef is one aggregate in an Agg node.
type AggDef struct {
	Func string // sum, count, min, max, avg
	Arg  *Expr  // ignored for count(*) (nil)
	Name string
}

// Node is a logical plan operator. Plans form DAGs: a node may be consumed
// by several parents (Pig SPLIT, shared sub-plans).
type Node struct {
	// Op: scan, filter, project, join, agg, sort, distinct, union, store.
	Op       string
	Children []*Node
	// OutSchema is the node's output schema.
	OutSchema row.Schema

	// scan
	Table *Table
	// When set, the Tez compiler attaches a pruning initializer fed by
	// InputInitializerEvents carrying join-key values from PruneFrom.
	Prune *PruneSpec

	// filter
	Filter *Expr

	// project
	Exprs []*Expr
	Names []string

	// join (children: left, right); equality keys.
	JoinL, JoinR []*Expr
	// Broadcast builds the right side into a hash table shipped over a
	// broadcast edge (Tez map join); the MR compiler rejects it.
	Broadcast bool

	// agg
	GroupBy []*Expr
	Aggs    []AggDef

	// sort
	SortKeys []*Expr
	SortDesc []bool
	Limit    int // 0 = unlimited (also used by op "limit" folded into sort)
	// rangesort / skewjoin: submitted partition count for the sampled
	// range partitioner.
	RangeParts int

	// store
	StorePath string
}

// PruneSpec connects a partitioned scan to the vertex producing its join
// key values (§3.5, dynamic partition pruning).
type PruneSpec struct {
	// SourceVertex is the stage whose tasks emit the key values (filled in
	// by the compiler from SourceNode).
	SourceNode *Node
	// KeyExpr evaluates the pruning value on the source node's rows.
	KeyExpr *Expr
}

// Plan builders. Each validates arity and computes the output schema.

// Scan reads a table.
func Scan(t *Table) *Node {
	return &Node{Op: "scan", Table: t, OutSchema: t.Schema}
}

// FilterNode applies a predicate.
func FilterNode(in *Node, pred *Expr) *Node {
	return &Node{Op: "filter", Children: []*Node{in}, Filter: pred, OutSchema: in.OutSchema}
}

// ProjectNode computes expressions with the given output names.
func ProjectNode(in *Node, exprs []*Expr, names []string, kinds []row.Kind) *Node {
	s := row.Schema{}
	for i, n := range names {
		k := row.KindString
		if kinds != nil {
			k = kinds[i]
		}
		s.Cols = append(s.Cols, row.Col{Name: n, Kind: k})
	}
	return &Node{Op: "project", Children: []*Node{in}, Exprs: exprs, Names: names, OutSchema: s}
}

// JoinNode is an inner equality join; the output schema is left ++ right.
func JoinNode(l, r *Node, keysL, keysR []*Expr, broadcast bool) *Node {
	return &Node{
		Op: "join", Children: []*Node{l, r},
		JoinL: keysL, JoinR: keysR, Broadcast: broadcast,
		OutSchema: l.OutSchema.Concat(r.OutSchema),
	}
}

// AggNode groups by the given expressions and computes aggregates; output
// is group columns then aggregate columns.
func AggNode(in *Node, groupBy []*Expr, groupNames []string, aggs []AggDef) *Node {
	s := row.Schema{}
	for _, n := range groupNames {
		s.Cols = append(s.Cols, row.Col{Name: n, Kind: row.KindString})
	}
	for _, a := range aggs {
		s.Cols = append(s.Cols, row.Col{Name: a.Name, Kind: row.KindFloat})
	}
	return &Node{Op: "agg", Children: []*Node{in}, GroupBy: groupBy, Aggs: aggs, OutSchema: s}
}

// SortNode orders rows (optionally truncating to limit).
func SortNode(in *Node, keys []*Expr, desc []bool, limit int) *Node {
	return &Node{Op: "sort", Children: []*Node{in}, SortKeys: keys, SortDesc: desc, Limit: limit, OutSchema: in.OutSchema}
}

// DistinctNode removes duplicate rows.
func DistinctNode(in *Node) *Node {
	return &Node{Op: "distinct", Children: []*Node{in}, OutSchema: in.OutSchema}
}

// UnionNode concatenates inputs of identical width.
func UnionNode(ins ...*Node) *Node {
	return &Node{Op: "union", Children: ins, OutSchema: ins[0].OutSchema}
}

// StoreNode writes rows to a DFS directory; it is a plan root.
func StoreNode(in *Node, path string) *Node {
	return &Node{Op: "store", Children: []*Node{in}, StorePath: path, OutSchema: in.OutSchema}
}

// Validate checks plan structure from the given roots.
func Validate(roots []*Node) error {
	seen := map[*Node]bool{}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return fmt.Errorf("relop: nil node")
		}
		if seen[n] {
			return nil
		}
		seen[n] = true
		switch n.Op {
		case "scan":
			if n.Table == nil {
				return fmt.Errorf("relop: scan without table")
			}
		case "filter":
			if n.Filter == nil {
				return fmt.Errorf("relop: filter without predicate")
			}
		case "join", "skewjoin":
			if len(n.Children) != 2 || len(n.JoinL) == 0 || len(n.JoinL) != len(n.JoinR) {
				return fmt.Errorf("relop: malformed join")
			}
		case "rangesort":
			if len(n.SortKeys) == 0 {
				return fmt.Errorf("relop: rangesort without keys")
			}
		case "store":
			if n.StorePath == "" {
				return fmt.Errorf("relop: store without path")
			}
		case "union":
			for _, c := range n.Children {
				if c.OutSchema.Width() != n.OutSchema.Width() {
					return fmt.Errorf("relop: union width mismatch")
				}
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if r.Op != "store" {
			return fmt.Errorf("relop: plan root must be store, got %s", r.Op)
		}
		if err := walk(r); err != nil {
			return err
		}
	}
	return nil
}
