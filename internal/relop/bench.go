package relop

import (
	"fmt"

	"tez/internal/col"
	"tez/internal/row"
	"tez/internal/runtime"
)

// This file exports the two kernel entry points the vectorization
// ablation (internal/bench, `tez-bench -exp relop`) measures, so the
// benchmark can drive exactly the data plane a task attempt runs —
// same emitter, same kernels — without standing up a cluster.

// RunEmitBench streams pre-encoded rows through one emit pipeline.
// batchSize <= 0 decodes and evaluates row-at-a-time (the pre-columnar
// engine); batchSize > 0 runs the batch kernels. Returns the number of
// rows emitted so callers can keep the variants honest.
func RunEmitBench(spec EmitSpec, tables map[string]map[string][]row.Row, widths map[string]int,
	encoded [][]byte, batchSize int, w runtime.KVWriter) (int64, error) {

	proc := &stageProcessor{tableWidths: widths}
	em := &emitter{spec: spec, writer: w, proc: proc, tables: tables}
	if batchSize > 0 {
		if ok, reason := VectorizableEmit(&spec); !ok {
			return 0, fmt.Errorf("relop: bench spec not vectorizable: %s", reason)
		}
		proc.batchSize = batchSize
		em.spec.Vectorize = true
		em.vec = newVecEmitter(em, batchSize)
		for _, e := range encoded {
			if err := em.vec.add(e); err != nil {
				return 0, err
			}
		}
	} else {
		for _, e := range encoded {
			r, err := row.Decode(e)
			if err != nil {
				return 0, err
			}
			if err := em.emit(r); err != nil {
				return 0, err
			}
		}
	}
	if err := em.finish(); err != nil {
		return 0, err
	}
	return em.count, nil
}

// RunAggBench runs the grouped-aggregation kernel over one group's
// encoded values: batchSize <= 0 takes the row path, > 0 the columnar
// path.
func RunAggBench(g *GroupOp, values [][]byte, batchSize int, emit func(row.Row) error) error {
	if batchSize > 0 {
		return aggGroupVec(g, values, batchSize, col.NewBatch(), emit)
	}
	p := &stageProcessor{}
	return p.aggGroup(g, values, emit)
}
