package relop

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tez/internal/runtime"
)

// sliceGroups is a GroupedKVReader over in-memory groups.
type sliceGroups struct {
	keys [][]byte
	vals [][][]byte
	pos  int
}

func (s *sliceGroups) Next() bool {
	if s.pos >= len(s.keys) {
		return false
	}
	s.pos++
	return true
}
func (s *sliceGroups) Key() []byte      { return s.keys[s.pos-1] }
func (s *sliceGroups) Values() [][]byte { return s.vals[s.pos-1] }
func (s *sliceGroups) Err() error       { return nil }

func TestMergeGroupReadersCombinesEqualKeys(t *testing.T) {
	a := &sliceGroups{
		keys: [][]byte{[]byte("a"), []byte("c")},
		vals: [][][]byte{{[]byte("a1")}, {[]byte("c1"), []byte("c2")}},
	}
	b := &sliceGroups{
		keys: [][]byte{[]byte("a"), []byte("b")},
		vals: [][][]byte{{[]byte("a2")}, {[]byte("b1")}},
	}
	m := mergeGroupReaders([]runtime.GroupedKVReader{a, b})
	type got struct {
		key  string
		vals int
	}
	var out []got
	for m.Next() {
		out = append(out, got{string(m.Key()), len(m.Values())})
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	want := []got{{"a", 2}, {"b", 1}, {"c", 2}}
	if len(out) != len(want) {
		t.Fatalf("groups = %+v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("group %d = %+v, want %+v", i, out[i], want[i])
		}
	}
}

func TestMergeGroupReadersSinglePassThrough(t *testing.T) {
	a := &sliceGroups{keys: [][]byte{[]byte("x")}, vals: [][][]byte{{[]byte("1")}}}
	m := mergeGroupReaders([]runtime.GroupedKVReader{a})
	if m != runtime.GroupedKVReader(a) {
		t.Fatal("single reader should pass through unwrapped")
	}
}

// Property: merging R sorted group streams yields all keys in order with
// value counts summed across streams.
func TestQuickMergeGroupReaders(t *testing.T) {
	f := func(seed int64, readersRaw, keysRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		readers := int(readersRaw%4) + 1
		keySpace := int(keysRaw%12) + 1
		wantCount := map[string]int{}
		var rs []runtime.GroupedKVReader
		for r := 0; r < readers; r++ {
			// Each reader holds a sorted subset of the key space.
			var keys [][]byte
			var vals [][][]byte
			for k := 0; k < keySpace; k++ {
				if rng.Intn(2) == 0 {
					continue
				}
				key := fmt.Sprintf("k%03d", k)
				n := 1 + rng.Intn(3)
				var vv [][]byte
				for i := 0; i < n; i++ {
					vv = append(vv, []byte{byte(i)})
				}
				keys = append(keys, []byte(key))
				vals = append(vals, vv)
				wantCount[key] += n
			}
			rs = append(rs, &sliceGroups{keys: keys, vals: vals})
		}
		m := mergeGroupReaders(rs)
		gotCount := map[string]int{}
		var prev string
		for m.Next() {
			k := string(m.Key())
			if prev != "" && k <= prev {
				return false // keys must be strictly increasing
			}
			prev = k
			gotCount[k] = len(m.Values())
		}
		if m.Err() != nil || len(gotCount) != len(wantCount) {
			return false
		}
		keys := make([]string, 0, len(wantCount))
		for k := range wantCount {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if gotCount[k] != wantCount[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
