package relop

import (
	"fmt"

	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/plugin"
)

// Config tunes compilation.
type Config struct {
	// DefaultPartitions is the submitted parallelism of shuffle consumers
	// (shrunk at runtime by the ShuffleVertexManager on Tez).
	DefaultPartitions int
	// SortParallelism is the parallelism of global sorts (default 1).
	SortParallelism int
	// SplitSize feeds the split initializer.
	SplitSize int64
	// DisableRegistryCache turns off object-registry sharing of broadcast
	// hash tables (ablation).
	DisableRegistryCache bool
	// DisableVectorized keeps every pipeline, aggregation and broadcast
	// edge on the row-at-a-time path (escape hatch / ablation). The
	// runtime knob am.Config.RelopBatchSize < 0 disables batch execution
	// per session instead; this flag also reverts the wire format.
	DisableVectorized bool
	// TempRoot hosts MR-chain intermediate data.
	TempRoot string
}

func (c Config) withDefaults() Config {
	if c.DefaultPartitions <= 0 {
		c.DefaultPartitions = 4
	}
	if c.SortParallelism <= 0 {
		c.SortParallelism = 1
	}
	if c.SplitSize <= 0 {
		c.SplitSize = 16 * 1024
	}
	if c.TempRoot == "" {
		c.TempRoot = "/tmp/relop"
	}
	return c
}

// bStage is a stage under construction.
type bStage struct {
	name    string
	grouped bool
	spec    StageSpec
	sources []dag.DataSource
	sinks   []dag.DataSink
	par     int // grouped stages; map stages are split-driven (-1)
	// inEdges: (producer stage, movement); deduplicated per producer.
	inEdges []*bEdge
	// vm overrides the stage's vertex manager (pig's range partitioning).
	vm plugin.Descriptor
}

type bEdge struct {
	from     *bStage
	to       *bStage
	movement dag.MovementType
}

// cursor is "rows of some node are available on stage st, input stream
// `input` (” = group output), after applying pipe".
type cursor struct {
	st    *bStage
	input string
	pipe  []PipeOp
}

func (c cursor) with(op PipeOp) cursor {
	pipe := make([]PipeOp, len(c.pipe)+1)
	copy(pipe, c.pipe)
	pipe[len(c.pipe)] = op
	return cursor{st: c.st, input: c.input, pipe: pipe}
}

// Compiler lowers plan DAGs to stage graphs.
type Compiler struct {
	cfg     Config
	memo    map[*Node][]cursor
	stages  []*bStage
	seq     int
	sinkSeq int
	pending []pendingPrune
	// forMR rejects Tez-only features (broadcast joins, pruning).
	forMR bool
}

// NewCompiler creates a compiler.
func NewCompiler(cfg Config) *Compiler {
	return &Compiler{cfg: cfg.withDefaults(), memo: map[*Node][]cursor{}}
}

func (c *Compiler) newStage(kind string) *bStage {
	c.seq++
	st := &bStage{name: fmt.Sprintf("s%02d_%s", c.seq, kind), par: -1}
	c.stages = append(c.stages, st)
	return st
}

// edge registers (or reuses) an edge between stages.
func (c *Compiler) edge(from, to *bStage, movement dag.MovementType) error {
	for _, e := range to.inEdges {
		if e.from == from {
			if e.movement != movement {
				return fmt.Errorf("relop: conflicting movements on edge %s->%s", from.name, to.name)
			}
			return nil
		}
	}
	to.inEdges = append(to.inEdges, &bEdge{from: from, to: to, movement: movement})
	// The consumer reads the edge under the producer vertex's name.
	mode := InGrouped
	if movement == dag.Broadcast {
		mode = InUnordered
	}
	to.spec.Inputs = append(to.spec.Inputs, StageInput{Name: from.name, Mode: mode})
	return nil
}

// compile lowers a node (memoized: shared sub-plans compile once and fan
// their stage output out to every consumer).
func (c *Compiler) compile(n *Node) ([]cursor, error) {
	if cs, ok := c.memo[n]; ok {
		return cs, nil
	}
	cs, err := c.compileNew(n)
	if err != nil {
		return nil, err
	}
	c.memo[n] = cs
	return cs, nil
}

func (c *Compiler) compileNew(n *Node) ([]cursor, error) {
	switch n.Op {
	case "scan":
		return c.compileScan(n)
	case "filter":
		in, err := c.compile(n.Children[0])
		if err != nil {
			return nil, err
		}
		return withAll(in, PipeOp{Kind: "filter", Filter: n.Filter}), nil
	case "project":
		in, err := c.compile(n.Children[0])
		if err != nil {
			return nil, err
		}
		return withAll(in, PipeOp{Kind: "project", Project: n.Exprs}), nil
	case "join":
		if n.Broadcast {
			return c.compileBroadcastJoin(n)
		}
		return c.compileShuffleJoin(n)
	case "agg":
		return c.compileAgg(n)
	case "sort":
		return c.compileSort(n)
	case "rangesort":
		return c.compileRangeSort(n)
	case "skewjoin":
		return c.compileSkewJoin(n)
	case "distinct":
		return c.compileDistinct(n)
	case "union":
		var all []cursor
		for _, ch := range n.Children {
			cs, err := c.compile(ch)
			if err != nil {
				return nil, err
			}
			all = append(all, cs...)
		}
		return all, nil
	case "store":
		return nil, fmt.Errorf("relop: store compiled via root path")
	}
	return nil, fmt.Errorf("relop: cannot compile op %q", n.Op)
}

func withAll(cs []cursor, op PipeOp) []cursor {
	out := make([]cursor, len(cs))
	for i, cur := range cs {
		out[i] = cur.with(op)
	}
	return out
}

func (c *Compiler) compileScan(n *Node) ([]cursor, error) {
	st := c.newStage("scan_" + n.Table.Name)
	src := dag.DataSource{
		Name:  "src",
		Input: plugin.Desc(library.DFSSourceInputName, nil),
	}
	if n.Prune != nil {
		if c.forMR {
			return nil, fmt.Errorf("relop: dynamic partition pruning requires the Tez backend")
		}
		// Wired later (the prune source's stage name is needed); record a
		// placeholder resolved in finishPruning.
		c.pending = append(c.pending, pendingPrune{node: n, stage: st})
		src.Initializer = plugin.Descriptor{Name: PruneInitializerName}
	} else {
		src.Initializer = plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{
			Paths:            n.Table.Files,
			DesiredSplitSize: c.cfg.SplitSize,
		})
	}
	st.sources = append(st.sources, src)
	st.spec.Inputs = append(st.spec.Inputs, StageInput{Name: "src", Mode: InSource})
	// Scan-level filter (predicate pushdown) starts the pipe.
	var pipe []PipeOp
	if n.Filter != nil {
		pipe = []PipeOp{{Kind: "filter", Filter: n.Filter}}
	}
	return []cursor{{st: st, input: "src", pipe: pipe}}, nil
}

func (c *Compiler) compileShuffleJoin(n *Node) ([]cursor, error) {
	left, err := c.compile(n.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := c.compile(n.Children[1])
	if err != nil {
		return nil, err
	}
	st := c.newStage("join")
	st.grouped = true
	st.par = c.cfg.DefaultPartitions
	st.spec.Group = &GroupOp{Kind: "join", Sides: 2}
	emitSide := func(curs []cursor, keys []*Expr, tag int) error {
		for _, cur := range curs {
			cur.st.spec.Emits = append(cur.st.spec.Emits, EmitSpec{
				Input: cur.input, Output: st.name, Kind: EmitShuffle,
				Pipe: cur.pipe, Keys: keys, Tag: tag,
			})
			if err := c.edge(cur.st, st, dag.ScatterGather); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emitSide(left, n.JoinL, 0); err != nil {
		return nil, err
	}
	if err := emitSide(right, n.JoinR, 1); err != nil {
		return nil, err
	}
	return []cursor{{st: st}}, nil
}

func (c *Compiler) compileBroadcastJoin(n *Node) ([]cursor, error) {
	if c.forMR {
		return nil, fmt.Errorf("relop: broadcast join requires the Tez backend")
	}
	probe, err := c.compile(n.Children[0])
	if err != nil {
		return nil, err
	}
	build, err := c.compile(n.Children[1])
	if err != nil {
		return nil, err
	}
	if len(build) != 1 {
		return nil, fmt.Errorf("relop: broadcast join build side must be a single stream")
	}
	out := make([]cursor, 0, len(probe))
	for _, pc := range probe {
		for _, bc := range build {
			bc.st.spec.Emits = append(bc.st.spec.Emits, EmitSpec{
				Input: bc.input, Output: pc.st.name, Kind: EmitBroadcast,
				Pipe: bc.pipe, Tag: -1,
			})
			if err := c.edge(bc.st, pc.st, dag.Broadcast); err != nil {
				return nil, err
			}
			// Rewrite the auto-added unordered input into a build input.
			for i := range pc.st.spec.Inputs {
				if pc.st.spec.Inputs[i].Name == bc.st.name {
					pc.st.spec.Inputs[i].Mode = InBuild
					pc.st.spec.Inputs[i].BuildKeys = n.JoinR
					pc.st.spec.Inputs[i].CacheInRegistry = !c.cfg.DisableRegistryCache
				}
			}
			pc = pc.with(PipeOp{Kind: "hashjoin", HJ: &HashJoinSpec{
				Input: bc.st.name, ProbeKeys: n.JoinL,
			}})
		}
		out = append(out, pc)
	}
	return out, nil
}

func (c *Compiler) compileAgg(n *Node) ([]cursor, error) {
	in, err := c.compile(n.Children[0])
	if err != nil {
		return nil, err
	}
	gw := len(n.GroupBy)
	// Map side projects [group..., args...]; key = leading group columns.
	project := append([]*Expr{}, n.GroupBy...)
	aggs := make([]AggFuncSpec, len(n.Aggs))
	for i, a := range n.Aggs {
		arg := a.Arg
		if arg == nil {
			arg = LitInt(1)
		}
		project = append(project, arg)
		aggs[i] = AggFuncSpec{Func: a.Func, Col: gw + i}
	}
	keys := make([]*Expr, gw)
	for i := range keys {
		keys[i] = Col(i)
	}
	st := c.newStage("agg")
	st.grouped = true
	st.par = c.cfg.DefaultPartitions
	st.spec.Group = &GroupOp{Kind: "agg", GroupWidth: gw, Aggs: aggs}
	for _, cur := range in {
		pipe := append(append([]PipeOp{}, cur.pipe...), PipeOp{Kind: "project", Project: project})
		cur.st.spec.Emits = append(cur.st.spec.Emits, EmitSpec{
			Input: cur.input, Output: st.name, Kind: EmitShuffle,
			Pipe: pipe, Keys: keys, Tag: -1,
		})
		if err := c.edge(cur.st, st, dag.ScatterGather); err != nil {
			return nil, err
		}
	}
	return []cursor{{st: st}}, nil
}

func (c *Compiler) compileSort(n *Node) ([]cursor, error) {
	in, err := c.compile(n.Children[0])
	if err != nil {
		return nil, err
	}
	st := c.newStage("sort")
	st.grouped = true
	st.par = c.cfg.SortParallelism
	st.spec.Group = &GroupOp{Kind: "sort", Limit: n.Limit}
	for _, cur := range in {
		cur.st.spec.Emits = append(cur.st.spec.Emits, EmitSpec{
			Input: cur.input, Output: st.name, Kind: EmitShuffle,
			Pipe: cur.pipe, Keys: n.SortKeys, Desc: n.SortDesc, Tag: -1,
		})
		if err := c.edge(cur.st, st, dag.ScatterGather); err != nil {
			return nil, err
		}
	}
	return []cursor{{st: st}}, nil
}

func (c *Compiler) compileDistinct(n *Node) ([]cursor, error) {
	in, err := c.compile(n.Children[0])
	if err != nil {
		return nil, err
	}
	w := n.OutSchema.Width()
	keys := make([]*Expr, w)
	for i := range keys {
		keys[i] = Col(i)
	}
	st := c.newStage("distinct")
	st.grouped = true
	st.par = c.cfg.DefaultPartitions
	st.spec.Group = &GroupOp{Kind: "distinct"}
	for _, cur := range in {
		cur.st.spec.Emits = append(cur.st.spec.Emits, EmitSpec{
			Input: cur.input, Output: st.name, Kind: EmitShuffle,
			Pipe: cur.pipe, Keys: keys, Tag: -1,
		})
		if err := c.edge(cur.st, st, dag.ScatterGather); err != nil {
			return nil, err
		}
	}
	return []cursor{{st: st}}, nil
}

// compileStore attaches a DFS sink to the producing stage.
func (c *Compiler) compileStore(n *Node) error {
	in, err := c.compile(n.Children[0])
	if err != nil {
		return err
	}
	for _, cur := range in {
		c.sinkSeq++
		sinkName := fmt.Sprintf("sink%02d", c.sinkSeq)
		cur.st.sinks = append(cur.st.sinks, dag.DataSink{
			Name:      sinkName,
			Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: n.StorePath}),
			Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: n.StorePath}),
		})
		cur.st.spec.Emits = append(cur.st.spec.Emits, EmitSpec{
			Input: cur.input, Output: sinkName, Kind: EmitSink,
			Pipe: cur.pipe, Tag: -1,
		})
	}
	return nil
}

type pendingPrune struct {
	node  *Node
	stage *bStage
}

// finishPruning wires dynamic partition pruning: the prune-source stage
// emits its key values to the scan's initializer; the initializer payload
// carries the partitioned file list and the source vertex to await.
func (c *Compiler) finishPruning() error {
	for _, pp := range c.pending {
		spec := pp.node.Prune
		srcCursors, err := c.compile(spec.SourceNode)
		if err != nil {
			return err
		}
		if len(srcCursors) != 1 {
			return fmt.Errorf("relop: prune source must be a single stream")
		}
		sc := srcCursors[0]
		sc.st.spec.Emits = append(sc.st.spec.Emits, EmitSpec{
			Input: sc.input, Output: pp.stage.name, Kind: EmitInitializer,
			Pipe: sc.pipe, Keys: []*Expr{spec.KeyExpr}, Tag: -1,
			TargetSource: "src",
		})
		t := pp.node.Table
		for i := range pp.stage.sources {
			if pp.stage.sources[i].Name == "src" {
				pp.stage.sources[i].Initializer = plugin.Desc(PruneInitializerName, PruneInitializerConfig{
					Files:            t.Files,
					PartitionVals:    t.PartitionVals,
					SourceVertex:     sc.st.name,
					DesiredSplitSize: c.cfg.SplitSize,
				})
			}
		}
	}
	return nil
}

// CompileTez lowers the plan roots to a single Tez DAG.
func (c *Compiler) CompileTez(name string, roots []*Node) (*dag.DAG, error) {
	if err := Validate(roots); err != nil {
		return nil, err
	}
	for _, r := range roots {
		if err := c.compileStore(r); err != nil {
			return nil, err
		}
	}
	if err := c.finishPruning(); err != nil {
		return nil, err
	}
	// Stamp vectorization decisions before specs are snapshotted into
	// vertex payloads (plugin.Desc encodes at AddVertex time).
	c.vectorize()
	return c.emitDAG(name, c.stages)
}

// emitDAG materialises stages into a dag.DAG.
func (c *Compiler) emitDAG(name string, stages []*bStage) (*dag.DAG, error) {
	d := dag.New(name)
	verts := map[*bStage]*dag.Vertex{}
	for _, st := range stages {
		par := st.par
		if !st.grouped {
			par = -1
			if len(st.sources) == 0 && len(st.inEdges) > 0 {
				// Pure edge-fed map stage (rare): single wave.
				par = 1
			}
		}
		v := d.AddVertex(st.name, plugin.Desc(StageProcessorName, st.spec), par)
		v.Sources = st.sources
		v.Sinks = st.sinks
		v.Manager = st.vm
		verts[st] = v
	}
	for _, st := range stages {
		for _, e := range st.inEdges {
			var prop dag.EdgeProperty
			switch e.movement {
			case dag.ScatterGather:
				prop = dag.EdgeProperty{
					Movement: dag.ScatterGather,
					Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
					Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
				}
			case dag.Broadcast:
				prop = dag.EdgeProperty{
					Movement: dag.Broadcast,
					Output:   plugin.Desc(library.UnorderedOutputName, nil),
					Input:    plugin.Desc(library.UnorderedInputName, nil),
				}
			default:
				return nil, fmt.Errorf("relop: unsupported movement %v", e.movement)
			}
			d.Connect(verts[e.from], verts[e.to], prop)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
