package relop

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tez/internal/am"
	"tez/internal/platform"
	"tez/internal/row"
)

// harness bundles a platform with helper tables.
type harness struct {
	plat *platform.Platform
	t    *testing.T
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	return &harness{plat: platform.New(platform.Fast(4)), t: t}
}

func (h *harness) close() { h.plat.Stop() }

func (h *harness) table(name string, schema row.Schema, shards int, rows []row.Row) *Table {
	h.t.Helper()
	tb := &Table{Name: name, Schema: schema}
	if err := WriteTable(h.plat.FS, tb, shards, rows); err != nil {
		h.t.Fatal(err)
	}
	return tb
}

// runBoth executes the same plan on the Tez backend and the MR chain and
// checks both produce want (order-insensitive unless ordered).
func (h *harness) runBoth(name string, mkPlan func(out string) []*Node, want []row.Row, ordered bool) {
	h.t.Helper()
	// Tez.
	sess := am.NewSession(h.plat, am.Config{Name: name + "-tez"})
	defer sess.Close()
	outTez := "/out/" + name + "-tez"
	if _, err := RunTez(sess, Config{}, name+"-tez", mkPlan(outTez)); err != nil {
		h.t.Fatalf("tez: %v", err)
	}
	h.checkStored(outTez, want, ordered)
	// MR.
	outMR := "/out/" + name + "-mr"
	if _, err := RunMR(h.plat, am.Config{Name: name + "-mr"}, Config{}, name+"-mr", mkPlan(outMR)); err != nil {
		h.t.Fatalf("mr: %v", err)
	}
	h.checkStored(outMR, want, ordered)
}

func (h *harness) checkStored(path string, want []row.Row, ordered bool) {
	h.t.Helper()
	got, err := ReadStored(h.plat.FS, path)
	if err != nil {
		h.t.Fatal(err)
	}
	if !ordered {
		sortRows(got)
		want = append([]row.Row{}, want...)
		sortRows(want)
	}
	if len(got) != len(want) {
		h.t.Fatalf("%s: %d rows, want %d\ngot:  %v\nwant: %v", path, len(got), len(want), fmtRows(got), fmtRows(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			h.t.Fatalf("%s row %d: width %d want %d", path, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if row.Compare(got[i][j], want[i][j]) != 0 {
				h.t.Fatalf("%s row %d col %d: %v want %v\ngot:  %v\nwant: %v",
					path, i, j, got[i][j], want[i][j], fmtRows(got), fmtRows(want))
			}
		}
	}
}

func sortRows(rs []row.Row) {
	sort.Slice(rs, func(i, j int) bool {
		a := row.EncodeKey(nil, rs[i]...)
		b := row.EncodeKey(nil, rs[j]...)
		return string(a) < string(b)
	})
}

func fmtRows(rs []row.Row) string {
	var b strings.Builder
	for _, r := range rs {
		vals := make([]string, len(r))
		for i, v := range r {
			vals[i] = v.String()
		}
		fmt.Fprintf(&b, "[%s] ", strings.Join(vals, ","))
	}
	return b.String()
}

func intRows(vals ...[]int64) []row.Row {
	out := make([]row.Row, len(vals))
	for i, v := range vals {
		r := make(row.Row, len(v))
		for j, x := range v {
			r[j] = row.Int(x)
		}
		out[i] = r
	}
	return out
}

func TestScanFilterProjectStore(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	var rows []row.Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, row.Row{row.Int(i), row.Int(i * 10)})
	}
	tb := h.table("nums", row.NewSchema("a:int", "b:int"), 3, rows)
	var want []row.Row
	for i := int64(90); i < 100; i++ {
		want = append(want, row.Row{row.Int(i * 10)})
	}
	h.runBoth("sfp", func(out string) []*Node {
		s := Scan(tb)
		f := FilterNode(s, Cmp(">=", Col(0), LitInt(90)))
		p := ProjectNode(f, []*Expr{Col(1)}, []string{"b"}, []row.Kind{row.KindInt})
		return []*Node{StoreNode(p, out)}
	}, want, false)
}

func TestShuffleJoin(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	left := h.table("l", row.NewSchema("id:int", "lv:int"), 2, intRows(
		[]int64{1, 10}, []int64{2, 20}, []int64{2, 21}, []int64{3, 30}, []int64{5, 50}))
	right := h.table("r", row.NewSchema("id:int", "rv:int"), 2, intRows(
		[]int64{2, 200}, []int64{2, 201}, []int64{3, 300}, []int64{4, 400}))
	want := intRows(
		[]int64{2, 20, 2, 200}, []int64{2, 20, 2, 201},
		[]int64{2, 21, 2, 200}, []int64{2, 21, 2, 201},
		[]int64{3, 30, 3, 300})
	h.runBoth("join", func(out string) []*Node {
		j := JoinNode(Scan(left), Scan(right), []*Expr{Col(0)}, []*Expr{Col(0)}, false)
		return []*Node{StoreNode(j, out)}
	}, want, false)
}

func TestBroadcastJoinTezOnly(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	big := h.table("big", row.NewSchema("k:int", "v:int"), 3, intRows(
		[]int64{1, 1}, []int64{2, 2}, []int64{1, 3}, []int64{9, 9}))
	small := h.table("small", row.NewSchema("k:int", "name:int"), 1, intRows(
		[]int64{1, 100}, []int64{2, 200}))
	plan := func(out string) []*Node {
		j := JoinNode(Scan(big), Scan(small), []*Expr{Col(0)}, []*Expr{Col(0)}, true)
		return []*Node{StoreNode(j, out)}
	}
	sess := am.NewSession(h.plat, am.Config{Name: "bj"})
	defer sess.Close()
	res, err := RunTez(sess, Config{}, "bj", plan("/out/bj"))
	if err != nil {
		t.Fatal(err)
	}
	want := intRows(
		[]int64{1, 1, 1, 100}, []int64{1, 3, 1, 100}, []int64{2, 2, 2, 200})
	h.checkStored("/out/bj", want, false)
	if res.Counters.Get("HASHTABLE_BUILDS") == 0 {
		t.Fatal("no hash table build recorded")
	}
	// MR must reject broadcast joins.
	if _, err := RunMR(h.plat, am.Config{Name: "bjmr"}, Config{}, "bjmr", plan("/out/bjmr")); err == nil {
		t.Fatal("MR accepted a broadcast join")
	}
}

func TestAggregations(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	tb := h.table("sales", row.NewSchema("cat:string", "amt:int"), 2, []row.Row{
		{row.String("a"), row.Int(10)},
		{row.String("a"), row.Int(20)},
		{row.String("b"), row.Int(5)},
		{row.String("b"), row.Int(7)},
		{row.String("b"), row.Int(9)},
	})
	want := []row.Row{
		{row.String("a"), row.Float(30), row.Int(2), row.Float(15), row.Int(10), row.Int(20)},
		{row.String("b"), row.Float(21), row.Int(3), row.Float(7), row.Int(5), row.Int(9)},
	}
	h.runBoth("agg", func(out string) []*Node {
		a := AggNode(Scan(tb), []*Expr{Col(0)}, []string{"cat"}, []AggDef{
			{Func: "sum", Arg: Col(1), Name: "s"},
			{Func: "count", Arg: nil, Name: "c"},
			{Func: "avg", Arg: Col(1), Name: "av"},
			{Func: "min", Arg: Col(1), Name: "mn"},
			{Func: "max", Arg: Col(1), Name: "mx"},
		})
		return []*Node{StoreNode(a, out)}
	}, want, false)
}

func TestSortWithLimitAndDesc(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	tb := h.table("vals", row.NewSchema("v:int"), 3, intRows(
		[]int64{5}, []int64{3}, []int64{9}, []int64{1}, []int64{7}))
	want := intRows([]int64{9}, []int64{7}, []int64{5})
	h.runBoth("sortdesc", func(out string) []*Node {
		s := SortNode(Scan(tb), []*Expr{Col(0)}, []bool{true}, 3)
		return []*Node{StoreNode(s, out)}
	}, want, true)
}

func TestDistinctAndUnion(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	a := h.table("ua", row.NewSchema("v:int"), 2, intRows([]int64{1}, []int64{2}, []int64{2}))
	b := h.table("ub", row.NewSchema("v:int"), 2, intRows([]int64{2}, []int64{3}))
	want := intRows([]int64{1}, []int64{2}, []int64{3})
	h.runBoth("du", func(out string) []*Node {
		u := UnionNode(Scan(a), Scan(b))
		d := DistinctNode(u)
		return []*Node{StoreNode(d, out)}
	}, want, false)
}

func TestReduceToReduceChaining(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	// Orders per customer, then join the per-customer counts with names.
	orders := h.table("orders2", row.NewSchema("cust:int", "amt:int"), 3, intRows(
		[]int64{1, 10}, []int64{1, 20}, []int64{2, 5}, []int64{3, 1}, []int64{3, 2}, []int64{3, 3}))
	custs := h.table("custs2", row.NewSchema("id:int", "tier:int"), 2, intRows(
		[]int64{1, 100}, []int64{2, 200}, []int64{3, 300}))
	want := []row.Row{
		{row.Int(1), row.Int(2), row.Int(1), row.Int(100)},
		{row.Int(2), row.Int(1), row.Int(2), row.Int(200)},
		{row.Int(3), row.Int(3), row.Int(3), row.Int(300)},
	}
	h.runBoth("chain", func(out string) []*Node {
		agg := AggNode(Scan(orders), []*Expr{Col(0)}, []string{"cust"}, []AggDef{
			{Func: "count", Name: "n"},
		})
		// agg output: (cust, n float->count is Int)
		j := JoinNode(agg, Scan(custs), []*Expr{Col(0)}, []*Expr{Col(0)}, false)
		return []*Node{StoreNode(j, out)}
	}, want, false)
}

func TestMultipleStoresSharedSubplan(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	tb := h.table("ev", row.NewSchema("v:int"), 2, intRows(
		[]int64{1}, []int64{2}, []int64{3}, []int64{4}))
	// Split: evens to one store, odds to another (Pig SPLIT shape).
	sess := am.NewSession(h.plat, am.Config{Name: "split"})
	defer sess.Close()
	scan := Scan(tb)
	evens := FilterNode(scan, Or(Eq(Col(0), LitInt(2)), Eq(Col(0), LitInt(4))))
	odds := FilterNode(scan, Or(Eq(Col(0), LitInt(1)), Eq(Col(0), LitInt(3))))
	roots := []*Node{
		StoreNode(evens, "/out/split-even"),
		StoreNode(odds, "/out/split-odd"),
	}
	if _, err := RunTez(sess, Config{}, "split", roots); err != nil {
		t.Fatal(err)
	}
	h.checkStored("/out/split-even", intRows([]int64{2}, []int64{4}), false)
	h.checkStored("/out/split-odd", intRows([]int64{1}, []int64{3}), false)
}

func TestDynamicPartitionPruning(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	// Fact table partitioned by day; dim filter keeps only day 2.
	var fact []row.Row
	for day := int64(0); day < 5; day++ {
		for i := int64(0); i < 20; i++ {
			fact = append(fact, row.Row{row.Int(day), row.Int(day*1000 + i)})
		}
	}
	factT := &Table{Name: "fact", Schema: row.NewSchema("day:int", "v:int")}
	if err := WritePartitionedTable(h.plat.FS, factT, 0, fact); err != nil {
		t.Fatal(err)
	}
	if len(factT.Files) != 5 {
		t.Fatalf("partition files = %d", len(factT.Files))
	}
	dimT := h.table("days", row.NewSchema("day:int", "flag:int"), 1, intRows(
		[]int64{0, 0}, []int64{1, 0}, []int64{2, 1}, []int64{3, 0}, []int64{4, 0}))

	dimScan := Scan(dimT)
	dimFiltered := FilterNode(dimScan, Eq(Col(1), LitInt(1)))
	factScan := Scan(factT)
	factScan.Prune = &PruneSpec{SourceNode: dimFiltered, KeyExpr: Col(0)}
	j := JoinNode(factScan, dimFiltered, []*Expr{Col(0)}, []*Expr{Col(0)}, false)
	agg := AggNode(j, nil, nil, []AggDef{{Func: "count", Name: "n"}})
	roots := []*Node{StoreNode(agg, "/out/prune")}

	before := h.plat.FS.BytesRead()
	sess := am.NewSession(h.plat, am.Config{Name: "prune"})
	defer sess.Close()
	if _, err := RunTez(sess, Config{}, "prune", roots); err != nil {
		t.Fatal(err)
	}
	h.checkStored("/out/prune", []row.Row{{row.Int(20)}}, false)

	// Now the unpruned variant must read strictly more fact bytes.
	prunedBytes := h.plat.FS.BytesRead() - before
	factScan2 := Scan(factT)
	dim2 := FilterNode(Scan(dimT), Eq(Col(1), LitInt(1)))
	j2 := JoinNode(factScan2, dim2, []*Expr{Col(0)}, []*Expr{Col(0)}, false)
	agg2 := AggNode(j2, nil, nil, []AggDef{{Func: "count", Name: "n"}})
	before2 := h.plat.FS.BytesRead()
	if _, err := RunTez(sess, Config{}, "noprune", []*Node{StoreNode(agg2, "/out/noprune")}); err != nil {
		t.Fatal(err)
	}
	h.checkStored("/out/noprune", []row.Row{{row.Int(20)}}, false)
	unprunedBytes := h.plat.FS.BytesRead() - before2
	if prunedBytes >= unprunedBytes {
		t.Fatalf("pruning read %d bytes, unpruned %d", prunedBytes, unprunedBytes)
	}
}

func TestGlobalAggregationEmptyGroup(t *testing.T) {
	h := newHarness(t)
	defer h.close()
	tb := h.table("g", row.NewSchema("v:int"), 2, intRows([]int64{1}, []int64{2}, []int64{3}))
	want := []row.Row{{row.Float(6), row.Int(3)}}
	h.runBoth("gagg", func(out string) []*Node {
		a := AggNode(Scan(tb), nil, nil, []AggDef{
			{Func: "sum", Arg: Col(0), Name: "s"},
			{Func: "count", Name: "c"},
		})
		return []*Node{StoreNode(a, out)}
	}, want, false)
}
