package relop

import (
	"tez/internal/dfs"
	"tez/internal/library"
	"tez/internal/plugin"
	"tez/internal/row"
	"tez/internal/runtime"
)

// PruneInitializerName is the dynamic-partition-pruning initializer of
// §3.5: before the scan vertex's tasks run, it waits for
// InputInitializerEvents carrying the relevant join-key values from the
// tasks of another vertex, keeps only the partitioned files whose
// partition value occurs in that set, and then performs normal split
// calculation on the survivors.
const PruneInitializerName = "relop.prune_initializer"

func init() {
	runtime.RegisterInitializer(PruneInitializerName, func() runtime.Initializer {
		return pruneInitializer{}
	})
}

// PruneInitializerConfig is the initializer's opaque payload.
type PruneInitializerConfig struct {
	// Files and PartitionVals describe the partitioned table: file i holds
	// the rows whose partition column equals PartitionVals[i].
	Files         []string
	PartitionVals []row.Value
	// SourceVertex produces the key values; one event per task is awaited.
	SourceVertex     string
	DesiredSplitSize int64
}

type pruneInitializer struct{}

// Run waits for the pruning events, filters the file list, and computes
// splits.
func (pruneInitializer) Run(ctx *runtime.InitializerContext) (*runtime.InitializerResult, error) {
	var cfg PruneInitializerConfig
	if err := plugin.Decode(ctx.Payload, &cfg); err != nil {
		return nil, err
	}
	expect := 1
	if ctx.VertexParallelism != nil {
		if p := ctx.VertexParallelism(cfg.SourceVertex); p > 0 {
			expect = p
		}
	}
	wanted := map[string]bool{}
	for seen := 0; seen < expect; seen++ {
		ev, ok := ctx.Events.Get()
		if !ok {
			break // DAG torn down
		}
		var pv PruneValues
		if err := plugin.Decode(ev.Payload, &pv); err != nil {
			return nil, err
		}
		for _, v := range pv.Values {
			wanted[string(row.EncodeKey(nil, v))] = true
		}
	}

	var keep []string
	for i, f := range cfg.Files {
		if i < len(cfg.PartitionVals) {
			key := string(row.EncodeKey(nil, cfg.PartitionVals[i]))
			if !wanted[key] {
				continue
			}
		}
		keep = append(keep, f)
	}

	var all []dfs.Split
	for _, p := range keep {
		splits, err := ctx.FS.Splits(p, cfg.DesiredSplitSize)
		if err != nil {
			return nil, err
		}
		all = append(all, splits...)
	}
	par := len(all)
	if par == 0 {
		par = 1 // a vertex needs at least one (empty) task
	}
	res := &runtime.InitializerResult{Parallelism: par}
	for t := 0; t < par; t++ {
		var mine []dfs.Split
		if t < len(all) {
			mine = []dfs.Split{all[t]}
		}
		res.PerTaskPayload = append(res.PerTaskPayload, plugin.MustEncode(library.SplitAssignment{Splits: mine}))
		var hints []string
		if len(mine) > 0 {
			hints = mine[0].Hosts
		}
		res.LocationHints = append(res.LocationHints, hints)
	}
	return res, nil
}
