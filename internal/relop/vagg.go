package relop

import (
	"bytes"
	"fmt"

	"tez/internal/col"
	"tez/internal/row"
)

// aggNeed records which aggState fields a given aggregate function reads,
// so the chunk kernels skip updates the finalizer will never look at
// (the row path updates everything unconditionally; skipping is pure
// optimization and cannot change output).
type aggNeed struct {
	sum bool
	mm  bool
}

func aggNeeds(fn string) aggNeed {
	switch fn {
	case "sum", "avg":
		return aggNeed{sum: true}
	case "min", "max":
		return aggNeed{mm: true}
	}
	return aggNeed{} // count needs only the bulk row count
}

// aggGroupVec computes one group's aggregates batch-at-a-time: the
// encoded values are parsed straight into a scratch batch (no row.Row
// boxing), and typed column kernels update the same aggState the row
// path uses, with identical semantics — count includes nulls, the float
// sum accumulates in row order, min/max keep the first value on ties.
func aggGroupVec(g *GroupOp, values [][]byte, batchSize int, scratch *col.Batch, emit func(row.Row) error) error {
	states := make([]aggState, len(g.Aggs))
	var groupVals row.Row
	if len(values) > 0 {
		first, err := row.Decode(values[0])
		if err != nil {
			return err
		}
		groupVals = first[:g.GroupWidth].Clone()
	}
	flush := func() error {
		n := scratch.Len()
		if n == 0 {
			return nil
		}
		w := scratch.Width()
		for i := range g.Aggs {
			a := &g.Aggs[i]
			if a.Col < 0 || a.Col >= w {
				// Out-of-range columns are all-null on the row path:
				// they still count every row.
				states[i].count += int64(n)
				continue
			}
			observeChunk(&states[i], scratch.Col(a.Col), n, aggNeeds(a.Func))
		}
		scratch.Reset()
		return nil
	}
	for _, v := range values {
		ok, err := scratch.AppendEncoded(v)
		if err != nil {
			return err
		}
		if !ok {
			// Width change mid-group: aggregate the chunk so far, then
			// restart with the new shape.
			if err := flush(); err != nil {
				return err
			}
			if ok, err = scratch.AppendEncoded(v); err != nil {
				return err
			} else if !ok {
				return fmt.Errorf("relop: agg batch rejected row after reset")
			}
		}
		if scratch.Len() >= batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	out, err := finalizeAgg(g, groupVals, states)
	if err != nil {
		return err
	}
	return emit(out)
}

// observeChunk folds n rows of one column into st. Chunk-local min/max
// use strict comparisons (first occurrence wins within the chunk) and
// merge into the running extremes with strict row.Compare (the earlier
// chunk wins ties) — exactly the order the per-row path observes.
func observeChunk(st *aggState, v *col.Vector, n int, need aggNeed) {
	st.count += int64(n)
	if !need.sum && !need.mm {
		return
	}
	switch {
	case v.Kind() == col.Unset:
		return // every row null: count only
	case v.IsConst() || v.Kind() == col.Any || v.Kind() == col.Bool:
		for i := 0; i < n; i++ {
			val := v.Value(i)
			if val.IsNull() {
				continue
			}
			if need.sum {
				st.sum += val.AsFloat()
			}
			if need.mm {
				st.mergeExtremes(val, val)
			}
		}
	case v.Kind() == col.Int64:
		var mn, mx int64
		found := false
		if !v.HasNulls() {
			if need.sum {
				for _, x := range v.Ints[:n] {
					st.sum += float64(x)
				}
			}
			if need.mm {
				mn, mx = v.Ints[0], v.Ints[0]
				for _, x := range v.Ints[1:n] {
					if x < mn {
						mn = x
					}
					if x > mx {
						mx = x
					}
				}
				found = true
			}
		} else {
			for i := 0; i < n; i++ {
				if v.IsNull(i) {
					continue
				}
				x := v.Ints[i]
				if need.sum {
					st.sum += float64(x)
				}
				if need.mm {
					if !found || x < mn {
						mn = x
					}
					if !found || x > mx {
						mx = x
					}
					found = true
				}
			}
		}
		if found && need.mm {
			st.mergeExtremes(row.Int(mn), row.Int(mx))
		}
	case v.Kind() == col.Float64:
		var mn, mx float64
		found := false
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				continue
			}
			x := v.Floats[i]
			if need.sum {
				st.sum += x
			}
			if need.mm {
				// NaN compares unordered both ways, so the first value
				// sticks — matching row.Compare returning 0.
				if !found || x < mn {
					mn = x
				}
				if !found || x > mx {
					mx = x
				}
				found = true
			}
		}
		if found && need.mm {
			st.mergeExtremes(row.Float(mn), row.Float(mx))
		}
	case v.Kind() == col.Bytes:
		// Strings coerce to float 0 under AsFloat; adding +0 never
		// changes a float64 sum (the accumulator cannot be -0: it starts
		// at +0 and x + -0 == x for any reachable x), so only min/max
		// need the scan.
		if !need.mm {
			return
		}
		mnI, mxI := -1, -1
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				continue
			}
			if mnI < 0 {
				mnI, mxI = i, i
				continue
			}
			s := v.BytesAt(i)
			if bytes.Compare(s, v.BytesAt(mnI)) < 0 {
				mnI = i
			}
			if bytes.Compare(s, v.BytesAt(mxI)) > 0 {
				mxI = i
			}
		}
		if mnI >= 0 {
			st.mergeExtremes(row.String(string(v.BytesAt(mnI))), row.String(string(v.BytesAt(mxI))))
		}
	}
}

// mergeExtremes folds chunk-local extremes into the running state under
// the row path's tie rule: strict Compare, earlier value wins ties.
func (st *aggState) mergeExtremes(mn, mx row.Value) {
	if !st.init || row.Compare(mn, st.min) < 0 {
		st.min = mn
	}
	if !st.init || row.Compare(mx, st.max) > 0 {
		st.max = mx
	}
	st.init = true
}
