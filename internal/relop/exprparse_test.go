package relop

import (
	"testing"

	"tez/internal/row"
)

func TestParseExprEvaluation(t *testing.T) {
	schema := row.NewSchema("a:int", "b:float", "name")
	r := row.Row{row.Int(10), row.Float(2.5), row.String("x")}
	cases := []struct {
		src  string
		want row.Value
	}{
		{"a", row.Int(10)},
		{"a + 5", row.Int(15)},
		{"a * b", row.Float(25)},
		{"a - 2 * 3", row.Int(4)},
		{"(a - 2) * 3", row.Int(24)},
		{"a / 4", row.Float(2.5)},
		{"-a", row.Int(-10)},
		{"a >= 10", row.Int(1)},
		{"a != 10", row.Int(0)},
		{"a <> 10", row.Int(0)},
		{"a == 10", row.Int(1)},
		{"name = 'x'", row.Int(1)},
		{"name = 'y'", row.Int(0)},
		{"a > 5 AND b < 3", row.Int(1)},
		{"a > 50 OR name = 'x'", row.Int(1)},
		{"NOT a > 50", row.Int(1)},
		{"3.5 + 1", row.Float(4.5)},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src, schema)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		got := e.Eval(r)
		if row.Compare(got, c.want) != 0 {
			t.Fatalf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	schema := row.NewSchema("a:int")
	bad := []string{
		"", "a +", "unknowncol", "a > ", "(a", "a ) b", "'unterminated",
		"a # 2", "a 5",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src, schema); err == nil {
			t.Fatalf("parsed invalid expression %q", src)
		}
	}
}

func TestParseExprQualifiedNames(t *testing.T) {
	schema := row.NewSchema("t.a:int", "u.a:int")
	e, err := ParseExpr("u.a + t.a", schema)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Eval(row.Row{row.Int(1), row.Int(2)})
	if got.AsInt() != 3 {
		t.Fatalf("got %v", got)
	}
}
