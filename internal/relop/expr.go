// Package relop is the shared relational execution layer used by the
// Hive-style SQL engine and the Pig-style ETL engine in this repository.
// It provides a logical plan, a gob-encodable stage language, a stage
// processor registered with the Tez runtime, and two compilers: one that
// emits a single Tez DAG (stage chaining, broadcast edges, auto reduce
// parallelism), and one that emits a chain of MapReduce-shaped jobs with
// DFS materialisation between them — the baseline the paper's Figures 8–10
// compare against.
package relop

import (
	"fmt"

	"tez/internal/row"
)

// Expr is a gob-encodable expression tree evaluated against a row.
// Comparison and logical operators yield Int(1)/Int(0); null propagates
// through arithmetic.
type Expr struct {
	// Kind: "col", "lit", "cmp", "and", "or", "not", "arith".
	Kind string
	// Col is the input column index for Kind "col".
	Col int
	// Lit is the literal for Kind "lit".
	Lit row.Value
	// Op: cmp: = != < <= > >= ; arith: + - * /
	Op   string
	Args []*Expr
}

// Expression constructors.
func Col(i int) *Expr          { return &Expr{Kind: "col", Col: i} }
func Lit(v row.Value) *Expr    { return &Expr{Kind: "lit", Lit: v} }
func LitInt(v int64) *Expr     { return Lit(row.Int(v)) }
func LitFloat(v float64) *Expr { return Lit(row.Float(v)) }
func LitString(v string) *Expr { return Lit(row.String(v)) }
func Cmp(op string, a, b *Expr) *Expr {
	return &Expr{Kind: "cmp", Op: op, Args: []*Expr{a, b}}
}
func Eq(a, b *Expr) *Expr { return Cmp("=", a, b) }
func And(args ...*Expr) *Expr {
	if len(args) == 1 {
		return args[0]
	}
	return &Expr{Kind: "and", Args: args}
}
func Or(args ...*Expr) *Expr { return &Expr{Kind: "or", Args: args} }
func Not(a *Expr) *Expr      { return &Expr{Kind: "not", Args: []*Expr{a}} }
func Arith(op string, a, b *Expr) *Expr {
	return &Expr{Kind: "arith", Op: op, Args: []*Expr{a, b}}
}

// Eval evaluates the expression against r.
func (e *Expr) Eval(r row.Row) row.Value {
	switch e.Kind {
	case "col":
		if e.Col < 0 || e.Col >= len(r) {
			return row.Null()
		}
		return r[e.Col]
	case "lit":
		return e.Lit
	case "cmp":
		a, b := e.Args[0].Eval(r), e.Args[1].Eval(r)
		if a.IsNull() || b.IsNull() {
			return row.Null()
		}
		c := row.Compare(a, b)
		ok := false
		switch e.Op {
		case "=":
			ok = c == 0
		case "!=":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return boolVal(ok)
	case "and":
		for _, a := range e.Args {
			if !Truthy(a.Eval(r)) {
				return boolVal(false)
			}
		}
		return boolVal(true)
	case "or":
		for _, a := range e.Args {
			if Truthy(a.Eval(r)) {
				return boolVal(true)
			}
		}
		return boolVal(false)
	case "not":
		return boolVal(!Truthy(e.Args[0].Eval(r)))
	case "arith":
		return arithValues(e.Op, e.Args[0].Eval(r), e.Args[1].Eval(r))
	}
	return row.Null()
}

// arithValues is the arithmetic kernel shared by the row path and the
// vectorized boxed fallback (vexpr.go), so the two cannot drift: int⊕int
// stays int except division, everything else coerces through AsFloat
// (strings coerce to 0), division by zero yields null.
func arithValues(op string, a, b row.Value) row.Value {
	if a.IsNull() || b.IsNull() {
		return row.Null()
	}
	if a.Kind == row.KindInt && b.Kind == row.KindInt && op != "/" {
		switch op {
		case "+":
			return row.Int(a.Int + b.Int)
		case "-":
			return row.Int(a.Int - b.Int)
		case "*":
			return row.Int(a.Int * b.Int)
		}
	}
	fa, fb := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return row.Float(fa + fb)
	case "-":
		return row.Float(fa - fb)
	case "*":
		return row.Float(fa * fb)
	case "/":
		if fb == 0 {
			return row.Null()
		}
		return row.Float(fa / fb)
	}
	return row.Null()
}

// Truthy interprets a value as a boolean: non-null and non-zero.
func Truthy(v row.Value) bool {
	switch v.Kind {
	case row.KindNull:
		return false
	case row.KindInt:
		return v.Int != 0
	case row.KindFloat:
		return v.Float != 0
	case row.KindString:
		return v.Str != ""
	}
	return false
}

func boolVal(b bool) row.Value {
	if b {
		return row.Int(1)
	}
	return row.Int(0)
}

// EvalAll evaluates a projection list.
func EvalAll(exprs []*Expr, r row.Row) row.Row {
	out := make(row.Row, len(exprs))
	for i, e := range exprs {
		out[i] = e.Eval(r)
	}
	return out
}

// EvalAllInto evaluates a projection list into a reused buffer (hot
// paths that consume the values before the next call).
func EvalAllInto(dst row.Row, exprs []*Expr, r row.Row) row.Row {
	dst = dst[:0]
	for _, e := range exprs {
		dst = append(dst, e.Eval(r))
	}
	return dst
}

func (e *Expr) String() string {
	switch e.Kind {
	case "col":
		return fmt.Sprintf("$%d", e.Col)
	case "lit":
		return e.Lit.String()
	case "cmp", "arith":
		return fmt.Sprintf("(%s %s %s)", e.Args[0], e.Op, e.Args[1])
	case "and", "or":
		s := "(" + e.Args[0].String()
		for _, a := range e.Args[1:] {
			s += " " + e.Kind + " " + a.String()
		}
		return s + ")"
	case "not":
		return "not " + e.Args[0].String()
	}
	return "?"
}
