package relop

import (
	"bytes"

	"tez/internal/runtime"
)

// mergeGroupReaders merges several key-ordered grouped readers into one:
// groups with equal keys across readers are concatenated (values in reader
// order). A single reader is passed through untouched.
func mergeGroupReaders(readers []runtime.GroupedKVReader) runtime.GroupedKVReader {
	if len(readers) == 1 {
		return readers[0]
	}
	m := &mergedGroups{}
	for _, r := range readers {
		c := &groupCursor{r: r}
		c.advance()
		m.cursors = append(m.cursors, c)
	}
	return m
}

type groupCursor struct {
	r    runtime.GroupedKVReader
	live bool
	err  error
}

func (c *groupCursor) advance() {
	c.live = c.r.Next()
	if !c.live {
		c.err = c.r.Err()
	}
}

type mergedGroups struct {
	cursors []*groupCursor
	key     []byte
	values  [][]byte
	err     error
}

// Next picks the smallest current key across cursors and concatenates the
// values of every cursor positioned at it.
func (m *mergedGroups) Next() bool {
	if m.err != nil {
		return false
	}
	var minKey []byte
	found := false
	for _, c := range m.cursors {
		if c.err != nil {
			m.err = c.err
			return false
		}
		if !c.live {
			continue
		}
		if !found || bytes.Compare(c.r.Key(), minKey) < 0 {
			minKey = c.r.Key()
			found = true
		}
	}
	if !found {
		return false
	}
	// Compare against the copied key, not minKey: minKey aliases a
	// cursor's reusable key buffer, which c.advance() overwrites.
	m.key = append(m.key[:0], minKey...)
	m.values = m.values[:0]
	for _, c := range m.cursors {
		if c.live && bytes.Equal(c.r.Key(), m.key) {
			m.values = append(m.values, c.r.Values()...)
			c.advance()
			if c.err != nil {
				m.err = c.err
				return false
			}
		}
	}
	return true
}

func (m *mergedGroups) Key() []byte      { return m.key }
func (m *mergedGroups) Values() [][]byte { return m.values }
func (m *mergedGroups) Err() error       { return m.err }
