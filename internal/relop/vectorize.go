package relop

import (
	"fmt"
	"sort"
	"strings"

	"tez/internal/dag"
	"tez/internal/plugin"
)

// The compiler's vectorization pass (DESIGN.md §13). Runs after the plan
// is fully lowered to stages and before stage specs are snapshotted into
// vertex payloads: it marks each emit pipeline and each aggregation for
// batch-at-a-time execution, records a human-readable fallback reason
// for everything that stays row-at-a-time (surfaced by tez-hive/tez-pig
// explain), and pairs the Batched wire contract on broadcast edges that
// feed hash-join build inputs.

// VectorizableEmit reports whether an emit's pipeline and terminal are
// structurally supported by the batch engine, and the fallback reason
// when not. It does not consider configuration or runtime state.
func VectorizableEmit(es *EmitSpec) (bool, string) {
	switch es.Kind {
	case EmitShuffle, EmitBroadcast, EmitSink:
	case EmitInitializer, EmitVM:
		return false, "control emit (" + es.Kind + ")"
	default:
		return false, fmt.Sprintf("unknown emit kind %q", es.Kind)
	}
	if es.SampleRate > 0 {
		return false, "sampled emit"
	}
	for i := range es.Pipe {
		op := &es.Pipe[i]
		switch op.Kind {
		case "filter":
			if r := exprSupported(op.Filter); r != "" {
				return false, r
			}
		case "project":
			for _, e := range op.Project {
				if r := exprSupported(e); r != "" {
					return false, r
				}
			}
		case "hashjoin":
			for _, e := range op.HJ.ProbeKeys {
				if r := exprSupported(e); r != "" {
					return false, r
				}
			}
		default:
			return false, fmt.Sprintf("unknown pipe op %q", op.Kind)
		}
	}
	for _, e := range es.Keys {
		if r := exprSupported(e); r != "" {
			return false, r
		}
	}
	return true, ""
}

// exprSupported walks an expression tree; "" means every node has a
// batch kernel (vexpr.go). Malformed arities fall back to the row path
// rather than risking a kernel panic.
func exprSupported(e *Expr) string {
	if e == nil {
		return "nil expression"
	}
	switch e.Kind {
	case "col", "lit":
		return ""
	case "cmp", "arith":
		if len(e.Args) != 2 {
			return fmt.Sprintf("%s with %d args", e.Kind, len(e.Args))
		}
	case "not":
		if len(e.Args) != 1 {
			return fmt.Sprintf("not with %d args", len(e.Args))
		}
	case "and", "or":
	default:
		return fmt.Sprintf("unsupported expression %q", e.Kind)
	}
	for _, a := range e.Args {
		if r := exprSupported(a); r != "" {
			return r
		}
	}
	return ""
}

// applyVectorize stamps one emit's flags under the config gate.
func applyVectorize(es *EmitSpec, disabled bool) {
	if disabled {
		es.Vectorize, es.VecReason = false, "disabled by config"
		return
	}
	es.Vectorize, es.VecReason = VectorizableEmit(es)
}

// vectorize stamps every stage's emits and agg groups, and upgrades
// broadcast edges feeding hash-join builds to the batched wire format
// (both ends flagged together: the frame layout is a compile-time
// contract, independent of the runtime batch-size knob).
func (c *Compiler) vectorize() {
	byName := map[string]*bStage{}
	for _, st := range c.stages {
		byName[st.name] = st
	}
	for _, st := range c.stages {
		for i := range st.spec.Emits {
			es := &st.spec.Emits[i]
			applyVectorize(es, c.cfg.DisableVectorized)
			if c.cfg.DisableVectorized || es.Kind != EmitBroadcast {
				continue
			}
			cons := byName[es.Output]
			if cons == nil {
				continue
			}
			for j := range cons.spec.Inputs {
				in := &cons.spec.Inputs[j]
				if in.Name == st.name && in.Mode == InBuild {
					es.Batched = true
					in.Batched = true
				}
			}
		}
		if g := st.spec.Group; g != nil && g.Kind == "agg" {
			g.Vectorize = !c.cfg.DisableVectorized
		}
	}
}

// ExplainStages renders the per-vertex vectorization decisions of a
// compiled DAG: which emit pipelines run batch-at-a-time, why any fell
// back to rows, which aggregations use the typed kernels, and which
// edges carry batched frames.
func ExplainStages(d *dag.DAG) string {
	var sb strings.Builder
	verts := append([]*dag.Vertex{}, d.Vertices...)
	sort.Slice(verts, func(i, j int) bool { return verts[i].Name < verts[j].Name })
	for _, v := range verts {
		if v.Processor.Name != StageProcessorName {
			continue
		}
		var spec StageSpec
		if err := plugin.Decode(v.Processor.Payload, &spec); err != nil {
			fmt.Fprintf(&sb, "%s: <undecodable stage spec: %v>\n", v.Name, err)
			continue
		}
		fmt.Fprintf(&sb, "%s:\n", v.Name)
		if g := spec.Group; g != nil {
			mark := "rows"
			if g.Vectorize {
				mark = "vectorized"
			} else if g.Kind == "agg" {
				mark = "rows (disabled by config)"
			}
			fmt.Fprintf(&sb, "  group %s: %s\n", g.Kind, mark)
		}
		for _, es := range spec.Emits {
			target := es.Output
			if es.Batched {
				target += " [batched wire]"
			}
			if es.Vectorize {
				fmt.Fprintf(&sb, "  emit %s -> %s: vectorized (%d ops)\n", es.Kind, target, len(es.Pipe))
			} else {
				reason := es.VecReason
				if reason == "" {
					reason = "row path"
				}
				fmt.Fprintf(&sb, "  emit %s -> %s: rows (%s)\n", es.Kind, target, reason)
			}
		}
	}
	return sb.String()
}
