package metrics

import (
	"sort"
	"sync"
	"time"
)

// Quantiles is a concurrency-safe latency digest: observations are
// retained exactly (the service workloads observe thousands of
// submissions, not millions) and quantiles are computed on demand from a
// sorted copy. The zero value is ready to use.
type Quantiles struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one latency sample.
func (q *Quantiles) Observe(d time.Duration) {
	q.mu.Lock()
	q.samples = append(q.samples, d)
	q.mu.Unlock()
}

// Count returns the number of samples observed.
func (q *Quantiles) Count() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.samples)
}

// Quantile returns the p-quantile (p in [0,1]) by nearest-rank on a
// sorted copy; 0 with no samples.
func (q *Quantiles) Quantile(p float64) time.Duration {
	s := q.sorted()
	return quantileOf(s, p)
}

// QuantileSummary is a point-in-time digest of a Quantiles.
type QuantileSummary struct {
	Count              int
	P50, P95, P99, Max time.Duration
	Mean               time.Duration
}

// Summary digests the observations into the standard percentiles.
func (q *Quantiles) Summary() QuantileSummary {
	s := q.sorted()
	out := QuantileSummary{Count: len(s)}
	if len(s) == 0 {
		return out
	}
	out.P50 = quantileOf(s, 0.50)
	out.P95 = quantileOf(s, 0.95)
	out.P99 = quantileOf(s, 0.99)
	out.Max = s[len(s)-1]
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	out.Mean = sum / time.Duration(len(s))
	return out
}

func (q *Quantiles) sorted() []time.Duration {
	q.mu.Lock()
	s := append([]time.Duration(nil), q.samples...)
	q.mu.Unlock()
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func quantileOf(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
