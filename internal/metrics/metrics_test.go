package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("x", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("x"); got != 1000 {
		t.Fatalf("x = %d", got)
	}
	c.Add("a", 2)
	if s := c.String(); s != "a=2 x=1000" {
		t.Fatalf("String = %q", s)
	}
	snap := c.Snapshot()
	snap["x"] = 0
	if c.Get("x") != 1000 {
		t.Fatal("snapshot aliases internal map")
	}
}

func TestTimelineSampler(t *testing.T) {
	var mu sync.Mutex
	v := 0
	s := StartSampler(time.Millisecond, func() map[string]int {
		mu.Lock()
		defer mu.Unlock()
		v++
		return map[string]int{"app": v}
	})
	time.Sleep(20 * time.Millisecond)
	samples := s.Stop()
	if len(samples) < 5 {
		t.Fatalf("only %d samples", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At < samples[i-1].At {
			t.Fatal("samples not time-ordered")
		}
	}
	if names := SeriesNames(samples); len(names) != 1 || names[0] != "app" {
		t.Fatalf("names = %v", names)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	tr.Record(AttemptRecord{Vertex: "v1", Outcome: "SUCCEEDED"})
	tr.Record(AttemptRecord{Vertex: "v1", Outcome: "FAILED"})
	tr.Record(AttemptRecord{Vertex: "v2", Outcome: "SUCCEEDED"})
	byOutcome := tr.CountBy(func(r AttemptRecord) string { return r.Outcome })
	if byOutcome["SUCCEEDED"] != 2 || byOutcome["FAILED"] != 1 {
		t.Fatalf("byOutcome = %v", byOutcome)
	}
	recs := tr.Records()
	recs[0].Vertex = "zzz"
	if tr.Records()[0].Vertex != "v1" {
		t.Fatal("Records aliases internal slice")
	}
}
