// Package metrics collects the counters, task-attempt records and cluster
// utilisation timelines that the benchmark harness uses to regenerate the
// paper's figures (notably the Figure 12 per-application container
// timelines) and that the AM publishes for monitoring, mirroring the
// "publishing metrics and statistics" shared concern of §2.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counters is a concurrency-safe named counter set.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments name by delta and returns the new value (so callers can
// maintain gauge-style counters and observe the level they just set).
func (c *Counters) Add(name string, delta int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[name] += delta
	return c.m[name]
}

// SetMax raises name to v if v is larger — a high-water mark, used for
// gauge peaks such as the number of concurrently in-flight shuffle
// fetches.
func (c *Counters) SetMax(name string, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v > c.m[name] {
		c.m[name] = v
	}
}

// Get returns the value of name (0 if unset).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders counters sorted by name.
func (c *Counters) String() string {
	snap := c.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d ", k, snap[k])
	}
	return strings.TrimSpace(b.String())
}

// Sample is one point of a utilisation timeline: the per-series values at
// an instant (e.g. containers held per application).
type Sample struct {
	At     time.Duration // since sampler start
	Values map[string]int
}

// TimelineSampler polls a snapshot function periodically, building the
// per-application resource timelines of Figure 12.
type TimelineSampler struct {
	mu      sync.Mutex
	samples []Sample
	stop    chan struct{}
	done    chan struct{}
}

// StartSampler polls snap every interval until Stop.
func StartSampler(interval time.Duration, snap func() map[string]int) *TimelineSampler {
	s := &TimelineSampler{stop: make(chan struct{}), done: make(chan struct{})}
	start := time.Now()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				v := snap()
				s.mu.Lock()
				s.samples = append(s.samples, Sample{At: time.Since(start), Values: v})
				s.mu.Unlock()
			}
		}
	}()
	return s
}

// Stop halts sampling and returns the collected samples.
func (s *TimelineSampler) Stop() []Sample {
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// SeriesNames returns the sorted union of series names across samples.
func SeriesNames(samples []Sample) []string {
	set := map[string]bool{}
	for _, s := range samples {
		for k := range s.Values {
			set[k] = true
		}
	}
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// AllocWait summarises scheduler time-to-allocate for one locality level:
// how many attempts were placed at that level and their mean wait from
// request submission to container assignment.
type AllocWait struct {
	Locality string
	Count    int64
	Mean     time.Duration
}

// AllocWaitReport extracts per-locality allocation-wait statistics from a
// counter set (the AM maintains SCHED_ALLOC_WAIT_NS_<LEVEL> /
// SCHED_ALLOC_WAIT_COUNT_<LEVEL> pairs), sorted by locality level name.
func AllocWaitReport(c *Counters) []AllocWait {
	snap := c.Snapshot()
	var out []AllocWait
	for k, count := range snap {
		loc, ok := strings.CutPrefix(k, "SCHED_ALLOC_WAIT_COUNT_")
		if !ok || count <= 0 {
			continue
		}
		ns := snap["SCHED_ALLOC_WAIT_NS_"+loc]
		out = append(out, AllocWait{
			Locality: loc,
			Count:    count,
			Mean:     time.Duration(ns / count),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Locality < out[j].Locality })
	return out
}

// ShuffleDataPlane summarises the shuffle data-plane counters of one run:
// map-side sort/spill/merge work, combiner effectiveness, and wire-vs-raw
// transfer volume (they differ only when a block codec is on).
type ShuffleDataPlane struct {
	SortTime   time.Duration
	MergeTime  time.Duration
	Spills     int64
	CombineIn  int64
	CombineOut int64
	// BytesWire/BytesRaw count what consumers actually folded into their
	// merges — charged once per stored increment, so retracted, stale and
	// duplicate transfers never inflate them, and a pipelined source's
	// several increments all accumulate.
	BytesWire int64
	BytesRaw  int64
	// Fetches counts transfer attempts; Increments counts the stored
	// results (Fetches > Increments under retries/retractions; with
	// pipelined shuffle, Increments > source count).
	Fetches        int64
	Increments     int64
	FetchTime      time.Duration
	CompressionPct float64 // wire bytes as % of raw (100 = incompressible/off)
}

// ShuffleReport extracts the data-plane summary from a counter set.
func ShuffleReport(c *Counters) ShuffleDataPlane {
	snap := c.Snapshot()
	r := ShuffleDataPlane{
		SortTime:   time.Duration(snap["SHUFFLE_SORT_TIME_NS"]),
		MergeTime:  time.Duration(snap["SHUFFLE_MERGE_TIME_NS"]),
		Spills:     snap["SHUFFLE_SPILLS"],
		CombineIn:  snap["COMBINE_INPUT_RECORDS"],
		CombineOut: snap["COMBINE_OUTPUT_RECORDS"],
		BytesWire:  snap["SHUFFLE_BYTES_WIRE"],
		BytesRaw:   snap["SHUFFLE_BYTES_RAW"],
		Fetches:    snap["SHUFFLE_FETCHES"],
		Increments: snap["SHUFFLE_INCREMENTS"],
		FetchTime:  time.Duration(snap["SHUFFLE_FETCH_TIME_NS"]),
	}
	if r.BytesRaw > 0 {
		r.CompressionPct = 100 * float64(r.BytesWire) / float64(r.BytesRaw)
	}
	return r
}

// String renders the summary as one line per concern.
func (r ShuffleDataPlane) String() string {
	return fmt.Sprintf(
		"shuffle: sort=%v merge=%v spills=%d combine=%d->%d wire=%dB raw=%dB (%.1f%%) fetches=%d stored=%d fetch=%v",
		r.SortTime, r.MergeTime, r.Spills, r.CombineIn, r.CombineOut,
		r.BytesWire, r.BytesRaw, r.CompressionPct, r.Fetches, r.Increments, r.FetchTime)
}

// NodeHealth is one node's failure-tracking snapshot from the AM's
// blacklisting subsystem: how many genuine attempt failures and fetch-
// failure retractions were attributed to it, and its blacklist history.
type NodeHealth struct {
	Node            string
	TaskFailures    int
	FetchFailures   int
	Blacklisted     bool
	BlacklistEnters int
	BlacklistExits  int
}

// NodeHealthReport is a per-node health snapshot, sorted by node id.
type NodeHealthReport []NodeHealth

// BlacklistedCount returns the number of currently-blacklisted nodes.
func (r NodeHealthReport) BlacklistedCount() int {
	n := 0
	for _, h := range r {
		if h.Blacklisted {
			n++
		}
	}
	return n
}

// String renders one line per node with any recorded history.
func (r NodeHealthReport) String() string {
	var b strings.Builder
	for _, h := range r {
		mark := ""
		if h.Blacklisted {
			mark = " BLACKLISTED"
		}
		fmt.Fprintf(&b, "%s: taskFailures=%d fetchFailures=%d enters=%d exits=%d%s\n",
			h.Node, h.TaskFailures, h.FetchFailures, h.BlacklistEnters, h.BlacklistExits, mark)
	}
	return b.String()
}

// AttemptRecord is one task attempt's lifecycle, used for execution traces
// and speculation/straggler analysis.
type AttemptRecord struct {
	Vertex      string
	Task        int
	Attempt     int
	Node        string
	Locality    string
	Speculative bool
	Start       time.Time
	End         time.Time
	Outcome     string // SUCCEEDED, FAILED, KILLED
}

// Trace accumulates attempt records.
type Trace struct {
	mu      sync.Mutex
	records []AttemptRecord
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Record appends r.
func (t *Trace) Record(r AttemptRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.records = append(t.records, r)
}

// Records returns a copy of all records.
func (t *Trace) Records() []AttemptRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]AttemptRecord(nil), t.records...)
}

// CountBy tallies records by an extractor (e.g. outcome or locality).
func (t *Trace) CountBy(f func(AttemptRecord) string) map[string]int {
	out := map[string]int{}
	for _, r := range t.Records() {
		out[f(r)]++
	}
	return out
}
