package data

import (
	"testing"

	"tez/internal/dfs"
	"tez/internal/relop"
)

func newFS(t *testing.T) *dfs.FileSystem {
	t.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 8 * 1024, Replication: 2})
	for _, n := range []string{"n0", "n1", "n2"} {
		fs.AddNode(n, "r0")
	}
	return fs
}

func readAll(t *testing.T, fs *dfs.FileSystem, tb *relop.Table) int {
	t.Helper()
	total := 0
	for _, f := range tb.Files {
		if !fs.Exists(f) {
			t.Fatalf("table %s file %s missing", tb.Name, f)
		}
	}
	rows, err := relopReadFiles(fs, tb)
	if err != nil {
		t.Fatal(err)
	}
	total = len(rows)
	for _, r := range rows {
		if len(r) != tb.Schema.Width() {
			t.Fatalf("table %s row width %d, schema %d", tb.Name, len(r), tb.Schema.Width())
		}
	}
	return total
}

func relopReadFiles(fs *dfs.FileSystem, tb *relop.Table) ([][]any, error) {
	var out [][]any
	for _, f := range tb.Files {
		rs, err := relop.ReadRecordFile(fs, f)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			anyRow := make([]any, len(r))
			for i, v := range r {
				anyRow[i] = v
			}
			out = append(out, anyRow)
		}
	}
	return out, nil
}

func TestGenTPCHShapes(t *testing.T) {
	fs := newFS(t)
	tp, err := GenTPCH(fs, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, fs, tp.Orders); got != 200 {
		t.Fatalf("orders = %d", got)
	}
	lines := readAll(t, fs, tp.Lineitem)
	if lines < 200 || lines > 200*7 {
		t.Fatalf("lineitem = %d", lines)
	}
	if tp.Lineitem.Rows != int64(lines) {
		t.Fatalf("stats rows %d != %d", tp.Lineitem.Rows, lines)
	}
	if tp.Lineitem.SizeBytes <= 0 {
		t.Fatal("no size stats")
	}
	readAll(t, fs, tp.Customer)
	readAll(t, fs, tp.Nation)
}

func TestGenTPCDSShapes(t *testing.T) {
	fs := newFS(t)
	td, err := GenTPCDS(fs, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, fs, td.StoreSales); got != 300 {
		t.Fatalf("store_sales = %d", got)
	}
	if got := readAll(t, fs, td.StoreSalesPartitioned); got != 300 {
		t.Fatalf("partitioned = %d", got)
	}
	if len(td.StoreSalesPartitioned.PartitionVals) != len(td.StoreSalesPartitioned.Files) {
		t.Fatal("partition metadata inconsistent")
	}
	if len(td.StoreSalesPartitioned.Files) < 2 {
		t.Fatal("fact not partitioned")
	}
	readAll(t, fs, td.DateDim)
	readAll(t, fs, td.Item)
}

func TestGenZipfSkewed(t *testing.T) {
	fs := newFS(t)
	tb, err := GenZipfPairs(fs, "z", 2000, 50, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := relopReadFiles(fs, tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2000 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestGenPoints(t *testing.T) {
	fs := newFS(t)
	tb, centers, err := GenPoints(fs, "p", 500, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 4 {
		t.Fatalf("centers = %d", len(centers))
	}
	rows, err := relopReadFiles(fs, tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("rows = %d", len(rows))
	}
}
