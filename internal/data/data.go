// Package data generates the deterministic synthetic datasets used to
// reproduce the paper's evaluation at laptop scale: TPC-H-shaped tables
// (Figure 9), TPC-DS-shaped star-schema tables (Figure 8), skewed ETL
// inputs (Figure 10), and K-means points (Figure 11). Real benchmark data
// at 10–30 TB is out of reach here; the generators preserve the schema
// shapes, key relationships and skew characteristics the experiments
// depend on.
package data

import (
	"fmt"
	"math/rand"

	"tez/internal/dfs"
	"tez/internal/relop"
	"tez/internal/row"
)

// TPCH holds the generated TPC-H-shaped tables.
type TPCH struct {
	Lineitem *relop.Table // orderkey, partkey, suppkey, quantity, extendedprice, discount, tax, returnflag, linestatus, shipdate
	Orders   *relop.Table // orderkey, custkey, orderstatus, totalprice, orderdate, shippriority
	Customer *relop.Table // custkey, name, mktsegment, nationkey
	Part     *relop.Table // partkey, name, brand, type
	Supplier *relop.Table // suppkey, name, nationkey
	Nation   *relop.Table // nationkey, name, regionkey
}

// Tables lists all TPC-H tables.
func (t *TPCH) Tables() []*relop.Table {
	return []*relop.Table{t.Lineitem, t.Orders, t.Customer, t.Part, t.Supplier, t.Nation}
}

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	flags      = []string{"A", "N", "R"}
	statuses   = []string{"O", "F"}
	brands     = []string{"Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"}
	nationList = []string{"FRANCE", "GERMANY", "JAPAN", "BRAZIL", "KENYA", "PERU", "CHINA", "INDIA"}
)

// GenTPCH generates roughly `orders` orders with ~4 lineitems each.
// Dates are integers 19920101..19981231-ish (yyyymmdd).
func GenTPCH(fs *dfs.FileSystem, orders int, seed int64) (*TPCH, error) {
	rng := rand.New(rand.NewSource(seed))
	customers := orders/10 + 5
	parts := orders/5 + 10
	supps := orders/20 + 5

	t := &TPCH{
		Lineitem: &relop.Table{Name: "lineitem", Schema: row.NewSchema(
			"l_orderkey:int", "l_partkey:int", "l_suppkey:int", "l_quantity:int",
			"l_extendedprice:float", "l_discount:float", "l_tax:float",
			"l_returnflag", "l_linestatus", "l_shipdate:int")},
		Orders: &relop.Table{Name: "orders", Schema: row.NewSchema(
			"o_orderkey:int", "o_custkey:int", "o_orderstatus", "o_totalprice:float",
			"o_orderdate:int", "o_shippriority:int")},
		Customer: &relop.Table{Name: "customer", Schema: row.NewSchema(
			"c_custkey:int", "c_name", "c_mktsegment", "c_nationkey:int")},
		Part: &relop.Table{Name: "part", Schema: row.NewSchema(
			"p_partkey:int", "p_name", "p_brand", "p_type")},
		Supplier: &relop.Table{Name: "supplier", Schema: row.NewSchema(
			"s_suppkey:int", "s_name", "s_nationkey:int")},
		Nation: &relop.Table{Name: "nation", Schema: row.NewSchema(
			"n_nationkey:int", "n_name", "n_regionkey:int")},
	}

	date := func() int64 {
		y := 1992 + rng.Intn(7)
		m := 1 + rng.Intn(12)
		d := 1 + rng.Intn(28)
		return int64(y*10000 + m*100 + d)
	}

	var custRows []row.Row
	for c := 0; c < customers; c++ {
		custRows = append(custRows, row.Row{
			row.Int(int64(c)),
			row.String(fmt.Sprintf("Customer#%06d", c)),
			row.String(segments[rng.Intn(len(segments))]),
			row.Int(int64(rng.Intn(len(nationList)))),
		})
	}
	var partRows []row.Row
	for p := 0; p < parts; p++ {
		partRows = append(partRows, row.Row{
			row.Int(int64(p)),
			row.String(fmt.Sprintf("part-%05d", p)),
			row.String(brands[rng.Intn(len(brands))]),
			row.String(fmt.Sprintf("TYPE%d", rng.Intn(10))),
		})
	}
	var suppRows []row.Row
	for s := 0; s < supps; s++ {
		suppRows = append(suppRows, row.Row{
			row.Int(int64(s)),
			row.String(fmt.Sprintf("Supplier#%04d", s)),
			row.Int(int64(rng.Intn(len(nationList)))),
		})
	}
	var nationRows []row.Row
	for n, name := range nationList {
		nationRows = append(nationRows, row.Row{row.Int(int64(n)), row.String(name), row.Int(int64(n % 3))})
	}

	var orderRows, lineRows []row.Row
	for o := 0; o < orders; o++ {
		cust := rng.Intn(customers)
		odate := date()
		lines := 1 + rng.Intn(7)
		var total float64
		for l := 0; l < lines; l++ {
			qty := 1 + rng.Intn(50)
			price := float64(1000+rng.Intn(90000)) / 100
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			total += float64(qty) * price
			lineRows = append(lineRows, row.Row{
				row.Int(int64(o)),
				row.Int(int64(rng.Intn(parts))),
				row.Int(int64(rng.Intn(supps))),
				row.Int(int64(qty)),
				row.Float(float64(qty) * price),
				row.Float(disc),
				row.Float(tax),
				row.String(flags[rng.Intn(len(flags))]),
				row.String(statuses[rng.Intn(len(statuses))]),
				row.Int(odate + int64(rng.Intn(60))),
			})
		}
		orderRows = append(orderRows, row.Row{
			row.Int(int64(o)),
			row.Int(int64(cust)),
			row.String(statuses[rng.Intn(len(statuses))]),
			row.Float(total),
			row.Int(odate),
			row.Int(int64(rng.Intn(3))),
		})
	}

	shards := orders/200 + 2
	for _, w := range []struct {
		t    *relop.Table
		rows []row.Row
		sh   int
	}{
		{t.Lineitem, lineRows, shards},
		{t.Orders, orderRows, shards},
		{t.Customer, custRows, 2},
		{t.Part, partRows, 2},
		{t.Supplier, suppRows, 1},
		{t.Nation, nationRows, 1},
	} {
		if err := relop.WriteTable(fs, w.t, w.sh, w.rows); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// TPCDS holds the generated TPC-DS-shaped star schema.
type TPCDS struct {
	StoreSales *relop.Table // sold_date_sk, item_sk, store_sk, customer_sk, quantity, sales_price
	DateDim    *relop.Table // date_sk, year, moy
	Item       *relop.Table // item_sk, brand_id, brand, category, manufact_id
	Store      *relop.Table // store_sk, store_name, state
	// StoreSalesPartitioned is the same fact data partitioned by
	// sold_date_sk month for the dynamic-partition-pruning experiments.
	StoreSalesPartitioned *relop.Table
}

// Tables lists all TPC-DS tables.
func (t *TPCDS) Tables() []*relop.Table {
	return []*relop.Table{t.StoreSales, t.DateDim, t.Item, t.Store, t.StoreSalesPartitioned}
}

// GenTPCDS generates a star schema with `sales` fact rows.
func GenTPCDS(fs *dfs.FileSystem, sales int, seed int64) (*TPCDS, error) {
	rng := rand.New(rand.NewSource(seed))
	items := sales/20 + 10
	stores := 10
	dates := 24 // 2 years of months

	t := &TPCDS{
		StoreSales: &relop.Table{Name: "store_sales", Schema: row.NewSchema(
			"ss_sold_date_sk:int", "ss_item_sk:int", "ss_store_sk:int",
			"ss_customer_sk:int", "ss_quantity:int", "ss_sales_price:float")},
		DateDim: &relop.Table{Name: "date_dim", Schema: row.NewSchema(
			"d_date_sk:int", "d_year:int", "d_moy:int")},
		Item: &relop.Table{Name: "item", Schema: row.NewSchema(
			"i_item_sk:int", "i_brand_id:int", "i_brand", "i_category", "i_manufact_id:int")},
		Store: &relop.Table{Name: "store", Schema: row.NewSchema(
			"s_store_sk:int", "s_store_name", "s_state")},
	}

	var dateRows []row.Row
	for d := 0; d < dates; d++ {
		dateRows = append(dateRows, row.Row{
			row.Int(int64(d)), row.Int(int64(1998 + d/12)), row.Int(int64(d%12 + 1)),
		})
	}
	cats := []string{"Books", "Music", "Sports", "Home", "Electronics"}
	var itemRows []row.Row
	for i := 0; i < items; i++ {
		itemRows = append(itemRows, row.Row{
			row.Int(int64(i)),
			row.Int(int64(rng.Intn(100))),
			row.String(fmt.Sprintf("brand-%02d", rng.Intn(20))),
			row.String(cats[rng.Intn(len(cats))]),
			row.Int(int64(rng.Intn(50))),
		})
	}
	states := []string{"CA", "TX", "NY", "WA"}
	var storeRows []row.Row
	for s := 0; s < stores; s++ {
		storeRows = append(storeRows, row.Row{
			row.Int(int64(s)),
			row.String(fmt.Sprintf("store-%02d", s)),
			row.String(states[rng.Intn(len(states))]),
		})
	}
	var salesRows []row.Row
	for n := 0; n < sales; n++ {
		salesRows = append(salesRows, row.Row{
			row.Int(int64(rng.Intn(dates))),
			row.Int(int64(rng.Intn(items))),
			row.Int(int64(rng.Intn(stores))),
			row.Int(int64(rng.Intn(sales/5 + 10))),
			row.Int(int64(1 + rng.Intn(20))),
			row.Float(float64(100+rng.Intn(9900)) / 100),
		})
	}

	shards := sales/200 + 2
	if err := relop.WriteTable(fs, t.StoreSales, shards, salesRows); err != nil {
		return nil, err
	}
	if err := relop.WriteTable(fs, t.DateDim, 1, dateRows); err != nil {
		return nil, err
	}
	if err := relop.WriteTable(fs, t.Item, 2, itemRows); err != nil {
		return nil, err
	}
	if err := relop.WriteTable(fs, t.Store, 1, storeRows); err != nil {
		return nil, err
	}
	t.StoreSalesPartitioned = &relop.Table{Name: "store_sales_p", Schema: t.StoreSales.Schema}
	if err := relop.WritePartitionedTable(fs, t.StoreSalesPartitioned, 0, salesRows); err != nil {
		return nil, err
	}
	return t, nil
}

// GenZipfPairs generates (key, value) rows with Zipf-skewed keys — the
// shape of production ETL group/join inputs (Figure 10) and the input of
// the Pig skew-join path.
func GenZipfPairs(fs *dfs.FileSystem, name string, n, keys int, skew float64, seed int64) (*relop.Table, error) {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, skew, 1, uint64(keys-1))
	t := &relop.Table{Name: name, Schema: row.NewSchema("k:int", "v:int")}
	rows := make([]row.Row, n)
	for i := range rows {
		rows[i] = row.Row{row.Int(int64(z.Uint64())), row.Int(int64(i))}
	}
	return t, relop.WriteTable(fs, t, n/5000+2, rows)
}

// GenUniquePairs generates one (k, v) row per key 0..keys-1 — the
// dimension/profile side of a foreign-key join.
func GenUniquePairs(fs *dfs.FileSystem, name string, keys int, seed int64) (*relop.Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &relop.Table{Name: name, Schema: row.NewSchema("k:int", "v:int")}
	rows := make([]row.Row, keys)
	for i := range rows {
		rows[i] = row.Row{row.Int(int64(i)), row.Int(rng.Int63n(1 << 20))}
	}
	return t, relop.WriteTable(fs, t, keys/2000+1, rows)
}

// GenPoints generates 2-D K-means points around k true centroids; the
// returned table has columns (x, y).
func GenPoints(fs *dfs.FileSystem, name string, n, k int, seed int64) (*relop.Table, [][2]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][2]float64, k)
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	rows := make([]row.Row, n)
	for i := range rows {
		c := centers[rng.Intn(k)]
		rows[i] = row.Row{
			row.Float(c[0] + rng.NormFloat64()*3),
			row.Float(c[1] + rng.NormFloat64()*3),
		}
	}
	t := &relop.Table{Name: name, Schema: row.NewSchema("x:float", "y:float")}
	return t, centers, relop.WriteTable(fs, t, n/1000+1, rows)
}
