// Package service is the long-lived multi-tenant DAG serving surface:
// where a Session is one client's AM, the Service is the fleet-facing
// daemon that accepts a firehose of concurrent DAG submissions from many
// named tenants and survives overload and per-tenant faults gracefully.
//
// The pipeline per submission is admission → quota → fair share →
// (preemption) → drain:
//
//   - admission: each tenant has a bounded queue and a worker pool; the
//     service has a global in-flight cap. Overload is shed at the door
//     with typed rejections (ErrQueueFull, ErrOverQuota, ErrDraining) —
//     nothing buffers unboundedly.
//   - quota + fair share: each tenant maps to a cluster tenant group
//     (cluster.SetTenant): the RM's scheduling pass enforces the
//     tenant's hard memory quota and orders grants by weighted fair
//     share across tenants, preempting the most-over-share tenant's
//     newest containers when a starved tenant waits past
//     PreemptionStarvation.
//   - deadlines: submissions carry an optional deadline (per-submission
//     option or tenant default); overdue DAGs are killed with a result
//     whose Err satisfies errors.Is(err, am.ErrDeadlineExceeded).
//   - drain: Drain stops admission, then finishes or kills in-flight
//     work by policy and flushes the timeline journal; Close drains and
//     tears the tenant sessions down.
package service

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/metrics"
	"tez/internal/platform"
	"tez/internal/timeline"
)

// Typed admission rejections. Callers classify with errors.Is.
var (
	// ErrQueueFull: the tenant's admission queue is at QueueDepth.
	ErrQueueFull = errors.New("service: tenant queue full")
	// ErrOverQuota: the service-wide in-flight cap is reached.
	ErrOverQuota = errors.New("service: in-flight cap reached")
	// ErrDraining: the service no longer admits work.
	ErrDraining = errors.New("service: draining")
	// ErrUnknownTenant: the tenant is not configured and dynamic tenants
	// are disabled.
	ErrUnknownTenant = errors.New("service: unknown tenant")
)

// TenantConfig declares one tenant's admission and scheduling envelope.
type TenantConfig struct {
	// Name identifies the tenant; it becomes the tenant's session and
	// cluster scheduling-group name, so DAG run ids are prefixed with it
	// (which is what tenant-scoped chaos and timeline filters key on).
	Name string
	// Weight is the tenant's fair-share weight (default 1): a weight-2
	// tenant converges to twice the cluster share of a weight-1 tenant
	// under contention.
	Weight int
	// QuotaMB hard-caps the tenant's held cluster memory (0 = unlimited);
	// enforced by the RM at grant time.
	QuotaMB int
	// QueueDepth bounds the tenant's admission queue (default 64);
	// submissions beyond it are rejected with ErrQueueFull.
	QueueDepth int
	// Workers is how many admitted DAGs the tenant runs concurrently
	// (default 4).
	Workers int
	// Deadline, when positive, is the default per-submission deadline
	// (overridable per submission with WithDeadline).
	Deadline time.Duration
}

func (tc TenantConfig) withDefaults() TenantConfig {
	if tc.Weight < 1 {
		tc.Weight = 1
	}
	if tc.QueueDepth <= 0 {
		tc.QueueDepth = 64
	}
	if tc.Workers <= 0 {
		tc.Workers = 4
	}
	return tc
}

// Config parameterises the service.
type Config struct {
	// Tenants are the statically configured tenants.
	Tenants []TenantConfig
	// AllowDynamicTenants admits unknown tenant names by materialising
	// them with a default TenantConfig; off, they are rejected with
	// ErrUnknownTenant.
	AllowDynamicTenants bool
	// MaxInFlight caps admitted-but-unfinished DAGs across all tenants
	// (default 256); past it submissions shed with ErrOverQuota.
	MaxInFlight int
	// Session is the template for per-tenant AM sessions; Name, Tenant
	// and Timeline are overwritten per tenant.
	Session am.Config
	// Journal, when set, receives every tenant's timeline streams
	// (tagged by tenant) and is flushed to JournalPath on drain.
	Journal *timeline.Journal
	// JournalPath, when set with Journal, is where Drain writes the
	// journal as JSONL.
	JournalPath string
	// DrainTimeout bounds how long Drain(DrainFinish) waits for in-
	// flight work before escalating to kills (default 30s).
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// DrainPolicy says what Drain does with admitted work.
type DrainPolicy int

const (
	// DrainFinish runs queued and running DAGs to completion (kills only
	// after DrainTimeout).
	DrainFinish DrainPolicy = iota
	// DrainKill fails queued DAGs and kills running ones immediately.
	DrainKill
)

// Result is the terminal outcome of one submission.
type Result struct {
	Status am.DAGStatus
	Err    error
	// QueueWait is admission→start, RunTime start→finish, Total
	// admission→finish.
	QueueWait time.Duration
	RunTime   time.Duration
	Total     time.Duration
}

// Submission is the client handle onto one admitted DAG.
type Submission struct {
	Tenant string

	dag      *dag.DAG
	deadline time.Duration
	admitted time.Time
	started  time.Time

	done chan struct{}
	res  Result
}

// Wait blocks until the submission reaches a terminal result.
func (s *Submission) Wait() Result {
	<-s.done
	return s.res
}

// Done returns a channel closed when the submission completes.
func (s *Submission) Done() <-chan struct{} { return s.done }

// SubmitOption configures one submission.
type SubmitOption func(*Submission)

// WithDeadline bounds this submission's wall-clock duration, overriding
// the tenant default. Overdue DAGs are killed; the Result's Err
// satisfies errors.Is(err, am.ErrDeadlineExceeded).
func WithDeadline(d time.Duration) SubmitOption {
	return func(s *Submission) { s.deadline = d }
}

// tenant is the service-side state for one tenant.
type tenant struct {
	cfg     TenantConfig
	svc     *Service
	session *am.Session
	queue   chan *Submission

	// Guarded by svc.mu.
	queued            int // occupancy of queue (reserved before send)
	running           map[*Submission]*am.DAGRun
	admitted          int64
	succeeded         int64
	failed            int64
	killed            int64
	rejectedQueueFull int64
	rejectedOverQuota int64

	latency metrics.Quantiles
}

// Service is the multi-tenant DAG daemon.
type Service struct {
	cfg  Config
	plat *platform.Platform

	mu       sync.Mutex
	tenants  map[string]*tenant
	inFlight int // admitted, not yet finished, across tenants
	draining bool
	killMode bool // drain escalated: workers fail queued work instead of running it
	closed   bool

	rejectedDraining int64

	wg        sync.WaitGroup // tenant workers
	flushOnce sync.Once
}

// New builds a service over the platform and starts the configured
// tenants' sessions and worker pools.
func New(plat *platform.Platform, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{cfg: cfg, plat: plat, tenants: make(map[string]*tenant)}
	s.mu.Lock()
	for _, tc := range cfg.Tenants {
		s.addTenantLocked(tc)
	}
	s.mu.Unlock()
	return s
}

// addTenantLocked registers the tenant with the RM, starts its session
// (named after the tenant, so run ids carry the tenant prefix) and its
// worker pool. Caller holds s.mu.
func (s *Service) addTenantLocked(tc TenantConfig) *tenant {
	tc = tc.withDefaults()
	s.plat.RM.SetTenant(tc.Name, tc.Weight, tc.QuotaMB)
	sc := s.cfg.Session
	sc.Name = tc.Name
	sc.Tenant = tc.Name
	if s.cfg.Journal != nil {
		sc.Timeline = s.cfg.Journal
	}
	t := &tenant{
		cfg:     tc,
		svc:     s,
		queue:   make(chan *Submission, tc.QueueDepth),
		running: make(map[*Submission]*am.DAGRun),
	}
	t.session = am.NewSession(s.plat, sc)
	s.tenants[tc.Name] = t
	s.wg.Add(tc.Workers)
	for i := 0; i < tc.Workers; i++ {
		go t.worker()
	}
	return t
}

// Submit admits one DAG for the named tenant, or rejects it with a typed
// error: ErrDraining once draining, ErrUnknownTenant for unconfigured
// tenants (unless AllowDynamicTenants), ErrOverQuota at the global
// in-flight cap, ErrQueueFull at the tenant's queue bound. Admission is
// O(1) and never blocks: the queue send happens under the lock into
// capacity reserved by the queued counter.
func (s *Service) Submit(tenantName string, d *dag.DAG, opts ...SubmitOption) (*Submission, error) {
	sub := &Submission{Tenant: tenantName, dag: d, done: make(chan struct{})}
	for _, o := range opts {
		o(sub)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		s.rejectedDraining++
		return nil, ErrDraining
	}
	t := s.tenants[tenantName]
	if t == nil {
		if !s.cfg.AllowDynamicTenants || tenantName == "" {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName)
		}
		t = s.addTenantLocked(TenantConfig{Name: tenantName})
	}
	if s.inFlight >= s.cfg.MaxInFlight {
		t.rejectedOverQuota++
		return nil, fmt.Errorf("%w (%d)", ErrOverQuota, s.cfg.MaxInFlight)
	}
	if t.queued >= t.cfg.QueueDepth {
		t.rejectedQueueFull++
		return nil, fmt.Errorf("%w: tenant %s (%d)", ErrQueueFull, tenantName, t.cfg.QueueDepth)
	}
	if sub.deadline <= 0 {
		sub.deadline = t.cfg.Deadline
	}
	s.inFlight++
	t.queued++
	t.admitted++
	sub.admitted = time.Now()
	t.queue <- sub // capacity reserved above: never blocks
	return sub, nil
}

// worker runs one tenant execution slot until the queue is drained and
// closed.
func (t *tenant) worker() {
	defer t.svc.wg.Done()
	for sub := range t.queue {
		t.runOne(sub)
	}
}

// runOne executes one admitted submission through the tenant's session.
func (t *tenant) runOne(sub *Submission) {
	s := t.svc
	s.mu.Lock()
	t.queued--
	killQueued := s.draining && s.killQueuedLocked()
	if !killQueued {
		sub.started = time.Now()
		t.running[sub] = nil // placeholder until the handle exists
	}
	s.mu.Unlock()
	if killQueued {
		s.finish(t, sub, Result{Status: am.DAGKilled, Err: ErrDraining})
		return
	}

	var opts []am.SubmitOption
	if sub.deadline > 0 {
		opts = append(opts, am.WithDeadline(sub.deadline))
	}
	h, err := t.session.Submit(sub.dag, opts...)
	if err != nil {
		s.mu.Lock()
		delete(t.running, sub)
		s.mu.Unlock()
		s.finish(t, sub, Result{Status: am.DAGFailed, Err: err})
		return
	}
	s.mu.Lock()
	t.running[sub] = h
	kill := s.draining && s.killQueuedLocked()
	s.mu.Unlock()
	if kill {
		h.Kill("service draining")
	}
	res := h.Wait()
	s.mu.Lock()
	delete(t.running, sub)
	s.mu.Unlock()
	s.finish(t, sub, Result{Status: res.Status, Err: res.Err})
}

// killQueuedLocked reports whether drain has escalated to killing.
// Caller holds s.mu.
func (s *Service) killQueuedLocked() bool { return s.killMode }

// finish settles one submission: accounting, latency digest, handle
// completion.
func (s *Service) finish(t *tenant, sub *Submission, res Result) {
	now := time.Now()
	if sub.started.IsZero() {
		res.QueueWait = now.Sub(sub.admitted)
	} else {
		res.QueueWait = sub.started.Sub(sub.admitted)
		res.RunTime = now.Sub(sub.started)
	}
	res.Total = now.Sub(sub.admitted)
	s.mu.Lock()
	s.inFlight--
	switch res.Status {
	case am.DAGSucceeded:
		t.succeeded++
	case am.DAGKilled:
		t.killed++
	default:
		t.failed++
	}
	s.mu.Unlock()
	t.latency.Observe(res.Total)
	sub.res = res
	close(sub.done)
}

// Drain stops admission and settles in-flight work: DrainFinish lets
// queued and running DAGs complete (escalating to kills after
// DrainTimeout); DrainKill fails queued submissions and kills running
// DAGs immediately. Both flush the journal to JournalPath once workers
// are idle. Drain is idempotent; concurrent calls all block until the
// drain completes.
func (s *Service) Drain(policy DrainPolicy) {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, t := range s.tenants {
			close(t.queue)
		}
	}
	s.mu.Unlock()
	if policy == DrainKill {
		s.killAdmitted()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if policy == DrainKill {
		<-done
	} else {
		select {
		case <-done:
		case <-time.After(s.cfg.DrainTimeout):
			s.killAdmitted() // finish took too long; escalate
			<-done
		}
	}
	s.flushOnce.Do(s.flushJournal)
}

// killAdmitted switches drain into kill mode (workers fail queued
// submissions instead of running them) and kills every running DAG.
func (s *Service) killAdmitted() {
	s.mu.Lock()
	s.killMode = true
	var handles []*am.DAGRun
	for _, t := range s.tenants {
		for _, h := range t.running {
			if h != nil {
				handles = append(handles, h)
			}
		}
	}
	s.mu.Unlock()
	for _, h := range handles {
		h.Kill("service draining")
	}
}

func (s *Service) flushJournal() {
	if s.cfg.Journal == nil || s.cfg.JournalPath == "" {
		return
	}
	f, err := os.Create(s.cfg.JournalPath)
	if err != nil {
		return
	}
	defer f.Close()
	timeline.WriteJSONL(f, s.cfg.Journal.Events())
}

// Close drains with DrainKill and tears down every tenant session. Safe
// to call after an explicit Drain (already-drained work is untouched).
func (s *Service) Close() {
	s.Drain(DrainKill)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	for _, t := range tenants {
		t.session.Close()
	}
}

// TenantStats is one tenant's admission/outcome snapshot.
type TenantStats struct {
	Tenant                    string
	Admitted                  int64
	Succeeded, Failed, Killed int64
	RejectedQueueFull         int64
	RejectedOverQuota         int64
	Queued, Running           int
	AllocMB, QuotaMB          int
	Latency                   metrics.QuantileSummary
}

// Stats is the service-wide snapshot.
type Stats struct {
	InFlight         int
	Draining         bool
	RejectedDraining int64
	Tenants          []TenantStats
}

// Snapshot reports per-tenant admission counters, rejections, current
// occupancy, RM quota usage and the end-to-end latency digest.
func (s *Service) Snapshot() Stats {
	s.mu.Lock()
	out := Stats{
		InFlight:         s.inFlight,
		Draining:         s.draining,
		RejectedDraining: s.rejectedDraining,
	}
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	for _, t := range tenants {
		ts := TenantStats{
			Tenant:            t.cfg.Name,
			Admitted:          t.admitted,
			Succeeded:         t.succeeded,
			Failed:            t.failed,
			Killed:            t.killed,
			RejectedQueueFull: t.rejectedQueueFull,
			RejectedOverQuota: t.rejectedOverQuota,
			Queued:            t.queued,
			Running:           len(t.running),
		}
		out.Tenants = append(out.Tenants, ts)
	}
	s.mu.Unlock()
	for i := range out.Tenants {
		t := s.tenantByName(out.Tenants[i].Tenant)
		out.Tenants[i].Latency = t.latency.Summary()
		out.Tenants[i].AllocMB, out.Tenants[i].QuotaMB = s.plat.RM.TenantUsage(out.Tenants[i].Tenant)
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Tenant < out.Tenants[j].Tenant })
	return out
}

func (s *Service) tenantByName(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[name]
}
